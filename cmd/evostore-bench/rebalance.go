package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/ownermap"
	"repro/internal/placement"
)

// rebalanceEntry is one tracked migration result in BENCH_rebalance.json.
type rebalanceEntry struct {
	Op           string  `json:"op"`    // "drain" or "join"
	Phase        string  `json:"phase"` // "after" (re-measured every run)
	Models       int     `json:"models"`
	Migrated     int     `json:"migrated"`
	Evicted      int     `json:"evicted"`
	PayloadBytes uint64  `json:"payload_bytes"`
	Ms           float64 `json:"ms"`
	ModelsPerS   float64 `json:"models_per_s"`
	MBPerS       float64 `json:"mb_per_s"`
}

type rebalanceFile struct {
	Entries []rebalanceEntry `json:"entries"`
}

// runRebalance is the elasticity acceptance scenario: a deployment serves a
// live workload while one provider is drained out of the placement table
// (epoch bump + migration + eviction) and a spare is joined in (second
// bump). The contract it asserts:
//
//   - zero failed requests throughout — reads and writes ride the
//     dual-epoch union while data moves;
//   - the drained provider ends the run holding nothing;
//   - every model's replica set is bit-identical (digest audit) under the
//     final table;
//   - the repository still retires-and-drains to zero, so no refcount
//     delta was lost across two epoch changes.
//
// It also re-proves the compatibility golden: the epoch-0 table places
// exactly like the paper's static modulo scheme, for R=1 and the run's R.
func runRebalance(providers, models, replicas int, out string) error {
	if replicas < 2 {
		replicas = 2
	}
	if providers < replicas+2 {
		// Draining one member must leave at least R survivors plus one, so
		// the migration has somewhere to put the moved replicas.
		providers = replicas + 2
	}
	if err := goldenEpochZero(providers, []int{1, replicas}); err != nil {
		return err
	}
	fmt.Printf("\n=== Elastic rebalance: %d providers + 1 spare, R=%d, drain provider 1 then join provider %d mid-workload ===\n",
		providers, replicas, providers)
	fmt.Printf("epoch-0 golden: placement matches static modulo for R=1 and R=%d over 4096 model IDs\n", replicas)

	reg := metrics.Default
	repo, err := core.Open(core.Options{
		Providers:      providers,
		SpareProviders: 1,
		Replicas:       replicas,
	})
	if err != nil {
		return err
	}
	defer repo.Close()
	ctx := context.Background()

	flat, err := model.Flatten(model.Sequential("bench", 8,
		model.Dense{In: 8, Out: 8, Activation: "relu", UseBias: true},
		model.Dense{In: 8, Out: 8, Activation: "relu"},
		model.Dense{In: 8, Out: 4},
	))
	if err != nil {
		return err
	}
	last := graph.VertexID(flat.Graph.NumVertices() - 1)

	// Seed models, half LCP-derived, so migrations move inherited
	// cross-model segments and not just self-owned ones.
	var ids []core.ModelID
	for i := 0; i < models; i++ {
		ws := model.Materialize(flat, uint64(i+1))
		var id core.ModelID
		if i%2 == 1 {
			anc, found, err := repo.BestAncestor(ctx, flat)
			if err != nil {
				return fmt.Errorf("ancestor query for seed %d: %w", i, err)
			}
			if found {
				if err := repo.TransferPrefix(ctx, flat, ws, anc); err != nil {
					return fmt.Errorf("transfer for seed %d: %w", i, err)
				}
				ws[last] = model.Materialize(flat, uint64(1000+i))[last]
				if id, err = repo.StoreDerived(ctx, flat, ws, 0.5, anc, nil); err != nil {
					return fmt.Errorf("derived seed %d: %w", i, err)
				}
				ids = append(ids, id)
				continue
			}
		}
		if id, err = repo.Store(ctx, flat, ws, 0.5); err != nil {
			return fmt.Errorf("seed %d: %w", i, err)
		}
		ids = append(ids, id)
	}
	fmt.Printf("seeded %d models\n", len(ids))

	// Live workload across both migrations: stores and loads that must all
	// succeed — a single failure fails the whole scenario.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var ops, fails atomic.Int64
	var mu sync.Mutex
	var extra []core.ModelID
	var firstErr error
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				var err error
				if i%3 == 0 {
					var id core.ModelID
					id, err = repo.Store(ctx, flat, model.Materialize(flat, uint64(10000+w*100000+i)), 0.5)
					if err == nil {
						mu.Lock()
						extra = append(extra, id)
						mu.Unlock()
					}
				} else {
					_, _, err = repo.Load(ctx, ids[i%len(ids)])
				}
				if err != nil {
					fails.Add(1)
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
				ops.Add(1)
			}
		}(w)
	}

	moved := reg.Counter("client.repair_payload_bytes")
	measure := func(op string, members []int) (rebalanceEntry, error) {
		before := moved.Load()
		stats, err := repo.Rebalance(ctx, members)
		if err != nil {
			return rebalanceEntry{}, fmt.Errorf("%s: %w", op, err)
		}
		bytes := moved.Load() - before
		secs := stats.Elapsed.Seconds()
		e := rebalanceEntry{
			Op: op, Phase: "after",
			Models: stats.Models, Migrated: stats.Migrated, Evicted: stats.Evicted,
			PayloadBytes: bytes, Ms: secs * 1e3,
		}
		if secs > 0 {
			e.ModelsPerS = float64(stats.Migrated) / secs
			e.MBPerS = float64(bytes) / 1e6 / secs
		}
		fmt.Printf("%s -> %s: %s (%.1f models/s, %.1f MB/s migrated)\n",
			op, repo.PlacementTable(), stats, e.ModelsPerS, e.MBPerS)
		return e, nil
	}

	// Drain provider 1: epoch bump removing it, migrate, evict its copies.
	cur := repo.PlacementTable()
	var without []int
	for _, m := range cur.Members {
		if m != 1 {
			without = append(without, m)
		}
	}
	drainE, err := measure("drain", without)
	if err != nil {
		return err
	}
	st := repo.Providers()[1].Stats()
	if st.Models != 0 || st.Segments != 0 {
		return fmt.Errorf("drained provider 1 still holds %d models / %d segments", st.Models, st.Segments)
	}
	fmt.Println("drained provider 1 holds nothing")

	// Join the spare (ID = providers): second bump, data rebalances onto it.
	joinE, err := measure("join", append(append([]int{}, without...), providers))
	if err != nil {
		return err
	}

	close(stop)
	wg.Wait()
	if n := fails.Load(); n != 0 {
		return fmt.Errorf("%d/%d workload requests failed across the migrations (want 0); first: %v",
			n, ops.Load(), firstErr)
	}
	fmt.Printf("workload: %d requests across both migrations, 0 failures\n", ops.Load())

	// Digest audit under the final table: every replica set bit-identical.
	all, err := repo.ListModels(ctx)
	if err != nil {
		return err
	}
	provs := repo.Providers()
	for _, id := range all {
		set := repo.ReplicaSet(id)
		d0 := provs[set[0]].Digest(id)
		for _, pi := range set[1:] {
			if di := provs[pi].Digest(id); !d0.Converged(di) {
				return fmt.Errorf("model %d: replica %d digest %+v != replica %d digest %+v",
					id, set[0], d0, pi, di)
			}
		}
	}
	fmt.Printf("digest audit: %d models bit-identical across their post-migration replica sets\n", len(all))

	// Retire everything and drain to zero: two epoch changes must not have
	// lost a single refcount delta.
	for _, id := range all {
		if _, err := repo.Retire(ctx, id); err != nil {
			return fmt.Errorf("retire %d: %w", id, err)
		}
	}
	stats, err := repo.Stats(ctx)
	if err != nil {
		return err
	}
	if stats.Models != 0 || stats.Segments != 0 || stats.LiveRefs != 0 {
		return fmt.Errorf("refcount drift: repository did not drain after rebalancing: %+v", *stats)
	}
	fmt.Printf("retired %d models (%d stored mid-migration); repository drained completely\n",
		len(all), len(extra))

	fmt.Println("\nRebalance counters:")
	reg.Render(os.Stdout)

	if out == "" {
		return nil
	}
	return writeRebalanceFile(out, []rebalanceEntry{drainE, joinE})
}

// goldenEpochZero asserts the epoch-0 table places exactly like the
// paper's static scheme — home = id mod N, replicas on the next R-1
// successors — for every requested replication factor.
func goldenEpochZero(n int, factors []int) error {
	for _, r := range factors {
		t := placement.New(n, r)
		rr := r
		if rr > n {
			rr = n
		}
		for id := 0; id < 4096; id++ {
			got := t.ReplicaSet(ownermap.ModelID(id))
			if len(got) != rr {
				return fmt.Errorf("epoch-0 golden: n=%d r=%d id=%d: got %d replicas, want %d", n, r, id, len(got), rr)
			}
			for k := 0; k < rr; k++ {
				if want := (id + k) % n; got[k] != want {
					return fmt.Errorf("epoch-0 golden: n=%d r=%d id=%d replica %d: got provider %d, want %d (static modulo)",
						n, r, id, k, got[k], want)
				}
			}
		}
	}
	return nil
}

// writeRebalanceFile merges this run's migration numbers into the tracked
// JSON file, following the BENCH_bulk.json convention: "before" baseline
// entries are permanent, "after" entries for re-measured ops are replaced.
func writeRebalanceFile(out string, entries []rebalanceEntry) error {
	reran := make(map[string]bool, len(entries))
	for _, e := range entries {
		reran[e.Op] = true
	}
	merged := rebalanceFile{}
	if prev, err := os.ReadFile(out); err == nil {
		var old rebalanceFile
		if err := json.Unmarshal(prev, &old); err != nil {
			return fmt.Errorf("existing %s is not a rebalance benchmark file: %w", out, err)
		}
		for _, e := range old.Entries {
			if e.Phase == "before" || !reran[e.Op] {
				merged.Entries = append(merged.Entries, e)
			}
		}
	}
	merged.Entries = append(merged.Entries, entries...)
	data, err := json.MarshalIndent(&merged, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", out)
	return nil
}
