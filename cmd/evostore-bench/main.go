// Command evostore-bench regenerates the tables behind every figure of the
// paper's evaluation section, plus the ablation studies from DESIGN.md.
//
// Usage:
//
//	evostore-bench fig4 [-virtual] [-gpus 8,16,...] [-model-bytes N]
//	evostore-bench fig5 [-catalog N] [-queries N] [-workers 1,8,...]
//	evostore-bench fig6|fig7|fig8|fig9|fig10 [-budget N] [-workers N]
//	evostore-bench ablations
//	evostore-bench faults [-providers N] [-replicas R] [-drop P] [-fault-provider I] [-partition]
//	evostore-bench faults -autobalance [-reads N] [-budget BPS] [-out BENCH_autobalance.json]
//	evostore-bench frontdoor [-smoke] [-out BENCH_frontdoor.json]
//	evostore-bench storm [-smoke] [-hedge-budget N] [-out BENCH_storm.json]
//	evostore-bench all
//
// Scaled-down defaults finish in seconds; pass the paper's parameters
// (e.g. -catalog 60000 -queries 10000, -budget 1000) for full-scale runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/expr"
	"repro/internal/metrics"
	"repro/internal/nas"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	args := os.Args[2:]
	var err error
	switch cmd {
	case "fig4":
		err = runFig4(args)
	case "fig5":
		err = runFig5(args)
	case "fig6":
		err = runFig6(args)
	case "fig7":
		err = runFig7(args)
	case "fig8":
		err = runFig8(args)
	case "fig9":
		err = runFig9(args)
	case "fig10":
		err = runFig10(args)
	case "ablations":
		err = runAblations(args)
	case "zerocost":
		err = runZeroCost(args)
	case "strategies":
		err = runStrategies(args)
	case "faults":
		err = runFaults(args)
	case "dedup":
		err = runDedup(args)
	case "bulk":
		err = runBulk(args)
	case "frontdoor":
		err = runFrontdoor(args)
	case "storm":
		err = runStorm(args)
	case "all":
		for _, sub := range []func([]string) error{
			runFig4, runFig5, runFig6, runFig7, runFig8, runFig9, runFig10,
			runAblations, runZeroCost, runStrategies,
		} {
			if err = sub(nil); err != nil {
				break
			}
		}
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "evostore-bench:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: evostore-bench {fig4|fig5|fig6|fig7|fig8|fig9|fig10|ablations|zerocost|strategies|faults|bulk|frontdoor|storm|dedup|all} [flags]")
}

func parseInts(s string) []int {
	if s == "" {
		return nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err == nil {
			out = append(out, n)
		}
	}
	return out
}

func nasConfig(fs *flag.FlagSet) *expr.NASConfig {
	cfg := &expr.NASConfig{Retire: true}
	fs.IntVar(&cfg.Budget, "budget", 1000, "candidates to evaluate")
	fs.IntVar(&cfg.Population, "population", 100, "aged-evolution population size")
	fs.Int64Var(&cfg.Seed, "seed", 1, "random seed")
	return cfg
}

func runFig4(args []string) error {
	fs := flag.NewFlagSet("fig4", flag.ExitOnError)
	virtual := fs.Bool("virtual", true, "virtual-time paper-scale run (false = wall-clock laptop scale)")
	gpus := fs.String("gpus", "", "comma-separated GPU counts")
	modelBytes := fs.Int64("model-bytes", 0, "model size in bytes (default 4 GiB virtual, 16 MiB real)")
	layers := fs.Int("layers", 100, "leaf layers per model")
	fs.Parse(args)

	cfg := expr.Fig4Config{Virtual: *virtual, GPUs: parseInts(*gpus), ModelBytes: *modelBytes, Layers: *layers}
	if !*virtual {
		if cfg.ModelBytes == 0 {
			cfg.ModelBytes = 16 << 20
		}
		if len(cfg.GPUs) == 0 {
			cfg.GPUs = []int{2, 4, 8, 16}
		}
	}
	rows, err := expr.RunFig4(cfg)
	if err != nil {
		return err
	}
	fmt.Println("\n=== Figure 4: incremental storage, aggregate write bandwidth ===")
	tbl := metrics.NewTable("GPUs", "Approach", "Modified%", "Agg GB/s", "s/model")
	for _, r := range rows {
		tbl.Add(r.GPUs, r.Approach, fmt.Sprintf("%.0f%%", r.Fraction*100), r.AggGBps, r.PerGPUSec)
	}
	tbl.Render(os.Stdout)
	return nil
}

func runFig5(args []string) error {
	fs := flag.NewFlagSet("fig5", flag.ExitOnError)
	catalog := fs.Int("catalog", 2000, "architectures in the catalog (paper: 60000)")
	queries := fs.Int("queries", 200, "total LCP queries (paper: 10000)")
	workers := fs.String("workers", "", "comma-separated worker counts")
	providers := fs.Int("providers", 8, "EvoStore providers")
	skipRedis := fs.Int("skip-redis-above", 0, "skip Redis-Queries above this worker count (0 = never)")
	fs.Parse(args)

	rows, err := expr.RunFig5(expr.Fig5Config{
		CatalogSize: *catalog, Queries: *queries,
		Workers: parseInts(*workers), Providers: *providers,
		SkipRedisAbove: *skipRedis,
	})
	if err != nil {
		return err
	}
	fmt.Println("\n=== Figure 5: LCP query processing, strong scaling ===")
	tbl := metrics.NewTable("Workers", "Approach", "Queries/s", "Total s")
	for _, r := range rows {
		tbl.Add(r.Workers, r.Approach, r.QueriesPerS, r.TotalSec)
	}
	tbl.Render(os.Stdout)
	return nil
}

func runFig6(args []string) error {
	fs := flag.NewFlagSet("fig6", flag.ExitOnError)
	cfg := nasConfig(fs)
	workers := fs.Int("workers", 256, "worker count")
	bins := fs.Int("bins", 10, "time bins for the accuracy series")
	fs.Parse(args)

	points, summaries, err := expr.RunFig6(*cfg, *workers)
	if err != nil {
		return err
	}
	fmt.Printf("\n=== Figure 6: candidate accuracy over time (%d workers) ===\n", *workers)
	sum := metrics.NewTable("Approach", "Makespan s", "Mean acc", "Best acc", "First>0.80 s")
	for _, s := range summaries {
		first := "never"
		if s.FirstAbove8 >= 0 {
			first = fmt.Sprintf("%.1f", s.FirstAbove8)
		}
		sum.Add(s.Approach, s.Makespan, s.MeanAcc, s.BestAcc, first)
	}
	sum.Render(os.Stdout)

	// Binned series: max accuracy per time bin per approach.
	fmt.Println("\nAccuracy series (per-bin max):")
	byApproach := map[string][]expr.Fig6Point{}
	for _, p := range points {
		byApproach[p.Approach] = append(byApproach[p.Approach], p)
	}
	tbl := metrics.NewTable(append([]string{"Approach"}, binHeaders(*bins)...)...)
	for _, approach := range []string{"DH-NoTransfer", "EvoStore"} {
		ps := byApproach[approach]
		var makespan float64
		for _, p := range ps {
			if p.Time > makespan {
				makespan = p.Time
			}
		}
		maxes := make([]float64, *bins)
		for _, p := range ps {
			b := int(p.Time / makespan * float64(*bins))
			if b >= *bins {
				b = *bins - 1
			}
			if p.Accuracy > maxes[b] {
				maxes[b] = p.Accuracy
			}
		}
		cells := make([]any, 0, *bins+1)
		cells = append(cells, approach)
		for _, m := range maxes {
			cells = append(cells, m)
		}
		tbl.Add(cells...)
	}
	tbl.Render(os.Stdout)
	return nil
}

func binHeaders(bins int) []string {
	out := make([]string, bins)
	for i := range out {
		out[i] = fmt.Sprintf("%d%%", (i+1)*100/bins)
	}
	return out
}

func runFig7(args []string) error {
	fs := flag.NewFlagSet("fig7", flag.ExitOnError)
	cfg := nasConfig(fs)
	scales := fs.String("scales", "128,256", "comma-separated worker counts")
	fs.Parse(args)

	rows, err := expr.RunFig7(*cfg, nil, parseInts(*scales))
	if err != nil {
		return err
	}
	fmt.Println("\n=== Figure 7: time to target accuracy ===")
	tbl := metrics.NewTable("Approach", "Workers", "Target", "Seconds")
	for _, r := range rows {
		sec := "(*) never"
		if r.Reached {
			sec = fmt.Sprintf("%.1f", r.Seconds)
		}
		tbl.Add(r.Approach, r.Workers, r.Target, sec)
	}
	tbl.Render(os.Stdout)
	return nil
}

func runFig8(args []string) error {
	fs := flag.NewFlagSet("fig8", flag.ExitOnError)
	cfg := nasConfig(fs)
	scales := fs.String("scales", "128,256", "comma-separated worker counts")
	fs.Parse(args)

	rows, err := expr.RunFig8(*cfg, parseInts(*scales))
	if err != nil {
		return err
	}
	fmt.Println("\n=== Figure 8: end-to-end NAS runtime ===")
	tbl := metrics.NewTable("Approach", "Workers", "Makespan s", "Repo overhead")
	for _, r := range rows {
		tbl.Add(r.Approach, r.Workers, r.Makespan, fmt.Sprintf("%.2f%%", r.RepoOverhead*100))
	}
	tbl.Render(os.Stdout)
	return nil
}

func runFig9(args []string) error {
	fs := flag.NewFlagSet("fig9", flag.ExitOnError)
	cfg := nasConfig(fs)
	workers := fs.Int("workers", 128, "worker count")
	plot := fs.Bool("plot", true, "render ASCII timelines")
	svgPrefix := fs.String("svg", "", "write <prefix>-<approach>.svg timeline plots")
	fs.Parse(args)

	if *svgPrefix != "" {
		for _, mode := range []nas.StorageMode{nas.ModeNoTransfer, nas.ModeEvoStore, nas.ModeHDF5PFS} {
			path := fmt.Sprintf("%s-%s.svg", *svgPrefix, strings.ReplaceAll(mode.String(), "+", ""))
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := expr.RunFig9SVG(*cfg, mode, *workers, f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Println("wrote", path)
		}
	}
	var out *os.File
	if *plot {
		out = os.Stdout
	}
	fmt.Printf("\n=== Figure 9: task timelines (%d workers) ===\n", *workers)
	rows, err := expr.RunFig9(*cfg, *workers, out)
	if err != nil {
		return err
	}
	tbl := metrics.NewTable("Approach", "Tasks", "Mean task s", "Stddev s", "Wave score", "Makespan s")
	for _, r := range rows {
		tbl.Add(r.Approach, r.Tasks, r.MeanTaskSec, r.StdTaskSec, r.WaveScore, r.MakespanSec)
	}
	tbl.Render(os.Stdout)
	return nil
}

func runFig10(args []string) error {
	fs := flag.NewFlagSet("fig10", flag.ExitOnError)
	cfg := nasConfig(fs)
	workers := fs.Int("workers", 128, "worker count")
	fs.Parse(args)

	rows, err := expr.RunFig10(*cfg, *workers)
	if err != nil {
		return err
	}
	fmt.Println("\n=== Figure 10: storage space overhead ===")
	tbl := metrics.NewTable("Approach", "Retire", "Final", "Peak")
	for _, r := range rows {
		retire := "No Retire"
		if r.Retire {
			retire = "With Retire"
		}
		tbl.Add(r.Approach, retire, metrics.HumanBytes(r.FinalBytes), metrics.HumanBytes(r.PeakBytes))
	}
	tbl.Render(os.Stdout)
	return nil
}

func runZeroCost(args []string) error {
	fs := flag.NewFlagSet("zerocost", flag.ExitOnError)
	cfg := nasConfig(fs)
	workers := fs.Int("workers", 128, "worker count")
	fs.Parse(args)

	rows, err := expr.RunZeroCost(*cfg, *workers, nil)
	if err != nil {
		return err
	}
	fmt.Println("\n=== Extension (§6): zero-cost proxies — I/O share vs training effort ===")
	tbl := metrics.NewTable("Approach", "Epoch fraction", "Makespan s", "I/O share", "Best acc")
	for _, r := range rows {
		tbl.Add(r.Approach, r.EpochFraction, r.Makespan, fmt.Sprintf("%.2f%%", r.IOFraction*100), r.BestAcc)
	}
	tbl.Render(os.Stdout)
	return nil
}

func runStrategies(args []string) error {
	fs := flag.NewFlagSet("strategies", flag.ExitOnError)
	cfg := nasConfig(fs)
	workers := fs.Int("workers", 128, "worker count")
	fs.Parse(args)

	rows, err := expr.RunStrategies(*cfg, *workers)
	if err != nil {
		return err
	}
	fmt.Println("\n=== Search strategies (§2): aged evolution vs random sampling ===")
	tbl := metrics.NewTable("Strategy", "Best acc", "Mean acc", "Makespan s")
	for _, r := range rows {
		tbl.Add(r.Strategy, r.BestAcc, r.MeanAcc, r.Makespan)
	}
	tbl.Render(os.Stdout)
	return nil
}

func runAblations(args []string) error {
	fs := flag.NewFlagSet("ablations", flag.ExitOnError)
	fs.Parse(args)

	fmt.Println("\n=== Ablation: owner maps vs chain reconstruction ===")
	omRows, err := expr.RunAblationOwnerMap(nil, 0, 0)
	if err != nil {
		return err
	}
	tbl := metrics.NewTable("Chain depth", "Owner map s", "Chain walk s", "Speedup")
	for _, r := range omRows {
		tbl.Add(r.Depth, r.OwnerMapSec, r.ChainWalkSec, fmt.Sprintf("%.1fx", r.Speedup))
	}
	tbl.Render(os.Stdout)

	fmt.Println("\n=== Ablation: leaf-level vs cell-level dedup granularity ===")
	gr, err := expr.RunAblationGranularity(0, 1)
	if err != nil {
		return err
	}
	tbl = metrics.NewTable("Mutation pairs", "Leaf LCP bytes", "Coarse LCP bytes", "Gain")
	tbl.Add(gr.Pairs, metrics.HumanBytes(gr.LeafLCPBytes), metrics.HumanBytes(gr.CoarseLCPBytes),
		fmt.Sprintf("%.2fx", gr.BytesGain))
	tbl.Render(os.Stdout)

	fmt.Println("\n=== Ablation: consolidated vs per-tensor reads ===")
	cons, err := expr.RunAblationConsolidation(0, 0)
	if err != nil {
		return err
	}
	tbl = metrics.NewTable("Layers", "Grouped s", "Per-vertex s", "Speedup")
	tbl.Add(cons.Layers, cons.GroupedSec, cons.PerVertexSec, fmt.Sprintf("%.1fx", cons.Speedup))
	tbl.Render(os.Stdout)

	fmt.Println("\n=== Ablation: collective vs client-side iterative queries ===")
	col, err := expr.RunAblationCollective(0, 1)
	if err != nil {
		return err
	}
	tbl = metrics.NewTable("Catalog", "Collective s", "Iterative s", "Speedup")
	tbl.Add(col.Catalog, col.CollectiveSec, col.IterativeSec, fmt.Sprintf("%.1fx", col.Speedup))
	tbl.Render(os.Stdout)
	return nil
}
