package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"

	"repro/internal/bulkbench"
	"repro/internal/metrics"
)

// bulkEntry is one tracked benchmark result in BENCH_bulk.json.
type bulkEntry struct {
	Op          string  `json:"op"`
	Phase       string  `json:"phase"` // "before" (pre-zero-copy baseline) or "after"
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerS      float64 `json:"mb_per_s"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type bulkFile struct {
	Entries []bulkEntry `json:"entries"`
}

// runBulk benchmarks the bulk data path and optionally merges the results
// into a tracked JSON file. Entries with phase "before" (the baseline
// captured before the zero-copy refactor) are preserved; "after" entries
// are replaced wholesale by this run's numbers.
func runBulk(args []string) error {
	fs := flag.NewFlagSet("bulk", flag.ExitOnError)
	out := fs.String("out", "", "merge results into this JSON file (empty = print only)")
	benchtime := fs.String("benchtime", "1s", "per-benchmark duration or iteration count (e.g. 2s, 1x)")
	filter := fs.String("filter", "", "only run scenarios whose name contains this substring")
	fs.Parse(args)

	// testing.Benchmark honours the standard -test.benchtime flag; register
	// the testing flags and set it explicitly so a normal binary can use
	// short smoke runs (1x) or longer steady-state runs.
	testing.Init()
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		return fmt.Errorf("bad -benchtime %q: %w", *benchtime, err)
	}

	var entries []bulkEntry
	tbl := metrics.NewTable("Benchmark", "ns/op", "MB/s", "B/op", "allocs/op")
	for _, s := range bulkbench.Scenarios() {
		if *filter != "" && !strings.Contains(s.Name, *filter) {
			continue
		}
		r := testing.Benchmark(s.Run)
		if r.N == 0 {
			return fmt.Errorf("scenario %s did not run", s.Name)
		}
		nsPerOp := float64(r.T.Nanoseconds()) / float64(r.N)
		mbPerS := 0.0
		if r.Bytes > 0 && r.T > 0 {
			mbPerS = float64(r.Bytes) * float64(r.N) / 1e6 / r.T.Seconds()
		}
		e := bulkEntry{
			Op: s.Name, Phase: "after",
			NsPerOp: nsPerOp, MBPerS: mbPerS,
			BytesPerOp: r.AllocedBytesPerOp(), AllocsPerOp: r.AllocsPerOp(),
		}
		entries = append(entries, e)
		tbl.Add(s.Name, fmt.Sprintf("%.0f", nsPerOp), fmt.Sprintf("%.1f", mbPerS),
			e.BytesPerOp, e.AllocsPerOp)
	}
	fmt.Println("\n=== Bulk data path benchmarks ===")
	tbl.Render(os.Stdout)

	if *out == "" {
		return nil
	}
	reran := make(map[string]bool, len(entries))
	for _, e := range entries {
		reran[e.Op] = true
	}
	merged := bulkFile{}
	if prev, err := os.ReadFile(*out); err == nil {
		var old bulkFile
		if err := json.Unmarshal(prev, &old); err != nil {
			return fmt.Errorf("existing %s is not a bulk benchmark file: %w", *out, err)
		}
		// "before" entries (the pre-zero-copy baseline) are permanent;
		// "after" entries survive unless this run re-measured their op, so
		// -filter refreshes single scenarios without dropping the rest.
		for _, e := range old.Entries {
			if e.Phase == "before" || !reran[e.Op] {
				merged.Entries = append(merged.Entries, e)
			}
		}
	}
	merged.Entries = append(merged.Entries, entries...)
	data, err := json.MarshalIndent(&merged, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", *out)
	return nil
}
