package main

// The frontdoor scenario measures the multi-tenant front door end to end
// over real TCP providers, in three phases tracked in BENCH_frontdoor.json:
//
//  1. Zipfian fan-in: several clients (each with its own segment cache and
//     flight group) hammer a skewed model popularity distribution; the
//     provider-side read executions are compared against the logical loads
//     issued. Coalescing plus the read-through cache should cut provider
//     fan-in by well over 5x.
//  2. Throttled-tenant isolation: a noisy tenant with unbounded demand and
//     a quiet tenant with modest demand share one throttled provider; the
//     noisy tenant must be held near its bucket rate while the quiet
//     tenant's p99 stays flat versus running alone.
//  3. Read-path allocations: a full Load+Release loop over TCP with the
//     cache off (pooled receive frames recycling every op) and with the
//     cache warm, compared against the tracked ReadPath1M baseline in
//     BENCH_bulk.json.

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/frontdoor"
	"repro/internal/graph"
	"repro/internal/kvstore"
	"repro/internal/metrics"
	"repro/internal/ownermap"
	"repro/internal/proto"
	"repro/internal/provider"
	"repro/internal/rpc"
)

type zipfResult struct {
	Clients         int     `json:"clients"`
	Goroutines      int     `json:"goroutines_per_client"`
	Models          int     `json:"models"`
	Loads           int     `json:"loads"`
	ProviderExec    uint64  `json:"provider_read_exec"`
	ProviderReqs    uint64  `json:"provider_read_requests"`
	FanInReduction  float64 `json:"fan_in_reduction"`
	ClientCoalesced uint64  `json:"client_coalesced_reads"`
	CacheHits       uint64  `json:"cache_hits"`
	CacheMisses     uint64  `json:"cache_misses"`
	CacheHitRate    float64 `json:"cache_hit_rate"`
	LoadsPerSec     float64 `json:"loads_per_sec"`
}

type throttleResult struct {
	LimitOpsPerSec    float64 `json:"limit_ops_per_sec"`
	WindowSec         float64 `json:"window_sec"`
	DurationSec       float64 `json:"duration_sec"`
	NoisyAttempts     int     `json:"noisy_attempts"`
	NoisyAdmitted     int     `json:"noisy_admitted"`
	NoisyThrottled    int     `json:"noisy_throttled"`
	NoisyAdmittedRate float64 `json:"noisy_admitted_per_sec"`
	AdmitCeiling      float64 `json:"admit_ceiling_per_sec"` // bucket rate + burst amortized over the run
	QuietOps          int     `json:"quiet_ops"`
	QuietThrottled    int     `json:"quiet_throttled"`
	QuietP99AloneMs   float64 `json:"quiet_p99_alone_ms"`
	QuietP99NoisyMs   float64 `json:"quiet_p99_contended_ms"`
}

type readPathResult struct {
	Op          string  `json:"op"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerS      float64 `json:"mb_per_s"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type frontdoorFile struct {
	Zipf          zipfResult       `json:"zipf"`
	Throttle      throttleResult   `json:"throttle"`
	ReadPath      []readPathResult `json:"read_path"`
	BulkBaseline  map[string]int64 `json:"bulk_baseline_allocs_per_op,omitempty"`
	AllocsReduced bool             `json:"read_path_allocs_reduced"`
}

// runFrontdoor drives the three front-door phases and optionally writes
// BENCH_frontdoor.json.
func runFrontdoor(args []string) error {
	fs := flag.NewFlagSet("frontdoor", flag.ExitOnError)
	out := fs.String("out", "", "write results to this JSON file (empty = print only)")
	smoke := fs.Bool("smoke", false, "scaled-down run for CI (seconds, not minutes)")
	benchtime := fs.String("benchtime", "1s", "read-path benchmark duration or count (e.g. 2s, 1x)")
	fs.Parse(args)

	zc := zipfConfig{clients: 3, goroutines: 8, models: 24, loads: 4000, nseg: 8, segBytes: 16 << 10}
	tc := throttleConfig{limit: 100, window: time.Second, dur: 2 * time.Second}
	if *smoke {
		zc = zipfConfig{clients: 2, goroutines: 4, models: 6, loads: 300, nseg: 4, segBytes: 4 << 10}
		tc = throttleConfig{limit: 50, window: time.Second, dur: 400 * time.Millisecond}
		*benchtime = "1x"
	}

	var f frontdoorFile
	var err error
	if f.Zipf, err = runZipfPhase(zc); err != nil {
		return fmt.Errorf("zipf phase: %w", err)
	}
	if f.Throttle, err = runThrottlePhase(tc); err != nil {
		return fmt.Errorf("throttle phase: %w", err)
	}
	if f.ReadPath, err = runReadPathPhase(*benchtime); err != nil {
		return fmt.Errorf("read-path phase: %w", err)
	}
	f.BulkBaseline = bulkBaselineAllocs()
	// BENCH_bulk's ReadPath1M runs with the default segment cache, so its
	// steady state is a warm-cache loop — the comparable front-door number
	// is the cached read path, not the cache-off wire path.
	if base, ok := f.BulkBaseline["ReadPath1M"]; ok {
		for _, rp := range f.ReadPath {
			if rp.Op == "FrontdoorCachedRead1M" {
				f.AllocsReduced = rp.AllocsPerOp < base
			}
		}
	}

	if *out == "" {
		return nil
	}
	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", *out)
	return nil
}

// --- shared harness ---------------------------------------------------------

// fdCluster is a TCP deployment with per-provider metrics registries, so
// the bench reads clean counters regardless of what ran before it.
type fdCluster struct {
	addrs []string
	regs  []*metrics.Registry
	lis   []interface{ Close() error }
}

func newFDCluster(n int, limits frontdoor.Limits) (*fdCluster, error) {
	c := &fdCluster{}
	for i := 0; i < n; i++ {
		p := provider.New(i, kvstore.NewMemKV(8))
		reg := metrics.NewRegistry()
		p.SetMetricsRegistry(reg)
		p.SetThrottle(limits)
		srv := rpc.NewServer()
		p.Register(srv)
		lis, addr, err := rpc.ListenAndServeTCP("127.0.0.1:0", srv)
		if err != nil {
			c.close()
			return nil, err
		}
		c.addrs = append(c.addrs, addr)
		c.regs = append(c.regs, reg)
		c.lis = append(c.lis, lis)
	}
	return c, nil
}

func (c *fdCluster) close() {
	for _, l := range c.lis {
		l.Close()
	}
}

// counterSum adds one named counter across every provider registry.
func (c *fdCluster) counterSum(name string) uint64 {
	var total uint64
	for _, reg := range c.regs {
		total += reg.Counter(name).Load()
	}
	return total
}

// dial builds a client on fresh connection pools (2 conns per provider).
func (c *fdCluster) dial(opts ...client.Option) (*client.Client, func()) {
	conns := make([]rpc.Conn, len(c.addrs))
	for i, a := range c.addrs {
		conns[i] = rpc.NewPool(a, 2, rpc.DialTCP)
	}
	cli := client.New(conns, opts...)
	return cli, func() {
		for _, cn := range conns {
			cn.Close()
		}
	}
}

// fdModel builds a chain-graph model of nseg self-owned segments.
func fdModel(id ownermap.ModelID, nseg, segBytes int) (*proto.ModelMeta, [][]byte) {
	gb := graph.NewBuilder(nseg)
	for i := 0; i < nseg; i++ {
		gb.AddVertex(graph.Vertex{ConfigSig: uint64(id)<<16 | uint64(i+1), ParamBytes: int64(segBytes)})
		if i > 0 {
			gb.AddEdge(graph.VertexID(i-1), graph.VertexID(i))
		}
	}
	meta := &proto.ModelMeta{
		Model: id, Seq: uint64(id), Quality: 0.5,
		Graph:    gb.Build(),
		OwnerMap: ownermap.New(id, uint64(id), nseg),
	}
	segs := make([][]byte, nseg)
	for i := range segs {
		segs[i] = make([]byte, segBytes)
		for j := range segs[i] {
			segs[i][j] = byte(int(id) + i + j)
		}
	}
	return meta, segs
}

// --- phase 1: zipfian fan-in -------------------------------------------------

type zipfConfig struct {
	clients, goroutines, models, loads, nseg, segBytes int
}

func runZipfPhase(cfg zipfConfig) (zipfResult, error) {
	cl, err := newFDCluster(4, frontdoor.Limits{})
	if err != nil {
		return zipfResult{}, err
	}
	defer cl.close()
	ctx := context.Background()

	setup, closeSetup := cl.dial()
	for id := 1; id <= cfg.models; id++ {
		meta, segs := fdModel(ownermap.ModelID(id), cfg.nseg, cfg.segBytes)
		if err := setup.Store(ctx, meta, segs); err != nil {
			closeSetup()
			return zipfResult{}, err
		}
	}
	closeSetup()

	regs := make([]*metrics.Registry, cfg.clients)
	clis := make([]*client.Client, cfg.clients)
	var closers []func()
	for i := range clis {
		regs[i] = metrics.NewRegistry()
		cli, closeCli := cl.dial(client.WithRegistry(regs[i]))
		clis[i] = cli
		closers = append(closers, closeCli)
	}
	defer func() {
		for _, c := range closers {
			c()
		}
	}()

	workers := cfg.clients * cfg.goroutines
	perWorker := cfg.loads / workers
	total := perWorker * workers
	var wg sync.WaitGroup
	var firstErr atomic.Value
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cli := clis[w%cfg.clients]
			r := rand.New(rand.NewSource(int64(w + 1)))
			z := rand.NewZipf(r, 1.3, 1, uint64(cfg.models-1))
			for i := 0; i < perWorker; i++ {
				id := ownermap.ModelID(z.Uint64() + 1)
				d, err := cli.Load(ctx, id)
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				d.Release()
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err, _ := firstErr.Load().(error); err != nil {
		return zipfResult{}, err
	}

	res := zipfResult{
		Clients:      cfg.clients,
		Goroutines:   cfg.goroutines,
		Models:       cfg.models,
		Loads:        total,
		ProviderExec: cl.counterSum("provider.read_exec"),
		ProviderReqs: cl.counterSum("provider.read_request"),
		LoadsPerSec:  float64(total) / elapsed.Seconds(),
	}
	for _, reg := range regs {
		res.ClientCoalesced += reg.Counter("client.coalesced_read").Load()
		res.CacheHits += reg.Counter("client.segcache_hit").Load()
		res.CacheMisses += reg.Counter("client.segcache_miss").Load()
	}
	if res.ProviderExec > 0 {
		res.FanInReduction = float64(total) / float64(res.ProviderExec)
	}
	if hm := res.CacheHits + res.CacheMisses; hm > 0 {
		res.CacheHitRate = float64(res.CacheHits) / float64(hm)
	}

	fmt.Println("\n=== Front door: zipfian fan-in ===")
	tbl := metrics.NewTable("Loads", "Provider execs", "Fan-in reduction", "Coalesced", "Cache hit rate", "Loads/s")
	tbl.Add(total, res.ProviderExec, fmt.Sprintf("%.1fx", res.FanInReduction),
		res.ClientCoalesced, fmt.Sprintf("%.1f%%", res.CacheHitRate*100), fmt.Sprintf("%.0f", res.LoadsPerSec))
	tbl.Render(os.Stdout)
	return res, nil
}

// --- phase 2: throttled-tenant isolation -------------------------------------

type throttleConfig struct {
	limit  float64
	window time.Duration
	dur    time.Duration
}

const (
	quietModel  = 100
	noisyModels = 6
	quietPace   = 25 * time.Millisecond
)

func runThrottlePhase(cfg throttleConfig) (throttleResult, error) {
	// One provider: both tenants contend for the same admission front door,
	// which is the isolation being demonstrated.
	cl, err := newFDCluster(1, frontdoor.Limits{OpsPerSec: cfg.limit, Window: cfg.window})
	if err != nil {
		return throttleResult{}, err
	}
	defer cl.close()
	ctx := context.Background()

	setup, closeSetup := cl.dial()
	for id := 1; id <= noisyModels; id++ {
		meta, segs := fdModel(ownermap.ModelID(id), 4, 8<<10)
		if err := setup.Store(ctx, meta, segs); err != nil {
			closeSetup()
			return throttleResult{}, err
		}
	}
	meta, segs := fdModel(quietModel, 4, 8<<10)
	if err := setup.Store(ctx, meta, segs); err != nil {
		closeSetup()
		return throttleResult{}, err
	}
	closeSetup()

	// Caches off: every read must cross the wire, or the tenants would
	// simply stop talking to the provider being measured.
	quiet, closeQuiet := cl.dial(client.WithTenant("quiet"), client.WithSegCacheBytes(0),
		client.WithRegistry(metrics.NewRegistry()))
	defer closeQuiet()
	noisy, closeNoisy := cl.dial(client.WithTenant("noisy"), client.WithSegCacheBytes(0),
		client.WithRegistry(metrics.NewRegistry()))
	defer closeNoisy()

	res := throttleResult{
		LimitOpsPerSec: cfg.limit,
		WindowSec:      cfg.window.Seconds(),
		DurationSec:    cfg.dur.Seconds(),
	}

	// Baseline: the quiet tenant alone.
	alone, throttledAlone, err := quietRun(ctx, quiet, cfg.dur)
	if err != nil {
		return res, err
	}
	res.QuietP99AloneMs = p99ms(alone)
	res.QuietThrottled += throttledAlone

	// Contended: the noisy tenant hammers with unbounded demand while the
	// quiet tenant keeps its modest pace.
	var wg sync.WaitGroup
	wg.Add(1)
	var noisyErr error
	go func() {
		defer wg.Done()
		deadline := time.Now().Add(cfg.dur)
		for i := 0; time.Now().Before(deadline); i++ {
			id := ownermap.ModelID(i%noisyModels + 1)
			res.NoisyAttempts++
			d, err := noisy.Load(ctx, id)
			if err != nil {
				if _, ok := frontdoor.RetryAfterFromError(err); ok {
					res.NoisyThrottled++
					continue
				}
				noisyErr = err
				return
			}
			d.Release()
			res.NoisyAdmitted++
		}
	}()
	contended, throttledContended, err := quietRun(ctx, quiet, cfg.dur)
	wg.Wait()
	if err != nil {
		return res, err
	}
	if noisyErr != nil {
		return res, noisyErr
	}
	res.QuietP99NoisyMs = p99ms(contended)
	res.QuietThrottled += throttledContended
	res.QuietOps = len(alone) + len(contended)
	res.NoisyAdmittedRate = float64(res.NoisyAdmitted) / cfg.dur.Seconds()
	// A fresh tenant's buckets admit up to one window of burst on top of
	// the refill rate; amortized over the run that is the hard ceiling.
	res.AdmitCeiling = cfg.limit * (cfg.dur.Seconds() + cfg.window.Seconds()) / cfg.dur.Seconds()

	fmt.Println("\n=== Front door: throttled-tenant isolation ===")
	tbl := metrics.NewTable("Limit ops/s", "Noisy admitted/s", "Ceiling/s", "Noisy throttled",
		"Quiet p99 alone", "Quiet p99 contended", "Quiet throttled")
	tbl.Add(cfg.limit, fmt.Sprintf("%.0f", res.NoisyAdmittedRate), fmt.Sprintf("%.0f", res.AdmitCeiling),
		res.NoisyThrottled, fmt.Sprintf("%.2fms", res.QuietP99AloneMs),
		fmt.Sprintf("%.2fms", res.QuietP99NoisyMs), res.QuietThrottled)
	tbl.Render(os.Stdout)
	if res.NoisyAdmittedRate > res.AdmitCeiling*1.1 {
		return res, fmt.Errorf("noisy tenant admitted %.0f ops/s, above the %.0f ceiling: throttle not holding",
			res.NoisyAdmittedRate, res.AdmitCeiling)
	}
	return res, nil
}

// quietRun paces loads of the quiet model and returns their latencies.
// Throttled refusals are counted, not fatal — the phase reports them so a
// regression in tenant isolation shows up in the tracked numbers.
func quietRun(ctx context.Context, cli *client.Client, dur time.Duration) ([]time.Duration, int, error) {
	var lat []time.Duration
	throttled := 0
	deadline := time.Now().Add(dur)
	for time.Now().Before(deadline) {
		start := time.Now()
		d, err := cli.Load(ctx, quietModel)
		if err != nil {
			if _, ok := frontdoor.RetryAfterFromError(err); ok {
				throttled++
				time.Sleep(quietPace)
				continue
			}
			return nil, throttled, err
		}
		d.Release()
		lat = append(lat, time.Since(start))
		time.Sleep(quietPace)
	}
	return lat, throttled, nil
}

func p99ms(lat []time.Duration) float64 {
	if len(lat) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return float64(sorted[len(sorted)*99/100].Nanoseconds()) / 1e6
}

// --- phase 3: read-path allocations ------------------------------------------

func runReadPathPhase(benchtime string) ([]readPathResult, error) {
	testing.Init()
	if err := flag.Set("test.benchtime", benchtime); err != nil {
		return nil, fmt.Errorf("bad -benchtime %q: %w", benchtime, err)
	}

	scenarios := []struct {
		name  string
		cache int64 // segment cache bound; 0 = off
	}{
		{"FrontdoorReadPath1M", 0},
		{"FrontdoorCachedRead1M", 64 << 20},
	}
	var out []readPathResult
	tbl := metrics.NewTable("Benchmark", "ns/op", "MB/s", "B/op", "allocs/op")
	for _, sc := range scenarios {
		r := testing.Benchmark(benchFrontdoorRead(sc.cache))
		if r.N == 0 {
			return nil, fmt.Errorf("scenario %s did not run", sc.name)
		}
		nsPerOp := float64(r.T.Nanoseconds()) / float64(r.N)
		mbPerS := 0.0
		if r.Bytes > 0 && r.T > 0 {
			mbPerS = float64(r.Bytes) * float64(r.N) / 1e6 / r.T.Seconds()
		}
		e := readPathResult{
			Op: sc.name, NsPerOp: nsPerOp, MBPerS: mbPerS,
			BytesPerOp: r.AllocedBytesPerOp(), AllocsPerOp: r.AllocsPerOp(),
		}
		out = append(out, e)
		tbl.Add(sc.name, fmt.Sprintf("%.0f", nsPerOp), fmt.Sprintf("%.1f", mbPerS),
			e.BytesPerOp, e.AllocsPerOp)
	}
	fmt.Println("\n=== Front door: read-path allocations (vs BENCH_bulk.json ReadPath1M) ===")
	tbl.Render(os.Stdout)
	return out, nil
}

// benchFrontdoorRead mirrors bulkbench's ReadPath1M shape (16 x 64 KiB
// segments, one TCP provider, 4-connection pool) but drives the front
// door: Load under a lease, then Release so the pooled receive frames
// recycle between iterations.
func benchFrontdoorRead(cacheBytes int64) func(b *testing.B) {
	return func(b *testing.B) {
		p := provider.New(0, kvstore.NewMemKV(8))
		p.SetMetricsRegistry(metrics.NewRegistry())
		srv := rpc.NewServer()
		p.Register(srv)
		lis, addr, err := rpc.ListenAndServeTCP("127.0.0.1:0", srv)
		if err != nil {
			b.Fatal(err)
		}
		defer lis.Close()
		pool := rpc.NewPool(addr, 4, rpc.DialTCP)
		defer pool.Close()
		cache := cacheBytes
		if cache == 0 {
			cache = -1 // negative disables, 0 would mean "keep the default"
		}
		cli := client.New([]rpc.Conn{pool},
			client.WithSegCacheBytes(cache), client.WithRegistry(metrics.NewRegistry()))

		ctx := context.Background()
		const nseg, segBytes = 16, 64 << 10
		meta, segs := fdModel(1, nseg, segBytes)
		if err := cli.Store(ctx, meta, segs); err != nil {
			b.Fatal(err)
		}
		if d, err := cli.Load(ctx, 1); err != nil { // warm pools and cache
			b.Fatal(err)
		} else {
			d.Release()
		}
		b.SetBytes(int64(nseg) * int64(segBytes))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d, err := cli.Load(ctx, 1)
			if err != nil {
				b.Fatal(err)
			}
			if len(d.Segments) != nseg {
				b.Fatal("short load")
			}
			d.Release()
		}
	}
}

// bulkBaselineAllocs reads the tracked read-path allocs from
// BENCH_bulk.json ("after" phase) for side-by-side comparison. Best
// effort: a missing or unreadable file just omits the baseline.
func bulkBaselineAllocs() map[string]int64 {
	data, err := os.ReadFile("BENCH_bulk.json")
	if err != nil {
		return nil
	}
	var f bulkFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil
	}
	out := map[string]int64{}
	for _, e := range f.Entries {
		if e.Phase == "after" && (e.Op == "ReadPath1M" || e.Op == "ReadPath64M") {
			out[e.Op] = e.AllocsPerOp
		}
	}
	return out
}
