package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/bulkbench"
	"repro/internal/core"
	"repro/internal/metrics"
)

// dedupFile is the tracked BENCH_dedup.json: one lineage workload, run
// twice — raw (structural dedup only, the pre-dedup system) and dedup
// (delta encoding + content-addressed chunks) — on identical logical
// writes, so the stored-bytes ratio is the capacity win and the restore
// ratio is its read-path cost.
type dedupFile struct {
	// Workload parameters, recorded so cross-PR comparisons know what was
	// measured.
	Steps      int     `json:"steps"`
	Layers     int     `json:"layers"`
	Dim        int     `json:"dim"`
	TouchFrac  float64 `json:"touch_frac"`
	ChangeFrac float64 `json:"change_frac"`

	Models       int   `json:"models"`
	LogicalBytes int64 `json:"logical_bytes"` // sum of all models' full weights

	RawBytes   int64 `json:"raw_bytes"`   // physical bytes, dedup off
	DedupBytes int64 `json:"dedup_bytes"` // physical bytes, dedup on

	// DedupRatio = RawBytes / DedupBytes: ≥ 3 is this workload's target.
	DedupRatio float64 `json:"dedup_ratio"`

	RestoreRawMBps   float64 `json:"restore_raw_mb_s"`
	RestoreDedupMBps float64 `json:"restore_dedup_mb_s"`
	// RestoreRatio = raw MB/s ÷ dedup MB/s: the resolution slowdown
	// factor (1 = free; the target is ≤ 2).
	RestoreRatio float64 `json:"restore_ratio"`
}

// runDedup runs the lineage workload with and without the dedup layer
// and reports bytes stored, dedup ratio, and restore throughput.
func runDedup(args []string) error {
	fs := flag.NewFlagSet("dedup", flag.ExitOnError)
	out := fs.String("out", "", "write results to this JSON file (empty = print only)")
	steps := fs.Int("steps", 0, "fine-tune steps (0 = tracked default)")
	layers := fs.Int("layers", 0, "dense layers per model (0 = tracked default)")
	dim := fs.Int("dim", 0, "layer width (0 = tracked default)")
	touch := fs.Float64("touch-frac", 0, "fraction of layers modified per step (0 = tracked default)")
	change := fs.Float64("change-frac", 0, "fraction of bytes changed per touched tensor (0 = tracked default)")
	fs.Parse(args)

	cfg := bulkbench.DefaultLineageConfig()
	if *steps > 0 {
		cfg.Steps = *steps
	}
	if *layers > 0 {
		cfg.Layers = *layers
	}
	if *dim > 0 {
		cfg.Dim = *dim
	}
	if *touch > 0 {
		cfg.TouchFrac = *touch
	}
	if *change > 0 {
		cfg.ChangeFrac = *change
	}

	ctx := context.Background()
	rawCfg := cfg
	rawCfg.Opts = core.Options{Providers: 4}
	raw, err := bulkbench.RunLineage(ctx, rawCfg)
	if err != nil {
		return fmt.Errorf("raw lineage run: %w", err)
	}
	dedCfg := cfg
	dedCfg.Opts = core.Options{Providers: 4, Dedup: true, ColdCompress: true}
	ded, err := bulkbench.RunLineage(ctx, dedCfg)
	if err != nil {
		return fmt.Errorf("dedup lineage run: %w", err)
	}

	f := &dedupFile{
		Steps: cfg.Steps, Layers: cfg.Layers, Dim: cfg.Dim,
		TouchFrac: cfg.TouchFrac, ChangeFrac: cfg.ChangeFrac,
		Models:       ded.Models,
		LogicalBytes: ded.LogicalBytes,
		RawBytes:     raw.StoredBytes,
		DedupBytes:   ded.StoredBytes,

		RestoreRawMBps:   raw.RestoreMBps(),
		RestoreDedupMBps: ded.RestoreMBps(),
	}
	if f.DedupBytes > 0 {
		f.DedupRatio = float64(f.RawBytes) / float64(f.DedupBytes)
	}
	if f.RestoreDedupMBps > 0 {
		f.RestoreRatio = f.RestoreRawMBps / f.RestoreDedupMBps
	}

	fmt.Println("\n=== Lineage dedup benchmark ===")
	tbl := metrics.NewTable("Metric", "raw", "dedup")
	tbl.Add("stored bytes", f.RawBytes, f.DedupBytes)
	tbl.Add("vs logical", ratioStr(f.LogicalBytes, f.RawBytes), ratioStr(f.LogicalBytes, f.DedupBytes))
	tbl.Add("restore MB/s", fmt.Sprintf("%.0f", f.RestoreRawMBps), fmt.Sprintf("%.0f", f.RestoreDedupMBps))
	tbl.Render(os.Stdout)
	fmt.Printf("dedup ratio %.2fx (target >= 3), restore slowdown %.2fx (target <= 2)\n",
		f.DedupRatio, f.RestoreRatio)

	if *out == "" {
		return nil
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", *out)
	return nil
}

func ratioStr(logical, stored int64) string {
	if stored == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", float64(logical)/float64(stored))
}
