package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/kvstore"
	"repro/internal/metrics"
	"repro/internal/model"
)

// runRestart is the crash-recovery demonstration: providers run on real
// LSM directories with the durable catalog, one is killed -9 mid-workload
// (endpoint unbound, store abandoned unflushed — the buffered WAL tail is
// lost exactly as on a process kill), the workload continues with zero
// failed requests via partial writes and read failover, and the provider
// then reopens the SAME directory: the manifest is validated, the catalog
// journal replays, and one anti-entropy pass converges the replica sets.
//
// The headline assertion is the divergence tail: because the reopened
// catalog still knows everything written before the kill, the repairer
// must move only the bytes of the models written DURING the outage — a
// provider that lost its catalog would instead be re-pushed its entire
// pre-crash share, which busts the byte budget and fails the run.
func runRestart(providers, models, replicas, target int) error {
	if replicas < 2 {
		replicas = 2
	}
	if providers < replicas+1 {
		providers = replicas + 1
	}
	if target < 0 || target >= providers {
		target = 1
	}
	if models < 2 {
		models = 2
	}
	const outage = 4 // models stored while the provider is down

	root, err := os.MkdirTemp("", "evostore-restart-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)

	// Real durable backends: small flush threshold so the run exercises
	// SSTable flushes, WAL rotation, and reopen-time replay, not just an
	// in-memory memtable.
	dir := func(i int) string { return filepath.Join(root, fmt.Sprintf("p%d", i)) }
	open := func(i int) (*kvstore.LSMKV, error) {
		return kvstore.OpenLSM(dir(i), kvstore.LSMOptions{FlushBytes: 64 << 10})
	}
	stores := make([]*kvstore.LSMKV, providers)
	for i := range stores {
		if stores[i], err = open(i); err != nil {
			return fmt.Errorf("opening store %d: %w", i, err)
		}
		// Stamp each directory with its identity manifest, as
		// evostore-server does; the reopen below validates it.
		err = kvstore.SaveManifest(dir(i), &kvstore.Manifest{
			FormatVersion: kvstore.ManifestFormatVersion,
			ProviderID:    uint32(i),
			Features:      []string{kvstore.FeatureDurableCatalog},
		})
		if err != nil {
			return fmt.Errorf("writing manifest %d: %w", i, err)
		}
	}

	reg := metrics.Default
	repo, err := core.Open(core.Options{
		Providers:      providers,
		Replicas:       replicas,
		PartialWrites:  true,
		DurableCatalog: true,
		Backend:        func(i int) kvstore.KV { return stores[i] },
	})
	if err != nil {
		return err
	}
	defer repo.Close()

	ctx := context.Background()
	fmt.Printf("\n=== Crash restart: %d providers on LSM dirs, R=%d, kill -9 provider %d mid-workload ===\n",
		providers, repo.Replicas(), target)

	flat, err := model.Flatten(model.Sequential("bench", 8,
		model.Dense{In: 8, Out: 8, Activation: "relu", UseBias: true},
		model.Dense{In: 8, Out: 8, Activation: "relu"},
		model.Dense{In: 8, Out: 4},
	))
	if err != nil {
		return err
	}

	// Replica sets are deterministic (home = id % providers, then hash
	// successors), so the byte budget below can count exactly which models
	// involve the target.
	onTarget := func(id core.ModelID) bool {
		for _, pi := range repo.ReplicaSet(id) {
			if pi == target {
				return true
			}
		}
		return false
	}

	// Phase 1: healthy writes — the pre-crash state the catalog must carry
	// across the kill. All from-scratch models of one architecture, so
	// per-model payload bytes are uniform and the budget is exact.
	var ids []core.ModelID
	preOnTarget := 0
	for i := 0; i < models; i++ {
		id, err := repo.Store(ctx, flat, model.Materialize(flat, uint64(i+1)), 0.5)
		if err != nil {
			return fmt.Errorf("healthy store %d: %w", i, err)
		}
		ids = append(ids, id)
		if onTarget(id) {
			preOnTarget++
		}
	}
	statsPre, err := repo.Stats(ctx)
	if err != nil {
		return err
	}
	perModel := statsPre.SegmentBytes / uint64(len(ids)*replicas) // bytes per replica copy
	fmt.Printf("stored %d models healthy (%d involve provider %d; %d payload bytes per replica copy)\n",
		len(ids), preOnTarget, target, perModel)

	// Phase 2: kill -9. The endpoint vanishes from the fabric and the LSM
	// handle is abandoned without Close — whatever sat in the WAL's bufio
	// buffer is gone. (Every catalog mutation ends in an fsync, so the
	// durable state is exactly what the provider acknowledged.)
	if err := repo.KillProvider(target); err != nil {
		return err
	}
	stores[target] = nil // abandoned; reopened below
	fmt.Printf("killed provider %d (endpoint unbound, store abandoned unflushed)\n", target)

	// The workload continues through the outage with ZERO failed requests:
	// writes are accepted as partials, reads fail over to survivors.
	outOnTarget := 0
	for i := 0; i < outage; i++ {
		id, err := repo.Store(ctx, flat, model.Materialize(flat, uint64(models+i+1)), 0.5)
		if err != nil {
			return fmt.Errorf("store during outage: %w", err)
		}
		ids = append(ids, id)
		if onTarget(id) {
			outOnTarget++
		}
	}
	// One pre-era retire: its tombstone reaches only survivors and must be
	// replayed onto the restarted provider by repair, not resurrected.
	victim := ids[0]
	if _, err := repo.Retire(ctx, victim); err != nil {
		return fmt.Errorf("retire during outage: %w", err)
	}
	ids = ids[1:]
	for _, id := range ids {
		if _, _, err := repo.Load(ctx, id); err != nil {
			return fmt.Errorf("load %d during outage: %w", id, err)
		}
	}
	partials := reg.Counter("client.partial_write").Load()
	fmt.Printf("outage workload: %d stores, 1 retire, %d loads, 0 failures, %d partial writes accepted\n",
		outage, len(ids), partials)
	if partials == 0 {
		return fmt.Errorf("no partial writes were recorded with a provider down")
	}

	// Phase 3: restart on the same directory. Manifest first — identity and
	// format must check out before the store is touched.
	m, err := kvstore.LoadManifest(dir(target))
	if err != nil {
		return fmt.Errorf("reopening manifest: %w", err)
	}
	if m == nil || m.ProviderID != uint32(target) {
		return fmt.Errorf("manifest at %s: got %+v, want provider %d", dir(target), m, target)
	}
	reopened, err := open(target)
	if err != nil {
		return fmt.Errorf("reopening store %d: %w", target, err)
	}
	stores[target] = reopened
	survivor := (target + 1) % providers
	st := repo.Providers()[survivor].PlacementState()
	if err := repo.RestartProvider(target, reopened, st); err != nil {
		return err
	}
	replayed := repo.Providers()[target].Stats().Models
	fmt.Printf("restarted provider %d: manifest ok (format %d, epoch %d), catalog replayed %d models\n",
		target, m.FormatVersion, m.PlacementEpoch, replayed)
	// The replayed catalog must hold the pre-crash era. (The outage-retired
	// victim may still be among them until repair delivers its tombstone.)
	if replayed < uint64(preOnTarget) {
		return fmt.Errorf("catalog replay lost models: %d cataloged, want >= %d pre-crash models", replayed, preOnTarget)
	}

	// Phase 4: one repair pass converges the divergence tail — and ONLY the
	// tail. Budget: the models stored during the outage whose replica set
	// includes the restarted provider, plus the retired victim's segments
	// if its DecRef hadn't reached the target (repair never pushes payload
	// for tombstoned models, but allow one model of slack for it). A lost
	// catalog would instead re-push all preOnTarget models and blow this.
	movedBefore := reg.Counter("client.repair_payload_bytes").Load()
	rs, err := repo.RepairAll(ctx)
	if err != nil {
		return fmt.Errorf("repair pass: %w", err)
	}
	moved := reg.Counter("client.repair_payload_bytes").Load() - movedBefore
	budget := uint64(outOnTarget+1) * perModel * 5 / 4 // +1 model and 25% slack
	fmt.Printf("repair pass: checked=%d repaired=%d; moved %d payload bytes (budget %d: %d outage models on provider %d)\n",
		rs.Checked, rs.Repaired, moved, budget, outOnTarget, target)
	if moved > budget {
		return fmt.Errorf("repair moved %d bytes, over the %d-byte divergence-tail budget: the reopened catalog did not carry the pre-crash era",
			moved, budget)
	}
	if preOnTarget > 0 && moved >= uint64(preOnTarget)*perModel {
		return fmt.Errorf("repair moved %d bytes >= the provider's whole pre-crash share (%d): catalog replay was ineffective",
			moved, uint64(preOnTarget)*perModel)
	}
	if diverged, err := repo.RepairCheck(ctx); err != nil {
		return fmt.Errorf("post-repair check: %w", err)
	} else if len(diverged) != 0 {
		return fmt.Errorf("still diverged after repair: %v", diverged)
	}

	// Digest audit straight off the provider structs: every replica set
	// bit-identical, and the outage-retired victim gone everywhere.
	provs := repo.Providers()
	for _, id := range ids {
		set := repo.ReplicaSet(id)
		d0 := provs[set[0]].Digest(id)
		for _, pi := range set[1:] {
			if di := provs[pi].Digest(id); !d0.Converged(di) {
				return fmt.Errorf("model %d: replica %d digest %+v != replica %d digest %+v",
					id, set[0], d0, pi, di)
			}
		}
	}
	if d := provs[target].Digest(victim); d.Present {
		return fmt.Errorf("retired model %d resurrected on restarted provider %d", victim, target)
	}
	fmt.Printf("digest audit: %d models bit-identical across their replica sets; outage retire not resurrected\n", len(ids))

	// Phase 5: retire everything and drain — any delta lost across the
	// crash/restart leaves refs behind.
	for _, id := range ids {
		if _, err := repo.Retire(ctx, id); err != nil {
			return fmt.Errorf("final retire %d: %w", id, err)
		}
	}
	stats, err := repo.Stats(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("retired %d models; remaining models=%d segments=%d live refs=%d\n",
		len(ids), stats.Models, stats.Segments, stats.LiveRefs)
	if stats.Models != 0 || stats.Segments != 0 || stats.LiveRefs != 0 {
		return fmt.Errorf("refcount drift: repository did not drain after restart: %+v", *stats)
	}
	fmt.Println("repository drained completely: no state lost or duplicated across the crash")

	for i, s := range stores {
		if s != nil {
			if err := s.Close(); err != nil {
				return fmt.Errorf("closing store %d: %w", i, err)
			}
		}
	}
	fmt.Println("\nRestart counters:")
	reg.Render(os.Stdout)
	return nil
}
