package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/kvstore"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/resilient"
	"repro/internal/rpc"
)

// stormEntry is one measured phase in BENCH_storm.json.
type stormEntry struct {
	Phase        string  `json:"phase"` // "healthy" or "storm"
	Hedged       bool    `json:"hedged"`
	Reads        int     `json:"reads"`
	P50Ms        float64 `json:"p50_ms"`
	P99Ms        float64 `json:"p99_ms"`
	Fails        int64   `json:"fails"`
	Failovers    uint64  `json:"failovers"`
	BreakerSkips uint64  `json:"breaker_skips"`
	ScoreDemotes uint64  `json:"score_demotes"`
	Hedges       uint64  `json:"hedges"`
	HedgeWins    uint64  `json:"hedge_wins"`
	HedgeCancels uint64  `json:"hedge_cancels"`
	HedgeRefused uint64  `json:"hedge_refused"`
	BudgetPerSec float64 `json:"budget_per_sec,omitempty"`
}

type stormFile struct {
	Entries []stormEntry `json:"entries"`
}

// stormRun is one full deployment lifetime: seed models, measure a healthy
// baseline phase, then run the same zipfian read workload through a
// scripted failure storm — rolling 20x slow-node episodes, a flapping
// partition, and one provider kill+restart — and measure again. The storm
// script keeps at most one provider hard-down at any moment, so with R=2
// every model always has at least one responsive replica and zero failed
// reads is an achievable (and asserted) contract.
type stormRunResult struct {
	healthy, storm stormEntry
	elapsed        time.Duration // healthy + storm wall clock, for budget bounds
}

func stormRun(providers, replicas, models int, hedged bool, budget float64, episode time.Duration) (*stormRunResult, error) {
	reg := metrics.Default
	kvs := make([]kvstore.KV, providers)
	for i := range kvs {
		kvs[i] = kvstore.NewMemKV(16)
	}
	// Every connection gets a ~1ms injected base delay: that is the
	// "healthy" fabric latency the gray multiplier inflates, and it keeps
	// the in-proc deployment's latencies far enough above scheduler noise
	// for the percentile comparisons to mean something.
	repo, err := core.Open(core.Options{
		Providers:      providers,
		Replicas:       replicas,
		SegCacheBytes:  -1, // repeat reads must reach the fabric, not the cache
		DurableCatalog: true,
		Backend:        func(i int) kvstore.KV { return kvs[i] },
		Faults: func(i int) *rpc.FaultConfig {
			return &rpc.FaultConfig{
				Seed:        int64(1000 + i),
				Delay:       time.Millisecond,
				DelayJitter: 200 * time.Microsecond,
			}
		},
		Resilience: &resilient.Options{
			DefaultTimeout: 2 * time.Second,
			MaxAttempts:    1, // replica failover beats in-place retries here
			Threshold:      5,
			// The breaker must be able to probe and re-close within the
			// settle gap the storm script leaves between failure modes.
			Cooldown: episode / 4,
		},
		HedgedReads: hedged,
		HedgeBudget: budget,
	})
	if err != nil {
		return nil, err
	}
	defer repo.Close()
	ctx := context.Background()

	flat, err := model.Flatten(model.Sequential("storm", 8,
		model.Dense{In: 16, Out: 16, Activation: "relu", UseBias: true},
		model.Dense{In: 16, Out: 16, Activation: "relu"},
		model.Dense{In: 16, Out: 8},
	))
	if err != nil {
		return nil, err
	}
	var ids []core.ModelID
	for i := 0; i < models; i++ {
		id, err := repo.Store(ctx, flat, model.Materialize(flat, uint64(i+1)), 0.5)
		if err != nil {
			return nil, fmt.Errorf("seed %d: %w", i, err)
		}
		ids = append(ids, id)
	}

	// readPhase runs the zipfian workload until the deadline. The seeds are
	// fixed, so the hedged and unhedged runs measure the same access
	// pattern.
	const workers = 3
	readPhase := func(dur time.Duration) (lats []float64, fails int64, reads int) {
		var mu sync.Mutex
		var failsA, readsA atomic.Int64
		deadline := time.Now().Add(dur)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(w + 1)))
				zipf := rand.NewZipf(rng, 1.4, 1, uint64(len(ids)-1))
				var local []float64
				for time.Now().Before(deadline) {
					id := ids[zipf.Uint64()]
					readsA.Add(1)
					start := time.Now()
					if _, _, err := repo.Load(ctx, id); err != nil {
						failsA.Add(1)
						continue
					}
					local = append(local, time.Since(start).Seconds()*1e3)
				}
				mu.Lock()
				lats = append(lats, local...)
				mu.Unlock()
			}(w)
		}
		wg.Wait()
		sort.Float64s(lats)
		return lats, failsA.Load(), int(readsA.Load())
	}

	counters := func() map[string]uint64 {
		out := map[string]uint64{}
		for _, name := range []string{
			"client.read_failover", "client.replica_breaker_skip", "client.score_demote",
			"client.hedged_read", "client.hedge_won", "client.hedge_cancelled", "client.hedge_refused",
		} {
			out[name] = reg.Counter(name).Load()
		}
		return out
	}
	entry := func(phase string, lats []float64, fails int64, before, after map[string]uint64) stormEntry {
		return stormEntry{
			Phase: phase, Hedged: hedged, Reads: len(lats),
			P50Ms: metrics.Percentile(lats, 0.50), P99Ms: metrics.Percentile(lats, 0.99),
			Fails:        fails,
			Failovers:    after["client.read_failover"] - before["client.read_failover"],
			BreakerSkips: after["client.replica_breaker_skip"] - before["client.replica_breaker_skip"],
			ScoreDemotes: after["client.score_demote"] - before["client.score_demote"],
			Hedges:       after["client.hedged_read"] - before["client.hedged_read"],
			HedgeWins:    after["client.hedge_won"] - before["client.hedge_won"],
			HedgeCancels: after["client.hedge_cancelled"] - before["client.hedge_cancelled"],
			HedgeRefused: after["client.hedge_refused"] - before["client.hedge_refused"],
			BudgetPerSec: budget,
		}
	}

	runStart := time.Now()

	// Phase 1: healthy baseline.
	before := counters()
	baseLats, baseFails, _ := readPhase(2 * episode)
	healthy := entry("healthy", baseLats, baseFails, before, counters())

	// Phase 2: the failure storm, scripted while the workload keeps
	// reading. The script is strictly sequential — never more than one
	// provider hard-down (partitioned or killed) at once.
	faults := repo.FaultConns()
	stormDur := 8 * episode
	var schedErr error
	var schedWG sync.WaitGroup
	schedWG.Add(1)
	go func() {
		defer schedWG.Done()
		slow := &rpc.SlowProfile{
			Factor:       20,
			Jitter:       200 * time.Microsecond,
			BandwidthBps: 16 << 20,
		}
		// Rolling gray episodes: providers 0..2 take turns being 20x slow.
		for k := 0; k < 3; k++ {
			faults[k].SetSlow(slow)
			time.Sleep(episode)
			faults[k].SetSlow(nil)
		}
		// Flapping partition on provider 3: down/up twice per episode.
		for k := 0; k < 4; k++ {
			faults[3].SetPartitioned(true)
			time.Sleep(episode / 4)
			faults[3].SetPartitioned(false)
			time.Sleep(episode / 4)
		}
		// Settle gap: provider 3's breaker may still be open from the
		// flapping; give it a cooldown's worth of probes to re-close
		// before taking its replica-set neighbor down, or model replica
		// sets spanning both would briefly have no responsive member.
		time.Sleep(episode / 2)
		// Kill+restart the last provider on its surviving backend; the
		// durable catalog replays and clients reconnect mid-workload.
		last := providers - 1
		if err := repo.KillProvider(last); err != nil {
			schedErr = err
			return
		}
		time.Sleep(episode)
		if err := repo.RestartProvider(last, kvs[last], nil); err != nil {
			schedErr = err
			return
		}
		// One more gray episode after the restart keeps pressure on while
		// the revived provider warms back into the ranking.
		faults[0].SetSlow(slow)
		time.Sleep(episode)
		faults[0].SetSlow(nil)
	}()
	before = counters()
	stormLats, stormFails, _ := readPhase(stormDur)
	schedWG.Wait()
	if schedErr != nil {
		return nil, fmt.Errorf("storm schedule: %w", schedErr)
	}
	storm := entry("storm", stormLats, stormFails, before, counters())

	// Post-storm: with all faults cleared, every model must still serve.
	for i := range faults {
		faults[i].SetSlow(nil)
		faults[i].SetPartitioned(false)
	}
	for _, id := range ids {
		if _, _, err := repo.Load(ctx, id); err != nil {
			return nil, fmt.Errorf("load %d after the storm: %w", id, err)
		}
	}
	return &stormRunResult{healthy: healthy, storm: storm, elapsed: time.Since(runStart)}, nil
}

// runStorm is the gray-failure acceptance scenario: the same scripted
// failure storm is run twice — once with plain sequential failover, once
// with score-ranked replica ordering plus hedged reads — and the hedged
// run must hold its read tail. The contract it asserts:
//
//   - zero failed reads in every phase of both runs: the storm never takes
//     both replicas of any model down at once, so failover (and hedging)
//     must always find an answer;
//   - the hedged storm phase's p99 stays within 2x the hedged healthy
//     baseline (plus an episode-scaled absolute slack for the
//     adaptation ramp after each fault onset: 5ms at the 400ms default
//     episode), even though one provider is 20x slow through most of
//     the storm;
//   - hedging actually engaged (hedge launches > 0) and stayed within its
//     token budget's hard bound: rate x elapsed plus one 1s bucket window
//     (the hedger's refill window), plus the fresh bucket's single
//     bootstrap token;
//   - the unhedged run is recorded alongside for contrast.
func runStorm(args []string) error {
	fs := flag.NewFlagSet("storm", flag.ExitOnError)
	providers := fs.Int("providers", 5, "storage providers")
	replicas := fs.Int("replicas", 2, "N-way replication factor")
	models := fs.Int("models", 24, "models to seed before the storm")
	budget := fs.Float64("hedge-budget", 400, "hedge launches per second admitted by the client's token budget")
	episode := fs.Duration("episode", 400*time.Millisecond, "storm episode length (the storm runs 8 episodes, the baseline 2)")
	smoke := fs.Bool("smoke", false, "CI-scale run: 100ms episodes")
	out := fs.String("out", "", "write benchmark results into this JSON file (e.g. BENCH_storm.json)")
	fs.Parse(args)
	if *smoke {
		*episode = 100 * time.Millisecond
	}
	if *replicas < 2 {
		*replicas = 2
	}
	if *providers < *replicas+2 {
		*providers = *replicas + 2
	}

	fmt.Printf("\n=== Failure storm: %d providers, R=%d, %d models, zipfian reads, hedge budget %g/s ===\n",
		*providers, *replicas, *models, *budget)

	unhedged, err := stormRun(*providers, *replicas, *models, false, *budget, *episode)
	if err != nil {
		return err
	}
	fmt.Printf("unhedged: healthy p50 %.2fms p99 %.2fms | storm p50 %.2fms p99 %.2fms, %d fails, %d failovers\n",
		unhedged.healthy.P50Ms, unhedged.healthy.P99Ms,
		unhedged.storm.P50Ms, unhedged.storm.P99Ms, unhedged.storm.Fails, unhedged.storm.Failovers)

	hedged, err := stormRun(*providers, *replicas, *models, true, *budget, *episode)
	if err != nil {
		return err
	}
	fmt.Printf("hedged:   healthy p50 %.2fms p99 %.2fms | storm p50 %.2fms p99 %.2fms, %d fails, %d failovers, %d hedges (%d won, %d cancelled, %d refused), %d score demotions\n",
		hedged.healthy.P50Ms, hedged.healthy.P99Ms,
		hedged.storm.P50Ms, hedged.storm.P99Ms, hedged.storm.Fails, hedged.storm.Failovers,
		hedged.storm.Hedges, hedged.storm.HedgeWins, hedged.storm.HedgeCancels, hedged.storm.HedgeRefused, hedged.storm.ScoreDemotes)

	// Contract checks.
	for _, r := range []*stormRunResult{unhedged, hedged} {
		if r.healthy.Fails != 0 || r.storm.Fails != 0 {
			return fmt.Errorf("failed reads despite one-good-replica invariant: healthy %d, storm %d (hedged=%v)",
				r.healthy.Fails, r.storm.Fails, r.storm.Hedged)
		}
	}
	// The absolute slack absorbs the adaptation ramp: after each fault
	// onset the score and latency quantiles need a fixed wall-time's worth
	// of samples to steer away from the newly-slow provider, so the ramp's
	// share of the storm-phase quantiles grows as episodes shrink. Scale
	// the slack inversely with episode length (5ms at the 400ms default).
	slack := 5.0 * float64(400*time.Millisecond) / float64(*episode)
	if limit := hedged.healthy.P99Ms*2 + slack; hedged.storm.P99Ms > limit {
		return fmt.Errorf("hedged storm p99 %.2fms exceeds %.2fms (healthy %.2fms x2 + %.1fms)",
			hedged.storm.P99Ms, limit, hedged.healthy.P99Ms, slack)
	}
	if hedged.storm.Hedges == 0 {
		return fmt.Errorf("hedging never engaged during the storm (want > 0 hedge launches)")
	}
	if n := unhedged.healthy.Hedges + unhedged.storm.Hedges; n != 0 {
		return fmt.Errorf("unhedged run recorded %d hedge launches (want 0)", n)
	}
	// The bucket admits at most rate x elapsed plus one refill window of
	// capacity, plus the fresh bucket's bootstrap token.
	totalHedges := hedged.healthy.Hedges + hedged.storm.Hedges
	bound := *budget*(hedged.elapsed.Seconds()+1.0) + 1
	if float64(totalHedges) > bound {
		return fmt.Errorf("hedge volume %d exceeds the budget bound %.0f (%g/s for %.2fs + one window)",
			totalHedges, bound, *budget, hedged.elapsed.Seconds())
	}
	fmt.Printf("contract holds: 0 failed reads in all phases, hedged storm p99 within 2x healthy baseline, %d hedges within budget\n",
		totalHedges)

	if *out == "" {
		return nil
	}
	entries := []stormEntry{unhedged.healthy, unhedged.storm, hedged.healthy, hedged.storm}
	data, err := json.MarshalIndent(&stormFile{Entries: entries}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", *out)
	return nil
}
