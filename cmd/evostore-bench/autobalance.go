package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/frontdoor"
	"repro/internal/heat"
	"repro/internal/metrics"
	"repro/internal/model"
)

// autobalanceEntry is one measured phase in BENCH_autobalance.json.
type autobalanceEntry struct {
	Phase        string  `json:"phase"` // "baseline" (no controller) or "controller"
	Reads        int     `json:"reads"`
	P50Ms        float64 `json:"p50_ms"`
	P99Ms        float64 `json:"p99_ms"`
	Fails        int64   `json:"fails"`
	Epoch        uint64  `json:"epoch"`
	Widened      int     `json:"widened"`
	Packed       int     `json:"packed"`
	PayloadBytes uint64  `json:"payload_bytes"`
	BudgetBps    float64 `json:"budget_bps"`
}

type autobalanceFile struct {
	Entries []autobalanceEntry `json:"entries"`
}

// runAutobalance is the heat-driven rebalancing acceptance scenario: a
// zipfian read workload concentrates heat on a few models, and the
// internal/heat controller must react — widening the hot models' replica
// sets and packing the cold ones — while the workload keeps running. The
// contract it asserts:
//
//   - the controller bumps the epoch at least once, with at least one model
//     widened above the base R and (packing enabled) at least one packed;
//   - zero failed requests throughout — reads ride the dual-epoch union
//     while the controller's migration moves data;
//   - the controller phase's p99 read latency stays within 20% of the
//     no-migration baseline (plus a 2ms absolute floor for timer noise);
//   - migration payload bytes stay within the token-bucket budget's hard
//     bound (rate × elapsed plus one burst window).
func runAutobalance(providers, models, replicas, reads int, budget float64, out string) error {
	if replicas < 2 {
		replicas = 2
	}
	if providers < replicas+1 {
		providers = replicas + 1
	}
	if models < 8 {
		models = 8
	}
	fmt.Printf("\n=== Heat-driven autobalance: %d providers, R=%d, %d models, zipfian reads, budget %g B/s ===\n",
		providers, replicas, models, budget)

	reg := metrics.Default
	// The client segment cache would absorb the repeat reads that make a
	// model hot; disable it so heat reaches the providers.
	repo, err := core.Open(core.Options{
		Providers:     providers,
		Replicas:      replicas,
		SegCacheBytes: -1,
	})
	if err != nil {
		return err
	}
	defer repo.Close()
	ctx := context.Background()

	flat, err := model.Flatten(model.Sequential("bench", 8,
		model.Dense{In: 8, Out: 8, Activation: "relu", UseBias: true},
		model.Dense{In: 8, Out: 8, Activation: "relu"},
		model.Dense{In: 8, Out: 4},
	))
	if err != nil {
		return err
	}
	var ids []core.ModelID
	for i := 0; i < models; i++ {
		id, err := repo.Store(ctx, flat, model.Materialize(flat, uint64(i+1)), 0.5)
		if err != nil {
			return fmt.Errorf("seed %d: %w", i, err)
		}
		ids = append(ids, id)
	}
	fmt.Printf("seeded %d models\n", len(ids))

	// Zipfian read phase: rank 0 (ids[0]) takes the bulk of the traffic.
	// Each phase uses the same seed, so both measure the same access
	// pattern and the latency comparison is apples to apples.
	const workers = 2
	runPhase := func() (lats []float64, fails int64) {
		var mu sync.Mutex
		var failsA atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(w + 1)))
				zipf := rand.NewZipf(rng, 1.4, 1, uint64(len(ids)-1))
				local := make([]float64, 0, reads/workers)
				for i := 0; i < reads/workers; i++ {
					id := ids[zipf.Uint64()]
					start := time.Now()
					if _, _, err := repo.Load(ctx, id); err != nil {
						failsA.Add(1)
						continue
					}
					local = append(local, time.Since(start).Seconds()*1e3)
				}
				mu.Lock()
				lats = append(lats, local...)
				mu.Unlock()
			}(w)
		}
		wg.Wait()
		sort.Float64s(lats)
		return lats, failsA.Load()
	}

	// Phase 1: baseline — the same workload with no controller running.
	baseLats, baseFails := runPhase()
	baseP50 := metrics.Percentile(baseLats, 0.50)
	baseP99 := metrics.Percentile(baseLats, 0.99)
	fmt.Printf("baseline: %d reads, p50 %.2fms p99 %.2fms, %d fails\n",
		len(baseLats), baseP50, baseP99, baseFails)
	baseline := autobalanceEntry{
		Phase: "baseline", Reads: len(baseLats),
		P50Ms: baseP50, P99Ms: baseP99, Fails: baseFails,
		Epoch: repo.PlacementTable().Epoch,
	}

	// Phase 2: the same workload with the controller stepping concurrently.
	// The baseline phase already skewed the EWMA heat, so the controller
	// has signal from its first cycle.
	ctl := heat.New(repo.Client(), heat.Config{
		PackTo:            1,
		BudgetBytesPerSec: budget,
	}, reg)
	moved := reg.Counter("client.repair_payload_bytes")
	movedBefore := moved.Load()
	phaseStart := time.Now()

	stop := make(chan struct{})
	var ctlErr error
	var ctlWG sync.WaitGroup
	ctlWG.Add(1)
	go func() {
		defer ctlWG.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
				if err := ctl.Step(ctx); err != nil {
					ctlErr = err
					return
				}
			}
		}
	}()
	ctlLats, ctlFails := runPhase()
	close(stop)
	ctlWG.Wait()
	if ctlErr == nil && repo.PlacementTable().Epoch == 0 {
		// Smoke-scale read phases can finish before the first controller
		// tick; the EWMA heat survives the phase, so one explicit step
		// still exercises the full plan → rebalance → migrate path.
		ctlErr = ctl.Step(ctx)
	}
	if ctlErr != nil {
		return fmt.Errorf("controller step: %w", ctlErr)
	}
	elapsed := time.Since(phaseStart)
	movedBytes := moved.Load() - movedBefore
	ctlP50 := metrics.Percentile(ctlLats, 0.50)
	ctlP99 := metrics.Percentile(ctlLats, 0.99)

	tbl := repo.PlacementTable()
	widened, packed := 0, 0
	for _, r := range tbl.Overrides {
		if r > tbl.R() {
			widened++
		} else if r < tbl.R() {
			packed++
		}
	}
	fmt.Printf("controller: %d reads, p50 %.2fms p99 %.2fms, %d fails; %s, %d widened, %d packed, %s migrated\n",
		len(ctlLats), ctlP50, ctlP99, ctlFails, tbl, widened, packed, metrics.HumanBytes(int64(movedBytes)))

	// Contract checks.
	if baseFails != 0 || ctlFails != 0 {
		return fmt.Errorf("%d baseline + %d controller-phase reads failed (want 0)", baseFails, ctlFails)
	}
	if tbl.Epoch < 1 {
		return fmt.Errorf("controller never rebalanced: still at %s", tbl)
	}
	if widened < 1 {
		return fmt.Errorf("no model widened above R=%d under a zipfian workload: %s", tbl.R(), tbl)
	}
	if packed < 1 {
		return fmt.Errorf("no cold model packed with PackTo=1: %s", tbl)
	}
	if hotSet := tbl.ReplicaSet(ids[0]); len(hotSet) <= replicas {
		return fmt.Errorf("hottest model %d still has %d replicas (want > %d)", ids[0], len(hotSet), replicas)
	}
	// p99 bound: within 20% of the no-migration baseline, with a small
	// absolute floor so microsecond-scale baselines don't fail on noise.
	if limit := baseP99*1.2 + 2.0; ctlP99 > limit {
		return fmt.Errorf("controller-phase p99 %.2fms exceeds %.2fms (baseline %.2fms + 20%% + 2ms)",
			ctlP99, limit, baseP99)
	}
	// Budget bound: the token bucket admits at most rate × elapsed plus one
	// burst window (capacity = rate × frontdoor.Window) of payload bytes.
	if budget > 0 {
		bound := budget * (elapsed.Seconds() + frontdoor.Window.Seconds())
		if float64(movedBytes) > bound {
			return fmt.Errorf("migration moved %d payload bytes, over the budget bound %.0f (%g B/s for %.2fs + one window)",
				movedBytes, bound, budget, elapsed.Seconds())
		}
	}
	// The workload keeps serving under the new table.
	for _, id := range ids {
		if _, _, err := repo.Load(ctx, id); err != nil {
			return fmt.Errorf("load %d under the rebalanced table: %w", id, err)
		}
	}
	fmt.Printf("contract holds: 0 failed reads, hot widened, cold packed, p99 within bound, payload within budget (heat.rebalances=%d lost_race=%d)\n",
		reg.Counter("heat.rebalances").Load(), reg.Counter("heat.lost_race").Load())

	if out == "" {
		return nil
	}
	entries := []autobalanceEntry{baseline, {
		Phase: "controller", Reads: len(ctlLats),
		P50Ms: ctlP50, P99Ms: ctlP99, Fails: ctlFails,
		Epoch: tbl.Epoch, Widened: widened, Packed: packed,
		PayloadBytes: movedBytes, BudgetBps: budget,
	}}
	data, err := json.MarshalIndent(&autobalanceFile{Entries: entries}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", out)
	return nil
}
