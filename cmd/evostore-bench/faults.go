package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/resilient"
	"repro/internal/rpc"
)

// runFaults drives a store/load/retire workload through an embedded
// deployment whose fabric injects faults, proving the resilience
// middleware out end to end: every operation must complete despite the
// drops, the breaker must shed and recover around a partition, and the
// repository must drain to zero afterwards — any refcount drift from a
// double-executed IncRef/DecRef (or a retire leg leaked by a replica
// fan-out) would leave segments or refs behind. With -replicas R>1 the
// partition phase becomes the kill-one-provider availability check: every
// read must complete via replica failover with zero client-visible errors.
func runFaults(args []string) error {
	fs := flag.NewFlagSet("faults", flag.ExitOnError)
	providers := fs.Int("providers", 4, "storage providers")
	models := fs.Int("models", 32, "models to store (half derived via LCP transfer)")
	drop := fs.Float64("drop", 0.1, "request-drop probability on the faulty provider")
	dropResp := fs.Float64("drop-response", 0.1, "response-drop probability (handler runs, reply lost)")
	faultAt := fs.Int("fault-provider", 1, "provider the faults apply to (-1 = all)")
	seed := fs.Int64("seed", 1, "fault schedule seed")
	partition := fs.Bool("partition", true, "additionally partition the faulty provider mid-run and heal it")
	replicas := fs.Int("replicas", 1, "N-way replication factor (R>1: reads must survive a partitioned provider via failover)")
	fs.Parse(args)

	reg := metrics.Default
	repo, err := core.Open(core.Options{
		Providers: *providers,
		Replicas:  *replicas,
		Faults: func(i int) *rpc.FaultConfig {
			if *faultAt >= 0 && i != *faultAt {
				return nil
			}
			return &rpc.FaultConfig{
				Seed:         *seed + int64(i),
				DropRequest:  *drop,
				DropResponse: *dropResp,
				Registry:     reg,
			}
		},
		Resilience: &resilient.Options{
			MaxAttempts: 10,
			BackoffBase: time.Millisecond,
			BackoffMax:  20 * time.Millisecond,
			// High enough that random drop runs never trip the breaker
			// (p^12 is negligible even at aggressive drop rates); a real
			// partition still trips it within two calls.
			Threshold: 12,
			Cooldown:  50 * time.Millisecond,
			Registry:  reg,
		},
	})
	if err != nil {
		return err
	}
	defer repo.Close()

	ctx := context.Background()
	fmt.Printf("\n=== Fault injection: %d providers, R=%d, drop=%.0f%% drop-response=%.0f%% on provider %d ===\n",
		*providers, repo.Replicas(), *drop*100, *dropResp*100, *faultAt)

	flat, err := model.Flatten(model.Sequential("bench", 8,
		model.Dense{In: 8, Out: 8, Activation: "relu", UseBias: true},
		model.Dense{In: 8, Out: 8, Activation: "relu"},
		model.Dense{In: 8, Out: 4},
	))
	if err != nil {
		return err
	}
	last := graph.VertexID(flat.Graph.NumVertices() - 1)

	// Store: from-scratch bases and LCP-derived children, so retires later
	// exercise cross-provider DecRefs of inherited tensors.
	var ids []core.ModelID
	for i := 0; i < *models; i++ {
		ws := model.Materialize(flat, uint64(i+1))
		anc, found, err := repo.BestAncestor(ctx, flat)
		var id core.ModelID
		if found && i%2 == 1 {
			if err := repo.TransferPrefix(ctx, flat, ws, anc); err != nil {
				return fmt.Errorf("transfer for model %d: %w", i, err)
			}
			// Mutate the head so the child owns at least one vertex.
			ws[last] = model.Materialize(flat, uint64(1000+i))[last]
			id, err = repo.StoreDerived(ctx, flat, ws, 0.5, anc, nil)
		} else {
			id, err = repo.Store(ctx, flat, ws, 0.5)
		}
		if err != nil {
			return fmt.Errorf("store model %d: %w", i, err)
		}
		_ = anc
		ids = append(ids, id)
	}
	fmt.Printf("stored %d models through the faulty fabric\n", len(ids))

	// Load everything back; retries must hide every injected fault.
	for _, id := range ids {
		if _, _, err := repo.Load(ctx, id); err != nil {
			return fmt.Errorf("load %d: %w", id, err)
		}
	}
	fmt.Printf("loaded %d models back intact\n", len(ids))

	if *partition && *faultAt >= 0 {
		if err := partitionDemo(ctx, repo, *faultAt, ids); err != nil {
			return err
		}
	}

	// Retire everything. Response drops make the provider execute DecRefs
	// whose replies are lost; the ReqID dedup must stop the retries from
	// decrementing twice, or the drain check below fails.
	for _, id := range ids {
		if _, err := repo.Retire(ctx, id); err != nil {
			return fmt.Errorf("retire %d: %w", id, err)
		}
	}
	stats, err := repo.Stats(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("retired %d models; remaining models=%d segments=%d live refs=%d\n",
		len(ids), stats.Models, stats.Segments, stats.LiveRefs)
	if stats.Models != 0 || stats.Segments != 0 || stats.LiveRefs != 0 {
		return fmt.Errorf("refcount drift: repository did not drain: %+v", *stats)
	}
	fmt.Println("repository drained completely: no refcount drift under retried mutations")

	fmt.Println("\nResilience counters:")
	reg.Render(os.Stdout)
	return nil
}

// partitionDemo cuts one provider off. With R=1 it shows the breaker
// shedding calls to the dead provider while the rest of the deployment
// keeps serving; with R>1 it is the kill-one-provider availability check:
// every read — including those homed on the dead provider — must complete
// via replica failover, with zero client-visible errors. Afterwards the
// partition heals and the breaker must close again.
func partitionDemo(ctx context.Context, repo *core.Repository, target int, ids []core.ModelID) error {
	faults := repo.FaultConns()
	if target >= len(faults) || faults[target] == nil {
		return fmt.Errorf("no fault wrapper on provider %d", target)
	}
	// A load touches the model's home provider plus every provider owning
	// an inherited segment, so classify by the full owner lineage: with
	// R=1, only models with no dependency on the dead provider must keep
	// working; with R>1 the classification is moot — everything must.
	n := repo.NumProviders()
	var depends, independent []core.ModelID
	for _, id := range ids {
		meta, err := repo.GetMeta(ctx, id)
		if err != nil {
			return err
		}
		dep := int(uint64(id)%uint64(n)) == target
		for _, g := range meta.OwnerMap.Owners() {
			if int(uint64(g.Owner)%uint64(n)) == target {
				dep = true
			}
		}
		if dep {
			depends = append(depends, id)
		} else {
			independent = append(independent, id)
		}
	}

	faults[target].SetPartitioned(true)
	fmt.Printf("\npartitioned provider %d\n", target)
	if repo.Replicas() > 1 {
		// Availability contract: the surviving replicas answer everything.
		readErrs := 0
		for _, id := range ids {
			if _, _, err := repo.Load(ctx, id); err != nil {
				readErrs++
				fmt.Printf("  read failover FAILED for model %d: %v\n", id, err)
			}
		}
		if readErrs > 0 {
			return fmt.Errorf("replicated reads: %d/%d loads failed with one provider partitioned (want 0)",
				readErrs, len(ids))
		}
		fmt.Printf("replicated reads: %d/%d loads served via failover during the partition (0 errors)\n",
			len(ids), len(ids))
		fmt.Printf("  (%d models homed on the dead provider, %d independent)\n", len(depends), len(independent))
	} else {
		failed := 0
		for _, id := range depends {
			if _, _, err := repo.Load(ctx, id); err != nil {
				failed++
			}
		}
		fmt.Printf("loads depending on the dead provider: %d/%d failed fast (breaker shedding)\n",
			failed, len(depends))
		for _, id := range independent {
			if _, _, err := repo.Load(ctx, id); err != nil {
				return fmt.Errorf("load %d on healthy providers during partition: %w", id, err)
			}
		}
		fmt.Printf("loads on healthy providers only: %d/%d succeeded during the partition\n",
			len(independent), len(independent))
	}

	faults[target].SetPartitioned(false)
	// Let the breaker's cooldown elapse, then confirm recovery. With R>1
	// loads would be answered by surviving replicas even while the healed
	// provider's breaker is still open, so probe with Stats instead: it
	// broadcasts to every provider and fails while any leg is shed.
	deadline := time.Now().Add(5 * time.Second)
	for {
		healed := true
		if repo.Replicas() > 1 {
			if _, err := repo.Stats(ctx); err != nil {
				healed = false
			}
		} else {
			for _, id := range depends {
				if _, _, err := repo.Load(ctx, id); err != nil {
					healed = false
					break
				}
			}
		}
		if healed {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("provider %d did not recover after healing the partition", target)
		}
		time.Sleep(20 * time.Millisecond)
	}
	fmt.Printf("healed provider %d: breaker closed, loads succeed again\n", target)
	return nil
}
