package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/resilient"
	"repro/internal/rpc"
)

// runFaults drives a store/load/retire workload through an embedded
// deployment whose fabric injects faults, proving the resilience
// middleware out end to end: every operation must complete despite the
// drops, the breaker must shed and recover around a partition, and the
// repository must drain to zero afterwards — any refcount drift from a
// double-executed IncRef/DecRef (or a retire leg leaked by a replica
// fan-out) would leave segments or refs behind. With -replicas R>1 the
// partition phase becomes the kill-one-provider availability check: every
// read must complete via replica failover with zero client-visible errors.
func runFaults(args []string) error {
	fs := flag.NewFlagSet("faults", flag.ExitOnError)
	providers := fs.Int("providers", 4, "storage providers")
	models := fs.Int("models", 32, "models to store (half derived via LCP transfer)")
	drop := fs.Float64("drop", 0.1, "request-drop probability on the faulty provider")
	dropResp := fs.Float64("drop-response", 0.1, "response-drop probability (handler runs, reply lost)")
	faultAt := fs.Int("fault-provider", 1, "provider the faults apply to (-1 = all)")
	seed := fs.Int64("seed", 1, "fault schedule seed")
	partition := fs.Bool("partition", true, "additionally partition the faulty provider mid-run and heal it")
	replicas := fs.Int("replicas", 1, "N-way replication factor (R>1: reads must survive a partitioned provider via failover)")
	repair := fs.Bool("repair", false, "run the replica-repair scenario instead: kill a replica mid-workload, heal it, and assert anti-entropy converges every digest with zero lost refcount deltas")
	rebalance := fs.Bool("rebalance", false, "run the elasticity scenario instead: drain one provider and join a spare mid-workload with zero failed requests, then audit digests and drain to zero")
	restart := fs.Bool("restart", false, "run the crash-recovery scenario instead: kill -9 a provider on a real LSM dir mid-workload, reopen the same dir, and assert the replayed catalog confines repair to the outage's divergence tail")
	autobalance := fs.Bool("autobalance", false, "run the heat-driven autobalance scenario instead: a zipfian read workload skews per-model heat, the controller widens hot models and packs cold ones with zero failed requests, bounded p99 impact, and budgeted migration bytes")
	reads := fs.Int("reads", 2000, "with -autobalance: zipfian reads per measured phase")
	budget := fs.Float64("budget", 8e6, "with -autobalance: migration payload budget in bytes/sec (0 = unpaced)")
	out := fs.String("out", "", "with -rebalance/-autobalance: write benchmark results into this JSON file (e.g. BENCH_rebalance.json)")
	fs.Parse(args)

	if *repair {
		return runRepair(*providers, *models, *replicas, *faultAt)
	}
	if *restart {
		return runRestart(*providers, *models, *replicas, *faultAt)
	}
	if *rebalance {
		return runRebalance(*providers, *models, *replicas, *out)
	}
	if *autobalance {
		return runAutobalance(*providers, *models, *replicas, *reads, *budget, *out)
	}

	reg := metrics.Default
	repo, err := core.Open(core.Options{
		Providers: *providers,
		Replicas:  *replicas,
		Faults: func(i int) *rpc.FaultConfig {
			if *faultAt >= 0 && i != *faultAt {
				return nil
			}
			return &rpc.FaultConfig{
				Seed:         *seed + int64(i),
				DropRequest:  *drop,
				DropResponse: *dropResp,
				Registry:     reg,
			}
		},
		Resilience: &resilient.Options{
			MaxAttempts: 10,
			BackoffBase: time.Millisecond,
			BackoffMax:  20 * time.Millisecond,
			// High enough that random drop runs never trip the breaker
			// (p^12 is negligible even at aggressive drop rates); a real
			// partition still trips it within two calls.
			Threshold: 12,
			Cooldown:  50 * time.Millisecond,
			Registry:  reg,
		},
	})
	if err != nil {
		return err
	}
	defer repo.Close()

	ctx := context.Background()
	fmt.Printf("\n=== Fault injection: %d providers, R=%d, drop=%.0f%% drop-response=%.0f%% on provider %d ===\n",
		*providers, repo.Replicas(), *drop*100, *dropResp*100, *faultAt)

	flat, err := model.Flatten(model.Sequential("bench", 8,
		model.Dense{In: 8, Out: 8, Activation: "relu", UseBias: true},
		model.Dense{In: 8, Out: 8, Activation: "relu"},
		model.Dense{In: 8, Out: 4},
	))
	if err != nil {
		return err
	}
	last := graph.VertexID(flat.Graph.NumVertices() - 1)

	// Store: from-scratch bases and LCP-derived children, so retires later
	// exercise cross-provider DecRefs of inherited tensors.
	var ids []core.ModelID
	for i := 0; i < *models; i++ {
		ws := model.Materialize(flat, uint64(i+1))
		anc, found, err := repo.BestAncestor(ctx, flat)
		var id core.ModelID
		if found && i%2 == 1 {
			if err := repo.TransferPrefix(ctx, flat, ws, anc); err != nil {
				return fmt.Errorf("transfer for model %d: %w", i, err)
			}
			// Mutate the head so the child owns at least one vertex.
			ws[last] = model.Materialize(flat, uint64(1000+i))[last]
			id, err = repo.StoreDerived(ctx, flat, ws, 0.5, anc, nil)
		} else {
			id, err = repo.Store(ctx, flat, ws, 0.5)
		}
		if err != nil {
			return fmt.Errorf("store model %d: %w", i, err)
		}
		_ = anc
		ids = append(ids, id)
	}
	fmt.Printf("stored %d models through the faulty fabric\n", len(ids))

	// Load everything back; retries must hide every injected fault.
	for _, id := range ids {
		if _, _, err := repo.Load(ctx, id); err != nil {
			return fmt.Errorf("load %d: %w", id, err)
		}
	}
	fmt.Printf("loaded %d models back intact\n", len(ids))

	if *partition && *faultAt >= 0 {
		if err := partitionDemo(ctx, repo, *faultAt, ids); err != nil {
			return err
		}
	}

	// Retire everything. Response drops make the provider execute DecRefs
	// whose replies are lost; the ReqID dedup must stop the retries from
	// decrementing twice, or the drain check below fails.
	for _, id := range ids {
		if _, err := repo.Retire(ctx, id); err != nil {
			return fmt.Errorf("retire %d: %w", id, err)
		}
	}
	stats, err := repo.Stats(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("retired %d models; remaining models=%d segments=%d live refs=%d\n",
		len(ids), stats.Models, stats.Segments, stats.LiveRefs)
	if stats.Models != 0 || stats.Segments != 0 || stats.LiveRefs != 0 {
		return fmt.Errorf("refcount drift: repository did not drain: %+v", *stats)
	}
	fmt.Println("repository drained completely: no refcount drift under retried mutations")

	fmt.Println("\nResilience counters:")
	reg.Render(os.Stdout)
	return nil
}

// partitionDemo cuts one provider off. With R=1 it shows the breaker
// shedding calls to the dead provider while the rest of the deployment
// keeps serving; with R>1 it is the kill-one-provider availability check:
// every read — including those homed on the dead provider — must complete
// via replica failover, with zero client-visible errors. Afterwards the
// partition heals and the breaker must close again.
func partitionDemo(ctx context.Context, repo *core.Repository, target int, ids []core.ModelID) error {
	faults := repo.FaultConns()
	if target >= len(faults) || faults[target] == nil {
		return fmt.Errorf("no fault wrapper on provider %d", target)
	}
	// A load touches the model's home provider plus every provider owning
	// an inherited segment, so classify by the full owner lineage: with
	// R=1, only models with no dependency on the dead provider must keep
	// working; with R>1 the classification is moot — everything must.
	n := repo.NumProviders()
	var depends, independent []core.ModelID
	for _, id := range ids {
		meta, err := repo.GetMeta(ctx, id)
		if err != nil {
			return err
		}
		dep := int(uint64(id)%uint64(n)) == target
		for _, g := range meta.OwnerMap.Owners() {
			if int(uint64(g.Owner)%uint64(n)) == target {
				dep = true
			}
		}
		if dep {
			depends = append(depends, id)
		} else {
			independent = append(independent, id)
		}
	}

	faults[target].SetPartitioned(true)
	fmt.Printf("\npartitioned provider %d\n", target)
	if repo.Replicas() > 1 {
		// Availability contract: the surviving replicas answer everything.
		readErrs := 0
		for _, id := range ids {
			if _, _, err := repo.Load(ctx, id); err != nil {
				readErrs++
				fmt.Printf("  read failover FAILED for model %d: %v\n", id, err)
			}
		}
		if readErrs > 0 {
			return fmt.Errorf("replicated reads: %d/%d loads failed with one provider partitioned (want 0)",
				readErrs, len(ids))
		}
		fmt.Printf("replicated reads: %d/%d loads served via failover during the partition (0 errors)\n",
			len(ids), len(ids))
		fmt.Printf("  (%d models homed on the dead provider, %d independent)\n", len(depends), len(independent))
	} else {
		failed := 0
		for _, id := range depends {
			if _, _, err := repo.Load(ctx, id); err != nil {
				failed++
			}
		}
		fmt.Printf("loads depending on the dead provider: %d/%d failed fast (breaker shedding)\n",
			failed, len(depends))
		for _, id := range independent {
			if _, _, err := repo.Load(ctx, id); err != nil {
				return fmt.Errorf("load %d on healthy providers during partition: %w", id, err)
			}
		}
		fmt.Printf("loads on healthy providers only: %d/%d succeeded during the partition\n",
			len(independent), len(independent))
	}

	faults[target].SetPartitioned(false)
	// Let the breaker's cooldown elapse, then confirm recovery. With R>1
	// loads would be answered by surviving replicas even while the healed
	// provider's breaker is still open, so probe with Stats instead: it
	// broadcasts to every provider and fails while any leg is shed.
	deadline := time.Now().Add(5 * time.Second)
	for {
		healed := true
		if repo.Replicas() > 1 {
			if _, err := repo.Stats(ctx); err != nil {
				healed = false
			}
		} else {
			for _, id := range depends {
				if _, _, err := repo.Load(ctx, id); err != nil {
					healed = false
					break
				}
			}
		}
		if healed {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("provider %d did not recover after healing the partition", target)
		}
		time.Sleep(20 * time.Millisecond)
	}
	fmt.Printf("healed provider %d: breaker closed, loads succeed again\n", target)
	return nil
}

// runRepair is the anti-entropy convergence demonstration: one replica is
// partitioned away mid-workload while partial writes keep every store,
// retire, and load succeeding; the partition then heals and a repair pass
// must converge every replica set to bit-identical digests. The final
// retire-and-drain proves no refcount delta was lost in the outage — any
// dropped IncRef/DecRef leg would leave segments or refs behind.
func runRepair(providers, models, replicas, target int) error {
	if replicas < 2 {
		replicas = 2
	}
	if providers < replicas+1 {
		providers = replicas + 1
	}
	if target < 0 || target >= providers {
		target = 1
	}
	reg := metrics.Default
	repo, err := core.Open(core.Options{
		Providers:     providers,
		Replicas:      replicas,
		PartialWrites: true,
		// Fault wrappers on every provider (no random drops): the scenario
		// only needs the partition switch.
		Faults: func(i int) *rpc.FaultConfig {
			return &rpc.FaultConfig{Seed: int64(i + 1), Registry: reg}
		},
		Resilience: &resilient.Options{
			MaxAttempts: 4,
			BackoffBase: time.Millisecond,
			BackoffMax:  10 * time.Millisecond,
			Threshold:   3,
			Cooldown:    50 * time.Millisecond,
			Registry:    reg,
		},
	})
	if err != nil {
		return err
	}
	defer repo.Close()

	ctx := context.Background()
	fmt.Printf("\n=== Replica repair: %d providers, R=%d, killing provider %d mid-workload ===\n",
		providers, repo.Replicas(), target)

	flat, err := model.Flatten(model.Sequential("bench", 8,
		model.Dense{In: 8, Out: 8, Activation: "relu", UseBias: true},
		model.Dense{In: 8, Out: 8, Activation: "relu"},
		model.Dense{In: 8, Out: 4},
	))
	if err != nil {
		return err
	}
	last := graph.VertexID(flat.Graph.NumVertices() - 1)

	// Phase 1: healthy writes, so the outage has inherited state to damage.
	pre := models / 2
	if pre < 2 {
		pre = 2
	}
	var ids []core.ModelID
	for i := 0; i < pre; i++ {
		id, err := repo.Store(ctx, flat, model.Materialize(flat, uint64(i+1)), 0.5)
		if err != nil {
			return fmt.Errorf("healthy store %d: %w", i, err)
		}
		ids = append(ids, id)
	}
	fmt.Printf("stored %d models with all replicas healthy\n", pre)

	// Phase 2: kill the replica and keep writing. Every operation must
	// still succeed — legs on the dead provider are recorded as partial
	// writes for the repairer, not failed.
	faults := repo.FaultConns()
	if target >= len(faults) || faults[target] == nil {
		return fmt.Errorf("no fault wrapper on provider %d", target)
	}
	faults[target].SetPartitioned(true)
	fmt.Printf("partitioned provider %d; continuing the workload\n", target)

	var retired []core.ModelID
	for i := pre; i < pre+models-pre; i++ {
		ws := model.Materialize(flat, uint64(i+1))
		var id core.ModelID
		if i%2 == 1 {
			anc, found, err := repo.BestAncestor(ctx, flat)
			if err != nil {
				return fmt.Errorf("ancestor query during outage: %w", err)
			}
			if found {
				if err := repo.TransferPrefix(ctx, flat, ws, anc); err != nil {
					return fmt.Errorf("transfer during outage: %w", err)
				}
				ws[last] = model.Materialize(flat, uint64(1000+i))[last]
				id, err = repo.StoreDerived(ctx, flat, ws, 0.5, anc, nil)
				if err != nil {
					return fmt.Errorf("derived store %d during outage: %w", i, err)
				}
				ids = append(ids, id)
				continue
			}
		}
		id, err = repo.Store(ctx, flat, ws, 0.5)
		if err != nil {
			return fmt.Errorf("store %d during outage: %w", i, err)
		}
		ids = append(ids, id)
	}
	// Retire one healthy-era model during the outage: the tombstone and its
	// DecRef deltas only reach the survivors and must be replayed by repair.
	if _, err := repo.Retire(ctx, ids[0]); err != nil {
		return fmt.Errorf("retire during outage: %w", err)
	}
	retired = append(retired, ids[0])
	// Reads must keep working throughout via replica failover.
	for _, id := range ids[1:] {
		if _, _, err := repo.Load(ctx, id); err != nil {
			return fmt.Errorf("load %d during outage: %w", id, err)
		}
	}
	partials := reg.Counter("client.partial_write").Load()
	fmt.Printf("outage workload done: %d stores, 1 retire, %d loads, %d partial writes accepted\n",
		len(ids)-pre, len(ids)-1, partials)
	if partials == 0 {
		return fmt.Errorf("no partial writes were recorded with a replica down")
	}

	// Phase 3: heal and wait for the breaker to close again (Stats
	// broadcasts to every provider, so it fails while any leg is shed).
	faults[target].SetPartitioned(false)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := repo.Stats(ctx); err == nil {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("provider %d did not recover after healing", target)
		}
		time.Sleep(20 * time.Millisecond)
	}
	fmt.Printf("healed provider %d: breaker closed\n", target)

	// Phase 4: anti-entropy. One pass must converge everything.
	rs, err := repo.RepairAll(ctx)
	if err != nil {
		return fmt.Errorf("repair pass: %w", err)
	}
	fmt.Printf("repair pass: checked=%d repaired=%d skipped=%d\n", rs.Checked, rs.Repaired, rs.Skipped)
	if diverged, err := repo.RepairCheck(ctx); err != nil {
		return fmt.Errorf("post-repair check: %w", err)
	} else if len(diverged) != 0 {
		return fmt.Errorf("still diverged after repair: %v", diverged)
	}

	// Independent of the repairer's own digest RPCs: read each replica's
	// digest straight off the provider structs and demand bit-identical
	// state across every replica set.
	provs := repo.Providers()
	for _, id := range ids {
		set := repo.ReplicaSet(id)
		d0 := provs[set[0]].Digest(id)
		for _, pi := range set[1:] {
			if di := provs[pi].Digest(id); !d0.Converged(di) {
				return fmt.Errorf("model %d: replica %d digest %+v != replica %d digest %+v",
					id, set[0], d0, pi, di)
			}
		}
	}
	fmt.Printf("digest audit: %d models bit-identical across their replica sets\n", len(ids))

	// Phase 5: retire everything and drain. A single lost refcount delta
	// (an IncRef or DecRef leg swallowed by the outage) leaves segments or
	// live refs behind and fails this check.
	for _, id := range ids[1:] {
		if _, err := repo.Retire(ctx, id); err != nil {
			return fmt.Errorf("final retire %d: %w", id, err)
		}
		retired = append(retired, id)
	}
	stats, err := repo.Stats(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("retired %d models; remaining models=%d segments=%d live refs=%d\n",
		len(retired), stats.Models, stats.Segments, stats.LiveRefs)
	if stats.Models != 0 || stats.Segments != 0 || stats.LiveRefs != 0 {
		return fmt.Errorf("refcount drift: repository did not drain after repair: %+v", *stats)
	}
	fmt.Println("repository drained completely: zero refcount deltas lost to the outage")

	fmt.Println("\nRepair counters:")
	reg.Render(os.Stdout)
	return nil
}
