// Command evostore-nas runs an end-to-end network architecture search with
// transfer learning against a real EvoStore repository: the full
// DeepHyper-style pipeline of paper §4.3, with surrogate training.
//
// Usage:
//
//	evostore-nas [-workers 8] [-budget 200] [-population 50]
//	             [-providers 4 | -attach host1:7070,host2:7070]
//	             [-retire] [-timeline]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/nas"
	"repro/internal/rpc"
)

func main() {
	workers := flag.Int("workers", 8, "concurrent worker goroutines")
	budget := flag.Int("budget", 200, "candidates to evaluate")
	population := flag.Int("population", 50, "aged-evolution population size")
	sample := flag.Int("sample", 10, "tournament sample size")
	providers := flag.Int("providers", 4, "embedded provider count (ignored with -attach)")
	attach := flag.String("attach", "", "comma-separated external provider addresses")
	replicas := flag.Int("replicas", 1, "deployment replication factor R (must match every other client)")
	retire := flag.Bool("retire", true, "retire aged-out candidates from the repository")
	timeline := flag.Bool("timeline", false, "render the task timeline")
	seed := flag.Int64("seed", 7, "search seed")
	positions := flag.Int("positions", 16, "search-space cell positions")
	width := flag.Int("width", 16, "model feature width")
	flag.Parse()

	var repo *core.Repository
	if *attach != "" {
		var conns []rpc.Conn
		for _, addr := range strings.Split(*attach, ",") {
			conns = append(conns, rpc.NewPool(strings.TrimSpace(addr), 4, rpc.DialTCP))
		}
		repo = core.Attach(conns, client.WithReplicas(*replicas))
	} else {
		var err error
		repo, err = core.Open(core.Options{Providers: *providers, Replicas: *replicas})
		if err != nil {
			log.Fatal(err)
		}
	}
	defer repo.Close()

	cfg := nas.RealConfig{
		Workers:       *workers,
		Space:         nas.NewSpace(*positions, 8, *width),
		Population:    *population,
		Sample:        *sample,
		Budget:        *budget,
		Retire:        *retire,
		SurrogateSeed: *seed,
		SearchSeed:    *seed + 1,
	}
	log.Printf("search space: %.3g candidates; budget %d; %d workers",
		cfg.Space.Size(), cfg.Budget, cfg.Workers)

	res, err := nas.RunReal(context.Background(), repo, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nevaluated %d candidates in %v\n", len(res.History), res.Makespan)
	fmt.Printf("best candidate: seq=%s quality=%.4f experience=%.2f\n",
		res.Best.Seq, res.Best.Quality, res.Best.Experience)

	st, err := repo.Stats(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repository: %d live models, %d segments, %s\n",
		st.Models, st.Segments, metrics.HumanBytes(int64(st.SegmentBytes)))

	mean, std := res.Trace.DurationStats()
	fmt.Printf("task durations: mean %.3fs stddev %.3fs\n", mean, std)
	if *timeline {
		res.Trace.RenderASCII(os.Stdout, *workers, 100)
	}
}
