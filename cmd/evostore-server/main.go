// Command evostore-server runs one EvoStore storage provider on TCP.
//
// A deployment is a fixed, ordered list of providers; every client must be
// given the same ordered address list (the order defines provider IDs for
// the static model→provider hash).
//
// Usage:
//
//	evostore-server -listen :7070 -id 0 [-data /path/to/dir] [-request-timeout 30s]
//	                [-deploy-size N -replicas R] [-metrics-interval 1m] [-dedup-ttl 2m]
//	                [-dedup] [-cold-sweep-interval 1h] [-repair-interval 30s -repair-peers a,b]
//	                [-throttle-ops N -throttle-bytes N -throttle-window 60s]
//	                [-autobalance -autobalance-interval 5s -heat-hot 4 -heat-cold 0.25
//	                 -heat-widen 0 -heat-pack 0 -migration-budget N]
//	                [-hedged-reads -hedge-budget N]
//
// Without -data the provider uses the in-memory backend (the paper's
// synchronized-pool mode); with -data it persists segments in an LSM store
// (the RocksDB-like mode) AND runs the durable catalog: model metadata,
// refcounts, repair journals and tombstones are written through to the
// store, an epoch-versioned MANIFEST (format version, provider identity,
// placement epoch, feature flags) gates reopen, and a crashed provider
// restarted on the same directory replays its catalog, re-announces itself
// to -repair-peers (adopting the newest placement epoch), and lets the
// anti-entropy repairer converge only the writes it missed while down.
//
// -dedup wraps the backend with content-addressed chunk storage: identical
// 64 KiB chunks across segments are stored once (see internal/dedup).
// -cold-sweep-interval additionally DEFLATE-compresses entries idle for at
// least that long, in place; reads inflate transparently. Both are local
// storage concerns — the wire format and replica digests are unchanged, so
// a deployment may mix dedup and plain providers.
//
// -throttle-ops / -throttle-bytes arm per-tenant read admission control
// (the front door, see internal/frontdoor): each tenant gets token buckets
// refilled at the configured rates with a -throttle-window burst, and a
// read over budget is refused with a typed retry-after error that clients
// back off on without tripping their circuit breakers. Clients name their
// tenant via client.WithTenant (evostore-ctl -tenant); untagged clients
// share the anonymous tenant's budget.
//
// -autobalance runs the heat-driven placement controller (internal/heat)
// in this process: every -autobalance-interval it aggregates the per-model
// read/write heat all providers export on their metrics RPC, widens models
// hotter than -heat-hot times the mean to -heat-widen replicas, packs
// models colder than -heat-cold times the mean to -heat-pack replicas, and
// drives the resulting epoch bump through the rebalancer with migration
// payload bytes paced to -migration-budget. Run it on exactly one provider
// (it needs -repair-peers); a second controller or a concurrent manual
// rebalance safely loses the epoch race and re-plans.
//
// -hedged-reads arms tail-latency hedging on the in-server deployment
// client (the one -repair-interval / -autobalance run over): a replicated
// read that is slow on its preferred replica launches a second attempt
// against the next-best replica after a health-score-scaled delay, first
// success wins, and -hedge-budget caps hedge volume in hedges/sec.
//
// With -deploy-size (and the deployment's -replicas) the provider arms its
// replica-placement guard: writes for models whose replica set does not
// include this provider are rejected, catching clients configured with a
// wrong address list or replication factor. The guard is epoch-aware — a
// rebalance (evostore-ctl placement add/remove/drain) installs newer
// tables over the set_placement RPC, and rejected clients receive the
// current table so they self-update. The flag combination is validated at
// startup and inconsistencies are fatal, never silently clamped.
//
// Elasticity:
//
//	-join   start as a spare: -id may lie outside [0..deploy-size); the
//	        provider rejects writes until a placement add makes it a member
//	-drain  on SIGTERM/SIGINT, migrate this provider's models to the rest
//	        of the deployment (an epoch bump removing it) before exiting;
//	        needs -repair-peers and -deploy-size
//
// -metrics-interval periodically logs the process metrics counters; the
// same snapshot is always available to evostore-ctl via the metrics RPC.
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/client"
	"repro/internal/dedup"
	"repro/internal/frontdoor"
	"repro/internal/heat"
	"repro/internal/kvstore"
	"repro/internal/metrics"
	"repro/internal/placement"
	"repro/internal/provider"
	"repro/internal/proto"
	"repro/internal/resilient"
	"repro/internal/rpc"
)

func main() {
	listen := flag.String("listen", ":7070", "TCP listen address")
	id := flag.Int("id", 0, "provider ID (its index in the deployment's address list)")
	data := flag.String("data", "", "persistence directory (empty = in-memory backend)")
	reqTimeout := flag.Duration("request-timeout", 30*time.Second,
		"server-side deadline per request without a caller deadline (0 = none)")
	deploySize := flag.Int("deploy-size", 0,
		"number of providers in the deployment (0 = accept writes for any model)")
	replicas := flag.Int("replicas", 1,
		"deployment replication factor R (with -deploy-size: accept writes only for models whose replica set includes this provider)")
	metricsEvery := flag.Duration("metrics-interval", 0,
		"log a metrics-counter snapshot this often (0 = never)")
	dedupTTL := flag.Duration("dedup-ttl", provider.DefaultDedupTTL,
		"lifetime of request-dedup entries; must cover the clients' retry budget (0 = never expire by age)")
	repairEvery := flag.Duration("repair-interval", 0,
		"run an in-process anti-entropy repairer over the whole deployment this often (0 = off; needs -repair-peers)")
	repairPeers := flag.String("repair-peers", "",
		"comma-separated full deployment address list, in canonical order (required by -repair-interval and -drain)")
	join := flag.Bool("join", false,
		"start as a spare outside the epoch-0 member list (-id may be >= -deploy-size); reject writes until a placement add joins this provider")
	drain := flag.Bool("drain", false,
		"on shutdown, migrate this provider's models to the remaining members before exiting (needs -repair-peers and -deploy-size)")
	dedupStore := flag.Bool("dedup", false,
		"wrap the backend with content-addressed chunk storage: identical segment chunks are stored once (internal/dedup)")
	coldSweep := flag.Duration("cold-sweep-interval", 0,
		"DEFLATE-compress segments and chunks idle for at least this long, sweeping at the same interval (0 = off; implies -dedup's wrapper)")
	throttleOps := flag.Float64("throttle-ops", 0,
		"per-tenant read admission limit in ops/sec (0 = unlimited on this axis; throttling is off when both -throttle-* rates are 0)")
	throttleBytes := flag.Float64("throttle-bytes", 0,
		"per-tenant read admission limit in bytes/sec (0 = unlimited on this axis)")
	throttleWindow := flag.Duration("throttle-window", 0,
		"burst window of the admission buckets: capacity = rate * window (0 = 60s default)")
	autoBalance := flag.Bool("autobalance", false,
		"run the heat-driven placement controller in this process (needs -repair-peers; run it on exactly one provider)")
	autoBalanceEvery := flag.Duration("autobalance-interval", 0,
		"controller cycle interval (0 = 5s default)")
	heatHot := flag.Float64("heat-hot", 0,
		"widen a model when its heat exceeds this multiple of the mean (0 = 4)")
	heatCold := flag.Float64("heat-cold", 0,
		"pack a model when its heat falls below this multiple of the mean (0 = 0.25)")
	heatWiden := flag.Int("heat-widen", 0,
		"replica count for hot models (0 = base R + 1)")
	heatPack := flag.Int("heat-pack", 0,
		"replica count for cold models (0 = packing off, widening only)")
	hedgedReads := flag.Bool("hedged-reads", false,
		"hedge slow replicated reads on the in-server deployment client: after a health-scaled delay, race the next-best replica (needs -repair-peers)")
	hedgeBudget := flag.Float64("hedge-budget", 0,
		"hedged-read volume cap in hedges/sec (0 = client default; needs -hedged-reads)")
	migrationBudget := flag.Float64("migration-budget", 0,
		"migration payload bandwidth bound in bytes/sec for controller-driven rebalances (0 = unpaced)")
	flag.Parse()

	// Fail fast on inconsistent deployment flags instead of silently
	// clamping: every client and provider of one deployment must agree on
	// these numbers, and a clamp here would hide the disagreement until it
	// corrupts placement.
	if *replicas < 1 {
		log.Fatalf("-replicas %d: the replication factor must be at least 1", *replicas)
	}
	if *deploySize > 0 && *replicas > *deploySize {
		log.Fatalf("-replicas %d exceeds -deploy-size %d: a model cannot have more replicas than the deployment has members", *replicas, *deploySize)
	}
	if *replicas > 1 && *deploySize == 0 {
		log.Fatalf("-replicas %d needs -deploy-size: without the member count the placement guard cannot be armed", *replicas)
	}
	if *id < 0 {
		log.Fatalf("-id %d: provider IDs are non-negative", *id)
	}
	if *join && *deploySize == 0 {
		log.Fatalf("-join needs -deploy-size (the epoch-0 member count this spare is joining)")
	}
	if *deploySize > 0 && *id >= *deploySize && !*join {
		log.Fatalf("-id %d is outside the deployment [0..%d): pass -join to start as a spare awaiting a placement add", *id, *deploySize)
	}
	if *repairPeers != "" {
		n := len(strings.Split(*repairPeers, ","))
		if *deploySize > 0 && n < *deploySize {
			log.Fatalf("-repair-peers lists %d addresses but -deploy-size is %d: the list must cover every member", n, *deploySize)
		}
		if *id >= n {
			log.Fatalf("-repair-peers lists %d addresses but -id is %d: the list must include this provider at its own index", n, *id)
		}
	}
	if *drain && (*repairPeers == "" || *deploySize == 0) {
		log.Fatalf("-drain needs -repair-peers and -deploy-size to run the self-drain migration on shutdown")
	}
	if *autoBalance && *repairPeers == "" {
		log.Fatalf("-autobalance needs -repair-peers (the full deployment address list) to read heat and drive migrations")
	}

	var kv kvstore.KV
	var lsm *kvstore.LSMKV
	var manifest *kvstore.Manifest
	if *data == "" {
		kv = kvstore.NewMemKV(16)
		log.Printf("provider %d: in-memory backend", *id)
	} else {
		// The manifest gate runs before the LSM opens: a directory written
		// by another provider, a newer format, or an unknown feature must
		// refuse service rather than corrupt state it half-understands.
		m, err := kvstore.LoadManifest(*data)
		if err != nil {
			log.Fatalf("loading manifest: %v", err)
		}
		if m != nil && m.ProviderID != uint32(*id) {
			log.Fatalf("manifest at %s belongs to provider %d, not -id %d: refusing to serve another provider's data", *data, m.ProviderID, *id)
		}
		manifest = m
		l, err := kvstore.OpenLSM(*data, kvstore.LSMOptions{})
		if err != nil {
			log.Fatalf("opening LSM store: %v", err)
		}
		defer l.Close()
		lsm = l
		kv = l
		if m != nil {
			log.Printf("provider %d: LSM backend at %s (manifest format %d, placement epoch %d)",
				*id, *data, m.FormatVersion, m.PlacementEpoch)
		} else {
			log.Printf("provider %d: LSM backend at %s (no manifest: first start)", *id, *data)
		}
	}

	var cas *dedup.KV
	if *dedupStore || *coldSweep > 0 {
		cas = dedup.Wrap(kv, dedup.Options{ColdCompress: *coldSweep > 0})
		kv = cas
		if *data != "" {
			if err := cas.Recover(); err != nil {
				log.Fatalf("recovering chunk refcounts: %v", err)
			}
		}
		log.Printf("provider %d: content-addressed chunk storage on (cold sweep: %s)", *id, coldSweep)
	}

	var p *provider.Provider
	if *data != "" {
		dp, err := provider.NewDurable(*id, kv)
		if err != nil {
			log.Fatalf("replaying catalog: %v", err)
		}
		p = dp
		log.Printf("provider %d: durable catalog replayed (%d models)", *id, p.Stats().Models)
	} else {
		p = provider.New(*id, kv)
	}
	p.SetDedupTTL(*dedupTTL)
	if *throttleOps > 0 || *throttleBytes > 0 {
		p.SetThrottle(frontdoor.Limits{
			OpsPerSec:   *throttleOps,
			BytesPerSec: *throttleBytes,
			Window:      *throttleWindow,
		})
		log.Printf("provider %d: per-tenant read throttle armed (%g ops/s, %g B/s, window %s)",
			*id, *throttleOps, *throttleBytes, *throttleWindow)
	}
	if *deploySize > 0 {
		p.SetPlacement(*deploySize, *replicas)
		if *join {
			log.Printf("provider %d: spare awaiting join (deployment %d, R=%d); rejecting writes until a placement add", *id, *deploySize, *replicas)
		} else {
			log.Printf("provider %d: placement guard armed (deployment %d, R=%d)", *id, *deploySize, *replicas)
		}
	}
	if manifest != nil && len(manifest.Placement) > 0 {
		// Resume the placement view the manifest recorded before the crash;
		// SetPlacementState keeps the newest epoch, so this never regresses
		// the epoch-0 table armed above.
		st, err := placement.DecodeState(manifest.Placement)
		if err != nil {
			log.Fatalf("manifest placement: %v", err)
		}
		if st != nil {
			if err := p.SetPlacementState(st); err != nil {
				log.Fatalf("manifest placement: %v", err)
			}
			log.Printf("provider %d: resumed placement epoch %d from manifest", *id, placement.EpochOf(st))
		}
	}
	saveManifest := func(st *placement.State) {}
	if *data != "" {
		saveManifest = func(st *placement.State) {
			m := &kvstore.Manifest{
				FormatVersion:  kvstore.ManifestFormatVersion,
				ProviderID:     uint32(*id),
				PlacementEpoch: placement.EpochOf(st),
				Placement:      placement.EncodeState(st),
				Features:       []string{kvstore.FeatureDurableCatalog},
			}
			if err := kvstore.SaveManifest(*data, m); err != nil {
				log.Printf("provider %d: saving manifest: %v", *id, err)
			}
		}
		p.OnPlacementChange(saveManifest)
		saveManifest(p.PlacementState())
	}
	srv := rpc.NewServer()
	srv.SetRequestTimeout(*reqTimeout)
	p.Register(srv)

	lis, addr, err := rpc.ListenAndServeTCP(*listen, srv)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	log.Printf("provider %d: serving on %s", *id, addr)

	// Restart rejoin: a durable provider announces its recovery to the
	// deployment and adopts the highest placement epoch any peer reached
	// while it was down — serving under a stale epoch would bounce writes
	// until the first wrong-epoch error taught a client to correct it.
	if *data != "" && *repairPeers != "" {
		rejoin(p, *id, *repairPeers, *reqTimeout)
	}

	stopMetrics := make(chan struct{})
	if *metricsEvery > 0 {
		go logMetrics(*id, *metricsEvery, stopMetrics)
	}
	if cas != nil && *coldSweep > 0 {
		go func() {
			t := time.NewTicker(*coldSweep)
			defer t.Stop()
			for {
				select {
				case <-stopMetrics:
					return
				case <-t.C:
					if n, err := cas.SweepCold(*coldSweep); err != nil {
						log.Printf("provider %d: cold sweep: %v", *id, err)
					} else if n > 0 {
						log.Printf("provider %d: cold sweep compressed %d entries", *id, n)
					}
				}
			}
		}()
	}

	// Optional in-server deployment loops: anti-entropy repair and the
	// heat-driven placement controller both run over a client dialed on the
	// full peer list. One provider (usually provider 0) should run them;
	// concurrent repairers are wasteful but safe, and a second controller
	// loses its epoch races and re-plans.
	repairCtx, stopRepair := context.WithCancel(context.Background())
	defer stopRepair()
	if *repairEvery > 0 || *autoBalance {
		if *repairPeers == "" {
			log.Fatalf("-repair-interval needs -repair-peers (the full deployment address list)")
		}
		var conns []rpc.Conn
		for _, a := range strings.Split(*repairPeers, ",") {
			conns = append(conns, rpc.NewPool(strings.TrimSpace(a), 1, rpc.DialTCP))
		}
		conns = resilient.WrapAll(conns, resilient.Options{
			DefaultTimeout: *reqTimeout,
			Retryable:      proto.Retryable,
		})
		copts := []client.Option{client.WithReplicas(*replicas)}
		if *deploySize > 0 {
			// The peer list may include spares beyond the member list; the
			// explicit table keeps them out of the epoch-0 placement.
			copts = []client.Option{client.WithPlacement(placement.New(*deploySize, *replicas))}
		}
		if *hedgedReads {
			copts = append(copts, client.WithHedgedReads(0, *hedgeBudget))
		}
		cli := client.New(conns, copts...)
		go func() {
			// Adopt whatever epoch the deployment has reached before the
			// first sweep; later bumps are adopted off wrong-epoch errors.
			if _, err := cli.SyncPlacement(repairCtx); err != nil {
				log.Printf("provider %d: placement sync: %v", *id, err)
			}
			if *repairEvery > 0 {
				go client.NewRepairer(cli).Run(repairCtx, *repairEvery)
			}
			if *autoBalance {
				ctl := heat.New(cli, heat.Config{
					Interval:          *autoBalanceEvery,
					HotFactor:         *heatHot,
					ColdFactor:        *heatCold,
					WidenTo:           *heatWiden,
					PackTo:            *heatPack,
					BudgetBytesPerSec: *migrationBudget,
				}, nil)
				go ctl.Run(repairCtx)
			}
		}()
		if *repairEvery > 0 {
			log.Printf("provider %d: anti-entropy repairer running every %s over %d peers",
				*id, *repairEvery, len(conns))
		}
		if *autoBalance {
			log.Printf("provider %d: heat controller running over %d peers (budget %g B/s)",
				*id, len(conns), *migrationBudget)
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	stopRepair()
	close(stopMetrics)
	if *drain {
		log.Printf("provider %d: draining before shutdown", *id)
		if err := drainSelf(*id, *deploySize, *replicas, *repairPeers, *reqTimeout); err != nil {
			log.Printf("provider %d: drain failed (data stays; re-run the drain via evostore-ctl placement drain): %v", *id, err)
		}
	}
	log.Printf("provider %d: shutting down", *id)
	lis.Close()
	if lsm != nil {
		// Clean shutdown: flush the memtable to an SSTable and persist the
		// final placement view, so the next start replays an empty WAL and
		// resumes the exact epoch this process last served under.
		if err := lsm.Flush(); err != nil {
			log.Printf("provider %d: final flush: %v", *id, err)
		}
		saveManifest(p.PlacementState())
	}
	st := p.Stats()
	log.Printf("provider %d: %d models, %d segments, %d bytes",
		*id, st.Models, st.Segments, st.SegmentBytes)
}

// rejoin sends the restart-rejoin handshake (proto.RPCHello) to every
// repair peer and adopts the highest placement epoch heard. Peer failures
// are logged and skipped — a rejoin against a half-up deployment still
// converges, and any epoch missed here is adopted later off wrong-epoch
// errors. The adoption goes through SetPlacementState, so it also rewrites
// the manifest via the OnPlacementChange hook.
func rejoin(p *provider.Provider, id int, peers string, timeout time.Duration) {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	st := p.PlacementState()
	req := rpc.Message{Meta: proto.EncodeHello(&proto.Hello{
		Provider: uint32(id),
		Format:   kvstore.ManifestFormatVersion,
		Epoch:    placement.EpochOf(st),
		Models:   p.Stats().Models,
	})}
	var best *placement.State
	for i, a := range strings.Split(peers, ",") {
		if i == id {
			continue
		}
		a = strings.TrimSpace(a)
		c, err := rpc.DialTCP(a)
		if err != nil {
			log.Printf("provider %d: rejoin: dial %s: %v", id, a, err)
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		resp, err := c.Call(ctx, proto.RPCHello, req)
		cancel()
		c.Close()
		if err != nil {
			log.Printf("provider %d: rejoin: hello %s: %v", id, a, err)
			continue
		}
		hr, err := proto.DecodeHelloResp(resp.Meta)
		if err != nil || len(hr.Placement) == 0 {
			continue
		}
		pst, err := placement.DecodeState(hr.Placement)
		if err != nil || pst == nil {
			continue
		}
		if best == nil || placement.EpochOf(pst) > placement.EpochOf(best) {
			best = pst
		}
	}
	if best != nil && placement.EpochOf(best) > placement.EpochOf(st) {
		if err := p.SetPlacementState(best); err != nil {
			log.Printf("provider %d: rejoin: adopting epoch %d: %v", id, placement.EpochOf(best), err)
			return
		}
		log.Printf("provider %d: rejoined at placement epoch %d", id, placement.EpochOf(best))
	}
}

// drainSelf retires this provider from the placement table: it syncs the
// deployment's current epoch, builds the successor table without this
// provider, and runs the rebalancer — migrating every model it owns to
// the surviving members — before the process exits. The migration is
// convergent; if it fails partway the deployment is left dual-epoch and
// an operator can finish it with evostore-ctl placement drain.
func drainSelf(id, deploySize, replicas int, peers string, timeout time.Duration) error {
	var conns []rpc.Conn
	for _, a := range strings.Split(peers, ",") {
		conns = append(conns, rpc.NewPool(strings.TrimSpace(a), 1, rpc.DialTCP))
	}
	conns = resilient.WrapAll(conns, resilient.Options{
		DefaultTimeout: timeout,
		Retryable:      proto.Retryable,
	})
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	cli := client.New(conns, client.WithPlacement(placement.New(deploySize, replicas)))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	st, err := cli.SyncPlacement(ctx)
	if err != nil {
		return err
	}
	next, err := st.Cur.WithoutMember(id)
	if err != nil {
		return err
	}
	stats, err := client.NewRebalancer(cli).Rebalance(ctx, next)
	if err != nil {
		return err
	}
	log.Printf("provider %d: drained: %s", id, stats)
	return nil
}

// logMetrics periodically logs the non-zero metrics counters (retries,
// breaker transitions, replica traffic) in one compact line, so operators
// tailing the log see what the middleware is doing without polling the
// metrics RPC.
func logMetrics(id int, every time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			snap := metrics.Default.Snapshot()
			parts := make([]string, 0, len(snap))
			for name, v := range snap {
				if v != 0 {
					parts = append(parts, name+"="+strconv.FormatUint(v, 10))
				}
			}
			sort.Strings(parts)
			if len(parts) == 0 {
				continue
			}
			log.Printf("provider %d: metrics %s", id, strings.Join(parts, " "))
		}
	}
}
