// Command evostore-server runs one EvoStore storage provider on TCP.
//
// A deployment is a fixed, ordered list of providers; every client must be
// given the same ordered address list (the order defines provider IDs for
// the static model→provider hash).
//
// Usage:
//
//	evostore-server -listen :7070 -id 0 [-data /path/to/dir] [-request-timeout 30s]
//
// Without -data the provider uses the in-memory backend (the paper's
// synchronized-pool mode); with -data it persists segments in an LSM store
// (the RocksDB-like mode).
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/kvstore"
	"repro/internal/provider"
	"repro/internal/rpc"
)

func main() {
	listen := flag.String("listen", ":7070", "TCP listen address")
	id := flag.Int("id", 0, "provider ID (its index in the deployment's address list)")
	data := flag.String("data", "", "persistence directory (empty = in-memory backend)")
	reqTimeout := flag.Duration("request-timeout", 30*time.Second,
		"server-side deadline per request without a caller deadline (0 = none)")
	flag.Parse()

	var kv kvstore.KV
	if *data == "" {
		kv = kvstore.NewMemKV(16)
		log.Printf("provider %d: in-memory backend", *id)
	} else {
		lsm, err := kvstore.OpenLSM(*data, kvstore.LSMOptions{})
		if err != nil {
			log.Fatalf("opening LSM store: %v", err)
		}
		defer lsm.Close()
		kv = lsm
		log.Printf("provider %d: LSM backend at %s", *id, *data)
	}

	p := provider.New(*id, kv)
	srv := rpc.NewServer()
	srv.SetRequestTimeout(*reqTimeout)
	p.Register(srv)

	lis, addr, err := rpc.ListenAndServeTCP(*listen, srv)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	log.Printf("provider %d: serving on %s", *id, addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("provider %d: shutting down", *id)
	lis.Close()
	st := p.Stats()
	log.Printf("provider %d: %d models, %d segments, %d bytes",
		*id, st.Models, st.Segments, st.SegmentBytes)
}
