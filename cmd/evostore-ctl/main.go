// Command evostore-ctl inspects a running EvoStore deployment.
//
// Usage:
//
//	evostore-ctl -providers host1:7070,host2:7070 list
//	evostore-ctl -providers ... stats
//	evostore-ctl -providers ... lineage <modelID>
//	evostore-ctl -providers ... owners <modelID>
//	evostore-ctl -providers ... mrca <modelID> <modelID>
//	evostore-ctl -providers ... retire <modelID>
//	evostore-ctl -providers ... load <modelID>        # fetch all segments, print checksum
//	evostore-ctl -providers ... arch <modelID>        # Graphviz DOT to stdout
//	evostore-ctl -providers ... metrics               # per-provider counters
//	evostore-ctl -providers ... health                # per-provider health scores and latency quantiles
//	evostore-ctl -providers ... heat                  # per-model read/write heat
//	evostore-ctl -providers ... autobalance [flags]   # heat-driven rebalance cycles
//	evostore-ctl -providers ... replicas <modelID>    # replica placement
//	evostore-ctl -providers ... digest <modelID>      # per-replica repair digests
//	evostore-ctl -providers ... check                 # list diverged replica sets
//	evostore-ctl -providers ... repair                # one anti-entropy pass
//	evostore-ctl -providers ... placement show        # per-provider placement views
//	evostore-ctl -providers ... placement add <id>    # join provider <id> (epoch bump + migration)
//	evostore-ctl -providers ... placement remove <id> # retire provider <id> (alias: drain)
//
// The -providers list must match the deployment's canonical order, and
// -replicas must match the deployment's replication factor (reads fail
// over between replicas; mutations like retire fan out to all of them).
// When the list includes spares that are not yet placement members, pass
// -deploy-size with the member count. The tool syncs the deployment's
// current placement epoch before running any subcommand.
package main

import (
	"context"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/client"
	"repro/internal/heat"
	"repro/internal/metrics"
	"repro/internal/ownermap"
	"repro/internal/placement"
	"repro/internal/proto"
	"repro/internal/resilient"
	"repro/internal/rpc"
)

func main() {
	providers := flag.String("providers", "127.0.0.1:7070", "comma-separated provider addresses, in deployment order")
	timeout := flag.Duration("timeout", 10*time.Second, "per-call deadline (0 = none)")
	retries := flag.Int("retries", 3, "attempts per call, including the first")
	threshold := flag.Int("breaker-threshold", 5, "consecutive transport failures that open a provider's circuit breaker (-1 = off)")
	replicas := flag.Int("replicas", 1, "deployment replication factor R (must match every other client)")
	deploySize := flag.Int("deploy-size", 0, "epoch-0 member count when -providers includes spares (0 = every address is a member)")
	stripeChunk := flag.Int("stripe-chunk", 0, "stripe owner-group reads larger than this many bytes into parallel ranged chunks (0 = off)")
	stripePar := flag.Int("stripe-parallel", 4, "max in-flight ranged chunks per striped read")
	poolSize := flag.Int("pool", 2, "TCP connections per provider (striped reads fan ranged chunks across them)")
	tenant := flag.String("tenant", "", "tenant ID stamped on reads, charged against the providers' per-tenant admission buckets (-throttle-* on evostore-server)")
	segCache := flag.Int64("seg-cache", 0, "client segment-cache bound in bytes (0 = 64 MiB default, negative = caching off)")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: evostore-ctl -providers a,b,c {list|stats|lineage|owners|mrca|retire|load|arch|metrics|health|heat|autobalance|replicas|digest|check|repair|placement} [args]")
		os.Exit(2)
	}

	var conns []rpc.Conn
	for _, addr := range strings.Split(*providers, ",") {
		conns = append(conns, rpc.NewPool(strings.TrimSpace(addr), *poolSize, rpc.DialTCP))
	}
	if *timeout == 0 {
		*timeout = -1 // Options treats negative as "no default deadline"
	}
	conns = resilient.WrapAll(conns, resilient.Options{
		DefaultTimeout: *timeout,
		MaxAttempts:    *retries,
		Threshold:      *threshold,
		Retryable:      proto.Retryable,
	})
	copts := []client.Option{client.WithReplicas(*replicas)}
	if *deploySize > 0 {
		copts = []client.Option{client.WithPlacement(placement.New(*deploySize, *replicas))}
	}
	if *stripeChunk > 0 {
		copts = append(copts, client.WithStripedReads(*stripeChunk, *stripePar))
	}
	if *tenant != "" {
		copts = append(copts, client.WithTenant(*tenant))
	}
	if *segCache != 0 {
		copts = append(copts, client.WithSegCacheBytes(*segCache))
	}
	cli := client.New(conns, copts...)
	ctx := context.Background()

	// Adopt the deployment's current placement epoch before doing anything;
	// best-effort (a provider that predates the placement RPC just means
	// the configured epoch-0 table stands).
	if _, err := cli.SyncPlacement(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "evostore-ctl: placement sync:", err)
	}

	if err := run(ctx, cli, conns, args); err != nil {
		fmt.Fprintln(os.Stderr, "evostore-ctl:", err)
		os.Exit(1)
	}
}

func parseID(s string) (ownermap.ModelID, error) {
	n, err := strconv.ParseUint(s, 10, 64)
	return ownermap.ModelID(n), err
}

func run(ctx context.Context, cli *client.Client, conns []rpc.Conn, args []string) error {
	switch args[0] {
	case "list":
		ids, err := cli.ListModels(ctx)
		if err != nil {
			return err
		}
		tbl := metrics.NewTable("Model", "Provider", "Vertices", "Quality", "Lineage depth")
		for _, id := range ids {
			meta, err := cli.GetMeta(ctx, id)
			if err != nil {
				return err
			}
			tbl.Add(uint64(id), cli.HomeProvider(id), meta.Graph.NumVertices(),
				meta.Quality, len(meta.OwnerMap.Lineage()))
		}
		tbl.Render(os.Stdout)
		return nil

	case "stats":
		st, err := cli.Stats(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("models:        %d\n", st.Models)
		fmt.Printf("segments:      %d\n", st.Segments)
		fmt.Printf("segment bytes: %s\n", metrics.HumanBytes(int64(st.SegmentBytes)))
		fmt.Printf("live refs:     %d\n", st.LiveRefs)
		return nil

	case "lineage":
		if len(args) < 2 {
			return fmt.Errorf("lineage needs a model ID")
		}
		id, err := parseID(args[1])
		if err != nil {
			return err
		}
		chain, err := cli.Lineage(ctx, id)
		if err != nil {
			return err
		}
		for i, a := range chain {
			fmt.Printf("%s%d\n", strings.Repeat("  ", i), uint64(a))
		}
		return nil

	case "owners":
		if len(args) < 2 {
			return fmt.Errorf("owners needs a model ID")
		}
		id, err := parseID(args[1])
		if err != nil {
			return err
		}
		meta, err := cli.GetMeta(ctx, id)
		if err != nil {
			return err
		}
		tbl := metrics.NewTable("Owner", "Seq", "Vertices", "Bytes")
		for _, g := range meta.OwnerMap.Owners() {
			var bytes int64
			for _, v := range g.Vertices {
				bytes += meta.Graph.Vertices[v].ParamBytes
			}
			tbl.Add(uint64(g.Owner), g.Seq, len(g.Vertices), metrics.HumanBytes(bytes))
		}
		tbl.Render(os.Stdout)
		return nil

	case "mrca":
		if len(args) < 3 {
			return fmt.Errorf("mrca needs two model IDs")
		}
		a, err := parseID(args[1])
		if err != nil {
			return err
		}
		b, err := parseID(args[2])
		if err != nil {
			return err
		}
		anc, ok, err := cli.CommonAncestor(ctx, a, b)
		if err != nil {
			return err
		}
		if !ok {
			fmt.Println("no common ancestor")
			return nil
		}
		fmt.Printf("most recent common ancestor: %d\n", uint64(anc))
		return nil

	case "retire":
		if len(args) < 2 {
			return fmt.Errorf("retire needs a model ID")
		}
		id, err := parseID(args[1])
		if err != nil {
			return err
		}
		freed, err := cli.Retire(ctx, id)
		if err != nil {
			return err
		}
		fmt.Printf("retired %d, freed %d segments\n", uint64(id), freed)
		return nil

	case "load":
		if len(args) < 2 {
			return fmt.Errorf("load needs a model ID")
		}
		id, err := parseID(args[1])
		if err != nil {
			return err
		}
		start := time.Now()
		data, err := cli.Load(ctx, id)
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		sum := fnv.New64a()
		var total int64
		for _, seg := range data.Segments {
			sum.Write(seg)
			total += int64(len(seg))
		}
		mbps := 0.0
		if elapsed > 0 {
			mbps = float64(total) / 1e6 / elapsed.Seconds()
		}
		fmt.Printf("model %d: %d segments, %d bytes, fnv64a %016x, %.1f MB/s\n",
			uint64(id), len(data.Segments), total, sum.Sum64(), mbps)
		return nil

	case "arch":
		if len(args) < 2 {
			return fmt.Errorf("arch needs a model ID")
		}
		id, err := parseID(args[1])
		if err != nil {
			return err
		}
		meta, err := cli.GetMeta(ctx, id)
		if err != nil {
			return err
		}
		return meta.Graph.WriteDOT(os.Stdout, fmt.Sprintf("model_%d", uint64(id)), nil)

	case "metrics":
		snaps, errs := cli.Metrics(ctx)
		tbl := metrics.NewTable("Provider", "Counter", "Value")
		for i, snap := range snaps {
			if errs[i] != nil {
				fmt.Fprintf(os.Stderr, "provider %d: %v\n", i, errs[i])
				continue
			}
			names := make([]string, 0, len(snap))
			for name, v := range snap {
				if v != 0 {
					names = append(names, name)
				}
			}
			sort.Strings(names)
			for _, name := range names {
				tbl.Add(i, name, snap[name])
			}
		}
		tbl.Render(os.Stdout)
		return nil

	case "health":
		// Probe every provider a few times so fresh connections have
		// latency/error samples to score; the metrics broadcast touches
		// each provider once per round.
		for i := 0; i < 5; i++ {
			_, errs := cli.Metrics(ctx)
			_ = errs // per-provider failures are exactly what we want scored
		}
		tbl := metrics.NewTable("Provider", "Addr", "Breaker", "Score", "p50", "p95", "ErrRate")
		for i, c := range conns {
			rc, ok := c.(*resilient.Conn)
			if !ok {
				tbl.Add(i, c.Addr(), "-", "-", "-", "-", "-")
				continue
			}
			tbl.Add(i, rc.Addr(), rc.BreakerState(),
				fmt.Sprintf("%.3f", rc.Score()),
				rc.LatencyPercentile(0.50).Round(time.Microsecond),
				rc.LatencyPercentile(0.95).Round(time.Microsecond),
				fmt.Sprintf("%.3f", rc.ErrorRate()))
		}
		tbl.Render(os.Stdout)
		return nil

	case "replicas":
		if len(args) < 2 {
			return fmt.Errorf("replicas needs a model ID")
		}
		id, err := parseID(args[1])
		if err != nil {
			return err
		}
		set := cli.ReplicaSet(id)
		fmt.Printf("model %d: home provider %d, replica set %v (R=%d)\n",
			uint64(id), cli.HomeProvider(id), set, cli.Replicas())
		return nil

	case "digest":
		if len(args) < 2 {
			return fmt.Errorf("digest needs a model ID")
		}
		id, err := parseID(args[1])
		if err != nil {
			return err
		}
		rep := client.NewRepairer(cli)
		set, ds, err := rep.ModelDigests(ctx, id)
		if err != nil {
			return err
		}
		tbl := metrics.NewTable("Provider", "Present", "Retired", "Seq", "MetaHash", "RefHash", "SegHash", "LiveRefs", "Journal")
		for i, d := range ds {
			tbl.Add(set[i], d.Present, d.Retired, d.Seq,
				fmt.Sprintf("%016x", d.MetaHash), fmt.Sprintf("%016x", d.RefHash),
				fmt.Sprintf("%016x", d.SegHash), d.LiveRefs, d.Journal)
		}
		tbl.Render(os.Stdout)
		converged := true
		for _, d := range ds[1:] {
			if !ds[0].Converged(d) {
				converged = false
			}
		}
		if converged {
			fmt.Println("replicas converged")
		} else {
			fmt.Println("replicas DIVERGED (run `repair` to converge them)")
		}
		return nil

	case "check":
		diverged, err := client.NewRepairer(cli).Check(ctx)
		if err != nil {
			return err
		}
		if len(diverged) == 0 {
			fmt.Println("all replica sets converged")
			return nil
		}
		for _, id := range diverged {
			fmt.Printf("diverged: model %d (replica set %v)\n", uint64(id), cli.ReplicaSet(id))
		}
		return fmt.Errorf("%d replica set(s) diverged", len(diverged))

	case "repair":
		stats, err := client.NewRepairer(cli).RepairAll(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("checked %d model(s): repaired %d, skipped %d (unhealthy replicas)\n",
			stats.Checked, stats.Repaired, stats.Skipped)
		return nil

	case "heat":
		heats, errs := cli.Heat(ctx)
		tbl := metrics.NewTable("Provider", "Model", "Read B/s", "Write B/s")
		for pi, samples := range heats {
			if errs[pi] != nil {
				fmt.Fprintf(os.Stderr, "provider %d: %v\n", pi, errs[pi])
				continue
			}
			for _, h := range samples {
				tbl.Add(pi, uint64(h.Model), fmt.Sprintf("%.1f", h.ReadBps), fmt.Sprintf("%.1f", h.WriteBps))
			}
		}
		tbl.Render(os.Stdout)
		agg := heat.Aggregate(heats)
		ids := make([]ownermap.ModelID, 0, len(agg))
		for id := range agg {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return agg[ids[i]] > agg[ids[j]] })
		for _, id := range ids {
			fmt.Printf("model %d: %.1f B/s total (replicas %v)\n", uint64(id), agg[id], cli.ReplicaSet(id))
		}
		return nil

	case "autobalance":
		return autobalanceCmd(ctx, cli, args[1:])

	case "placement":
		return placementCmd(ctx, cli, conns, args[1:])
	}
	return fmt.Errorf("unknown subcommand %q", args[0])
}

// autobalanceCmd runs heat-driven rebalance cycles from the operator's
// seat: each cycle snapshots the deployment's per-model heat, plans the
// override set and — when it differs from the live table — drives one
// epoch bump. With -cycles 1 (the default) it is a one-shot "rebalance by
// heat now"; larger counts loop like the in-server controller.
func autobalanceCmd(ctx context.Context, cli *client.Client, args []string) error {
	fs := flag.NewFlagSet("autobalance", flag.ContinueOnError)
	hot := fs.Float64("hot", 0, "widen threshold as a multiple of mean heat (0 = 4)")
	cold := fs.Float64("cold", 0, "pack threshold as a multiple of mean heat (0 = 0.25)")
	widen := fs.Int("widen", 0, "replica count for hot models (0 = base R + 1)")
	pack := fs.Int("pack", 0, "replica count for cold models (0 = packing off)")
	budget := fs.Float64("budget", 0, "migration payload budget in bytes/sec (0 = unpaced)")
	maxChanges := fs.Int("max-changes", 0, "max override changes per cycle (0 = 32)")
	cycles := fs.Int("cycles", 1, "controller cycles to run")
	interval := fs.Duration("interval", 5*time.Second, "pause between cycles when -cycles > 1")
	if err := fs.Parse(args); err != nil {
		return err
	}
	reg := metrics.NewRegistry()
	ctl := heat.New(cli, heat.Config{
		HotFactor:         *hot,
		ColdFactor:        *cold,
		WidenTo:           *widen,
		PackTo:            *pack,
		MaxChanges:        *maxChanges,
		BudgetBytesPerSec: *budget,
	}, reg)
	for i := 0; i < *cycles; i++ {
		if i > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(*interval):
			}
		}
		before := cli.PlacementTable().Epoch
		if err := ctl.Step(ctx); err != nil {
			return err
		}
		tbl := cli.PlacementTable()
		if tbl.Epoch == before {
			fmt.Printf("cycle %d: placement already matches the heat plan (%s)\n", i+1, tbl)
		} else {
			fmt.Printf("cycle %d: rebalanced to %s\n", i+1, tbl)
		}
	}
	if n := reg.Counter("heat.lost_race").Load(); n > 0 {
		fmt.Printf("lost %d epoch race(s) to a concurrent rebalance; re-synced and re-planned\n", n)
	}
	return nil
}

// placementCmd inspects and drives the epoch-versioned placement table:
// show prints every provider's view, add/remove (drain is an alias for
// remove) bump the epoch and run the full migration — data moves to the
// new replica sets while the deployment keeps serving, then departed
// providers are emptied.
func placementCmd(ctx context.Context, cli *client.Client, conns []rpc.Conn, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("placement needs a subcommand: show | add <providerID> | remove <providerID> | drain <providerID>")
	}
	switch args[0] {
	case "show":
		results := rpc.Broadcast(ctx, conns, proto.RPCPlacement, rpc.Message{})
		tbl := metrics.NewTable("Provider", "View")
		for i, r := range results {
			if r.Err != nil {
				tbl.Add(i, fmt.Sprintf("unreachable: %v", r.Err))
				continue
			}
			st, err := placement.DecodeState(r.Resp.Meta)
			switch {
			case err != nil:
				tbl.Add(i, fmt.Sprintf("undecodable: %v", err))
			case st == nil || st.Cur == nil:
				tbl.Add(i, "unguarded (accepts any model)")
			case st.Migrating():
				tbl.Add(i, fmt.Sprintf("%s migrating from %s", st.Cur, st.Prev))
			default:
				tbl.Add(i, st.Cur.String())
			}
		}
		tbl.Render(os.Stdout)
		st := cli.Placement()
		fmt.Printf("client view: %s", st.Cur)
		if st.Migrating() {
			fmt.Printf(" migrating from %s", st.Prev)
		}
		fmt.Println()
		return nil

	case "add", "remove", "drain":
		if len(args) < 2 {
			return fmt.Errorf("placement %s needs a provider ID", args[0])
		}
		pid, err := strconv.Atoi(args[1])
		if err != nil {
			return fmt.Errorf("provider ID %q: %w", args[1], err)
		}
		cur := cli.PlacementTable()
		var next *placement.Table
		if args[0] == "add" {
			if pid >= len(conns) {
				return fmt.Errorf("provider %d is not in the -providers list (%d addresses): the joiner must be dialable", pid, len(conns))
			}
			next, err = cur.WithMember(pid)
		} else {
			next, err = cur.WithoutMember(pid)
		}
		if err != nil {
			return err
		}
		fmt.Printf("migrating %s -> %s\n", cur, next)
		stats, err := client.NewRebalancer(cli).Rebalance(ctx, next)
		if err != nil {
			return err
		}
		fmt.Println(stats)
		return nil
	}
	return fmt.Errorf("unknown placement subcommand %q", args[0])
}
