// Package repro is a from-scratch Go reproduction of "EvoStore: Towards
// Scalable Storage of Evolving Learning Models" (HPDC 2024): a distributed
// deep-learning model repository with incremental tensor storage, owner
// maps, collective longest-common-prefix queries, reference-counted
// garbage collection and provenance support, together with every substrate
// its evaluation depends on and a benchmark harness regenerating each of
// the paper's figures.
//
// The root package holds only the figure benchmarks (bench_test.go); the
// implementation lives under internal/ (see README.md and DESIGN.md).
package repro
