// Package proto defines the RPC names and message codecs spoken between
// EvoStore clients and providers. Control payloads ride rpc.Message.Meta;
// consolidated tensor segments ride the bulk payload — flat
// (rpc.Message.Bulk) or vectored (rpc.Message.BulkVec, one slice per
// segment table entry), which the wire frames identically.
//
// Paper counterpart: the client/provider protocol of §4.1-4.2 (store,
// consolidated segment reads, collective LCP queries, distributed
// refcount GC).
//
// Contracts:
//   - Thread safety: codecs are pure functions over byte slices; request
//     and response structs are plain data, safe to share once encoded.
//   - Idempotency: GetMeta, ReadSegments, LCPQuery, ListModels and Stats
//     are idempotent (see Idempotent). StoreModel, IncRef, DecRef and
//     Retire mutate provider state; each carries a ReqID the provider
//     uses to deduplicate retries, which is what makes them Retryable.
//   - Wire evolution: fields appended to a message after its first release
//     (ReqID, PreferRecent) are optional trailers — decoders tolerate
//     their absence, so old and new binaries interoperate.
package proto

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/ownermap"
	"repro/internal/rpc"
	"repro/internal/wire"
)

// RPC handler names.
const (
	RPCStoreModel   = "evostore.store_model"
	RPCGetMeta      = "evostore.get_meta"
	RPCReadSegments = "evostore.read_segments"
	RPCIncRef       = "evostore.inc_ref"
	RPCDecRef       = "evostore.dec_ref"
	RPCRetire       = "evostore.retire"
	RPCLCPQuery     = "evostore.lcp_query"
	RPCListModels   = "evostore.list_models"
	RPCStats        = "evostore.stats"
	RPCMetrics      = "evostore.metrics"

	// Elastic placement (PR 5): read a provider's placement state, install
	// a new epoch on it, and drop a model's state from a former owner.
	// Payloads are placement.EncodeState / EncodeModelID; no extra codecs.
	RPCPlacement    = "evostore.placement"
	RPCSetPlacement = "evostore.set_placement"
	RPCEvict        = "evostore.evict"

	// Restart rejoin (PR 7): a provider reopening its data dir announces
	// itself to its peers and learns the cluster's current placement
	// epoch, so a manifest written before a membership change never
	// leaves it serving a stale table. Payloads: Hello / HelloResp.
	RPCHello = "evostore.hello"
)

// Idempotent reports whether the named RPC can be blindly re-executed
// without changing the outcome.
func Idempotent(name string) bool {
	switch name {
	case RPCGetMeta, RPCReadSegments, RPCLCPQuery, RPCListModels, RPCStats, RPCMetrics,
		RPCRepairList, RPCDigest, RPCRepairPull, RPCPlacement, RPCHello:
		return true
	}
	return false
}

// Retryable is the retry policy the resilience middleware should use for
// EvoStore traffic: idempotent operations are always safe; the mutating
// operations (StoreModel, IncRef, DecRef, Retire) are safe because every
// request carries a dedup ReqID that lets the provider answer a retry
// from its dedup table instead of re-executing it. Unknown names are not
// retried.
func Retryable(name string) bool {
	if Idempotent(name) {
		return true
	}
	switch name {
	case RPCStoreModel, RPCIncRef, RPCDecRef, RPCRetire:
		return true
	case RPCRepairApply:
		// Convergent rather than idempotent: re-applying the same repair
		// state is a no-op, so no dedup ReqID is needed.
		return true
	case RPCSetPlacement, RPCEvict:
		// Convergent like RepairApply: installing an epoch twice, or
		// evicting already-absent state, is a no-op.
		return true
	}
	return false
}

// SegmentRef locates one vertex's consolidated tensor segment inside a bulk
// payload: segments are concatenated in table order.
type SegmentRef struct {
	Vertex graph.VertexID
	Length uint32
}

// appendSegTable / readSegTable encode the (vertex, length) table shared by
// store requests and read responses.
func appendSegTable(w *wire.Writer, segs []SegmentRef) {
	w.U32(uint32(len(segs)))
	for _, s := range segs {
		w.U32(uint32(s.Vertex))
		w.U32(s.Length)
	}
}

func readSegTable(r *wire.Reader) []SegmentRef {
	n := int(r.U32())
	if r.Err() != nil || n > r.Remaining()/8+1 {
		return nil
	}
	segs := make([]SegmentRef, n)
	for i := range segs {
		segs[i].Vertex = graph.VertexID(r.U32())
		segs[i].Length = r.U32()
	}
	return segs
}

// SplitBulk slices a bulk payload into per-segment views according to the
// table. The returned slices alias bulk.
func SplitBulk(segs []SegmentRef, bulk []byte) ([][]byte, error) {
	out := make([][]byte, len(segs))
	off := 0
	for i, s := range segs {
		end := off + int(s.Length)
		if end > len(bulk) {
			return nil, fmt.Errorf("proto: segment table overruns bulk (%d > %d)", end, len(bulk))
		}
		out[i] = bulk[off:end]
		off = end
	}
	if off != len(bulk) {
		return nil, fmt.Errorf("proto: %d trailing bulk bytes", len(bulk)-off)
	}
	return out, nil
}

// SplitBulkMsg slices a message's bulk payload — flat or vectored — into
// per-segment views according to the table, without copying whenever the
// payload layout allows it. The common vectored case (one BulkVec slice
// per table entry, lengths matching) returns the sender's slices directly;
// a flat payload falls back to SplitBulk views; a mismatched vector is
// re-sliced across its chunk boundaries, copying only the segments that
// straddle one. The returned slices alias msg's buffers.
func SplitBulkMsg(segs []SegmentRef, msg rpc.Message) ([][]byte, error) {
	if len(msg.Bulk) == 0 && len(msg.BulkVec) == len(segs) {
		aligned := true
		for i, s := range segs {
			if uint32(len(msg.BulkVec[i])) != s.Length {
				aligned = false
				break
			}
		}
		if aligned {
			return msg.BulkVec, nil
		}
	}
	if len(msg.BulkVec) == 0 {
		return SplitBulk(segs, msg.Bulk)
	}
	// General case: treat Bulk followed by BulkVec as one logical stream
	// and cut segment views out of it.
	chunks := msg.BulkSlices()
	total := msg.BulkLen()
	want := 0
	for _, s := range segs {
		want += int(s.Length)
	}
	if want != total {
		return nil, fmt.Errorf("proto: segment table wants %d bytes, bulk payload has %d", want, total)
	}
	out := make([][]byte, len(segs))
	ci, coff := 0, 0
	for i, s := range segs {
		n := int(s.Length)
		for ci < len(chunks) && coff == len(chunks[ci]) {
			ci, coff = ci+1, 0
		}
		if n == 0 {
			out[i] = nil
			continue
		}
		if rem := len(chunks[ci]) - coff; n <= rem {
			out[i] = chunks[ci][coff : coff+n]
			coff += n
			continue
		}
		// Segment straddles chunk boundaries: the one place a copy is
		// unavoidable.
		seg := make([]byte, 0, n)
		for n > 0 {
			if coff == len(chunks[ci]) {
				ci, coff = ci+1, 0
				continue
			}
			take := len(chunks[ci]) - coff
			if take > n {
				take = n
			}
			seg = append(seg, chunks[ci][coff:coff+take]...)
			coff += take
			n -= take
		}
		out[i] = seg
	}
	return out, nil
}

// --- StoreModel -------------------------------------------------------------

// StoreModelReq publishes a new model: its architecture graph, owner map,
// quality metric, global sequence stamp, and the consolidated segments of
// the vertices the model itself owns (the modified tensors).
type StoreModelReq struct {
	Model    ownermap.ModelID
	Seq      uint64
	Quality  float64
	Graph    *graph.Compact
	OwnerMap *ownermap.Map
	Segments []SegmentRef
	// ReqID deduplicates retries of this non-idempotent request on the
	// provider (0 = no dedup).
	ReqID uint64
}

// Encode serializes the request meta.
func (q *StoreModelReq) Encode() []byte {
	w := wire.NewWriter(64 + q.OwnerMap.SizeBytes())
	w.U64(uint64(q.Model))
	w.U64(q.Seq)
	w.F64(q.Quality)
	w.Bytes32(q.Graph.Encode())
	w.Bytes32(q.OwnerMap.Encode())
	appendSegTable(w, q.Segments)
	w.U64(q.ReqID)
	return w.Bytes()
}

// DecodeStoreModelReq parses a request meta.
func DecodeStoreModelReq(b []byte) (*StoreModelReq, error) {
	r := wire.NewReader(b)
	q := &StoreModelReq{
		Model:   ownermap.ModelID(r.U64()),
		Seq:     r.U64(),
		Quality: r.F64(),
	}
	gb := r.Bytes32()
	ob := r.Bytes32()
	q.Segments = readSegTable(r)
	// The ReqID trailer was appended to the format later; tolerate
	// encoders that omit it entirely, but reject a torn trailer.
	if r.Err() == nil {
		switch {
		case r.Remaining() >= 8:
			q.ReqID = r.U64()
		case r.Remaining() != 0:
			return nil, wire.ErrTruncated
		}
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	var err error
	if q.Graph, _, err = graph.Decode(gb); err != nil {
		return nil, err
	}
	if q.OwnerMap, _, err = ownermap.Decode(ob); err != nil {
		return nil, err
	}
	return q, nil
}

// --- GetMeta ----------------------------------------------------------------

// ModelMeta is the metadata of one stored model.
type ModelMeta struct {
	Model    ownermap.ModelID
	Seq      uint64
	Quality  float64
	Graph    *graph.Compact
	OwnerMap *ownermap.Map
}

// EncodeModelID encodes the single-ID request used by GetMeta and Retire.
func EncodeModelID(id ownermap.ModelID) []byte {
	w := wire.NewWriter(8)
	w.U64(uint64(id))
	return w.Bytes()
}

// DecodeModelID parses a single-ID request.
func DecodeModelID(b []byte) (ownermap.ModelID, error) {
	r := wire.NewReader(b)
	id := ownermap.ModelID(r.U64())
	return id, r.Err()
}

// Encode serializes model metadata.
func (m *ModelMeta) Encode() []byte {
	w := wire.NewWriter(64 + m.OwnerMap.SizeBytes())
	w.U64(uint64(m.Model))
	w.U64(m.Seq)
	w.F64(m.Quality)
	w.Bytes32(m.Graph.Encode())
	w.Bytes32(m.OwnerMap.Encode())
	return w.Bytes()
}

// DecodeModelMeta parses model metadata.
func DecodeModelMeta(b []byte) (*ModelMeta, error) {
	r := wire.NewReader(b)
	m := &ModelMeta{
		Model:   ownermap.ModelID(r.U64()),
		Seq:     r.U64(),
		Quality: r.F64(),
	}
	gb := r.Bytes32()
	ob := r.Bytes32()
	if err := r.Err(); err != nil {
		return nil, err
	}
	var err error
	if m.Graph, _, err = graph.Decode(gb); err != nil {
		return nil, err
	}
	if m.OwnerMap, _, err = ownermap.Decode(ob); err != nil {
		return nil, err
	}
	return m, nil
}

// --- ReadSegments -----------------------------------------------------------

// Read modes of a ReadSegmentsReq. ReadFull is the classic consolidated
// read; ReadTable and ReadRange are the two halves of a striped read: the
// client first probes the segment table (lengths only, no bulk), then
// fetches byte ranges of the consolidated payload in parallel over several
// pooled connections.
const (
	// ReadFull returns the segment table plus the full consolidated bulk
	// payload.
	ReadFull = 0
	// ReadTable returns only the segment table — no bulk bytes. Used as
	// the cheap probe before a striped read.
	ReadTable = 1
	// ReadRange returns the raw bytes [RangeOff, RangeOff+RangeLen) of
	// the consolidated payload (segments concatenated in request vertex
	// order). The response carries no meta; the client already holds the
	// table from its ReadTable probe.
	ReadRange = 2
)

// ReadSegmentsReq asks the provider hosting owner's segments for the given
// vertices. Mode/RangeOff/RangeLen ride an optional trailer: a ReadFull
// request encodes exactly like the pre-striping format, so old and new
// binaries interoperate for classic reads.
type ReadSegmentsReq struct {
	Owner    ownermap.ModelID
	Vertices []graph.VertexID
	// Mode selects ReadFull, ReadTable or ReadRange.
	Mode uint8
	// RangeOff/RangeLen bound a ReadRange request (ignored otherwise).
	RangeOff uint64
	RangeLen uint64
	// Tenant attributes the read to an admission-control tenant: the
	// provider's front door charges its per-tenant token buckets under
	// this ID ("" shares the anonymous tenant's budget). Rides a second
	// optional trailer after the mode fields, so tenant-less encoders stay
	// wire-identical to older binaries.
	Tenant string
}

// Encode serializes the request. The mode trailer is appended only for
// non-ReadFull modes or when a tenant rides behind it, keeping the plain
// ReadFull encoding canonical.
func (q *ReadSegmentsReq) Encode() []byte {
	w := wire.NewWriter(36 + 4*len(q.Vertices) + len(q.Tenant))
	w.U64(uint64(q.Owner))
	w.U32(uint32(len(q.Vertices)))
	for _, v := range q.Vertices {
		w.U32(uint32(v))
	}
	if q.Mode != ReadFull || q.Tenant != "" {
		w.U8(q.Mode)
		w.U64(q.RangeOff)
		w.U64(q.RangeLen)
	}
	if q.Tenant != "" {
		w.String(q.Tenant)
	}
	return w.Bytes()
}

// DecodeReadSegmentsReq parses the request, tolerating the legacy
// trailer-free encoding (Mode = ReadFull) and the tenant-less mode trailer
// but rejecting a torn trailer of either kind.
func DecodeReadSegmentsReq(b []byte) (*ReadSegmentsReq, error) {
	r := wire.NewReader(b)
	q := &ReadSegmentsReq{Owner: ownermap.ModelID(r.U64())}
	n := int(r.U32())
	if r.Err() != nil || n > r.Remaining()/4+1 {
		return nil, wire.ErrTruncated
	}
	q.Vertices = make([]graph.VertexID, n)
	for i := range q.Vertices {
		q.Vertices[i] = graph.VertexID(r.U32())
	}
	if r.Err() == nil {
		switch {
		case r.Remaining() >= 17:
			q.Mode = r.U8()
			q.RangeOff = r.U64()
			q.RangeLen = r.U64()
			if r.Remaining() > 0 {
				q.Tenant = r.Str()
			}
		case r.Remaining() != 0:
			return nil, wire.ErrTruncated
		}
	}
	return q, r.Err()
}

// EncodeSegTable encodes a read response meta (the table describing bulk).
func EncodeSegTable(segs []SegmentRef) []byte {
	w := wire.NewWriter(4 + 8*len(segs))
	appendSegTable(w, segs)
	return w.Bytes()
}

// DecodeSegTable parses a read response meta.
func DecodeSegTable(b []byte) ([]SegmentRef, error) {
	r := wire.NewReader(b)
	segs := readSegTable(r)
	return segs, r.Err()
}

// --- IncRef / DecRef ----------------------------------------------------------

// RefReq adjusts segment reference counters for vertices owned by Owner.
// Refcount changes are not idempotent, so the request carries a ReqID the
// provider deduplicates retries with (0 = no dedup).
type RefReq struct {
	Owner    ownermap.ModelID
	Vertices []graph.VertexID
	ReqID    uint64
}

// Encode serializes the request.
func (q *RefReq) Encode() []byte {
	w := wire.NewWriter(24 + 4*len(q.Vertices))
	w.U64(uint64(q.Owner))
	w.U32(uint32(len(q.Vertices)))
	for _, v := range q.Vertices {
		w.U32(uint32(v))
	}
	w.U64(q.ReqID)
	return w.Bytes()
}

// DecodeRefReq parses the request.
func DecodeRefReq(b []byte) (*RefReq, error) {
	r := wire.NewReader(b)
	q := &RefReq{Owner: ownermap.ModelID(r.U64())}
	n := int(r.U32())
	if r.Err() != nil || n > r.Remaining()/4+1 {
		return nil, wire.ErrTruncated
	}
	q.Vertices = make([]graph.VertexID, n)
	for i := range q.Vertices {
		q.Vertices[i] = graph.VertexID(r.U32())
	}
	// The ReqID trailer was appended to the format later; tolerate
	// encoders that omit it entirely, but reject a torn trailer.
	if r.Err() == nil {
		switch {
		case r.Remaining() >= 8:
			q.ReqID = r.U64()
		case r.Remaining() != 0:
			return nil, wire.ErrTruncated
		}
	}
	return q, r.Err()
}

// --- Retire -------------------------------------------------------------------

// RetireReq removes a model's catalog entry. Retirement is not idempotent
// (a second execution fails with "not found" and a lost response loses the
// owner map), so the request carries a ReqID for provider-side dedup
// (0 = no dedup).
type RetireReq struct {
	Model ownermap.ModelID
	ReqID uint64
}

// Encode serializes the request. The leading 8 bytes match the legacy
// single-ID format, so old providers still understand new clients.
func (q *RetireReq) Encode() []byte {
	w := wire.NewWriter(16)
	w.U64(uint64(q.Model))
	w.U64(q.ReqID)
	return w.Bytes()
}

// DecodeRetireReq parses the request, tolerating the legacy 8-byte
// single-ID encoding (ReqID = 0).
func DecodeRetireReq(b []byte) (*RetireReq, error) {
	r := wire.NewReader(b)
	q := &RetireReq{Model: ownermap.ModelID(r.U64())}
	if r.Err() == nil {
		switch {
		case r.Remaining() >= 8:
			q.ReqID = r.U64()
		case r.Remaining() != 0:
			return nil, wire.ErrTruncated
		}
	}
	return q, r.Err()
}

// EncodeU64 / DecodeU64 carry small scalar responses (freed counts, ...).
func EncodeU64(v uint64) []byte {
	w := wire.NewWriter(8)
	w.U64(v)
	return w.Bytes()
}

// DecodeU64 parses a scalar response.
func DecodeU64(b []byte) (uint64, error) {
	r := wire.NewReader(b)
	v := r.U64()
	return v, r.Err()
}

// --- LCP query ----------------------------------------------------------------

// LCPQueryReq broadcasts the flattened architecture of a new candidate to
// every provider.
type LCPQueryReq struct {
	Graph *graph.Compact
	// Exclude lists model IDs to skip (e.g. models being retired).
	Exclude []ownermap.ModelID
	// PreferRecent breaks prefix-length ties by recency (highest sequence
	// number) instead of quality — the continual-learning selection rule
	// the paper sketches in §6, where the age of a model matters when
	// choosing a transfer source.
	PreferRecent bool
}

// Encode serializes the query.
func (q *LCPQueryReq) Encode() []byte {
	w := wire.NewWriter(64)
	w.Bytes32(q.Graph.Encode())
	w.U32(uint32(len(q.Exclude)))
	for _, id := range q.Exclude {
		w.U64(uint64(id))
	}
	if q.PreferRecent {
		w.U8(1)
	} else {
		w.U8(0)
	}
	return w.Bytes()
}

// DecodeLCPQueryReq parses the query.
func DecodeLCPQueryReq(b []byte) (*LCPQueryReq, error) {
	r := wire.NewReader(b)
	gb := r.Bytes32()
	n := int(r.U32())
	if r.Err() != nil || n > r.Remaining()/8+1 {
		return nil, wire.ErrTruncated
	}
	q := &LCPQueryReq{}
	if n > 0 {
		q.Exclude = make([]ownermap.ModelID, n)
		for i := range q.Exclude {
			q.Exclude[i] = ownermap.ModelID(r.U64())
		}
	}
	// The PreferRecent byte was appended to the format later; tolerate
	// encoders that omit it.
	if r.Remaining() > 0 {
		q.PreferRecent = r.U8() == 1
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	var err error
	if q.Graph, _, err = graph.Decode(gb); err != nil {
		return nil, err
	}
	return q, nil
}

// LCPResult is one provider's local best match (or Found=false).
type LCPResult struct {
	Found   bool
	Model   ownermap.ModelID
	Seq     uint64
	Quality float64
	Prefix  []graph.VertexID
}

// Encode serializes the result.
func (res *LCPResult) Encode() []byte {
	w := wire.NewWriter(32 + 4*len(res.Prefix))
	if res.Found {
		w.U8(1)
	} else {
		w.U8(0)
		return w.Bytes()
	}
	w.U64(uint64(res.Model))
	w.U64(res.Seq)
	w.F64(res.Quality)
	w.U32(uint32(len(res.Prefix)))
	for _, v := range res.Prefix {
		w.U32(uint32(v))
	}
	return w.Bytes()
}

// DecodeLCPResult parses a result.
func DecodeLCPResult(b []byte) (*LCPResult, error) {
	r := wire.NewReader(b)
	res := &LCPResult{}
	if r.U8() == 0 {
		return res, r.Err()
	}
	res.Found = true
	res.Model = ownermap.ModelID(r.U64())
	res.Seq = r.U64()
	res.Quality = r.F64()
	n := int(r.U32())
	if r.Err() != nil || n > r.Remaining()/4+1 {
		return nil, wire.ErrTruncated
	}
	res.Prefix = make([]graph.VertexID, n)
	for i := range res.Prefix {
		res.Prefix[i] = graph.VertexID(r.U32())
	}
	return res, r.Err()
}

// Better reports whether res should replace cur as the reduced best match:
// longer prefix wins; ties prefer higher quality (paper §2), then lower
// model ID for determinism.
func (res *LCPResult) Better(cur *LCPResult) bool {
	if !res.Found {
		return false
	}
	if !cur.Found {
		return true
	}
	if len(res.Prefix) != len(cur.Prefix) {
		return len(res.Prefix) > len(cur.Prefix)
	}
	if res.Quality != cur.Quality {
		return res.Quality > cur.Quality
	}
	return res.Model < cur.Model
}

// BetterRecent is the continual-learning ordering: longer prefix wins;
// ties prefer the most recently stored model (highest sequence number),
// then quality, then lower ID.
func (res *LCPResult) BetterRecent(cur *LCPResult) bool {
	if !res.Found {
		return false
	}
	if !cur.Found {
		return true
	}
	if len(res.Prefix) != len(cur.Prefix) {
		return len(res.Prefix) > len(cur.Prefix)
	}
	if res.Seq != cur.Seq {
		return res.Seq > cur.Seq
	}
	if res.Quality != cur.Quality {
		return res.Quality > cur.Quality
	}
	return res.Model < cur.Model
}

// --- ListModels / Stats --------------------------------------------------------

// EncodeModelList / DecodeModelList carry catalog listings.
func EncodeModelList(ids []ownermap.ModelID) []byte {
	w := wire.NewWriter(4 + 8*len(ids))
	w.U32(uint32(len(ids)))
	for _, id := range ids {
		w.U64(uint64(id))
	}
	return w.Bytes()
}

// DecodeModelList parses a catalog listing.
func DecodeModelList(b []byte) ([]ownermap.ModelID, error) {
	r := wire.NewReader(b)
	n := int(r.U32())
	if r.Err() != nil || n > r.Remaining()/8+1 {
		return nil, wire.ErrTruncated
	}
	ids := make([]ownermap.ModelID, n)
	for i := range ids {
		ids[i] = ownermap.ModelID(r.U64())
	}
	return ids, r.Err()
}

// EncodeCounters serializes a metrics snapshot (counter name → value) for
// the Metrics RPC, sorted by name so equal snapshots encode identically.
func EncodeCounters(snap map[string]uint64) []byte {
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	w := wire.NewWriter(4 + 16*len(names))
	w.U32(uint32(len(names)))
	for _, name := range names {
		w.Bytes32([]byte(name))
		w.U64(snap[name])
	}
	return w.Bytes()
}

// DecodeCounters parses a metrics snapshot.
func DecodeCounters(b []byte) (map[string]uint64, error) {
	r := wire.NewReader(b)
	n := int(r.U32())
	if r.Err() != nil || n > r.Remaining()/12+1 {
		return nil, wire.ErrTruncated
	}
	snap := make(map[string]uint64, n)
	for i := 0; i < n; i++ {
		name := string(r.Bytes32())
		snap[name] = r.U64()
	}
	return snap, r.Err()
}

// ModelHeat reports one model's EWMA access rates as measured by a
// provider: bytes per second served to readers and ingested by writers.
type ModelHeat struct {
	Model    ownermap.ModelID
	ReadBps  float64
	WriteBps float64
}

// EncodeCountersHeat serializes a metrics snapshot followed by a per-model
// heat trailer. The prefix is byte-identical to EncodeCounters, and
// DecodeCounters ignores trailing bytes, so old clients read the counters
// and never see the heat — the trailer rides the existing Metrics RPC per
// the package's wire-evolution contract (appended fields are optional
// trailers).
func EncodeCountersHeat(snap map[string]uint64, heat []ModelHeat) []byte {
	w := wire.NewWriter(len(heat)*24 + 4)
	w.U32(uint32(len(heat)))
	for _, h := range heat {
		w.U64(uint64(h.Model))
		w.F64(h.ReadBps)
		w.F64(h.WriteBps)
	}
	return append(EncodeCounters(snap), w.Bytes()...)
}

// DecodeCountersHeat parses a metrics snapshot plus its optional heat
// trailer. Payloads from providers that predate heat decode with a nil
// heat slice rather than an error.
func DecodeCountersHeat(b []byte) (map[string]uint64, []ModelHeat, error) {
	r := wire.NewReader(b)
	n := int(r.U32())
	if r.Err() != nil || n > r.Remaining()/12+1 {
		return nil, nil, wire.ErrTruncated
	}
	snap := make(map[string]uint64, n)
	for i := 0; i < n; i++ {
		name := string(r.Bytes32())
		snap[name] = r.U64()
	}
	if r.Err() != nil {
		return nil, nil, r.Err()
	}
	if r.Remaining() == 0 {
		return snap, nil, nil
	}
	hn := int(r.U32())
	if r.Err() != nil || hn > r.Remaining()/24+1 {
		return nil, nil, wire.ErrTruncated
	}
	heat := make([]ModelHeat, hn)
	for i := range heat {
		heat[i] = ModelHeat{
			Model:    ownermap.ModelID(r.U64()),
			ReadBps:  r.F64(),
			WriteBps: r.F64(),
		}
	}
	return snap, heat, r.Err()
}

// ProviderStats summarizes one provider's storage state.
type ProviderStats struct {
	Models       uint64
	Segments     uint64
	SegmentBytes uint64
	LiveRefs     uint64
}

// Encode serializes the stats.
func (s *ProviderStats) Encode() []byte {
	w := wire.NewWriter(32)
	w.U64(s.Models)
	w.U64(s.Segments)
	w.U64(s.SegmentBytes)
	w.U64(s.LiveRefs)
	return w.Bytes()
}

// DecodeProviderStats parses the stats.
func DecodeProviderStats(b []byte) (*ProviderStats, error) {
	r := wire.NewReader(b)
	s := &ProviderStats{
		Models:       r.U64(),
		Segments:     r.U64(),
		SegmentBytes: r.U64(),
		LiveRefs:     r.U64(),
	}
	return s, r.Err()
}

// Add accumulates other into s (cluster-wide reduction).
func (s *ProviderStats) Add(o *ProviderStats) {
	s.Models += o.Models
	s.Segments += o.Segments
	s.SegmentBytes += o.SegmentBytes
	s.LiveRefs += o.LiveRefs
}
