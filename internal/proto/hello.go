package proto

import "repro/internal/wire"

// Restart-rejoin handshake (RPCHello). A provider that reopened its data
// dir after a crash sends a Hello — its identity, the manifest format it
// runs, and the placement epoch its manifest recorded — to each repair
// peer. The peer answers with its own Hello plus its encoded placement
// state; the rejoiner adopts the highest-epoch state it hears (epochs are
// forward-only on install, so adopting is convergent) and persists it
// back into its manifest. The RPC is idempotent and side-effect free on
// the responder.

// Hello identifies one provider's recovery state.
type Hello struct {
	// Provider is the sender's provider index.
	Provider uint32
	// Format is the manifest format version the sender runs
	// (kvstore.ManifestFormatVersion).
	Format uint32
	// Epoch is the current placement epoch of the sender's view; 0 means
	// no placement armed (or an epoch-0 legacy table).
	Epoch uint64
	// Models is the sender's cataloged model count (diagnostic only).
	Models uint64
}

func (h *Hello) appendTo(w *wire.Writer) {
	w.U32(h.Provider)
	w.U32(h.Format)
	w.U64(h.Epoch)
	w.U64(h.Models)
}

func readHello(r *wire.Reader) Hello {
	return Hello{
		Provider: r.U32(),
		Format:   r.U32(),
		Epoch:    r.U64(),
		Models:   r.U64(),
	}
}

// EncodeHello serializes a Hello request.
func EncodeHello(h *Hello) []byte {
	w := wire.NewWriter(24)
	h.appendTo(w)
	return w.Bytes()
}

// DecodeHello parses a Hello request.
func DecodeHello(b []byte) (*Hello, error) {
	r := wire.NewReader(b)
	h := readHello(r)
	if r.Err() != nil {
		return nil, r.Err()
	}
	return &h, nil
}

// HelloResp is the responder's side of the handshake: its own Hello plus
// its encoded placement state (placement.EncodeState bytes, opaque here).
type HelloResp struct {
	Hello     Hello
	Placement []byte
}

// Encode serializes a HelloResp.
func (p *HelloResp) Encode() []byte {
	w := wire.NewWriter(32 + len(p.Placement))
	p.Hello.appendTo(w)
	w.Bytes32(p.Placement)
	return w.Bytes()
}

// DecodeHelloResp parses a HelloResp.
func DecodeHelloResp(b []byte) (*HelloResp, error) {
	r := wire.NewReader(b)
	p := &HelloResp{Hello: readHello(r)}
	p.Placement = append([]byte(nil), r.Bytes32()...)
	if r.Err() != nil {
		return nil, r.Err()
	}
	return p, nil
}
