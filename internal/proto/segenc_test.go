package proto

import (
	"bytes"
	"testing"
)

func TestSegEnvelopeRoundTrip(t *testing.T) {
	for _, e := range []*SegEnvelope{
		{Flags: SegDelta, Depth: 1, RawLen: 1 << 20, BaseOwner: 7, BaseVertex: 3, Payload: []byte("delta-bytes")},
		{Flags: SegDelta | SegFlate, Depth: 8, RawLen: 42, BaseOwner: 1, BaseVertex: 0, Payload: []byte{0}},
		{Flags: SegFlate, Depth: 0, RawLen: 9, Payload: []byte("zzzzz")},
	} {
		b := e.Encode()
		if !IsSegEnvelope(b) {
			t.Fatalf("%+v: encoded envelope not recognized", e)
		}
		got, ok, err := ParseSegEnvelope(b)
		if err != nil || !ok {
			t.Fatalf("%+v: parse: ok=%v err=%v", e, ok, err)
		}
		if got.Flags != e.Flags || got.Depth != e.Depth || got.RawLen != e.RawLen ||
			got.BaseOwner != e.BaseOwner || got.BaseVertex != e.BaseVertex ||
			!bytes.Equal(got.Payload, e.Payload) {
			t.Fatalf("round trip:\n got %+v\nwant %+v", got, e)
		}
	}
}

func TestSegEnvelopeRawPassThrough(t *testing.T) {
	for _, raw := range [][]byte{nil, {}, []byte("tensor bytes"), {0xf5}, {0xf5, 'E', 'v'}} {
		if IsSegEnvelope(raw) {
			t.Fatalf("%q misidentified as envelope", raw)
		}
		if _, ok, err := ParseSegEnvelope(raw); ok || err != nil {
			t.Fatalf("%q: parse of raw bytes: ok=%v err=%v", raw, ok, err)
		}
		if got := SegLogicalLen(raw); got != uint64(len(raw)) {
			t.Fatalf("%q: SegLogicalLen = %d, want stored length %d", raw, got, len(raw))
		}
	}
}

func TestSegEnvelopeTornAndInvalid(t *testing.T) {
	env := (&SegEnvelope{Flags: SegDelta, Depth: 2, RawLen: 100, BaseOwner: 5, BaseVertex: 1, Payload: []byte("p")}).Encode()
	// Magic present but header cut short: an error, never silently raw.
	if _, _, err := ParseSegEnvelope(env[:10]); err == nil {
		t.Fatal("torn envelope parsed without error")
	}
	// Flag byte zero (an envelope must carry an encoding).
	zero := append([]byte(nil), env...)
	zero[6] = 0
	if _, _, err := ParseSegEnvelope(zero); err == nil {
		t.Fatal("zero-flag envelope parsed without error")
	}
	// Unknown flag bit.
	junk := append([]byte(nil), env...)
	junk[6] = 0x80
	if _, _, err := ParseSegEnvelope(junk); err == nil {
		t.Fatal("unknown-flag envelope parsed without error")
	}
	// Depth without SegDelta is meaningless.
	flateDepth := (&SegEnvelope{Flags: SegFlate, Depth: 1, RawLen: 4, Payload: []byte("z")}).Encode()
	if _, _, err := ParseSegEnvelope(flateDepth); err == nil {
		t.Fatal("non-delta envelope with depth parsed without error")
	}
}

func TestSegLogicalLen(t *testing.T) {
	env := (&SegEnvelope{Flags: SegDelta, Depth: 1, RawLen: 262144, BaseOwner: 2, BaseVertex: 0, Payload: []byte("tiny")}).Encode()
	if got := SegLogicalLen(env); got != 262144 {
		t.Fatalf("SegLogicalLen(envelope) = %d, want the RawLen 262144", got)
	}
	// A torn envelope falls back to the stored length (flags divergent, the
	// safe direction) rather than failing.
	if got := SegLogicalLen(env[:10]); got != 10 {
		t.Fatalf("SegLogicalLen(torn) = %d, want stored length 10", got)
	}
}

func TestFreedRespRoundTrip(t *testing.T) {
	bases := []SegBase{{Owner: 9, Vertex: 4}, {Owner: 2, Vertex: 0}}
	freed, got, err := DecodeFreedResp(EncodeFreedResp(3, bases))
	if err != nil || freed != 3 || len(got) != 2 || got[0] != bases[0] || got[1] != bases[1] {
		t.Fatalf("round trip: freed=%d bases=%v err=%v", freed, got, err)
	}
}

func TestFreedRespLegacyCompat(t *testing.T) {
	// No bases: the encoding is the legacy 8-byte count, so pre-dedup
	// clients' DecodeU64 keeps working against new providers...
	b := EncodeFreedResp(5, nil)
	if len(b) != 8 {
		t.Fatalf("empty-bases encoding is %d bytes, want the legacy 8", len(b))
	}
	if v, err := DecodeU64(b); err != nil || v != 5 {
		t.Fatalf("DecodeU64(freed resp) = %d, %v", v, err)
	}
	// ...and new clients decode legacy 8-byte responses.
	if freed, bases, err := DecodeFreedResp(EncodeU64(7)); err != nil || freed != 7 || bases != nil {
		t.Fatalf("legacy decode: freed=%d bases=%v err=%v", freed, bases, err)
	}
	// A torn trailer is an error, not a silently-shorter base list.
	full := EncodeFreedResp(1, []SegBase{{Owner: 1, Vertex: 2}})
	if _, _, err := DecodeFreedResp(full[:len(full)-3]); err == nil {
		t.Fatal("torn freed-resp trailer decoded without error")
	}
}
