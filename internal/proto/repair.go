package proto

import (
	"repro/internal/graph"
	"repro/internal/ownermap"
	"repro/internal/wire"
)

// Anti-entropy repair protocol. Four RPCs let a Repairer (see
// internal/client) detect and converge replica divergence left behind by
// partial writes:
//
//   - RPCRepairList:  every model ID the provider holds any state for
//     (catalog entry or live refcounts). Idempotent.
//   - RPCDigest:      batch of per-model ModelDigests — a cheap, fixed-size
//     summary (seq, metadata hash, refcount hash, segment-table hash) that
//     two replicas can compare without shipping payloads. Idempotent.
//   - RPCRepairPull:  one model's full repair state (metadata bytes,
//     refcounts, refcount-delta journal, optionally segment payloads on
//     the bulk vector). Idempotent.
//   - RPCRepairApply: pushes repair state at a stale replica: a retire
//     tombstone, a metadata install, segment payloads, and refcount
//     deltas merged by ReqID (or an absolute refcount set when a journal
//     was trimmed). Convergent — re-applying the same request is a no-op —
//     so it is Retryable without carrying a dedup ReqID.
//
// All hashes are order-sensitive FNV-1a 64 over little-endian words
// (HashWords), so "equal digest" means "byte-identical state" up to hash
// collision.
const (
	RPCRepairList  = "evostore.repair_list"
	RPCDigest      = "evostore.digest"
	RPCRepairPull  = "evostore.repair_pull"
	RPCRepairApply = "evostore.repair_apply"
)

// HashSeed is the FNV-1a 64 offset basis; fold state into it with
// HashWords or HashBytes.
const HashSeed uint64 = 0xcbf29ce484222325

const fnvPrime64 = 0x100000001b3

// HashBytes folds b into the running FNV-1a 64 hash h.
func HashBytes(h uint64, b []byte) uint64 {
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

// HashWords folds 64-bit words (little-endian byte order) into the running
// FNV-1a 64 hash h. Order-sensitive: callers must fold in a canonical
// (sorted) order for digests to be comparable across replicas.
func HashWords(h uint64, words ...uint64) uint64 {
	for _, w := range words {
		for i := 0; i < 64; i += 8 {
			h ^= (w >> i) & 0xff
			h *= fnvPrime64
		}
	}
	return h
}

// SegMissing is the length word folded into a segment-table hash for a
// referenced vertex whose payload is absent from the KV store. It cannot
// collide with a real length (lengths are u32).
const SegMissing uint64 = 1<<64 - 1

// ModelDigest is a provider's fixed-size summary of everything it holds
// for one model. Two replicas holding byte-identical state produce equal
// digests; Converged is the comparison the repairer trusts.
type ModelDigest struct {
	Model   ownermap.ModelID
	Present bool // catalog entry exists
	Retired bool // retire tombstone exists
	Trimmed bool // refcount journal lost entries; delta merge is unsafe

	// Seq is the model's store sequence number while Present, else the
	// sequence recorded by the retire tombstone.
	Seq uint64
	// MetaHash hashes the encoded ModelMeta (graph, owner map, quality,
	// seq); zero when not Present.
	MetaHash uint64
	// RefHash hashes the (vertex, refcount) pairs in vertex order.
	RefHash uint64
	// SegHash hashes the (vertex, stored payload length) pairs in vertex
	// order, folding SegMissing for a referenced-but-absent payload.
	SegHash uint64
	// LiveRefs is the sum of this model's refcounts.
	LiveRefs uint64
	// Journal counts refcount deltas ever appended to the local journal;
	// the fallback authority choice prefers the longest journal.
	Journal uint64
}

// Converged reports whether two replicas' digests describe the same model
// state. Two fully drained replicas (no catalog entry, no live refs)
// agree regardless of tombstone bookkeeping: one side may have forgotten
// a long-retired model entirely.
func (d ModelDigest) Converged(o ModelDigest) bool {
	if !d.Present && !o.Present && d.LiveRefs == 0 && o.LiveRefs == 0 {
		return true
	}
	return d.Present == o.Present && d.Retired == o.Retired && d.Seq == o.Seq &&
		d.MetaHash == o.MetaHash && d.RefHash == o.RefHash &&
		d.SegHash == o.SegHash && d.LiveRefs == o.LiveRefs
}

const digestWireLen = 8 + 1 + 6*8

func (d *ModelDigest) appendTo(w *wire.Writer) {
	w.U64(uint64(d.Model))
	var flags uint8
	if d.Present {
		flags |= 1
	}
	if d.Retired {
		flags |= 2
	}
	if d.Trimmed {
		flags |= 4
	}
	w.U8(flags)
	w.U64(d.Seq)
	w.U64(d.MetaHash)
	w.U64(d.RefHash)
	w.U64(d.SegHash)
	w.U64(d.LiveRefs)
	w.U64(d.Journal)
}

func readDigest(r *wire.Reader) ModelDigest {
	var d ModelDigest
	d.Model = ownermap.ModelID(r.U64())
	flags := r.U8()
	d.Present = flags&1 != 0
	d.Retired = flags&2 != 0
	d.Trimmed = flags&4 != 0
	d.Seq = r.U64()
	d.MetaHash = r.U64()
	d.RefHash = r.U64()
	d.SegHash = r.U64()
	d.LiveRefs = r.U64()
	d.Journal = r.U64()
	return d
}

// EncodeDigests serializes a Digest RPC response. The request is an
// EncodeModelList of the IDs to digest; the response carries one digest
// per requested ID, in request order.
func EncodeDigests(ds []ModelDigest) []byte {
	w := wire.NewWriter(4 + digestWireLen*len(ds))
	w.U32(uint32(len(ds)))
	for i := range ds {
		ds[i].appendTo(w)
	}
	return w.Bytes()
}

// DecodeDigests parses a Digest RPC response.
func DecodeDigests(b []byte) ([]ModelDigest, error) {
	r := wire.NewReader(b)
	n := int(r.U32())
	if r.Err() != nil || n > r.Remaining()/digestWireLen+1 {
		return nil, wire.ErrTruncated
	}
	ds := make([]ModelDigest, n)
	for i := range ds {
		ds[i] = readDigest(r)
	}
	return ds, r.Err()
}

// RefDelta is one refcount mutation as recorded in a provider's journal:
// the ReqID of the originating request (shared by every replica leg, which
// is what makes the cross-replica union well-defined), its sign, and the
// vertices it touched, each by ±1.
type RefDelta struct {
	ReqID    uint64
	Neg      bool
	Vertices []graph.VertexID
}

func appendDelta(w *wire.Writer, d *RefDelta) {
	w.U64(d.ReqID)
	if d.Neg {
		w.U8(1)
	} else {
		w.U8(0)
	}
	w.U32(uint32(len(d.Vertices)))
	for _, v := range d.Vertices {
		w.U32(uint32(v))
	}
}

func readDelta(r *wire.Reader) (RefDelta, error) {
	var d RefDelta
	d.ReqID = r.U64()
	d.Neg = r.U8() != 0
	n := int(r.U32())
	if r.Err() != nil || n > r.Remaining()/4+1 {
		return d, wire.ErrTruncated
	}
	d.Vertices = make([]graph.VertexID, n)
	for i := range d.Vertices {
		d.Vertices[i] = graph.VertexID(r.U32())
	}
	return d, r.Err()
}

func appendDeltas(w *wire.Writer, ds []RefDelta) {
	w.U32(uint32(len(ds)))
	for i := range ds {
		appendDelta(w, &ds[i])
	}
}

func readDeltas(r *wire.Reader) ([]RefDelta, error) {
	n := int(r.U32())
	if r.Err() != nil || n > r.Remaining()/13+1 {
		return nil, wire.ErrTruncated
	}
	ds := make([]RefDelta, n)
	for i := range ds {
		var err error
		if ds[i], err = readDelta(r); err != nil {
			return nil, err
		}
	}
	return ds, nil
}

// EncodeRefDelta serializes one journal delta as a standalone record (the
// durable provider catalog persists one delta per KV key).
func EncodeRefDelta(d *RefDelta) []byte {
	w := wire.NewWriter(16 + 4*len(d.Vertices))
	appendDelta(w, d)
	return w.Bytes()
}

// DecodeRefDelta parses an EncodeRefDelta record.
func DecodeRefDelta(b []byte) (RefDelta, error) {
	return readDelta(wire.NewReader(b))
}

// EncodeRefCounts serializes a refcount table as a standalone record (the
// durable provider catalog persists one table per owner).
func EncodeRefCounts(cs []RefCount) []byte {
	w := wire.NewWriter(4 + 12*len(cs))
	appendCounts(w, cs)
	return w.Bytes()
}

// DecodeRefCounts parses an EncodeRefCounts record.
func DecodeRefCounts(b []byte) ([]RefCount, error) {
	return readCounts(wire.NewReader(b))
}

// RefCount is one vertex's absolute refcount, used by the trimmed-journal
// fallback (RepairApplyReq.SetCounts) and by RepairPullResp.
type RefCount struct {
	Vertex graph.VertexID
	Count  uint64
}

func appendCounts(w *wire.Writer, cs []RefCount) {
	w.U32(uint32(len(cs)))
	for _, c := range cs {
		w.U32(uint32(c.Vertex))
		w.U64(c.Count)
	}
}

func readCounts(r *wire.Reader) ([]RefCount, error) {
	n := int(r.U32())
	if r.Err() != nil || n > r.Remaining()/12+1 {
		return nil, wire.ErrTruncated
	}
	cs := make([]RefCount, n)
	for i := range cs {
		cs[i].Vertex = graph.VertexID(r.U32())
		cs[i].Count = r.U64()
	}
	return cs, r.Err()
}

// --- RepairPull --------------------------------------------------------------

// RepairPullReq asks a provider for one model's repair state.
type RepairPullReq struct {
	Model ownermap.ModelID
	// WithPayloads ships the stored segment payloads on the bulk vector,
	// described by RepairPullResp.Segments.
	WithPayloads bool
	// Vertices restricts shipped payloads to the listed vertices; empty
	// means every stored segment of the model.
	Vertices []graph.VertexID
}

// Encode serializes a RepairPullReq.
func (q *RepairPullReq) Encode() []byte {
	w := wire.NewWriter(16 + 4*len(q.Vertices))
	w.U64(uint64(q.Model))
	if q.WithPayloads {
		w.U8(1)
	} else {
		w.U8(0)
	}
	w.U32(uint32(len(q.Vertices)))
	for _, v := range q.Vertices {
		w.U32(uint32(v))
	}
	return w.Bytes()
}

// DecodeRepairPullReq parses a RepairPullReq.
func DecodeRepairPullReq(b []byte) (*RepairPullReq, error) {
	r := wire.NewReader(b)
	q := &RepairPullReq{
		Model:        ownermap.ModelID(r.U64()),
		WithPayloads: r.U8() != 0,
	}
	n := int(r.U32())
	if r.Err() != nil || n > r.Remaining()/4+1 {
		return nil, wire.ErrTruncated
	}
	if n > 0 {
		q.Vertices = make([]graph.VertexID, n)
		for i := range q.Vertices {
			q.Vertices[i] = graph.VertexID(r.U32())
		}
	}
	return q, r.Err()
}

// RepairPullResp is one model's repair state. Segment payloads, when
// requested, ride the bulk vector in Segments order.
type RepairPullResp struct {
	Digest ModelDigest
	// Meta is the encoded ModelMeta, nil when the model is not cataloged.
	Meta []byte
	// Counts are the live refcounts in vertex order.
	Counts []RefCount
	// Journal is the local refcount-delta journal in append order.
	Journal []RefDelta
	// Segments tables the payloads on the bulk vector (empty unless
	// WithPayloads was set).
	Segments []SegmentRef
}

// Encode serializes a RepairPullResp.
func (p *RepairPullResp) Encode() []byte {
	w := wire.NewWriter(digestWireLen + 64 + len(p.Meta) + 12*len(p.Counts) + 8*len(p.Segments))
	p.Digest.appendTo(w)
	w.Bytes32(p.Meta)
	appendCounts(w, p.Counts)
	appendDeltas(w, p.Journal)
	appendSegTable(w, p.Segments)
	return w.Bytes()
}

// DecodeRepairPullResp parses a RepairPullResp.
func DecodeRepairPullResp(b []byte) (*RepairPullResp, error) {
	r := wire.NewReader(b)
	p := &RepairPullResp{Digest: readDigest(r)}
	if meta := r.Bytes32(); len(meta) > 0 {
		p.Meta = meta
	}
	var err error
	if p.Counts, err = readCounts(r); err != nil {
		return nil, err
	}
	if p.Journal, err = readDeltas(r); err != nil {
		return nil, err
	}
	p.Segments = readSegTable(r)
	return p, r.Err()
}

// --- RepairApply -------------------------------------------------------------

// RepairApplyReq pushes repair state at a stale replica. Every field is
// optional; the provider applies them in a fixed order — tombstone,
// metadata install, refcount deltas (or absolute counts), segment
// payloads — and each step is a no-op when the local state already
// reflects it, so re-applying the same request converges.
type RepairApplyReq struct {
	Model ownermap.ModelID
	// Tombstone records a retire: the catalog entry (if any) is removed
	// and future stores of the model are rejected. TombstoneSeq carries
	// the retired model's sequence number for digest agreement.
	Tombstone    bool
	TombstoneSeq uint64
	// Meta, when non-nil, installs the encoded ModelMeta unless the model
	// is tombstoned locally. It does not touch refcounts: those arrive as
	// Deltas (or SetCounts) in the same request.
	Meta []byte
	// Deltas are refcount mutations to merge by ReqID: a delta whose
	// ReqID the local journal has seen is skipped, the rest are applied
	// as a batch.
	Deltas []RefDelta
	// ReplaceJournal switches from merge to absolute mode: local
	// refcounts become exactly SetCounts, and the local journal is
	// replaced verbatim by Deltas with JournalAppended as its
	// appended-count. Used when a journal was trimmed and delta merge
	// would be unsound.
	ReplaceJournal  bool
	JournalAppended uint64
	SetCounts       []RefCount
	// Segments tables payloads riding the bulk vector; each is installed
	// when the vertex is live (refcount > 0) after the refcount step.
	Segments []SegmentRef
}

// Encode serializes a RepairApplyReq.
func (q *RepairApplyReq) Encode() []byte {
	w := wire.NewWriter(64 + len(q.Meta) + 12*len(q.SetCounts) + 8*len(q.Segments))
	w.U64(uint64(q.Model))
	var flags uint8
	if q.Tombstone {
		flags |= 1
	}
	if q.ReplaceJournal {
		flags |= 2
	}
	w.U8(flags)
	w.U64(q.TombstoneSeq)
	w.U64(q.JournalAppended)
	w.Bytes32(q.Meta)
	appendDeltas(w, q.Deltas)
	appendCounts(w, q.SetCounts)
	appendSegTable(w, q.Segments)
	return w.Bytes()
}

// DecodeRepairApplyReq parses a RepairApplyReq.
func DecodeRepairApplyReq(b []byte) (*RepairApplyReq, error) {
	r := wire.NewReader(b)
	q := &RepairApplyReq{Model: ownermap.ModelID(r.U64())}
	flags := r.U8()
	q.Tombstone = flags&1 != 0
	q.ReplaceJournal = flags&2 != 0
	q.TombstoneSeq = r.U64()
	q.JournalAppended = r.U64()
	if meta := r.Bytes32(); len(meta) > 0 {
		q.Meta = meta
	}
	var err error
	if q.Deltas, err = readDeltas(r); err != nil {
		return nil, err
	}
	if q.SetCounts, err = readCounts(r); err != nil {
		return nil, err
	}
	q.Segments = readSegTable(r)
	return q, r.Err()
}

// RepairApplyResp reports the provider's post-apply state.
type RepairApplyResp struct {
	// Digest summarizes the model after the apply; the repairer compares
	// it against the other replicas to decide whether another pass is
	// needed.
	Digest ModelDigest
	// NeedPayload lists vertices that are live (refcount > 0) but whose
	// segment payload is absent locally — the repairer fetches them from
	// a replica that has them and applies again.
	NeedPayload []graph.VertexID
}

// Encode serializes a RepairApplyResp.
func (p *RepairApplyResp) Encode() []byte {
	w := wire.NewWriter(digestWireLen + 8 + 4*len(p.NeedPayload))
	p.Digest.appendTo(w)
	w.U32(uint32(len(p.NeedPayload)))
	for _, v := range p.NeedPayload {
		w.U32(uint32(v))
	}
	return w.Bytes()
}

// DecodeRepairApplyResp parses a RepairApplyResp.
func DecodeRepairApplyResp(b []byte) (*RepairApplyResp, error) {
	r := wire.NewReader(b)
	p := &RepairApplyResp{Digest: readDigest(r)}
	n := int(r.U32())
	if r.Err() != nil || n > r.Remaining()/4+1 {
		return nil, wire.ErrTruncated
	}
	if n > 0 {
		p.NeedPayload = make([]graph.VertexID, n)
		for i := range p.NeedPayload {
			p.NeedPayload[i] = graph.VertexID(r.U32())
		}
	}
	return p, r.Err()
}
