package proto

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/ownermap"
	"repro/internal/rpc"
)

func sampleGraph(n int) *graph.Compact {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddVertex(graph.Vertex{ConfigSig: uint64(i + 1), ParamBytes: int64(i * 10)})
		if i > 0 {
			b.AddEdge(graph.VertexID(i-1), graph.VertexID(i))
		}
	}
	return b.Build()
}

func TestStoreModelReqRoundtrip(t *testing.T) {
	g := sampleGraph(4)
	om := ownermap.New(9, 3, 4)
	req := &StoreModelReq{
		Model: 9, Seq: 3, Quality: 0.75,
		Graph: g, OwnerMap: om,
		Segments: []SegmentRef{{Vertex: 1, Length: 100}, {Vertex: 3, Length: 0}},
	}
	back, err := DecodeStoreModelReq(req.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if back.Model != 9 || back.Seq != 3 || back.Quality != 0.75 {
		t.Errorf("scalars: %+v", back)
	}
	if !back.Graph.Equal(g) || !back.OwnerMap.Equal(om) {
		t.Error("graph/ownermap mismatch")
	}
	if len(back.Segments) != 2 || back.Segments[0] != req.Segments[0] {
		t.Errorf("segments: %+v", back.Segments)
	}
}

func TestStoreModelReqTruncated(t *testing.T) {
	g := sampleGraph(3)
	req := &StoreModelReq{Model: 1, Graph: g, OwnerMap: ownermap.New(1, 1, 3)}
	enc := req.Encode()
	// The only prefix that decodes is the legacy format without the 8-byte
	// ReqID trailer; every other truncation must error.
	legacy := len(enc) - 8
	for cut := 0; cut < len(enc); cut++ {
		back, err := DecodeStoreModelReq(enc[:cut])
		if cut == legacy {
			if err != nil || back.ReqID != 0 {
				t.Fatalf("legacy encoding rejected: %+v, %v", back, err)
			}
			continue
		}
		if err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestModelMetaRoundtrip(t *testing.T) {
	m := &ModelMeta{Model: 5, Seq: 7, Quality: 0.5, Graph: sampleGraph(3), OwnerMap: ownermap.New(5, 7, 3)}
	back, err := DecodeModelMeta(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if back.Model != 5 || back.Seq != 7 || !back.Graph.Equal(m.Graph) || !back.OwnerMap.Equal(m.OwnerMap) {
		t.Error("roundtrip mismatch")
	}
}

func TestSplitBulk(t *testing.T) {
	segs := []SegmentRef{{Vertex: 0, Length: 3}, {Vertex: 1, Length: 0}, {Vertex: 2, Length: 2}}
	bulk := []byte{1, 2, 3, 4, 5}
	parts, err := SplitBulk(segs, bulk)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 3 || string(parts[0]) != "\x01\x02\x03" || len(parts[1]) != 0 || string(parts[2]) != "\x04\x05" {
		t.Errorf("parts = %v", parts)
	}
	// Overrun and trailing bytes must error.
	if _, err := SplitBulk(segs, bulk[:4]); err == nil {
		t.Error("overrun accepted")
	}
	if _, err := SplitBulk(segs[:2], bulk); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestReadSegmentsReqRoundtrip(t *testing.T) {
	req := &ReadSegmentsReq{Owner: 3, Vertices: []graph.VertexID{0, 5, 9}}
	back, err := DecodeReadSegmentsReq(req.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if back.Owner != 3 || len(back.Vertices) != 3 || back.Vertices[2] != 9 {
		t.Errorf("back = %+v", back)
	}
}

func TestLCPQueryReqRoundtrip(t *testing.T) {
	q := &LCPQueryReq{Graph: sampleGraph(5), Exclude: []ownermap.ModelID{2, 4}}
	back, err := DecodeLCPQueryReq(q.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !back.Graph.Equal(q.Graph) || len(back.Exclude) != 2 || back.Exclude[1] != 4 {
		t.Errorf("back = %+v", back)
	}
	// No excludes.
	q2 := &LCPQueryReq{Graph: sampleGraph(2)}
	back2, err := DecodeLCPQueryReq(q2.Encode())
	if err != nil || len(back2.Exclude) != 0 {
		t.Errorf("empty exclude roundtrip: %v %+v", err, back2)
	}
}

func TestLCPResultRoundtrip(t *testing.T) {
	res := &LCPResult{Found: true, Model: 8, Seq: 2, Quality: 0.9, Prefix: []graph.VertexID{0, 1, 2}}
	back, err := DecodeLCPResult(res.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !back.Found || back.Model != 8 || len(back.Prefix) != 3 {
		t.Errorf("back = %+v", back)
	}
	miss := &LCPResult{}
	backMiss, err := DecodeLCPResult(miss.Encode())
	if err != nil || backMiss.Found {
		t.Errorf("not-found roundtrip: %v %+v", err, backMiss)
	}
}

func TestLCPResultBetter(t *testing.T) {
	short := &LCPResult{Found: true, Model: 1, Quality: 0.9, Prefix: []graph.VertexID{0}}
	long := &LCPResult{Found: true, Model: 2, Quality: 0.1, Prefix: []graph.VertexID{0, 1}}
	if !long.Better(short) || short.Better(long) {
		t.Error("prefix length must dominate")
	}
	// Tie on length → quality.
	hiQ := &LCPResult{Found: true, Model: 3, Quality: 0.8, Prefix: []graph.VertexID{0}}
	if !hiQ.Better(short) == false {
		// hiQ (0.8) vs short (0.9): short is better
		if hiQ.Better(short) {
			t.Error("quality tie-break inverted")
		}
	}
	// Tie on both → lower ID.
	twin := &LCPResult{Found: true, Model: 0, Quality: 0.9, Prefix: []graph.VertexID{0}}
	if !twin.Better(short) {
		t.Error("ID tie-break failed")
	}
	// Not-found never wins; anything beats not-found.
	none := &LCPResult{}
	if none.Better(short) || !short.Better(none) {
		t.Error("found/not-found ordering wrong")
	}
}

func TestModelListAndStats(t *testing.T) {
	ids := []ownermap.ModelID{5, 1, 9}
	back, err := DecodeModelList(EncodeModelList(ids))
	if err != nil || len(back) != 3 || back[2] != 9 {
		t.Errorf("list roundtrip: %v %v", back, err)
	}
	s := &ProviderStats{Models: 1, Segments: 2, SegmentBytes: 3, LiveRefs: 4}
	bs, err := DecodeProviderStats(s.Encode())
	if err != nil || *bs != *s {
		t.Errorf("stats roundtrip: %+v %v", bs, err)
	}
	total := &ProviderStats{}
	total.Add(s)
	total.Add(s)
	if total.Models != 2 || total.LiveRefs != 8 {
		t.Errorf("Add: %+v", total)
	}
}

func TestEncodeDecodeU64AndModelID(t *testing.T) {
	if v, err := DecodeU64(EncodeU64(42)); err != nil || v != 42 {
		t.Errorf("u64: %v %v", v, err)
	}
	if id, err := DecodeModelID(EncodeModelID(7)); err != nil || id != 7 {
		t.Errorf("modelID: %v %v", id, err)
	}
	if _, err := DecodeU64(nil); err == nil {
		t.Error("empty u64 accepted")
	}
}

// Property: segment tables of arbitrary shape roundtrip.
func TestQuickSegTable(t *testing.T) {
	f := func(vs []uint16, ls []uint16) bool {
		n := len(vs)
		if len(ls) < n {
			n = len(ls)
		}
		segs := make([]SegmentRef, n)
		for i := 0; i < n; i++ {
			segs[i] = SegmentRef{Vertex: graph.VertexID(vs[i]), Length: uint32(ls[i])}
		}
		back, err := DecodeSegTable(EncodeSegTable(segs))
		if err != nil || len(back) != n {
			return false
		}
		for i := range segs {
			if back[i] != segs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func vertsEqual(a, b []graph.VertexID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRefReqRoundtrip(t *testing.T) {
	q := &RefReq{Owner: 9, Vertices: []graph.VertexID{0, 3, 7}, ReqID: 1234}
	got, err := DecodeRefReq(q.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Owner != q.Owner || !vertsEqual(got.Vertices, q.Vertices) || got.ReqID != q.ReqID {
		t.Errorf("roundtrip = %+v, want %+v", got, q)
	}
	// Legacy encoders omit the ReqID trailer entirely; decode must tolerate
	// that with ReqID 0, but reject a torn trailer.
	legacy := q.Encode()
	legacy = legacy[:len(legacy)-8]
	got, err = DecodeRefReq(legacy)
	if err != nil {
		t.Fatalf("legacy decode: %v", err)
	}
	if got.ReqID != 0 || !vertsEqual(got.Vertices, q.Vertices) {
		t.Errorf("legacy roundtrip = %+v", got)
	}
	if _, err := DecodeRefReq(q.Encode()[:len(q.Encode())-3]); err == nil {
		t.Error("torn ReqID trailer accepted")
	}
}

func TestRetireReqRoundtrip(t *testing.T) {
	q := &RetireReq{Model: 5, ReqID: 99}
	got, err := DecodeRetireReq(q.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Model != 5 || got.ReqID != 99 {
		t.Errorf("roundtrip = %+v", got)
	}
	// The legacy format is a bare 8-byte model ID.
	got, err = DecodeRetireReq(EncodeModelID(5))
	if err != nil {
		t.Fatalf("legacy decode: %v", err)
	}
	if got.Model != 5 || got.ReqID != 0 {
		t.Errorf("legacy roundtrip = %+v", got)
	}
	if _, err := DecodeRetireReq(q.Encode()[:12]); err == nil {
		t.Error("torn ReqID trailer accepted")
	}
}

func TestIdempotentAndRetryable(t *testing.T) {
	cases := []struct {
		name       string
		idempotent bool
		retryable  bool
	}{
		{RPCGetMeta, true, true},
		{RPCReadSegments, true, true},
		{RPCLCPQuery, true, true},
		{RPCListModels, true, true},
		{RPCStats, true, true},
		{RPCStoreModel, false, true}, // retryable only via ReqID dedup
		{RPCIncRef, false, true},
		{RPCDecRef, false, true},
		{RPCRetire, false, true},
		{"evostore.unknown", false, false},
	}
	for _, tc := range cases {
		if got := Idempotent(tc.name); got != tc.idempotent {
			t.Errorf("Idempotent(%s) = %v, want %v", tc.name, got, tc.idempotent)
		}
		if got := Retryable(tc.name); got != tc.retryable {
			t.Errorf("Retryable(%s) = %v, want %v", tc.name, got, tc.retryable)
		}
	}
}

func TestCountersRoundtrip(t *testing.T) {
	snap := map[string]uint64{
		"client.read_failover": 7,
		"rpc.retry":            123456789,
		"breaker.open":         0,
		"fault.request_drop":   1,
	}
	got, err := DecodeCounters(EncodeCounters(snap))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(snap) {
		t.Fatalf("decoded %d counters, want %d", len(got), len(snap))
	}
	for name, v := range snap {
		if got[name] != v {
			t.Errorf("%s = %d, want %d", name, got[name], v)
		}
	}

	if m, err := DecodeCounters(EncodeCounters(nil)); err != nil || len(m) != 0 {
		t.Errorf("empty snapshot roundtrip: %v %v", m, err)
	}
}

func TestCountersDecodeTruncated(t *testing.T) {
	b := EncodeCounters(map[string]uint64{"some.counter": 42})
	for cut := 1; cut < len(b); cut++ {
		if _, err := DecodeCounters(b[:cut]); err == nil {
			t.Errorf("decoding %d/%d bytes succeeded", cut, len(b))
		}
	}
	// A count field claiming more entries than the payload can hold must be
	// rejected up front, not trusted as an allocation size.
	huge := []byte{0xff, 0xff, 0xff, 0xff}
	if _, err := DecodeCounters(huge); err == nil {
		t.Error("absurd counter count accepted")
	}
}

func TestReadSegmentsReqModeTrailer(t *testing.T) {
	// ReadFull encodes exactly like the legacy trailer-free format.
	full := &ReadSegmentsReq{Owner: 7, Vertices: []graph.VertexID{1, 2}}
	b := full.Encode()
	if len(b) != 8+4+4*2 {
		t.Fatalf("ReadFull encoding is %d bytes, want the canonical %d", len(b), 8+4+4*2)
	}
	got, err := DecodeReadSegmentsReq(b)
	if err != nil || got.Mode != ReadFull || got.Owner != 7 {
		t.Fatalf("decode ReadFull: %+v %v", got, err)
	}

	// Non-full modes round-trip through the trailer.
	rng := &ReadSegmentsReq{Owner: 9, Vertices: []graph.VertexID{0}, Mode: ReadRange, RangeOff: 100, RangeLen: 4096}
	got, err = DecodeReadSegmentsReq(rng.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Mode != ReadRange || got.RangeOff != 100 || got.RangeLen != 4096 {
		t.Fatalf("range trailer round trip: %+v", got)
	}
	tbl := &ReadSegmentsReq{Owner: 9, Vertices: []graph.VertexID{0}, Mode: ReadTable}
	got, err = DecodeReadSegmentsReq(tbl.Encode())
	if err != nil || got.Mode != ReadTable {
		t.Fatalf("table-mode round trip: %+v %v", got, err)
	}

	// A torn trailer (present but short) must be rejected, not ignored.
	torn := append(full.Encode(), 1, 2, 3)
	if _, err := DecodeReadSegmentsReq(torn); err == nil {
		t.Error("torn trailer accepted")
	}
}

func TestReadSegmentsReqTenantTrailer(t *testing.T) {
	// A tenant on a ReadFull request forces the mode trailer so the tenant
	// field has a fixed offset, and round-trips intact.
	req := &ReadSegmentsReq{Owner: 7, Vertices: []graph.VertexID{1, 2}, Tenant: "team-a"}
	got, err := DecodeReadSegmentsReq(req.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Tenant != "team-a" || got.Mode != ReadFull {
		t.Fatalf("tenant round trip: %+v", got)
	}

	// Tenant composes with a non-full mode trailer.
	rng := &ReadSegmentsReq{Owner: 9, Vertices: []graph.VertexID{0}, Mode: ReadRange, RangeOff: 8, RangeLen: 16, Tenant: "t"}
	got, err = DecodeReadSegmentsReq(rng.Encode())
	if err != nil || got.Tenant != "t" || got.Mode != ReadRange || got.RangeLen != 16 {
		t.Fatalf("tenant+range round trip: %+v %v", got, err)
	}

	// No tenant: encoding is byte-identical to the pre-tenant format.
	plain := &ReadSegmentsReq{Owner: 7, Vertices: []graph.VertexID{1, 2}}
	if len(plain.Encode()) != 8+4+4*2 {
		t.Fatal("tenant-less encoding grew")
	}

	// A torn tenant trailer is an error, not an empty tenant.
	torn := req.Encode()
	torn = torn[:len(torn)-2]
	if _, err := DecodeReadSegmentsReq(torn); err == nil {
		t.Error("torn tenant trailer accepted")
	}
}

func TestSplitBulkMsg(t *testing.T) {
	segs := []SegmentRef{{Vertex: 0, Length: 3}, {Vertex: 1, Length: 2}, {Vertex: 2, Length: 0}}
	payload := []byte{1, 2, 3, 4, 5}

	// Aligned vector: parts must alias the sender's slices, no copies.
	a, b := payload[:3], payload[3:]
	parts, err := SplitBulkMsg(segs, rpc.Message{BulkVec: [][]byte{a, b, nil}})
	if err != nil {
		t.Fatal(err)
	}
	if &parts[0][0] != &a[0] || &parts[1][0] != &b[0] {
		t.Error("aligned vector was copied")
	}

	// Flat payload: SplitBulk views.
	parts, err = SplitBulkMsg(segs, rpc.Message{Bulk: payload})
	if err != nil || !bytes.Equal(parts[0], []byte{1, 2, 3}) || !bytes.Equal(parts[1], []byte{4, 5}) {
		t.Fatalf("flat fallback: %v %v", parts, err)
	}

	// Misaligned vector: segment 0 straddles a chunk boundary (copied),
	// segment 1 fits inside the second chunk (aliased view).
	c1, c2 := payload[:2], payload[2:]
	parts, err = SplitBulkMsg(segs, rpc.Message{BulkVec: [][]byte{c1, c2}})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(parts[0], []byte{1, 2, 3}) || !bytes.Equal(parts[1], []byte{4, 5}) || parts[2] != nil {
		t.Fatalf("misaligned re-slice: %v", parts)
	}
	if &parts[1][0] != &c2[1] {
		t.Error("in-chunk segment was copied instead of aliased")
	}

	// A single-chunk vector totalling the right length still re-slices.
	parts, err = SplitBulkMsg(segs, rpc.Message{BulkVec: [][]byte{payload}})
	if err != nil || !bytes.Equal(parts[0], []byte{1, 2, 3}) || !bytes.Equal(parts[1], []byte{4, 5}) {
		t.Fatalf("single-chunk vector: %v %v", parts, err)
	}

	// Length mismatch is rejected.
	if _, err := SplitBulkMsg(segs, rpc.Message{BulkVec: [][]byte{payload[:4]}}); err == nil {
		t.Error("short payload accepted")
	}
}

// TestCountersHeatTrailer pins the heat trailer's compatibility contract:
// the prefix is exactly EncodeCounters (old decoders keep working and skip
// the trailer), heat-free payloads decode with nil heat, and the trailer
// round-trips through the new codec.
func TestCountersHeatTrailer(t *testing.T) {
	snap := map[string]uint64{"store.segments": 9, "rpc.retry": 2}
	heat := []ModelHeat{
		{Model: 3, ReadBps: 1024.5, WriteBps: 0},
		{Model: 17, ReadBps: 0, WriteBps: 4096},
	}
	b := EncodeCountersHeat(snap, heat)

	prefix := EncodeCounters(snap)
	if !bytes.HasPrefix(b, prefix) {
		t.Fatal("heat payload does not start with the plain counters encoding")
	}
	// Old decoder ignores the trailer.
	oldSnap, err := DecodeCounters(b)
	if err != nil {
		t.Fatalf("legacy DecodeCounters on heat payload: %v", err)
	}
	if oldSnap["store.segments"] != 9 {
		t.Errorf("legacy decode snapshot = %v", oldSnap)
	}

	gotSnap, gotHeat, err := DecodeCountersHeat(b)
	if err != nil {
		t.Fatal(err)
	}
	if gotSnap["rpc.retry"] != 2 {
		t.Errorf("snapshot = %v", gotSnap)
	}
	if !reflect.DeepEqual(gotHeat, heat) {
		t.Errorf("heat = %+v, want %+v", gotHeat, heat)
	}

	// A provider that predates heat sends bare counters: nil heat, no error.
	s2, h2, err := DecodeCountersHeat(prefix)
	if err != nil || h2 != nil || s2["rpc.retry"] != 2 {
		t.Errorf("heat-free decode = %v %v %v", s2, h2, err)
	}

	// Empty heat still encodes an explicit zero-count trailer.
	if _, h3, err := DecodeCountersHeat(EncodeCountersHeat(snap, nil)); err != nil || len(h3) != 0 {
		t.Errorf("empty heat trailer decode = %v %v", h3, err)
	}

	// Truncated trailers are rejected, not misread.
	for cut := len(prefix) + 1; cut < len(b); cut++ {
		if _, _, err := DecodeCountersHeat(b[:cut]); err == nil {
			t.Errorf("decoding %d/%d bytes succeeded", cut, len(b))
		}
	}
}
