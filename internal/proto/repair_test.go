package proto

import (
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/wire"
)

func TestDigestRoundTrip(t *testing.T) {
	ds := []ModelDigest{
		{Model: 7, Present: true, Seq: 3, MetaHash: 0xdead, RefHash: 0xbeef, SegHash: 0xf00d, LiveRefs: 12, Journal: 40},
		{Model: 8, Retired: true, Trimmed: true, Seq: 1},
		{Model: 9},
	}
	got, err := DecodeDigests(EncodeDigests(ds))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ds) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, ds)
	}
	if _, err := DecodeDigests(EncodeDigests(ds)[:15]); err == nil {
		t.Fatal("truncated digest list decoded without error")
	}
}

func TestDigestConverged(t *testing.T) {
	a := ModelDigest{Model: 1, Present: true, Seq: 2, MetaHash: 3, RefHash: 4, SegHash: 5, LiveRefs: 6}
	if !a.Converged(a) {
		t.Fatal("digest does not converge with itself")
	}
	b := a
	b.RefHash++
	if a.Converged(b) {
		t.Fatal("differing RefHash reported converged")
	}
	// Fully drained replicas agree regardless of tombstone bookkeeping.
	dead := ModelDigest{Model: 1, Retired: true, Seq: 2}
	gone := ModelDigest{Model: 1}
	if !dead.Converged(gone) || !gone.Converged(dead) {
		t.Fatal("drained replicas with differing tombstones reported diverged")
	}
	// ... but a tombstone difference matters while refs are live.
	live := ModelDigest{Model: 1, LiveRefs: 1, RefHash: 9}
	deadLive := live
	deadLive.Retired = true
	if live.Converged(deadLive) {
		t.Fatal("tombstone difference with live refs reported converged")
	}
}

func TestHashWordsOrderSensitive(t *testing.T) {
	if HashWords(HashSeed, 1, 2) == HashWords(HashSeed, 2, 1) {
		t.Fatal("HashWords is order-insensitive")
	}
	if HashWords(HashSeed, 1, 2) != HashWords(HashWords(HashSeed, 1), 2) {
		t.Fatal("HashWords is not incremental")
	}
	// Matches FNV-1a over the equivalent little-endian bytes.
	if HashWords(HashSeed, 0x0102030405060708) != HashBytes(HashSeed, []byte{8, 7, 6, 5, 4, 3, 2, 1}) {
		t.Fatal("HashWords disagrees with HashBytes on little-endian layout")
	}
}

func TestRepairPullRoundTrip(t *testing.T) {
	req := &RepairPullReq{Model: 42, WithPayloads: true, Vertices: []graph.VertexID{1, 3}}
	gotReq, err := DecodeRepairPullReq(req.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotReq, req) {
		t.Fatalf("req round trip: got %+v want %+v", gotReq, req)
	}

	resp := &RepairPullResp{
		Digest:  ModelDigest{Model: 42, Present: true, Seq: 1, MetaHash: 5, RefHash: 6, SegHash: 7, LiveRefs: 2, Journal: 3},
		Meta:    []byte("meta-bytes"),
		Counts:  []RefCount{{Vertex: 0, Count: 1}, {Vertex: 3, Count: 4}},
		Journal: []RefDelta{{ReqID: 9, Vertices: []graph.VertexID{0, 3}}, {ReqID: 10, Neg: true, Vertices: []graph.VertexID{3}}},
		Segments: []SegmentRef{
			{Vertex: 0, Length: 8},
			{Vertex: 3, Length: 16},
		},
	}
	gotResp, err := DecodeRepairPullResp(resp.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotResp, resp) {
		t.Fatalf("resp round trip:\n got %+v\nwant %+v", gotResp, resp)
	}
	if _, err := DecodeRepairPullResp(resp.Encode()[:digestWireLen+2]); err == nil {
		t.Fatal("truncated pull resp decoded without error")
	}
}

func TestRepairApplyRoundTrip(t *testing.T) {
	req := &RepairApplyReq{
		Model:           11,
		Tombstone:       true,
		TombstoneSeq:    4,
		Meta:            []byte("m"),
		Deltas:          []RefDelta{{ReqID: 1, Vertices: []graph.VertexID{2}}},
		ReplaceJournal:  true,
		JournalAppended: 17,
		SetCounts:       []RefCount{{Vertex: 2, Count: 3}},
		Segments:        []SegmentRef{{Vertex: 2, Length: 5}},
	}
	gotReq, err := DecodeRepairApplyReq(req.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotReq, req) {
		t.Fatalf("req round trip:\n got %+v\nwant %+v", gotReq, req)
	}

	resp := &RepairApplyResp{
		Digest:      ModelDigest{Model: 11, Retired: true, Seq: 4},
		NeedPayload: []graph.VertexID{2, 5},
	}
	gotResp, err := DecodeRepairApplyResp(resp.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotResp, resp) {
		t.Fatalf("resp round trip: got %+v want %+v", gotResp, resp)
	}
}

func TestRepairDeltaRejectsTornVertexList(t *testing.T) {
	w := wire.NewWriter(32)
	appendDeltas(w, []RefDelta{{ReqID: 1, Vertices: []graph.VertexID{1, 2, 3}}})
	b := w.Bytes()
	r := wire.NewReader(b[:len(b)-2])
	if _, err := readDeltas(r); err == nil && r.Err() == nil {
		t.Fatal("torn delta decoded without error")
	}
}

func TestRepairRPCClassification(t *testing.T) {
	for _, name := range []string{RPCRepairList, RPCDigest, RPCRepairPull} {
		if !Idempotent(name) || !Retryable(name) {
			t.Errorf("%s should be idempotent and retryable", name)
		}
	}
	if Idempotent(RPCRepairApply) {
		t.Error("repair_apply must not be idempotent")
	}
	if !Retryable(RPCRepairApply) {
		t.Error("repair_apply must be retryable")
	}
}
