package proto

// Segment-encoding envelope. A stored segment is either raw tensor bytes
// (the pre-dedup format, still the common case) or an *envelope*: a small
// self-describing header followed by an encoded payload. Three encodings
// exist, selected by flag bits that may combine:
//
//   - SegDelta: the payload is an XOR/varint delta (internal/dedup)
//     against the logical bytes of another stored segment, named by
//     (BaseOwner, BaseVertex). Depth records how many delta hops separate
//     this segment from a raw base, so writers can bound chains (rebase
//     to raw at depth K) and readers can spot corrupted chains.
//   - SegFlate: the payload is DEFLATE-compressed; applied after the
//     delta step on encode, so decode inflates first, then applies the
//     delta.
//
// The envelope is part of the *stored* representation, not a wire
// trailer: providers persist and ship it verbatim (ReadSegments, repair
// pulls, rebalance migration), which is what keeps replicas bit-identical
// across every data path without teaching each one about encodings.
// Decoding happens at the reader: the client resolves delta chains by
// fetching bases from their owners' providers (see internal/client).
//
// A raw segment is distinguished from an envelope by a 6-byte magic whose
// first byte (0xF5) cannot begin a plausible tensor set: a tensor segment
// opens with a little-endian u16 name length, so a raw collision would
// require a tensor name of 245+256k bytes — rejected long before here by
// the codec's sanity checks. Empty segments are always raw.

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/ownermap"
	"repro/internal/wire"
)

// Segment-encoding flags (SegEnvelope.Flags). SegRaw is the absence of an
// envelope; enveloped segments carry at least one flag bit.
const (
	// SegRaw marks plain tensor bytes (never stored in an envelope; the
	// constant exists for negotiation and reporting).
	SegRaw uint8 = 0
	// SegDelta marks an XOR/varint delta against (BaseOwner, BaseVertex).
	SegDelta uint8 = 1 << 0
	// SegFlate marks a DEFLATE-compressed payload.
	SegFlate uint8 = 1 << 1
)

// segEnvMagic prefixes every enveloped segment. 6 bytes: 0xF5 guards
// against raw tensor bytes (see package comment), the rest spells the
// format, and the trailing 0x01 is the envelope version.
var segEnvMagic = []byte{0xf5, 'E', 'v', 'S', 'g', 0x01}

// segEnvHeaderLen is the fixed envelope header size: magic, flags, depth,
// raw length, base owner, base vertex.
const segEnvHeaderLen = 6 + 1 + 1 + 4 + 8 + 4

// SegEnvelope describes one encoded stored segment.
type SegEnvelope struct {
	// Flags is a combination of SegDelta / SegFlate (never zero).
	Flags uint8
	// Depth is the delta-chain length: 1 for a delta against a raw base,
	// 2 for a delta whose base is itself depth-1, and so on. 0 when
	// SegDelta is unset.
	Depth uint8
	// RawLen is the logical (fully resolved) segment length. Digests hash
	// this, not the stored length, so replicas holding different
	// encodings of the same logical bytes stay converged.
	RawLen uint32
	// BaseOwner / BaseVertex name the delta base segment (meaningful only
	// with SegDelta): the logical bytes of that stored segment are the
	// XOR base.
	BaseOwner  ownermap.ModelID
	BaseVertex graph.VertexID
	// Payload is the encoded bytes (delta and/or compressed).
	Payload []byte
}

// Encode serializes the envelope into its stored representation.
func (e *SegEnvelope) Encode() []byte {
	out := make([]byte, 0, segEnvHeaderLen+len(e.Payload))
	out = append(out, segEnvMagic...)
	out = append(out, e.Flags, e.Depth)
	out = appendU32(out, e.RawLen)
	out = appendU64(out, uint64(e.BaseOwner))
	out = appendU32(out, uint32(e.BaseVertex))
	out = append(out, e.Payload...)
	return out
}

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(b []byte, v uint64) []byte {
	b = appendU32(b, uint32(v))
	return appendU32(b, uint32(v>>32))
}

// IsSegEnvelope reports whether stored bytes carry the envelope magic.
func IsSegEnvelope(b []byte) bool {
	if len(b) < len(segEnvMagic) {
		return false
	}
	for i, c := range segEnvMagic {
		if b[i] != c {
			return false
		}
	}
	return true
}

// ParseSegEnvelope decodes a stored segment's envelope. ok is false for a
// raw (un-enveloped) segment; a torn envelope — magic present but header
// or flags malformed — is an error, never silently treated as raw.
func ParseSegEnvelope(b []byte) (*SegEnvelope, bool, error) {
	if !IsSegEnvelope(b) {
		return nil, false, nil
	}
	if len(b) < segEnvHeaderLen {
		return nil, false, fmt.Errorf("proto: torn segment envelope (%d bytes)", len(b))
	}
	r := wire.NewReader(b[len(segEnvMagic):])
	e := &SegEnvelope{
		Flags:  r.U8(),
		Depth:  r.U8(),
		RawLen: r.U32(),
	}
	e.BaseOwner = ownermap.ModelID(r.U64())
	e.BaseVertex = graph.VertexID(r.U32())
	if err := r.Err(); err != nil {
		return nil, false, err
	}
	e.Payload = b[segEnvHeaderLen:]
	if e.Flags == SegRaw || e.Flags&^(SegDelta|SegFlate) != 0 {
		return nil, false, fmt.Errorf("proto: segment envelope with invalid flags %#x", e.Flags)
	}
	if e.Flags&SegDelta == 0 && e.Depth != 0 {
		return nil, false, fmt.Errorf("proto: non-delta segment envelope with depth %d", e.Depth)
	}
	return e, true, nil
}

// SegLogicalLen returns the logical (resolved) length of a stored
// segment: the envelope's RawLen when enveloped, the stored length
// otherwise. Digests fold this so replicas storing different encodings of
// the same logical bytes hash identically; a torn envelope falls back to
// the stored length, which at worst flags the replica divergent — the
// safe direction.
func SegLogicalLen(b []byte) uint64 {
	if e, ok, err := ParseSegEnvelope(b); err == nil && ok {
		return uint64(e.RawLen)
	}
	return uint64(len(b))
}

// --- freed delta bases (DecRef response trailer) -----------------------------

// SegBase names one delta base segment: (owner, vertex).
type SegBase struct {
	Owner  ownermap.ModelID
	Vertex graph.VertexID
}

// EncodeFreedResp encodes a DecRef response: the freed-segment count in
// the legacy leading 8 bytes (so old clients' DecodeU64 keeps working),
// followed by an optional trailer listing the delta bases of the freed
// segments — the references the caller must now decrement on the bases'
// own providers, or a retired ancestor's chain would strand them. The
// trailer is omitted when empty, keeping the legacy encoding canonical.
func EncodeFreedResp(freed uint64, bases []SegBase) []byte {
	w := wire.NewWriter(12 + 12*len(bases))
	w.U64(freed)
	if len(bases) > 0 {
		w.U32(uint32(len(bases)))
		for _, b := range bases {
			w.U64(uint64(b.Owner))
			w.U32(uint32(b.Vertex))
		}
	}
	return w.Bytes()
}

// DecodeFreedResp parses a DecRef response, tolerating the legacy 8-byte
// count-only encoding but rejecting a torn trailer.
func DecodeFreedResp(b []byte) (uint64, []SegBase, error) {
	r := wire.NewReader(b)
	freed := r.U64()
	if r.Err() != nil {
		return 0, nil, r.Err()
	}
	if r.Remaining() == 0 {
		return freed, nil, nil
	}
	n := int(r.U32())
	if r.Err() != nil || n > r.Remaining()/12+1 {
		return 0, nil, wire.ErrTruncated
	}
	bases := make([]SegBase, n)
	for i := range bases {
		bases[i].Owner = ownermap.ModelID(r.U64())
		bases[i].Vertex = graph.VertexID(r.U32())
	}
	if err := r.Err(); err != nil {
		return 0, nil, err
	}
	return freed, bases, nil
}
