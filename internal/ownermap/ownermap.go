// Package ownermap implements EvoStore's lightweight lineage metadata.
//
// An owner map assigns every leaf-layer vertex of a model to its owner: the
// most recent ancestor in the transfer-learning lineage that modified the
// vertex's tensors. A model created from scratch owns all of its vertices.
// A derived model inherits its ancestor's owner map and overwrites the
// entries of the vertices it modified with itself.
//
// Reading a model therefore consults exactly one owner map regardless of
// lineage depth, and the map doubles as provenance: the set of distinct
// owners is exactly the set of ancestors that contributed tensors, and the
// owners' global sequence numbers order the chain of transfer-learning
// operations that produced the model.
//
// Each entry is 16 bytes (64-bit owner ID + 64-bit sequence number),
// matching the paper's "128 bits per leaf layer".
package ownermap

import (
	"encoding/binary"
	"fmt"
	"io"
	"slices"

	"repro/internal/graph"
)

// ModelID identifies a model in the repository.
type ModelID uint64

// Entry records ownership of one vertex.
type Entry struct {
	// Owner is the model that most recently modified this vertex's tensors.
	Owner ModelID
	// Seq is the owner's global sequence number: a repository-wide
	// monotonically increasing stamp assigned when the owner was stored.
	// It provides the global ordering of owners the paper uses for
	// provenance (§4.1, "Owner Maps as a Foundation for Provenance").
	Seq uint64
}

// Map is the owner map of one model: Entries[v] covers vertex v of the
// model's compact architecture graph.
type Map struct {
	Entries []Entry
}

// New returns an owner map for a from-scratch model: every one of n
// vertices is owned by the model itself.
func New(self ModelID, seq uint64, n int) *Map {
	m := &Map{Entries: make([]Entry, n)}
	for i := range m.Entries {
		m.Entries[i] = Entry{Owner: self, Seq: seq}
	}
	return m
}

// Derive builds the owner map of a derived model: the ancestor's map is
// inherited on the vertices listed in inherited (which must be the longest
// common prefix), and the derived model owns everything else. The derived
// model's graph has n vertices; prefix vertices beyond the ancestor map's
// range are rejected.
func Derive(ancestor *Map, self ModelID, seq uint64, n int, inherited []graph.VertexID) (*Map, error) {
	m := &Map{Entries: make([]Entry, n)}
	for i := range m.Entries {
		m.Entries[i] = Entry{Owner: self, Seq: seq}
	}
	for _, v := range inherited {
		if int(v) >= n {
			return nil, fmt.Errorf("ownermap: inherited vertex %d outside derived graph of %d vertices", v, n)
		}
		if int(v) >= len(ancestor.Entries) {
			return nil, fmt.Errorf("ownermap: inherited vertex %d outside ancestor map of %d entries", v, len(ancestor.Entries))
		}
		m.Entries[v] = ancestor.Entries[v]
	}
	return m, nil
}

// Len returns the number of vertices covered.
func (m *Map) Len() int { return len(m.Entries) }

// OwnerOf returns the owner of vertex v.
func (m *Map) OwnerOf(v graph.VertexID) (Entry, error) {
	if int(v) >= len(m.Entries) {
		return Entry{}, fmt.Errorf("ownermap: vertex %d out of range (%d entries)", v, len(m.Entries))
	}
	return m.Entries[v], nil
}

// MarkOwned sets the derived model as the owner of additional vertices
// (used when training modifies vertices after the initial Derive).
func (m *Map) MarkOwned(self ModelID, seq uint64, vs ...graph.VertexID) {
	for _, v := range vs {
		m.Entries[v] = Entry{Owner: self, Seq: seq}
	}
}

// OwnedBy returns the vertices owned by the given model, ascending.
func (m *Map) OwnedBy(id ModelID) []graph.VertexID {
	var out []graph.VertexID
	for v, e := range m.Entries {
		if e.Owner == id {
			out = append(out, graph.VertexID(v))
		}
	}
	return out
}

// Owners returns the distinct owners referenced by the map together with
// the vertices each owns. This is the provenance primitive: the owners are
// exactly the ancestors that contributed tensors to the model.
func (m *Map) Owners() []OwnerGroup {
	// The distinct-owner count is the lineage depth — small in practice —
	// so a linear scan beats a map, and carving every Vertices list out of
	// one shared backing array keeps this metadata-read-path helper at a
	// constant handful of allocations (see BENCH_bulk.json).
	out := make([]OwnerGroup, 0, 4)
	find := func(owner ModelID) int {
		for i := range out {
			if out[i].Owner == owner {
				return i
			}
		}
		return -1
	}
	for _, e := range m.Entries {
		if find(e.Owner) < 0 {
			out = append(out, OwnerGroup{Owner: e.Owner, Seq: e.Seq})
		}
	}
	counts := make([]int, len(out))
	for _, e := range m.Entries {
		counts[find(e.Owner)]++
	}
	backing := make([]graph.VertexID, len(m.Entries))
	off := 0
	for i := range out {
		out[i].Vertices = backing[off:off : off+counts[i]]
		off += counts[i]
	}
	for v, e := range m.Entries {
		i := find(e.Owner)
		out[i].Vertices = append(out[i].Vertices, graph.VertexID(v))
	}
	// Ascending sequence number = oldest ancestor first: the chain of
	// transfer-learning operations in the order they happened.
	slices.SortFunc(out, func(a, b OwnerGroup) int {
		switch {
		case a.Seq < b.Seq:
			return -1
		case a.Seq > b.Seq:
			return 1
		default:
			return 0
		}
	})
	return out
}

// OwnerGroup is one distinct owner and the vertices it owns in the map.
type OwnerGroup struct {
	Owner    ModelID
	Seq      uint64
	Vertices []graph.VertexID
}

// Lineage returns the distinct owner model IDs ordered oldest→newest. For a
// model derived through a chain of transfer-learning operations this is the
// contributing-ancestor chain ending in the model itself.
func (m *Map) Lineage() []ModelID {
	groups := m.Owners()
	out := make([]ModelID, len(groups))
	for i, g := range groups {
		out[i] = g.Owner
	}
	return out
}

// InheritedFraction returns the fraction of vertices not owned by self —
// the share of the model that was transferred rather than retrained.
func (m *Map) InheritedFraction(self ModelID) float64 {
	if len(m.Entries) == 0 {
		return 0
	}
	inherited := 0
	for _, e := range m.Entries {
		if e.Owner != self {
			inherited++
		}
	}
	return float64(inherited) / float64(len(m.Entries))
}

// Clone deep-copies the map.
func (m *Map) Clone() *Map {
	return &Map{Entries: append([]Entry(nil), m.Entries...)}
}

// Equal reports whether two maps are identical.
func (m *Map) Equal(o *Map) bool {
	if len(m.Entries) != len(o.Entries) {
		return false
	}
	for i := range m.Entries {
		if m.Entries[i] != o.Entries[i] {
			return false
		}
	}
	return true
}

// SizeBytes returns the serialized size: 16 bytes per leaf layer plus an
// 8-byte header.
func (m *Map) SizeBytes() int { return 8 + 16*len(m.Entries) }

// AppendEncode appends the binary encoding to dst.
func (m *Map) AppendEncode(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, uint64(len(m.Entries)))
	for _, e := range m.Entries {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(e.Owner))
		dst = binary.LittleEndian.AppendUint64(dst, e.Seq)
	}
	return dst
}

// Encode returns the binary encoding of the map.
func (m *Map) Encode() []byte { return m.AppendEncode(make([]byte, 0, m.SizeBytes())) }

// Decode parses an encoded owner map, returning it and the bytes consumed.
func Decode(b []byte) (*Map, int, error) {
	if len(b) < 8 {
		return nil, 0, io.ErrUnexpectedEOF
	}
	n := binary.LittleEndian.Uint64(b)
	if n > uint64(len(b)-8)/16 {
		return nil, 0, io.ErrUnexpectedEOF
	}
	m := &Map{Entries: make([]Entry, n)}
	off := 8
	for i := range m.Entries {
		m.Entries[i].Owner = ModelID(binary.LittleEndian.Uint64(b[off:]))
		m.Entries[i].Seq = binary.LittleEndian.Uint64(b[off+8:])
		off += 16
	}
	return m, off, nil
}

// MostRecentCommonOwner returns the owner with the highest sequence number
// that appears in both maps, answering the paper's "most recent common
// ancestor of a DL model pair" query. ok is false when the maps share no
// owner.
func MostRecentCommonOwner(a, b *Map) (Entry, bool) {
	inA := make(map[ModelID]uint64, len(a.Entries))
	for _, e := range a.Entries {
		inA[e.Owner] = e.Seq
	}
	var best Entry
	ok := false
	for _, e := range b.Entries {
		if _, shared := inA[e.Owner]; shared {
			if !ok || e.Seq > best.Seq {
				best = e
				ok = true
			}
		}
	}
	return best, ok
}
