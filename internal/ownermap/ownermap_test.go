package ownermap

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestNewOwnsEverything(t *testing.T) {
	m := New(7, 100, 5)
	if m.Len() != 5 {
		t.Fatalf("Len = %d", m.Len())
	}
	for v := 0; v < 5; v++ {
		e, err := m.OwnerOf(graph.VertexID(v))
		if err != nil || e.Owner != 7 || e.Seq != 100 {
			t.Errorf("vertex %d: %+v, %v", v, e, err)
		}
	}
	if got := m.InheritedFraction(7); got != 0 {
		t.Errorf("InheritedFraction = %v, want 0", got)
	}
}

// TestFigure2OwnerMaps replays the paper's Figure 2 walkthrough:
// grandparent owns {1,2,3} in the parent; parent owns {4,5} in the child.
func TestFigure2OwnerMaps(t *testing.T) {
	// Grandparent: 5 leaf layers, stored from scratch.
	gp := New(1, 10, 5)
	// Parent: 7 leaf layers, LCP with grandparent = {0,1,2}.
	par, err := Derive(gp, 2, 20, 7, []graph.VertexID{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Child: 7 leaf layers, LCP with parent = {0,1,2,3,4}.
	child, err := Derive(par, 3, 30, 7, []graph.VertexID{0, 1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}

	// The child must mark {0,1,2} grandparent, {3,4} parent, rest itself.
	wantOwners := []ModelID{1, 1, 1, 2, 2, 3, 3}
	for v, want := range wantOwners {
		e, _ := child.OwnerOf(graph.VertexID(v))
		if e.Owner != want {
			t.Errorf("child vertex %d owner = %d, want %d", v, e.Owner, want)
		}
	}
	if got := child.Lineage(); len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("Lineage = %v, want [1 2 3]", got)
	}
	if f := child.InheritedFraction(3); f != 5.0/7.0 {
		t.Errorf("InheritedFraction = %v", f)
	}
	owned := child.OwnedBy(2)
	if len(owned) != 2 || owned[0] != 3 || owned[1] != 4 {
		t.Errorf("OwnedBy(parent) = %v", owned)
	}
}

func TestDeriveRangeChecks(t *testing.T) {
	anc := New(1, 1, 3)
	if _, err := Derive(anc, 2, 2, 3, []graph.VertexID{5}); err == nil {
		t.Error("Derive accepted prefix vertex outside derived graph")
	}
	if _, err := Derive(anc, 2, 2, 10, []graph.VertexID{4}); err == nil {
		t.Error("Derive accepted prefix vertex outside ancestor map")
	}
}

func TestOwnerOfOutOfRange(t *testing.T) {
	m := New(1, 1, 2)
	if _, err := m.OwnerOf(9); err == nil {
		t.Error("OwnerOf accepted out-of-range vertex")
	}
}

func TestMarkOwned(t *testing.T) {
	anc := New(1, 1, 4)
	m, _ := Derive(anc, 2, 2, 4, []graph.VertexID{0, 1, 2, 3})
	m.MarkOwned(2, 2, 1, 3)
	if e, _ := m.OwnerOf(1); e.Owner != 2 {
		t.Error("MarkOwned did not take effect")
	}
	if e, _ := m.OwnerOf(0); e.Owner != 1 {
		t.Error("MarkOwned touched wrong vertex")
	}
}

func TestOwnersGroupsSortedBySeq(t *testing.T) {
	gp := New(1, 10, 4)
	par, _ := Derive(gp, 2, 20, 4, []graph.VertexID{0, 1})
	groups := par.Owners()
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(groups))
	}
	if groups[0].Owner != 1 || groups[1].Owner != 2 {
		t.Errorf("groups out of order: %+v", groups)
	}
	if len(groups[0].Vertices) != 2 || len(groups[1].Vertices) != 2 {
		t.Errorf("group vertex counts wrong: %+v", groups)
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	gp := New(11, 5, 6)
	m, _ := Derive(gp, 12, 6, 6, []graph.VertexID{0, 1, 2})
	enc := m.Encode()
	if len(enc) != m.SizeBytes() {
		t.Fatalf("encoded %d bytes, SizeBytes says %d", len(enc), m.SizeBytes())
	}
	back, n, err := Decode(enc)
	if err != nil || n != len(enc) {
		t.Fatalf("Decode: %v (n=%d)", err, n)
	}
	if !m.Equal(back) {
		t.Error("roundtrip mismatch")
	}
}

func TestDecodeTruncated(t *testing.T) {
	enc := New(1, 1, 3).Encode()
	for cut := 0; cut < len(enc); cut += 5 {
		if _, _, err := Decode(enc[:cut]); err == nil {
			t.Fatalf("Decode accepted truncation at %d", cut)
		}
	}
}

func TestDecodeHugeCountRejected(t *testing.T) {
	b := make([]byte, 8)
	b[0] = 0xff
	b[7] = 0xff // absurd count with no payload
	if _, _, err := Decode(b); err == nil {
		t.Error("Decode accepted bogus entry count")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := New(1, 1, 3)
	c := m.Clone()
	c.MarkOwned(9, 9, 0)
	if e, _ := m.OwnerOf(0); e.Owner == 9 {
		t.Error("Clone shares entries")
	}
}

func TestMostRecentCommonOwner(t *testing.T) {
	gp := New(1, 10, 6)
	par, _ := Derive(gp, 2, 20, 6, []graph.VertexID{0, 1, 2, 3})
	// Two siblings derived from the parent; both inherit vertex 4, which
	// the parent owns, so the parent is a surviving contributor to both.
	sibA, _ := Derive(par, 3, 30, 6, []graph.VertexID{0, 1, 2, 3, 4})
	sibB, _ := Derive(par, 4, 40, 6, []graph.VertexID{0, 1, 2, 4})

	e, ok := MostRecentCommonOwner(sibA, sibB)
	if !ok || e.Owner != 2 {
		t.Errorf("MRCA(sibA, sibB) = %+v ok=%v, want owner 2", e, ok)
	}

	// If a sibling inherits nothing the parent owns, the owner-map MRCA
	// falls back to the grandparent (only surviving contributions count).
	sibC, _ := Derive(par, 5, 50, 6, []graph.VertexID{0, 1, 2})
	e, ok = MostRecentCommonOwner(sibA, sibC)
	if !ok || e.Owner != 1 {
		t.Errorf("MRCA(sibA, sibC) = %+v ok=%v, want owner 1", e, ok)
	}

	// Unrelated maps share no owner.
	other := New(99, 50, 4)
	if _, ok := MostRecentCommonOwner(sibA, other); ok {
		t.Error("MRCA found for unrelated models")
	}
}

func TestMRCADeepChains(t *testing.T) {
	// root → a → b; root → c. MRCA(b, c) must be root, not a.
	root := New(1, 1, 4)
	a, _ := Derive(root, 2, 2, 4, []graph.VertexID{0, 1, 2})
	b, _ := Derive(a, 3, 3, 4, []graph.VertexID{0, 1, 2, 3})
	c, _ := Derive(root, 4, 4, 4, []graph.VertexID{0, 1})
	e, ok := MostRecentCommonOwner(b, c)
	if !ok || e.Owner != 1 {
		t.Errorf("MRCA = %+v ok=%v, want owner 1", e, ok)
	}
}

// Property: Derive preserves the invariant that every entry is either the
// ancestor's entry (on the prefix) or (self, seq) elsewhere; roundtrip
// through the codec preserves equality.
func TestQuickDeriveAndCodec(t *testing.T) {
	f := func(n uint8, prefixLen uint8, selfID, seq uint64) bool {
		size := 1 + int(n%64)
		anc := New(ModelID(selfID^0xabc), seq/2, size)
		pl := int(prefixLen) % (size + 1)
		prefix := make([]graph.VertexID, pl)
		for i := range prefix {
			prefix[i] = graph.VertexID(i)
		}
		m, err := Derive(anc, ModelID(selfID), seq, size, prefix)
		if err != nil {
			return false
		}
		for v := 0; v < size; v++ {
			e := m.Entries[v]
			if v < pl {
				if e != anc.Entries[v] {
					return false
				}
			} else if e.Owner != ModelID(selfID) || e.Seq != seq {
				return false
			}
		}
		back, used, err := Decode(m.Encode())
		return err == nil && used == m.SizeBytes() && m.Equal(back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDerive100(b *testing.B) {
	anc := New(1, 1, 100)
	prefix := make([]graph.VertexID, 50)
	for i := range prefix {
		prefix[i] = graph.VertexID(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Derive(anc, 2, 2, 100, prefix); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeDecode(b *testing.B) {
	m := New(1, 1, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc := m.Encode()
		if _, _, err := Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}
