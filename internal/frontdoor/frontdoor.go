// Package frontdoor is the multi-tenant admission layer in front of the
// EvoStore data path. It supplies the three mechanisms that keep a
// model-hub access pattern — many clients pulling the same hot lineages —
// from melting a provider:
//
//   - Singleflight coalescing (Group): concurrent identical reads collapse
//     into one execution whose result every waiter shares. The client uses
//     it to issue one provider round trip per hot owner-group; the provider
//     uses it to execute one KV read for duplicate requests arriving from
//     distinct clients.
//   - Token-bucket throttling (Bucket, Throttler): per-tenant ops/s and
//     bytes/s admission buckets following kopia's blob/throttling shape —
//     capacity is rate × a sliding window (default 60s) and a fresh bucket
//     starts at a fractional fill so a cold tenant cannot burst a full
//     window's budget at once. Rejections carry a retry-after hint in a
//     ThrottledError that survives the RPC layer's text-only remote errors
//     (RetryAfterFromError), so the resilience middleware can pace retries
//     without tripping its circuit breaker: a throttled provider is
//     healthy, just busy.
//   - Client-side self-throttle (Waiter): the cooperative half of the same
//     contract — a client that knows its budget sleeps locally instead of
//     burning provider admission checks.
//
// The package depends only on the standard library so every layer (rpc,
// resilient, client, provider) can import it without cycles.
package frontdoor

import (
	"context"
	"errors"
	"strings"
	"sync"
	"time"
)

// Window is the default token-bucket accounting window: bucket capacity is
// rate × Window seconds. A long window lets legitimate bursts (one model's
// segments arriving back to back) through while still capping the
// sustained rate; the value follows kopia's throttlingWindow.
const Window = 60 * time.Second

// InitialFill is the fraction of capacity a fresh bucket starts with, so a
// brand-new (or long-idle, freshly pruned) tenant gets a useful burst but
// not a whole window's budget in one shot. Follows kopia's
// throttleBucketInitialFill.
const InitialFill = 0.1

// --- token bucket --------------------------------------------------------------

// Bucket is a token bucket: capacity rate×window tokens, refilled
// continuously at rate tokens/second. Not safe for concurrent use; the
// Throttler and Waiter wrap it with their own locks.
type Bucket struct {
	rate float64 // tokens per second
	cap  float64 // rate * window seconds
	fill float64 // current tokens; may go negative (debt) via Force
	last time.Time
}

// NewBucket builds a bucket admitting rate tokens/second over window
// (<= 0 selects Window). rate <= 0 returns nil: an absent bucket admits
// everything.
func NewBucket(rate float64, window time.Duration) *Bucket {
	if rate <= 0 {
		return nil
	}
	if window <= 0 {
		window = Window
	}
	c := rate * window.Seconds()
	f := c * InitialFill
	// A fresh bucket always affords one op: without the floor, a small
	// rate × window product would refuse a brand-new tenant's first
	// request, which reads as an outage rather than pacing.
	if f < 1 {
		f = 1
		if f > c {
			f = c
		}
	}
	return &Bucket{rate: rate, cap: c, fill: f}
}

// advance refills for the time elapsed since the last event, capped at
// capacity.
func (b *Bucket) advance(now time.Time) {
	if !b.last.IsZero() {
		if dt := now.Sub(b.last).Seconds(); dt > 0 {
			b.fill += dt * b.rate
			if b.fill > b.cap {
				b.fill = b.cap
			}
		}
	}
	b.last = now
}

// Take tries to take n tokens at time now. On success it returns (0,
// true). On refusal it returns how long the caller should wait before the
// tokens will be available. A request larger than the whole capacity is
// admitted once the bucket is full and pushes the fill negative, so a
// single oversized op cannot be starved forever yet still pays its cost
// against future admissions.
func (b *Bucket) Take(now time.Time, n float64) (time.Duration, bool) {
	if b == nil || n <= 0 {
		return 0, true
	}
	b.advance(now)
	need := n
	if need > b.cap {
		need = b.cap
	}
	if b.fill >= need {
		b.fill -= n
		return 0, true
	}
	d := time.Duration((need - b.fill) / b.rate * float64(time.Second))
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d, false
}

// refund returns tokens a refused admission attempt took, capped at
// capacity. A refused request performs no work, so it must not consume
// budget: without the refund, a client retrying against one exhausted
// dimension silently drains the other, turning a bytes-debt pause into an
// ops outage.
func (b *Bucket) refund(n float64) {
	if b == nil || n <= 0 {
		return
	}
	b.fill += n
	if b.fill > b.cap {
		b.fill = b.cap
	}
}

// Force takes n tokens unconditionally, letting the fill go negative. Used
// to charge costs only known after the fact (response bytes): the op
// already happened, so the debt is settled by throttling what follows.
// Debt is clamped at one full window (-cap): the tenant pays for at most
// one window of history, so a single huge response delays it by a bounded
// interval instead of forever, and the clamp is what keeps a later Resize
// from carrying an unbounded debt into a smaller bucket.
func (b *Bucket) Force(now time.Time, n float64) {
	if b == nil || n <= 0 {
		return
	}
	b.advance(now)
	b.fill -= n
	if b.fill < -b.cap {
		b.fill = -b.cap
	}
}

// Resize re-rates the bucket at time now, preserving the accumulated fill
// — debt included — clamped to the new capacity bounds [-cap, cap]. It
// returns the bucket to use afterwards: nil when rate disables the
// dimension, a fresh bucket when b was nil. Preserving fill across a
// limit change is the point: replacing the bucket wholesale would forgive
// every tenant's outstanding byte debt (rewarding whoever was deepest in
// the red) or, worse, carry a debt larger than the new capacity that the
// shrunken refill rate takes near-forever to pay off.
func (b *Bucket) Resize(now time.Time, rate float64, window time.Duration) *Bucket {
	if rate <= 0 {
		return nil
	}
	nb := NewBucket(rate, window)
	if b == nil {
		return nb
	}
	b.advance(now)
	f := b.fill
	if f > nb.cap {
		f = nb.cap
	}
	if f < -nb.cap {
		f = -nb.cap
	}
	nb.fill = f
	nb.last = now
	return nb
}

// --- per-tenant throttler ------------------------------------------------------

// Limits configures a Throttler: per-tenant sustained rates. Zero rates
// leave that dimension unthrottled.
type Limits struct {
	OpsPerSec   float64       // read operations per second per tenant
	BytesPerSec float64       // response payload bytes per second per tenant
	Window      time.Duration // accounting window; 0 selects Window (60s)
}

// enabled reports whether any dimension is limited.
func (l Limits) enabled() bool { return l.OpsPerSec > 0 || l.BytesPerSec > 0 }

// maxTenants bounds the per-tenant bucket map; beyond it, buckets idle for
// more than a window are pruned. Protects the provider from a tenant-ID
// cardinality attack without an eviction policy worth tuning.
const maxTenants = 4096

type tenantBuckets struct {
	ops   *Bucket
	bytes *Bucket
	seen  time.Time
}

// Throttler applies per-tenant admission Limits. Safe for concurrent use.
// The zero tenant ID ("") is a tenant like any other, so anonymous clients
// share one budget instead of escaping throttling.
type Throttler struct {
	limits Limits
	now    func() time.Time

	mu      sync.Mutex
	tenants map[string]*tenantBuckets
}

// NewThrottler builds a throttler; nil when no dimension is limited, and a
// nil *Throttler admits everything, so callers can hold one pointer and
// skip the feature test.
func NewThrottler(l Limits) *Throttler {
	if !l.enabled() {
		return nil
	}
	return &Throttler{limits: l, now: time.Now, tenants: make(map[string]*tenantBuckets)}
}

// SetClock injects a time source (tests).
func (t *Throttler) SetClock(now func() time.Time) {
	if t != nil && now != nil {
		t.now = now
	}
}

func (t *Throttler) bucketsFor(tenant string, now time.Time) *tenantBuckets {
	tb := t.tenants[tenant]
	if tb == nil {
		if len(t.tenants) >= maxTenants {
			w := t.limits.Window
			if w <= 0 {
				w = Window
			}
			for id, old := range t.tenants {
				if now.Sub(old.seen) > w {
					delete(t.tenants, id)
				}
			}
		}
		tb = &tenantBuckets{
			ops:   NewBucket(t.limits.OpsPerSec, t.limits.Window),
			bytes: NewBucket(t.limits.BytesPerSec, t.limits.Window),
		}
		t.tenants[tenant] = tb
	}
	tb.seen = now
	return tb
}

// bytesProbe is the token charge Admit and Wait place against the bytes
// bucket up front: near-zero, so it refuses only while the bucket is in
// debt (real byte costs are only known after the response is built and
// are charged by ChargeBytes).
const bytesProbe = 0.0001

// Admit charges one operation against tenant's ops bucket and verifies the
// bytes bucket is out of debt. On refusal it returns a *ThrottledError
// carrying the longer retry-after of the two dimensions, and refunds
// whatever the granted dimension took — a refused request consumes no
// budget, so retries paced by the hint find the ops bucket where they
// left it instead of drained. Response bytes are charged after the fact
// with ChargeBytes, since a read's size is only known once it has been
// served.
func (t *Throttler) Admit(tenant string) error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	tb := t.bucketsFor(tenant, now)
	opsWait, opsOK := tb.ops.Take(now, 1)
	bytesWait, bytesOK := tb.bytes.Take(now, bytesProbe)
	if opsOK && bytesOK {
		return nil
	}
	if opsOK {
		tb.ops.refund(1)
	}
	if bytesOK {
		tb.bytes.refund(bytesProbe)
	}
	wait := opsWait
	if bytesWait > wait {
		wait = bytesWait
	}
	return &ThrottledError{RetryAfter: wait}
}

// SetLimits replaces the throttler's limits in place, resizing every live
// tenant's buckets while preserving their fill and debt (clamped to the
// new capacity — see Bucket.Resize). Returns false when l disables
// throttling entirely; the caller should then drop the throttler (a nil
// *Throttler admits everything).
func (t *Throttler) SetLimits(l Limits) bool {
	if t == nil || !l.enabled() {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	t.limits = l
	for _, tb := range t.tenants {
		tb.ops = tb.ops.Resize(now, l.OpsPerSec, l.Window)
		tb.bytes = tb.bytes.Resize(now, l.BytesPerSec, l.Window)
	}
	return true
}

// ChargeBytes debits n response bytes against tenant's bytes bucket,
// possibly into debt — the next Admit then refuses until the debt refills.
func (t *Throttler) ChargeBytes(tenant string, n int) {
	if t == nil || n <= 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	t.bucketsFor(tenant, now).bytes.Force(now, float64(n))
}

// --- client-side self-throttle -------------------------------------------------

// Waiter is the cooperative client-side half of throttling: it sleeps
// locally until its own budget admits an operation instead of sending a
// request the provider would refuse. Safe for concurrent use.
type Waiter struct {
	mu    sync.Mutex
	ops   *Bucket
	bytes *Bucket
	now   func() time.Time
	// sleep is swappable for tests.
	sleep func(ctx context.Context, d time.Duration) error
}

// NewWaiter builds a self-throttle from l; nil when no dimension is
// limited (a nil *Waiter admits everything immediately).
func NewWaiter(l Limits) *Waiter {
	if !l.enabled() {
		return nil
	}
	return &Waiter{
		ops:   NewBucket(l.OpsPerSec, l.Window),
		bytes: NewBucket(l.BytesPerSec, l.Window),
		now:   time.Now,
		sleep: func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		},
	}
}

// Wait blocks until one operation is admitted (both buckets out of debt)
// or ctx is done. It returns ctx's error on cancellation and the number of
// sleeps it needed (0 = admitted immediately) otherwise.
func (w *Waiter) Wait(ctx context.Context) (int, error) {
	if w == nil {
		return 0, nil
	}
	waits := 0
	for {
		w.mu.Lock()
		now := w.now()
		opsWait, opsOK := w.ops.Take(now, 1)
		bytesWait, bytesOK := w.bytes.Take(now, bytesProbe)
		if opsOK && bytesOK {
			w.mu.Unlock()
			return waits, nil
		}
		// Same refund contract as Throttler.Admit: a sleep iteration that
		// admitted nothing must not burn an op token per lap, or the loop
		// itself lengthens the wait it is sitting out.
		if opsOK {
			w.ops.refund(1)
		}
		if bytesOK {
			w.bytes.refund(bytesProbe)
		}
		w.mu.Unlock()
		d := opsWait
		if bytesWait > d {
			d = bytesWait
		}
		waits++
		if err := w.sleep(ctx, d); err != nil {
			return waits, err
		}
	}
}

// ChargeBytes debits n received bytes, possibly into debt.
func (w *Waiter) ChargeBytes(n int) {
	if w == nil || n <= 0 {
		return
	}
	w.mu.Lock()
	w.bytes.Force(w.now(), float64(n))
	w.mu.Unlock()
}

// --- typed throttle error over a text-only wire --------------------------------

// ErrThrottled is the sentinel every ThrottledError matches with
// errors.Is, for callers that only care about the class.
var ErrThrottled = errors.New("frontdoor: throttled")

// throttledMarker prefixes the retry-after hint in a ThrottledError's
// text. Like placement's wrong-epoch marker, the marker (not the type) is
// what crosses the RPC layer's text-only remote errors, and
// RetryAfterFromError parses it back.
const throttledMarker = "throttled, retry after "

// ThrottledError is an admission refusal carrying how long the caller
// should back off. The resilience middleware treats it as a pacing signal:
// sleep RetryAfter and retry, without counting the refusal against the
// provider's circuit breaker (the provider answered; it is healthy).
type ThrottledError struct{ RetryAfter time.Duration }

// Error renders "frontdoor: throttled, retry after 250ms" — parseable by
// RetryAfterFromError even after crossing the wire as plain text.
func (e *ThrottledError) Error() string {
	return "frontdoor: " + throttledMarker + e.RetryAfter.String()
}

// Is matches ErrThrottled.
func (e *ThrottledError) Is(target error) bool { return target == ErrThrottled }

// RetryAfterFromError extracts the retry-after hint from a throttle
// refusal, whether err is the local typed value or its text-only remote
// form. (false, 0) for anything else, including nil.
func RetryAfterFromError(err error) (time.Duration, bool) {
	if err == nil {
		return 0, false
	}
	var te *ThrottledError
	if errors.As(err, &te) {
		return te.RetryAfter, true
	}
	text := err.Error()
	i := strings.Index(text, throttledMarker)
	if i < 0 {
		return 0, false
	}
	rest := text[i+len(throttledMarker):]
	// The duration runs until the first byte time.ParseDuration rejects;
	// remote errors may append context after it.
	end := len(rest)
	for j := 0; j < len(rest); j++ {
		c := rest[j]
		if (c < '0' || c > '9') && c != '.' && !isUnitByte(c) {
			end = j
			break
		}
	}
	d, perr := time.ParseDuration(rest[:end])
	if perr != nil || d < 0 {
		return 0, false
	}
	return d, true
}

// isUnitByte reports bytes that can appear in a time.Duration unit
// (ns, us, µs, ms, s, m, h — µ is multi-byte UTF-8).
func isUnitByte(c byte) bool {
	switch c {
	case 'n', 'u', 's', 'm', 'h':
		return true
	}
	return c >= 0x80 // UTF-8 continuation/lead bytes of µ
}
