package frontdoor

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestBucketSustainedRate(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBucket(10, time.Second) // 10 tokens, window 1s => cap 10, fill 1
	admitted := 0
	// Walk 10 simulated seconds in 10ms steps, taking greedily.
	for step := 0; step < 1000; step++ {
		now = now.Add(10 * time.Millisecond)
		if _, ok := b.Take(now, 1); ok {
			admitted++
		}
	}
	// Sustained rate must settle at ~10/s over 10s (plus the initial fill).
	if admitted < 95 || admitted > 110 {
		t.Fatalf("admitted %d ops over 10s at 10 ops/s, want ~100", admitted)
	}
}

func TestBucketRetryAfter(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBucket(100, time.Second) // fill starts at 10
	b.Force(now, 60)                 // 50 tokens of debt
	d, ok := b.Take(now, 1)
	if ok {
		t.Fatal("bucket in debt admitted a take")
	}
	// 51 tokens short at 100/s => ~510ms.
	if d < 400*time.Millisecond || d > 700*time.Millisecond {
		t.Fatalf("retry-after %v, want ~510ms", d)
	}
	// After the hinted wait the take must succeed.
	if _, ok := b.Take(now.Add(d), 1); !ok {
		t.Fatal("take refused after waiting the hinted retry-after")
	}
}

func TestBucketOversizedTake(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBucket(10, time.Second) // cap 10
	// A 25-token op exceeds capacity; it must be admitted once the bucket
	// is full, not starved forever.
	b.last = now
	now = now.Add(time.Minute) // refill to cap
	if _, ok := b.Take(now, 25); !ok {
		t.Fatal("oversized take refused at full bucket")
	}
	if b.fill >= 0 {
		t.Fatalf("oversized take should leave debt, fill=%v", b.fill)
	}
}

func TestThrottlerPerTenantIsolation(t *testing.T) {
	th := NewThrottler(Limits{OpsPerSec: 5, Window: time.Second})
	now := time.Unix(0, 0)
	th.SetClock(func() time.Time { return now })
	// Drain tenant A.
	var errA error
	for i := 0; i < 50 && errA == nil; i++ {
		errA = th.Admit("a")
	}
	if errA == nil {
		t.Fatal("tenant a never throttled")
	}
	if !errors.Is(errA, ErrThrottled) {
		t.Fatalf("throttle error %v does not match ErrThrottled", errA)
	}
	// Tenant B is untouched.
	if err := th.Admit("b"); err != nil {
		t.Fatalf("tenant b throttled by a's debt: %v", err)
	}
}

func TestThrottlerBytesDebt(t *testing.T) {
	th := NewThrottler(Limits{BytesPerSec: 1000, Window: time.Second})
	now := time.Unix(0, 0)
	th.SetClock(func() time.Time { return now })
	if err := th.Admit("a"); err != nil {
		t.Fatalf("fresh tenant refused: %v", err)
	}
	th.ChargeBytes("a", 5000) // deep debt
	err := th.Admit("a")
	if err == nil {
		t.Fatal("tenant in bytes debt admitted")
	}
	ra, ok := RetryAfterFromError(err)
	if !ok || ra <= 0 {
		t.Fatalf("no retry-after on %v", err)
	}
	now = now.Add(ra + 10*time.Millisecond)
	if err := th.Admit("a"); err != nil {
		t.Fatalf("still refused after hinted wait: %v", err)
	}
}

func TestRetryAfterSurvivesTextWire(t *testing.T) {
	orig := &ThrottledError{RetryAfter: 1250 * time.Millisecond}
	// Simulate the RPC layer: wrap with context, flatten to text, re-wrap.
	remote := fmt.Errorf("provider 3: read 17: %s (replica on provider 3)", orig.Error())
	flat := errors.New(remote.Error())
	ra, ok := RetryAfterFromError(flat)
	if !ok {
		t.Fatalf("retry-after lost across text wire: %q", flat)
	}
	if ra != orig.RetryAfter {
		t.Fatalf("retry-after %v, want %v", ra, orig.RetryAfter)
	}
	// Typed path too.
	ra, ok = RetryAfterFromError(fmt.Errorf("wrapped: %w", orig))
	if !ok || ra != orig.RetryAfter {
		t.Fatalf("typed retry-after %v ok=%v", ra, ok)
	}
	// Non-throttle errors parse as nothing.
	if _, ok := RetryAfterFromError(errors.New("plain failure")); ok {
		t.Fatal("false positive on unrelated error")
	}
}

func TestGroupCoalesces(t *testing.T) {
	var g Group[string, int]
	var execs atomic.Int32
	var shares atomic.Int32
	g.OnShare = func(int) { shares.Add(1) }

	const K = 32
	gate := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]int, K)
	sharedCount := atomic.Int32{}
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, shared, err := g.Do("k", func() (int, error) {
				<-gate // hold the flight open until everyone joined
				execs.Add(1)
				return 42, nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			if shared {
				sharedCount.Add(1)
			}
			results[i] = v
		}(i)
	}
	// Let every goroutine reach Do, then release the leader.
	time.Sleep(50 * time.Millisecond)
	close(gate)
	wg.Wait()
	if n := execs.Load(); n != 1 {
		t.Fatalf("fn executed %d times, want 1", n)
	}
	for i, v := range results {
		if v != 42 {
			t.Fatalf("result[%d] = %d", i, v)
		}
	}
	// Every waiter got an OnShare call; the leader did not.
	if shares.Load() != sharedCount.Load() {
		t.Fatalf("OnShare ran %d times for %d waiters", shares.Load(), sharedCount.Load())
	}
	// A later call must execute fresh (no caching).
	_, shared, _ := g.Do("k", func() (int, error) { execs.Add(1); return 7, nil })
	if shared || execs.Load() != 2 {
		t.Fatal("flight result cached past completion")
	}
}

func TestGroupErrorNotCached(t *testing.T) {
	var g Group[int, string]
	boom := errors.New("boom")
	_, _, err := g.Do(1, func() (string, error) { return "", boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	v, shared, err := g.Do(1, func() (string, error) { return "ok", nil })
	if err != nil || shared || v != "ok" {
		t.Fatalf("second Do: %v %v %v", v, shared, err)
	}
}

func TestWaiterPacesToRate(t *testing.T) {
	w := NewWaiter(Limits{OpsPerSec: 100, Window: time.Second})
	now := time.Unix(0, 0)
	w.mu.Lock()
	w.now = func() time.Time { return now }
	w.sleep = func(_ context.Context, d time.Duration) error {
		now = now.Add(d)
		return nil
	}
	w.mu.Unlock()
	start := now
	for i := 0; i < 200; i++ {
		if _, err := w.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := now.Sub(start)
	// 200 ops at 100/s with 10% initial fill: ~1.9s of simulated waiting.
	if elapsed < 1500*time.Millisecond || elapsed > 2500*time.Millisecond {
		t.Fatalf("200 ops took %v simulated, want ~1.9s", elapsed)
	}
	// Cancellation surfaces.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	w.mu.Lock()
	w.sleep = func(ctx context.Context, _ time.Duration) error { return ctx.Err() }
	w.ops.fill = -1000
	w.mu.Unlock()
	if _, err := w.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Wait returned %v", err)
	}
}
