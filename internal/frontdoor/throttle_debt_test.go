package frontdoor

import (
	"context"
	"testing"
	"time"
)

// TestBucketSubWindowDebtFloorsHint pins the busy-loop guard: a debt so
// small it refills in under a millisecond must still hint a non-zero
// retry-after (floored at 1ms). A zero hint would make pacing callers
// retry in a hot loop — the hint exists to prevent exactly that.
func TestBucketSubWindowDebtFloorsHint(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBucket(1e6, time.Second) // 1M tokens/s: 1 token refills in 1µs
	b.Force(now, b.fill+1)           // 1 token of debt
	d, ok := b.Take(now, 1)
	if ok {
		t.Fatal("bucket in debt admitted a take")
	}
	if d < time.Millisecond {
		t.Fatalf("sub-window debt hinted %v, want >= 1ms floor", d)
	}
	// The floored hint survives the text wire as a positive duration.
	if ra, ok := RetryAfterFromError(&ThrottledError{RetryAfter: d}); !ok || ra < time.Millisecond {
		t.Fatalf("hint %v degraded across the error: %v %v", d, ra, ok)
	}
}

// TestBucketForceDebtClamped pins the debt bound: charging far more than
// one window's budget leaves at most one window of debt (-cap), so the
// tenant's penalty is bounded at ~two windows of silence, not proportional
// to a single anomalous response.
func TestBucketForceDebtClamped(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBucket(100, time.Second) // cap 100
	b.Force(now, 1e9)
	if b.fill != -b.cap {
		t.Fatalf("debt after huge Force = %v, want clamp at -cap (%v)", b.fill, -b.cap)
	}
	d, ok := b.Take(now, 1)
	if ok {
		t.Fatal("deep-debt bucket admitted a take")
	}
	if max := 3 * time.Second; d > max {
		t.Fatalf("retry-after %v exceeds the bounded penalty (%v)", d, max)
	}
}

// TestBucketResizePreservesDebt pins the shrink/grow contract: fill and
// debt carry across a resize, clamped to the new capacity bounds, and the
// nil transitions (disable, fresh-enable) behave.
func TestBucketResizePreservesDebt(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBucket(100, time.Second) // cap 100
	b.Force(now, b.fill+50)          // 50 tokens of debt

	// Shrink: debt survives, clamped to the smaller -cap.
	small := b.Resize(now, 10, time.Second) // cap 10
	if small.fill != -10 {
		t.Errorf("debt across shrink = %v, want clamp at -10", small.fill)
	}
	if _, ok := small.Take(now, 1); ok {
		t.Error("shrunken bucket forgave the debt")
	}

	// Grow: the debt carries exactly.
	big := small.Resize(now, 1000, time.Second)
	if big.fill != -10 {
		t.Errorf("debt across grow = %v, want -10", big.fill)
	}

	// Surplus clamps down to the new, smaller capacity.
	full := NewBucket(100, time.Second)
	full.last = now
	full.advance(now.Add(time.Minute)) // refill to cap 100
	if got := full.Resize(now.Add(time.Minute), 5, time.Second); got.fill != got.cap {
		t.Errorf("surplus across shrink = %v, want clamp at cap %v", got.fill, got.cap)
	}

	// rate <= 0 disables the dimension; a nil bucket resizes to a fresh one.
	if b.Resize(now, 0, time.Second) != nil {
		t.Error("Resize to rate 0 did not disable the bucket")
	}
	var nilB *Bucket
	if fresh := nilB.Resize(now, 10, time.Second); fresh == nil || fresh.fill <= 0 {
		t.Errorf("nil bucket resize = %+v, want fresh bucket", fresh)
	}
}

// TestThrottlerSetLimitsPreservesDebt pins the mid-flight limit change: a
// tenant deep in byte debt stays refused after the bucket shrinks — the
// debt is not forgiven by the swap — and resumes once the (new, slower)
// refill pays it off.
func TestThrottlerSetLimitsPreservesDebt(t *testing.T) {
	th := NewThrottler(Limits{BytesPerSec: 1000, Window: time.Second})
	now := time.Unix(0, 0)
	th.SetClock(func() time.Time { return now })
	if err := th.Admit("a"); err != nil {
		t.Fatalf("fresh tenant refused: %v", err)
	}
	th.ChargeBytes("a", 500) // into debt

	if !th.SetLimits(Limits{BytesPerSec: 100, Window: time.Second}) {
		t.Fatal("SetLimits with live limits returned false")
	}
	err := th.Admit("a")
	if err == nil {
		t.Fatal("shrinking the bucket forgave the tenant's debt")
	}
	ra, ok := RetryAfterFromError(err)
	if !ok || ra <= 0 {
		t.Fatalf("refusal carries no usable hint: %v", err)
	}
	// The clamped debt (≥ -cap = -100) refills at the NEW 100 B/s rate
	// within ~a window, bounded — not the old debt at the old rate.
	if ra > 2*time.Second {
		t.Errorf("retry-after %v not bounded by the new window", ra)
	}
	now = now.Add(ra + 10*time.Millisecond)
	if err := th.Admit("a"); err != nil {
		t.Fatalf("still refused after hinted wait: %v", err)
	}

	// Disabling throttling entirely is the caller's job: SetLimits says no.
	if th.SetLimits(Limits{}) {
		t.Error("SetLimits with zero limits returned true")
	}
	var nilTh *Throttler
	if nilTh.SetLimits(Limits{OpsPerSec: 1}) {
		t.Error("nil throttler SetLimits returned true")
	}
}

// TestAdmitRefusalDoesNotBurnOps pins the refund contract: an Admit
// refused on byte debt must not consume an op token, or retries paced by
// the hint find the ops bucket drained and the refusal cascades across
// dimensions.
func TestAdmitRefusalDoesNotBurnOps(t *testing.T) {
	th := NewThrottler(Limits{OpsPerSec: 1, BytesPerSec: 100, Window: time.Second})
	now := time.Unix(0, 0)
	th.SetClock(func() time.Time { return now })
	if err := th.Admit("a"); err != nil {
		t.Fatalf("fresh tenant refused: %v", err)
	}
	th.ChargeBytes("a", 1000) // clamped to -cap = -100

	// One second later the ops bucket is full again (cap 1) while the
	// bytes bucket has just barely paid off its debt to exactly zero —
	// still refusing the probe. Hammer Admit: every refusal would burn the
	// single op token without the refund.
	now = now.Add(time.Second)
	for i := 0; i < 10; i++ {
		if err := th.Admit("a"); err == nil {
			t.Fatal("tenant admitted while bytes bucket at zero")
		}
	}
	// 2ms later the probe clears. The op token must still be there.
	now = now.Add(2 * time.Millisecond)
	if err := th.Admit("a"); err != nil {
		t.Fatalf("refused after debt cleared — refusals burned the op budget: %v", err)
	}
}

// TestWaiterRefusalDoesNotBurnOps pins the same refund on the client-side
// Waiter: a lap that sits out a byte debt must not consume an op token.
// The burn shows when concurrent receivers keep re-debting the bytes
// bucket between laps — each refused lap would eat the single op token and
// the waiter would then wait out a whole op period (1s) it never spent.
func TestWaiterRefusalDoesNotBurnOps(t *testing.T) {
	w := NewWaiter(Limits{OpsPerSec: 1, BytesPerSec: 1000, Window: time.Second})
	now := time.Unix(0, 0)
	var slept time.Duration
	recharges := 0
	w.now = func() time.Time { return now }
	w.sleep = func(_ context.Context, d time.Duration) error {
		slept += d
		now = now.Add(d)
		// A concurrent reader lands another response mid-sleep for the
		// first few laps, re-debting the bytes bucket.
		if recharges < 3 {
			recharges++
			w.ChargeBytes(50)
		}
		return nil
	}

	if _, err := w.Wait(context.Background()); err != nil {
		t.Fatalf("fresh waiter refused: %v", err)
	}
	now = now.Add(time.Second) // refill the op spent above
	w.ChargeBytes(150)         // 50ms of byte debt at 1000 B/s

	if _, err := w.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	// With the refund the waiter pays only the byte debts: ~4 × 50ms. If
	// refused laps burned the op token, the second lap would find the ops
	// bucket nearly empty and sleep out most of a 1s op period.
	if slept > 500*time.Millisecond {
		t.Fatalf("waiter slept %v for ~200ms of byte debt — op tokens burned while waiting", slept)
	}
}
