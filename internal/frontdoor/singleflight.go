package frontdoor

import "sync"

// Group collapses concurrent duplicate work: while one call for a key is
// in flight, further Do calls for the same key wait for it and share its
// result instead of executing fn again. Unlike golang.org/x/sync's
// singleflight it carries a typed result and an OnShare hook, which the
// client uses for lease accounting on pooled receive frames: the leader's
// result owns one frame reference, and OnShare retains one more for every
// waiter before any waiter can observe the value, so each Do returner owns
// exactly one reference regardless of who executed the fetch.
//
// Results are never cached past the flight: the moment the leader
// finishes, the key is forgotten, so an error is shared only by callers
// that were already waiting (they would have hit the same failure) and
// never poisons later calls.
type Group[K comparable, V any] struct {
	// OnShare, when set, runs once per waiter (not for the leader) under
	// the group lock, before the waiters are released. Use it to take
	// per-consumer references on shared resources inside V. Not called for
	// failed flights.
	OnShare func(V)

	mu sync.Mutex
	m  map[K]*flight[V]
}

type flight[V any] struct {
	wg      sync.WaitGroup
	waiters int
	val     V
	err     error
}

// Pending reports how many callers are attached to key's in-flight
// execution — the leader plus its waiters — or 0 when no flight is active.
// For tests and introspection; the answer can be stale by the time it is
// observed.
func (g *Group[K, V]) Pending(key K) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	f, ok := g.m[key]
	if !ok {
		return 0
	}
	return f.waiters + 1
}

// Do executes fn for key, or waits for an in-flight execution of the same
// key and shares its result. shared reports whether this caller was a
// waiter. The flight runs on the leader's goroutine (and therefore under
// the leader's context): a leader that gives up fails its waiters too,
// which is acceptable because the key is dropped immediately and the next
// caller simply retries fresh.
func (g *Group[K, V]) Do(key K, fn func() (V, error)) (v V, shared bool, err error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[K]*flight[V])
	}
	if f, ok := g.m[key]; ok {
		f.waiters++
		g.mu.Unlock()
		f.wg.Wait()
		return f.val, true, f.err
	}
	f := &flight[V]{}
	f.wg.Add(1)
	g.m[key] = f
	g.mu.Unlock()

	f.val, f.err = fn()

	g.mu.Lock()
	delete(g.m, key) // no new waiters can join past this point
	if g.OnShare != nil && f.err == nil {
		for i := 0; i < f.waiters; i++ {
			g.OnShare(f.val)
		}
	}
	g.mu.Unlock()
	f.wg.Done() // release waiters only after their shares are taken
	return f.val, false, f.err
}
