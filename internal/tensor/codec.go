package tensor

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Binary layout of an encoded tensor:
//
//	u16 name length | name bytes
//	u8  dtype
//	u8  rank
//	rank × u32 dims
//	u64 data length | data bytes
//
// All integers are little-endian. The format is self-delimiting so tensors
// can be concatenated into consolidated segments and decoded in sequence.

// EncodedSize returns the number of bytes Encode will produce for t.
func (t *Tensor) EncodedSize() int {
	return 2 + len(t.Name) + 1 + 1 + 4*len(t.Shape) + 8 + len(t.Data)
}

// AppendEncode appends the binary encoding of t to dst and returns the
// extended slice.
func (t *Tensor) AppendEncode(dst []byte) []byte {
	if len(t.Name) > 0xffff {
		panic("tensor: name too long to encode")
	}
	if len(t.Shape) > 0xff {
		panic("tensor: rank too large to encode")
	}
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(t.Name)))
	dst = append(dst, t.Name...)
	dst = append(dst, byte(t.DType), byte(len(t.Shape)))
	for _, d := range t.Shape {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(d))
	}
	dst = binary.LittleEndian.AppendUint64(dst, uint64(len(t.Data)))
	dst = append(dst, t.Data...)
	return dst
}

// Encode returns the binary encoding of t.
func (t *Tensor) Encode() []byte {
	return t.AppendEncode(make([]byte, 0, t.EncodedSize()))
}

// Decode parses one encoded tensor from the front of b, returning the tensor
// and the number of bytes consumed. The returned tensor's Data aliases b;
// callers that need an independent copy must Clone it.
func Decode(b []byte) (*Tensor, int, error) {
	if len(b) < 2 {
		return nil, 0, io.ErrUnexpectedEOF
	}
	nameLen := int(binary.LittleEndian.Uint16(b))
	off := 2
	if len(b) < off+nameLen+2 {
		return nil, 0, io.ErrUnexpectedEOF
	}
	name := string(b[off : off+nameLen])
	off += nameLen
	dt := DType(b[off])
	if dt > Uint8 {
		return nil, 0, fmt.Errorf("tensor: bad dtype byte %d", b[off])
	}
	rank := int(b[off+1])
	off += 2
	if len(b) < off+4*rank+8 {
		return nil, 0, io.ErrUnexpectedEOF
	}
	shape := make([]int, rank)
	for i := 0; i < rank; i++ {
		shape[i] = int(binary.LittleEndian.Uint32(b[off:]))
		off += 4
	}
	dataLen := binary.LittleEndian.Uint64(b[off:])
	off += 8
	if uint64(len(b)-off) < dataLen {
		return nil, 0, io.ErrUnexpectedEOF
	}
	t := &Tensor{Name: name, DType: dt, Shape: shape, Data: b[off : off+int(dataLen)]}
	off += int(dataLen)
	if err := t.Validate(); err != nil {
		return nil, 0, err
	}
	return t, off, nil
}

// EncodeSet concatenates the encodings of all tensors into one consolidated
// segment, the unit EvoStore ships in a single bulk transfer.
func EncodeSet(ts []*Tensor) []byte {
	size := 0
	for _, t := range ts {
		size += t.EncodedSize()
	}
	out := make([]byte, 0, size)
	for _, t := range ts {
		out = t.AppendEncode(out)
	}
	return out
}

// DecodeSet parses a consolidated segment produced by EncodeSet. The
// returned tensors alias b.
func DecodeSet(b []byte) ([]*Tensor, error) {
	var out []*Tensor
	for len(b) > 0 {
		t, n, err := Decode(b)
		if err != nil {
			return nil, fmt.Errorf("tensor: decoding set entry %d: %w", len(out), err)
		}
		out = append(out, t)
		b = b[n:]
	}
	return out, nil
}
