package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDTypeSizes(t *testing.T) {
	cases := []struct {
		dt   DType
		size int
		name string
	}{
		{Float32, 4, "float32"},
		{Float64, 8, "float64"},
		{Int32, 4, "int32"},
		{Int64, 8, "int64"},
		{Uint8, 1, "uint8"},
	}
	for _, c := range cases {
		if got := c.dt.Size(); got != c.size {
			t.Errorf("%v.Size() = %d, want %d", c.dt, got, c.size)
		}
		if got := c.dt.String(); got != c.name {
			t.Errorf("%v.String() = %q, want %q", c.dt, got, c.name)
		}
		back, err := ParseDType(c.name)
		if err != nil || back != c.dt {
			t.Errorf("ParseDType(%q) = %v, %v; want %v", c.name, back, err, c.dt)
		}
	}
	if _, err := ParseDType("complex128"); err == nil {
		t.Error("ParseDType accepted unknown dtype")
	}
}

func TestNewZeroFilled(t *testing.T) {
	tt := New("w", Float32, 3, 4)
	if tt.NumElements() != 12 {
		t.Fatalf("NumElements = %d, want 12", tt.NumElements())
	}
	if tt.SizeBytes() != 48 {
		t.Fatalf("SizeBytes = %d, want 48", tt.SizeBytes())
	}
	for i, b := range tt.Data {
		if b != 0 {
			t.Fatalf("byte %d not zero", i)
		}
	}
	if err := tt.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestScalarShape(t *testing.T) {
	s := New("scalar", Float64)
	if s.NumElements() != 1 || s.SizeBytes() != 8 {
		t.Fatalf("scalar: elements=%d bytes=%d", s.NumElements(), s.SizeBytes())
	}
}

func TestValidateRejectsBadBuffer(t *testing.T) {
	tt := New("w", Float32, 2, 2)
	tt.Data = tt.Data[:15]
	if err := tt.Validate(); err == nil {
		t.Error("Validate accepted short buffer")
	}
	tt2 := New("w", Float32, 2)
	tt2.Shape[0] = -2
	if err := tt2.Validate(); err == nil {
		t.Error("Validate accepted negative dimension")
	}
}

func TestFloat32Accessors(t *testing.T) {
	tt := New("w", Float32, 4)
	tt.SetFloat32(2, 3.25)
	if got := tt.Float32At(2); got != 3.25 {
		t.Fatalf("Float32At = %v, want 3.25", got)
	}
	if got := tt.Float32At(0); got != 0 {
		t.Fatalf("untouched element = %v, want 0", got)
	}
}

func TestFloat32AccessorsPanicOnWrongDType(t *testing.T) {
	tt := New("w", Int64, 4)
	defer func() {
		if recover() == nil {
			t.Error("Float32At did not panic on int64 tensor")
		}
	}()
	tt.Float32At(0)
}

func TestFillSeededDeterministic(t *testing.T) {
	a := New("w", Float32, 100)
	b := New("w", Float32, 100)
	a.FillSeeded(42)
	b.FillSeeded(42)
	if !a.Equal(b) {
		t.Error("same seed produced different contents")
	}
	b.FillSeeded(43)
	if a.Equal(b) {
		t.Error("different seeds produced identical contents")
	}
}

func TestFillSeededOddLength(t *testing.T) {
	// Lengths not divisible by 8 exercise the tail path.
	for _, n := range []int{1, 3, 7, 9, 15} {
		a := New("w", Uint8, n)
		a.FillSeeded(7)
		allZero := true
		for _, b := range a.Data {
			if b != 0 {
				allZero = false
			}
		}
		if allZero && n > 2 {
			t.Errorf("n=%d: fill left buffer zero", n)
		}
	}
}

func TestPerturbChangesContents(t *testing.T) {
	a := New("w", Float32, 64)
	a.FillSeeded(1)
	before := a.Clone()
	a.Perturb(99)
	if a.Equal(before) {
		t.Error("Perturb left tensor unchanged")
	}
	// Perturb must be deterministic.
	b := before.Clone()
	b.Perturb(99)
	if !a.Equal(b) {
		t.Error("Perturb is not deterministic")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New("w", Float32, 8)
	a.FillSeeded(5)
	c := a.Clone()
	c.Data[0] ^= 0xff
	c.Shape[0] = 4
	if a.Data[0] == c.Data[0] {
		t.Error("clone shares data buffer")
	}
	if a.Shape[0] != 8 {
		t.Error("clone shares shape slice")
	}
}

func TestSameSpecAndEqual(t *testing.T) {
	a := New("w", Float32, 2, 3)
	b := New("w", Float32, 2, 3)
	if !a.SameSpec(b) || !a.Equal(b) {
		t.Error("identical tensors compared unequal")
	}
	b.Name = "v"
	if a.SameSpec(b) {
		t.Error("SameSpec ignored name")
	}
	b.Name = "w"
	b.Shape = []int{3, 2}
	if a.SameSpec(b) {
		t.Error("SameSpec ignored shape")
	}
	c := New("w", Float32, 2, 3)
	c.Data[5] = 1
	if a.Equal(c) {
		t.Error("Equal ignored contents")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	a := New("w", Float32, 16)
	a.FillSeeded(1)
	fp := a.Fingerprint()
	b := a.Clone()
	if b.Fingerprint() != fp {
		t.Error("fingerprint not stable across clone")
	}
	b.Data[3] ^= 1
	if b.Fingerprint() == fp {
		t.Error("fingerprint insensitive to data change")
	}
	c := a.Clone()
	c.Name = "x"
	if c.Fingerprint() == fp {
		t.Error("fingerprint insensitive to name change")
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	a := New("layer3/kernel", Float32, 5, 7)
	a.FillSeeded(11)
	enc := a.Encode()
	if len(enc) != a.EncodedSize() {
		t.Fatalf("encoded size %d != EncodedSize %d", len(enc), a.EncodedSize())
	}
	back, n, err := Decode(enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if n != len(enc) {
		t.Fatalf("Decode consumed %d of %d bytes", n, len(enc))
	}
	if !a.Equal(back) {
		t.Error("roundtrip mismatch")
	}
}

func TestDecodeTruncated(t *testing.T) {
	a := New("w", Float64, 3)
	a.FillSeeded(2)
	enc := a.Encode()
	for cut := 0; cut < len(enc); cut++ {
		if _, _, err := Decode(enc[:cut]); err == nil {
			t.Fatalf("Decode accepted truncation at %d bytes", cut)
		}
	}
}

func TestDecodeBadDType(t *testing.T) {
	a := New("w", Float32, 1)
	enc := a.Encode()
	enc[2+len(a.Name)] = 200 // dtype byte
	if _, _, err := Decode(enc); err == nil {
		t.Error("Decode accepted invalid dtype byte")
	}
}

func TestEncodeDecodeSet(t *testing.T) {
	var ts []*Tensor
	for i := 0; i < 9; i++ {
		tt := New("t", Float32, i+1)
		tt.FillSeeded(uint64(i))
		ts = append(ts, tt)
	}
	seg := EncodeSet(ts)
	back, err := DecodeSet(seg)
	if err != nil {
		t.Fatalf("DecodeSet: %v", err)
	}
	if len(back) != len(ts) {
		t.Fatalf("got %d tensors, want %d", len(back), len(ts))
	}
	for i := range ts {
		if !ts[i].Equal(back[i]) {
			t.Errorf("tensor %d mismatch", i)
		}
	}
}

func TestDecodeSetEmpty(t *testing.T) {
	out, err := DecodeSet(nil)
	if err != nil || len(out) != 0 {
		t.Fatalf("DecodeSet(nil) = %v, %v", out, err)
	}
}

// Property: encode/decode roundtrips for arbitrary names, shapes and seeds.
func TestQuickRoundtrip(t *testing.T) {
	f := func(name string, d0, d1 uint8, seed uint64) bool {
		if len(name) > 1000 {
			name = name[:1000]
		}
		tt := New(name, Float32, int(d0%32), int(d1%32))
		tt.FillSeeded(seed)
		back, n, err := Decode(tt.Encode())
		return err == nil && n == tt.EncodedSize() && tt.Equal(back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: fingerprints of same-seed fills agree; flipped bytes disagree.
func TestQuickFingerprint(t *testing.T) {
	f := func(seed uint64, flip uint16) bool {
		a := New("w", Float32, 64)
		a.FillSeeded(seed)
		b := a.Clone()
		if a.Fingerprint() != b.Fingerprint() {
			return false
		}
		b.Data[int(flip)%len(b.Data)] ^= 0x5a
		return a.Fingerprint() != b.Fingerprint()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkFillSeeded(b *testing.B) {
	tt := New("w", Float32, 1<<18) // 1 MiB
	b.SetBytes(int64(tt.SizeBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tt.FillSeeded(uint64(i))
	}
}

func BenchmarkFingerprint(b *testing.B) {
	tt := New("w", Float32, 1<<18)
	tt.FillSeeded(1)
	b.SetBytes(int64(tt.SizeBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tt.Fingerprint()
	}
}

func BenchmarkEncodeSet(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	var ts []*Tensor
	for i := 0; i < 100; i++ {
		tt := New("t", Float32, 1024+r.Intn(64))
		tt.FillSeeded(uint64(i))
		ts = append(ts, tt)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = EncodeSet(ts)
	}
}
