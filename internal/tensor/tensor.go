// Package tensor provides the basic value type stored by EvoStore: dense,
// typed, multi-dimensional arrays of model parameters (weights, biases,
// batch-norm statistics, ...).
//
// Tensors in this package are deliberately simple: a dtype, a shape and a
// flat byte buffer. EvoStore never computes with tensors beyond filling,
// copying, hashing and comparing them, so no arithmetic kernels are needed.
package tensor

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
)

// DType identifies the element type of a Tensor.
type DType uint8

// Supported element types.
const (
	Float32 DType = iota
	Float64
	Int32
	Int64
	Uint8
)

// Size returns the size of one element in bytes.
func (d DType) Size() int {
	switch d {
	case Float32, Int32:
		return 4
	case Float64, Int64:
		return 8
	case Uint8:
		return 1
	}
	panic(fmt.Sprintf("tensor: unknown dtype %d", d))
}

// String returns the conventional name of the dtype.
func (d DType) String() string {
	switch d {
	case Float32:
		return "float32"
	case Float64:
		return "float64"
	case Int32:
		return "int32"
	case Int64:
		return "int64"
	case Uint8:
		return "uint8"
	}
	return fmt.Sprintf("dtype(%d)", d)
}

// ParseDType converts a dtype name back to its DType. It is the inverse of
// DType.String for supported types.
func ParseDType(s string) (DType, error) {
	switch s {
	case "float32":
		return Float32, nil
	case "float64":
		return Float64, nil
	case "int32":
		return Int32, nil
	case "int64":
		return Int64, nil
	case "uint8":
		return Uint8, nil
	}
	return 0, fmt.Errorf("tensor: unknown dtype %q", s)
}

// Tensor is a dense array of parameters. Data is stored little-endian in a
// flat buffer of NumElements()*DType.Size() bytes.
type Tensor struct {
	Name  string
	DType DType
	Shape []int
	Data  []byte
}

// NumElements returns the product of the shape dimensions. A scalar (empty
// shape) has one element.
func NumElements(shape []int) int {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return n
}

// SizeBytes returns the size of the tensor's payload in bytes.
func (t *Tensor) SizeBytes() int { return len(t.Data) }

// NumElements returns the number of elements implied by the shape.
func (t *Tensor) NumElements() int { return NumElements(t.Shape) }

// New allocates a zero-filled tensor with the given name, dtype and shape.
func New(name string, dt DType, shape ...int) *Tensor {
	n := NumElements(shape)
	if n < 0 {
		panic(fmt.Sprintf("tensor: negative element count for shape %v", shape))
	}
	return &Tensor{
		Name:  name,
		DType: dt,
		Shape: append([]int(nil), shape...),
		Data:  make([]byte, n*dt.Size()),
	}
}

// Validate checks that the buffer length matches dtype and shape.
func (t *Tensor) Validate() error {
	want := t.NumElements() * t.DType.Size()
	if len(t.Data) != want {
		return fmt.Errorf("tensor %q: have %d data bytes, want %d for %s%v",
			t.Name, len(t.Data), want, t.DType, t.Shape)
	}
	for _, d := range t.Shape {
		if d < 0 {
			return fmt.Errorf("tensor %q: negative dimension in shape %v", t.Name, t.Shape)
		}
	}
	return nil
}

// Clone returns a deep copy of the tensor.
func (t *Tensor) Clone() *Tensor {
	c := &Tensor{
		Name:  t.Name,
		DType: t.DType,
		Shape: append([]int(nil), t.Shape...),
		Data:  append([]byte(nil), t.Data...),
	}
	return c
}

// SameSpec reports whether two tensors have identical name, dtype and shape
// (but not necessarily identical contents).
func (t *Tensor) SameSpec(o *Tensor) bool {
	if t.Name != o.Name || t.DType != o.DType || len(t.Shape) != len(o.Shape) {
		return false
	}
	for i := range t.Shape {
		if t.Shape[i] != o.Shape[i] {
			return false
		}
	}
	return true
}

// Equal reports whether two tensors have identical spec and contents.
func (t *Tensor) Equal(o *Tensor) bool {
	if !t.SameSpec(o) || len(t.Data) != len(o.Data) {
		return false
	}
	for i := range t.Data {
		if t.Data[i] != o.Data[i] {
			return false
		}
	}
	return true
}

// Fingerprint returns a 64-bit content hash covering name, dtype, shape and
// data. It is used for fast modified-tensor detection during diffing.
func (t *Tensor) Fingerprint() uint64 {
	h := fnv.New64a()
	h.Write([]byte(t.Name))
	var buf [8]byte
	buf[0] = byte(t.DType)
	h.Write(buf[:1])
	for _, d := range t.Shape {
		binary.LittleEndian.PutUint64(buf[:], uint64(d))
		h.Write(buf[:])
	}
	h.Write(t.Data)
	return h.Sum64()
}

// Float32At returns element i interpreted as float32. It panics if the dtype
// is not Float32 or the index is out of range.
func (t *Tensor) Float32At(i int) float32 {
	if t.DType != Float32 {
		panic("tensor: Float32At on " + t.DType.String())
	}
	return math.Float32frombits(binary.LittleEndian.Uint32(t.Data[i*4:]))
}

// SetFloat32 sets element i to v. It panics if the dtype is not Float32.
func (t *Tensor) SetFloat32(i int, v float32) {
	if t.DType != Float32 {
		panic("tensor: SetFloat32 on " + t.DType.String())
	}
	binary.LittleEndian.PutUint32(t.Data[i*4:], math.Float32bits(v))
}

// FillSeeded fills the tensor with a deterministic pseudo-random pattern
// derived from seed. It is used to materialize "trained" weights in tests
// and benchmarks: two tensors filled with the same seed are identical, and
// any other seed produces different contents with overwhelming probability.
func (t *Tensor) FillSeeded(seed uint64) {
	// SplitMix64: tiny, fast, high-quality for this purpose.
	x := seed ^ uint64(len(t.Data))*0x9e3779b97f4a7c15
	i := 0
	for ; i+8 <= len(t.Data); i += 8 {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		binary.LittleEndian.PutUint64(t.Data[i:], z)
	}
	if i < len(t.Data) {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], z)
		copy(t.Data[i:], buf[:len(t.Data)-i])
	}
}

// Perturb deterministically modifies the tensor contents as a function of
// seed, simulating a training update. The result differs from the previous
// contents for any non-degenerate tensor.
func (t *Tensor) Perturb(seed uint64) {
	if len(t.Data) == 0 {
		return
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], seed*0x9e3779b97f4a7c15+1)
	for i := range t.Data {
		t.Data[i] ^= buf[i&7] | 1
	}
}

// String implements fmt.Stringer with a compact, loggable description.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor(%q %s%v %dB)", t.Name, t.DType, t.Shape, len(t.Data))
}
