package client

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/graph"
	"repro/internal/ownermap"
	"repro/internal/proto"
	"repro/internal/rpc"
)

// Striped reads split one large owner-group read into byte-range chunks
// fetched concurrently. One ReadSegments round trip in table-only mode
// (proto.ReadTable) discovers the group's segment table — a few dozen
// bytes — then the consolidated payload it describes is pulled in
// parallel ReadRange chunks. Each chunk is an independent readCall, so
// chunks spread across the connections of an rpc.Pool (separate sockets,
// separate TCP windows) and, under replication, may even be served by
// different replicas — safe, because all-replica writes keep replicas
// bit-identical. The chunks land in one flat assembly buffer (the single
// copy on this path) which is then split into per-segment views.
//
// Striping pays off when the payload is large enough that a single TCP
// stream, not the provider, is the bottleneck; for small groups the extra
// round trip is pure overhead. It is therefore off by default and gated
// on a chunk-size threshold when enabled.

// WithStripedReads enables range-striped owner-group reads. Groups whose
// consolidated payload exceeds chunkBytes are fetched as ceil(total/
// chunkBytes) concurrent byte-range chunks, at most parallel in flight at
// once. chunkBytes <= 0 leaves striping disabled; parallel <= 0 defaults
// to 4. Requires providers that understand read modes (same binary
// generation as this client); older providers ignore the mode trailer and
// would answer a probe with the full payload, so do not enable striping
// against them.
func WithStripedReads(chunkBytes int, parallel int) Option {
	return func(c *Client) {
		if chunkBytes <= 0 {
			return
		}
		c.stripeChunk = uint64(chunkBytes)
		if parallel <= 0 {
			parallel = 4
		}
		c.stripePar = parallel
	}
}

// readGroupWire fetches one owner group's segments off the wire, choosing
// between the single-response path and the striped path by configuration
// and payload size. The returned parts alias the response buffers; callers
// own them. With framed set, a full read's parts are views into the
// returned pooled frame, on which the caller owns one reference (striped
// reads assemble into a plain buffer and return a nil frame). Callers go
// through readGroup (frontdoor.go), which adds coalescing, caching and
// self-throttling on top.
func (c *Client) readGroupWire(ctx context.Context, owner ownermap.ModelID, vs []graph.VertexID, framed bool) ([]proto.SegmentRef, [][]byte, *rpc.Frame, error) {
	if c.stripeChunk == 0 {
		return c.readGroupFull(ctx, owner, vs, framed)
	}
	// Probe: table only. Cheap (no bulk), and tells us whether striping is
	// worth the extra round trip for this group.
	req := &proto.ReadSegmentsReq{Owner: owner, Vertices: vs, Mode: proto.ReadTable, Tenant: c.tenant}
	resp, err := c.readCall(ctx, proto.RPCReadSegments, owner, rpc.Message{Meta: req.Encode()})
	if err != nil {
		return nil, nil, nil, err
	}
	table, err := proto.DecodeSegTable(resp.Meta)
	if err != nil {
		return nil, nil, nil, err
	}
	var total uint64
	for _, ref := range table {
		total += uint64(ref.Length)
	}
	if total <= c.stripeChunk {
		return c.readGroupFull(ctx, owner, vs, framed)
	}
	parts, err := c.readGroupStriped(ctx, owner, vs, table, total)
	if err != nil {
		return nil, nil, nil, err
	}
	return table, parts, nil, nil
}

// readGroupFull is the classic single-response read. With framed set the
// response bulk arrives as a pooled receive frame; the caller owns one
// reference on it and every returned part aliases it.
func (c *Client) readGroupFull(ctx context.Context, owner ownermap.ModelID, vs []graph.VertexID, framed bool) ([]proto.SegmentRef, [][]byte, *rpc.Frame, error) {
	req := &proto.ReadSegmentsReq{Owner: owner, Vertices: vs, Tenant: c.tenant}
	var sink *rpc.FrameSink
	if framed {
		ctx, sink = rpc.WithFrameSink(ctx)
	}
	resp, err := c.readCall(ctx, proto.RPCReadSegments, owner, rpc.Message{Meta: req.Encode()})
	if err != nil {
		dropFrame(sink)
		return nil, nil, nil, err
	}
	table, err := proto.DecodeSegTable(resp.Meta)
	if err != nil {
		dropFrame(sink)
		return nil, nil, nil, err
	}
	parts, err := proto.SplitBulkMsg(table, resp)
	if err != nil {
		dropFrame(sink)
		return nil, nil, nil, err
	}
	var frame *rpc.Frame
	if sink != nil {
		frame = sink.Take()
	}
	return table, parts, frame, nil
}

// dropFrame releases whatever frame a failed call may have deposited
// before the error (e.g. a response that arrived but failed validation).
func dropFrame(sink *rpc.FrameSink) {
	if sink == nil {
		return
	}
	if f := sink.Take(); f != nil {
		f.Release()
	}
}

// readGroupStriped pulls the group's consolidated payload as concurrent
// byte-range chunks into one assembly buffer and splits it by the table.
// The chunks share a derived context that is cancelled on the first chunk
// failure: the read as a whole is already lost, so in-flight siblings are
// abandoned and queued ones never start, instead of streaming megabytes
// into a buffer that will be thrown away.
func (c *Client) readGroupStriped(ctx context.Context, owner ownermap.ModelID, vs []graph.VertexID, table []proto.SegmentRef, total uint64) ([][]byte, error) {
	c.stripedReads.Inc()
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	buf := make([]byte, total)
	nchunks := int((total + c.stripeChunk - 1) / c.stripeChunk)
	errs := make([]error, nchunks)
	sem := make(chan struct{}, c.stripePar)
	var wg sync.WaitGroup
	for ci := 0; ci < nchunks; ci++ {
		off := uint64(ci) * c.stripeChunk
		length := c.stripeChunk
		if off+length > total {
			length = total - off
		}
		wg.Add(1)
		go func(ci int, off, length uint64) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				errs[ci] = ctx.Err()
				return
			}
			defer func() { <-sem }()
			req := &proto.ReadSegmentsReq{
				Owner: owner, Vertices: vs,
				Mode: proto.ReadRange, RangeOff: off, RangeLen: length,
				Tenant: c.tenant,
			}
			// Chunk bytes are copied into the assembly buffer and never
			// escape this goroutine, so the receive frame can go straight
			// back to the pool — no lease needed on this path.
			cctx, sink := rpc.WithFrameSink(ctx)
			resp, err := c.readCall(cctx, proto.RPCReadSegments, owner, rpc.Message{Meta: req.Encode()})
			if err != nil {
				dropFrame(sink)
				errs[ci] = fmt.Errorf("chunk %d [%d,%d): %w", ci, off, off+length, err)
				cancel()
				return
			}
			if got := uint64(resp.BulkLen()); got != length {
				dropFrame(sink)
				errs[ci] = fmt.Errorf("chunk %d: provider returned %d bytes, want %d", ci, got, length)
				cancel()
				return
			}
			dst := buf[off : off+length]
			for _, s := range resp.BulkSlices() {
				copy(dst, s)
				dst = dst[len(s):]
			}
			dropFrame(sink)
		}(ci, off, length)
	}
	wg.Wait()
	// Report the root cause, not the collateral: chunks killed by our own
	// cancel carry context.Canceled, which only matters if the caller's
	// context died — in that case no chunk holds a better error.
	var canceled error
	for _, err := range errs {
		if err == nil || errors.Is(err, context.Canceled) {
			if err != nil && canceled == nil {
				canceled = err
			}
			continue
		}
		return nil, fmt.Errorf("striped read of owner %d: %w", owner, err)
	}
	if canceled != nil {
		return nil, fmt.Errorf("striped read of owner %d: %w", owner, canceled)
	}
	return proto.SplitBulk(table, buf)
}
