package client

// Client half of the multi-tenant front door (see internal/frontdoor and
// the provider's throttle.go for the server half):
//
//   - Read coalescing: concurrent reads of the same owner group collapse
//     into one provider round trip (readGroup → flights). The provider
//     runs its own collapser for duplicates across distinct clients; this
//     one stops duplicates before they reach the wire at all.
//   - Read-through segment cache: every raw segment a group read returns
//     lands in the client-wide resolved-segment cache, so repeat loads of
//     hot lineage prefixes skip the provider entirely. Safe because stored
//     segments are immutable and model IDs are never reused.
//   - Frame leases: reads issued on behalf of a Lease receive their bulk
//     payload in pooled receive frames (rpc.Frame). The lease and the
//     cache each hold counted references; the buffer returns to the pool
//     when the last reference drops. Callers that never Release merely
//     leave frames to the garbage collector — an unreleased lease can
//     waste a buffer, never corrupt one.
//   - Self-throttling: WithSelfThrottle paces this client's reads against
//     local token buckets before they reach the wire, so a cooperative
//     tenant converges on its budget without bouncing off the provider's
//     admission control.

import (
	"context"
	"encoding/binary"
	"sort"
	"sync"

	"repro/internal/frontdoor"
	"repro/internal/graph"
	"repro/internal/ownermap"
	"repro/internal/proto"
	"repro/internal/rpc"
)

// WithSegCacheBytes bounds the client-wide resolved-segment cache (default
// 64 MiB). Zero disables caching entirely; entries larger than the bound
// are never admitted.
func WithSegCacheBytes(n int64) Option {
	return func(c *Client) {
		if n < 0 {
			n = 0
		}
		c.segCacheMax = n
	}
}

// WithTenant stamps every segment read with a tenant ID, which the
// provider's front door charges against that tenant's token buckets.
// Untagged clients share the anonymous tenant's budget.
func WithTenant(t string) Option {
	return func(c *Client) { c.tenant = t }
}

// WithSelfThrottle paces this client's segment reads against local token
// buckets (ops and bytes per second) before they reach the wire. Unlike the
// provider's admission control, which refuses with a retry-after, the
// client-side waiter sleeps until its own budget admits the read — so a
// cooperative tenant smooths its load instead of burning round trips on
// refusals. Zero limits disable self-throttling.
func WithSelfThrottle(l frontdoor.Limits) Option {
	return func(c *Client) { c.selfWaiter = frontdoor.NewWaiter(l) }
}

// Lease tracks the pooled receive frames backing one logical read. Release
// returns every frame reference the lease holds; after that the segments
// obtained under the lease must not be touched. A Lease that is never
// released keeps its buffers from the pool but stays memory-safe (the GC
// reclaims them with the frames). The zero value is ready to use; a nil
// *Lease is a valid "don't pool" signal accepted everywhere.
type Lease struct {
	mu     sync.Mutex
	frames []*rpc.Frame
}

// add transfers one reference on f to the lease. nil lease or nil frame is
// a no-op — for a nil lease the caller deliberately leaks the reference,
// keeping the frame alive (and unpooled) for as long as the GC sees it.
func (l *Lease) add(f *rpc.Frame) {
	if l == nil || f == nil {
		return
	}
	l.mu.Lock()
	l.frames = append(l.frames, f)
	l.mu.Unlock()
}

// Release drops every frame reference the lease holds. Idempotent.
func (l *Lease) Release() {
	if l == nil {
		return
	}
	l.mu.Lock()
	frames := l.frames
	l.frames = nil
	l.mu.Unlock()
	for _, f := range frames {
		f.Release()
	}
}

// groupRead is one owner-group fetch shared across a coalesced flight.
type groupRead struct {
	table []proto.SegmentRef
	parts [][]byte
	frame *rpc.Frame // backing frame of parts (nil: plain allocations)
}

// flightKey canonicalizes an owner-group read for coalescing: owner plus
// the sorted vertex set, so two callers asking for the same segments in
// different orders still share one flight (parts are matched back through
// the shared table, never by request order).
func flightKey(owner ownermap.ModelID, vs []graph.VertexID) string {
	sorted := vs
	for i := 1; i < len(vs); i++ {
		if vs[i-1] > vs[i] {
			// Rare: owner-map grouping emits vertices in ascending order, so
			// the copy+sort only happens for hand-built vertex lists.
			sorted = append([]graph.VertexID(nil), vs...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			break
		}
	}
	b := make([]byte, 0, 8+4*len(sorted))
	b = binary.LittleEndian.AppendUint64(b, uint64(owner))
	for _, v := range sorted {
		b = binary.LittleEndian.AppendUint32(b, uint32(v))
	}
	return string(b)
}

// readGroup fetches one owner group's segments through the front door:
// self-throttle pacing, then flight coalescing, then the wire (see
// readGroupWire for the full/striped dispatch). Each returner owns one
// reference on the backing frame — transferred to lease, or deliberately
// leaked when lease is nil, since a legacy caller may hold the parts
// indefinitely and an unpooled frame is safe where a recycled-under-use
// one is not. Raw (non-enveloped) segments are cached read-through.
func (c *Client) readGroup(ctx context.Context, owner ownermap.ModelID, vs []graph.VertexID, lease *Lease) ([]proto.SegmentRef, [][]byte, error) {
	if waits, err := c.selfWaiter.Wait(ctx); err != nil {
		return nil, nil, err
	} else if waits > 0 {
		c.throttled.Add(uint64(waits))
	}
	framed := lease != nil
	g, shared, err := c.flights.Do(flightKey(owner, vs), func() (groupRead, error) {
		table, parts, frame, err := c.readGroupWire(ctx, owner, vs, framed)
		if err != nil {
			return groupRead{}, err
		}
		var total int
		for _, p := range parts {
			total += len(p)
		}
		c.selfWaiter.ChargeBytes(total)
		return groupRead{table: table, parts: parts, frame: frame}, nil
	})
	if err != nil {
		// A provider refusal that made it past resilient's paced retries:
		// count it so tenants can see they are over budget.
		if _, ok := frontdoor.RetryAfterFromError(err); ok {
			c.throttled.Inc()
		}
		return nil, nil, err
	}
	if shared {
		c.coalesced.Inc()
	}
	lease.add(g.frame)
	if !shared {
		// Read-through cache fill, leader only (waiters would only re-take
		// the same locks to find every entry present). Enveloped segments
		// are skipped: the cache holds logical bytes, and the resolver
		// caches their decoded form itself.
		for i, ref := range g.table {
			if !proto.IsSegEnvelope(g.parts[i]) {
				c.resolved.put(segRef{owner, ref.Vertex}, g.parts[i], 0, g.frame)
			}
		}
	}
	return g.table, g.parts, nil
}
