package client

import (
	"context"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/kvstore"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/ownermap"
	"repro/internal/proto"
	"repro/internal/provider"
	"repro/internal/resilient"
	"repro/internal/rpc"
)

// faultCluster is an in-process deployment with fault injection between
// the client and every provider, and the resilience middleware on top —
// the stack a production client would run.
type faultCluster struct {
	cli    *Client
	provs  []*provider.Provider
	faults []*rpc.FaultConn
	reg    *metrics.Registry
}

func newFaultCluster(t testing.TB, n int, cfg func(i int) rpc.FaultConfig) *faultCluster {
	t.Helper()
	fc := &faultCluster{reg: metrics.NewRegistry()}
	net := rpc.NewInprocNet()
	conns := make([]rpc.Conn, n)
	for i := 0; i < n; i++ {
		p := provider.New(i, kvstore.NewMemKV(8))
		srv := rpc.NewServer()
		p.Register(srv)
		addr := string(rune('a' + i))
		if err := net.Listen(addr, srv); err != nil {
			t.Fatal(err)
		}
		c, err := net.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		c2 := cfg(i)
		c2.Registry = fc.reg
		f := rpc.WithFaults(c, c2)
		fc.provs = append(fc.provs, p)
		fc.faults = append(fc.faults, f)
		conns[i] = f
	}
	conns = resilient.WrapAll(conns, resilient.Options{
		DefaultTimeout: time.Second,
		MaxAttempts:    10,
		BackoffBase:    time.Millisecond,
		BackoffMax:     4 * time.Millisecond,
		Threshold:      -1, // exercise raw retries, not shedding
		Retryable:      proto.Retryable,
		Registry:       fc.reg,
	})
	fc.cli = New(conns)
	return fc
}

// storeDerived publishes base (owning every vertex) and a child inheriting
// base's vertex 0, so the child's owner groups span two providers.
func storeDerived(t testing.TB, cli *Client, base, child ownermap.ModelID) *model.Flat {
	t.Helper()
	ctx := context.Background()
	f := flatten(t, 4)
	ws := model.Materialize(f, 1)
	if err := cli.Store(ctx, metaFor(f, base, 1, 0.5), segsFor(f, ws)); err != nil {
		t.Fatal(err)
	}
	baseMap := ownermap.New(base, 1, f.Graph.NumVertices())
	om, err := ownermap.Derive(baseMap, child, 2, f.Graph.NumVertices(), []graph.VertexID{0})
	if err != nil {
		t.Fatal(err)
	}
	meta := &proto.ModelMeta{Model: child, Seq: 2, Quality: 0.6, Graph: f.Graph, OwnerMap: om}
	ws2 := model.Materialize(f, 2)
	if err := cli.Store(ctx, meta, segsFor(f, ws2)); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestLoadWithProviderPartitioned(t *testing.T) {
	fc := newFaultCluster(t, 4, func(int) rpc.FaultConfig { return rpc.FaultConfig{} })
	ctx := context.Background()

	// base → provider 2, child → provider 3; provider 1 holds nothing.
	storeDerived(t, fc.cli, 2, 3)
	fc.faults[1].SetPartitioned(true)

	for _, id := range []ownermap.ModelID{2, 3} {
		data, err := fc.cli.Load(ctx, id)
		if err != nil {
			t.Fatalf("Load(%d) with provider 1 partitioned: %v", id, err)
		}
		if len(data.Segments) != data.Meta.Graph.NumVertices() {
			t.Fatalf("Load(%d): %d segments", id, len(data.Segments))
		}
	}

	// The partitioned provider itself is genuinely unreachable.
	if _, err := fc.cli.GetMeta(ctx, 1); err == nil {
		t.Fatal("call to partitioned provider succeeded")
	}
	if fc.reg.Counter("fault.partition_reject").Load() == 0 {
		t.Error("partition never rejected a call")
	}

	// Healing the partition restores service.
	fc.faults[1].SetPartitioned(false)
	f := flatten(t, 4)
	ws := model.Materialize(f, 3)
	if err := fc.cli.Store(ctx, metaFor(f, 1, 1, 0.4), segsFor(f, ws)); err != nil {
		t.Fatalf("store after heal: %v", err)
	}
}

func TestRetryUnderRequestDrops(t *testing.T) {
	fc := newFaultCluster(t, 4, func(i int) rpc.FaultConfig {
		return rpc.FaultConfig{Seed: int64(100 + i), DropRequest: 0.3}
	})
	ctx := context.Background()
	storeDerived(t, fc.cli, 2, 3)
	for i := 0; i < 5; i++ {
		for _, id := range []ownermap.ModelID{2, 3} {
			if _, err := fc.cli.Load(ctx, id); err != nil {
				t.Fatalf("Load(%d) round %d: %v", id, i, err)
			}
		}
	}
	snap := fc.reg.Snapshot()
	if snap["fault.drop_request"] == 0 {
		t.Error("fault schedule never fired; test exercised nothing")
	}
	if snap["rpc.retries"] == 0 {
		t.Error("no retries recorded despite request drops")
	}
}

func TestRetiredDecRefNoDriftUnderResponseDrops(t *testing.T) {
	// Response drops are the dangerous case: the provider executes the
	// refcount change, the client never hears back and retries. Without
	// ReqID dedup every such retry would decrement (or increment) again.
	fc := newFaultCluster(t, 4, func(i int) rpc.FaultConfig {
		return rpc.FaultConfig{Seed: int64(7 + i), DropResponse: 0.3}
	})
	ctx := context.Background()
	storeDerived(t, fc.cli, 2, 3)

	// Retire the child first (unpins base's vertex 0), then the base.
	if _, err := fc.cli.Retire(ctx, 3); err != nil {
		t.Fatalf("retire child: %v", err)
	}
	if _, err := fc.cli.Retire(ctx, 2); err != nil {
		t.Fatalf("retire base: %v", err)
	}

	if fc.reg.Counter("fault.drop_response").Load() == 0 {
		t.Skip("fault schedule dropped no responses; nothing exercised")
	}
	// Every provider must drain completely: any refcount drift from a
	// double-executed IncRef/DecRef leaves segments or refs behind (or
	// would have freed a segment early and failed the loads above).
	for i, p := range fc.provs {
		s := p.Stats()
		if s.Models != 0 || s.Segments != 0 || s.LiveRefs != 0 {
			t.Errorf("provider %d not drained after retires: %+v (refcount drift)", i, *s)
		}
	}
}
