package client

import (
	"context"
	"sync"

	"repro/internal/graph"
	"repro/internal/ownermap"
	"repro/internal/proto"
)

// Prefetcher implements the paper's future-work idea of "aggressive
// pre-fetching of models to workers given known access patterns" (§6): a
// worker that can predict which ancestors it will transfer from (e.g. the
// current population's top performers) warms them into a local cache while
// the GPU is busy training, overlapping repository reads with compute.
//
// Entries are immutable snapshots; a model retired after prefetch still
// serves from cache (the tensors were alive when read). Capacity is
// bounded by model count with FIFO eviction.
type Prefetcher struct {
	cli *Client

	mu       sync.Mutex
	capacity int
	order    []ownermap.ModelID
	cache    map[ownermap.ModelID]*prefetchEntry
}

type prefetchEntry struct {
	ready chan struct{} // closed when the fetch completes
	data  *ModelData
	err   error
}

// NewPrefetcher wraps a client with a cache of up to capacity models.
func NewPrefetcher(cli *Client, capacity int) *Prefetcher {
	if capacity < 1 {
		capacity = 1
	}
	return &Prefetcher{
		cli:      cli,
		capacity: capacity,
		cache:    make(map[ownermap.ModelID]*prefetchEntry),
	}
}

// Prefetch starts fetching a model in the background. It returns
// immediately; a later Get blocks only until that fetch finishes.
// Prefetching an already cached or in-flight model is a no-op.
//
// The background fetch is detached from ctx's cancellation (its values,
// e.g. tracing, are kept): the cache entry is shared by every future
// Getter, so the triggering caller's cancellation must not poison it for
// the others. Deadlines still bound the fetch via the resilience layer's
// per-attempt timeouts when the connections are wrapped.
func (p *Prefetcher) Prefetch(ctx context.Context, id ownermap.ModelID) {
	p.mu.Lock()
	if _, exists := p.cache[id]; exists {
		p.mu.Unlock()
		return
	}
	e := &prefetchEntry{ready: make(chan struct{})}
	p.insertLocked(id, e)
	p.mu.Unlock()

	fetchCtx := context.WithoutCancel(ctx)
	go func() {
		data, err := p.cli.Load(fetchCtx, id)
		e.data, e.err = data, err
		close(e.ready)
	}()
}

// insertLocked adds an entry, evicting the oldest beyond capacity.
func (p *Prefetcher) insertLocked(id ownermap.ModelID, e *prefetchEntry) {
	p.cache[id] = e
	p.order = append(p.order, id)
	for len(p.order) > p.capacity {
		evict := p.order[0]
		p.order = p.order[1:]
		delete(p.cache, evict)
	}
}

// Get returns the model, waiting for an in-flight prefetch or falling back
// to a direct load on a cache miss (misses are inserted so repeated reads
// hit).
func (p *Prefetcher) Get(ctx context.Context, id ownermap.ModelID) (*ModelData, error) {
	p.mu.Lock()
	e, ok := p.cache[id]
	p.mu.Unlock()
	if !ok {
		p.Prefetch(ctx, id)
		p.mu.Lock()
		e = p.cache[id]
		p.mu.Unlock()
		if e == nil { // evicted instantly by a tiny capacity: load directly
			return p.cli.Load(ctx, id)
		}
	}
	select {
	case <-e.ready:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	if e.err != nil {
		// Do not cache failures: drop the entry so a retry refetches.
		p.mu.Lock()
		if p.cache[id] == e {
			delete(p.cache, id)
			for i, x := range p.order {
				if x == id {
					p.order = append(p.order[:i], p.order[i+1:]...)
					break
				}
			}
		}
		p.mu.Unlock()
		return nil, e.err
	}
	return e.data, nil
}

// GetVertices is Get restricted to a vertex subset (e.g. an LCP prefix):
// on a cache hit the segments are sliced locally with zero RPCs.
func (p *Prefetcher) GetVertices(ctx context.Context, id ownermap.ModelID, vs []graph.VertexID) (*proto.ModelMeta, [][]byte, error) {
	data, err := p.Get(ctx, id)
	if err != nil {
		return nil, nil, err
	}
	segs := make([][]byte, len(data.Segments))
	for _, v := range vs {
		if int(v) >= len(data.Segments) {
			continue
		}
		segs[v] = data.Segments[v]
	}
	return data.Meta, segs, nil
}

// Invalidate drops a cached model (e.g. after observing its retirement).
func (p *Prefetcher) Invalidate(id ownermap.ModelID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.cache[id]; !ok {
		return
	}
	delete(p.cache, id)
	for i, x := range p.order {
		if x == id {
			p.order = append(p.order[:i], p.order[i+1:]...)
			break
		}
	}
}

// Len reports the number of cached (or in-flight) models.
func (p *Prefetcher) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.cache)
}
