package client

// Delta-encoded stores and read-path resolution.
//
// Writers (StoreWithPlans) may ship a modified tensor as a proto
// segment envelope: an XOR/varint delta (internal/dedup) against the
// logical bytes of the LCP ancestor's segment, optionally
// DEFLATE-compressed. The envelope is part of the stored bytes, so
// providers, replicas, repair and rebalance move it verbatim; only the
// client decodes it. Resolution therefore lives here, on the read path:
// the client is the one party with cross-provider reach, and a delta's
// base lives on the base owner's providers, not the child's.
//
// GC safety: a stored delta holds a logical reference on its base,
// pinned with the same IncRef machinery that pins inherited tensors.
// When a DecRef frees a delta-encoded segment, the provider reports the
// freed bases in its response trailer (proto.EncodeFreedResp) and
// Retire cascades a DecRef to each base's own providers — so retiring
// an ancestor before its delta children never strands the chain.

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/dedup"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/ownermap"
	"repro/internal/proto"
	"repro/internal/rpc"
)

// maxResolveDepth bounds read-path delta-chain recursion. It is a
// corruption guard, deliberately far above any negotiated write depth:
// writers rebase to raw at WithDedup's maxDepth long before this.
const maxResolveDepth = 64

// WithDedup enables delta-encoded writes. maxRatio is the largest
// (envelope bytes / raw bytes) ratio worth storing — a delta that does
// not compress below it ships raw. maxDepth bounds the delta chain: a
// write whose base already sits at maxDepth-1 hops rebases to raw, so
// no read ever chases more than maxDepth fetch levels. Reads always
// resolve envelopes regardless of this option; WithDedup only governs
// what this client writes.
func WithDedup(maxRatio float64, maxDepth int) Option {
	return func(c *Client) {
		if maxRatio <= 0 || maxRatio > 1 {
			maxRatio = DefaultDeltaMaxRatio
		}
		if maxDepth <= 0 {
			maxDepth = DefaultDeltaMaxDepth
		}
		c.deltaRatio = maxRatio
		c.deltaMaxDepth = maxDepth
	}
}

// Defaults for WithDedup. The ratio keeps near-incompressible deltas
// (heavily-changed tensors) raw; the depth keeps worst-case restores at
// a handful of extra round trips while letting 10-step lineages stay
// delta-encoded end to end.
const (
	DefaultDeltaMaxRatio = 0.5
	DefaultDeltaMaxDepth = 8
)

// SegmentPlan tells StoreWithPlans how one modified vertex may be
// delta-encoded: against the logical bytes of the stored segment
// (BaseOwner, BaseVertex), whose own stored chain depth is BaseDepth.
// Core builds plans from the transfer prefix it already fetched.
type SegmentPlan struct {
	BaseOwner  ownermap.ModelID
	BaseVertex graph.VertexID
	Base       []byte
	BaseDepth  uint8
}

// StoreWithPlans is Store with per-vertex delta plans. Each self-owned
// vertex with a plan is considered for delta encoding; the delta ships
// only if the chain stays within the negotiated depth (else the vertex
// rebases to raw) and the envelope beats the negotiated ratio. Without
// WithDedup every vertex ships raw and plans are ignored.
func (c *Client) StoreWithPlans(ctx context.Context, meta *proto.ModelMeta, segments [][]byte, plans map[graph.VertexID]SegmentPlan) error {
	if c.deltaRatio == 0 || len(plans) == 0 {
		return c.store(ctx, meta, segments, nil)
	}
	encoded := make([][]byte, len(segments))
	copy(encoded, segments)
	pins := make(map[ownermap.ModelID][]graph.VertexID)
	for v, plan := range plans {
		if int(v) >= meta.OwnerMap.Len() || meta.OwnerMap.Entries[v].Owner != meta.Model {
			return fmt.Errorf("client: store %d: delta plan for vertex %d, which the model does not own", meta.Model, v)
		}
		raw := segments[v]
		if int(plan.BaseDepth)+1 > c.deltaMaxDepth {
			c.deltaRebases.Inc() // chain at negotiated depth: rebase to raw
			continue
		}
		delta := dedup.EncodeDelta(plan.Base, raw)
		flags := proto.SegDelta
		// Compress the delta only when it clearly pays: a sparse delta's
		// literals are near-random weight bytes, and inflating them on
		// every restore is not worth a marginal size win.
		if z, ok := dedup.Compress(delta); ok && len(z) <= len(delta)*3/4 {
			flags |= proto.SegFlate
			delta = z
		}
		env := (&proto.SegEnvelope{
			Flags:      flags,
			Depth:      plan.BaseDepth + 1,
			RawLen:     uint32(len(raw)),
			BaseOwner:  plan.BaseOwner,
			BaseVertex: plan.BaseVertex,
			Payload:    delta,
		}).Encode()
		if float64(len(env)) > c.deltaRatio*float64(len(raw)) {
			c.deltaRejects.Inc() // delta does not pay: ship raw
			continue
		}
		encoded[v] = env
		pins[plan.BaseOwner] = append(pins[plan.BaseOwner], plan.BaseVertex)
		c.deltaWrites.Inc()
	}
	var extraPins []ownermap.OwnerGroup
	for owner, vs := range pins {
		extraPins = append(extraPins, ownermap.OwnerGroup{Owner: owner, Vertices: vs})
	}
	return c.store(ctx, meta, encoded, extraPins)
}

// segRef names one stored segment cluster-wide.
type segRef struct {
	owner  ownermap.ModelID
	vertex graph.VertexID
}

// cachedSeg is one resolved stored segment: its logical bytes plus the
// stored form's delta-chain depth (0 for raw), which derived stores need
// to bound their own chains. frame, when non-nil, is the pooled receive
// frame b aliases; the cache holds its own reference on it, dropped at
// eviction.
type cachedSeg struct {
	b     []byte
	depth uint8
	frame *rpc.Frame
}

// segCache is the client-wide read-through segment cache: logical bytes of
// every fetched segment — raw segments straight off the wire, delta bases
// and decoded top-level segments alike — shared across loads. Safe
// because stored segments are immutable: an (owner, vertex) pair is
// written once and model IDs are never reused, so an entry can go stale
// only by pointing at a freed segment — wasted memory, never wrong
// bytes. Bounded by total payload size with FIFO eviction; lineage
// sweeps touch entries oldest-first, so FIFO approximates LRU here
// without per-hit bookkeeping.
//
// Note one deliberate accounting simplification: an entry backed by a
// frame pins the frame's whole buffer, which may be larger than the entry
// (sibling segments of one group read share a frame). Sizing still counts
// len(b) — the duplicate-pinning window is bounded by the eviction of the
// sibling entries, which arrived together and leave together under FIFO.
type segCache struct {
	mu      sync.Mutex
	max     int64
	size    int64
	entries map[segRef]cachedSeg
	order   []segRef

	// hits/misses are the client.segcache_* counters; nil (bare tests)
	// disables counting.
	hits, misses *metrics.Counter
}

// defaultSegCacheBytes bounds the resolved-segment cache. Sized to hold
// the working set of a lineage sweep (a few hundred tensor segments)
// without mattering next to the tensors a loading process holds anyway.
const defaultSegCacheBytes = 64 << 20

func newSegCache(max int64) *segCache {
	return &segCache{max: max, entries: make(map[segRef]cachedSeg)}
}

// get returns ref's entry, taking one reference on its backing frame for
// the caller — transferred to lease, or deliberately leaked when lease is
// nil (the caller may hold the bytes forever; a pinned-out-of-pool frame
// is safe where a recycled-under-use one is not). The retain happens under
// the cache lock, so it cannot race a concurrent eviction's release.
func (sc *segCache) get(ref segRef, lease *Lease) (cachedSeg, bool) {
	sc.mu.Lock()
	e, ok := sc.entries[ref]
	if ok && e.frame != nil {
		e.frame.Retain()
		lease.add(e.frame)
	}
	sc.mu.Unlock()
	switch {
	case ok && sc.hits != nil:
		sc.hits.Inc()
	case !ok && sc.misses != nil:
		sc.misses.Inc()
	}
	return e, ok
}

// put inserts ref unless present. An entry that cannot fit even an empty
// cache is rejected outright — the old behaviour evicted the whole working
// set and then inserted the oversized entry anyway, leaving size > max.
// frame, when non-nil, backs b; the cache retains its own reference,
// released when the entry is evicted.
func (sc *segCache) put(ref segRef, b []byte, depth uint8, frame *rpc.Frame) {
	n := int64(len(b))
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if n > sc.max || sc.max <= 0 {
		return
	}
	if _, ok := sc.entries[ref]; ok {
		return
	}
	for sc.size+n > sc.max && len(sc.order) > 0 {
		old := sc.order[0]
		sc.order = sc.order[1:]
		oe := sc.entries[old]
		sc.size -= int64(len(oe.b))
		if oe.frame != nil {
			oe.frame.Release()
		}
		delete(sc.entries, old)
	}
	if frame != nil {
		frame.Retain()
	}
	sc.entries[ref] = cachedSeg{b: b, depth: depth, frame: frame}
	sc.order = append(sc.order, ref)
	sc.size += n
}

// storedDepth reads the delta-chain depth off a segment's stored form
// (0 for raw or torn bytes — torn segments fail later, in resolution).
func storedDepth(b []byte) uint8 {
	if e, enc, err := proto.ParseSegEnvelope(b); err == nil && enc {
		return e.Depth
	}
	return 0
}

// resolver turns stored segment bytes into logical bytes, fetching and
// caching delta bases across one logical read so a base shared by many
// segments is fetched once.
type resolver struct {
	c     *Client
	cache map[segRef][]byte
	// lease receives references on the pooled frames backing any base
	// bytes this resolution touches (cache hits and base fetches alike),
	// so a cache eviction mid-decode cannot recycle a buffer under the
	// XOR loop. nil opts out of pooling.
	lease *Lease
}

// resolveStored maps stored segment bytes (nil entries preserved) to
// logical bytes. Raw segments pass through zero-copy; enveloped ones
// are inflated and delta-resolved, fetching base segments batched per
// owner, recursively until a raw base. refs names each segment's own
// (owner, vertex) identity so decoded results land in the client-wide
// cache; skip marks entries that are already logical bytes (served from
// that cache) and must not be parsed. Both may be nil.
func (c *Client) resolveStored(ctx context.Context, stored [][]byte, refs []segRef, skip []bool, lease *Lease) ([][]byte, error) {
	anyEnv := false
	for i, b := range stored {
		if (skip == nil || !skip[i]) && proto.IsSegEnvelope(b) {
			anyEnv = true
			break
		}
	}
	if !anyEnv { // the common all-raw case: no allocation, no copies
		return stored, nil
	}
	r := &resolver{c: c, cache: make(map[segRef][]byte), lease: lease}
	return r.resolveBatch(ctx, stored, refs, skip, 0)
}

func (r *resolver) resolveBatch(ctx context.Context, stored [][]byte, refs []segRef, skip []bool, depth int) ([][]byte, error) {
	if depth > maxResolveDepth {
		return nil, fmt.Errorf("client: delta chain deeper than %d, refusing (corrupt base reference?)", maxResolveDepth)
	}
	out := make([][]byte, len(stored))
	envs := make([]*proto.SegEnvelope, len(stored))
	for i, b := range stored {
		if b == nil || (skip != nil && skip[i]) {
			if skip != nil && skip[i] {
				out[i] = b // already logical bytes, do not reparse
			}
			continue
		}
		e, enc, err := proto.ParseSegEnvelope(b)
		if err != nil {
			return nil, fmt.Errorf("client: segment %d of batch: %w", i, err)
		}
		if !enc {
			out[i] = b
			continue
		}
		envs[i] = e
	}
	// Fetch every uncached delta base, batched per owner, and resolve
	// those stored bytes recursively — a base may itself be a delta.
	needed := make(map[ownermap.ModelID][]graph.VertexID)
	for _, e := range envs {
		if e == nil || e.Flags&proto.SegDelta == 0 {
			continue
		}
		ref := segRef{e.BaseOwner, e.BaseVertex}
		if _, ok := r.cache[ref]; ok {
			continue
		}
		if ent, ok := r.c.resolved.get(ref, r.lease); ok {
			r.cache[ref] = ent.b
			continue
		}
		r.cache[ref] = nil // claimed; filled below
		needed[e.BaseOwner] = append(needed[e.BaseOwner], e.BaseVertex)
	}
	for owner, vs := range needed {
		table, parts, err := r.c.readGroup(ctx, owner, vs, r.lease)
		if err != nil {
			return nil, fmt.Errorf("client: fetching delta bases from owner %d: %w", owner, err)
		}
		logical, err := r.resolveBatch(ctx, parts, nil, nil, depth+1)
		if err != nil {
			return nil, err
		}
		for i, ref := range table {
			sr := segRef{owner, ref.Vertex}
			r.cache[sr] = logical[i]
			// Base segments recur across loads of a lineage (every child of a
			// model chases the same bases), so keep the resolved bytes in the
			// client-wide cache. Callers already treat returned segments as
			// immutable views, so sharing the buffer is safe. Raw bases were
			// already cached (with their frame) by readGroup's read-through
			// fill; this put covers decoded envelopes, whose logical bytes
			// are fresh allocations — hence no frame.
			r.c.resolved.put(sr, logical[i], storedDepth(parts[i]), nil)
		}
	}
	// Decode every envelope; with all bases cached the decodes are
	// independent, so fan them out — inflate + XOR at memory speed is the
	// restore path's hot loop, and a model load typically resolves many
	// segments per chain level.
	var wg sync.WaitGroup
	decErrs := make([]error, len(envs))
	for i, e := range envs {
		if e == nil {
			continue
		}
		wg.Add(1)
		go func(i int, e *proto.SegEnvelope) {
			defer wg.Done()
			payload := e.Payload
			if e.Flags&proto.SegFlate != 0 {
				// Compression wraps the delta, so only a pure-flate segment
				// knows its inflated size up front.
				want := -1
				if e.Flags&proto.SegDelta == 0 {
					want = int(e.RawLen)
				}
				p, err := dedup.Decompress(payload, want)
				if err != nil {
					decErrs[i] = fmt.Errorf("client: segment %d of batch: %w", i, err)
					return
				}
				payload = p
			}
			if e.Flags&proto.SegDelta != 0 {
				base, ok := r.cache[segRef{e.BaseOwner, e.BaseVertex}]
				if !ok || base == nil {
					decErrs[i] = fmt.Errorf("client: delta base %d/%d missing", e.BaseOwner, e.BaseVertex)
					return
				}
				p, err := dedup.DecodeDelta(base, payload)
				if err != nil {
					decErrs[i] = fmt.Errorf("client: segment %d of batch: %w", i, err)
					return
				}
				payload = p
			}
			if uint32(len(payload)) != e.RawLen {
				decErrs[i] = fmt.Errorf("client: segment %d of batch resolved to %d bytes, envelope says %d",
					i, len(payload), e.RawLen)
				return
			}
			out[i] = payload
			if refs != nil {
				// Decoded segments are as reusable as their bases: the next
				// load of this model (or a deeper child) finds the logical
				// bytes without refetching or redecoding.
				r.c.resolved.put(refs[i], payload, e.Depth, nil)
			}
			r.c.resolvedReads.Inc()
		}(i, e)
	}
	wg.Wait()
	for _, err := range decErrs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// LoadVerticesInfo is LoadVertices plus each vertex's stored delta-chain
// depth (0 for raw), which a derived store needs to keep chains bounded:
// a delta against a depth-d base stores at depth d+1.
func (c *Client) LoadVerticesInfo(ctx context.Context, meta *proto.ModelMeta, vertices []graph.VertexID) ([][]byte, []uint8, error) {
	want := make(map[graph.VertexID]bool, len(vertices))
	for _, v := range vertices {
		if int(v) >= meta.OwnerMap.Len() {
			return nil, nil, fmt.Errorf("client: load %d: vertex %d out of range", meta.Model, v)
		}
		want[v] = true
	}
	return c.readByOwnerInfo(ctx, meta.OwnerMap, want, nil)
}
