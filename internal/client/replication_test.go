package client

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/kvstore"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/ownermap"
	"repro/internal/proto"
	"repro/internal/provider"
	"repro/internal/resilient"
	"repro/internal/rpc"
)

// newReplicatedCluster builds an n-provider in-process deployment with
// R-way replication: every provider's placement guard is armed, every
// connection carries fault injection plus the resilience middleware with a
// live breaker (threshold 2, short cooldown), and the client is configured
// with WithReplicas — the full stack the kill-one-provider availability
// check runs against.
func newReplicatedCluster(t testing.TB, n, r int) *faultCluster {
	t.Helper()
	fc := &faultCluster{reg: metrics.NewRegistry()}
	net := rpc.NewInprocNet()
	conns := make([]rpc.Conn, n)
	for i := 0; i < n; i++ {
		p := provider.New(i, kvstore.NewMemKV(8))
		p.SetPlacement(n, r)
		srv := rpc.NewServer()
		p.Register(srv)
		addr := string(rune('a' + i))
		if err := net.Listen(addr, srv); err != nil {
			t.Fatal(err)
		}
		c, err := net.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		f := rpc.WithFaults(c, rpc.FaultConfig{Registry: fc.reg})
		fc.provs = append(fc.provs, p)
		fc.faults = append(fc.faults, f)
		conns[i] = f
	}
	conns = resilient.WrapAll(conns, resilient.Options{
		DefaultTimeout: time.Second,
		MaxAttempts:    2, // fail over fast instead of retrying a dead replica
		BackoffBase:    time.Millisecond,
		BackoffMax:     2 * time.Millisecond,
		Threshold:      2,
		Cooldown:       60 * time.Millisecond,
		Retryable:      proto.Retryable,
		Registry:       fc.reg,
	})
	fc.cli = New(conns, WithReplicas(r), WithRegistry(fc.reg))
	return fc
}

func TestReplicaSetPlacement(t *testing.T) {
	// Placement is pure arithmetic on the deployment size; no RPCs happen.
	conns := make([]rpc.Conn, 4)
	cases := []struct {
		r    int
		id   ownermap.ModelID
		want []int
	}{
		{1, 6, []int{2}},
		{3, 5, []int{1, 2, 3}},
		{3, 6, []int{2, 3, 0}}, // wraps around the deployment
		{3, 7, []int{3, 0, 1}},
		{9, 1, []int{1, 2, 3, 0}}, // R clamps to the deployment size
	}
	for _, tc := range cases {
		cli := New(conns, WithReplicas(tc.r))
		if got := cli.ReplicaSet(tc.id); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("R=%d ReplicaSet(%d) = %v, want %v", tc.r, tc.id, got, tc.want)
		}
		if tc.r <= len(conns) && cli.Replicas() != max(tc.r, 1) {
			t.Errorf("R=%d Replicas() = %d", tc.r, cli.Replicas())
		}
	}
}

func TestReplicatedWritesLandOnAllReplicas(t *testing.T) {
	fc := newReplicatedCluster(t, 3, 2)
	ctx := context.Background()

	// Model 1 → replica set {1, 2}; provider 0 must hold nothing.
	f := flatten(t, 4)
	if err := fc.cli.Store(ctx, metaFor(f, 1, 1, 0.5), segsFor(f, model.Materialize(f, 1))); err != nil {
		t.Fatal(err)
	}
	for _, pi := range []int{1, 2} {
		if _, err := fc.provs[pi].GetMeta(1); err != nil {
			t.Errorf("replica provider %d missing model 1: %v", pi, err)
		}
	}
	if _, err := fc.provs[0].GetMeta(1); err == nil {
		t.Error("provider 0 holds model 1 outside its replica set")
	}

	// The catalog lists each model once despite R physical copies.
	ids, err := fc.cli.ListModels(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != 1 {
		t.Errorf("ListModels = %v, want [1]", ids)
	}
}

// TestReplicatedReadFailover is the kill-one-provider availability check:
// with R=3 over 3 providers and one of them partitioned, every read must
// complete through the surviving replicas with zero client-visible errors,
// the failover must show up in the metrics counters, and once the breaker
// opens the dead replica must be skipped rather than waited out. After the
// heal the deployment retires everything and must drain to zero on every
// replica.
func TestReplicatedReadFailover(t *testing.T) {
	fc := newReplicatedCluster(t, 3, 3)
	ctx := context.Background()

	// base 3 → home provider 0, child 4 → home provider 1; with R=3 both
	// live everywhere.
	storeDerived(t, fc.cli, 3, 4)
	fc.faults[0].SetPartitioned(true)

	for round := 0; round < 5; round++ {
		for _, id := range []ownermap.ModelID{3, 4} {
			meta, err := fc.cli.GetMeta(ctx, id)
			if err != nil {
				t.Fatalf("GetMeta(%d) round %d with provider 0 partitioned: %v", id, round, err)
			}
			if meta.Model != id {
				t.Fatalf("GetMeta(%d) returned model %d", id, meta.Model)
			}
			data, err := fc.cli.Load(ctx, id)
			if err != nil {
				t.Fatalf("Load(%d) round %d with provider 0 partitioned: %v", id, round, err)
			}
			if len(data.Segments) != data.Meta.Graph.NumVertices() {
				t.Fatalf("Load(%d): %d segments", id, len(data.Segments))
			}
		}
	}
	if got := fc.reg.Counter("client.read_failover").Load(); got == 0 {
		t.Error("no read failovers recorded despite a partitioned home provider")
	}
	// The partitioned provider must get routed around, either by the
	// breaker opening (replica_breaker_skip) or — now that replicas are
	// score-ranked — by its error-rate score demoting it before the
	// breaker ever accumulates enough consecutive failures to open.
	skips := fc.reg.Counter("client.replica_breaker_skip").Load()
	demotes := fc.reg.Counter("client.score_demote").Load()
	if skips+demotes == 0 {
		t.Errorf("partitioned replica never reordered: breaker_skip=%d score_demote=%d", skips, demotes)
	}

	// Writes need every replica: they must fail while one is down ...
	f := flatten(t, 4)
	if err := fc.cli.Store(ctx, metaFor(f, 5, 1, 0.4), segsFor(f, model.Materialize(f, 5))); err == nil {
		t.Fatal("store succeeded with a replica partitioned (all-replica writes must fail)")
	}

	// ... and work again after the heal, once the breaker re-closes.
	fc.faults[0].SetPartitioned(false)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := fc.cli.Stats(ctx); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("provider 0 did not recover after healing the partition")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Retire fan-out drains every replica: no refcount drift anywhere.
	for _, id := range []ownermap.ModelID{4, 3} {
		if _, err := fc.cli.Retire(ctx, id); err != nil {
			t.Fatalf("Retire(%d) after heal: %v", id, err)
		}
	}
	for pi, p := range fc.provs {
		st := p.Stats()
		if st.Models != 0 || st.Segments != 0 || st.LiveRefs != 0 {
			t.Errorf("provider %d did not drain: %+v", pi, *st)
		}
	}
}

// TestReplicatedRefcountsStayIdentical stores a derived model under R=2
// and checks the inherited pin is identical on both replicas of the base:
// fan-out with a shared ReqID must keep the copies bit-for-bit in sync.
func TestReplicatedRefcountsStayIdentical(t *testing.T) {
	fc := newReplicatedCluster(t, 4, 2)
	ctx := context.Background()

	// base 2 → {2, 3}, child 3 → {3, 0}; the child pins base's vertex 0 on
	// both of base's replicas.
	storeDerived(t, fc.cli, 2, 3)
	for _, pi := range []int{2, 3} {
		if got := fc.provs[pi].RefCount(2, 0); got != 2 {
			t.Errorf("provider %d: base vertex 0 refcount = %d, want 2", pi, got)
		}
	}

	// Retiring the child releases the pin on both replicas symmetrically.
	if _, err := fc.cli.Retire(ctx, 3); err != nil {
		t.Fatal(err)
	}
	for _, pi := range []int{2, 3} {
		if got := fc.provs[pi].RefCount(2, 0); got != 1 {
			t.Errorf("provider %d: base vertex 0 refcount = %d after retire, want 1", pi, got)
		}
	}
}

// shedConn fails with the breaker's shed error until its gate count is
// consumed, then answers — the shape of a recovering replica whose single
// half-open probe slot a concurrent read just took.
type shedConn struct {
	sheds int
	calls int
}

func (c *shedConn) Call(context.Context, string, rpc.Message) (rpc.Message, error) {
	c.calls++
	if c.calls <= c.sheds {
		return rpc.Message{}, fmt.Errorf("%w: shed-test", rpc.ErrUnavailable)
	}
	return rpc.Message{Meta: []byte("ok")}, nil
}
func (c *shedConn) Addr() string { return "shed" }
func (c *shedConn) Close() error { return nil }

// A read whose every replica failed transiently, with at least one
// failure being a breaker shed, retries the pass briefly instead of
// failing: the shed replica may be mid-recovery with its single probe
// slot taken by a concurrent read.
func TestReadRetriesAfterBreakerProbeRace(t *testing.T) {
	reg := metrics.NewRegistry()
	down := &hedgeTestConn{err: rpc.ErrInjected, score: -1} // hard down, transient
	recovering := &shedConn{sheds: 2}
	cli := New([]rpc.Conn{down, recovering}, WithReplicas(2), WithRegistry(reg))

	resp, err := cli.readCall(context.Background(), "op", ownermap.ModelID(0), rpc.Message{})
	if err != nil {
		t.Fatalf("read failed despite the shed clearing within the retry budget: %v", err)
	}
	if string(resp.Meta) != "ok" {
		t.Fatalf("resp = %q", resp.Meta)
	}
	if n := reg.Counter("client.shed_retry").Load(); n != 2 {
		t.Fatalf("client.shed_retry = %d, want 2", n)
	}

	// A genuinely dead set still fails once the bounded retries run out.
	reg2 := metrics.NewRegistry()
	cli2 := New([]rpc.Conn{&hedgeTestConn{err: rpc.ErrInjected, score: -1}, &shedConn{sheds: 1 << 30}},
		WithReplicas(2), WithRegistry(reg2))
	if _, err := cli2.readCall(context.Background(), "op", ownermap.ModelID(0), rpc.Message{}); err == nil {
		t.Fatal("read succeeded against a dead replica set")
	} else if !errors.Is(err, rpc.ErrUnavailable) {
		t.Fatalf("err = %v, want wrapped rpc.ErrUnavailable", err)
	}
	if n := reg2.Counter("client.shed_retry").Load(); n != shedRetries {
		t.Fatalf("client.shed_retry = %d, want %d (bounded)", n, shedRetries)
	}
}
