package client

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/kvstore"
	"repro/internal/model"
	"repro/internal/ownermap"
	"repro/internal/provider"
	"repro/internal/rpc"
	"repro/internal/tensor"
)

// countingConn wraps a Conn and counts Calls.
type countingConn struct {
	rpc.Conn
	calls *atomic.Int64
}

func (c *countingConn) Call(ctx context.Context, name string, req rpc.Message) (rpc.Message, error) {
	c.calls.Add(1)
	return c.Conn.Call(ctx, name, req)
}

func newCountedClient(t testing.TB) (*Client, *atomic.Int64) {
	t.Helper()
	net := rpc.NewInprocNet()
	p := provider.New(0, kvstore.NewMemKV(4))
	srv := rpc.NewServer()
	p.Register(srv)
	if err := net.Listen("p0", srv); err != nil {
		t.Fatal(err)
	}
	raw, err := net.Dial("p0")
	if err != nil {
		t.Fatal(err)
	}
	calls := &atomic.Int64{}
	return New([]rpc.Conn{&countingConn{Conn: raw, calls: calls}}), calls
}

func storeSample(t testing.TB, cli *Client, id ownermap.ModelID) (*model.Flat, model.WeightSet) {
	t.Helper()
	f := flatten(t, 4+int(id))
	ws := model.Materialize(f, uint64(id))
	if err := cli.Store(context.Background(), metaFor(f, id, uint64(id), 0.5), segsFor(f, ws)); err != nil {
		t.Fatal(err)
	}
	return f, ws
}

func TestPrefetchThenGetHitsCache(t *testing.T) {
	cli, calls := newCountedClient(t)
	ctx := context.Background()
	_, ws := storeSample(t, cli, 1)

	pf := NewPrefetcher(cli, 4)
	pf.Prefetch(ctx, 1)
	data, err := pf.Get(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := tensor.DecodeSet(data.Segments[1])
	if err != nil || !ts[0].Equal(ws[1][0]) {
		t.Fatalf("prefetched data wrong: %v", err)
	}
	before := calls.Load()
	// Second Get must be served from cache: zero new RPCs.
	if _, err := pf.Get(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != before {
		t.Errorf("cached Get issued %d RPCs", calls.Load()-before)
	}
	if pf.Len() != 1 {
		t.Errorf("Len = %d", pf.Len())
	}
}

func TestPrefetchMissFallsBack(t *testing.T) {
	cli, _ := newCountedClient(t)
	ctx := context.Background()
	storeSample(t, cli, 1)
	pf := NewPrefetcher(cli, 4)
	// No Prefetch call: Get must still work and populate the cache.
	if _, err := pf.Get(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if pf.Len() != 1 {
		t.Errorf("Len = %d after miss", pf.Len())
	}
}

func TestPrefetchFailureNotCached(t *testing.T) {
	cli, _ := newCountedClient(t)
	ctx := context.Background()
	pf := NewPrefetcher(cli, 4)
	pf.Prefetch(ctx, 404) // does not exist
	if _, err := pf.Get(ctx, 404); err == nil {
		t.Fatal("Get of missing model succeeded")
	}
	if pf.Len() != 0 {
		t.Errorf("failed fetch stayed cached: Len = %d", pf.Len())
	}
	// Store it now; the retry must succeed (no negative caching).
	f := flatten(t, 3)
	cli.Store(ctx, metaFor(f, 404, 404, 0.5), segsFor(f, model.Materialize(f, 1)))
	if _, err := pf.Get(ctx, 404); err != nil {
		t.Errorf("retry after store failed: %v", err)
	}
}

func TestPrefetchEviction(t *testing.T) {
	cli, _ := newCountedClient(t)
	ctx := context.Background()
	for id := ownermap.ModelID(1); id <= 3; id++ {
		storeSample(t, cli, id)
	}
	pf := NewPrefetcher(cli, 2)
	for id := ownermap.ModelID(1); id <= 3; id++ {
		pf.Prefetch(ctx, id)
	}
	if pf.Len() != 2 {
		t.Errorf("Len = %d, want capacity 2", pf.Len())
	}
	// The oldest (1) was evicted; Get still works via fallback.
	if _, err := pf.Get(ctx, 1); err != nil {
		t.Errorf("evicted Get failed: %v", err)
	}
}

func TestPrefetchSurvivesRetirement(t *testing.T) {
	cli, _ := newCountedClient(t)
	ctx := context.Background()
	_, ws := storeSample(t, cli, 1)
	pf := NewPrefetcher(cli, 2)
	pf.Prefetch(ctx, 1)
	if _, err := pf.Get(ctx, 1); err != nil { // wait for fetch
		t.Fatal(err)
	}
	if _, err := cli.Retire(ctx, 1); err != nil {
		t.Fatal(err)
	}
	// Cached snapshot still serves.
	data, err := pf.Get(ctx, 1)
	if err != nil {
		t.Fatalf("cached read after retirement: %v", err)
	}
	ts, _ := tensor.DecodeSet(data.Segments[1])
	if !ts[0].Equal(ws[1][0]) {
		t.Error("cached snapshot corrupted")
	}
	// After invalidation the model is really gone.
	pf.Invalidate(1)
	if _, err := pf.Get(ctx, 1); err == nil {
		t.Error("Get of retired+invalidated model succeeded")
	}
}

func TestGetVertices(t *testing.T) {
	cli, _ := newCountedClient(t)
	ctx := context.Background()
	f, ws := storeSample(t, cli, 1)
	pf := NewPrefetcher(cli, 2)
	meta, segs, err := pf.GetVertices(ctx, 1, []graph.VertexID{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if meta.Model != 1 {
		t.Error("meta wrong")
	}
	if segs[0] != nil {
		t.Error("unrequested vertex returned")
	}
	ts, err := tensor.DecodeSet(segs[1])
	if err != nil || !ts[0].Equal(ws[1][0]) {
		t.Error("vertex payload wrong")
	}
	_ = f
}

func TestConcurrentPrefetchAndGet(t *testing.T) {
	cli, _ := newCountedClient(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for id := ownermap.ModelID(1); id <= 8; id++ {
		storeSample(t, cli, id)
	}
	pf := NewPrefetcher(cli, 8)
	done := make(chan error, 16)
	for w := 0; w < 16; w++ {
		go func(w int) {
			for i := 0; i < 30; i++ {
				id := ownermap.ModelID(1 + (w+i)%8)
				if w%2 == 0 {
					pf.Prefetch(ctx, id)
				}
				if _, err := pf.Get(ctx, id); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < 16; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
