package client

// Client-side placement management. The client holds one placement.State
// (the current-epoch table plus, mid-migration, the previous one) and
// keeps it current three ways: the rebalancer drives transitions directly
// (SetPlacementState), providers answer evostore.placement with their view
// (SyncPlacement), and a provider rejecting a request with ErrWrongEpoch
// embeds its current table in the error text, which the read/write paths
// parse and adopt before retrying (refreshPlacement) — so a stale client
// self-updates off its first rejection instead of failing.

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/placement"
	"repro/internal/proto"
	"repro/internal/rpc"
)

// placementRetries bounds how often one logical call re-resolves its
// replica set after a wrong-epoch rejection. Two bumps can land
// back-to-back (drain then join); anything deeper than three is a
// misconfigured deployment, not a migration.
const placementRetries = 3

// Placement returns the client's active placement view.
func (c *Client) Placement() *placement.State { return c.place.Load() }

// PlacementTable returns the current-epoch table of the active view.
func (c *Client) PlacementTable() *placement.Table { return c.place.Load().Cur }

// SetPlacementState installs a placement view unconditionally after
// validating it. The rebalancer uses this to drive the arm → commit
// transitions, including the same-epoch dual→single commit that the
// monotone installState rule below would treat specially.
func (c *Client) SetPlacementState(cur, prev *placement.Table) error {
	st := &placement.State{Cur: cur, Prev: prev}
	if err := c.checkState(st); err != nil {
		return err
	}
	c.place.Store(st)
	return nil
}

// checkState rejects views the client cannot serve: no current table, or
// a member index with no connection behind it.
func (c *Client) checkState(st *placement.State) error {
	if st == nil || st.Cur == nil {
		return errors.New("placement view has no current table")
	}
	for _, t := range []*placement.Table{st.Cur, st.Prev} {
		if t == nil {
			continue
		}
		for _, m := range t.Members {
			if m >= len(c.conns) {
				return fmt.Errorf("placement member %d has no connection (client knows %d providers)", m, len(c.conns))
			}
		}
	}
	return nil
}

// installState adopts st if it postdates the active view: a higher
// current epoch always wins, and at equal epochs a committed (single)
// view supersedes the migrating (dual) one it concludes — providers only
// ever move single→dual with an epoch bump and dual→single within one.
// Reports whether the view changed.
func (c *Client) installState(st *placement.State) bool {
	if c.checkState(st) != nil {
		return false
	}
	for {
		old := c.place.Load()
		newer := st.Cur.Epoch > old.Cur.Epoch ||
			(st.Cur.Epoch == old.Cur.Epoch && old.Migrating() && !st.Migrating())
		if !newer {
			return false
		}
		if c.place.CompareAndSwap(old, st) {
			c.epochAdopts.Inc()
			return true
		}
	}
}

// SyncPlacement asks every provider for its placement view and adopts the
// newest one (highest current epoch; committed beats migrating within an
// epoch). Unreachable and unguarded providers are tolerated — only a
// total failure errors. Returns the view active after the sync.
func (c *Client) SyncPlacement(ctx context.Context) (*placement.State, error) {
	results := rpc.Broadcast(ctx, c.conns, proto.RPCPlacement, rpc.Message{})
	var best *placement.State
	var errs []error
	ok := 0
	for i, r := range results {
		if r.Err != nil {
			errs = append(errs, fmt.Errorf("provider %d: %w", i, r.Err))
			continue
		}
		st, err := placement.DecodeState(r.Resp.Meta)
		if err != nil {
			errs = append(errs, fmt.Errorf("provider %d: %w", i, err))
			continue
		}
		ok++
		if st == nil || st.Cur == nil {
			continue // unguarded provider: no opinion
		}
		if best == nil || st.Cur.Epoch > best.Cur.Epoch ||
			(st.Cur.Epoch == best.Cur.Epoch && best.Migrating() && !st.Migrating()) {
			best = st
		}
	}
	if ok == 0 && len(errs) > 0 {
		return c.place.Load(), fmt.Errorf("client: placement sync: %w", errors.Join(errs...))
	}
	if best != nil {
		c.installState(best)
	}
	return c.place.Load(), nil
}

// refreshPlacement is the wrong-epoch recovery path: prefer a full sync —
// which recovers the dual view mid-migration, something the single table
// embedded in a rejection cannot carry — and fall back to that embedded
// table when the sync fails or learns nothing. Reports whether the active
// view changed.
func (c *Client) refreshPlacement(ctx context.Context, t *placement.Table) bool {
	before := c.place.Load()
	if _, err := c.SyncPlacement(ctx); err == nil && c.place.Load() != before {
		return true
	}
	return c.adoptTable(t)
}

// adoptTable adopts the single-epoch table carried by a provider's
// wrong-epoch rejection, subject to the installState monotonicity rule.
func (c *Client) adoptTable(t *placement.Table) bool {
	if t == nil {
		return false
	}
	return c.installState(&placement.State{Cur: t})
}
