package client

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/ownermap"
	"repro/internal/placement"
	"repro/internal/proto"
	"repro/internal/rpc"
)

// methodFaultConn fails the first `fails` calls of one named RPC and
// passes everything else through — a surgical fault for exercising
// pushState's partial-failure handling without disturbing data traffic.
type methodFaultConn struct {
	rpc.Conn
	method string
	fails  atomic.Int64 // remaining injected failures; calls decrement
	hits   atomic.Int64 // total calls of method observed
}

func (f *methodFaultConn) Call(ctx context.Context, name string, req rpc.Message) (rpc.Message, error) {
	if name == f.method {
		f.hits.Add(1)
		if f.fails.Add(-1) >= 0 {
			return rpc.Message{}, fmt.Errorf("injected: %s dropped", name)
		}
	}
	return f.Conn.Call(ctx, name, req)
}

// faultyClient dials a client over ec's providers with conn[target]
// wrapped to fail RPCSetPlacement `fails` times.
func (ec *elasticCluster) faultyClient(t testing.TB, tbl *placement.Table, target int, fails int64) (*Client, *methodFaultConn) {
	t.Helper()
	conns := make([]rpc.Conn, len(ec.provs))
	var fc *methodFaultConn
	for i := range conns {
		c, err := ec.net.Dial(fmt.Sprintf("p%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if i == target {
			fc = &methodFaultConn{Conn: c, method: proto.RPCSetPlacement}
			fc.fails.Store(fails)
			conns[i] = fc
		} else {
			conns[i] = c
		}
	}
	return New(conns, WithPlacement(tbl), WithRegistry(ec.reg)), fc
}

// TestPushStatePartialFailureTyped pins the satellite-2 contract: when a
// required member never accepts the placement push, Rebalance fails with a
// *PushStateError naming exactly that straggler, the migration does not
// proceed (no provider committed the new single epoch), and re-running the
// same rebalance once the member heals converges the deployment.
func TestPushStatePartialFailureTyped(t *testing.T) {
	ec := newElasticCluster(t, 3, 1, 2)
	ctx := context.Background()
	for _, id := range []ownermap.ModelID{1, 2, 3, 4, 5, 6} {
		ec.store(t, ec.cli, id)
	}
	epoch0 := ec.cli.Placement().Cur
	next, err := epoch0.WithMember(3)
	if err != nil {
		t.Fatal(err)
	}

	// Provider 1 drops every placement push this client sends.
	cli, fc := ec.faultyClient(t, epoch0, 1, 1<<30)
	reb := NewRebalancer(cli)
	_, err = reb.Rebalance(ctx, next)
	if err == nil {
		t.Fatal("rebalance with unreachable member succeeded")
	}
	var pse *PushStateError
	if !errors.As(err, &pse) {
		t.Fatalf("error is %T (%v), want *PushStateError", err, err)
	}
	if !reflect.DeepEqual(pse.Stragglers, []int{1}) {
		t.Errorf("Stragglers = %v, want [1]", pse.Stragglers)
	}
	if pse.Epoch != next.Epoch {
		t.Errorf("PushStateError.Epoch = %d, want %d", pse.Epoch, next.Epoch)
	}
	if got := fc.hits.Load(); got < int64(pushStateAttempts) {
		t.Errorf("straggler retried %d times, want >= %d", got, pushStateAttempts)
	}
	// The failed arm must not commit anywhere: a provider either still
	// holds single epoch 0 (the straggler) or the dual {1,0} view — never
	// single epoch 1, which would reject the straggler's epoch-0 writes
	// while it cannot learn why. Dual is safe: reads and writes span both
	// epochs until the re-run converges or the operator backs out.
	for i, p := range ec.provs {
		st := p.PlacementState()
		if !st.Migrating() && st.Cur.Epoch != epoch0.Epoch {
			t.Errorf("provider %d committed single epoch %d after failed arm", i, st.Cur.Epoch)
		}
	}
	if st := ec.provs[1].PlacementState(); st.Migrating() || st.Cur.Epoch != epoch0.Epoch {
		t.Errorf("straggler provider 1 state = %v despite dropping every push", st)
	}
	// The client did not install the dual view either — its next attempt
	// takes the fresh-migration path.
	if cli.Placement().Migrating() {
		t.Error("client installed dual state despite failed arm")
	}

	// Heal and re-run: same target, full convergence.
	fc.fails.Store(0)
	stats, err := reb.Rebalance(ctx, next)
	if err != nil {
		t.Fatalf("healed rebalance: %v", err)
	}
	if stats.Epoch != next.Epoch {
		t.Errorf("stats.Epoch = %d, want %d", stats.Epoch, next.Epoch)
	}
	for i, p := range ec.provs {
		st := p.PlacementState()
		if st.Migrating() || st.Cur.Epoch != next.Epoch {
			t.Errorf("provider %d state = %v after healed rebalance", i, st)
		}
	}
	ec.cli.SetPlacementState(next, nil)
	for _, id := range []ownermap.ModelID{1, 2, 3, 4, 5, 6} {
		ec.assertConverged(t, id)
	}
}

// TestPushStateRetriesToConvergence pins the retry half: a member that
// drops the push transiently (fewer failures than pushState's retry
// budget) is converged by the retries and the migration completes with no
// error surfaced at all.
func TestPushStateRetriesToConvergence(t *testing.T) {
	ec := newElasticCluster(t, 3, 1, 2)
	ctx := context.Background()
	for _, id := range []ownermap.ModelID{1, 2, 3} {
		ec.store(t, ec.cli, id)
	}
	epoch0 := ec.cli.Placement().Cur
	next, err := epoch0.WithMember(3)
	if err != nil {
		t.Fatal(err)
	}

	// Two injected failures per push round out of pushStateAttempts: the
	// arm push eats both, the commit push runs clean.
	cli, fc := ec.faultyClient(t, epoch0, 2, 2)
	reb := NewRebalancer(cli)
	stats, err := reb.Rebalance(ctx, next)
	if err != nil {
		t.Fatalf("rebalance with transient push faults: %v", err)
	}
	if stats.Epoch != next.Epoch {
		t.Errorf("stats.Epoch = %d, want %d", stats.Epoch, next.Epoch)
	}
	if got := fc.hits.Load(); got < 3 {
		t.Errorf("faulted conn saw %d placement pushes, want >= 3 (2 drops + success)", got)
	}
	for i, p := range ec.provs {
		st := p.PlacementState()
		if st.Migrating() || st.Cur.Epoch != next.Epoch {
			t.Errorf("provider %d state = %v, want committed epoch %d", i, st, next.Epoch)
		}
	}
}
