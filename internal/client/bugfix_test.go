package client

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/kvstore"
	"repro/internal/model"
	"repro/internal/ownermap"
	"repro/internal/proto"
	"repro/internal/provider"
	"repro/internal/rpc"
)

// hookConn intercepts named RPCs before they reach the wrapped connection,
// so tests can fail (and observe) exactly one call site.
type hookConn struct {
	rpc.Conn
	hook func(name string) error // non-nil return fails the call
}

func (c *hookConn) Call(ctx context.Context, name string, req rpc.Message) (rpc.Message, error) {
	if c.hook != nil {
		if err := c.hook(name); err != nil {
			return rpc.Message{}, err
		}
	}
	return c.Conn.Call(ctx, name, req)
}

// newHookCluster builds an n-provider in-process deployment and returns
// the raw connections (for selective wrapping) plus the provider handles
// (for refcount assertions). wrap maps provider index → conn decorator
// (nil = passthrough).
func newHookCluster(t testing.TB, n int, wrap map[int]func(rpc.Conn) rpc.Conn, opts ...Option) ([]*provider.Provider, *Client) {
	t.Helper()
	net := rpc.NewInprocNet()
	provs := make([]*provider.Provider, n)
	conns := make([]rpc.Conn, n)
	for i := 0; i < n; i++ {
		provs[i] = provider.New(i, kvstore.NewMemKV(8))
		srv := rpc.NewServer()
		provs[i].Register(srv)
		addr := fmt.Sprintf("p%d", i)
		if err := net.Listen(addr, srv); err != nil {
			t.Fatal(err)
		}
		c, err := net.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		if w := wrap[i]; w != nil {
			c = w(c)
		}
		conns[i] = c
	}
	return provs, New(conns, opts...)
}

// derivedChildMeta builds metadata for child inheriting base's vertex 0
// (every other vertex is child-owned).
func derivedChildMeta(t testing.TB, f *model.Flat, base, child ownermap.ModelID) *proto.ModelMeta {
	t.Helper()
	baseMap := ownermap.New(base, 1, f.Graph.NumVertices())
	om, err := ownermap.Derive(baseMap, child, 2, f.Graph.NumVertices(), []graph.VertexID{0})
	if err != nil {
		t.Fatal(err)
	}
	return &proto.ModelMeta{Model: child, Seq: 2, Quality: 0.6, Graph: f.Graph, OwnerMap: om}
}

// TestStoreRollbackAfterCancel reproduces the refcount leak of a store
// whose consolidated write fails together with the caller's context: the
// rollback DecRefs must run detached from the dead context, or the pins
// taken by the preceding IncRefs leak forever.
func TestStoreRollbackAfterCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	wrap := map[int]func(rpc.Conn) rpc.Conn{
		1: func(c rpc.Conn) rpc.Conn {
			return &hookConn{Conn: c, hook: func(name string) error {
				if name == proto.RPCStoreModel {
					// The caller's deadline fires exactly as the bulk write
					// fails: the rollback must still go through.
					cancel()
					return fmt.Errorf("injected store failure")
				}
				return nil
			}}
		},
	}
	provs, cli := newHookCluster(t, 2, wrap)

	// base 2 → provider 0, child 3 → provider 1.
	f := flatten(t, 4)
	ws := model.Materialize(f, 1)
	if err := cli.Store(ctx, metaFor(f, 2, 1, 0.5), segsFor(f, ws)); err != nil {
		t.Fatal(err)
	}
	if got := provs[0].RefCount(2, 0); got != 1 {
		t.Fatalf("base vertex 0 refcount before derived store = %d, want 1", got)
	}

	meta := derivedChildMeta(t, f, 2, 3)
	err := cli.Store(ctx, meta, segsFor(f, model.Materialize(f, 2)))
	if err == nil {
		t.Fatal("store with failing StoreModel succeeded")
	}
	if got := provs[0].RefCount(2, 0); got != 1 {
		t.Fatalf("base vertex 0 refcount after failed store = %d, want 1 (pin leaked: rollback ran on a canceled context)", got)
	}
}

// TestRetirePartialFailureRunsAllLegs verifies a retire with one failing
// DecRef leg still decrements every other owner group, and that the error
// names exactly the leaked owners.
func TestRetirePartialFailureRunsAllLegs(t *testing.T) {
	wrap := map[int]func(rpc.Conn) rpc.Conn{
		0: func(c rpc.Conn) rpc.Conn {
			return &hookConn{Conn: c, hook: func(name string) error {
				if name == proto.RPCDecRef {
					return fmt.Errorf("injected dec_ref failure")
				}
				return nil
			}}
		},
	}
	provs, cli := newHookCluster(t, 2, wrap)
	ctx := context.Background()

	// base 2 → provider 0, child 3 → provider 1 (inherits base's vertex 0).
	f := flatten(t, 4)
	n := f.Graph.NumVertices()
	if err := cli.Store(ctx, metaFor(f, 2, 1, 0.5), segsFor(f, model.Materialize(f, 1))); err != nil {
		t.Fatal(err)
	}
	meta := derivedChildMeta(t, f, 2, 3)
	if err := cli.Store(ctx, meta, segsFor(f, model.Materialize(f, 2))); err != nil {
		t.Fatal(err)
	}

	freed, err := cli.Retire(ctx, 3)
	if err == nil {
		t.Fatal("retire with failing DecRef leg succeeded")
	}
	var pe *PartialRetireError
	if !errors.As(err, &pe) {
		t.Fatalf("retire error is %T (%v), want *PartialRetireError", err, err)
	}
	if len(pe.Leaked) != 1 || pe.Leaked[0].Owner != 2 {
		t.Fatalf("leaked owners = %+v, want exactly owner 2", pe.Leaked)
	}
	if !strings.Contains(err.Error(), "2(") {
		t.Errorf("error does not name the leaked owner: %v", err)
	}
	// The healthy leg (child's own vertices on provider 1) must have run.
	if int(freed) != n-1 {
		t.Errorf("freed = %d, want %d (the child-owned vertices)", freed, n-1)
	}
	for v := 1; v < n; v++ {
		if got := provs[1].RefCount(3, graph.VertexID(v)); got != 0 {
			t.Errorf("child vertex %d refcount = %d after retire, want 0 (leg skipped)", v, got)
		}
	}
	// The leaked pin is visible: base vertex 0 still carries the child's ref.
	if got := provs[0].RefCount(2, 0); got != 2 {
		t.Errorf("base vertex 0 refcount = %d, want 2 (the reported leak)", got)
	}
}

// TestStoreRejectsOversizedSegment lowers the wire limit and verifies a
// too-large segment fails the store up front — before any pins are taken —
// instead of silently truncating its length to uint32.
func TestStoreRejectsOversizedSegment(t *testing.T) {
	old := maxSegmentBytes
	maxSegmentBytes = 64
	defer func() { maxSegmentBytes = old }()

	provs, cli := newHookCluster(t, 2, nil)
	ctx := context.Background()

	f := flatten(t, 4)
	if err := cli.Store(ctx, metaFor(f, 2, 1, 0.5), segsFor(f, model.Materialize(f, 1))); err == nil {
		t.Fatal("store with oversized segment succeeded")
	} else if !strings.Contains(err.Error(), "wire limit") {
		t.Fatalf("unexpected error: %v", err)
	}
	if got := len(provs[0].ListModels()); got != 0 {
		t.Fatalf("oversized store left %d models behind", got)
	}

	// A derived store with an oversized self-owned segment must fail before
	// pinning the ancestor: validation precedes the IncRefs.
	maxSegmentBytes = old
	if err := cli.Store(ctx, metaFor(f, 2, 1, 0.5), segsFor(f, model.Materialize(f, 1))); err != nil {
		t.Fatal(err)
	}
	maxSegmentBytes = 64
	meta := derivedChildMeta(t, f, 2, 3)
	if err := cli.Store(ctx, meta, segsFor(f, model.Materialize(f, 2))); err == nil {
		t.Fatal("derived store with oversized segment succeeded")
	}
	if got := provs[0].RefCount(2, 0); got != 1 {
		t.Errorf("base vertex 0 refcount = %d after rejected store, want 1 (validation must precede pinning)", got)
	}
}

// TestPrefetcherConcurrentGetInvalidate hammers Get/Invalidate/Prefetch
// from many goroutines; run under -race this checks the cache's locking.
func TestPrefetcherConcurrentGetInvalidate(t *testing.T) {
	_, cli := newHookCluster(t, 2, nil)
	ctx := context.Background()
	ids := []ownermap.ModelID{1, 2, 3, 4}
	for _, id := range ids {
		f := flatten(t, 4+int(id))
		if err := cli.Store(ctx, metaFor(f, id, uint64(id), 0.5), segsFor(f, model.Materialize(f, uint64(id)))); err != nil {
			t.Fatal(err)
		}
	}
	pf := NewPrefetcher(cli, 2) // capacity below the working set forces evictions
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := ids[(w+i)%len(ids)]
				switch i % 3 {
				case 0:
					if _, err := pf.Get(ctx, id); err != nil {
						t.Errorf("Get(%d): %v", id, err)
						return
					}
				case 1:
					pf.Prefetch(ctx, id)
				default:
					pf.Invalidate(id)
				}
			}
		}(w)
	}
	wg.Wait()
}
