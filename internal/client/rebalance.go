package client

// Rebalancer drives a membership change end to end without failing a
// single request. A change is an epoch bump: given the next table (one
// member added or removed, same replication factor), the migration runs
// in five phases:
//
//  1. Arm. Push the dual view {Cur: next, Prev: old} to every provider
//     and install it locally. From here every client that touches the
//     deployment reads through both epochs (new set first, previous-epoch
//     owners as fallback) and writes through their union, so nothing is
//     lost or unreachable while data moves.
//  2. Migrate. List every model and converge each one whose replica set
//     changed across the union of its old and new sets, reusing the
//     anti-entropy machinery (digest comparison, journal union, payload
//     backfill): new owners receive metadata, refcounts and payloads;
//     tombstones propagate.
//  3. Converge. A second pass over the same models closes the window in
//     which a write landed on an old owner after pass 2 pulled its state:
//     once pass 2 has installed a model on its new owners, later deltas
//     apply there directly, so any stragglers are deltas journaled on old
//     owners mid-pass-2 — which pass 3 replays. After pass 3 the epochs
//     agree on every listed model.
//  4. Commit. Push the single view {Cur: next} everywhere and install it
//     locally. Old owners now reject writes with the typed wrong-epoch
//     error, which makes stale clients self-update and retry; the ReqID
//     dedup tables absorb the repeats.
//  5. Evict. Re-list (covering models stored during the migration) and
//     drop every model copy from providers that left its replica set.
//     Eviction is safe: a post-commit write can only land on current
//     members, so an evicted copy cannot resurrect.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/ownermap"
	"repro/internal/placement"
	"repro/internal/proto"
	"repro/internal/rpc"
)

// Rebalancer migrates a deployment from one placement epoch to the next.
// One migration runs at a time per deployment; the phases are convergent,
// so a failed migration can be re-run with the same target table.
type Rebalancer struct {
	c *Client
	r *Repairer
}

// NewRebalancer returns a Rebalancer over c's providers.
func NewRebalancer(c *Client) *Rebalancer {
	return &Rebalancer{c: c, r: NewRepairer(c)}
}

// SetPayloadBudget bounds the migration's payload bandwidth to bytesPerSec
// (0 removes the bound): phase 2/3 data movement is paced against a token
// bucket so a rebalance cannot saturate the fabric foreground reads run
// on. Placement pushes, listings and digests are not budgeted — only
// payload bytes, which dominate.
func (b *Rebalancer) SetPayloadBudget(bytesPerSec float64) {
	b.r.SetPayloadBudget(bytesPerSec)
}

// RebalanceStats summarizes one completed migration.
type RebalanceStats struct {
	Epoch    uint64        // the epoch migrated to
	Models   int           // models listed at migration start
	Migrated int           // models whose replica set changed and were converged
	Evicted  int           // model copies dropped from departed owners
	Elapsed  time.Duration // wall-clock time for the whole migration
}

func (s *RebalanceStats) String() string {
	return fmt.Sprintf("epoch %d: %d models, %d migrated, %d copies evicted in %v",
		s.Epoch, s.Models, s.Migrated, s.Evicted, s.Elapsed.Round(time.Millisecond))
}

// Rebalance migrates the deployment to next. next must be the successor
// epoch of the client's current table (build it with Table.WithMember,
// WithoutMember or Next); re-running a migration that previously failed
// partway — the client is still dual on the same target — resumes it.
func (b *Rebalancer) Rebalance(ctx context.Context, next *placement.Table) (*RebalanceStats, error) {
	// One migration at a time per client: a controller cycle racing a
	// manual push serializes here, and the loser fails the successor-epoch
	// check below instead of double-arming the deployment.
	b.c.rebalanceMu.Lock()
	defer b.c.rebalanceMu.Unlock()

	start := time.Now()
	cur := b.c.Placement()
	old := cur.Cur
	switch {
	case next == nil:
		return nil, errors.New("client: rebalance: nil target table")
	case cur.Migrating() && next.Equal(cur.Cur):
		old = cur.Prev // resuming a failed migration to the same target
	case cur.Migrating():
		return nil, fmt.Errorf("client: rebalance: migration to %v already in progress", cur.Cur)
	case next.Epoch != old.Epoch+1:
		return nil, fmt.Errorf("client: rebalance: target %v is not the successor of %v", next, old)
	}
	dual := &placement.State{Cur: next, Prev: old}
	if err := b.c.checkState(dual); err != nil {
		return nil, fmt.Errorf("client: rebalance: %w", err)
	}

	// Phase 1: arm. Every member of either epoch must hold the dual view
	// before any data moves; non-members (spares, departed providers from
	// older epochs) are told best-effort so their guards stay current.
	if err := b.pushState(ctx, dual); err != nil {
		return nil, fmt.Errorf("client: rebalance: arming epoch %d: %w", next.Epoch, err)
	}
	if err := b.c.SetPlacementState(next, old); err != nil {
		return nil, fmt.Errorf("client: rebalance: %w", err)
	}

	// Phase 2: migrate every model whose replica set changed, across the
	// union of its old and new sets.
	ids, err := b.r.listAll(ctx)
	if err != nil {
		return nil, fmt.Errorf("client: rebalance: %w", err)
	}
	var moves []ownermap.ModelID
	for _, id := range ids {
		if !equalInts(old.ReplicaSet(id), next.ReplicaSet(id)) {
			moves = append(moves, id)
		}
	}
	for pass := 0; pass < 2; pass++ {
		for _, id := range moves {
			if _, err := b.r.repairSet(ctx, id, dual.WriteSet(id)); err != nil {
				return nil, fmt.Errorf("client: rebalance: migrating model %d (pass %d): %w", id, pass+1, err)
			}
		}
		// Phase 3 is the second pass: it replays any refcount deltas that
		// were journaled on old owners while the first pass was copying.
	}

	// Phase 4: commit the new epoch everywhere.
	single := &placement.State{Cur: next}
	if err := b.pushState(ctx, single); err != nil {
		return nil, fmt.Errorf("client: rebalance: committing epoch %d: %w", next.Epoch, err)
	}
	if err := b.c.SetPlacementState(next, nil); err != nil {
		return nil, fmt.Errorf("client: rebalance: %w", err)
	}

	// Phase 5: evict. Re-list to cover models stored mid-migration; their
	// dual-mode writes also landed on old owners.
	post, err := b.r.listAll(ctx)
	if err != nil {
		return nil, fmt.Errorf("client: rebalance: %w", err)
	}
	evicted := 0
	for _, id := range post {
		newSet := next.ReplicaSet(id)
		for _, pi := range old.ReplicaSet(id) {
			if containsInt(newSet, pi) {
				continue
			}
			resp, err := b.c.conns[pi].Call(ctx, proto.RPCEvict, rpc.Message{Meta: proto.EncodeModelID(id)})
			if err != nil {
				return nil, fmt.Errorf("client: rebalance: evicting model %d from provider %d: %w", id, pi, err)
			}
			if dropped, err := proto.DecodeU64(resp.Meta); err == nil && dropped > 0 {
				evicted++
			}
		}
	}

	return &RebalanceStats{
		Epoch:    next.Epoch,
		Models:   len(ids),
		Migrated: len(moves),
		Evicted:  evicted,
		Elapsed:  time.Since(start),
	}, nil
}

// PushStateError reports a placement push that failed to reach every
// required member: after retries, the providers in Stragglers still do not
// hold the pushed state, while the rest of the deployment does. The
// migration must not proceed past this split — re-run Rebalance with the
// same target once the stragglers are reachable; the resume path converges
// them (providers treat re-pushes of the same or older epochs as no-ops).
type PushStateError struct {
	Epoch      uint64  // epoch of the state being pushed
	Stragglers []int   // required providers that never accepted it
	errs       []error // one failure per straggler, same order
}

func (e *PushStateError) Error() string {
	return fmt.Sprintf("placement push for epoch %d incomplete: providers %v still on the old state: %v",
		e.Epoch, e.Stragglers, errors.Join(e.errs...))
}

// Unwrap exposes the per-straggler failures to errors.Is/As.
func (e *PushStateError) Unwrap() []error { return e.errs }

// pushStateAttempts bounds how many rounds pushState retries required
// members that failed the broadcast before giving up with a typed error.
const pushStateAttempts = 4

// pushState installs st on every provider. Members of any epoch in st
// must accept (they enforce the write guard and serve the data being
// moved); pushes to non-member connections are best-effort.
//
// A partial push is the dangerous outcome: some members armed on the new
// state, others still guarding the old one, and writes splitting across
// the two views. Failed required members are therefore retried to
// convergence — installs are idempotent, providers ignore stale epochs —
// and if any still fail after pushStateAttempts rounds, the caller gets a
// *PushStateError naming them instead of a flat error join, so operators
// know exactly which providers hold the deployment back.
func (b *Rebalancer) pushState(ctx context.Context, st *placement.State) error {
	required := make(map[int]bool)
	for _, t := range []*placement.Table{st.Cur, st.Prev} {
		if t == nil {
			continue
		}
		for _, m := range t.Members {
			required[m] = true
		}
	}
	req := rpc.Message{Meta: placement.EncodeState(st)}
	results := rpc.Broadcast(ctx, b.c.conns, proto.RPCSetPlacement, req)
	failed := make(map[int]error)
	for i, r := range results {
		if r.Err != nil && required[i] {
			failed[i] = r.Err
		}
	}
	for attempt := 1; attempt < pushStateAttempts && len(failed) > 0; attempt++ {
		select {
		case <-time.After(time.Duration(attempt) * 5 * time.Millisecond):
		case <-ctx.Done():
			return b.pushStateError(st, failed)
		}
		for pi := range failed {
			if _, err := b.c.conns[pi].Call(ctx, proto.RPCSetPlacement, req); err != nil {
				failed[pi] = err
			} else {
				delete(failed, pi)
			}
		}
	}
	if len(failed) == 0 {
		return nil
	}
	return b.pushStateError(st, failed)
}

func (b *Rebalancer) pushStateError(st *placement.State, failed map[int]error) error {
	e := &PushStateError{Epoch: st.Cur.Epoch}
	for pi := range failed {
		e.Stragglers = append(e.Stragglers, pi)
	}
	sort.Ints(e.Stragglers)
	for _, pi := range e.Stragglers {
		e.errs = append(e.errs, fmt.Errorf("provider %d: %w", pi, failed[pi]))
	}
	return e
}

// equalInts reports whether two int slices are element-wise equal.
func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// containsInt reports whether s contains v.
func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
