package client

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/ownermap"
	"repro/internal/rpc"
)

// hedgeTestConn is a scripted replica for hedging tests: per-call delay,
// optional fixed error, and optional score/latency reporting.
type hedgeTestConn struct {
	delay time.Duration
	err   error
	score float64 // reported when >= 0
	p95   time.Duration

	calls atomic.Int64
}

func (c *hedgeTestConn) Call(ctx context.Context, name string, req rpc.Message) (rpc.Message, error) {
	c.calls.Add(1)
	if c.delay > 0 {
		t := time.NewTimer(c.delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return rpc.Message{}, ctx.Err()
		}
	}
	if c.err != nil {
		return rpc.Message{}, c.err
	}
	return rpc.Message{Meta: []byte("ok")}, nil
}
func (c *hedgeTestConn) Addr() string { return "hedge-test" }
func (c *hedgeTestConn) Close() error { return nil }
func (c *hedgeTestConn) Score() float64 {
	if c.score >= 0 {
		return c.score
	}
	return 1
}
func (c *hedgeTestConn) LatencyPercentile(float64) time.Duration { return c.p95 }

func TestHedgeWinsOverSlowPrimary(t *testing.T) {
	reg := metrics.NewRegistry()
	primary := &hedgeTestConn{delay: 300 * time.Millisecond, score: -1}
	secondary := &hedgeTestConn{delay: time.Millisecond, score: -1}
	cli := New([]rpc.Conn{primary, secondary}, WithReplicas(2), WithRegistry(reg),
		WithHedgedReads(5*time.Millisecond, 100))

	start := time.Now()
	resp, err := cli.readCall(context.Background(), "op", ownermap.ModelID(0), rpc.Message{})
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Meta) != "ok" {
		t.Fatalf("resp = %q", resp.Meta)
	}
	if elapsed := time.Since(start); elapsed > 150*time.Millisecond {
		t.Fatalf("hedged read took %v; the hedge should have won at ~6ms", elapsed)
	}
	if n := reg.Counter("client.hedged_read").Load(); n != 1 {
		t.Fatalf("client.hedged_read = %d, want 1", n)
	}
	if n := reg.Counter("client.hedge_won").Load(); n != 1 {
		t.Fatalf("client.hedge_won = %d, want 1", n)
	}
	if n := reg.Counter("client.hedge_cancelled").Load(); n != 1 {
		t.Fatalf("client.hedge_cancelled = %d, want 1 (the abandoned primary)", n)
	}
}

func TestHedgeBudgetExhaustedReadStillSucceeds(t *testing.T) {
	reg := metrics.NewRegistry()
	// A 1/s budget affords exactly one hedge up front (a fresh bucket
	// floors its fill at one op); every slow read after that must run
	// un-hedged until the bucket refills.
	primary := &hedgeTestConn{delay: 40 * time.Millisecond, score: -1}
	secondary := &hedgeTestConn{delay: time.Millisecond, score: -1}
	cli := New([]rpc.Conn{primary, secondary}, WithReplicas(2), WithRegistry(reg),
		WithHedgedReads(time.Millisecond, 1))

	for i := 0; i < 3; i++ {
		resp, err := cli.readCall(context.Background(), "op", ownermap.ModelID(0), rpc.Message{})
		if err != nil {
			t.Fatal(err)
		}
		if string(resp.Meta) != "ok" {
			t.Fatalf("read %d: resp = %q", i, resp.Meta)
		}
	}
	if n := reg.Counter("client.hedged_read").Load(); n != 1 {
		t.Fatalf("client.hedged_read = %d, want 1 (initial token only)", n)
	}
	if got := secondary.calls.Load(); got != 1 {
		t.Fatalf("secondary saw %d calls, want 1", got)
	}
}

func TestHedgeTransientFailureFailsOverImmediately(t *testing.T) {
	reg := metrics.NewRegistry()
	primary := &hedgeTestConn{err: rpc.ErrInjected, score: -1} // fails fast, transient
	secondary := &hedgeTestConn{delay: time.Millisecond, score: -1}
	cli := New([]rpc.Conn{primary, secondary}, WithReplicas(2), WithRegistry(reg),
		WithHedgedReads(time.Hour, 100)) // hedge timer can never fire

	start := time.Now()
	if _, err := cli.readCall(context.Background(), "op", ownermap.ModelID(0), rpc.Message{}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("failover took %v; must not wait for the hedge delay", elapsed)
	}
	if n := reg.Counter("client.hedged_read").Load(); n != 0 {
		t.Fatalf("client.hedged_read = %d, want 0 (failover is free)", n)
	}
	if n := reg.Counter("client.read_failover").Load(); n != 1 {
		t.Fatalf("client.read_failover = %d, want 1", n)
	}
}

func TestHedgeAuthoritativeErrorSettles(t *testing.T) {
	reg := metrics.NewRegistry()
	// Any permanently-classified error is authoritative to the read path;
	// ErrFrameTooLarge is the easiest to synthesize without a server.
	authoritative := fmt.Errorf("%w: model not found", rpc.ErrFrameTooLarge)
	primary := &hedgeTestConn{delay: 500 * time.Millisecond, score: -1}
	secondary := &hedgeTestConn{delay: time.Millisecond, err: authoritative, score: -1}
	cli := New([]rpc.Conn{primary, secondary}, WithReplicas(2), WithRegistry(reg),
		WithHedgedReads(2*time.Millisecond, 100))

	start := time.Now()
	_, err := cli.readCall(context.Background(), "op", ownermap.ModelID(0), rpc.Message{})
	if err == nil {
		t.Fatal("want authoritative error, got success")
	}
	if !errors.Is(err, authoritative) {
		t.Fatalf("err = %v, want wrapped authoritative cause", err)
	}
	if elapsed := time.Since(start); elapsed > 400*time.Millisecond {
		t.Fatalf("authoritative settle took %v; must not wait out the slow primary", elapsed)
	}
}

// flappingScoreConn reports a randomly flapping health/score so readOrder
// ranks over values that change under it.
type flappingScoreConn struct {
	healthy atomic.Bool
	score   atomic.Int64 // score x1000
}

func (c *flappingScoreConn) Call(context.Context, string, rpc.Message) (rpc.Message, error) {
	return rpc.Message{Meta: []byte("ok")}, nil
}
func (c *flappingScoreConn) Addr() string   { return "flap" }
func (c *flappingScoreConn) Close() error   { return nil }
func (c *flappingScoreConn) Healthy() bool  { return c.healthy.Load() }
func (c *flappingScoreConn) Score() float64 { return float64(c.score.Load()) / 1000 }

// Satellite (-race): breakers flapping and scores changing while
// readOrder ranks must neither panic nor drop replicas from the order.
func TestReadOrderScoreFlappingRace(t *testing.T) {
	const n = 5
	conns := make([]rpc.Conn, n)
	flaps := make([]*flappingScoreConn, n)
	for i := range conns {
		f := &flappingScoreConn{}
		f.healthy.Store(true)
		f.score.Store(1000)
		conns[i] = f
		flaps[i] = f
	}
	cli := New(conns, WithReplicas(3), WithRegistry(metrics.NewRegistry()))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				f := flaps[rng.Intn(n)]
				f.healthy.Store(rng.Intn(2) == 0)
				f.score.Store(rng.Int63n(1001))
			}
		}(int64(g + 1))
	}
	var readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func(seed int64) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 2000; i++ {
				id := ownermap.ModelID(rng.Intn(64))
				order := cli.readOrder(id)
				want := len(cli.ReplicaSet(id))
				if len(order) != want {
					panic(fmt.Sprintf("readOrder(%d) returned %d replicas, want %d", id, len(order), want))
				}
				seen := make(map[int]bool, len(order))
				for _, pi := range order {
					if seen[pi] {
						panic(fmt.Sprintf("readOrder(%d) duplicated provider %d: %v", id, pi, order))
					}
					seen[pi] = true
				}
			}
		}(int64(g + 100))
	}
	readers.Wait()
	close(stop)
	wg.Wait()
}

// Score-ranked ordering: with equal breaker health, the higher-scoring
// replica leads even when placement prefers the other.
func TestReadOrderRanksByScore(t *testing.T) {
	gray := &hedgeTestConn{score: 0.05}
	healthy := &hedgeTestConn{score: 0.9}
	cli := New([]rpc.Conn{gray, healthy}, WithReplicas(2), WithRegistry(metrics.NewRegistry()))
	// Model 0: home provider 0 (gray). Score ranking must flip the order.
	order := cli.readOrder(ownermap.ModelID(0))
	if len(order) != 2 || order[0] != 1 || order[1] != 0 {
		t.Fatalf("readOrder = %v, want [1 0] (score 0.9 before 0.05)", order)
	}
	// Equal scores keep placement order (home first).
	gray.score = 0.9
	order = cli.readOrder(ownermap.ModelID(0))
	if len(order) != 2 || order[0] != 0 {
		t.Fatalf("readOrder with equal scores = %v, want home provider 0 first", order)
	}
}
