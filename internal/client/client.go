// Package client implements the EvoStore client library: the application-
// side half of the repository. It maps model IDs to providers with static
// hashing, consolidates modified tensors into single bulk writes, follows
// owner maps to scatter partial reads across providers in parallel,
// broadcasts collective LCP queries and reduces their results, and drives
// distributed retirement (metadata removal + reference-count decrements).
//
// Paper counterpart: the EvoStore client library of §4.1 linked into every
// NAS worker.
//
// Contracts:
//   - Thread safety: Client and Prefetcher are safe for concurrent use;
//     Client itself is stateless beyond the connection slice.
//   - Idempotency: the client stamps every mutating request (StoreModel,
//     IncRef, DecRef, Retire) with a process-unique ReqID, so connections
//     wrapped with the resilient middleware may retry them safely — the
//     provider answers a retried, already-executed request from its dedup
//     table. Plain reads carry no ReqID; they are idempotent as-is.
//   - Fault tolerance: collective queries (QueryLCP) tolerate degraded
//     providers; point reads and mutations surface the failure, annotated
//     with the provider index, for the resilience layer or caller to act
//     on.
package client

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/ownermap"
	"repro/internal/proto"
	"repro/internal/rpc"
)

// Request IDs deduplicate retried mutations on providers. The high 32
// bits are drawn once per process, the low 32 increment per request;
// collisions would need two clients sharing the random half inside one
// provider's bounded dedup window, which is vanishingly unlikely.
var (
	reqIDHi  = rand.Uint64() << 32
	reqIDSeq atomic.Uint64
)

// nextReqID returns a fresh nonzero request ID.
func nextReqID() uint64 {
	for {
		if id := reqIDHi | (reqIDSeq.Add(1) & 0xffffffff); id != 0 {
			return id
		}
	}
}

// Client talks to a fixed set of providers. Index i of conns is provider i;
// model IDs are mapped to providers by static hashing (paper §4.1).
type Client struct {
	conns []rpc.Conn
}

// New wraps provider connections. The slice order defines provider IDs and
// must match across all clients of the same deployment.
func New(conns []rpc.Conn) *Client {
	if len(conns) == 0 {
		panic("client: need at least one provider connection")
	}
	return &Client{conns: conns}
}

// NumProviders returns the deployment size.
func (c *Client) NumProviders() int { return len(c.conns) }

// HomeProvider returns the provider index a model ID hashes to.
func (c *Client) HomeProvider(id ownermap.ModelID) int {
	return int(uint64(id) % uint64(len(c.conns)))
}

func (c *Client) home(id ownermap.ModelID) rpc.Conn {
	return c.conns[c.HomeProvider(id)]
}

// ModelData is a fully resolved model: metadata plus one consolidated
// tensor segment per vertex (empty for parameter-free leaves).
type ModelData struct {
	Meta     *proto.ModelMeta
	Segments [][]byte
}

// ownerGroups partitions a model's vertices by owning model, ascending.
func ownerGroups(om *ownermap.Map) []ownermap.OwnerGroup { return om.Owners() }

// --- store ---------------------------------------------------------------------

// Store publishes a model. segments must hold one entry per vertex of
// meta.Graph; only the entries of vertices meta.OwnerMap assigns to the
// model itself are shipped (the modified tensors) — inherited entries are
// ignored and may be nil.
//
// The call first pins all inherited segments by incrementing their
// reference counts on the owners' providers (in parallel), then sends one
// consolidated write to the model's home provider. Pinning first means a
// concurrent retirement of the ancestor can never free tensors this model
// now depends on; if pinning fails the store is aborted and already-taken
// pins are rolled back.
func (c *Client) Store(ctx context.Context, meta *proto.ModelMeta, segments [][]byte) error {
	n := meta.Graph.NumVertices()
	if meta.OwnerMap.Len() != n || len(segments) != n {
		return fmt.Errorf("client: store %d: graph %d vertices, owner map %d, segments %d",
			meta.Model, n, meta.OwnerMap.Len(), len(segments))
	}

	// Pin inherited segments, grouped by owner.
	groups := ownerGroups(meta.OwnerMap)
	var pinned []ownermap.OwnerGroup
	for _, g := range groups {
		if g.Owner == meta.Model {
			continue
		}
		if err := c.refCall(ctx, proto.RPCIncRef, g.Owner, g.Vertices); err != nil {
			for _, undo := range pinned {
				c.refCall(ctx, proto.RPCDecRef, undo.Owner, undo.Vertices) //nolint:errcheck // best-effort rollback
			}
			return fmt.Errorf("client: store %d: pinning inherited tensors of %d: %w", meta.Model, g.Owner, err)
		}
		pinned = append(pinned, g)
	}

	// Consolidate self-owned segments into one bulk payload.
	var table []proto.SegmentRef
	var bulk []byte
	for v := 0; v < n; v++ {
		e := meta.OwnerMap.Entries[v]
		if e.Owner != meta.Model {
			continue
		}
		seg := segments[v]
		table = append(table, proto.SegmentRef{Vertex: graph.VertexID(v), Length: uint32(len(seg))})
		bulk = append(bulk, seg...)
	}
	req := &proto.StoreModelReq{
		Model:    meta.Model,
		Seq:      meta.Seq,
		Quality:  meta.Quality,
		Graph:    meta.Graph,
		OwnerMap: meta.OwnerMap,
		Segments: table,
		ReqID:    nextReqID(),
	}
	_, err := c.home(meta.Model).Call(ctx, proto.RPCStoreModel, rpc.Message{Meta: req.Encode(), Bulk: bulk})
	if err != nil {
		for _, undo := range pinned {
			c.refCall(ctx, proto.RPCDecRef, undo.Owner, undo.Vertices) //nolint:errcheck // best-effort rollback
		}
		return fmt.Errorf("client: store %d: %w", meta.Model, err)
	}
	return nil
}

func (c *Client) refCall(ctx context.Context, name string, owner ownermap.ModelID, vs []graph.VertexID) error {
	req := &proto.RefReq{Owner: owner, Vertices: vs, ReqID: nextReqID()}
	_, err := c.home(owner).Call(ctx, name, rpc.Message{Meta: req.Encode()})
	return err
}

// --- load ----------------------------------------------------------------------

// GetMeta fetches a model's catalog entry from its home provider.
func (c *Client) GetMeta(ctx context.Context, id ownermap.ModelID) (*proto.ModelMeta, error) {
	resp, err := c.home(id).Call(ctx, proto.RPCGetMeta, rpc.Message{Meta: proto.EncodeModelID(id)})
	if err != nil {
		return nil, fmt.Errorf("client: get_meta %d: %w", id, err)
	}
	return proto.DecodeModelMeta(resp.Meta)
}

// Load reconstructs a whole model: one GetMeta to the home provider, then
// one parallel bulk read per (owner → provider) group following the owner
// map. Lineage depth never adds round trips.
func (c *Client) Load(ctx context.Context, id ownermap.ModelID) (*ModelData, error) {
	meta, err := c.GetMeta(ctx, id)
	if err != nil {
		return nil, err
	}
	segs, err := c.readByOwner(ctx, meta.OwnerMap, nil)
	if err != nil {
		return nil, fmt.Errorf("client: load %d: %w", id, err)
	}
	return &ModelData{Meta: meta, Segments: segs}, nil
}

// LoadVertices reads only the given vertices of a model (the partial-read
// primitive behind transfer learning): tensors are fetched from their
// owners' providers in parallel. The result slice is indexed by vertex ID
// with nil entries for vertices that were not requested.
func (c *Client) LoadVertices(ctx context.Context, meta *proto.ModelMeta, vertices []graph.VertexID) ([][]byte, error) {
	want := make(map[graph.VertexID]bool, len(vertices))
	for _, v := range vertices {
		if int(v) >= meta.OwnerMap.Len() {
			return nil, fmt.Errorf("client: load %d: vertex %d out of range", meta.Model, v)
		}
		want[v] = true
	}
	return c.readByOwner(ctx, meta.OwnerMap, want)
}

// readByOwner groups vertices by owner and issues the per-provider bulk
// reads concurrently. want==nil selects every vertex.
func (c *Client) readByOwner(ctx context.Context, om *ownermap.Map, want map[graph.VertexID]bool) ([][]byte, error) {
	segs := make([][]byte, om.Len())
	groups := ownerGroups(om)
	var wg sync.WaitGroup
	errs := make([]error, len(groups))
	var mu sync.Mutex // guards segs writes (distinct indices, but keep the race detector certain)
	for gi, g := range groups {
		vs := g.Vertices
		if want != nil {
			vs = nil
			for _, v := range g.Vertices {
				if want[v] {
					vs = append(vs, v)
				}
			}
		}
		if len(vs) == 0 {
			continue
		}
		wg.Add(1)
		go func(gi int, owner ownermap.ModelID, vs []graph.VertexID) {
			defer wg.Done()
			req := &proto.ReadSegmentsReq{Owner: owner, Vertices: vs}
			resp, err := c.home(owner).Call(ctx, proto.RPCReadSegments, rpc.Message{Meta: req.Encode()})
			if err != nil {
				errs[gi] = err
				return
			}
			table, err := proto.DecodeSegTable(resp.Meta)
			if err != nil {
				errs[gi] = err
				return
			}
			parts, err := proto.SplitBulk(table, resp.Bulk)
			if err != nil {
				errs[gi] = err
				return
			}
			mu.Lock()
			for i, ref := range table {
				segs[ref.Vertex] = parts[i]
			}
			mu.Unlock()
		}(gi, g.Owner, vs)
	}
	wg.Wait()
	// Annotate each failed leg with the provider it targeted: in a fan-out
	// the interesting question is WHICH provider broke, and a resilient
	// wrapper's last error alone doesn't say.
	var failed []error
	for gi, err := range errs {
		if err != nil {
			failed = append(failed,
				fmt.Errorf("owner %d on provider %d: %w", groups[gi].Owner, c.HomeProvider(groups[gi].Owner), err))
		}
	}
	if len(failed) > 0 {
		return nil, errors.Join(failed...)
	}
	return segs, nil
}

// --- collective LCP query ----------------------------------------------------------

// QueryLCP broadcasts the candidate architecture to every provider and
// reduces the local best matches to the global best (paper Algorithm 1 +
// the map-reduce-style collective of §4.1). found is false when no stored
// model shares any prefix with g.
func (c *Client) QueryLCP(ctx context.Context, g *graph.Compact, exclude []ownermap.ModelID) (*proto.LCPResult, bool, error) {
	return c.QueryLCPReq(ctx, &proto.LCPQueryReq{Graph: g, Exclude: exclude})
}

// QueryLCPReq is QueryLCP with a fully specified request (exclusions,
// recency preference).
func (c *Client) QueryLCPReq(ctx context.Context, req *proto.LCPQueryReq) (*proto.LCPResult, bool, error) {
	msg := rpc.Message{Meta: req.Encode()}
	results := rpc.Broadcast(ctx, c.conns, proto.RPCLCPQuery, msg)

	best := &proto.LCPResult{}
	var firstErr error
	okCount := 0
	for _, r := range results {
		if r.Err != nil {
			if firstErr == nil {
				firstErr = r.Err
			}
			continue
		}
		res, err := proto.DecodeLCPResult(r.Resp.Meta)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		okCount++
		if req.PreferRecent {
			if res.BetterRecent(best) {
				best = res
			}
		} else if res.Better(best) {
			best = res
		}
	}
	if okCount == 0 && firstErr != nil {
		return nil, false, fmt.Errorf("client: lcp query: %w", firstErr)
	}
	return best, best.Found, nil
}

// --- retire --------------------------------------------------------------------------

// Retire removes a model: its metadata disappears from the home provider
// immediately, then the reference counts of every segment its owner map
// references are decremented on the owning providers in parallel. It
// returns the number of segments actually freed cluster-wide.
func (c *Client) Retire(ctx context.Context, id ownermap.ModelID) (uint64, error) {
	rreq := &proto.RetireReq{Model: id, ReqID: nextReqID()}
	resp, err := c.home(id).Call(ctx, proto.RPCRetire, rpc.Message{Meta: rreq.Encode()})
	if err != nil {
		return 0, fmt.Errorf("client: retire %d: %w", id, err)
	}
	om, _, err := ownermap.Decode(resp.Meta)
	if err != nil {
		return 0, fmt.Errorf("client: retire %d: decoding owner map: %w", id, err)
	}

	groups := ownerGroups(om)
	freed := make([]uint64, len(groups))
	errs := make([]error, len(groups))
	var wg sync.WaitGroup
	for gi, g := range groups {
		wg.Add(1)
		go func(gi int, owner ownermap.ModelID, vs []graph.VertexID) {
			defer wg.Done()
			req := &proto.RefReq{Owner: owner, Vertices: vs, ReqID: nextReqID()}
			resp, err := c.home(owner).Call(ctx, proto.RPCDecRef, rpc.Message{Meta: req.Encode()})
			if err != nil {
				errs[gi] = err
				return
			}
			freed[gi], errs[gi] = proto.DecodeU64(resp.Meta)
		}(gi, g.Owner, g.Vertices)
	}
	wg.Wait()
	var total uint64
	for gi := range groups {
		if errs[gi] != nil {
			return total, fmt.Errorf("client: retire %d: dec_ref on owner %d: %w", id, groups[gi].Owner, errs[gi])
		}
		total += freed[gi]
	}
	return total, nil
}

// --- provenance ------------------------------------------------------------------------

// Lineage returns the chain of ancestors that contributed tensors to the
// model, oldest first, ending with the model itself. It needs exactly one
// metadata fetch: the owner map is self-contained (paper §4.1).
func (c *Client) Lineage(ctx context.Context, id ownermap.ModelID) ([]ownermap.ModelID, error) {
	meta, err := c.GetMeta(ctx, id)
	if err != nil {
		return nil, err
	}
	return meta.OwnerMap.Lineage(), nil
}

// CommonAncestor returns the most recent common contributing ancestor of
// two models, resolved from their two owner maps alone.
func (c *Client) CommonAncestor(ctx context.Context, a, b ownermap.ModelID) (ownermap.ModelID, bool, error) {
	ma, err := c.GetMeta(ctx, a)
	if err != nil {
		return 0, false, err
	}
	mb, err := c.GetMeta(ctx, b)
	if err != nil {
		return 0, false, err
	}
	e, ok := ownermap.MostRecentCommonOwner(ma.OwnerMap, mb.OwnerMap)
	return e.Owner, ok, nil
}

// --- listing & stats -----------------------------------------------------------------------

// ListModels returns all model IDs cataloged across the deployment,
// ascending.
func (c *Client) ListModels(ctx context.Context) ([]ownermap.ModelID, error) {
	results := rpc.Broadcast(ctx, c.conns, proto.RPCListModels, rpc.Message{})
	var all []ownermap.ModelID
	for i, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("client: list on provider %d: %w", i, r.Err)
		}
		ids, err := proto.DecodeModelList(r.Resp.Meta)
		if err != nil {
			return nil, err
		}
		all = append(all, ids...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return all, nil
}

// Stats aggregates storage statistics across all providers.
func (c *Client) Stats(ctx context.Context) (*proto.ProviderStats, error) {
	results := rpc.Broadcast(ctx, c.conns, proto.RPCStats, rpc.Message{})
	total := &proto.ProviderStats{}
	for i, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("client: stats on provider %d: %w", i, r.Err)
		}
		s, err := proto.DecodeProviderStats(r.Resp.Meta)
		if err != nil {
			return nil, err
		}
		total.Add(s)
	}
	return total, nil
}
