// Package client implements the EvoStore client library: the application-
// side half of the repository. It maps model IDs to providers through an
// epoch-versioned placement table (internal/placement; the epoch-0 table
// reproduces the paper's static modulo hash bit-for-bit, optionally
// replicated N ways onto the hash successors), consolidates modified
// tensors into single bulk writes, follows owner maps to scatter partial
// reads across providers in parallel — failing reads over to sibling
// replicas when a provider misbehaves — broadcasts collective LCP queries
// and reduces their results, and drives distributed retirement (metadata
// removal + reference-count decrements). During a membership change the
// table is dual-epoch and the client reads through both epochs and writes
// through their union until the migration drains (see rebalance.go).
//
// Paper counterpart: the EvoStore client library of §4.1 linked into every
// NAS worker.
//
// Contracts:
//   - Thread safety: Client and Prefetcher are safe for concurrent use;
//     Client itself is stateless beyond the connection slice.
//   - Idempotency: the client stamps every mutating request (StoreModel,
//     IncRef, DecRef, Retire) with a process-unique ReqID, so connections
//     wrapped with the resilient middleware may retry them safely — the
//     provider answers a retried, already-executed request from its dedup
//     table. Plain reads carry no ReqID; they are idempotent as-is.
//   - Fault tolerance: collective queries (QueryLCP) tolerate degraded
//     providers. With replication (WithReplicas), point reads fail over
//     through the replica set — skipping providers behind an open breaker —
//     and mutations fan out to every replica and require all of them, so
//     replicas stay bit-identical. Failures are annotated with the provider
//     index for the resilience layer or caller to act on.
package client

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/frontdoor"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/ownermap"
	"repro/internal/placement"
	"repro/internal/proto"
	"repro/internal/rpc"
)

// Request IDs deduplicate retried mutations on providers. The high 32
// bits are drawn once per process, the low 32 increment per request;
// collisions would need two clients sharing the random half inside one
// provider's bounded dedup window, which is vanishingly unlikely.
var (
	reqIDHi  = rand.Uint64() << 32
	reqIDSeq atomic.Uint64
)

// nextReqID returns a fresh nonzero request ID.
func nextReqID() uint64 {
	for {
		if id := reqIDHi | (reqIDSeq.Add(1) & 0xffffffff); id != 0 {
			return id
		}
	}
}

// Client talks to a fixed set of providers. Index i of conns is provider i;
// model IDs are mapped to providers by the active placement table — by
// default the epoch-0 table over all connections, which is the paper's
// static modulo hash (§4.1) with an optional N-way replica set on the hash
// successors (see replication.go and placement.go).
type Client struct {
	conns    []rpc.Conn
	replicas int
	explicit *placement.Table                // WithPlacement override for the initial table
	place    atomic.Pointer[placement.State] // active placement view; never nil after New
	reg      *metrics.Registry

	stripeChunk uint64 // striped-read chunk size; 0 disables striping
	stripePar   int    // max concurrent chunk fetches per owner group

	partialWrites bool // accept outage-shaped partial mutations (see repair.go)
	// rebalanceMu serializes placement transitions driven through this
	// client: concurrent Rebalancer.Rebalance calls (controller cycle vs
	// manual operator push) run one at a time, so exactly one epoch bump
	// wins and the loser observes the new epoch instead of corrupting the
	// migration.
	rebalanceMu sync.Mutex
	repairMu    sync.Mutex
	repairQ     []RepairTarget
	repairSeen  map[ownermap.ModelID]bool

	deltaRatio    float64 // WithDedup: max envelope/raw ratio worth storing; 0 disables delta writes
	deltaMaxDepth int     // WithDedup: delta-chain bound; writes at the bound rebase to raw
	resolved      *segCache
	segCacheMax   int64 // WithSegCacheBytes bound; 0 disables the cache

	tenant     string                             // WithTenant: admission-control identity on segment reads
	selfWaiter *frontdoor.Waiter                  // WithSelfThrottle: client-side pacing; nil disables
	flights    frontdoor.Group[string, groupRead] // coalesces concurrent identical owner-group reads

	hedge *hedger // WithHedgedReads: tail-latency hedging; nil disables

	failovers      *metrics.Counter // reads served by a non-preferred replica
	breakerSkips   *metrics.Counter // replicas skipped on an open breaker
	stripedReads   *metrics.Counter // owner-group reads served via range striping
	partialAcc     *metrics.Counter // partial writes accepted for repair
	repairDrops    *metrics.Counter // repair targets dropped on a full queue
	epochAdopts    *metrics.Counter // newer placement views adopted from rejections or sync
	deferred       *metrics.Counter // mutations accepted with catching-up replicas left to repair
	deltaWrites    *metrics.Counter // segments shipped delta-encoded
	deltaRebases   *metrics.Counter // segments rebased to raw at the chain-depth bound
	deltaRejects   *metrics.Counter // deltas that missed the ratio gate and shipped raw
	resolvedReads  *metrics.Counter // enveloped segments resolved on the read path
	coalesced      *metrics.Counter // reads served by joining another caller's in-flight fetch
	throttled      *metrics.Counter // self-throttle waits plus provider throttle refusals
	hedgedReads    *metrics.Counter // hedge legs launched against a slow primary
	hedgeWon       *metrics.Counter // reads won by a hedge leg
	hedgeCancelled *metrics.Counter // in-flight legs cancelled by a sibling's win
	hedgeRefused   *metrics.Counter // hedge launches refused by the token budget
	scoreDemotes   *metrics.Counter // reads routed around a low-scoring preferred replica
	shedRetries    *metrics.Counter // read passes retried after losing a breaker-probe race
}

// New wraps provider connections. The slice order defines provider IDs and
// must match across all clients of the same deployment.
func New(conns []rpc.Conn, opts ...Option) *Client {
	if len(conns) == 0 {
		panic("client: need at least one provider connection")
	}
	c := &Client{conns: conns, replicas: 1, reg: metrics.Default,
		repairSeen:  make(map[ownermap.ModelID]bool),
		segCacheMax: defaultSegCacheBytes}
	for _, o := range opts {
		o(c)
	}
	c.resolved = newSegCache(c.segCacheMax)
	// Every waiter that joins a flight takes its own reference on the
	// shared receive frame, granted before the waiter can observe the
	// result — see frontdoor.Group.OnShare.
	c.flights.OnShare = func(g groupRead) {
		if g.frame != nil {
			g.frame.Retain()
		}
	}
	tbl := c.explicit
	if tbl == nil {
		r := c.replicas
		if r > len(conns) {
			r = len(conns)
		}
		tbl = placement.New(len(conns), r)
	}
	st := &placement.State{Cur: tbl}
	if err := c.checkState(st); err != nil {
		panic("client: " + err.Error())
	}
	c.place.Store(st)
	c.failovers = c.reg.Counter("client.read_failover")
	c.breakerSkips = c.reg.Counter("client.replica_breaker_skip")
	c.stripedReads = c.reg.Counter("client.striped_read")
	c.partialAcc = c.reg.Counter("client.partial_write")
	c.repairDrops = c.reg.Counter("client.repair_queue_drop")
	c.epochAdopts = c.reg.Counter("client.epoch_adopt")
	c.deferred = c.reg.Counter("client.migration_deferred")
	c.deltaWrites = c.reg.Counter("client.delta_write")
	c.deltaRebases = c.reg.Counter("client.delta_rebase")
	c.deltaRejects = c.reg.Counter("client.delta_reject")
	c.resolvedReads = c.reg.Counter("client.delta_resolve")
	c.coalesced = c.reg.Counter("client.coalesced_read")
	c.throttled = c.reg.Counter("client.throttled")
	c.hedgedReads = c.reg.Counter("client.hedged_read")
	c.hedgeWon = c.reg.Counter("client.hedge_won")
	c.hedgeCancelled = c.reg.Counter("client.hedge_cancelled")
	c.hedgeRefused = c.reg.Counter("client.hedge_refused")
	c.scoreDemotes = c.reg.Counter("client.score_demote")
	c.shedRetries = c.reg.Counter("client.shed_retry")
	c.resolved.hits = c.reg.Counter("client.segcache_hit")
	c.resolved.misses = c.reg.Counter("client.segcache_miss")
	return c
}

// NumProviders returns the deployment size.
func (c *Client) NumProviders() int { return len(c.conns) }

// HomeProvider returns the model's preferred provider under the active
// placement table (on the epoch-0 table: the modulo hash home).
func (c *Client) HomeProvider(id ownermap.ModelID) int {
	return c.place.Load().Cur.ReplicaSet(id)[0]
}

// ModelData is a fully resolved model: metadata plus one consolidated
// tensor segment per vertex (empty for parameter-free leaves).
//
// Segments fetched over the TCP transport may be views into pooled receive
// frames held by the embedded lease. Call Release once the segments are no
// longer needed (after decoding the tensors, or copying what must outlive
// the model) to return the buffers to the receive pool; touching Segments
// after Release is a use-after-free. Never calling Release is safe — the
// buffers just stay out of the pool until the GC collects them.
type ModelData struct {
	Meta     *proto.ModelMeta
	Segments [][]byte

	lease *Lease
}

// Release returns the pooled receive buffers backing Segments (if any).
// Idempotent; safe on a nil or lease-less ModelData.
func (d *ModelData) Release() {
	if d != nil {
		d.lease.Release()
	}
}

// ownerGroups partitions a model's vertices by owning model, ascending.
func ownerGroups(om *ownermap.Map) []ownermap.OwnerGroup { return om.Owners() }

// --- store ---------------------------------------------------------------------

// Store publishes a model. segments must hold one entry per vertex of
// meta.Graph; only the entries of vertices meta.OwnerMap assigns to the
// model itself are shipped (the modified tensors) — inherited entries are
// ignored and may be nil.
//
// The call first pins all inherited segments by incrementing their
// reference counts on the owners' providers (in parallel), then sends one
// consolidated write to the model's home provider. Pinning first means a
// concurrent retirement of the ancestor can never free tensors this model
// now depends on; if pinning fails the store is aborted and already-taken
// pins are rolled back.
func (c *Client) Store(ctx context.Context, meta *proto.ModelMeta, segments [][]byte) error {
	return c.store(ctx, meta, segments, nil)
}

// store is Store plus extra pin groups: delta-encoded segments reference
// base segments on other owners' providers, and those references are
// pinned exactly like inherited tensors — before the write, rolled back
// with it (see StoreWithPlans).
func (c *Client) store(ctx context.Context, meta *proto.ModelMeta, segments [][]byte, extraPins []ownermap.OwnerGroup) error {
	n := meta.Graph.NumVertices()
	if meta.OwnerMap.Len() != n || len(segments) != n {
		return fmt.Errorf("client: store %d: graph %d vertices, owner map %d, segments %d",
			meta.Model, n, meta.OwnerMap.Len(), len(segments))
	}

	// Consolidate self-owned segments into one logical bulk payload — as a
	// vector of the caller's slices, never concatenated: the transports
	// either writev the segments directly onto the socket or hand the
	// references to the in-process handler. Validate lengths before pinning
	// anything: the wire carries a u32 per segment, and silently truncating
	// a ≥4 GiB tensor would corrupt the bulk table.
	var table []proto.SegmentRef
	var bulkVec [][]byte
	var selfVertices []graph.VertexID
	for v := 0; v < n; v++ {
		e := meta.OwnerMap.Entries[v]
		if e.Owner != meta.Model {
			continue
		}
		selfVertices = append(selfVertices, graph.VertexID(v))
		seg := segments[v]
		if uint64(len(seg)) >= maxSegmentBytes {
			return fmt.Errorf("client: store %d: segment for vertex %d is %d bytes, exceeds the %d-byte wire limit",
				meta.Model, v, len(seg), maxSegmentBytes)
		}
		table = append(table, proto.SegmentRef{Vertex: graph.VertexID(v), Length: uint32(len(seg))})
		bulkVec = append(bulkVec, seg)
	}

	// Pin inherited segments, grouped by owner. Rollbacks run detached from
	// the caller's cancellation (context.WithoutCancel): after a deadline or
	// cancellation failure the caller's ctx is already dead, and a rollback
	// DecRef issued on it would silently no-op and leak the pins.
	groups := ownerGroups(meta.OwnerMap)
	var pinned []ownermap.OwnerGroup
	rollback := func() {
		undoCtx := context.WithoutCancel(ctx)
		for _, undo := range pinned {
			c.refCall(undoCtx, proto.RPCDecRef, undo.Owner, undo.Vertices) //nolint:errcheck // best-effort rollback
		}
	}
	for _, g := range groups {
		if g.Owner == meta.Model {
			continue
		}
		if err := c.refCall(ctx, proto.RPCIncRef, g.Owner, g.Vertices); err != nil {
			rollback()
			return fmt.Errorf("client: store %d: pinning inherited tensors of %d: %w", meta.Model, g.Owner, err)
		}
		pinned = append(pinned, g)
	}
	// Delta bases pin the same way; a failed pin aborts the store before
	// anything ships, so no delta can ever reference an unpinned base.
	for _, g := range extraPins {
		if err := c.refCall(ctx, proto.RPCIncRef, g.Owner, g.Vertices); err != nil {
			rollback()
			return fmt.Errorf("client: store %d: pinning delta bases of %d: %w", meta.Model, g.Owner, err)
		}
		pinned = append(pinned, g)
	}

	req := &proto.StoreModelReq{
		Model:    meta.Model,
		Seq:      meta.Seq,
		Quality:  meta.Quality,
		Graph:    meta.Graph,
		OwnerMap: meta.OwnerMap,
		Segments: table,
		ReqID:    nextReqID(),
	}
	_, err := c.mutateCall(ctx, proto.RPCStoreModel, meta.Model, rpc.Message{Meta: req.Encode(), BulkVec: bulkVec})
	if err != nil {
		if c.acceptPartial(proto.RPCStoreModel, meta.Model, err) {
			// The model is durable on the replicas that accepted; the
			// repairer completes the others from them. The pins taken above
			// stand — the model exists, so its inherited tensors stay pinned.
			return nil
		}
		// A partial fan-out may have landed copies on some replicas; retire
		// them and release their self-owned segments (best effort, detached
		// from cancellation) so a failed store leaves nothing behind.
		// Replicas that never stored the model answer "unknown model", which
		// is exactly what we want to ignore.
		undoCtx := context.WithoutCancel(ctx)
		rreq := &proto.RetireReq{Model: meta.Model, ReqID: nextReqID()}
		c.mutateCall(undoCtx, proto.RPCRetire, meta.Model, rpc.Message{Meta: rreq.Encode()}) //nolint:errcheck // best-effort rollback
		if len(selfVertices) > 0 {
			c.refCall(undoCtx, proto.RPCDecRef, meta.Model, selfVertices) //nolint:errcheck // best-effort rollback
		}
		rollback()
		return fmt.Errorf("client: store %d: %w", meta.Model, err)
	}
	return nil
}

// maxSegmentBytes is the largest segment the wire format can describe (the
// segment table carries u32 lengths). A var so tests can lower it without
// allocating 4 GiB.
var maxSegmentBytes = uint64(1) << 32

func (c *Client) refCall(ctx context.Context, name string, owner ownermap.ModelID, vs []graph.VertexID) error {
	req := &proto.RefReq{Owner: owner, Vertices: vs, ReqID: nextReqID()}
	_, err := c.mutateCall(ctx, name, owner, rpc.Message{Meta: req.Encode()})
	if err != nil && c.acceptPartial(name, owner, err) {
		// The refcount delta is journaled on the replicas that accepted;
		// repair replays it onto the ones that missed it.
		return nil
	}
	return err
}

// --- load ----------------------------------------------------------------------

// GetMeta fetches a model's catalog entry, preferring the home provider
// and failing over through the replica set on transient errors.
func (c *Client) GetMeta(ctx context.Context, id ownermap.ModelID) (*proto.ModelMeta, error) {
	resp, err := c.readCall(ctx, proto.RPCGetMeta, id, rpc.Message{Meta: proto.EncodeModelID(id)})
	if err != nil {
		return nil, fmt.Errorf("client: get_meta %d: %w", id, err)
	}
	return proto.DecodeModelMeta(resp.Meta)
}

// Load reconstructs a whole model: one GetMeta to the home provider, then
// one parallel bulk read per (owner → provider) group following the owner
// map. Lineage depth never adds round trips.
func (c *Client) Load(ctx context.Context, id ownermap.ModelID) (*ModelData, error) {
	meta, err := c.GetMeta(ctx, id)
	if err != nil {
		return nil, err
	}
	lease := &Lease{}
	segs, _, err := c.readByOwnerInfo(ctx, meta.OwnerMap, nil, lease)
	if err != nil {
		lease.Release()
		return nil, fmt.Errorf("client: load %d: %w", id, err)
	}
	return &ModelData{Meta: meta, Segments: segs, lease: lease}, nil
}

// LoadVertices reads only the given vertices of a model (the partial-read
// primitive behind transfer learning): tensors are fetched from their
// owners' providers in parallel. The result slice is indexed by vertex ID
// with nil entries for vertices that were not requested.
func (c *Client) LoadVertices(ctx context.Context, meta *proto.ModelMeta, vertices []graph.VertexID) ([][]byte, error) {
	want := make(map[graph.VertexID]bool, len(vertices))
	for _, v := range vertices {
		if int(v) >= meta.OwnerMap.Len() {
			return nil, fmt.Errorf("client: load %d: vertex %d out of range", meta.Model, v)
		}
		want[v] = true
	}
	return c.readByOwner(ctx, meta.OwnerMap, want)
}

// readByOwner groups vertices by owner and issues the per-provider bulk
// reads concurrently. want==nil selects every vertex.
func (c *Client) readByOwner(ctx context.Context, om *ownermap.Map, want map[graph.VertexID]bool) ([][]byte, error) {
	segs, _, err := c.readByOwnerInfo(ctx, om, want, nil)
	return segs, err
}

// readByOwnerInfo additionally reports each vertex's stored delta-chain
// depth (0 for raw). Returned segments are always *logical* bytes:
// enveloped segments are resolved before returning (see dedup.go).
// A non-nil lease opts the fetches into pooled receive frames and receives
// one reference per frame backing the returned segments (see frontdoor.go);
// with a nil lease every returned buffer is a plain allocation or a
// deliberately unpooled frame, safe to hold forever.
func (c *Client) readByOwnerInfo(ctx context.Context, om *ownermap.Map, want map[graph.VertexID]bool, lease *Lease) ([][]byte, []uint8, error) {
	segs := make([][]byte, om.Len())
	depths := make([]uint8, om.Len())
	refs := make([]segRef, om.Len())
	cached := make([]bool, om.Len())
	groups := ownerGroups(om)
	var wg sync.WaitGroup
	errs := make([]error, len(groups))
	var mu sync.Mutex // guards segs writes (distinct indices, but keep the race detector certain)
	for gi, g := range groups {
		var vs []graph.VertexID
		for _, v := range g.Vertices {
			if want != nil && !want[v] {
				continue
			}
			refs[v] = segRef{g.Owner, v}
			// A segment resolved by an earlier load is still current —
			// stored segments are immutable and model IDs never reused —
			// so a cache hit skips the provider round trip entirely.
			if ent, ok := c.resolved.get(refs[v], lease); ok {
				segs[v] = ent.b
				depths[v] = ent.depth
				cached[v] = true
				continue
			}
			vs = append(vs, v)
		}
		if len(vs) == 0 {
			continue
		}
		wg.Add(1)
		go func(gi int, owner ownermap.ModelID, vs []graph.VertexID) {
			defer wg.Done()
			table, parts, err := c.readGroup(ctx, owner, vs, lease)
			if err != nil {
				errs[gi] = err
				return
			}
			mu.Lock()
			for i, ref := range table {
				segs[ref.Vertex] = parts[i]
			}
			mu.Unlock()
		}(gi, g.Owner, vs)
	}
	wg.Wait()
	// Annotate each failed leg with the owner group it targeted; readCall
	// already names the replica providers that failed inside each leg.
	var failed []error
	for gi, err := range errs {
		if err != nil {
			failed = append(failed, fmt.Errorf("owner %d: %w", groups[gi].Owner, err))
		}
	}
	if len(failed) > 0 {
		return nil, nil, errors.Join(failed...)
	}
	// Record each fetched vertex's stored chain depth, then resolve
	// envelopes to logical bytes. Depth comes from the stored form — it
	// is what a derived store needs to bound its own chain. Cache-served
	// vertices already carry logical bytes and their recorded depth.
	for v, b := range segs {
		if !cached[v] {
			depths[v] = storedDepth(b)
		}
	}
	resolved, err := c.resolveStored(ctx, segs, refs, cached, lease)
	if err != nil {
		return nil, nil, err
	}
	return resolved, depths, nil
}

// --- collective LCP query ----------------------------------------------------------

// QueryLCP broadcasts the candidate architecture to every provider and
// reduces the local best matches to the global best (paper Algorithm 1 +
// the map-reduce-style collective of §4.1). found is false when no stored
// model shares any prefix with g.
func (c *Client) QueryLCP(ctx context.Context, g *graph.Compact, exclude []ownermap.ModelID) (*proto.LCPResult, bool, error) {
	return c.QueryLCPReq(ctx, &proto.LCPQueryReq{Graph: g, Exclude: exclude})
}

// QueryLCPReq is QueryLCP with a fully specified request (exclusions,
// recency preference).
func (c *Client) QueryLCPReq(ctx context.Context, req *proto.LCPQueryReq) (*proto.LCPResult, bool, error) {
	msg := rpc.Message{Meta: req.Encode()}
	results := rpc.Broadcast(ctx, c.conns, proto.RPCLCPQuery, msg)

	best := &proto.LCPResult{}
	var firstErr error
	okCount := 0
	for _, r := range results {
		if r.Err != nil {
			if firstErr == nil {
				firstErr = r.Err
			}
			continue
		}
		res, err := proto.DecodeLCPResult(r.Resp.Meta)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		okCount++
		if req.PreferRecent {
			if res.BetterRecent(best) {
				best = res
			}
		} else if res.Better(best) {
			best = res
		}
	}
	if okCount == 0 && firstErr != nil {
		return nil, false, fmt.Errorf("client: lcp query: %w", firstErr)
	}
	return best, best.Found, nil
}

// --- retire --------------------------------------------------------------------------

// RetireLeak records one owner group whose reference counts a partially
// failed Retire could not decrement. The model's metadata is already gone
// by the time the DecRef legs run, so nothing will retry these decrements:
// the counts are stranded until an operator reconciles them.
type RetireLeak struct {
	Owner    ownermap.ModelID
	Vertices []graph.VertexID
	Err      error
}

// PartialRetireError reports a Retire whose metadata removal succeeded but
// whose DecRef legs partially failed. Every leg is run to completion
// before this is returned; Leaked lists exactly the owner groups whose
// refcounts were stranded, so drift checks (e.g. evostore-bench faults)
// can attribute leftover references to the legs that leaked them.
type PartialRetireError struct {
	Model  ownermap.ModelID
	Leaked []RetireLeak
}

// Error lists the leaked owners and their causes.
func (e *PartialRetireError) Error() string {
	msg := fmt.Sprintf("client: retire %d: %d dec_ref leg(s) failed, refcounts leaked on owners", e.Model, len(e.Leaked))
	for _, l := range e.Leaked {
		msg += fmt.Sprintf(" %d(%d vertices: %v)", l.Owner, len(l.Vertices), l.Err)
	}
	return msg
}

// Unwrap exposes the per-leg causes to errors.Is / errors.As.
func (e *PartialRetireError) Unwrap() []error {
	errs := make([]error, len(e.Leaked))
	for i, l := range e.Leaked {
		errs[i] = l.Err
	}
	return errs
}

// Retire removes a model: its metadata disappears from every replica of
// its home immediately, then the reference counts of every segment its
// owner map references are decremented on the owning providers (and their
// replicas) in parallel. It returns the number of logical segments freed
// cluster-wide.
//
// All DecRef legs run to completion even when some fail: the metadata is
// already gone, so aborting early would strand the remaining owners'
// refcounts without even reporting which ones. Partial failures come back
// as a *PartialRetireError naming every leaked owner group.
func (c *Client) Retire(ctx context.Context, id ownermap.ModelID) (uint64, error) {
	rreq := &proto.RetireReq{Model: id, ReqID: nextReqID()}
	resp, err := c.mutateCall(ctx, proto.RPCRetire, id, rpc.Message{Meta: rreq.Encode()})
	if err != nil {
		// On a partial retire the catalog entry is gone from the replicas
		// that accepted; mutateCall returned their owner-map response, so
		// the DecRef legs below still run. Repair propagates the tombstone
		// to the replicas that missed it.
		if !c.acceptPartial(proto.RPCRetire, id, err) {
			return 0, fmt.Errorf("client: retire %d: %w", id, err)
		}
	}
	om, _, err := ownermap.Decode(resp.Meta)
	if err != nil {
		return 0, fmt.Errorf("client: retire %d: decoding owner map: %w", id, err)
	}

	// Each DecRef round may free delta-encoded segments whose envelopes
	// referenced base segments on other owners; the providers report those
	// bases in the response trailer and the next round decrements them.
	// Rounds are bounded by the delta-chain depth: every freed base is one
	// hop closer to a raw segment, so the cascade always terminates (the
	// maxResolveDepth cap is a corruption guard, not a working limit).
	var total uint64
	var leaked []RetireLeak
	groups := ownerGroups(om)
	for round := 0; len(groups) > 0; round++ {
		if round > maxResolveDepth {
			for _, g := range groups {
				leaked = append(leaked, RetireLeak{Owner: g.Owner, Vertices: g.Vertices,
					Err: fmt.Errorf("delta-base cascade exceeded %d rounds", maxResolveDepth)})
			}
			break
		}
		freed := make([]uint64, len(groups))
		bases := make([][]proto.SegBase, len(groups))
		errs := make([]error, len(groups))
		var wg sync.WaitGroup
		for gi, g := range groups {
			wg.Add(1)
			go func(gi int, owner ownermap.ModelID, vs []graph.VertexID) {
				defer wg.Done()
				req := &proto.RefReq{Owner: owner, Vertices: vs, ReqID: nextReqID()}
				resp, err := c.mutateCall(ctx, proto.RPCDecRef, owner, rpc.Message{Meta: req.Encode()})
				if err != nil && !c.acceptPartial(proto.RPCDecRef, owner, err) {
					errs[gi] = err
					return
				}
				freed[gi], bases[gi], errs[gi] = proto.DecodeFreedResp(resp.Meta)
			}(gi, g.Owner, g.Vertices)
		}
		wg.Wait()
		next := make(map[ownermap.ModelID][]graph.VertexID)
		for gi, g := range groups {
			if errs[gi] != nil {
				leaked = append(leaked, RetireLeak{Owner: g.Owner, Vertices: g.Vertices, Err: errs[gi]})
				continue
			}
			total += freed[gi]
			for _, b := range bases[gi] {
				next[b.Owner] = append(next[b.Owner], b.Vertex)
			}
		}
		groups = groups[:0]
		for owner, vs := range next {
			groups = append(groups, ownermap.OwnerGroup{Owner: owner, Vertices: vs})
		}
	}
	if len(leaked) > 0 {
		return total, &PartialRetireError{Model: id, Leaked: leaked}
	}
	return total, nil
}

// --- provenance ------------------------------------------------------------------------

// Lineage returns the chain of ancestors that contributed tensors to the
// model, oldest first, ending with the model itself. It needs exactly one
// metadata fetch: the owner map is self-contained (paper §4.1).
func (c *Client) Lineage(ctx context.Context, id ownermap.ModelID) ([]ownermap.ModelID, error) {
	meta, err := c.GetMeta(ctx, id)
	if err != nil {
		return nil, err
	}
	return meta.OwnerMap.Lineage(), nil
}

// CommonAncestor returns the most recent common contributing ancestor of
// two models, resolved from their two owner maps alone.
func (c *Client) CommonAncestor(ctx context.Context, a, b ownermap.ModelID) (ownermap.ModelID, bool, error) {
	ma, err := c.GetMeta(ctx, a)
	if err != nil {
		return 0, false, err
	}
	mb, err := c.GetMeta(ctx, b)
	if err != nil {
		return 0, false, err
	}
	e, ok := ownermap.MostRecentCommonOwner(ma.OwnerMap, mb.OwnerMap)
	return e.Owner, ok, nil
}

// --- listing & stats -----------------------------------------------------------------------

// ListModels returns all model IDs cataloged across the deployment,
// ascending. With replication each model is cataloged R times; the listing
// reports each logical model once.
func (c *Client) ListModels(ctx context.Context) ([]ownermap.ModelID, error) {
	results := rpc.Broadcast(ctx, c.conns, proto.RPCListModels, rpc.Message{})
	seen := make(map[ownermap.ModelID]bool)
	var all []ownermap.ModelID
	for i, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("client: list on provider %d: %w", i, r.Err)
		}
		ids, err := proto.DecodeModelList(r.Resp.Meta)
		if err != nil {
			return nil, err
		}
		for _, id := range ids {
			if !seen[id] {
				seen[id] = true
				all = append(all, id)
			}
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return all, nil
}

// Metrics fetches each provider's server-side metrics counters (retries,
// breaker transitions, replica activity). The result is indexed by
// provider; a provider running a pre-metrics binary yields a nil map and
// an error in errs.
func (c *Client) Metrics(ctx context.Context) (snaps []map[string]uint64, errs []error) {
	results := rpc.Broadcast(ctx, c.conns, proto.RPCMetrics, rpc.Message{})
	snaps = make([]map[string]uint64, len(results))
	errs = make([]error, len(results))
	for i, r := range results {
		if r.Err != nil {
			errs[i] = fmt.Errorf("client: metrics on provider %d: %w", i, r.Err)
			continue
		}
		snaps[i], errs[i] = proto.DecodeCounters(r.Resp.Meta)
	}
	return snaps, errs
}

// Heat fetches every provider's per-model heat trailer from the Metrics
// RPC. heats[i] is provider i's samples (nil for providers that predate
// heat or are unreachable — the matching errs[i] says which).
func (c *Client) Heat(ctx context.Context) (heats [][]proto.ModelHeat, errs []error) {
	results := rpc.Broadcast(ctx, c.conns, proto.RPCMetrics, rpc.Message{})
	heats = make([][]proto.ModelHeat, len(results))
	errs = make([]error, len(results))
	for i, r := range results {
		if r.Err != nil {
			errs[i] = fmt.Errorf("client: heat on provider %d: %w", i, r.Err)
			continue
		}
		_, heats[i], errs[i] = proto.DecodeCountersHeat(r.Resp.Meta)
	}
	return heats, errs
}

// Stats aggregates storage statistics across all providers. With
// replication the sums count physical copies: a segment stored on R
// replicas contributes R times.
func (c *Client) Stats(ctx context.Context) (*proto.ProviderStats, error) {
	results := rpc.Broadcast(ctx, c.conns, proto.RPCStats, rpc.Message{})
	total := &proto.ProviderStats{}
	for i, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("client: stats on provider %d: %w", i, r.Err)
		}
		s, err := proto.DecodeProviderStats(r.Resp.Meta)
		if err != nil {
			return nil, err
		}
		total.Add(s)
	}
	return total, nil
}
