package client

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/ownermap"
	"repro/internal/proto"
	"repro/internal/rpc"
)

// bigModel builds a store request whose segments are large enough to make
// striping kick in: nseg segments of segBytes deterministic bytes each,
// all owned by the model itself over a chain graph.
func bigModel(id ownermap.ModelID, nseg, segBytes int) (*proto.ModelMeta, [][]byte) {
	b := graph.NewBuilder(nseg)
	for i := 0; i < nseg; i++ {
		b.AddVertex(graph.Vertex{ConfigSig: uint64(i + 1), ParamBytes: int64(segBytes)})
		if i > 0 {
			b.AddEdge(graph.VertexID(i-1), graph.VertexID(i))
		}
	}
	g := b.Build()
	meta := &proto.ModelMeta{
		Model: id, Seq: uint64(id), Quality: 0.5,
		Graph:    g,
		OwnerMap: ownermap.New(id, uint64(id), nseg),
	}
	segs := make([][]byte, nseg)
	for i := range segs {
		segs[i] = make([]byte, segBytes)
		for j := range segs[i] {
			segs[i][j] = byte(i + j*7)
		}
	}
	return meta, segs
}

func TestStripedReadMatchesFull(t *testing.T) {
	reg := metrics.NewRegistry()
	// 8 segments × 4 KiB = 32 KiB total; 4 KiB chunks force 8 ranged
	// fetches per group.
	cli := newTCPCluster(t, 2, WithStripedReads(4<<10, 3), WithRegistry(reg))
	plain := newTCPCluster(t, 1)
	ctx := context.Background()
	meta, segs := bigModel(9, 8, 4<<10)
	if err := cli.Store(ctx, meta, segs); err != nil {
		t.Fatal(err)
	}
	if err := plain.Store(ctx, meta, segs); err != nil {
		t.Fatal(err)
	}

	striped, err := cli.Load(ctx, 9)
	if err != nil {
		t.Fatal(err)
	}
	full, err := plain.Load(ctx, 9)
	if err != nil {
		t.Fatal(err)
	}
	for v := range segs {
		if !bytes.Equal(striped.Segments[v], segs[v]) {
			t.Fatalf("vertex %d corrupted by striped read", v)
		}
		if !bytes.Equal(striped.Segments[v], full.Segments[v]) {
			t.Fatalf("vertex %d: striped and full reads disagree", v)
		}
	}
	if n := reg.Counter("client.striped_read").Load(); n == 0 {
		t.Error("striped path was never taken")
	}
}

func TestStripedReadSmallGroupFallsBack(t *testing.T) {
	reg := metrics.NewRegistry()
	// Chunk far larger than the payload: the probe must fall back to one
	// full read, not issue ranges.
	cli := newTCPCluster(t, 1, WithStripedReads(1<<20, 4), WithRegistry(reg))
	ctx := context.Background()
	meta, segs := bigModel(3, 4, 512)
	if err := cli.Store(ctx, meta, segs); err != nil {
		t.Fatal(err)
	}
	data, err := cli.Load(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	for v := range segs {
		if !bytes.Equal(data.Segments[v], segs[v]) {
			t.Fatalf("vertex %d corrupted", v)
		}
	}
	if n := reg.Counter("client.striped_read").Load(); n != 0 {
		t.Errorf("striping used for a sub-chunk payload (%d times)", n)
	}
}

// TestStripedReadsConcurrent hammers the striped path from many
// goroutines so the race detector sees rpc.Pool connections being
// borrowed by concurrent ranged chunks (run with -race).
func TestStripedReadsConcurrent(t *testing.T) {
	cli := newTCPCluster(t, 2, WithStripedReads(2<<10, 4))
	ctx := context.Background()
	meta, segs := bigModel(5, 6, 4<<10)
	if err := cli.Store(ctx, meta, segs); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				data, err := cli.Load(ctx, 5)
				if err != nil {
					errCh <- err
					return
				}
				for v := range segs {
					if !bytes.Equal(data.Segments[v], segs[v]) {
						errCh <- err
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestStripedReadWithReplication checks chunks may be served by any
// replica: all-replica writes keep them bit-identical, so a striped read
// assembled from mixed replicas must still be correct.
func TestStripedReadWithReplication(t *testing.T) {
	cli := newTCPCluster(t, 3, WithReplicas(2), WithStripedReads(2<<10, 4))
	ctx := context.Background()
	meta, segs := bigModel(7, 6, 4<<10)
	if err := cli.Store(ctx, meta, segs); err != nil {
		t.Fatal(err)
	}
	data, err := cli.Load(ctx, 7)
	if err != nil {
		t.Fatal(err)
	}
	for v := range segs {
		if !bytes.Equal(data.Segments[v], segs[v]) {
			t.Fatalf("vertex %d corrupted under replication", v)
		}
	}
}

// stubStripeConn serves only ranged reads: the chunk at offset 0 fails,
// every other chunk blocks until its context is cancelled. Before the
// cancellation fix, readGroupStriped would hang forever here waiting for
// the blocked siblings of an already-failed read.
type stubStripeConn struct {
	blocked atomic.Int32 // chunks released by cancellation
}

func (s *stubStripeConn) Call(ctx context.Context, name string, req rpc.Message) (rpc.Message, error) {
	q, err := proto.DecodeReadSegmentsReq(req.Meta)
	if err != nil {
		return rpc.Message{}, err
	}
	if q.Mode != proto.ReadRange {
		return rpc.Message{}, fmt.Errorf("unexpected mode %d", q.Mode)
	}
	if q.RangeOff == 0 {
		return rpc.Message{}, errors.New("injected chunk failure")
	}
	<-ctx.Done()
	s.blocked.Add(1)
	return rpc.Message{}, ctx.Err()
}

func (s *stubStripeConn) Addr() string { return "stub" }
func (s *stubStripeConn) Close() error { return nil }

func TestStripedReadCancelsSiblingsOnFailure(t *testing.T) {
	stub := &stubStripeConn{}
	cli := New([]rpc.Conn{stub}, WithStripedReads(1024, 4))
	table := []proto.SegmentRef{{Vertex: 0, Length: 4096}} // 4 chunks of 1 KiB

	done := make(chan error, 1)
	go func() {
		_, err := cli.readGroupStriped(context.Background(), 1, []graph.VertexID{0}, table, 4096)
		done <- err
	}()
	var err error
	select {
	case err = <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("striped read hung: sibling chunks were not cancelled on first failure")
	}
	if err == nil {
		t.Fatal("striped read with a failing chunk succeeded")
	}
	if !strings.Contains(err.Error(), "injected chunk failure") {
		t.Fatalf("error = %v, want the failing chunk's cause, not cancellation collateral", err)
	}
	// Siblings die one of two ways — released mid-call by the derived
	// context, or cancelled at the semaphore before starting — so only the
	// sum is deterministic, not the split.
	if got := stub.blocked.Load(); got == 0 {
		t.Error("no blocked chunk was released by cancellation")
	}
}
