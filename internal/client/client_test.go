package client

import (
	"context"
	"net"
	"testing"

	"repro/internal/graph"
	"repro/internal/kvstore"
	"repro/internal/model"
	"repro/internal/ownermap"
	"repro/internal/proto"
	"repro/internal/provider"
	"repro/internal/rpc"
	"repro/internal/tensor"
)

// newTCPCluster starts n providers on real TCP listeners and returns a
// client wired to them — the deployment shape of cmd/evostore-server.
func newTCPCluster(t testing.TB, n int, opts ...Option) *Client {
	t.Helper()
	conns := make([]rpc.Conn, n)
	for i := 0; i < n; i++ {
		p := provider.New(i, kvstore.NewMemKV(8))
		srv := rpc.NewServer()
		p.Register(srv)
		lis, addr, err := rpc.ListenAndServeTCP("127.0.0.1:0", srv)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { lis.Close() })
		pool := rpc.NewPool(addr, 4, rpc.DialTCP)
		t.Cleanup(func() { pool.Close() })
		conns[i] = pool
	}
	return New(conns, opts...)
}

func flatten(t testing.TB, lastDim int) *model.Flat {
	t.Helper()
	f, err := model.Flatten(model.Sequential("m", 8,
		model.Dense{In: 8, Out: 8, Activation: "relu", UseBias: true},
		model.Dense{In: 8, Out: 8, Activation: "relu"},
		model.Dense{In: 8, Out: lastDim},
	))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func metaFor(f *model.Flat, id ownermap.ModelID, seq uint64, q float64) *proto.ModelMeta {
	return &proto.ModelMeta{
		Model:    id,
		Seq:      seq,
		Quality:  q,
		Graph:    f.Graph,
		OwnerMap: ownermap.New(id, seq, f.Graph.NumVertices()),
	}
}

func segsFor(f *model.Flat, ws model.WeightSet) [][]byte {
	segs := make([][]byte, f.Graph.NumVertices())
	for v := range segs {
		segs[v] = tensor.EncodeSet(ws[v])
	}
	return segs
}

func TestStoreLoadOverTCP(t *testing.T) {
	cli := newTCPCluster(t, 3)
	ctx := context.Background()
	f := flatten(t, 4)
	ws := model.Materialize(f, 1)

	if err := cli.Store(ctx, metaFor(f, 7, 1, 0.5), segsFor(f, ws)); err != nil {
		t.Fatal(err)
	}
	data, err := cli.Load(ctx, 7)
	if err != nil {
		t.Fatal(err)
	}
	if data.Meta.Model != 7 || !data.Meta.Graph.Equal(f.Graph) {
		t.Error("metadata mismatch over TCP")
	}
	for v := 0; v < f.Graph.NumVertices(); v++ {
		ts, err := tensor.DecodeSet(data.Segments[v])
		if err != nil {
			t.Fatal(err)
		}
		for i, tt := range ts {
			if !tt.Equal(ws[v][i]) {
				t.Fatalf("vertex %d tensor %d corrupted over TCP", v, i)
			}
		}
	}
}

func TestStoreValidatesShape(t *testing.T) {
	cli := newTCPCluster(t, 2)
	ctx := context.Background()
	f := flatten(t, 4)
	meta := metaFor(f, 1, 1, 0.5)
	if err := cli.Store(ctx, meta, make([][]byte, 2)); err == nil {
		t.Error("Store accepted wrong segment count")
	}
}

func TestDuplicateStoreRejected(t *testing.T) {
	cli := newTCPCluster(t, 2)
	ctx := context.Background()
	f := flatten(t, 4)
	ws := model.Materialize(f, 1)
	if err := cli.Store(ctx, metaFor(f, 5, 1, 0.5), segsFor(f, ws)); err != nil {
		t.Fatal(err)
	}
	if err := cli.Store(ctx, metaFor(f, 5, 2, 0.6), segsFor(f, ws)); err == nil {
		t.Error("duplicate model ID accepted")
	}
}

func TestQueryLCPAndPartialReadOverTCP(t *testing.T) {
	cli := newTCPCluster(t, 3)
	ctx := context.Background()
	f := flatten(t, 4)
	ws := model.Materialize(f, 1)
	if err := cli.Store(ctx, metaFor(f, 11, 1, 0.9), segsFor(f, ws)); err != nil {
		t.Fatal(err)
	}

	f2 := flatten(t, 9)
	res, found, err := cli.QueryLCP(ctx, f2.Graph, nil)
	if err != nil || !found {
		t.Fatalf("query: %v found=%v", err, found)
	}
	if res.Model != 11 || len(res.Prefix) != 3 {
		t.Fatalf("result = %+v", res)
	}

	meta, err := cli.GetMeta(ctx, 11)
	if err != nil {
		t.Fatal(err)
	}
	segs, err := cli.LoadVertices(ctx, meta, res.Prefix)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Prefix {
		ts, err := tensor.DecodeSet(segs[v])
		if err != nil {
			t.Fatal(err)
		}
		for i, tt := range ts {
			if !tt.Equal(ws[v][i]) {
				t.Fatalf("prefix vertex %d tensor %d mismatch", v, i)
			}
		}
	}
	// Unrequested vertices stay nil.
	for v := range segs {
		requested := false
		for _, p := range res.Prefix {
			if graph.VertexID(v) == p {
				requested = true
			}
		}
		if !requested && segs[v] != nil {
			t.Errorf("vertex %d fetched without being requested", v)
		}
	}
}

func TestQueryLCPExclude(t *testing.T) {
	cli := newTCPCluster(t, 2)
	ctx := context.Background()
	f := flatten(t, 4)
	ws := model.Materialize(f, 1)
	cli.Store(ctx, metaFor(f, 3, 1, 0.5), segsFor(f, ws))

	_, found, err := cli.QueryLCP(ctx, f.Graph, []ownermap.ModelID{3})
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Error("excluded model returned as ancestor")
	}
}

func TestLoadVerticesOutOfRange(t *testing.T) {
	cli := newTCPCluster(t, 2)
	ctx := context.Background()
	f := flatten(t, 4)
	cli.Store(ctx, metaFor(f, 2, 1, 0.5), segsFor(f, model.Materialize(f, 1)))
	meta, err := cli.GetMeta(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.LoadVertices(ctx, meta, []graph.VertexID{99}); err == nil {
		t.Error("out-of-range vertex accepted")
	}
}

func TestHomeProviderDistribution(t *testing.T) {
	cli := newTCPCluster(t, 4)
	counts := make([]int, 4)
	for id := ownermap.ModelID(0); id < 100; id++ {
		counts[cli.HomeProvider(id)]++
	}
	for p, c := range counts {
		if c != 25 {
			t.Errorf("provider %d got %d/100 sequential IDs", p, c)
		}
	}
}

func TestStatsAndListAcrossProviders(t *testing.T) {
	cli := newTCPCluster(t, 3)
	ctx := context.Background()
	for id := ownermap.ModelID(1); id <= 6; id++ {
		f := flatten(t, 4+int(id))
		if err := cli.Store(ctx, metaFor(f, id, uint64(id), 0.5), segsFor(f, model.Materialize(f, uint64(id)))); err != nil {
			t.Fatal(err)
		}
	}
	ids, err := cli.ListModels(ctx)
	if err != nil || len(ids) != 6 {
		t.Fatalf("ListModels = %v, %v", ids, err)
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Error("ListModels not sorted")
		}
	}
	st, err := cli.Stats(ctx)
	if err != nil || st.Models != 6 {
		t.Fatalf("Stats = %+v, %v", st, err)
	}
	if st.Segments == 0 || st.SegmentBytes == 0 {
		t.Errorf("Stats missing segment accounting: %+v", st)
	}
}

func TestRetireUnknownModel(t *testing.T) {
	cli := newTCPCluster(t, 2)
	if _, err := cli.Retire(context.Background(), 404); err == nil {
		t.Error("retiring unknown model succeeded")
	}
}

func TestProviderDownSurfacesError(t *testing.T) {
	// One healthy in-proc provider, one dialing a closed TCP port.
	inproc := rpc.NewInprocNet()
	p := provider.New(0, kvstore.NewMemKV(4))
	srv := rpc.NewServer()
	p.Register(srv)
	inproc.Listen("p0", srv)
	c0, _ := inproc.Dial("p0")

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := lis.Addr().String()
	lis.Close()
	dead := rpc.NewPool(deadAddr, 1, rpc.DialTCP)
	defer dead.Close()

	cli := New([]rpc.Conn{c0, dead})
	ctx := context.Background()

	// Stats must fail loudly, not silently undercount.
	if _, err := cli.Stats(ctx); err == nil {
		t.Error("Stats with dead provider succeeded")
	}
	// An LCP query against the healthy provider's catalog still works
	// (collective queries tolerate degraded members by design).
	f := flatten(t, 4)
	cli.Store(ctx, metaFor(f, 2, 1, 0.5), segsFor(f, model.Materialize(f, 1))) // home = 2%2 = 0 (healthy)
	res, found, err := cli.QueryLCP(ctx, f.Graph, nil)
	if err != nil || !found || res.Model != 2 {
		t.Errorf("degraded query: res=%+v found=%v err=%v", res, found, err)
	}
}
