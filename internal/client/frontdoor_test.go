package client

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/kvstore"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/proto"
	"repro/internal/provider"
	"repro/internal/rpc"
	"repro/internal/tensor"
)

// gateConn counts read_segments wire calls and optionally parks them on a
// gate channel (close the gate to let them through). Every other RPC
// passes straight through, so metadata fetches never deadlock a test.
type gateConn struct {
	rpc.Conn
	gate  chan struct{}
	reads atomic.Int32
}

func (g *gateConn) Call(ctx context.Context, name string, req rpc.Message) (rpc.Message, error) {
	if name == proto.RPCReadSegments {
		g.reads.Add(1)
		select {
		case <-g.gate:
		case <-ctx.Done():
			return rpc.Message{}, ctx.Err()
		}
	}
	return g.Conn.Call(ctx, name, req)
}

// newGatedCluster is a single in-process provider behind a gateConn.
func newGatedCluster(t testing.TB, opts ...Option) (*Client, *gateConn) {
	t.Helper()
	net := rpc.NewInprocNet()
	p := provider.New(0, kvstore.NewMemKV(8))
	srv := rpc.NewServer()
	p.Register(srv)
	if err := net.Listen("a", srv); err != nil {
		t.Fatal(err)
	}
	raw, err := net.Dial("a")
	if err != nil {
		t.Fatal(err)
	}
	gc := &gateConn{Conn: raw, gate: make(chan struct{})}
	return New([]rpc.Conn{gc}, opts...), gc
}

// Regression for the oversize-entry bug: put used to evict the entire
// working set and then insert the oversized entry anyway, leaving
// size > max. An entry that cannot fit even an empty cache must be
// rejected without touching residents.
func TestSegCacheRejectsOversize(t *testing.T) {
	sc := newSegCache(10)
	sc.put(segRef{1, 0}, make([]byte, 4), 0, nil)
	sc.put(segRef{1, 1}, make([]byte, 4), 0, nil)

	sc.put(segRef{2, 0}, make([]byte, 11), 0, nil)
	if _, ok := sc.get(segRef{2, 0}, nil); ok {
		t.Fatal("oversized entry was inserted")
	}
	if _, ok := sc.get(segRef{1, 0}, nil); !ok {
		t.Fatal("oversized put evicted resident entries")
	}
	if _, ok := sc.get(segRef{1, 1}, nil); !ok {
		t.Fatal("oversized put evicted resident entries")
	}
	if sc.size != 8 {
		t.Fatalf("size = %d after rejected put, want 8", sc.size)
	}

	// Exactly max still fits, evicting residents FIFO as needed.
	sc.put(segRef{3, 0}, make([]byte, 10), 0, nil)
	if _, ok := sc.get(segRef{3, 0}, nil); !ok {
		t.Fatal("max-sized entry rejected")
	}
	if sc.size > sc.max {
		t.Fatalf("size = %d exceeds max %d", sc.size, sc.max)
	}

	// max <= 0 disables the cache outright.
	off := newSegCache(0)
	off.put(segRef{1, 0}, []byte{1}, 0, nil)
	if _, ok := off.get(segRef{1, 0}, nil); ok {
		t.Fatal("disabled cache admitted an entry")
	}
}

// The cache holds its own reference on a frame-backed entry, hands one to
// each reader's lease, and drops its own at eviction.
func TestSegCacheFrameAccounting(t *testing.T) {
	f := rpc.NewFrame(make([]byte, 4))
	sc := newSegCache(4)
	sc.put(segRef{1, 0}, make([]byte, 4), 0, f)
	if n := f.Refs(); n != 2 {
		t.Fatalf("refs after cached put = %d, want 2 (caller + cache)", n)
	}
	var l Lease
	if _, ok := sc.get(segRef{1, 0}, &l); !ok {
		t.Fatal("entry missing")
	}
	if n := f.Refs(); n != 3 {
		t.Fatalf("refs after leased get = %d, want 3", n)
	}
	sc.put(segRef{2, 0}, make([]byte, 4), 0, nil) // evicts {1,0}
	if n := f.Refs(); n != 2 {
		t.Fatalf("refs after eviction = %d, want 2 (cache ref dropped)", n)
	}
	l.Release()
	f.Release()
	if n := f.Refs(); n != 0 {
		t.Fatalf("refs after release = %d, want 0", n)
	}
}

// Thundering herd: K concurrent loads of one model must collapse into a
// single provider round trip. The gate parks the leader's wire call until
// every other goroutine has joined the flight, so the coalescing window
// is deterministic rather than racy.
func TestThunderingHerdCoalesces(t *testing.T) {
	cli, gc := newGatedCluster(t, WithSegCacheBytes(0), WithRegistry(metrics.NewRegistry()))
	ctx := context.Background()
	f := flatten(t, 4)
	ws := model.Materialize(f, 1)
	if err := cli.Store(ctx, metaFor(f, 7, 1, 0.5), segsFor(f, ws)); err != nil {
		t.Fatal(err)
	}

	nv := f.Graph.NumVertices()
	vs := make([]graph.VertexID, nv)
	for i := range vs {
		vs[i] = graph.VertexID(i)
	}
	key := flightKey(7, vs)

	const K = 8
	var wg sync.WaitGroup
	errs := make([]error, K)
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d, err := cli.Load(ctx, 7)
			if err != nil {
				errs[i] = err
				return
			}
			defer d.Release()
			for v := 0; v < nv; v++ {
				ts, err := tensor.DecodeSet(d.Segments[v])
				if err != nil {
					errs[i] = err
					return
				}
				for j, tt := range ts {
					if !tt.Equal(ws[v][j]) {
						t.Errorf("goroutine %d: vertex %d tensor %d corrupted", i, v, j)
						return
					}
				}
			}
		}(i)
	}
	deadline := time.Now().Add(10 * time.Second)
	for cli.flights.Pending(key) < K {
		if time.Now().After(deadline) {
			t.Fatalf("herd never converged: pending=%d wire reads=%d",
				cli.flights.Pending(key), gc.reads.Load())
		}
		time.Sleep(time.Millisecond)
	}
	close(gc.gate)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("load %d: %v", i, err)
		}
	}
	if n := gc.reads.Load(); n != 1 {
		t.Errorf("wire read_segments calls = %d, want 1", n)
	}
	if n := cli.coalesced.Load(); n != K-1 {
		t.Errorf("client.coalesced_read = %d, want %d", n, K-1)
	}
}

// Over TCP every full read lands in pooled frames: the load's lease holds
// exactly one reference per frame, and Release returns every one.
func TestLoadLeaseReturnsFramesOverTCP(t *testing.T) {
	cli := newTCPCluster(t, 1, WithSegCacheBytes(0), WithRegistry(metrics.NewRegistry()))
	ctx := context.Background()
	f := flatten(t, 4)
	ws := model.Materialize(f, 1)
	if err := cli.Store(ctx, metaFor(f, 3, 1, 0.5), segsFor(f, ws)); err != nil {
		t.Fatal(err)
	}
	d, err := cli.Load(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	// The views must be valid while the lease is held.
	for v := 0; v < f.Graph.NumVertices(); v++ {
		ts, err := tensor.DecodeSet(d.Segments[v])
		if err != nil {
			t.Fatal(err)
		}
		for j, tt := range ts {
			if !tt.Equal(ws[v][j]) {
				t.Fatalf("vertex %d tensor %d corrupted under lease", v, j)
			}
		}
	}
	if len(d.lease.frames) == 0 {
		t.Fatal("TCP load took no pooled frames")
	}
	frames := append([]*rpc.Frame(nil), d.lease.frames...)
	for i, fr := range frames {
		if n := fr.Refs(); n != 1 {
			t.Errorf("frame %d refs = %d before release, want 1 (cache disabled)", i, n)
		}
	}
	d.Release()
	for i, fr := range frames {
		if n := fr.Refs(); n != 0 {
			t.Errorf("frame %d refs = %d after release, want 0", i, n)
		}
	}
	d.Release() // idempotent
}

// Repeat loads are served from the client-wide segment cache: no wire
// reads, one cache hit per vertex.
func TestSegCacheServesRepeatLoads(t *testing.T) {
	cli, gc := newGatedCluster(t, WithRegistry(metrics.NewRegistry()))
	close(gc.gate) // counting only
	ctx := context.Background()
	f := flatten(t, 4)
	ws := model.Materialize(f, 1)
	if err := cli.Store(ctx, metaFor(f, 9, 1, 0.5), segsFor(f, ws)); err != nil {
		t.Fatal(err)
	}
	nv := f.Graph.NumVertices()

	d1, err := cli.Load(ctx, 9)
	if err != nil {
		t.Fatal(err)
	}
	wireAfterFirst := gc.reads.Load()
	if m := cli.resolved.misses.Load(); m != uint64(nv) {
		t.Errorf("segcache_miss after cold load = %d, want %d", m, nv)
	}

	d2, err := cli.Load(ctx, 9)
	if err != nil {
		t.Fatal(err)
	}
	if n := gc.reads.Load(); n != wireAfterFirst {
		t.Errorf("repeat load made %d extra wire reads, want 0", n-wireAfterFirst)
	}
	if h := cli.resolved.hits.Load(); h != uint64(nv) {
		t.Errorf("segcache_hit after warm load = %d, want %d", h, nv)
	}
	for v := 0; v < nv; v++ {
		ts, err := tensor.DecodeSet(d2.Segments[v])
		if err != nil {
			t.Fatal(err)
		}
		for j, tt := range ts {
			if !tt.Equal(ws[v][j]) {
				t.Fatalf("cached vertex %d tensor %d corrupted", v, j)
			}
		}
	}
	d1.Release()
	d2.Release()
}
