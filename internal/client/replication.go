package client

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/ownermap"
	"repro/internal/placement"
	"repro/internal/rpc"
)

// Replica placement: a model's replica set comes from the client's active
// placement table (internal/placement). The default epoch-0 table places
// exactly like the paper's static scheme — home provider = id mod N plus
// the next R-1 successors — so R=1 interoperates bit-for-bit with
// pre-replication binaries; later epochs use rendezvous hashing over the
// surviving member list. Every client and provider of a deployment must
// agree on R and converge on the same epoch (see placement.go).
//
// Writes (StoreModel, IncRef, DecRef, Retire) fan out to every replica in
// parallel, all carrying the same ReqID: each replica's dedup table
// independently absorbs retries, so a retried fan-out leg can never
// double-apply a refcount change. A write succeeds only when every replica
// accepted it, which keeps replicas bit-identical and makes any single
// replica authoritative for reads. Mid-migration the fan-out covers the
// union of both epochs' sets, and a leg rejected by a replica still
// catching up on the model counts as deferred, not failed — its delta is
// journaled on the members that hold the model and replayed by the
// rebalancer.
//
// Reads (GetMeta, ReadSegments) try one replica at a time, preferring the
// new epoch's set and falling back to previous-epoch owners mid-migration,
// failing over to the next on a transient error. Replica order is
// breaker-aware: replicas whose resilient.Conn breaker is open are tried
// last, so a partitioned provider is skipped without waiting out its
// cooldown. Remote (application) errors are authoritative and never fail
// over — with all-replica writes, "not found" on one replica means "not
// found" everywhere — with two exceptions handled in readCall: a
// wrong-epoch rejection updates the client's table and re-resolves, and a
// catching-up replica's "not migrated" miss fails over to an owner that
// has the model.

// Option configures a Client beyond its connection list.
type Option func(*Client)

// WithReplicas sets the N-way replication factor R (default 1: the paper's
// single-homed placement). R is clamped to the deployment size. All clients
// and tools of one deployment must use the same R.
func WithReplicas(r int) Option {
	return func(c *Client) {
		if r > 1 {
			c.replicas = r
		}
	}
}

// WithPlacement pins the client's initial placement table instead of the
// epoch-0 table over all connections — for deployments whose member list
// is sparse (spare providers awaiting a join) or already past epoch 0.
// Overrides WithReplicas. Member indices must address connections.
func WithPlacement(t *placement.Table) Option {
	return func(c *Client) { c.explicit = t }
}

// WithRegistry routes the client's replication counters (read failovers,
// breaker-skipped replicas) to reg instead of metrics.Default.
func WithRegistry(reg *metrics.Registry) Option {
	return func(c *Client) { c.reg = reg }
}

// healthReporter mirrors resilient.HealthReporter without importing the
// package: any conn exposing Healthy() participates in breaker-aware
// replica ordering; conns without it are assumed healthy.
type healthReporter interface {
	Healthy() bool
}

// Replicas returns the active replication factor (the table's, clamped to
// its member count).
func (c *Client) Replicas() int { return c.place.Load().Cur.R() }

// ReplicaSet returns the provider indices holding id's metadata and
// segments under the current epoch, preferred (home) first.
func (c *Client) ReplicaSet(id ownermap.ModelID) []int {
	return c.place.Load().ReplicaSet(id)
}

// readOrder is the placement read order (current epoch's set first, then
// previous-epoch owners mid-migration) reordered so replicas behind an
// open breaker sort last, and — when the connections report continuous
// health scores (resilient.ScoreReporter) — the healthy class ranked by
// score, best first. Scores are snapshotted once before sorting, so a
// breaker flapping mid-rank cannot feed the sort an inconsistent
// comparator. The sort is stable and equal-scoring replicas keep
// placement order, so a fleet with no latency skew still prefers the home
// provider. The partition is likewise stable: when every replica is
// behind an open breaker, the unhealthy tail preserves placement order,
// so the home provider is still dialed first and a full outage degrades
// to the same preference order as a healthy cluster rather than an
// arbitrary one (pinned by TestReadOrderAllBreakersOpen).
func (c *Client) readOrder(id ownermap.ModelID) []int {
	set := c.place.Load().ReadOrder(id)
	if len(set) == 1 {
		return set
	}
	ordered := make([]int, 0, len(set))
	var skipped []int
	for _, pi := range set {
		if h, ok := c.conns[pi].(healthReporter); ok && !h.Healthy() {
			skipped = append(skipped, pi)
			continue
		}
		ordered = append(ordered, pi)
	}
	if len(skipped) > 0 {
		c.breakerSkips.Add(uint64(len(skipped)))
	}
	if len(ordered) > 1 {
		type scored struct {
			pi    int
			score float64
		}
		ranked := make([]scored, len(ordered))
		any := false
		for i, pi := range ordered {
			ranked[i] = scored{pi: pi, score: 1}
			if s, ok := c.conns[pi].(scoreReporter); ok {
				ranked[i].score = s.Score()
				any = true
			}
		}
		if any {
			preferred := ordered[0]
			sort.SliceStable(ranked, func(i, j int) bool { return ranked[i].score > ranked[j].score })
			for i := range ranked {
				ordered[i] = ranked[i].pi
			}
			if ordered[0] != preferred {
				// The placement-preferred replica was outranked: the read
				// routes around a degraded-but-breaker-closed provider.
				c.scoreDemotes.Inc()
			}
		}
	}
	return append(ordered, skipped...)
}

// readCall performs a read with replica failover: replicas are tried in
// score-ranked, breaker-aware preference order; transient failures move
// on to the next replica, remote errors and caller cancellation return
// immediately. With hedged reads enabled (WithHedgedReads) the pass over
// the order races a budgeted hedge against a slow primary instead of
// strictly serializing (see hedge.go); semantics are otherwise identical.
// Two placement-shaped rejections bend those rules: a catching-up
// replica's "not migrated" miss fails over (a previous-epoch owner has
// the model), and a wrong-epoch rejection refreshes the client's table
// and — if that changed where the model lives — re-resolves the whole
// read, so a stale client self-updates instead of failing.
func (c *Client) readCall(ctx context.Context, name string, id ownermap.ModelID, req rpc.Message) (rpc.Message, error) {
	for attempt := 0; ; attempt++ {
		st := c.place.Load()
		order := c.readOrder(id)
		var o readOutcome
		if c.hedge != nil && len(order) > 1 {
			o = c.readOnceHedged(ctx, name, order, req)
		} else {
			o = c.readOnce(ctx, name, order, req)
		}
		if o.err == nil {
			if o.staleTbl != nil {
				// A replica rejected us as stale even though another
				// answered: adopt the newer table now so the next call
				// resolves right the first time.
				c.refreshPlacement(ctx, o.staleTbl)
			}
			return o.resp, nil
		}
		if o.final {
			return rpc.Message{}, o.err
		}
		if o.staleTbl != nil && attempt < placementRetries {
			if c.refreshPlacement(ctx, o.staleTbl) || c.place.Load() != st {
				continue
			}
		}
		// A pass where some replica was shed (rpc.ErrUnavailable) may have
		// lost a race with breaker recovery: a half-open breaker admits a
		// single probe, so a concurrent read failing over to the same
		// recovering replica is shed even though the provider is answering
		// its probe right now. The replica set is not dead — pause long
		// enough for the probe to settle and run the pass again, bounded so
		// a genuine full outage still fails fast.
		if attempt < shedRetries && errors.Is(o.err, rpc.ErrUnavailable) {
			c.shedRetries.Inc()
			t := time.NewTimer(shedRetryPause)
			select {
			case <-ctx.Done():
				t.Stop()
				return rpc.Message{}, ctx.Err()
			case <-t.C:
			}
			continue
		}
		return rpc.Message{}, o.err
	}
}

// shedRetries bounds how many times one read re-runs its replica pass
// after losing a breaker-probe race; shedRetryPause gives the in-flight
// probe time to settle (and an open breaker time to pass more of its
// cooldown) between passes.
const (
	shedRetries    = 3
	shedRetryPause = time.Millisecond
)

// readOutcome is the result of one pass over a replica order.
type readOutcome struct {
	resp rpc.Message
	err  error
	// final marks an authoritative failure (remote answer or caller
	// cancellation): readCall must not re-resolve placement and retry.
	final bool
	// staleTbl carries the newest table from any wrong-epoch rejection
	// seen during the pass, even a successful one.
	staleTbl *placement.Table
}

// readOnce tries the replicas of order strictly one at a time.
func (c *Client) readOnce(ctx context.Context, name string, order []int, req rpc.Message) readOutcome {
	var failed []error
	var staleTbl *placement.Table
	for i, pi := range order {
		resp, err := c.conns[pi].Call(ctx, name, req)
		if err == nil {
			if i > 0 {
				c.failovers.Inc()
			}
			return readOutcome{resp: resp, staleTbl: staleTbl}
		}
		if t, ok := placement.TableFromError(err); ok {
			staleTbl = t
		} else if !placement.IsNotMigrated(err) && !rpc.IsTransient(err) {
			// Authoritative handler answer, or the caller gave up:
			// replicas are write-synchronized, so no other replica
			// would say better.
			return readOutcome{err: fmt.Errorf("provider %d: %w", pi, err), final: true, staleTbl: staleTbl}
		}
		failed = append(failed, fmt.Errorf("replica on provider %d: %w", pi, err))
	}
	return readOutcome{err: errors.Join(failed...), staleTbl: staleTbl}
}

// PartialMutateError reports a replicated mutation that some replicas
// accepted and others rejected. The write is durable on Succeeded but the
// replica set has diverged; the caller decides whether that is fatal
// (strict mode: undo and fail) or repairable (partial-writes mode: queue
// the model for anti-entropy repair and carry on). Succeeded/Failed hold
// provider indices; Errs is parallel to Failed.
type PartialMutateError struct {
	Op        string
	Model     ownermap.ModelID
	Succeeded []int
	Failed    []int
	Errs      []error
}

// Error names the op, the model, and each failed replica with its cause.
func (e *PartialMutateError) Error() string {
	msg := fmt.Sprintf("client: %s %d: accepted on provider(s) %v but failed on", e.Op, e.Model, e.Succeeded)
	for i, pi := range e.Failed {
		msg += fmt.Sprintf(" %d(%v)", pi, e.Errs[i])
	}
	return msg
}

// Unwrap exposes the per-leg causes to errors.Is / errors.As.
func (e *PartialMutateError) Unwrap() []error { return e.Errs }

// Transient reports whether every failed leg was transient (outage-shaped:
// timeouts, dead transports, open breakers). Only then is the divergence
// the kind the repairer converges; a remote application error on one leg
// while a sibling accepted means the replicas disagreed about state, which
// repair must not paper over.
func (e *PartialMutateError) Transient() bool {
	for _, err := range e.Errs {
		if !rpc.IsTransient(err) {
			return false
		}
	}
	return true
}

// mutateCall fans a mutating request out to every replica of id —
// mid-migration, to the union of both epochs' replica sets — retrying the
// whole fan-out after a wrong-epoch rejection taught the client a newer
// table that changes where the model lives. The request bytes (including
// the ReqID) are shared, so each replica deduplicates retries
// independently and a re-fanned leg can never double-apply.
func (c *Client) mutateCall(ctx context.Context, name string, id ownermap.ModelID, req rpc.Message) (rpc.Message, error) {
	for attempt := 0; ; attempt++ {
		st := c.place.Load()
		resp, err := c.mutateOnce(ctx, name, id, st, req)
		if err == nil {
			return resp, nil
		}
		tbl, ok := placement.TableFromError(err)
		if !ok || attempt >= placementRetries {
			return resp, err
		}
		if !c.refreshPlacement(ctx, tbl) && c.place.Load() == st {
			// Nothing newer to learn: the rejection stands.
			return resp, err
		}
	}
}

// mutateOnce runs one fan-out over st's write set. All replicas must
// accept for a nil error, with one placement-shaped exception: legs
// rejected by replicas still catching up on this model's migration count
// as deferred, and if every failed leg was deferred while at least one
// replica accepted, the mutation succeeds — the delta is journaled on the
// accepting members and the rebalancer's converge pass replays it onto
// the stragglers (the model is also queued for in-process repair). A mix
// of real outcomes returns the first successful response alongside a
// *PartialMutateError naming both camps (legs are deterministic, so all
// successful responses agree); deferred legs inside such a mix are marked
// transient so partial-writes acceptance still applies during a combined
// outage and migration. A total failure returns every leg's error joined
// and annotated with its provider.
func (c *Client) mutateOnce(ctx context.Context, name string, id ownermap.ModelID, st *placement.State, req rpc.Message) (rpc.Message, error) {
	set := st.WriteSet(id)
	if len(set) == 1 {
		return c.conns[set[0]].Call(ctx, name, req)
	}
	resps := make([]rpc.Message, len(set))
	errs := make([]error, len(set))
	var wg sync.WaitGroup
	for i, pi := range set {
		wg.Add(1)
		go func(i, pi int) {
			defer wg.Done()
			resps[i], errs[i] = c.conns[pi].Call(ctx, name, req)
		}(i, pi)
	}
	wg.Wait()
	firstOK := -1
	var succeeded, failedAt []int
	var failed []error
	deferredOnly := true
	for i, err := range errs {
		if err != nil {
			leg := fmt.Errorf("replica on provider %d: %w", set[i], err)
			if placement.IsNotMigrated(err) {
				leg = rpc.MarkTransient(leg)
			} else {
				deferredOnly = false
			}
			failedAt = append(failedAt, set[i])
			failed = append(failed, leg)
			continue
		}
		if firstOK < 0 {
			firstOK = i
		}
		succeeded = append(succeeded, set[i])
	}
	if len(failed) == 0 {
		return resps[0], nil
	}
	if firstOK >= 0 && deferredOnly {
		c.deferred.Inc()
		c.queueRepair(name, id)
		return resps[firstOK], nil
	}
	if firstOK < 0 {
		return rpc.Message{}, errors.Join(failed...)
	}
	return resps[firstOK], &PartialMutateError{
		Op: name, Model: id, Succeeded: succeeded, Failed: failedAt, Errs: failed,
	}
}
