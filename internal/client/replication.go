package client

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/metrics"
	"repro/internal/ownermap"
	"repro/internal/rpc"
)

// Replica placement: a model's replica set is its home provider (static
// modulo hash, paper §4.1) plus the next R-1 successors modulo the
// deployment size. Every client and provider of a deployment must agree on
// R; the wire format is unchanged, so R=1 interoperates bit-for-bit with
// pre-replication binaries.
//
// Writes (StoreModel, IncRef, DecRef, Retire) fan out to every replica in
// parallel, all carrying the same ReqID: each replica's dedup table
// independently absorbs retries, so a retried fan-out leg can never
// double-apply a refcount change. A write succeeds only when every replica
// accepted it, which keeps replicas bit-identical and makes any single
// replica authoritative for reads.
//
// Reads (GetMeta, ReadSegments) try one replica at a time, preferring the
// home provider, and fail over to the next on a transient error. Replica
// order is breaker-aware: replicas whose resilient.Conn breaker is open are
// tried last, so a partitioned provider is skipped without waiting out its
// cooldown. Remote (application) errors are authoritative and never fail
// over — with all-replica writes, "not found" on one replica means "not
// found" everywhere.

// Option configures a Client beyond its connection list.
type Option func(*Client)

// WithReplicas sets the N-way replication factor R (default 1: the paper's
// single-homed placement). R is clamped to the deployment size. All clients
// and tools of one deployment must use the same R.
func WithReplicas(r int) Option {
	return func(c *Client) {
		if r > 1 {
			c.replicas = r
		}
	}
}

// WithRegistry routes the client's replication counters (read failovers,
// breaker-skipped replicas) to reg instead of metrics.Default.
func WithRegistry(reg *metrics.Registry) Option {
	return func(c *Client) { c.reg = reg }
}

// healthReporter mirrors resilient.HealthReporter without importing the
// package: any conn exposing Healthy() participates in breaker-aware
// replica ordering; conns without it are assumed healthy.
type healthReporter interface {
	Healthy() bool
}

// Replicas returns the configured replication factor (clamped to the
// deployment size).
func (c *Client) Replicas() int {
	if c.replicas > len(c.conns) {
		return len(c.conns)
	}
	return c.replicas
}

// ReplicaSet returns the provider indices holding id's metadata and
// segments, preferred (home) first.
func (c *Client) ReplicaSet(id ownermap.ModelID) []int {
	n := len(c.conns)
	r := c.Replicas()
	home := c.HomeProvider(id)
	set := make([]int, r)
	for i := range set {
		set[i] = (home + i) % n
	}
	return set
}

// readOrder is ReplicaSet reordered so replicas behind an open breaker sort
// last (stable within each class, so the home provider stays preferred
// among healthy replicas). The unhealthy tail is kept as a last resort: if
// every replica is shedding, the caller still gets a real error chain.
func (c *Client) readOrder(id ownermap.ModelID) []int {
	set := c.ReplicaSet(id)
	if len(set) == 1 {
		return set
	}
	ordered := make([]int, 0, len(set))
	var skipped []int
	for _, pi := range set {
		if h, ok := c.conns[pi].(healthReporter); ok && !h.Healthy() {
			skipped = append(skipped, pi)
			continue
		}
		ordered = append(ordered, pi)
	}
	if len(skipped) > 0 {
		c.breakerSkips.Add(uint64(len(skipped)))
	}
	return append(ordered, skipped...)
}

// readCall performs a read with replica failover: replicas are tried in
// breaker-aware preference order; transient failures move on to the next
// replica, remote errors and caller cancellation return immediately.
func (c *Client) readCall(ctx context.Context, name string, id ownermap.ModelID, req rpc.Message) (rpc.Message, error) {
	order := c.readOrder(id)
	var failed []error
	for i, pi := range order {
		resp, err := c.conns[pi].Call(ctx, name, req)
		if err == nil {
			if i > 0 {
				c.failovers.Inc()
			}
			return resp, nil
		}
		if !rpc.IsTransient(err) {
			// Authoritative handler answer, or the caller gave up: replicas
			// are write-synchronized, so no other replica would say better.
			return rpc.Message{}, fmt.Errorf("provider %d: %w", pi, err)
		}
		failed = append(failed, fmt.Errorf("replica on provider %d: %w", pi, err))
	}
	return rpc.Message{}, errors.Join(failed...)
}

// PartialMutateError reports a replicated mutation that some replicas
// accepted and others rejected. The write is durable on Succeeded but the
// replica set has diverged; the caller decides whether that is fatal
// (strict mode: undo and fail) or repairable (partial-writes mode: queue
// the model for anti-entropy repair and carry on). Succeeded/Failed hold
// provider indices; Errs is parallel to Failed.
type PartialMutateError struct {
	Op        string
	Model     ownermap.ModelID
	Succeeded []int
	Failed    []int
	Errs      []error
}

// Error names the op, the model, and each failed replica with its cause.
func (e *PartialMutateError) Error() string {
	msg := fmt.Sprintf("client: %s %d: accepted on provider(s) %v but failed on", e.Op, e.Model, e.Succeeded)
	for i, pi := range e.Failed {
		msg += fmt.Sprintf(" %d(%v)", pi, e.Errs[i])
	}
	return msg
}

// Unwrap exposes the per-leg causes to errors.Is / errors.As.
func (e *PartialMutateError) Unwrap() []error { return e.Errs }

// Transient reports whether every failed leg was transient (outage-shaped:
// timeouts, dead transports, open breakers). Only then is the divergence
// the kind the repairer converges; a remote application error on one leg
// while a sibling accepted means the replicas disagreed about state, which
// repair must not paper over.
func (e *PartialMutateError) Transient() bool {
	for _, err := range e.Errs {
		if !rpc.IsTransient(err) {
			return false
		}
	}
	return true
}

// mutateCall fans a mutating request out to every replica of id in
// parallel. The request bytes (including the ReqID) are shared, so each
// replica deduplicates retries independently. All replicas must accept for
// a nil error; a mix of outcomes returns the first successful response
// alongside a *PartialMutateError naming both camps (legs are
// deterministic, so all successful responses agree), and a total failure
// returns every leg's error joined and annotated with its provider.
func (c *Client) mutateCall(ctx context.Context, name string, id ownermap.ModelID, req rpc.Message) (rpc.Message, error) {
	set := c.ReplicaSet(id)
	if len(set) == 1 {
		return c.conns[set[0]].Call(ctx, name, req)
	}
	resps := make([]rpc.Message, len(set))
	errs := make([]error, len(set))
	var wg sync.WaitGroup
	for i, pi := range set {
		wg.Add(1)
		go func(i, pi int) {
			defer wg.Done()
			resps[i], errs[i] = c.conns[pi].Call(ctx, name, req)
		}(i, pi)
	}
	wg.Wait()
	firstOK := -1
	var succeeded, failedAt []int
	var failed []error
	for i, err := range errs {
		if err != nil {
			failedAt = append(failedAt, set[i])
			failed = append(failed, fmt.Errorf("replica on provider %d: %w", set[i], err))
			continue
		}
		if firstOK < 0 {
			firstOK = i
		}
		succeeded = append(succeeded, set[i])
	}
	if len(failed) == 0 {
		return resps[0], nil
	}
	if firstOK < 0 {
		return rpc.Message{}, errors.Join(failed...)
	}
	return resps[firstOK], &PartialMutateError{
		Op: name, Model: id, Succeeded: succeeded, Failed: failedAt, Errs: failed,
	}
}
