package client

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/graph"
	"repro/internal/kvstore"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/ownermap"
	"repro/internal/placement"
	"repro/internal/proto"
	"repro/internal/provider"
	"repro/internal/rpc"
)

// elasticCluster is an in-process deployment whose member list is smaller
// than its connection list: providers members..members+spares-1 run and
// are dialed but start outside the placement table, as join targets.
type elasticCluster struct {
	cli   *Client
	provs []*provider.Provider
	net   *rpc.InprocNet
	reg   *metrics.Registry
}

func newElasticCluster(t testing.TB, members, spares, r int) *elasticCluster {
	t.Helper()
	ec := &elasticCluster{net: rpc.NewInprocNet(), reg: metrics.NewRegistry()}
	total := members + spares
	conns := make([]rpc.Conn, total)
	for i := 0; i < total; i++ {
		p := provider.New(i, kvstore.NewMemKV(8))
		p.SetPlacement(members, r)
		srv := rpc.NewServer()
		p.Register(srv)
		addr := fmt.Sprintf("p%d", i)
		if err := ec.net.Listen(addr, srv); err != nil {
			t.Fatal(err)
		}
		c, err := ec.net.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		ec.provs = append(ec.provs, p)
		conns[i] = c
	}
	ec.cli = New(conns, WithPlacement(placement.New(members, r)), WithRegistry(ec.reg))
	return ec
}

// dialClient opens an independent client over the same providers — a
// second process of the deployment, free to hold a stale placement table.
func (ec *elasticCluster) dialClient(t testing.TB, tbl *placement.Table) *Client {
	t.Helper()
	conns := make([]rpc.Conn, len(ec.provs))
	for i := range conns {
		c, err := ec.net.Dial(fmt.Sprintf("p%d", i))
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = c
	}
	return New(conns, WithPlacement(tbl), WithRegistry(metrics.NewRegistry()))
}

func (ec *elasticCluster) store(t testing.TB, cli *Client, id ownermap.ModelID) {
	t.Helper()
	f := flatten(t, 4)
	if err := cli.Store(context.Background(), metaFor(f, id, uint64(id), 0.5),
		segsFor(f, model.Materialize(f, uint64(id)))); err != nil {
		t.Fatalf("store %d: %v", id, err)
	}
}

// assertConverged pulls id's digest from every provider of its current
// replica set and requires bit-identical agreement.
func (ec *elasticCluster) assertConverged(t testing.TB, id ownermap.ModelID) {
	t.Helper()
	set := ec.cli.ReplicaSet(id)
	base := ec.provs[set[0]].Digest(id)
	for _, pi := range set[1:] {
		if d := ec.provs[pi].Digest(id); !base.Converged(d) {
			t.Errorf("model %d diverged across %v: provider %d %+v vs provider %d %+v",
				id, set, set[0], base, pi, d)
		}
	}
}

// TestRebalanceDrainJoinUnderLoad runs the full elasticity cycle — drain
// one member, then join the spare — while reader and writer goroutines
// hammer the deployment. Not one request may fail, and afterwards every
// model must be bit-identical across its new replica set with the drained
// provider empty. Run with -race this is also the epoch-bump data-race
// check: the workload's placement lookups race the rebalancer's installs.
func TestRebalanceDrainJoinUnderLoad(t *testing.T) {
	ec := newElasticCluster(t, 3, 1, 2)
	ctx := context.Background()

	seeds := []ownermap.ModelID{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	for _, id := range seeds {
		ec.store(t, ec.cli, id)
	}

	var nextID atomic.Uint64
	nextID.Store(100)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := ownermap.ModelID(nextID.Add(1))
				f := flatten(t, 4)
				if err := ec.cli.Store(ctx, metaFor(f, id, uint64(id), 0.5),
					segsFor(f, model.Materialize(f, uint64(id)))); err != nil {
					errc <- fmt.Errorf("worker %d: store %d: %w", w, id, err)
					return
				}
				seed := seeds[i%len(seeds)]
				if _, err := ec.cli.Load(ctx, seed); err != nil {
					errc <- fmt.Errorf("worker %d: load %d: %w", w, seed, err)
					return
				}
			}
		}(w)
	}

	reb := NewRebalancer(ec.cli)
	drain, err := ec.cli.PlacementTable().WithoutMember(1)
	if err != nil {
		t.Fatal(err)
	}
	st1, err := reb.Rebalance(ctx, drain)
	if err != nil {
		t.Fatalf("drain rebalance: %v", err)
	}
	if st1.Epoch != 1 || st1.Migrated == 0 {
		t.Errorf("drain stats = %v", st1)
	}
	join, err := ec.cli.PlacementTable().WithMember(3)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := reb.Rebalance(ctx, join)
	if err != nil {
		t.Fatalf("join rebalance: %v", err)
	}
	if st2.Epoch != 2 || st2.Migrated == 0 {
		t.Errorf("join stats = %v", st2)
	}

	close(stop)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// The drained provider left every replica set in epoch 1 and was never
	// re-added: eviction must have emptied it completely.
	if s := ec.provs[1].Stats(); s.Models != 0 || s.Segments != 0 {
		t.Errorf("drained provider still holds %d models / %d segments", s.Models, s.Segments)
	}
	// Every model — seeds and the ones stored mid-migration — must be
	// bit-identical across its new replica set, which includes the joiner.
	ids, err := ec.cli.ListModels(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) < len(seeds) {
		t.Fatalf("only %d models survived", len(ids))
	}
	joinerUsed := false
	for _, id := range ids {
		set := ec.cli.ReplicaSet(id)
		if containsInt(set, 1) {
			t.Fatalf("model %d still placed on drained provider: %v", id, set)
		}
		if containsInt(set, 3) {
			joinerUsed = true
		}
		ec.assertConverged(t, id)
	}
	if !joinerUsed {
		t.Error("joined provider 3 appears in no replica set")
	}
}

// TestStaleClientSelfUpdates is the old-epoch-client vs new-epoch-provider
// direction of the epoch race: a client still on epoch 0 must recover from
// its first wrong-epoch rejection — on both the read and the write path —
// by adopting the provider-carried table and retrying, with zero failed
// requests surfacing.
func TestStaleClientSelfUpdates(t *testing.T) {
	ec := newElasticCluster(t, 4, 0, 2)
	ctx := context.Background()
	epoch0 := ec.cli.PlacementTable()

	// Model 1's epoch-0 set is {1, 2}; draining provider 1 moves it.
	ec.store(t, ec.cli, 1)
	drain, err := epoch0.WithoutMember(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRebalancer(ec.cli).Rebalance(ctx, drain); err != nil {
		t.Fatal(err)
	}

	// Read path: the stale reader dials provider 1 first (its epoch-0
	// home), gets the wrong-epoch rejection, adopts, and succeeds.
	reader := ec.dialClient(t, epoch0)
	if _, err := reader.GetMeta(ctx, 1); err != nil {
		t.Fatalf("stale reader failed: %v", err)
	}
	if got := reader.PlacementTable().Epoch; got != 1 {
		t.Errorf("reader still on epoch %d", got)
	}

	// Write path: a fresh stale client fans a store over the epoch-0 set of
	// model 5 — {1, 2} — which includes the departed provider 1, forcing a
	// wrong-epoch rejection on that leg.
	writer := ec.dialClient(t, epoch0)
	ec.store(t, writer, 5)
	if got := writer.PlacementTable().Epoch; got != 1 {
		t.Errorf("writer still on epoch %d", got)
	}
	if _, err := ec.cli.GetMeta(ctx, 5); err != nil {
		t.Errorf("model stored by stale client unreadable: %v", err)
	}
	ec.assertConverged(t, 5)
}

// TestMutationDeferredDuringMigration is the new-epoch-provider vs
// not-yet-migrated-model direction: with the dual view armed but the data
// not yet moved, a refcount mutation hits a catching-up replica that does
// not hold the model. The leg must defer (not fail), the mutation must
// succeed, and the resumed migration must replay the journaled delta so
// the new replica set converges on the post-mutation counts.
func TestMutationDeferredDuringMigration(t *testing.T) {
	ec := newElasticCluster(t, 4, 0, 2)
	ctx := context.Background()
	ec.store(t, ec.cli, 1) // epoch-0 set {1, 2}

	cur := ec.cli.PlacementTable()
	next, err := cur.WithoutMember(2)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(next.ReplicaSet(1), cur.ReplicaSet(1)) {
		t.Fatal("test premise broken: draining member 2 did not move model 1")
	}
	// Arm the dual view by hand — the rebalancer's phase 1 without its
	// migration phases, freezing the deployment mid-transition.
	dual := &placement.State{Cur: next, Prev: cur}
	for _, p := range ec.provs {
		if err := p.SetPlacementState(dual); err != nil {
			t.Fatal(err)
		}
	}
	if err := ec.cli.SetPlacementState(next, cur); err != nil {
		t.Fatal(err)
	}

	if err := ec.cli.refCall(ctx, proto.RPCIncRef, 1, []graph.VertexID{0, 1}); err != nil {
		t.Fatalf("inc_ref during migration: %v", err)
	}
	if got := ec.reg.Counter("client.migration_deferred").Load(); got == 0 {
		t.Error("no leg deferred — the catching-up replica accepted or failed instead")
	}

	// Resume the migration (the client is dual on the same target) and
	// verify the deferred delta reached the new owners.
	if _, err := NewRebalancer(ec.cli).Rebalance(ctx, next); err != nil {
		t.Fatalf("resumed rebalance: %v", err)
	}
	ec.assertConverged(t, 1)
}

// TestClientEpochZeroGolden pins the client-level compatibility proof: the
// default (epoch-0) table places every model exactly where the legacy
// modulo scheme did, for R=1 and R>1.
func TestClientEpochZeroGolden(t *testing.T) {
	for _, n := range []int{1, 3, 4, 5, 8} {
		for _, r := range []int{1, 2, 3} {
			if r > n {
				continue
			}
			cli := New(make([]rpc.Conn, n), WithReplicas(r))
			for id := 0; id < 512; id++ {
				home := id % n
				want := make([]int, r)
				for i := range want {
					want[i] = (home + i) % n
				}
				if got := cli.ReplicaSet(ownermap.ModelID(id)); !reflect.DeepEqual(got, want) {
					t.Fatalf("n=%d R=%d: ReplicaSet(%d) = %v, want %v", n, r, id, got, want)
				}
				if got := cli.HomeProvider(ownermap.ModelID(id)); got != home {
					t.Fatalf("n=%d: HomeProvider(%d) = %d, want %d", n, id, got, home)
				}
			}
		}
	}
}

// unhealthyConn is a connection whose breaker reports a fixed health
// state; it never carries a call.
type unhealthyConn struct{ healthy bool }

func (u *unhealthyConn) Call(context.Context, string, rpc.Message) (rpc.Message, error) {
	return rpc.Message{}, rpc.ErrUnavailable
}
func (u *unhealthyConn) Addr() string  { return "test" }
func (u *unhealthyConn) Close() error  { return nil }
func (u *unhealthyConn) Healthy() bool { return u.healthy }

// TestReadOrderAllBreakersOpen pins the unhealthy-tail ordering: when
// every replica sits behind an open breaker, the read order must degrade
// to exactly the placement order — home provider first — not an arbitrary
// permutation of the unhealthy set.
func TestReadOrderAllBreakersOpen(t *testing.T) {
	conns := make([]rpc.Conn, 4)
	for i := range conns {
		conns[i] = &unhealthyConn{healthy: false}
	}
	cli := New(conns, WithReplicas(3), WithRegistry(metrics.NewRegistry()))

	// Model 6: home 2, placement order [2 3 0].
	if got := cli.readOrder(6); !reflect.DeepEqual(got, []int{2, 3, 0}) {
		t.Errorf("all breakers open: readOrder(6) = %v, want placement order [2 3 0]", got)
	}

	// Mixed health: healthy replicas lead in placement order, the open
	// breaker sorts last.
	conns[2] = &unhealthyConn{healthy: false}
	conns[3] = &unhealthyConn{healthy: true}
	conns[0] = &unhealthyConn{healthy: true}
	cli = New(conns, WithReplicas(3), WithRegistry(metrics.NewRegistry()))
	if got := cli.readOrder(6); !reflect.DeepEqual(got, []int{3, 0, 2}) {
		t.Errorf("mixed health: readOrder(6) = %v, want [3 0 2]", got)
	}
}
