package client

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/ownermap"
	"repro/internal/proto"
	"repro/internal/provider"
	"repro/internal/rpc"
)

// downConn simulates a crashed provider: while down, every call fails
// transiently without reaching it — the shape of a killed process or a
// partitioned link as the retry layer reports it.
type downConn struct {
	rpc.Conn
	down atomic.Bool
}

func (c *downConn) Call(ctx context.Context, name string, req rpc.Message) (rpc.Message, error) {
	if c.down.Load() {
		return rpc.Message{}, rpc.MarkTransient(fmt.Errorf("replica down"))
	}
	return c.Conn.Call(ctx, name, req)
}

// Healthy mirrors what a resilient.Conn's breaker would report once the
// outage trips it: the repairer must skip, and read failover must demote,
// the dead replica.
func (c *downConn) Healthy() bool { return !c.down.Load() }

// downCluster is a 2-provider deployment with R=2 (every model on both)
// where provider 1 can be killed and healed at will.
func downCluster(t testing.TB, opts ...Option) ([]*provider.Provider, *Client, *downConn) {
	t.Helper()
	var d *downConn
	wrap := map[int]func(rpc.Conn) rpc.Conn{
		1: func(c rpc.Conn) rpc.Conn { d = &downConn{Conn: c}; return d },
	}
	provs, cli := newHookCluster(t, 2, wrap, append([]Option{WithReplicas(2)}, opts...)...)
	return provs, cli, d
}

// TestMutatePartialErrorTyped pins the satellite bugfix: a replicated
// mutation that lands on some replicas but not others must come back as a
// typed *PartialMutateError naming both camps, not a flat errors.Join the
// caller cannot act on.
func TestMutatePartialErrorTyped(t *testing.T) {
	provs, cli, d := downCluster(t)
	ctx := context.Background()
	f := flatten(t, 4)
	if err := cli.Store(ctx, metaFor(f, 2, 1, 0.5), segsFor(f, model.Materialize(f, 1))); err != nil {
		t.Fatal(err)
	}

	d.down.Store(true)
	err := cli.refCall(ctx, proto.RPCIncRef, 2, []graph.VertexID{0})
	if err == nil {
		t.Fatal("partial IncRef succeeded in strict mode")
	}
	var pme *PartialMutateError
	if !errors.As(err, &pme) {
		t.Fatalf("error is %T (%v), want *PartialMutateError", err, err)
	}
	if pme.Op != proto.RPCIncRef || pme.Model != 2 {
		t.Errorf("Op/Model = %s/%d, want %s/2", pme.Op, pme.Model, proto.RPCIncRef)
	}
	if len(pme.Succeeded) != 1 || pme.Succeeded[0] != 0 {
		t.Errorf("Succeeded = %v, want [0]", pme.Succeeded)
	}
	if len(pme.Failed) != 1 || pme.Failed[0] != 1 {
		t.Errorf("Failed = %v, want [1]", pme.Failed)
	}
	if !pme.Transient() {
		t.Error("all legs failed transiently but Transient() = false")
	}
	if len(pme.Errs) != 1 || !rpc.IsTransient(pme.Errs[0]) {
		t.Errorf("Errs = %v, want one transient cause", pme.Errs)
	}
	// Strict mode queues nothing.
	if q := cli.DrainRepairTargets(); len(q) != 0 {
		t.Errorf("strict-mode partial queued repair targets: %+v", q)
	}
	// The surviving replica did apply the pin — exactly the divergence the
	// typed error is for.
	if got := provs[0].RefCount(2, 0); got != 2 {
		t.Errorf("accepted replica refcount = %d, want 2", got)
	}
}

// TestPartialWriteAcceptedQueuedAndRepaired is the end-to-end tentpole
// path in miniature: kill a replica, write through the outage with
// partial writes on, heal, repair, and require bit-identical digests.
func TestPartialWriteAcceptedQueuedAndRepaired(t *testing.T) {
	reg := metrics.NewRegistry()
	provs, cli, d := downCluster(t, WithPartialWrites(), WithRegistry(reg))
	ctx := context.Background()
	f := flatten(t, 4)

	d.down.Store(true)
	if err := cli.Store(ctx, metaFor(f, 2, 1, 0.5), segsFor(f, model.Materialize(f, 1))); err != nil {
		t.Fatalf("partial store not accepted: %v", err)
	}
	if _, err := provs[0].GetMeta(2); err != nil {
		t.Fatalf("surviving replica lost the model: %v", err)
	}
	if _, err := provs[1].GetMeta(2); err == nil {
		t.Fatal("down replica somehow has the model")
	}
	if got := reg.Counter("client.partial_write").Load(); got == 0 {
		t.Error("client.partial_write counter untouched")
	}
	q := cli.DrainRepairTargets()
	if len(q) != 1 || q[0].Model != 2 || q[0].Op != proto.RPCStoreModel {
		t.Fatalf("repair queue = %+v, want model 2 via store_model", q)
	}

	rep := NewRepairer(cli)
	// While the replica is down, repair must skip, not thrash.
	if _, err := rep.RepairModel(ctx, 2); !errors.Is(err, ErrReplicaUnhealthy) {
		t.Fatalf("repair against a down replica: %v, want ErrReplicaUnhealthy", err)
	}

	d.down.Store(false)
	if diverged, err := rep.Check(ctx); err != nil || len(diverged) != 1 || diverged[0] != 2 {
		t.Fatalf("Check = %v, %v; want [2]", diverged, err)
	}
	st, err := rep.RepairAll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Repaired != 1 {
		t.Errorf("RepairStats.Repaired = %d, want 1", st.Repaired)
	}
	_, ds, err := rep.ModelDigests(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !allConverged(ds) {
		t.Fatalf("digests still diverged after repair: %+v", ds)
	}
	// The healed replica serves the real bytes, not just a matching hash.
	meta1, err := provs[1].GetMeta(2)
	if err != nil {
		t.Fatalf("healed replica has no catalog entry: %v", err)
	}
	if meta1.Seq != 1 {
		t.Errorf("healed replica seq = %d, want 1", meta1.Seq)
	}
	table, parts, err := provs[1].ReadSegments(2, meta1.OwnerMap.Owners()[0].Vertices)
	if err != nil {
		t.Fatalf("healed replica cannot serve segments: %v", err)
	}
	want := segsFor(f, model.Materialize(f, 1))
	for i, ref := range table {
		if !bytes.Equal(parts[i], want[ref.Vertex]) {
			t.Fatalf("vertex %d repaired with wrong bytes", ref.Vertex)
		}
	}
	// A second sweep finds nothing to do.
	if diverged, err := rep.Check(ctx); err != nil || len(diverged) != 0 {
		t.Fatalf("post-repair Check = %v, %v; want clean", diverged, err)
	}
}

// TestPartialWriteRemoteErrorNotAccepted: a replica that *rejected* the
// write (application error) is a real disagreement, not an outage —
// partial-writes mode must still fail the mutation.
func TestPartialWriteRemoteErrorNotAccepted(t *testing.T) {
	provs, cli, _ := downCluster(t, WithPartialWrites())
	ctx := context.Background()
	f := flatten(t, 4)

	// Pre-plant model 2 on provider 1 under a different ReqID: the fan-out
	// store will land on provider 0 and be rejected as "already stored" on
	// provider 1 — a remote, permanent error.
	om := ownermap.New(2, 1, f.Graph.NumVertices())
	var table []proto.SegmentRef
	var segs [][]byte
	for v, s := range segsFor(f, model.Materialize(f, 1)) {
		table = append(table, proto.SegmentRef{Vertex: graph.VertexID(v), Length: uint32(len(s))})
		segs = append(segs, s)
	}
	pre := &proto.StoreModelReq{Model: 2, Seq: 1, Quality: 0.5, Graph: f.Graph, OwnerMap: om, Segments: table, ReqID: 999}
	if err := provs[1].StoreModel(pre, segs); err != nil {
		t.Fatal(err)
	}

	err := cli.Store(ctx, metaFor(f, 2, 1, 0.5), segsFor(f, model.Materialize(f, 1)))
	if err == nil {
		t.Fatal("store with a rejecting replica was accepted as partial")
	}
	var pme *PartialMutateError
	if !errors.As(err, &pme) {
		t.Fatalf("error is %T (%v), want *PartialMutateError", err, err)
	}
	if pme.Transient() {
		t.Error("remote rejection classified transient")
	}
	if q := cli.DrainRepairTargets(); len(q) != 0 {
		t.Errorf("rejected write queued repair targets: %+v", q)
	}
}

// TestRepairConvergenceUnderLoad kills a replica in the middle of a
// concurrent workload — stores, a lineage pin, a retirement — heals it,
// and requires every model's replica digests to converge with zero lost
// refcount deltas. Run with -race: partial acceptance, the repair queue
// and overlapping repair passes all run concurrently here.
func TestRepairConvergenceUnderLoad(t *testing.T) {
	provs, cli, d := downCluster(t, WithPartialWrites())
	ctx := context.Background()
	f := flatten(t, 4)

	// Healthy phase: a base model (lineage ancestor) and a victim for the
	// mid-outage retirement, fully replicated.
	for _, id := range []ownermap.ModelID{2, 4} {
		if err := cli.Store(ctx, metaFor(f, id, uint64(id), 0.5), segsFor(f, model.Materialize(f, uint64(id)))); err != nil {
			t.Fatal(err)
		}
	}

	// Outage: provider 1 dies mid-workload. Every op below must succeed
	// anyway — that is the partial-write contract.
	d.down.Store(true)
	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for _, id := range []ownermap.ModelID{5, 6, 7, 8, 9, 10} {
		wg.Add(1)
		go func(id ownermap.ModelID) {
			defer wg.Done()
			if err := cli.Store(ctx, metaFor(f, id, uint64(id), 0.5), segsFor(f, model.Materialize(f, uint64(id)))); err != nil {
				errCh <- fmt.Errorf("store %d during outage: %w", id, err)
			}
		}(id)
	}
	wg.Add(2)
	go func() { // derived store: pins base 2's vertex 0 through the outage
		defer wg.Done()
		meta := derivedChildMeta(t, f, 2, 3)
		if err := cli.Store(ctx, meta, segsFor(f, model.Materialize(f, 2))); err != nil {
			errCh <- fmt.Errorf("derived store during outage: %w", err)
		}
	}()
	go func() { // retirement: tombstone + decrements through the outage
		defer wg.Done()
		if _, err := cli.Retire(ctx, 4); err != nil {
			errCh <- fmt.Errorf("retire during outage: %w", err)
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Heal, then converge — two overlapping passes, because repair is
	// convergent and a ticker sweep may race a manual one in production.
	d.down.Store(false)
	rep := NewRepairer(cli)
	var rwg sync.WaitGroup
	repErr := make(chan error, 2)
	for i := 0; i < 2; i++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			if _, err := rep.RepairAll(ctx); err != nil {
				repErr <- err
			}
		}()
	}
	rwg.Wait()
	close(repErr)
	for err := range repErr {
		t.Fatal(err)
	}

	// Every model: digests bit-identical across the replica set, straight
	// from the providers (not through the repairer's own RPCs).
	for _, id := range []ownermap.ModelID{2, 3, 4, 5, 6, 7, 8, 9, 10} {
		d0, d1 := provs[0].Digest(id), provs[1].Digest(id)
		if !d0.Converged(d1) {
			t.Errorf("model %d diverged after repair:\n  p0: %+v\n  p1: %+v", id, d0, d1)
		}
	}
	// Zero lost refcount deltas: the base keeps exactly its own pin plus
	// the child's, on both replicas.
	for pi, p := range provs {
		if got := p.RefCount(2, 0); got != 2 {
			t.Errorf("provider %d: base vertex 0 refcount = %d, want 2", pi, got)
		}
	}
	// The retired model is gone everywhere.
	for pi, p := range provs {
		if _, err := p.GetMeta(4); err == nil {
			t.Errorf("provider %d still catalogs retired model 4", pi)
		}
	}
	// And a full load of the lineage child still reconstructs the right
	// bytes after repair.
	got, err := cli.Load(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := segsFor(f, model.Materialize(f, 2))
	for v := 1; v < f.Graph.NumVertices(); v++ {
		if !bytes.Equal(got.Segments[v], want[v]) {
			t.Fatalf("child vertex %d corrupted", v)
		}
	}
}
