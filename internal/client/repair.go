package client

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/frontdoor"
	"repro/internal/metrics"
	"repro/internal/ownermap"
	"repro/internal/proto"
	"repro/internal/rpc"
)

// Anti-entropy repair: the client-side half of the repair protocol in
// internal/proto/repair.go. With partial writes enabled (WithPartialWrites)
// a replicated mutation no longer requires every replica: if at least one
// replica accepts and every failed leg looks like an outage (transient),
// the write is reported as succeeded and the model is queued for repair.
// The Repairer — run periodically in-process (Run), woken the moment a
// provider's circuit breaker re-closes, or driven by hand via
// evostore-ctl repair — walks replica sets, compares per-model digests,
// and converges stragglers from their up-to-date siblings:
//
//  1. Pull every replica's repair state (digest, metadata, refcounts,
//     refcount-delta journal) — no payloads yet.
//  2. If all digests agree, done. Otherwise merge: take the union of the
//     replicas' journals by ReqID and push each replica the deltas it has
//     not seen, plus the retire tombstone and catalog metadata it lacks.
//     ReqIDs make the union well-defined: all fan-out legs of one logical
//     write share one ID, and provider journals absorb re-deliveries.
//  3. Replicas answer with the vertices whose payloads they now need;
//     those are pulled from a sibling that has them and applied.
//  4. Verify by digest. If any journal was trimmed (merge would be
//     unsound) or the merge did not converge, fall back to an absolute
//     push of an authority replica's full state.
//
// The convergence guarantee — every refcount delta that any replica
// accepted survives repair — holds as long as journals are not trimmed;
// trimming switches that model to the absolute fallback, which restores
// replica agreement but adopts the authority's view.

// WithPartialWrites lets replicated mutations succeed on a subset of
// replicas when the failed legs are transient (outage-shaped), queueing
// the model for anti-entropy repair instead of undoing the write. Off by
// default: the strict all-replicas contract stays unless a deployment
// opts into running a Repairer.
func WithPartialWrites() Option {
	return func(c *Client) { c.partialWrites = true }
}

// RepairTarget is one model queued for repair after a partial write.
type RepairTarget struct {
	Model ownermap.ModelID
	Op    string // the RPC whose fan-out was partial
}

// repairQueueCap bounds the partial-write queue. The queue is an
// accelerator, not the source of truth — RepairAll sweeps every model
// regardless — so dropping under pressure is safe.
const repairQueueCap = 1024

// acceptPartial reports whether err is a partial-write failure the
// repairer is guaranteed to converge: partial writes are enabled, at
// least one replica accepted, and every failed leg was transient. If so
// the model is queued for repair and the mutation counts as accepted.
func (c *Client) acceptPartial(op string, id ownermap.ModelID, err error) bool {
	if !c.partialWrites {
		return false
	}
	var pme *PartialMutateError
	if !errors.As(err, &pme) || !pme.Transient() {
		return false
	}
	c.partialAcc.Inc()
	c.queueRepair(op, id)
	return true
}

// queueRepair enqueues a model for the next repair pass (deduplicated;
// dropped under pressure — the queue accelerates RepairAll, it is not the
// source of truth).
func (c *Client) queueRepair(op string, id ownermap.ModelID) {
	c.repairMu.Lock()
	defer c.repairMu.Unlock()
	if c.repairSeen[id] {
		return
	}
	if len(c.repairQ) >= repairQueueCap {
		c.repairDrops.Inc()
		return
	}
	c.repairSeen[id] = true
	c.repairQ = append(c.repairQ, RepairTarget{Model: id, Op: op})
}

// DrainRepairTargets returns and clears the models queued by accepted
// partial writes, oldest first.
func (c *Client) DrainRepairTargets() []RepairTarget {
	c.repairMu.Lock()
	defer c.repairMu.Unlock()
	q := c.repairQ
	c.repairQ = nil
	c.repairSeen = make(map[ownermap.ModelID]bool)
	return q
}

// ErrReplicaUnhealthy marks a model whose repair was skipped because a
// replica sits behind an open breaker: repairing around a provider that
// is still down would do nothing but burn its cooldown probes. The
// repairer retries once the breaker re-closes (see Run).
var ErrReplicaUnhealthy = errors.New("replica behind an open breaker")

// stateNotifier mirrors resilient.Conn's SetStateListener without
// importing the package; connections lacking it simply cannot wake the
// repairer early.
type stateNotifier interface {
	SetStateListener(func(addr, state string))
}

// Repairer drives anti-entropy convergence over a client's deployment.
// Safe for concurrent use; repairs are convergent, so overlapping passes
// (a ticker sweep racing a manual evostore-ctl run) are harmless.
type Repairer struct {
	c *Client

	checked   *metrics.Counter // models whose replica digests were compared
	divergent *metrics.Counter // models found diverged
	repaired  *metrics.Counter // models converged by a repair pass
	skipped   *metrics.Counter // models skipped on an unhealthy replica
	absolute  *metrics.Counter // repairs that used the absolute fallback
	failures  *metrics.Counter // repair passes that errored
	moved     *metrics.Counter // payload bytes shipped between replicas by repair

	// budget, when set, paces payload movement: every batch of repair
	// bytes is charged against it and the repairer sleeps until the
	// budget's bucket admits more, bounding the background migration
	// bandwidth a rebalance steals from foreground traffic.
	budget atomic.Pointer[frontdoor.Waiter]
}

// NewRepairer returns a Repairer over c's providers and metrics registry.
func NewRepairer(c *Client) *Repairer {
	return &Repairer{
		c:         c,
		checked:   c.reg.Counter("client.repair_checked"),
		divergent: c.reg.Counter("client.repair_diverged"),
		repaired:  c.reg.Counter("client.repair_converged"),
		skipped:   c.reg.Counter("client.repair_skip_unhealthy"),
		absolute:  c.reg.Counter("client.repair_absolute"),
		failures:  c.reg.Counter("client.repair_error"),
		moved:     c.reg.Counter("client.repair_payload_bytes"),
	}
}

// SetPayloadBudget bounds the repairer's payload bandwidth to bytesPerSec
// (0 removes the bound). Charging happens after each pulled batch — the
// bytes have already moved — so the pacing follows frontdoor's charge-
// into-debt model: an oversized batch puts the bucket in debt and the
// next batch waits the debt out.
func (r *Repairer) SetPayloadBudget(bytesPerSec float64) {
	if bytesPerSec <= 0 {
		r.budget.Store(nil)
		return
	}
	r.budget.Store(frontdoor.NewWaiter(frontdoor.Limits{BytesPerSec: bytesPerSec}))
}

// pacePayload charges n moved bytes against the budget and blocks until
// the budget re-admits. A nil budget admits immediately.
func (r *Repairer) pacePayload(ctx context.Context, n uint64) error {
	w := r.budget.Load()
	if w == nil || n == 0 {
		return nil
	}
	w.ChargeBytes(int(n))
	_, err := w.Wait(ctx)
	return err
}

// RepairStats summarizes one RepairAll sweep.
type RepairStats struct {
	Checked  int // replicated models examined
	Repaired int // models that needed and received repair
	Skipped  int // models skipped because a replica was unhealthy
}

// replicasHealthy reports whether every replica's connection would admit
// a call right now.
func (r *Repairer) replicasHealthy(set []int) bool {
	for _, pi := range set {
		if h, ok := r.c.conns[pi].(healthReporter); ok && !h.Healthy() {
			return false
		}
	}
	return true
}

// allConverged reports whether every digest agrees with the first.
// Converged is transitive over a fixed model, so pairwise against one
// pivot suffices.
func allConverged(ds []proto.ModelDigest) bool {
	for _, d := range ds[1:] {
		if !ds[0].Converged(d) {
			return false
		}
	}
	return true
}

// ModelDigests fetches id's digest from every replica, for introspection
// (evostore-ctl digest) and convergence assertions in tests and benches.
// The returned provider indices parallel the digests.
func (r *Repairer) ModelDigests(ctx context.Context, id ownermap.ModelID) ([]int, []proto.ModelDigest, error) {
	set := r.c.ReplicaSet(id)
	req := rpc.Message{Meta: proto.EncodeModelList([]ownermap.ModelID{id})}
	ds := make([]proto.ModelDigest, len(set))
	for i, pi := range set {
		resp, err := r.c.conns[pi].Call(ctx, proto.RPCDigest, req)
		if err != nil {
			return nil, nil, fmt.Errorf("client: digest %d on provider %d: %w", id, pi, err)
		}
		got, err := proto.DecodeDigests(resp.Meta)
		if err == nil && len(got) != 1 {
			err = fmt.Errorf("%d digests for 1 model", len(got))
		}
		if err != nil {
			return nil, nil, fmt.Errorf("client: digest %d on provider %d: %w", id, pi, err)
		}
		ds[i] = got[0]
	}
	return set, ds, nil
}

// RepairModel converges one model's replica set. It reports whether a
// repair was applied (false: already converged or unreplicated). Returns
// ErrReplicaUnhealthy without touching anything when a replica is behind
// an open breaker.
func (r *Repairer) RepairModel(ctx context.Context, id ownermap.ModelID) (bool, error) {
	return r.repairSet(ctx, id, r.c.ReplicaSet(id))
}

// repairSet is RepairModel over an explicit provider set — the rebalancer
// converges a migrating model across the union of both epochs' replica
// sets with the same machinery RepairModel applies to the current set.
func (r *Repairer) repairSet(ctx context.Context, id ownermap.ModelID, set []int) (bool, error) {
	if len(set) == 1 {
		return false, nil
	}
	if !r.replicasHealthy(set) {
		r.skipped.Inc()
		return false, fmt.Errorf("client: repair %d: %w", id, ErrReplicaUnhealthy)
	}
	r.checked.Inc()

	// Pull every replica's state, payloads excluded.
	pulls := make([]*proto.RepairPullResp, len(set))
	digests := make([]proto.ModelDigest, len(set))
	pullReq := rpc.Message{Meta: (&proto.RepairPullReq{Model: id}).Encode()}
	for i, pi := range set {
		resp, err := r.c.conns[pi].Call(ctx, proto.RPCRepairPull, pullReq)
		if err == nil {
			pulls[i], err = proto.DecodeRepairPullResp(resp.Meta)
		}
		if err != nil {
			r.failures.Inc()
			return false, fmt.Errorf("client: repair %d: pull from provider %d: %w", id, pi, err)
		}
		digests[i] = pulls[i].Digest
	}
	if allConverged(digests) {
		return false, nil
	}
	r.divergent.Inc()

	// A retire anywhere wins everywhere: Retire removes the catalog entry
	// before its DecRefs run, so a tombstone always postdates the store it
	// kills.
	anyRetired, trimmed := false, false
	var tombSeq uint64
	for _, d := range digests {
		if d.Retired {
			anyRetired = true
			if !d.Present && d.Seq > tombSeq {
				tombSeq = d.Seq
			}
		}
		if d.Trimmed {
			trimmed = true
		}
	}
	// Catalog authority: the replica holding the newest metadata. Moot
	// once retired — installing metadata a tombstone will reject is wasted
	// bytes.
	metaIdx := -1
	if !anyRetired {
		for i, d := range digests {
			if d.Present && (metaIdx < 0 || d.Seq > digests[metaIdx].Seq) {
				metaIdx = i
			}
		}
	}

	post := make([]proto.ModelDigest, len(set))
	runPass := func(build func(i int) *proto.RepairApplyReq) error {
		for i := range set {
			resp, err := r.apply(ctx, set[i], build(i), nil)
			if err == nil && len(resp.NeedPayload) > 0 {
				resp, err = r.fillPayloads(ctx, id, set, i, resp)
			}
			if err != nil {
				r.failures.Inc()
				return fmt.Errorf("client: repair %d: %w", id, err)
			}
			post[i] = resp.Digest
		}
		return nil
	}

	if !trimmed {
		// Merge: push each replica the union deltas its journal has not
		// seen. Union order is replica-then-append order; order does not
		// matter for the net effect (deltas commute up to the clamp).
		var union []proto.RefDelta
		inUnion := make(map[uint64]bool)
		for _, p := range pulls {
			for _, d := range p.Journal {
				if !inUnion[d.ReqID] {
					inUnion[d.ReqID] = true
					union = append(union, d)
				}
			}
		}
		if err := runPass(func(i int) *proto.RepairApplyReq {
			seen := make(map[uint64]bool, len(pulls[i].Journal))
			for _, d := range pulls[i].Journal {
				seen[d.ReqID] = true
			}
			var missing []proto.RefDelta
			for _, d := range union {
				if !seen[d.ReqID] {
					missing = append(missing, d)
				}
			}
			req := &proto.RepairApplyReq{Model: id, Tombstone: anyRetired, TombstoneSeq: tombSeq, Deltas: missing}
			if metaIdx >= 0 && !digests[i].Present {
				req.Meta = pulls[metaIdx].Meta
			}
			return req
		}); err != nil {
			return false, err
		}
		if allConverged(post) {
			r.repaired.Inc()
			return true, nil
		}
	}

	// Absolute fallback: adopt one authority replica's full state. Used
	// when a trimmed journal makes the merge unsound, or when a merge
	// pass failed to converge (which the journal invariants should make
	// impossible — the fallback keeps the guarantee unconditional).
	r.absolute.Inc()
	auth := authorityIndex(digests)
	ap := pulls[auth]
	if err := runPass(func(i int) *proto.RepairApplyReq {
		req := &proto.RepairApplyReq{
			Model: id, Tombstone: anyRetired, TombstoneSeq: tombSeq,
			ReplaceJournal:  true,
			JournalAppended: ap.Digest.Journal,
			Deltas:          ap.Journal,
			SetCounts:       ap.Counts,
		}
		if metaIdx >= 0 {
			req.Meta = pulls[metaIdx].Meta
		}
		return req
	}); err != nil {
		return false, err
	}
	if !allConverged(post) {
		r.failures.Inc()
		return true, fmt.Errorf("client: repair %d: replicas still diverged after absolute push", id)
	}
	r.repaired.Inc()
	return true, nil
}

// authorityIndex picks the replica whose state an absolute push adopts:
// the cataloged replica with the highest sequence number, else the
// replica whose journal has seen the most deltas; ties go to the lowest
// index.
func authorityIndex(ds []proto.ModelDigest) int {
	best := 0
	for i := 1; i < len(ds); i++ {
		b, d := ds[best], ds[i]
		switch {
		case d.Present != b.Present:
			if d.Present {
				best = i
			}
		case d.Present:
			if d.Seq > b.Seq {
				best = i
			}
		default:
			if d.Journal > b.Journal {
				best = i
			}
		}
	}
	return best
}

// apply pushes one RepairApply request at provider pi.
func (r *Repairer) apply(ctx context.Context, pi int, req *proto.RepairApplyReq, payloads [][]byte) (*proto.RepairApplyResp, error) {
	resp, err := r.c.conns[pi].Call(ctx, proto.RPCRepairApply, rpc.Message{Meta: req.Encode(), BulkVec: payloads})
	if err != nil {
		return nil, fmt.Errorf("apply on provider %d: %w", pi, err)
	}
	return proto.DecodeRepairApplyResp(resp.Meta)
}

// fillPayloads resolves a replica's NeedPayload list: pull the missing
// segments from a sibling that has them, apply, repeat until nothing is
// missing or no sibling can supply it. A payload no replica holds is not
// an error here — every replica then folds the same "missing" marker into
// its digest, and the convergence check has the final word.
func (r *Repairer) fillPayloads(ctx context.Context, id ownermap.ModelID, set []int, i int, last *proto.RepairApplyResp) (*proto.RepairApplyResp, error) {
	need := last.NeedPayload
	for j, pj := range set {
		if j == i || len(need) == 0 {
			continue
		}
		req := &proto.RepairPullReq{Model: id, WithPayloads: true, Vertices: need}
		msg, err := r.c.conns[pj].Call(ctx, proto.RPCRepairPull, rpc.Message{Meta: req.Encode()})
		if err != nil {
			return nil, fmt.Errorf("payload pull from provider %d: %w", pj, err)
		}
		pull, err := proto.DecodeRepairPullResp(msg.Meta)
		if err != nil {
			return nil, fmt.Errorf("payload pull from provider %d: %w", pj, err)
		}
		if len(pull.Segments) == 0 {
			continue // sibling has none of them either
		}
		payloads, err := proto.SplitBulkMsg(pull.Segments, msg)
		if err != nil {
			return nil, fmt.Errorf("payload pull from provider %d: %w", pj, err)
		}
		var moved uint64
		for _, p := range payloads {
			moved += uint64(len(p))
		}
		r.moved.Add(moved)
		if err := r.pacePayload(ctx, moved); err != nil {
			return nil, fmt.Errorf("payload budget: %w", err)
		}
		resp, err := r.apply(ctx, set[i], &proto.RepairApplyReq{Model: id, Segments: pull.Segments}, payloads)
		if err != nil {
			return nil, err
		}
		last, need = resp, resp.NeedPayload
	}
	return last, nil
}

// listAll unions every provider's RepairModels listing. Providers that
// cannot answer are tolerated (their models still appear via replicas);
// only a total failure errors.
func (r *Repairer) listAll(ctx context.Context) ([]ownermap.ModelID, error) {
	results := rpc.Broadcast(ctx, r.c.conns, proto.RPCRepairList, rpc.Message{})
	seen := make(map[ownermap.ModelID]bool)
	var all []ownermap.ModelID
	var errs []error
	ok := 0
	for i, res := range results {
		ids, err := []ownermap.ModelID(nil), res.Err
		if err == nil {
			ids, err = proto.DecodeModelList(res.Resp.Meta)
		}
		if err != nil {
			errs = append(errs, fmt.Errorf("repair list on provider %d: %w", i, err))
			continue
		}
		ok++
		for _, id := range ids {
			if !seen[id] {
				seen[id] = true
				all = append(all, id)
			}
		}
	}
	if ok == 0 && len(errs) > 0 {
		return nil, fmt.Errorf("client: repair list: %w", errors.Join(errs...))
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return all, nil
}

// sweep is the shared body of RepairAll and Check: list every model,
// pre-filter with one batched digest call per provider, then repair (or
// just report) the diverged ones.
func (r *Repairer) sweep(ctx context.Context, repair bool) (RepairStats, []ownermap.ModelID, error) {
	var st RepairStats
	ids, err := r.listAll(ctx)
	if err != nil {
		return st, nil, err
	}

	// One digest batch per provider covering every model it replicates.
	// A provider that cannot answer leaves its models "unknown", which
	// routes them through the full per-model path below.
	perProv := make(map[int][]ownermap.ModelID)
	for _, id := range ids {
		for _, pi := range r.c.ReplicaSet(id) {
			perProv[pi] = append(perProv[pi], id)
		}
	}
	type replicaModel struct {
		pi int
		id ownermap.ModelID
	}
	known := make(map[replicaModel]proto.ModelDigest)
	for pi, list := range perProv {
		resp, err := r.c.conns[pi].Call(ctx, proto.RPCDigest, rpc.Message{Meta: proto.EncodeModelList(list)})
		if err != nil {
			continue
		}
		ds, err := proto.DecodeDigests(resp.Meta)
		if err != nil || len(ds) != len(list) {
			continue
		}
		for i, id := range list {
			known[replicaModel{pi, id}] = ds[i]
		}
	}

	var diverged []ownermap.ModelID
	var errs []error
	for _, id := range ids {
		set := r.c.ReplicaSet(id)
		if len(set) == 1 {
			continue
		}
		if !r.replicasHealthy(set) {
			st.Skipped++
			continue
		}
		st.Checked++
		ds := make([]proto.ModelDigest, 0, len(set))
		for _, pi := range set {
			d, ok := known[replicaModel{pi, id}]
			if !ok {
				break
			}
			ds = append(ds, d)
		}
		if len(ds) == len(set) && allConverged(ds) {
			continue
		}
		diverged = append(diverged, id)
		if !repair {
			continue
		}
		did, err := r.RepairModel(ctx, id)
		switch {
		case errors.Is(err, ErrReplicaUnhealthy):
			st.Checked--
			st.Skipped++
		case err != nil:
			errs = append(errs, err)
		case did:
			st.Repaired++
		}
	}
	if len(errs) > 0 {
		return st, diverged, errors.Join(errs...)
	}
	return st, diverged, nil
}

// RepairAll sweeps the whole deployment once: models queued by partial
// writes are covered by the sweep, so the queue is drained up front.
// Models with an unhealthy replica are counted as skipped, not failed.
func (r *Repairer) RepairAll(ctx context.Context) (RepairStats, error) {
	r.c.DrainRepairTargets()
	st, _, err := r.sweep(ctx, true)
	return st, err
}

// Check reports the models whose replica sets have diverged, without
// repairing anything.
func (r *Repairer) Check(ctx context.Context) ([]ownermap.ModelID, error) {
	_, diverged, err := r.sweep(ctx, false)
	return diverged, err
}

// Run sweeps every interval until ctx is cancelled. Connections exposing
// SetStateListener (resilient.Conn) additionally wake the loop the moment
// a breaker re-closes — exactly when a provider has come back from the
// outage that made its writes partial. Sweep errors are recorded in the
// client.repair_error counter and retried on the next pass.
func (r *Repairer) Run(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = 30 * time.Second
	}
	wake := make(chan struct{}, 1)
	for _, conn := range r.c.conns {
		if sn, ok := conn.(stateNotifier); ok {
			sn.SetStateListener(func(_, state string) {
				if state != "closed" {
					return
				}
				select {
				case wake <- struct{}{}:
				default:
				}
			})
		}
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		case <-wake:
		}
		r.RepairAll(ctx) //nolint:errcheck // counted in client.repair_error; retried next pass
	}
}
