package client

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/frontdoor"
	"repro/internal/placement"
	"repro/internal/rpc"
)

// Hedged reads (Dean & Barroso, "The Tail at Scale", CACM 2013): instead
// of waiting for a gray-slow primary to finish or time out before failing
// over, a read that has not answered within a hedge delay launches a
// second copy against the next-best replica and takes whichever answers
// first. The hedge delay is derived from the primary's own observed p95
// (resilient.LatencyReporter) and shortened when its health score is low,
// so a struggling primary is hedged sooner; a token budget caps the extra
// request volume so hedging can never melt a fleet that is slow because
// it is overloaded. Replica failover semantics are unchanged — a
// transiently failed leg launches the next replica immediately and is not
// charged against the hedge budget.

// scoreReporter mirrors resilient.ScoreReporter without importing the
// package: any conn exposing Score() participates in score-ranked replica
// ordering and score-scaled hedge delays.
type scoreReporter interface {
	Score() float64
}

// latencyReporter mirrors resilient.LatencyReporter.
type latencyReporter interface {
	LatencyPercentile(p float64) time.Duration
}

const (
	// defaultHedgeBudget is the hedges-per-second budget when
	// WithHedgedReads is given a non-positive one.
	defaultHedgeBudget = 50
	// hedgeWindow is the budget bucket's refill window: short, so a burst
	// of slowness gets prompt hedges but sustained slowness converges to
	// the steady-state rate.
	hedgeWindow = time.Second
	// hedgeDelayFloor bounds the adaptive delay from below: hedging
	// microseconds after launch would race every healthy read.
	hedgeDelayFloor = 500 * time.Microsecond
	// fallbackHedgeDelay is used before the primary has latency samples.
	fallbackHedgeDelay = 2 * time.Millisecond
	// hedgeQuantile is the observed quantile the adaptive delay starts
	// from: hedge only the slowest ~5% of reads.
	hedgeQuantile = 0.95
)

// hedger holds the hedging configuration and budget for one Client.
type hedger struct {
	delay time.Duration // fixed hedge delay; 0 derives it per call

	mu     sync.Mutex
	bucket *frontdoor.Bucket
}

// WithHedgedReads enables hedged reads. delay is the pause before a read
// is duplicated to the next-best replica; 0 derives it per call from the
// primary's observed p95 latency, scaled down by its health score.
// budgetPerSec caps hedge launches per second fleet-wide on this client
// (<= 0: a conservative default); reads beyond the budget simply stay
// un-hedged.
func WithHedgedReads(delay time.Duration, budgetPerSec float64) Option {
	return func(c *Client) {
		if budgetPerSec <= 0 {
			budgetPerSec = defaultHedgeBudget
		}
		c.hedge = &hedger{
			delay:  delay,
			bucket: frontdoor.NewBucket(budgetPerSec, hedgeWindow),
		}
	}
}

// admit charges one hedge against the budget, reporting whether the
// hedge may launch.
func (h *hedger) admit() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	_, ok := h.bucket.Take(time.Now(), 1)
	return ok
}

// delayFor picks the hedge delay before duplicating a read in flight on
// conn to next (the replica the hedge would go to; nil when unknown).
func (h *hedger) delayFor(conn, next rpc.Conn) time.Duration {
	d := h.delay
	if d <= 0 {
		if lr, ok := conn.(latencyReporter); ok {
			d = lr.LatencyPercentile(hedgeQuantile)
		}
		// A gray-slow primary's own p95 is exactly what hedging routes
		// around, so it must not set the wait: clamp to twice what the
		// hedge target typically needs. Against a healthy primary the
		// clamp is inert (2x its sibling's p95 exceeds its own p95), so
		// only the slowest ~5% of healthy reads still hedge.
		if next != nil {
			if lr, ok := next.(latencyReporter); ok {
				if np := lr.LatencyPercentile(hedgeQuantile); np > 0 && (d <= 0 || 2*np < d) {
					d = 2 * np
				}
			}
		}
		if d <= 0 {
			d = fallbackHedgeDelay
		}
	}
	if sr, ok := conn.(scoreReporter); ok {
		// A primary already known to be struggling is hedged sooner: the
		// delay scales from 100% of base at score 1 down to 25% at 0.
		if s := sr.Score(); s < 1 {
			d = time.Duration(float64(d) * (0.25 + 0.75*s))
		}
	}
	if d < hedgeDelayFloor {
		d = hedgeDelayFloor
	}
	return d
}

// readOnceHedged is readOnce's racing counterpart: one pass over the
// replica order where the next replica is launched either immediately
// (the in-flight leg failed transiently — plain failover, not budgeted)
// or after the hedge delay (the in-flight legs are still pending and the
// budget admits — a hedge). The first success wins and cancels the rest;
// an authoritative failure from any leg settles the read just as in the
// sequential path.
func (c *Client) readOnceHedged(ctx context.Context, name string, order []int, req rpc.Message) readOutcome {
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type legResult struct {
		idx, pi int
		resp    rpc.Message
		err     error
	}
	results := make(chan legResult, len(order))
	hedged := make([]bool, len(order)) // launched as a hedge (vs primary/failover)
	launched := 0
	launch := func(asHedge bool) {
		idx, pi := launched, order[launched]
		launched++
		hedged[idx] = asHedge
		go func() {
			resp, err := c.conns[pi].Call(hctx, name, req)
			results <- legResult{idx: idx, pi: pi, resp: resp, err: err}
		}()
	}
	launch(false)
	inflight := 1

	// nextAfterLaunched is the replica the next hedge would duplicate to.
	nextAfterLaunched := func() rpc.Conn {
		if launched < len(order) {
			return c.conns[order[launched]]
		}
		return nil
	}
	timer := time.NewTimer(c.hedge.delayFor(c.conns[order[0]], nextAfterLaunched()))
	defer timer.Stop()
	rearm := func(d time.Duration) {
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(d)
	}

	var failed []error
	var staleTbl *placement.Table
	for inflight > 0 {
		var fire <-chan time.Time
		if launched < len(order) {
			fire = timer.C
		}
		select {
		case r := <-results:
			inflight--
			if r.err == nil {
				if hedged[r.idx] {
					c.hedgeWon.Inc()
				} else if r.idx > 0 {
					c.failovers.Inc()
				}
				if inflight > 0 {
					c.hedgeCancelled.Add(uint64(inflight))
				}
				return readOutcome{resp: r.resp, staleTbl: staleTbl}
			}
			if t, ok := placement.TableFromError(r.err); ok {
				staleTbl = t
			} else if !placement.IsNotMigrated(r.err) && !rpc.IsTransient(r.err) {
				if inflight > 0 {
					c.hedgeCancelled.Add(uint64(inflight))
				}
				return readOutcome{err: fmt.Errorf("provider %d: %w", r.pi, r.err), final: true, staleTbl: staleTbl}
			}
			failed = append(failed, fmt.Errorf("replica on provider %d: %w", r.pi, r.err))
			// Plain failover: replace the failed leg right away, free of
			// charge, and restart the hedge clock for the new leg.
			if launched < len(order) {
				next := c.conns[order[launched]]
				launch(false)
				inflight++
				rearm(c.hedge.delayFor(next, nextAfterLaunched()))
			}
		case <-fire:
			if c.hedge.admit() {
				c.hedgedReads.Inc()
				next := c.conns[order[launched]]
				launch(true)
				inflight++
				rearm(c.hedge.delayFor(next, nextAfterLaunched()))
			} else {
				// Budget exhausted: leave the in-flight legs to run, but
				// check back — budget refills within the window.
				c.hedgeRefused.Inc()
				rearm(hedgeWindow / 4)
			}
		}
	}
	return readOutcome{err: errors.Join(failed...), staleTbl: staleTbl}
}
