package trace

import (
	"fmt"
	"io"
	"math"
)

// RenderSVG draws the task timeline as an SVG scatter-of-bars: one row per
// worker, one bar per task, colored by the task's Value (e.g. candidate
// accuracy) from cold to warm. This is the graphical counterpart of the
// paper's Figure 9.
func (l *Log) RenderSVG(w io.Writer, workers int, title string) error {
	events := l.Events()
	makespan := l.Makespan()
	if workers <= 0 || makespan <= 0 {
		_, err := fmt.Fprint(w, `<svg xmlns="http://www.w3.org/2000/svg" width="10" height="10"/>`)
		return err
	}
	const (
		width   = 960
		rowH    = 6
		marginL = 60
		marginT = 30
		marginB = 30
	)
	height := marginT + workers*rowH + marginB
	if _, err := fmt.Fprintf(w,
		`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`+"\n",
		width+marginL+20, height); err != nil {
		return err
	}
	fmt.Fprintf(w, `<text x="%d" y="18" font-size="13">%s</text>`+"\n", marginL, escapeXML(title))

	// Value range for coloring.
	minV, maxV := math.Inf(1), math.Inf(-1)
	for _, e := range events {
		if e.Value < minV {
			minV = e.Value
		}
		if e.Value > maxV {
			maxV = e.Value
		}
	}
	if !(maxV > minV) {
		minV, maxV = 0, 1
	}

	for _, e := range events {
		if e.Worker < 0 || e.Worker >= workers {
			continue
		}
		x := marginL + e.Start/makespan*width
		barW := (e.End - e.Start) / makespan * width
		if barW < 1 {
			barW = 1
		}
		y := marginT + e.Worker*rowH
		t := (e.Value - minV) / (maxV - minV)
		r := int(40 + 200*t)
		b := int(220 - 180*t)
		fmt.Fprintf(w,
			`<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="rgb(%d,90,%d)" fill-opacity="0.8"/>`+"\n",
			x, y, barW, rowH-1, r, b)
	}

	// Axes.
	axisY := marginT + workers*rowH + 4
	fmt.Fprintf(w, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, axisY, marginL+width, axisY)
	for i := 0; i <= 4; i++ {
		x := marginL + i*width/4
		sec := makespan * float64(i) / 4
		fmt.Fprintf(w, `<text x="%d" y="%d" font-size="10">%.0fs</text>`+"\n", x-8, axisY+14, sec)
	}
	fmt.Fprintf(w, `<text x="4" y="%d" font-size="10">worker</text>`+"\n", marginT+8)
	_, err := fmt.Fprintln(w, `</svg>`)
	return err
}

func escapeXML(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '<':
			out = append(out, "&lt;"...)
		case '>':
			out = append(out, "&gt;"...)
		case '&':
			out = append(out, "&amp;"...)
		case '"':
			out = append(out, "&quot;"...)
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}
