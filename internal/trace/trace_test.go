package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestAddAndEvents(t *testing.T) {
	var l Log
	l.Add(Event{Worker: 1, Start: 2, End: 3, Kind: "train"})
	l.Add(Event{Worker: 0, Start: 1, End: 4, Kind: "io", Value: 0.9})
	events := l.Events()
	if len(events) != 2 || l.Len() != 2 {
		t.Fatalf("events = %d", len(events))
	}
	// Sorted by start.
	if events[0].Worker != 0 || events[1].Worker != 1 {
		t.Errorf("order wrong: %+v", events)
	}
	if events[0].Duration() != 3 {
		t.Errorf("Duration = %v", events[0].Duration())
	}
	if l.Makespan() != 4 {
		t.Errorf("Makespan = %v", l.Makespan())
	}
}

func TestEmptyLog(t *testing.T) {
	var l Log
	if l.Makespan() != 0 || l.WaveScore() != 0 {
		t.Error("empty log produced nonzero stats")
	}
	mean, sd := l.DurationStats()
	if mean != 0 || sd != 0 {
		t.Error("empty log duration stats nonzero")
	}
}

func TestDurationStats(t *testing.T) {
	var l Log
	l.Add(Event{Start: 0, End: 2})
	l.Add(Event{Start: 0, End: 4})
	mean, sd := l.DurationStats()
	if mean != 3 || sd != 1 {
		t.Errorf("mean=%v sd=%v, want 3, 1", mean, sd)
	}
}

func TestWaveScoreDiscriminates(t *testing.T) {
	// Synchronized waves: all tasks start at the same instants.
	var waves Log
	for wave := 0; wave < 5; wave++ {
		for w := 0; w < 20; w++ {
			s := float64(wave) * 10
			waves.Add(Event{Worker: w, Start: s, End: s + 9})
		}
	}
	// Uniform stream: starts spread evenly.
	var stream Log
	for i := 0; i < 100; i++ {
		s := float64(i) * 0.5
		stream.Add(Event{Worker: i % 20, Start: s, End: s + 9})
	}
	if waves.WaveScore() <= stream.WaveScore() {
		t.Errorf("wave=%v stream=%v", waves.WaveScore(), stream.WaveScore())
	}
}

func TestConcurrentAdd(t *testing.T) {
	var l Log
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Add(Event{Worker: w, Start: float64(i), End: float64(i) + 1})
			}
		}(w)
	}
	wg.Wait()
	if l.Len() != 800 {
		t.Errorf("Len = %d", l.Len())
	}
}

func TestRenderASCII(t *testing.T) {
	var l Log
	l.Add(Event{Worker: 0, Start: 0, End: 5})
	l.Add(Event{Worker: 1, Start: 5, End: 10})
	var sb strings.Builder
	l.RenderASCII(&sb, 2, 40)
	out := sb.String()
	if !strings.Contains(out, "w000") || !strings.Contains(out, "w001") {
		t.Errorf("render missing rows:\n%s", out)
	}
	if !strings.Contains(out, "|") {
		t.Error("render has no task markers")
	}
	// Degenerate inputs must not panic.
	var empty Log
	empty.RenderASCII(&sb, 2, 10)
}

func TestRenderSVG(t *testing.T) {
	var l Log
	l.Add(Event{Worker: 0, Start: 0, End: 5, Value: 0.7})
	l.Add(Event{Worker: 1, Start: 5, End: 10, Value: 0.9})
	var sb strings.Builder
	if err := l.RenderSVG(&sb, 2, `run "A" <test>`); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "<svg") || !strings.Contains(out, "</svg>") {
		t.Error("not an SVG document")
	}
	if strings.Count(out, "<rect") != 2 {
		t.Errorf("want 2 bars, got %d", strings.Count(out, "<rect"))
	}
	if strings.Contains(out, `run "A" <test>`) {
		t.Error("title not XML-escaped")
	}
	if !strings.Contains(out, "&quot;A&quot; &lt;test&gt;") {
		t.Error("escaped title missing")
	}
	// Degenerate input must still emit valid SVG.
	var empty Log
	sb.Reset()
	if err := empty.RenderSVG(&sb, 0, "x"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "<svg") {
		t.Error("degenerate SVG missing")
	}
}
