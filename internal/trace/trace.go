// Package trace records per-worker task timelines: the data behind the
// paper's Figure 9 (task start/finish timestamps per GPU). Times are
// float64 seconds on whichever clock the experiment uses (virtual or wall).
package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
)

// Event is one completed task on one worker.
type Event struct {
	Worker int
	Start  float64
	End    float64
	// Kind labels the task ("train", "io", ...), free-form.
	Kind string
	// Value carries a task-specific metric (e.g. candidate accuracy).
	Value float64
}

// Duration returns End-Start.
func (e Event) Duration() float64 { return e.End - e.Start }

// Log is a concurrency-safe event collector.
type Log struct {
	mu     sync.Mutex
	events []Event
}

// Add records an event.
func (l *Log) Add(e Event) {
	l.mu.Lock()
	l.events = append(l.events, e)
	l.mu.Unlock()
}

// Events returns a snapshot sorted by start time (ties by worker).
func (l *Log) Events() []Event {
	l.mu.Lock()
	out := append([]Event(nil), l.events...)
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Worker < out[j].Worker
	})
	return out
}

// Len returns the number of recorded events.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Makespan returns the latest End across events (0 when empty).
func (l *Log) Makespan() float64 {
	var end float64
	for _, e := range l.Events() {
		if e.End > end {
			end = e.End
		}
	}
	return end
}

// DurationStats returns mean and standard deviation of task durations —
// the paper uses the task-runtime stddev (17.91 vs 16.15) to explain the
// HDF5+PFS controller delays.
func (l *Log) DurationStats() (mean, stddev float64) {
	events := l.Events()
	if len(events) == 0 {
		return 0, 0
	}
	for _, e := range events {
		mean += e.Duration()
	}
	mean /= float64(len(events))
	for _, e := range events {
		d := e.Duration() - mean
		stddev += d * d
	}
	return mean, math.Sqrt(stddev / float64(len(events)))
}

// WaveScore quantifies how synchronized task starts are: it is the mean
// pairwise-nearest distance between consecutive start-time clusters.
// Concretely we bucket starts into makespan/50 bins and return the
// coefficient of variation of bin occupancy — high values mean starts
// arrive in waves (DH-NoTransfer), low values mean a steady stream
// (EvoStore). Figure 9's visual "wave behaviour", made numeric.
func (l *Log) WaveScore() float64 {
	events := l.Events()
	if len(events) < 2 {
		return 0
	}
	makespan := l.Makespan()
	if makespan <= 0 {
		return 0
	}
	const bins = 50
	counts := make([]float64, bins)
	for _, e := range events {
		b := int(e.Start / makespan * bins)
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	var mean float64
	for _, c := range counts {
		mean += c
	}
	mean /= bins
	if mean == 0 {
		return 0
	}
	var variance float64
	for _, c := range counts {
		d := c - mean
		variance += d * d
	}
	variance /= bins
	return math.Sqrt(variance) / mean
}

// RenderASCII draws the timeline as rows of workers with one '▬' per task
// span, at the given column resolution. It is the textual stand-in for
// Figure 9's scatter plot.
func (l *Log) RenderASCII(w io.Writer, workers, cols int) {
	events := l.Events()
	makespan := l.Makespan()
	if makespan <= 0 || workers <= 0 {
		return
	}
	rows := make([][]byte, workers)
	for i := range rows {
		rows[i] = make([]byte, cols)
		for j := range rows[i] {
			rows[i][j] = ' '
		}
	}
	for _, e := range events {
		if e.Worker < 0 || e.Worker >= workers {
			continue
		}
		s := int(e.Start / makespan * float64(cols))
		t := int(e.End / makespan * float64(cols))
		if s >= cols {
			s = cols - 1
		}
		if t >= cols {
			t = cols - 1
		}
		row := rows[e.Worker]
		row[s] = '|'
		for j := s + 1; j < t; j++ {
			if row[j] == ' ' {
				row[j] = '-'
			}
		}
		if t > s {
			row[t] = '|'
		}
	}
	for i := workers - 1; i >= 0; i-- {
		fmt.Fprintf(w, "w%03d %s\n", i, rows[i])
	}
	fmt.Fprintf(w, "     0%*s%.1fs\n", cols-4, "", makespan)
}
