package provider

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/kvstore"
	"repro/internal/ownermap"
	"repro/internal/proto"
)

// twin returns two providers and a store request applied to both (A) or
// only the first (aOnly=false stores on both).
func storedTwin(t *testing.T, id ownermap.ModelID, reqID uint64, both bool) (*Provider, *Provider, *proto.StoreModelReq, [][]byte) {
	t.Helper()
	a, b := New(0, kvstore.NewMemKV(4)), New(1, kvstore.NewMemKV(4))
	g := chainGraph(1, 2, 3)
	req, segs := storeReq(id, 1, 0.5, g)
	req.ReqID = reqID
	if err := a.StoreModel(req, segs); err != nil {
		t.Fatal(err)
	}
	if both {
		if err := b.StoreModel(req, segs); err != nil {
			t.Fatal(err)
		}
	}
	return a, b, req, segs
}

func TestDigestMatchesAcrossIdenticalReplicas(t *testing.T) {
	a, b, _, _ := storedTwin(t, 7, 100, true)
	da, db := a.Digest(7), b.Digest(7)
	if !da.Converged(db) {
		t.Fatalf("identical replicas diverged:\n a %+v\n b %+v", da, db)
	}
	if !da.Present || da.LiveRefs != 3 {
		t.Fatalf("digest misses state: %+v", da)
	}
	// Same mutation (same ReqID) on both keeps them converged...
	for _, p := range []*Provider{a, b} {
		if err := p.incRef(7, []graph.VertexID{0}, 101); err != nil {
			t.Fatal(err)
		}
	}
	if da, db = a.Digest(7), b.Digest(7); !da.Converged(db) {
		t.Fatalf("replicas diverged after identical mutation:\n a %+v\n b %+v", da, db)
	}
	// ...a mutation applied to one replica only is visible.
	if err := a.incRef(7, []graph.VertexID{1}, 102); err != nil {
		t.Fatal(err)
	}
	if da, db = a.Digest(7), b.Digest(7); da.Converged(db) {
		t.Fatal("partial IncRef not visible in digest")
	}
	// A digest of a model nobody stored is empty and converged.
	if d := a.Digest(999); d.Present || d.Retired || d.LiveRefs != 0 {
		t.Fatalf("digest of unknown model: %+v", d)
	}
}

func TestRepairApplyMergesMissedDeltas(t *testing.T) {
	a, b, _, _ := storedTwin(t, 7, 100, true)
	// A sees an inc and a dec that B missed.
	if err := a.incRef(7, []graph.VertexID{0, 1}, 101); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.decRef(7, []graph.VertexID{1}, 102); err != nil {
		t.Fatal(err)
	}
	pull, _, err := a.RepairPull(&proto.RepairPullReq{Model: 7})
	if err != nil {
		t.Fatal(err)
	}
	if pull.Digest.Trimmed {
		t.Fatal("journal trimmed unexpectedly")
	}
	// Replay A's journal at B: the store delta is deduped by ReqID, the
	// missed inc and dec apply.
	resp, err := b.RepairApply(&proto.RepairApplyReq{Model: 7, Deltas: pull.Journal}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.NeedPayload) != 0 {
		t.Fatalf("NeedPayload = %v, want none (payloads were stored)", resp.NeedPayload)
	}
	if da, db := a.Digest(7), b.Digest(7); !da.Converged(db) {
		t.Fatalf("replicas diverged after merge:\n a %+v\n b %+v", da, db)
	}
	if n := b.RefCount(7, 0); n != 2 {
		t.Fatalf("refcount(7,0) = %d, want 2", n)
	}
	// Re-applying the same batch is a no-op (convergent).
	before := b.Digest(7)
	if _, err := b.RepairApply(&proto.RepairApplyReq{Model: 7, Deltas: pull.Journal}, nil); err != nil {
		t.Fatal(err)
	}
	if after := b.Digest(7); after != before {
		t.Fatalf("re-apply changed state:\n before %+v\n after  %+v", before, after)
	}
	// A late retry of the replayed inc is absorbed by the journal guard.
	if err := b.incRef(7, []graph.VertexID{0, 1}, 101); err != nil {
		t.Fatal(err)
	}
	if n := b.RefCount(7, 0); n != 2 {
		t.Fatalf("refcount(7,0) = %d after replayed retry, want 2", n)
	}
}

func TestRepairApplyInstallsMissedStore(t *testing.T) {
	a, b, req, _ := storedTwin(t, 7, 100, false)
	pull, payloads, err := a.RepairPull(&proto.RepairPullReq{Model: 7, WithPayloads: true})
	if err != nil {
		t.Fatal(err)
	}
	if pull.Meta == nil || len(pull.Segments) != 3 || len(payloads) != 3 {
		t.Fatalf("pull = meta %d bytes, %d segments, %d payloads", len(pull.Meta), len(pull.Segments), len(payloads))
	}
	resp, err := b.RepairApply(&proto.RepairApplyReq{
		Model:    7,
		Meta:     pull.Meta,
		Deltas:   pull.Journal,
		Segments: pull.Segments,
	}, payloads)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.NeedPayload) != 0 {
		t.Fatalf("NeedPayload = %v after payload push", resp.NeedPayload)
	}
	if da, db := a.Digest(7), b.Digest(7); !da.Converged(db) {
		t.Fatalf("replicas diverged after meta install:\n a %+v\n b %+v", da, db)
	}
	meta, err := b.GetMeta(7)
	if err != nil || meta.Seq != req.Seq || !meta.Graph.Equal(req.Graph) {
		t.Fatalf("installed meta = %+v, %v", meta, err)
	}
	table, parts, err := b.ReadSegments(7, []graph.VertexID{0, 1, 2})
	if err != nil || len(table) != 3 {
		t.Fatalf("ReadSegments after repair: %d entries, %v", len(table), err)
	}
	if string(parts[0]) != "seg-7-0" {
		t.Fatalf("repaired payload = %q", parts[0])
	}
}

func TestRepairApplyNeedPayload(t *testing.T) {
	a, b, _, _ := storedTwin(t, 7, 100, false)
	pull, _, err := a.RepairPull(&proto.RepairPullReq{Model: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Deltas without payloads: B learns the refcounts but reports the
	// missing segment bytes.
	resp, err := b.RepairApply(&proto.RepairApplyReq{Model: 7, Meta: pull.Meta, Deltas: pull.Journal}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.NeedPayload) != 3 {
		t.Fatalf("NeedPayload = %v, want 3 vertices", resp.NeedPayload)
	}
	// Targeted pull of the missing payloads, second apply resolves them.
	pull2, payloads, err := a.RepairPull(&proto.RepairPullReq{Model: 7, WithPayloads: true, Vertices: resp.NeedPayload})
	if err != nil {
		t.Fatal(err)
	}
	resp2, err := b.RepairApply(&proto.RepairApplyReq{Model: 7, Segments: pull2.Segments}, payloads)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp2.NeedPayload) != 0 {
		t.Fatalf("NeedPayload = %v after targeted push", resp2.NeedPayload)
	}
	if da, db := a.Digest(7), b.Digest(7); !da.Converged(db) {
		t.Fatalf("replicas diverged:\n a %+v\n b %+v", da, db)
	}
}

func TestRepairTombstone(t *testing.T) {
	a, b, req, segs := storedTwin(t, 7, 100, true)
	if _, err := a.Retire(7); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.decRef(7, []graph.VertexID{0, 1, 2}, 101); err != nil {
		t.Fatal(err)
	}
	da := a.Digest(7)
	if !da.Retired || da.Present || da.LiveRefs != 0 {
		t.Fatalf("digest after retire+drain: %+v", da)
	}
	if da.Converged(b.Digest(7)) {
		t.Fatal("stale replica not flagged diverged")
	}
	// Tombstone push plus the missed dec deltas drain B.
	pull, _, err := a.RepairPull(&proto.RepairPullReq{Model: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.RepairApply(&proto.RepairApplyReq{
		Model: 7, Tombstone: true, TombstoneSeq: da.Seq, Deltas: pull.Journal,
	}, nil); err != nil {
		t.Fatal(err)
	}
	if db := b.Digest(7); !da.Converged(db) {
		t.Fatalf("replicas diverged after tombstone:\n a %+v\n b %+v", da, db)
	}
	if _, err := b.GetMeta(7); err == nil {
		t.Fatal("tombstoned model still cataloged")
	}
	// A late store retry of the retired ID is rejected on both.
	for _, p := range []*Provider{a, b} {
		if err := p.StoreModel(req, segs); err == nil {
			t.Fatalf("provider %d: store of retired model accepted", p.ID())
		}
	}
	// Drained models drop out of the repair work list.
	if ids := b.RepairModels(); len(ids) != 0 {
		t.Fatalf("RepairModels = %v, want empty after drain", ids)
	}
}

func TestRepairApplyAbsoluteFallback(t *testing.T) {
	a, b, _, _ := storedTwin(t, 7, 100, true)
	// Divergence with an unmergeable history: a reqID-0 mutation marks
	// A's journal trimmed.
	if err := a.IncRef(7, []graph.VertexID{0}); err != nil {
		t.Fatal(err)
	}
	pull, payloads, err := a.RepairPull(&proto.RepairPullReq{Model: 7, WithPayloads: true})
	if err != nil {
		t.Fatal(err)
	}
	if !pull.Digest.Trimmed {
		t.Fatal("reqID-0 mutation did not mark the journal trimmed")
	}
	if _, err := b.RepairApply(&proto.RepairApplyReq{
		Model:           7,
		Meta:            pull.Meta,
		ReplaceJournal:  true,
		JournalAppended: pull.Digest.Journal,
		Deltas:          pull.Journal,
		SetCounts:       pull.Counts,
		Segments:        pull.Segments,
	}, payloads); err != nil {
		t.Fatal(err)
	}
	da, db := a.Digest(7), b.Digest(7)
	if !da.Converged(db) {
		t.Fatalf("replicas diverged after absolute push:\n a %+v\n b %+v", da, db)
	}
	if n := b.RefCount(7, 0); n != 2 {
		t.Fatalf("refcount(7,0) = %d, want 2", n)
	}
	if !db.Trimmed {
		t.Fatal("absolute push must leave the journal marked trimmed")
	}
}

func TestJournalTrimsFIFO(t *testing.T) {
	p, _, _, _ := storedTwin(t, 7, 100, false)
	for i := 0; i < journalCap+8; i++ {
		if err := p.incRef(7, []graph.VertexID{0}, uint64(1000+i)); err != nil {
			t.Fatal(err)
		}
	}
	p.mu.RLock()
	jl := p.journals[7]
	deltas, seen, appended, trimmed := len(jl.deltas), len(jl.seen), jl.appended, jl.trimmed
	p.mu.RUnlock()
	if deltas != journalCap || seen != journalCap {
		t.Fatalf("journal holds %d deltas / %d seen, want %d", deltas, seen, journalCap)
	}
	if !trimmed {
		t.Fatal("overflowing journal not marked trimmed")
	}
	if appended != uint64(journalCap+9) { // +1 for the store's own delta
		t.Fatalf("appended = %d, want %d", appended, journalCap+9)
	}
}

func TestRepairApplyClampsUnmatchedDec(t *testing.T) {
	_, b, _, _ := storedTwin(t, 7, 100, true)
	// A dec whose matching inc B never saw and which is not in the batch:
	// clamp at zero instead of going negative.
	if _, err := b.RepairApply(&proto.RepairApplyReq{
		Model:  7,
		Deltas: []proto.RefDelta{{ReqID: 555, Neg: true, Vertices: []graph.VertexID{0, 0}}},
	}, nil); err != nil {
		t.Fatal(err)
	}
	if n := b.RefCount(7, 0); n != 0 {
		t.Fatalf("refcount(7,0) = %d, want 0 (clamped)", n)
	}
}
