// Package provider implements the EvoStore storage provider: the
// server-side half of the repository. Each provider simultaneously acts as
// a data and a metadata server (paper §4.1): it stores the consolidated
// tensor segments of the models whose IDs hash to it, their architecture
// graphs and owner maps, the reference counters that drive distributed
// garbage collection, and it answers its share of collective LCP queries
// over the models it catalogs.
//
// Paper counterpart: the Mochi-style storage provider of §4.1, each node
// simultaneously a data and a metadata server.
//
// Contracts:
//   - Thread safety: all Provider methods and registered handlers are safe
//     for concurrent use; catalog and refcount state is guarded by one
//     RWMutex, segment payloads by the (thread-safe) KV backend.
//   - Idempotency: reads (GetMeta, ReadSegments, LCPQuery, ListModels,
//     Stats) are idempotent. The mutating handlers (StoreModel, IncRef,
//     DecRef, Retire) are not, but deduplicate retried requests by their
//     proto ReqID: a request whose first execution succeeded is answered
//     from the dedup table, never re-executed, so retries cannot
//     double-apply refcount changes.
//   - Atomicity: IncRef/DecRef validate the whole batch before mutating,
//     so a failed request leaves no partial side effects.
package provider

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/frontdoor"
	"repro/internal/graph"
	"repro/internal/kvstore"
	"repro/internal/metrics"
	"repro/internal/ownermap"
	"repro/internal/placement"
	"repro/internal/proto"
	"repro/internal/rpc"
)

// segKey identifies one stored segment: the consolidated tensors of one
// leaf-layer vertex, owned by one model.
type segKey struct {
	owner  ownermap.ModelID
	vertex graph.VertexID
}

// segKeyLen is the fixed encoded length of a segment key.
const segKeyLen = 4 + 16 + 1 + 8

// String formats the KV key "seg/%016x/%08x" by hand: it runs once per
// segment on the read path, where fmt's boxing shows up in allocs/op.
func (k segKey) String() string {
	var b [segKeyLen]byte
	k.appendTo(b[:0])
	return string(b[:])
}

// appendTo appends the encoded key to dst and returns the extended slice.
// With a pre-sized dst this formats the key without allocating, feeding the
// kvstore.ByteKeyGetter fast path on segment reads.
func (k segKey) appendTo(dst []byte) []byte {
	var b [segKeyLen]byte
	copy(b[:4], "seg/")
	putHex(b[4:20], uint64(k.owner))
	b[20] = '/'
	putHex(b[21:29], uint64(k.vertex))
	return append(dst, b[:]...)
}

// putHex writes v into dst as zero-padded lowercase hex, least significant
// digit last. len(dst) selects the width.
func putHex(dst []byte, v uint64) {
	const digits = "0123456789abcdef"
	for i := len(dst) - 1; i >= 0; i-- {
		dst[i] = digits[v&0xf]
		v >>= 4
	}
}

// modelMeta is the cataloged metadata of one home model.
type modelMeta struct {
	graph    *graph.Compact
	om       *ownermap.Map
	quality  float64
	seq      uint64
	segments map[graph.VertexID]uint32 // self-owned stored segments and sizes
}

// Provider is one EvoStore storage provider.
type Provider struct {
	id int
	kv kvstore.KV
	// kvB is kv's optional byte-key read fast path (nil when unsupported);
	// ReadSegments uses it to look segments up without per-key string
	// allocations.
	kvB kvstore.ByteKeyGetter

	// place is the epoch-versioned placement guard (see SetPlacement /
	// SetPlacementState): writes for models whose replica set under no
	// active epoch includes this provider are rejected with a typed
	// wrong-epoch error carrying the current table. nil means accept
	// everything (the pre-replication wire behaviour). An atomic pointer
	// so the hot paths read it without taking p.mu.
	place atomic.Pointer[placement.State]

	// reg is the registry the Metrics RPC snapshots (default
	// metrics.Default, which the resilience middleware also writes to).
	reg *metrics.Registry

	mu     sync.RWMutex
	models map[ownermap.ModelID]*modelMeta
	// refs holds live reference counts, grouped by owning model so the
	// repair digest and pull paths can walk one model's counters without
	// scanning every segment this provider stores.
	refs map[ownermap.ModelID]map[graph.VertexID]int

	// journals record every refcount delta applied per owner, keyed by the
	// originating ReqID; the anti-entropy repairer unions journals across
	// replicas to replay exactly the deltas a stale replica missed. See
	// repair.go.
	journals map[ownermap.ModelID]*refJournal
	// retired are retire tombstones (model → seq at retire): they
	// disambiguate "never stored" from "retired" so repair never
	// resurrects a retired model, and they reject late stores of one.
	retired      map[ownermap.ModelID]uint64
	retiredOrder []ownermap.ModelID

	// dedup answers retried non-idempotent requests (by proto ReqID) from
	// their recorded responses instead of re-executing them.
	dedup *dedupTable

	// cat, when non-nil, write-through-persists every catalog mutation
	// into the KV under cat/ keys and recovers them at open — the durable
	// deployment mode (see catalog.go). Volatile providers leave it nil.
	cat *catalogStore

	// onPlacement, when set, observes every placement install (SetPlacement
	// and SetPlacementState); the server uses it to persist the new state
	// into its data dir's manifest.
	onPlacement atomic.Pointer[func(*placement.State)]

	// throttle, when armed via SetThrottle, applies per-tenant token-bucket
	// admission to segment reads (the front door). nil admits everything.
	// An atomic pointer so the read path never takes p.mu for it.
	throttle atomic.Pointer[frontdoor.Throttler]

	// readFlights collapses concurrent identical segment reads into one
	// execution (the provider half of front-door coalescing; the client
	// coalesces its own duplicate reads before they reach the wire, this
	// catches duplicates across distinct clients). Keyed by the canonical
	// request encoding with the tenant cleared — see readFlightKey.
	readFlights frontdoor.Group[string, rpc.Message]

	// heat tracks per-model EWMA read/write byte rates; exported as an
	// optional trailer on the Metrics RPC so the rebalancing controller
	// can see which models are hot without a new wire surface.
	heat *metrics.HeatMap
}

// New creates a provider with the given index backed by kv (segments are
// persisted there; catalog metadata and refcounts are kept in memory, as in
// the paper's in-memory deployment mode).
func New(id int, kv kvstore.KV) *Provider {
	kvB, _ := kv.(kvstore.ByteKeyGetter)
	return &Provider{
		id:       id,
		kv:       kv,
		kvB:      kvB,
		reg:      metrics.Default,
		models:   make(map[ownermap.ModelID]*modelMeta),
		refs:     make(map[ownermap.ModelID]map[graph.VertexID]int),
		journals: make(map[ownermap.ModelID]*refJournal),
		retired:  make(map[ownermap.ModelID]uint64),
		dedup:    newDedupTable(dedupCap),
		heat:     metrics.NewHeatMap(metrics.DefaultHeatHalfLife),
	}
}

// ID returns the provider index.
func (p *Provider) ID() int { return p.id }

// SetPlacement arms the replica-placement guard with the legacy epoch-0
// table: the provider will accept writes only for models whose replica set
// (home hash plus the next replicas-1 successors modulo deploySize)
// includes this provider's ID. Replication moved writes beyond the home
// hash, so the guard is what still catches a client whose address list
// disagrees with the deployment's. Call before serving; deploySize <= 0
// disables the guard. Membership changes replace the table via
// SetPlacementState (the evostore.set_placement RPC).
func (p *Provider) SetPlacement(deploySize, replicas int) {
	if deploySize <= 0 {
		p.place.Store(nil)
		p.notifyPlacement(nil)
		return
	}
	if replicas < 1 {
		replicas = 1
	}
	if replicas > deploySize {
		replicas = deploySize
	}
	st := &placement.State{Cur: placement.New(deploySize, replicas)}
	p.place.Store(st)
	p.notifyPlacement(st)
}

// OnPlacementChange registers fn to run after every placement install
// (including the initial SetPlacement). The server persists the installed
// state into its manifest here, so a restart rejoins at the right epoch.
func (p *Provider) OnPlacementChange(fn func(*placement.State)) {
	p.onPlacement.Store(&fn)
}

func (p *Provider) notifyPlacement(st *placement.State) {
	if fn := p.onPlacement.Load(); fn != nil {
		(*fn)(st)
	}
}

// SetMetricsRegistry points the Metrics RPC at reg (default
// metrics.Default).
func (p *Provider) SetMetricsRegistry(reg *metrics.Registry) {
	if reg != nil {
		p.reg = reg
	}
}

// SetDedupTTL sets the age after which dedup entries expire (default
// DefaultDedupTTL). The TTL must cover the deployment's client retry
// budget — an entry expiring while a retry of its request is still
// possible would let that retry re-execute a completed mutation. 0
// disables age-based expiry (the FIFO cap still applies).
func (p *Provider) SetDedupTTL(ttl time.Duration) { p.dedup.setTTL(ttl) }

// acceptsWrite reports whether the placement guard admits a write keyed by
// id (a model being stored/retired, or the owner of refcounted segments).
// During a migration both active epochs admit writes; outside one only the
// current table does. Rejections carry the current table so a stale client
// can self-update and retry (placement.TableFromError).
func (p *Provider) acceptsWrite(id ownermap.ModelID) error {
	st := p.place.Load()
	if st == nil || st.Contains(p.id, id) {
		return nil
	}
	p.reg.Counter("provider.placement_reject").Inc()
	return fmt.Errorf("provider %d: not a replica of model %d in any active epoch: %w",
		p.id, id, &placement.WrongEpochError{Table: st.Cur})
}

// missErr classifies a state miss for a model this provider was asked
// about: a provider outside the model's replica set under every active
// epoch answers wrong-epoch (the caller's table is stale — self-update and
// retry elsewhere); a replica that joined the set in the current epoch and
// has not been backfilled yet answers not-migrated (the caller should use
// the previous epoch's owners); otherwise the miss is genuine and nil is
// returned so the caller reports plain not-found.
func (p *Provider) missErr(id ownermap.ModelID) error {
	st := p.place.Load()
	if st == nil {
		return nil
	}
	if !st.Contains(p.id, id) {
		return fmt.Errorf("provider %d: model %d: %w", p.id, id, &placement.WrongEpochError{Table: st.Cur})
	}
	if st.CatchingUp(p.id, id) {
		return fmt.Errorf("provider %d: model %d: %w", p.id, id, placement.ErrNotMigrated)
	}
	return nil
}

// dedupHit records a retried mutation answered from the dedup table — the
// signal that a client is retrying lost responses against this provider.
func (p *Provider) dedupHit() { p.reg.Counter("provider.dedup_hit").Inc() }

// Register installs all EvoStore handlers on srv.
func (p *Provider) Register(srv *rpc.Server) {
	srv.Register(proto.RPCStoreModel, p.handleStoreModel)
	srv.Register(proto.RPCGetMeta, p.handleGetMeta)
	srv.Register(proto.RPCReadSegments, p.handleReadSegments)
	srv.Register(proto.RPCIncRef, p.handleIncRef)
	srv.Register(proto.RPCDecRef, p.handleDecRef)
	srv.Register(proto.RPCRetire, p.handleRetire)
	srv.Register(proto.RPCLCPQuery, p.handleLCPQuery)
	srv.Register(proto.RPCListModels, p.handleListModels)
	srv.Register(proto.RPCStats, p.handleStats)
	srv.Register(proto.RPCMetrics, p.handleMetrics)
	srv.Register(proto.RPCRepairList, p.handleRepairList)
	srv.Register(proto.RPCDigest, p.handleDigest)
	srv.Register(proto.RPCRepairPull, p.handleRepairPull)
	srv.Register(proto.RPCRepairApply, p.handleRepairApply)
	srv.Register(proto.RPCPlacement, p.handlePlacement)
	srv.Register(proto.RPCSetPlacement, p.handleSetPlacement)
	srv.Register(proto.RPCEvict, p.handleEvict)
	srv.Register(proto.RPCHello, p.handleHello)
}

// handleHello answers the restart-rejoin handshake: a recovering peer
// announces its manifest epoch and learns this provider's placement view,
// adopting the newest epoch it hears before serving traffic.
func (p *Provider) handleHello(_ context.Context, req rpc.Message) (rpc.Message, error) {
	if _, err := proto.DecodeHello(req.Meta); err != nil {
		return rpc.Message{}, fmt.Errorf("provider %d: hello: %w", p.id, err)
	}
	p.reg.Counter("provider.hello").Inc()
	st := p.place.Load()
	p.mu.RLock()
	models := uint64(len(p.models))
	p.mu.RUnlock()
	resp := &proto.HelloResp{
		Hello: proto.Hello{
			Provider: uint32(p.id),
			Format:   kvstore.ManifestFormatVersion,
			Epoch:    placement.EpochOf(st),
			Models:   models,
		},
		Placement: placement.EncodeState(st),
	}
	return rpc.Message{Meta: resp.Encode()}, nil
}

// --- store -------------------------------------------------------------------

func (p *Provider) handleStoreModel(_ context.Context, req rpc.Message) (rpc.Message, error) {
	q, err := proto.DecodeStoreModelReq(req.Meta)
	if err != nil {
		return rpc.Message{}, fmt.Errorf("provider %d: store: %w", p.id, err)
	}
	if meta, done := p.dedup.get(q.ReqID); done {
		p.dedupHit()
		return rpc.Message{Meta: meta}, nil
	}
	segs, err := proto.SplitBulkMsg(q.Segments, req)
	if err != nil {
		return rpc.Message{}, fmt.Errorf("provider %d: store %d: %w", p.id, q.Model, err)
	}
	if err := p.StoreModel(q, segs); err != nil {
		return rpc.Message{}, err
	}
	resp := proto.EncodeU64(uint64(q.Model))
	p.dedup.put(q.ReqID, resp)
	return rpc.Message{Meta: resp}, nil
}

// StoreModel installs a model: catalog entry plus its self-owned segments.
// Refcounts of the stored segments are incremented for the new model
// itself; refcounts of inherited segments live on their owners' providers
// and are incremented by the client via IncRef.
func (p *Provider) StoreModel(q *proto.StoreModelReq, segs [][]byte) error {
	if err := p.acceptsWrite(q.Model); err != nil {
		return fmt.Errorf("store %d: %w", q.Model, err)
	}
	if q.OwnerMap.Len() != q.Graph.NumVertices() {
		return fmt.Errorf("provider %d: store %d: owner map covers %d vertices, graph has %d",
			p.id, q.Model, q.OwnerMap.Len(), q.Graph.NumVertices())
	}
	// Validate every shipped segment belongs to a vertex the model owns.
	for _, s := range q.Segments {
		if int(s.Vertex) >= q.Graph.NumVertices() {
			return fmt.Errorf("provider %d: store %d: segment vertex %d out of range", p.id, q.Model, s.Vertex)
		}
		e, err := q.OwnerMap.OwnerOf(s.Vertex)
		if err != nil {
			return err
		}
		if e.Owner != q.Model {
			return fmt.Errorf("provider %d: store %d: segment for vertex %d owned by %d",
				p.id, q.Model, s.Vertex, e.Owner)
		}
	}

	p.mu.Lock()
	if _, dead := p.retired[q.Model]; dead {
		p.mu.Unlock()
		return fmt.Errorf("provider %d: store %d: model was retired", p.id, q.Model)
	}
	if p.seenLocked(q.Model, q.ReqID) {
		// The repairer already replayed this store's refcount delta (and
		// installed its metadata) from a healthy replica's journal.
		p.mu.Unlock()
		p.reg.Counter("provider.journal_dup").Inc()
		return nil
	}
	if _, dup := p.models[q.Model]; dup {
		p.mu.Unlock()
		return fmt.Errorf("provider %d: model %d already stored", p.id, q.Model)
	}
	meta := &modelMeta{
		graph:    q.Graph,
		om:       q.OwnerMap,
		quality:  q.Quality,
		seq:      q.Seq,
		segments: make(map[graph.VertexID]uint32, len(q.Segments)),
	}
	p.models[q.Model] = meta
	stored := make([]graph.VertexID, 0, len(q.Segments))
	for _, s := range q.Segments {
		meta.segments[s.Vertex] = s.Length
		p.refAddLocked(q.Model, s.Vertex, 1)
		stored = append(stored, s.Vertex)
	}
	p.recordDeltaLocked(q.Model, q.ReqID, false, stored)
	err := p.catPersistModelLocked(q.Model)
	if err == nil {
		err = p.catPersistRefsLocked(q.Model)
	}
	if err == nil {
		err = p.catPersistJournalLocked(q.Model)
	}
	p.mu.Unlock()
	if err != nil {
		// In-memory state stays applied; the divergence is a partial write
		// the repairer converges (see catalog.go's durability contract).
		return fmt.Errorf("provider %d: store %d: catalog: %w", p.id, q.Model, err)
	}

	// Persist segment payloads outside the lock; the KV is thread-safe.
	written := 0
	for i, s := range q.Segments {
		if err := p.kv.Put(segKey{q.Model, s.Vertex}.String(), segs[i]); err != nil {
			return fmt.Errorf("provider %d: persisting segment %d/%d: %w", p.id, q.Model, s.Vertex, err)
		}
		written += len(segs[i])
	}
	p.heat.ObserveWrite(uint64(q.Model), written)
	// One fsync covers the catalog records and every payload appended
	// above (sequential WAL), making the acknowledged store durable.
	return p.catSync()
}

// --- metadata reads ------------------------------------------------------------

func (p *Provider) handleGetMeta(_ context.Context, req rpc.Message) (rpc.Message, error) {
	id, err := proto.DecodeModelID(req.Meta)
	if err != nil {
		return rpc.Message{}, err
	}
	m, err := p.GetMeta(id)
	if err != nil {
		return rpc.Message{}, err
	}
	return rpc.Message{Meta: m.Encode()}, nil
}

// GetMeta returns the catalog entry for id.
func (p *Provider) GetMeta(id ownermap.ModelID) (*proto.ModelMeta, error) {
	p.mu.RLock()
	meta := p.models[id]
	p.mu.RUnlock()
	if meta == nil {
		if err := p.missErr(id); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("provider %d: model %d not found", p.id, id)
	}
	return &proto.ModelMeta{
		Model:    id,
		Seq:      meta.seq,
		Quality:  meta.quality,
		Graph:    meta.graph,
		OwnerMap: meta.om,
	}, nil
}

// --- segment reads ---------------------------------------------------------------

func (p *Provider) handleReadSegments(_ context.Context, req rpc.Message) (rpc.Message, error) {
	q, err := proto.DecodeReadSegmentsReq(req.Meta)
	if err != nil {
		return rpc.Message{}, err
	}
	p.reg.Counter("provider.read_request").Inc()
	// Admission precedes coalescing: a throttled tenant must not ride
	// another tenant's in-flight read past its own budget.
	if th := p.throttle.Load(); th != nil {
		if err := th.Admit(q.Tenant); err != nil {
			p.reg.Counter("provider.throttled").Inc()
			return rpc.Message{}, fmt.Errorf("provider %d: read %d: %w", p.id, q.Owner, err)
		}
	}
	resp, shared, err := p.readFlights.Do(readFlightKey(q), func() (rpc.Message, error) {
		p.reg.Counter("provider.read_exec").Inc()
		p.reg.Counter("provider.read_segments_exec").Add(uint64(len(q.Vertices)))
		return p.readSegmentsResp(q)
	})
	if shared {
		p.reg.Counter("provider.read_coalesced").Inc()
	}
	if err != nil {
		return rpc.Message{}, err
	}
	// Bytes are charged after the read (the request doesn't carry its
	// response size); the bucket absorbs the debt and delays the tenant's
	// next admission instead — see frontdoor.Bucket.Force.
	if th := p.throttle.Load(); th != nil {
		th.ChargeBytes(q.Tenant, resp.BulkLen())
	}
	p.heat.ObserveRead(uint64(q.Owner), resp.BulkLen())
	return resp, nil
}

// readFlightKey is the coalescing key: the canonical request encoding with
// the tenant cleared, so distinct tenants asking for the same bytes share
// one execution (per-tenant admission has already run by then).
func readFlightKey(q *proto.ReadSegmentsReq) string {
	if q.Tenant == "" {
		return string(q.Encode())
	}
	c := *q
	c.Tenant = ""
	return string(c.Encode())
}

// readSegmentsResp executes one segment read and shapes the response for
// the request's mode. Runs at most once per coalesced flight.
func (p *Provider) readSegmentsResp(q *proto.ReadSegmentsReq) (rpc.Message, error) {
	table, segs, err := p.ReadSegments(q.Owner, q.Vertices)
	if err != nil {
		return rpc.Message{}, err
	}
	switch q.Mode {
	case proto.ReadFull:
		if total := segsTotal(table); total > rpc.MaxFrame {
			// Typed server-side mirror of the client's segment guard: never
			// hand the transport a payload whose length field would not fit
			// the frame (the caller should stripe instead).
			return rpc.Message{}, fmt.Errorf("provider %d: read %d: %d-byte response %w",
				p.id, q.Owner, total, rpc.ErrFrameTooLarge)
		}
		return rpc.Message{Meta: proto.EncodeSegTable(table), BulkVec: segs}, nil
	case proto.ReadTable:
		return rpc.Message{Meta: proto.EncodeSegTable(table)}, nil
	case proto.ReadRange:
		if q.RangeLen > rpc.MaxFrame {
			return rpc.Message{}, fmt.Errorf("provider %d: read %d: %d-byte range %w",
				p.id, q.Owner, q.RangeLen, rpc.ErrFrameTooLarge)
		}
		views, err := sliceRange(table, segs, q.RangeOff, q.RangeLen)
		if err != nil {
			return rpc.Message{}, fmt.Errorf("provider %d: read %d: %w", p.id, q.Owner, err)
		}
		return rpc.Message{BulkVec: views}, nil
	default:
		return rpc.Message{}, fmt.Errorf("provider %d: read %d: unknown read mode %d", p.id, q.Owner, q.Mode)
	}
}

// segsTotal sums a segment table's lengths.
func segsTotal(table []proto.SegmentRef) uint64 {
	var n uint64
	for _, s := range table {
		n += uint64(s.Length)
	}
	return n
}

// sliceRange cuts the byte range [off, off+length) out of the consolidated
// payload that segs represent (concatenated in table order), returning
// zero-copy views into the per-segment buffers.
func sliceRange(table []proto.SegmentRef, segs [][]byte, off, length uint64) ([][]byte, error) {
	total := segsTotal(table)
	if off+length < off || off+length > total {
		return nil, fmt.Errorf("range [%d,%d) outside %d-byte payload", off, off+length, total)
	}
	var views [][]byte
	var pos uint64
	for i, s := range table {
		segStart, segEnd := pos, pos+uint64(s.Length)
		pos = segEnd
		if segEnd <= off {
			continue
		}
		if segStart >= off+length {
			break
		}
		lo, hi := uint64(0), uint64(s.Length)
		if segStart < off {
			lo = off - segStart
		}
		if segEnd > off+length {
			hi = off + length - segStart
		}
		views = append(views, segs[i][lo:hi])
	}
	return views, nil
}

// ReadSegments resolves the requested vertices' segments (all owned by
// owner) into one describing table plus one zero-copy view per segment —
// the KV's stored buffers, never concatenated. Callers must treat the
// returned slices as immutable (kvstore contract).
func (p *Provider) ReadSegments(owner ownermap.ModelID, vertices []graph.VertexID) ([]proto.SegmentRef, [][]byte, error) {
	table := make([]proto.SegmentRef, 0, len(vertices))
	segs := make([][]byte, 0, len(vertices))
	var kb [segKeyLen]byte // reused per vertex on the byte-key fast path
	for _, v := range vertices {
		k := segKey{owner, v}
		var (
			seg []byte
			ok  bool
			err error
		)
		if p.kvB != nil {
			seg, ok, err = p.kvB.GetB(k.appendTo(kb[:0]))
		} else {
			seg, ok, err = p.kv.Get(k.String())
		}
		if err != nil {
			return nil, nil, fmt.Errorf("provider %d: reading %s: %w", p.id, k, err)
		}
		if !ok {
			if err := p.missErr(owner); err != nil {
				return nil, nil, err
			}
			return nil, nil, fmt.Errorf("provider %d: segment %d/%d not found", p.id, owner, v)
		}
		table = append(table, proto.SegmentRef{Vertex: v, Length: uint32(len(seg))})
		segs = append(segs, seg)
	}
	return table, segs, nil
}

// --- reference counting / GC -----------------------------------------------------

func (p *Provider) handleIncRef(_ context.Context, req rpc.Message) (rpc.Message, error) {
	q, err := proto.DecodeRefReq(req.Meta)
	if err != nil {
		return rpc.Message{}, err
	}
	if meta, done := p.dedup.get(q.ReqID); done {
		p.dedupHit()
		return rpc.Message{Meta: meta}, nil
	}
	if err := p.incRef(q.Owner, q.Vertices, q.ReqID); err != nil {
		return rpc.Message{}, err
	}
	resp := proto.EncodeU64(uint64(len(q.Vertices)))
	p.dedup.put(q.ReqID, resp)
	return rpc.Message{Meta: resp}, nil
}

// IncRef increments the reference counter of each (owner, vertex) segment.
// Referencing a segment that does not exist is an error: it would mean a
// client derived from tensors this provider never stored.
func (p *Provider) IncRef(owner ownermap.ModelID, vertices []graph.VertexID) error {
	return p.incRef(owner, vertices, 0)
}

func (p *Provider) incRef(owner ownermap.ModelID, vertices []graph.VertexID, reqID uint64) error {
	if err := p.acceptsWrite(owner); err != nil {
		return fmt.Errorf("inc_ref: %w", err)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.seenLocked(owner, reqID) {
		// Already applied by a repair replay of this request's delta.
		p.reg.Counter("provider.journal_dup").Inc()
		return nil
	}
	// Validate first so the operation is all-or-nothing.
	for _, v := range vertices {
		if p.refs[owner][v] == 0 {
			if err := p.missErr(owner); err != nil {
				// A replica catching up on this owner's migration: the delta
				// is journaled on the previous epoch's owners and replayed
				// here by the rebalancer's converge pass.
				return fmt.Errorf("inc_ref %d/%d: %w", owner, v, err)
			}
			return fmt.Errorf("provider %d: inc_ref on missing segment %d/%d", p.id, owner, v)
		}
	}
	for _, v := range vertices {
		p.refAddLocked(owner, v, 1)
	}
	p.recordDeltaLocked(owner, reqID, false, vertices)
	if err := p.catPersistRefsLocked(owner); err != nil {
		return fmt.Errorf("provider %d: inc_ref %d: catalog: %w", p.id, owner, err)
	}
	if err := p.catPersistJournalLocked(owner); err != nil {
		return fmt.Errorf("provider %d: inc_ref %d: catalog: %w", p.id, owner, err)
	}
	return p.catSync()
}

func (p *Provider) handleDecRef(_ context.Context, req rpc.Message) (rpc.Message, error) {
	q, err := proto.DecodeRefReq(req.Meta)
	if err != nil {
		return rpc.Message{}, err
	}
	if meta, done := p.dedup.get(q.ReqID); done {
		p.dedupHit()
		return rpc.Message{Meta: meta}, nil
	}
	freed, bases, err := p.decRef(q.Owner, q.Vertices, q.ReqID)
	if err != nil {
		return rpc.Message{}, err
	}
	resp := proto.EncodeFreedResp(freed, bases)
	p.dedup.put(q.ReqID, resp)
	return rpc.Message{Meta: resp}, nil
}

// DecRef decrements the reference counter of each (owner, vertex) segment,
// deleting segments whose counter reaches zero. It returns the number of
// segments freed. The whole batch is O(k) in the number of leaf layers.
func (p *Provider) DecRef(owner ownermap.ModelID, vertices []graph.VertexID) (uint64, error) {
	freed, _, err := p.decRef(owner, vertices, 0)
	return freed, err
}

// decRef returns the freed-segment count plus the delta bases of any
// freed delta-encoded segments: those segments held a logical reference
// on their base (pinned at store time by the writing client), and the
// caller must now cascade a DecRef to each base's own providers or a
// retired ancestor chain would strand the counts.
func (p *Provider) decRef(owner ownermap.ModelID, vertices []graph.VertexID, reqID uint64) (uint64, []proto.SegBase, error) {
	if err := p.acceptsWrite(owner); err != nil {
		return 0, nil, fmt.Errorf("dec_ref: %w", err)
	}
	var toDelete []segKey
	p.mu.Lock()
	if p.seenLocked(owner, reqID) {
		// Already applied by a repair replay; the freed count is unknown
		// but only feeds best-effort accounting at the caller.
		p.mu.Unlock()
		p.reg.Counter("provider.journal_dup").Inc()
		return 0, nil, nil
	}
	// Validate first so the batch is all-or-nothing, like IncRef.
	for _, v := range vertices {
		if _, ok := p.refs[owner][v]; !ok {
			p.mu.Unlock()
			if err := p.missErr(owner); err != nil {
				return 0, nil, fmt.Errorf("dec_ref %d/%d: %w", owner, v, err)
			}
			return 0, nil, fmt.Errorf("provider %d: dec_ref on missing segment %d/%d", p.id, owner, v)
		}
	}
	for _, v := range vertices {
		if p.refAddLocked(owner, v, -1) == 0 {
			toDelete = append(toDelete, segKey{owner, v})
		}
	}
	// If the owner is still cataloged here, forget its freed segment sizes.
	meta := p.models[owner]
	if meta != nil {
		for _, k := range toDelete {
			delete(meta.segments, k.vertex)
		}
	}
	p.recordDeltaLocked(owner, reqID, true, vertices)
	catErr := p.catPersistRefsLocked(owner)
	if catErr == nil && meta != nil && len(toDelete) > 0 {
		catErr = p.catPersistModelLocked(owner)
	}
	if catErr == nil {
		catErr = p.catPersistJournalLocked(owner)
	}
	p.mu.Unlock()
	if catErr != nil {
		return 0, nil, fmt.Errorf("provider %d: dec_ref %d: catalog: %w", p.id, owner, catErr)
	}

	// Before a freed segment disappears, harvest its delta base (if any)
	// so the caller can release the base's pinned reference.
	var bases []proto.SegBase
	for _, k := range toDelete {
		if seg, ok, err := p.kvGet(k); err == nil && ok {
			if e, enc, err := proto.ParseSegEnvelope(seg); err == nil && enc && e.Flags&proto.SegDelta != 0 {
				bases = append(bases, proto.SegBase{Owner: e.BaseOwner, Vertex: e.BaseVertex})
			}
		}
		if err := p.kv.Delete(k.String()); err != nil {
			return 0, bases, fmt.Errorf("provider %d: deleting %s: %w", p.id, k, err)
		}
	}
	if err := p.catSync(); err != nil {
		return 0, bases, err
	}
	return uint64(len(toDelete)), bases, nil
}

// --- retire ------------------------------------------------------------------------

func (p *Provider) handleRetire(_ context.Context, req rpc.Message) (rpc.Message, error) {
	q, err := proto.DecodeRetireReq(req.Meta)
	if err != nil {
		return rpc.Message{}, err
	}
	if meta, done := p.dedup.get(q.ReqID); done {
		p.dedupHit()
		return rpc.Message{Meta: meta}, nil
	}
	om, err := p.Retire(q.Model)
	if err != nil {
		return rpc.Message{}, err
	}
	resp := om.Encode()
	p.dedup.put(q.ReqID, resp)
	return rpc.Message{Meta: resp}, nil
}

// Retire removes the model's catalog entry immediately ("the metadata of
// the retired model is always fully removed") and returns its owner map so
// the client can decrement the refcounts of every referenced segment across
// providers. The segments themselves survive until their counters drop to
// zero.
func (p *Provider) Retire(id ownermap.ModelID) (*ownermap.Map, error) {
	if err := p.acceptsWrite(id); err != nil {
		return nil, fmt.Errorf("retire: %w", err)
	}
	p.mu.Lock()
	meta := p.models[id]
	if meta == nil {
		_, dead := p.retired[id]
		p.mu.Unlock()
		if dead {
			return nil, fmt.Errorf("provider %d: retire: model %d already retired", p.id, id)
		}
		if err := p.missErr(id); err != nil {
			return nil, fmt.Errorf("retire: %w", err)
		}
		return nil, fmt.Errorf("provider %d: retire: model %d not found", p.id, id)
	}
	delete(p.models, id)
	p.tombstoneLocked(id, meta.seq)
	err := p.catPersistModelLocked(id)
	if err == nil {
		err = p.catPersistTombLocked(id)
	}
	p.mu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("provider %d: retire %d: catalog: %w", p.id, id, err)
	}
	if err := p.catSync(); err != nil {
		return nil, err
	}
	return meta.om, nil
}

// --- collective LCP query -------------------------------------------------------------

func (p *Provider) handleLCPQuery(_ context.Context, req rpc.Message) (rpc.Message, error) {
	q, err := proto.DecodeLCPQueryReq(req.Meta)
	if err != nil {
		return rpc.Message{}, err
	}
	res := p.LCPQuery(q)
	return rpc.Message{Meta: res.Encode()}, nil
}

// LCPQuery scans the provider's local catalog for the best transfer
// ancestor of the query graph: longest common prefix, ties broken by
// quality (paper §2). This is the provider-side "map" step of the
// collective query.
func (p *Provider) LCPQuery(q *proto.LCPQueryReq) *proto.LCPResult {
	excluded := make(map[ownermap.ModelID]bool, len(q.Exclude))
	for _, id := range q.Exclude {
		excluded[id] = true
	}

	// Snapshot the catalog so the scan runs without blocking writers.
	type cand struct {
		id      ownermap.ModelID
		g       *graph.Compact
		quality float64
		seq     uint64
	}
	p.mu.RLock()
	cands := make([]cand, 0, len(p.models))
	for id, m := range p.models {
		if !excluded[id] {
			cands = append(cands, cand{id, m.graph, m.quality, m.seq})
		}
	}
	p.mu.RUnlock()
	// Deterministic scan order so tie-breaking is reproducible.
	sort.Slice(cands, func(i, j int) bool { return cands[i].id < cands[j].id })

	scanner := graph.NewLCPScanner(q.Graph)
	best := &proto.LCPResult{}
	bestSize := 0
	for _, c := range cands {
		size := scanner.SizeAgainst(c.g)
		if size == 0 {
			continue
		}
		// Longest prefix wins; ties prefer higher quality (or, under
		// PreferRecent, the most recent store), then lower ID.
		var better bool
		if q.PreferRecent {
			better = size > bestSize ||
				(size == bestSize && (c.seq > best.Seq ||
					(c.seq == best.Seq && c.id < best.Model)))
		} else {
			better = size > bestSize ||
				(size == bestSize && (c.quality > best.Quality ||
					(c.quality == best.Quality && c.id < best.Model)))
		}
		if better {
			best = &proto.LCPResult{
				Found:   true,
				Model:   c.id,
				Seq:     c.seq,
				Quality: c.quality,
				Prefix:  append([]graph.VertexID(nil), scanner.Against(c.g)...),
			}
			bestSize = size
		}
	}
	return best
}

// --- listing & stats ---------------------------------------------------------------------

func (p *Provider) handleListModels(_ context.Context, _ rpc.Message) (rpc.Message, error) {
	return rpc.Message{Meta: proto.EncodeModelList(p.ListModels())}, nil
}

// ListModels returns the cataloged model IDs in ascending order.
func (p *Provider) ListModels() []ownermap.ModelID {
	p.mu.RLock()
	ids := make([]ownermap.ModelID, 0, len(p.models))
	for id := range p.models {
		ids = append(ids, id)
	}
	p.mu.RUnlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func (p *Provider) handleStats(_ context.Context, _ rpc.Message) (rpc.Message, error) {
	return rpc.Message{Meta: p.Stats().Encode()}, nil
}

// handleMetrics snapshots the provider-side metrics registry so operators
// can see retries, breaker transitions and replica traffic per provider,
// not just per client (the server-side half of the stats story).
func (p *Provider) handleMetrics(_ context.Context, _ rpc.Message) (rpc.Message, error) {
	return rpc.Message{Meta: proto.EncodeCountersHeat(p.reg.Snapshot(), p.HeatSnapshot())}, nil
}

// HeatSnapshot returns the provider's current per-model heat, hottest
// models included only while their EWMA rate stays above the noise floor.
func (p *Provider) HeatSnapshot() []proto.ModelHeat {
	samples := p.heat.Snapshot()
	if len(samples) == 0 {
		return nil
	}
	out := make([]proto.ModelHeat, len(samples))
	for i, s := range samples {
		out[i] = proto.ModelHeat{
			Model:    ownermap.ModelID(s.ID),
			ReadBps:  s.ReadBps,
			WriteBps: s.WriteBps,
		}
	}
	return out
}

// Stats summarizes the provider's storage state.
func (p *Provider) Stats() *proto.ProviderStats {
	p.mu.RLock()
	s := &proto.ProviderStats{Models: uint64(len(p.models))}
	for _, vs := range p.refs {
		for _, n := range vs {
			s.Segments++
			s.LiveRefs += uint64(n)
		}
	}
	p.mu.RUnlock()
	s.SegmentBytes = uint64(p.kv.SizeBytes())
	return s
}

// RefCount reports the live reference count of one segment (for tests).
func (p *Provider) RefCount(owner ownermap.ModelID, v graph.VertexID) int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.refs[owner][v]
}

// refAddLocked adjusts one refcount by delta, creating or deleting map
// entries at the zero boundary, and returns the new count.
func (p *Provider) refAddLocked(owner ownermap.ModelID, v graph.VertexID, delta int) int {
	vs := p.refs[owner]
	n := vs[v] + delta
	if n <= 0 {
		if vs != nil {
			delete(vs, v)
			if len(vs) == 0 {
				delete(p.refs, owner)
			}
		}
		return 0
	}
	if vs == nil {
		vs = make(map[graph.VertexID]int)
		p.refs[owner] = vs
	}
	vs[v] = n
	return n
}
