package provider

import (
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/kvstore"
	"repro/internal/ownermap"
)

// digestsEqual compares every field repair relies on, including the
// journal bookkeeping Converged() abstracts over: a reopened provider must
// be indistinguishable from the one that wrote the catalog.
func digestsEqual(t *testing.T, before, after *Provider, id ownermap.ModelID) {
	t.Helper()
	db, da := before.Digest(id), after.Digest(id)
	if db.Present != da.Present || db.Retired != da.Retired || db.Seq != da.Seq ||
		db.MetaHash != da.MetaHash || db.RefHash != da.RefHash ||
		db.SegHash != da.SegHash || db.LiveRefs != da.LiveRefs {
		t.Errorf("model %d: digest diverged across reopen:\n before %+v\n after  %+v", id, db, da)
	}
	if db.Journal != da.Journal || db.Trimmed != da.Trimmed {
		t.Errorf("model %d: journal bookkeeping diverged: before (%d, %v), after (%d, %v)",
			id, db.Journal, db.Trimmed, da.Journal, da.Trimmed)
	}
}

// catalogWorkload drives a representative mutation mix: from-scratch
// stores with ReqIDs (journaled), an IncRef, a partial DecRef that frees a
// segment, and a retire. It returns the surviving model IDs.
func catalogWorkload(t *testing.T, p *Provider) []ownermap.ModelID {
	t.Helper()
	g := chainGraph(1, 2, 3)
	for i := 1; i <= 4; i++ {
		req, segs := storeReq(ownermap.ModelID(i), uint64(i), 0.5, g)
		req.ReqID = uint64(100 + i)
		if err := p.StoreModel(req, segs); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.incRef(1, []graph.VertexID{0, 1}, 201); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.decRef(2, []graph.VertexID{2}, 202); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Retire(3); err != nil {
		t.Fatal(err)
	}
	return []ownermap.ModelID{1, 2, 3, 4}
}

func TestDurableCatalogReopenEquivalence(t *testing.T) {
	dir := t.TempDir()
	kv, err := kvstore.OpenLSM(dir, kvstore.LSMOptions{FlushBytes: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewDurable(0, kv)
	if err != nil {
		t.Fatal(err)
	}
	ids := catalogWorkload(t, p)
	if err := kv.Close(); err != nil {
		t.Fatal(err)
	}

	kv2, err := kvstore.OpenLSM(dir, kvstore.LSMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer kv2.Close()
	p2, err := NewDurable(0, kv2)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		digestsEqual(t, p, p2, id)
	}
	// Semantic spot checks on top of the digest comparison.
	if meta, err := p2.GetMeta(1); err != nil || meta.Seq != 1 {
		t.Errorf("GetMeta(1) after reopen: %+v, %v", meta, err)
	}
	if got := p2.RefCount(1, 0); got != 2 {
		t.Errorf("RefCount(1, 0) after reopen = %d, want 2 (store +1, incRef +1)", got)
	}
	if _, _, err := p2.ReadSegments(1, []graph.VertexID{0, 2}); err != nil {
		t.Errorf("segments unreadable after reopen: %v", err)
	}
	if _, err := p2.Retire(3); err == nil {
		t.Error("retire of an already-retired model accepted after reopen: tombstone lost")
	}
	// The journaled ReqIDs must still dedup repair replays after reopen.
	if err := p2.incRef(1, []graph.VertexID{0, 1}, 201); err != nil {
		t.Fatal(err)
	}
	if got := p2.RefCount(1, 0); got != 2 {
		t.Errorf("replayed ReqID mutated refcount to %d: journal seen-set lost across reopen", got)
	}
}

// TestDurableCatalogSurvivesAbandonedStore is the kill -9 shape: the first
// store handle is never closed — its WAL buffer simply stops existing —
// and the directory is reopened cold. Because every catalog mutation ends
// in a WAL fsync, the acknowledged state must be complete anyway.
func TestDurableCatalogSurvivesAbandonedStore(t *testing.T) {
	dir := t.TempDir()
	kv, err := kvstore.OpenLSM(dir, kvstore.LSMOptions{FlushBytes: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewDurable(0, kv)
	if err != nil {
		t.Fatal(err)
	}
	ids := catalogWorkload(t, p)
	// No Close: abandon kv mid-flight, as a killed process would.

	kv2, err := kvstore.OpenLSM(dir, kvstore.LSMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer kv2.Close()
	p2, err := NewDurable(0, kv2)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		digestsEqual(t, p, p2, id)
	}
}

// TestDurableCatalogEvictDrops: a migration eviction must remove every
// persisted record, or a later restart resurrects a model the placement
// table moved elsewhere.
func TestDurableCatalogEvictDrops(t *testing.T) {
	kv := kvstore.NewMemKV(4)
	p, err := NewDurable(0, kv)
	if err != nil {
		t.Fatal(err)
	}
	g := chainGraph(1, 2)
	req, segs := storeReq(1, 1, 0.5, g)
	req.ReqID = 11
	if err := p.StoreModel(req, segs); err != nil {
		t.Fatal(err)
	}
	// Model 1's home under a 4-member table is provider 1, so provider 0
	// may evict it once the guard is armed.
	p.SetPlacement(4, 1)
	if _, err := p.Evict(1); err != nil {
		t.Fatal(err)
	}

	p2, err := NewDurable(0, kv)
	if err != nil {
		t.Fatal(err)
	}
	if d := p2.Digest(1); d.Present || d.Retired || d.LiveRefs != 0 || d.Journal != 0 {
		t.Errorf("evicted model resurrected by catalog replay: %+v", d)
	}
	if st := p2.Stats(); st.Models != 0 || st.Segments != 0 {
		t.Errorf("evicted state leaked into reopen: %+v", st)
	}
}

// TestDurableCatalogReopenUnderLoad hammers one durable provider from many
// goroutines (meaningful under -race: the catalog write-through shares the
// provider lock) and then replays the catalog, requiring digest
// equivalence for every model that survived.
func TestDurableCatalogReopenUnderLoad(t *testing.T) {
	kv := kvstore.NewMemKV(16)
	p, err := NewDurable(0, kv)
	if err != nil {
		t.Fatal(err)
	}
	g := chainGraph(1, 2, 3)
	const workers = 8
	const perWorker = 12
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := ownermap.ModelID(w*perWorker + i + 1)
				req, segs := storeReq(id, uint64(id), 0.5, g)
				req.ReqID = uint64(10_000 + int(id))
				if err := p.StoreModel(req, segs); err != nil {
					t.Errorf("store %d: %v", id, err)
					return
				}
				switch i % 3 {
				case 0:
					if err := p.incRef(id, []graph.VertexID{0}, uint64(20_000+int(id))); err != nil {
						t.Errorf("incRef %d: %v", id, err)
					}
				case 1:
					if _, _, err := p.decRef(id, []graph.VertexID{1}, uint64(30_000+int(id))); err != nil {
						t.Errorf("decRef %d: %v", id, err)
					}
				case 2:
					if _, err := p.Retire(id); err != nil {
						t.Errorf("retire %d: %v", id, err)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	p2, err := NewDurable(0, kv)
	if err != nil {
		t.Fatal(err)
	}
	for id := ownermap.ModelID(1); id <= workers*perWorker; id++ {
		digestsEqual(t, p, p2, id)
	}
	if b, a := p.Stats(), p2.Stats(); b.Models != a.Models || b.Segments != a.Segments || b.LiveRefs != a.LiveRefs {
		t.Errorf("stats diverged across reopen: before %+v, after %+v", b, a)
	}
}

// TestDurableCatalogNilOnPlainProvider: a provider built with New has no
// catalog store, and every mutation path must tolerate that (the catalog
// helpers are no-ops).
func TestDurableCatalogNilOnPlainProvider(t *testing.T) {
	p := New(0, kvstore.NewMemKV(4))
	g := chainGraph(1, 2)
	req, segs := storeReq(1, 1, 0.5, g)
	if err := p.StoreModel(req, segs); err != nil {
		t.Fatal(err)
	}
	if err := p.IncRef(1, []graph.VertexID{0}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Retire(1); err != nil {
		t.Fatal(err)
	}
	if _, err := p.DecRef(1, []graph.VertexID{0, 0, 1}); err != nil {
		t.Fatal(err)
	}
	// And nothing was persisted: the backing store holds only payloads
	// (all freed by now), no cat/ records.
	n := 0
	kvAny := p.kv
	if err := kvAny.Scan("cat/", func(string, []byte) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("plain provider persisted %d catalog records", n)
	}
}

func TestDurableCatalogJournalWindowPersists(t *testing.T) {
	// Push one owner's journal far past its persisted window start so the
	// incremental [lo, hi) reconciliation exercises deletions of old delta
	// keys, then verify replay agrees with memory.
	kv := kvstore.NewMemKV(4)
	p, err := NewDurable(0, kv)
	if err != nil {
		t.Fatal(err)
	}
	g := chainGraph(1, 2)
	req, segs := storeReq(1, 1, 0.5, g)
	req.ReqID = 1
	if err := p.StoreModel(req, segs); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := p.incRef(1, []graph.VertexID{0}, uint64(1000+i)); err != nil {
			t.Fatal(err)
		}
	}
	p2, err := NewDurable(0, kv)
	if err != nil {
		t.Fatal(err)
	}
	digestsEqual(t, p, p2, 1)
	if got := p2.RefCount(1, 0); got != 51 {
		t.Errorf("RefCount after replay = %d, want 51", got)
	}
	// Every journaled ReqID must dedup after replay.
	for i := 0; i < 50; i++ {
		if err := p2.incRef(1, []graph.VertexID{0}, uint64(1000+i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := p2.RefCount(1, 0); got != 51 {
		t.Errorf("RefCount after replaying seen ReqIDs = %d, want 51 (journal dedup lost)", got)
	}
	// The persisted delta keys must cover exactly the in-memory window —
	// no leaked garbage below the trim point.
	deltas := 0
	if err := kv.Scan(catJrnPrefix, func(string, []byte) bool { deltas++; return true }); err != nil {
		t.Fatal(err)
	}
	p.mu.RLock()
	want := len(p.journals[1].deltas)
	p.mu.RUnlock()
	if deltas != want {
		t.Errorf("persisted journal deltas = %d, want %d (in-memory window)", deltas, want)
	}
}
