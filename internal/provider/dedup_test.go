package provider

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/kvstore"
	"repro/internal/proto"
	"repro/internal/rpc"
)

// callDecRef drives the RPC handler the way a retrying client would.
func callDecRef(t *testing.T, p *Provider, req *proto.RefReq) (uint64, error) {
	t.Helper()
	resp, err := p.handleDecRef(context.Background(), rpc.Message{Meta: req.Encode()})
	if err != nil {
		return 0, err
	}
	freed, err := proto.DecodeU64(resp.Meta)
	if err != nil {
		t.Fatal(err)
	}
	return freed, nil
}

func TestDecRefRetryDedup(t *testing.T) {
	p := New(0, kvstore.NewMemKV(4))
	g := chainGraph(1, 2, 3)
	req, segs := storeReq(7, 1, 0.5, g)
	if err := p.StoreModel(req, segs); err != nil {
		t.Fatal(err)
	}
	// Pin vertex 0 twice more so a single DecRef cannot free it.
	if err := p.IncRef(7, []graph.VertexID{0}); err != nil {
		t.Fatal(err)
	}
	if err := p.IncRef(7, []graph.VertexID{0}); err != nil {
		t.Fatal(err)
	}
	if n := p.RefCount(7, 0); n != 3 {
		t.Fatalf("setup refcount = %d", n)
	}

	// First execution succeeds but (conceptually) its response is lost;
	// the client retries the identical request with the same ReqID.
	dec := &proto.RefReq{Owner: 7, Vertices: []graph.VertexID{0}, ReqID: 42}
	freed1, err := callDecRef(t, p, dec)
	if err != nil {
		t.Fatal(err)
	}
	freed2, err := callDecRef(t, p, dec)
	if err != nil {
		t.Fatalf("retried DecRef: %v", err)
	}
	if freed1 != freed2 {
		t.Errorf("retry answered differently: %d vs %d", freed1, freed2)
	}
	if n := p.RefCount(7, 0); n != 2 {
		t.Fatalf("refcount after retried DecRef = %d, want 2 (no double decrement)", n)
	}
	// A distinct request really decrements.
	if _, err := callDecRef(t, p, &proto.RefReq{Owner: 7, Vertices: []graph.VertexID{0}, ReqID: 43}); err != nil {
		t.Fatal(err)
	}
	if n := p.RefCount(7, 0); n != 1 {
		t.Fatalf("refcount after fresh DecRef = %d, want 1", n)
	}
}

func TestIncRefRetryDedup(t *testing.T) {
	p := New(0, kvstore.NewMemKV(4))
	g := chainGraph(1, 2)
	req, segs := storeReq(3, 1, 0.5, g)
	if err := p.StoreModel(req, segs); err != nil {
		t.Fatal(err)
	}
	inc := &proto.RefReq{Owner: 3, Vertices: []graph.VertexID{1}, ReqID: 9}
	for i := 0; i < 3; i++ {
		if _, err := p.handleIncRef(context.Background(), rpc.Message{Meta: inc.Encode()}); err != nil {
			t.Fatal(err)
		}
	}
	if n := p.RefCount(3, 1); n != 2 {
		t.Fatalf("refcount = %d, want 2 (one store + one deduped IncRef)", n)
	}
}

func TestRetireRetryDedup(t *testing.T) {
	p := New(0, kvstore.NewMemKV(4))
	g := chainGraph(1, 2)
	req, segs := storeReq(5, 1, 0.5, g)
	if err := p.StoreModel(req, segs); err != nil {
		t.Fatal(err)
	}
	ret := &proto.RetireReq{Model: 5, ReqID: 77}
	resp1, err := p.handleRetire(context.Background(), rpc.Message{Meta: ret.Encode()})
	if err != nil {
		t.Fatal(err)
	}
	// Without dedup the retry would fail with "not found" and the client
	// would never learn the owner map it must DecRef against.
	resp2, err := p.handleRetire(context.Background(), rpc.Message{Meta: ret.Encode()})
	if err != nil {
		t.Fatalf("retried Retire: %v", err)
	}
	if !bytes.Equal(resp1.Meta, resp2.Meta) {
		t.Error("retried Retire answered with a different owner map")
	}
	// A genuinely new Retire of the gone model still errors.
	if _, err := p.handleRetire(context.Background(), rpc.Message{Meta: (&proto.RetireReq{Model: 5, ReqID: 78}).Encode()}); err == nil {
		t.Error("fresh retire of retired model succeeded")
	}
}

func TestStoreModelRetryDedup(t *testing.T) {
	p := New(0, kvstore.NewMemKV(4))
	g := chainGraph(1, 2)
	req, segs := storeReq(6, 1, 0.5, g)
	req.ReqID = 11
	var bulk []byte
	for _, s := range segs {
		bulk = append(bulk, s...)
	}
	msg := rpc.Message{Meta: req.Encode(), Bulk: bulk}
	if _, err := p.handleStoreModel(context.Background(), msg); err != nil {
		t.Fatal(err)
	}
	// A blind retry would fail with "already stored"; dedup must accept it.
	if _, err := p.handleStoreModel(context.Background(), msg); err != nil {
		t.Fatalf("retried StoreModel: %v", err)
	}
	if n := p.RefCount(6, 0); n != 1 {
		t.Fatalf("refcount after retried store = %d, want 1", n)
	}
}

func TestDedupTableTTL(t *testing.T) {
	d := newDedupTable(16)
	clock := time.Unix(1000, 0)
	d.now = func() time.Time { return clock }
	d.setTTL(time.Minute)

	d.put(1, []byte{1})
	clock = clock.Add(30 * time.Second)
	d.put(2, []byte{2})

	// Both inside the window.
	if _, ok := d.get(1); !ok {
		t.Fatal("fresh entry 1 missing")
	}
	if _, ok := d.get(2); !ok {
		t.Fatal("fresh entry 2 missing")
	}

	// 61s after entry 1's insert: 1 expired, 2 (31s old) still live.
	clock = clock.Add(31 * time.Second)
	if _, ok := d.get(1); ok {
		t.Error("entry 1 outlived its TTL")
	}
	if _, ok := d.get(2); !ok {
		t.Error("entry 2 expired early")
	}
	if d.len() != 1 {
		t.Errorf("len = %d, want 1 after expiry", d.len())
	}

	// Expiry also runs on put: a stale survivor must not block the path.
	clock = clock.Add(2 * time.Minute)
	d.put(3, []byte{3})
	if d.len() != 1 {
		t.Errorf("len = %d, want 1 (entry 2 expired on put)", d.len())
	}
	if _, ok := d.get(3); !ok {
		t.Error("entry 3 missing")
	}
}

func TestDedupTableTTLDisabled(t *testing.T) {
	d := newDedupTable(16)
	clock := time.Unix(1000, 0)
	d.now = func() time.Time { return clock }
	d.setTTL(0)

	d.put(1, []byte{1})
	clock = clock.Add(24 * time.Hour)
	if _, ok := d.get(1); !ok {
		t.Error("TTL 0 must disable age-based expiry")
	}
}

func TestSetDedupTTLOnProvider(t *testing.T) {
	p := New(0, kvstore.NewMemKV(4))
	clock := time.Unix(0, 0)
	p.dedup.now = func() time.Time { return clock }
	p.SetDedupTTL(time.Second)

	g := chainGraph(1, 2, 3)
	req, segs := storeReq(7, 1, 0.5, g)
	if err := p.StoreModel(req, segs); err != nil {
		t.Fatal(err)
	}
	if err := p.IncRef(7, []graph.VertexID{0}); err != nil {
		t.Fatal(err)
	}
	dec := &proto.RefReq{Owner: 7, Vertices: []graph.VertexID{0}, ReqID: 42}
	if _, err := callDecRef(t, p, dec); err != nil {
		t.Fatal(err)
	}
	// Within the TTL the retry is absorbed...
	if _, err := callDecRef(t, p, dec); err != nil {
		t.Fatal(err)
	}
	if n := p.RefCount(7, 0); n != 1 {
		t.Fatalf("refcount = %d, want 1 (retry deduped)", n)
	}
	// ...after it, the dedup entry is gone — but the refcount journal has
	// seen ReqID 42, so the late retry is still absorbed instead of
	// double-applying the decrement. The TTL only bounds how long the
	// *response* can be replayed verbatim.
	clock = clock.Add(2 * time.Second)
	if _, err := callDecRef(t, p, dec); err != nil {
		t.Fatal(err)
	}
	if n := p.RefCount(7, 0); n != 1 {
		t.Fatalf("refcount = %d, want 1 (journal absorbed the post-TTL retry)", n)
	}
}

func TestDedupTableCompaction(t *testing.T) {
	d := newDedupTable(8)
	clock := time.Unix(1000, 0)
	d.now = func() time.Time { return clock }
	d.setTTL(time.Minute)

	for id := uint64(1); id <= 8; id++ {
		d.put(id, []byte{byte(id)})
		clock = clock.Add(time.Second)
	}
	// Age out the first 5 entries (> cap/2 = 4): expiry must not only
	// re-slice past them but also copy the survivors into fresh
	// backing arrays, releasing the dead head.
	clock = time.Unix(1000, 0).Add(5*time.Second - time.Second/2).Add(time.Minute)
	if d.len() != 3 {
		t.Fatalf("len = %d, want 3 survivors", d.len())
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.dead != 0 {
		t.Errorf("dead = %d, want 0 after compaction", d.dead)
	}
	if cap(d.order) != 3 || cap(d.stamp) != 3 {
		t.Errorf("cap(order)=%d cap(stamp)=%d, want 3 (fresh right-sized arrays)",
			cap(d.order), cap(d.stamp))
	}
	if len(d.order) != 3 || d.order[0] != 6 {
		t.Errorf("order = %v, want [6 7 8]", d.order)
	}
}

func TestDedupTableBounded(t *testing.T) {
	d := newDedupTable(4)
	for id := uint64(1); id <= 10; id++ {
		d.put(id, []byte{byte(id)})
	}
	if d.len() != 4 {
		t.Fatalf("table len = %d, want cap 4", d.len())
	}
	if _, ok := d.get(1); ok {
		t.Error("oldest entry not evicted")
	}
	if meta, ok := d.get(10); !ok || meta[0] != 10 {
		t.Error("newest entry missing")
	}
	if _, ok := d.get(0); ok {
		t.Error("id 0 must never hit")
	}
}
