package provider

// Durable catalog: write-through persistence of the provider's metadata
// state — model catalog entries, refcounts, repair journals, retire
// tombstones — into the same kvstore.KV that holds segment payloads, so a
// crashed provider recovers everything a repairer needs by reopening its
// data directory (ROADMAP "Durable providers"; the paper's RocksDB
// deployment mode made persistent end to end).
//
// Keyspace (all under the "cat/" prefix, disjoint from "seg/" payloads
// and the dedup wrapper's "cas/" chunks):
//
//	cat/m/<model16>          catalog entry: encoded ModelMeta + segment table
//	cat/r/<owner16>          live refcounts (proto.EncodeRefCounts)
//	cat/j/<owner16>/<idx16>  one journal delta (proto.EncodeRefDelta); idx
//	                         is the delta's monotonic append index
//	cat/jm/<owner16>         journal meta: u64 appended | u8 trimmed
//	cat/t/<model16>          retire tombstone: u64 seq
//
// Journal persistence is incremental: the in-memory journal holds the
// index window [appended-len(deltas), appended), and the catalog tracks
// the persisted window per owner, deleting keys that trimmed out and
// appending only new deltas — so a steady-state mutation persists O(1)
// catalog keys, not the whole journal.
//
// Durability contract: catalog mutations are persisted under p.mu and
// made durable with one kvstore.Syncer fsync per request before the
// request is acknowledged. Segment payloads are written to the same
// sequential WAL *before* that sync, so an acknowledged store is fully
// durable; payloads of unacknowledged requests may be lost on kill −9
// and reconverge via the repairer's NeedPayload backfill. If a catalog
// write fails mid-request the in-memory state stays applied and the
// request errors: the divergence is exactly a partial write, which the
// anti-entropy repairer already converges.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/graph"
	"repro/internal/kvstore"
	"repro/internal/ownermap"
	"repro/internal/proto"
	"repro/internal/wire"
)

const (
	catModelPrefix = "cat/m/"
	catRefsPrefix  = "cat/r/"
	catJrnPrefix   = "cat/j/"
	catJMetaPrefix = "cat/jm/"
	catTombPrefix  = "cat/t/"
)

// jspan is the persisted journal-index window [lo, hi) of one owner.
type jspan struct {
	lo, hi uint64
}

// catalogStore is the provider's write-through catalog persistence state.
type catalogStore struct {
	kv   kvstore.KV
	sync func() error // fsync hook; no-op when the KV is not a Syncer
	// jspans tracks the persisted journal window per owner (guarded by
	// the provider's mu, like every other catalog structure).
	jspans map[ownermap.ModelID]jspan
}

// NewDurable creates a provider whose catalog is persisted write-through
// in kv and recovered from it on open. Use with a persistent backend
// (kvstore.LSMKV): the recovered provider resumes with the exact models,
// refcounts, journals and tombstones it had acknowledged before a crash,
// so repair only converges the divergent tail.
func NewDurable(id int, kv kvstore.KV) (*Provider, error) {
	p := New(id, kv)
	cs := &catalogStore{kv: kv, jspans: make(map[ownermap.ModelID]jspan)}
	if s, ok := kv.(kvstore.Syncer); ok {
		cs.sync = s.Sync
	} else {
		cs.sync = func() error { return nil }
	}
	p.cat = cs
	if err := p.loadCatalog(); err != nil {
		return nil, fmt.Errorf("provider %d: recovering catalog: %w", id, err)
	}
	return p, nil
}

// --- keys --------------------------------------------------------------------

func catKey(prefix string, id uint64) string {
	b := make([]byte, len(prefix)+16)
	copy(b, prefix)
	putHex(b[len(prefix):], id)
	return string(b)
}

func catJrnKey(owner ownermap.ModelID, idx uint64) string {
	b := make([]byte, len(catJrnPrefix)+16+1+16)
	copy(b, catJrnPrefix)
	putHex(b[len(catJrnPrefix):len(catJrnPrefix)+16], uint64(owner))
	b[len(catJrnPrefix)+16] = '/'
	putHex(b[len(catJrnPrefix)+17:], idx)
	return string(b)
}

// --- write-through persistence ------------------------------------------------
//
// All cat*Locked helpers are no-ops on a volatile provider (p.cat == nil)
// and are called with p.mu held, after the in-memory mutation applied.

// catPersistModelLocked rewrites id's catalog entry record.
func (p *Provider) catPersistModelLocked(id ownermap.ModelID) error {
	if p.cat == nil {
		return nil
	}
	meta := p.models[id]
	if meta == nil {
		return p.cat.kv.Delete(catKey(catModelPrefix, uint64(id)))
	}
	enc := p.encodeMetaLocked(id, meta)
	w := wire.NewWriter(8 + len(enc) + 8*len(meta.segments))
	w.Bytes32(enc)
	w.U32(uint32(len(meta.segments)))
	vs := make([]graph.VertexID, 0, len(meta.segments))
	for v := range meta.segments {
		vs = append(vs, v)
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	for _, v := range vs {
		w.U32(uint32(v))
		w.U32(meta.segments[v])
	}
	return p.cat.kv.Put(catKey(catModelPrefix, uint64(id)), w.Bytes())
}

// catPersistRefsLocked rewrites owner's refcount record (deleting it when
// no refs remain).
func (p *Provider) catPersistRefsLocked(owner ownermap.ModelID) error {
	if p.cat == nil {
		return nil
	}
	live := p.refs[owner]
	if len(live) == 0 {
		return p.cat.kv.Delete(catKey(catRefsPrefix, uint64(owner)))
	}
	cs := make([]proto.RefCount, 0, len(live))
	for _, v := range sortedRefVertices(live) {
		cs = append(cs, proto.RefCount{Vertex: v, Count: uint64(live[v])})
	}
	return p.cat.kv.Put(catKey(catRefsPrefix, uint64(owner)), proto.EncodeRefCounts(cs))
}

// catPersistJournalLocked reconciles owner's persisted journal window with
// the in-memory one: deltas that trimmed out are deleted, new deltas are
// appended, and the journal-meta record is rewritten. A window that moved
// backwards (an absolute ReplaceJournal rewrote history) is dropped and
// re-persisted wholesale.
func (p *Provider) catPersistJournalLocked(owner ownermap.ModelID) error {
	if p.cat == nil {
		return nil
	}
	jl := p.journals[owner]
	if jl == nil {
		return p.catDropJournalLocked(owner)
	}
	memHi := jl.appended
	memLo := memHi - uint64(len(jl.deltas))
	span, havePrev := p.cat.jspans[owner]
	if havePrev && (memLo < span.lo || memHi < span.hi) {
		if err := p.catDropJournalLocked(owner); err != nil {
			return err
		}
		span, havePrev = jspan{}, false
	}
	if !havePrev {
		span = jspan{lo: memLo, hi: memLo}
	}
	for i := span.lo; i < memLo && i < span.hi; i++ {
		if err := p.cat.kv.Delete(catJrnKey(owner, i)); err != nil {
			return err
		}
	}
	start := span.hi
	if start < memLo {
		start = memLo
	}
	for i := start; i < memHi; i++ {
		d := &jl.deltas[i-memLo]
		if err := p.cat.kv.Put(catJrnKey(owner, i), proto.EncodeRefDelta(d)); err != nil {
			return err
		}
	}
	p.cat.jspans[owner] = jspan{lo: memLo, hi: memHi}
	w := wire.NewWriter(9)
	w.U64(jl.appended)
	if jl.trimmed {
		w.U8(1)
	} else {
		w.U8(0)
	}
	return p.cat.kv.Put(catKey(catJMetaPrefix, uint64(owner)), w.Bytes())
}

// catDropJournalLocked deletes every persisted journal key of owner.
func (p *Provider) catDropJournalLocked(owner ownermap.ModelID) error {
	if p.cat == nil {
		return nil
	}
	span, ok := p.cat.jspans[owner]
	if ok {
		for i := span.lo; i < span.hi; i++ {
			if err := p.cat.kv.Delete(catJrnKey(owner, i)); err != nil {
				return err
			}
		}
		delete(p.cat.jspans, owner)
	}
	return p.cat.kv.Delete(catKey(catJMetaPrefix, uint64(owner)))
}

// catPersistTombLocked writes id's retire tombstone.
func (p *Provider) catPersistTombLocked(id ownermap.ModelID) error {
	if p.cat == nil {
		return nil
	}
	seq, ok := p.retired[id]
	if !ok {
		return p.cat.kv.Delete(catKey(catTombPrefix, uint64(id)))
	}
	w := wire.NewWriter(8)
	w.U64(seq)
	return p.cat.kv.Put(catKey(catTombPrefix, uint64(id)), w.Bytes())
}

// catDropTombLocked removes an evicted tombstone's record (best-effort
// callers count failures instead of failing the foreground request: a
// stale persisted tombstone only re-rejects a late store after recovery).
func (p *Provider) catDropTombLocked(id ownermap.ModelID) error {
	if p.cat == nil {
		return nil
	}
	return p.cat.kv.Delete(catKey(catTombPrefix, uint64(id)))
}

// catDropModelAllLocked deletes every catalog record of id (eviction).
func (p *Provider) catDropModelAllLocked(id ownermap.ModelID) error {
	if p.cat == nil {
		return nil
	}
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	keep(p.cat.kv.Delete(catKey(catModelPrefix, uint64(id))))
	keep(p.cat.kv.Delete(catKey(catRefsPrefix, uint64(id))))
	keep(p.catDropJournalLocked(id))
	keep(p.cat.kv.Delete(catKey(catTombPrefix, uint64(id))))
	return first
}

// catEvictErr records a failed best-effort catalog cleanup.
func (p *Provider) catEvictErr() { p.reg.Counter("provider.catalog_evict_err").Inc() }

// catSync makes all catalog (and earlier payload) writes of the current
// request durable. Call once per mutation, after the persists.
func (p *Provider) catSync() error {
	if p.cat == nil {
		return nil
	}
	if err := p.cat.sync(); err != nil {
		return fmt.Errorf("provider %d: catalog sync: %w", p.id, err)
	}
	return nil
}

// --- recovery ----------------------------------------------------------------

// loadCatalog rebuilds the in-memory catalog from the cat/ keyspace. It
// runs once, from NewDurable, before the provider serves traffic.
func (p *Provider) loadCatalog() error {
	type jacc struct {
		deltas  []proto.RefDelta
		lo, hi  uint64
		gap     bool
		haveJM  bool
		applied uint64 // jm.appended
		trimmed bool
	}
	jaccs := make(map[ownermap.ModelID]*jacc)
	type tomb struct {
		id  ownermap.ModelID
		seq uint64
	}
	var tombs []tomb
	var firstErr error
	scanErr := p.kv.Scan("cat/", func(key string, value []byte) bool {
		var err error
		switch {
		case strings.HasPrefix(key, catModelPrefix):
			err = p.loadModelRecord(key[len(catModelPrefix):], value)
		case strings.HasPrefix(key, catRefsPrefix):
			err = p.loadRefsRecord(key[len(catRefsPrefix):], value)
		case strings.HasPrefix(key, catJMetaPrefix):
			var owner uint64
			if owner, err = parseHex16(key[len(catJMetaPrefix):]); err == nil {
				r := wire.NewReader(value)
				appended, trimmed := r.U64(), r.U8() != 0
				if err = r.Err(); err == nil {
					ja := jaccAt(jaccs, ownermap.ModelID(owner))
					ja.haveJM, ja.applied, ja.trimmed = true, appended, trimmed
				}
			}
		case strings.HasPrefix(key, catJrnPrefix):
			rest := key[len(catJrnPrefix):]
			if len(rest) != 33 || rest[16] != '/' {
				err = fmt.Errorf("malformed journal key %q", key)
				break
			}
			var owner, idx uint64
			if owner, err = parseHex16(rest[:16]); err != nil {
				break
			}
			if idx, err = parseHex16(rest[17:]); err != nil {
				break
			}
			var d proto.RefDelta
			if d, err = proto.DecodeRefDelta(value); err != nil {
				break
			}
			ja := jaccAt(jaccs, ownermap.ModelID(owner))
			if len(ja.deltas) == 0 {
				ja.lo = idx
			} else if idx != ja.hi {
				ja.gap = true
			}
			ja.hi = idx + 1
			ja.deltas = append(ja.deltas, d)
		case strings.HasPrefix(key, catTombPrefix):
			var id uint64
			if id, err = parseHex16(key[len(catTombPrefix):]); err == nil {
				r := wire.NewReader(value)
				seq := r.U64()
				if err = r.Err(); err == nil {
					tombs = append(tombs, tomb{ownermap.ModelID(id), seq})
				}
			}
		}
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("catalog key %q: %w", key, err)
		}
		return firstErr == nil
	})
	if scanErr != nil {
		return scanErr
	}
	if firstErr != nil {
		return firstErr
	}

	for owner, ja := range jaccs {
		jl := &refJournal{
			deltas:  ja.deltas,
			seen:    make(map[uint64]struct{}, len(ja.deltas)),
			trimmed: ja.trimmed,
		}
		for _, d := range ja.deltas {
			if d.ReqID != 0 {
				jl.seen[d.ReqID] = struct{}{}
			}
		}
		// The journal-meta record and the last delta are written in the
		// same request, but a crash can tear between them; reconcile
		// conservatively — when the accounting disagrees, keep the deltas
		// we have and mark the journal trimmed so repair falls back to an
		// absolute push instead of trusting incomplete history.
		hi := ja.hi
		if len(ja.deltas) == 0 {
			hi = ja.applied
			jl.trimmed = jl.trimmed || !ja.haveJM
		}
		jl.appended = hi
		if ja.gap || !ja.haveJM || ja.applied != hi {
			jl.trimmed = true
		}
		p.journals[owner] = jl
		lo := hi - uint64(len(ja.deltas))
		p.cat.jspans[owner] = jspan{lo: lo, hi: hi}
	}

	// Tombstone FIFO order is not persisted; seq order is the best
	// available approximation for cap eviction.
	sort.Slice(tombs, func(i, j int) bool {
		if tombs[i].seq != tombs[j].seq {
			return tombs[i].seq < tombs[j].seq
		}
		return tombs[i].id < tombs[j].id
	})
	for _, t := range tombs {
		p.retired[t.id] = t.seq
		p.retiredOrder = append(p.retiredOrder, t.id)
	}
	return nil
}

func (p *Provider) loadModelRecord(hexID string, value []byte) error {
	id, err := parseHex16(hexID)
	if err != nil {
		return err
	}
	r := wire.NewReader(value)
	enc := r.Bytes32()
	if r.Err() != nil {
		return r.Err()
	}
	m, err := proto.DecodeModelMeta(enc)
	if err != nil {
		return err
	}
	meta := &modelMeta{
		graph:   m.Graph,
		om:      m.OwnerMap,
		quality: m.Quality,
		seq:     m.Seq,
	}
	n := int(r.U32())
	if r.Err() != nil || n > r.Remaining()/8+1 {
		return wire.ErrTruncated
	}
	meta.segments = make(map[graph.VertexID]uint32, n)
	for i := 0; i < n; i++ {
		v := graph.VertexID(r.U32())
		meta.segments[v] = r.U32()
	}
	if r.Err() != nil {
		return r.Err()
	}
	p.models[ownermap.ModelID(id)] = meta
	return nil
}

func (p *Provider) loadRefsRecord(hexID string, value []byte) error {
	owner, err := parseHex16(hexID)
	if err != nil {
		return err
	}
	cs, err := proto.DecodeRefCounts(value)
	if err != nil {
		return err
	}
	if len(cs) == 0 {
		return nil
	}
	vs := make(map[graph.VertexID]int, len(cs))
	for _, c := range cs {
		if c.Count > 0 {
			vs[c.Vertex] = int(c.Count)
		}
	}
	if len(vs) > 0 {
		p.refs[ownermap.ModelID(owner)] = vs
	}
	return nil
}

func parseHex16(s string) (uint64, error) {
	if len(s) != 16 {
		return 0, fmt.Errorf("bad hex id %q", s)
	}
	return strconv.ParseUint(s, 16, 64)
}

func jaccAt[T any](m map[ownermap.ModelID]*T, id ownermap.ModelID) *T {
	ja := m[id]
	if ja == nil {
		ja = new(T)
		m[id] = ja
	}
	return ja
}
