package provider

import "sync"

// dedupCap bounds the dedup table. 64K completed requests of history is
// far beyond any retry window the client middleware produces.
const dedupCap = 1 << 16

// dedupTable records the encoded responses of completed non-idempotent
// requests (StoreModel, IncRef, DecRef, Retire) by client request ID. A
// retried request whose first execution succeeded — but whose response
// was lost in the fabric — is answered from this table instead of being
// re-executed, which is what makes refcount mutations safe to retry:
// a DecRef can never double-decrement.
//
// Entries are evicted FIFO once cap is exceeded. Only successful
// executions are recorded: a failed request left no side effects behind
// (handlers validate all-or-nothing before mutating), so re-executing a
// retry is both safe and gives the caller the authoritative error.
//
// The client retry loop is sequential per logical request, so a given ID
// is never concurrently in flight; the table therefore only needs to make
// completed-then-retried requests idempotent, not to lock in-flight ones.
type dedupTable struct {
	mu    sync.Mutex
	resp  map[uint64][]byte
	order []uint64
	cap   int
}

func newDedupTable(cap int) *dedupTable {
	return &dedupTable{resp: make(map[uint64][]byte), cap: cap}
}

// get returns the recorded response for id, if any. id 0 (no dedup) never
// hits.
func (d *dedupTable) get(id uint64) ([]byte, bool) {
	if id == 0 {
		return nil, false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	meta, ok := d.resp[id]
	return meta, ok
}

// put records the response of a successfully executed request.
func (d *dedupTable) put(id uint64, meta []byte) {
	if id == 0 {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.resp[id]; dup {
		return
	}
	d.resp[id] = meta
	d.order = append(d.order, id)
	for len(d.order) > d.cap {
		evict := d.order[0]
		d.order = d.order[1:]
		delete(d.resp, evict)
	}
}

// len reports the number of recorded responses (for tests).
func (d *dedupTable) len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.resp)
}
