package provider

import (
	"sync"
	"time"
)

// dedupCap bounds the dedup table. 64K completed requests of history is
// far beyond any retry window the client middleware produces.
const dedupCap = 1 << 16

// DefaultDedupTTL is the default lifetime of a dedup entry. It is sized
// to the client's retry budget: the resilient middleware's defaults allow
// 3 attempts of up to 10s each plus backoff, so a retry of a completed
// request can trail the original by well under a minute. 2 minutes keeps
// a comfortable margin (slow fabrics, fault-injected delays) while
// guaranteeing entries do not pin response bytes forever on providers
// that never reach the FIFO cap.
const DefaultDedupTTL = 2 * time.Minute

// dedupTable records the encoded responses of completed non-idempotent
// requests (StoreModel, IncRef, DecRef, Retire) by client request ID. A
// retried request whose first execution succeeded — but whose response
// was lost in the fabric — is answered from this table instead of being
// re-executed, which is what makes refcount mutations safe to retry:
// a DecRef can never double-decrement.
//
// Entries are evicted two ways: FIFO once cap is exceeded, and by age
// once they outlive ttl. The TTL is tied to the client retry budget —
// after it, no legitimate retry of the request can still arrive, so the
// entry is dead weight (the FIFO cap alone only bounds count, not
// lifetime: a quiet provider would otherwise hold stale responses
// indefinitely). Expiry is lazy — performed on get/put under the same
// lock — so there is no background goroutine to manage. Only successful
// executions are recorded: a failed request left no side effects behind
// (handlers validate all-or-nothing before mutating), so re-executing a
// retry is both safe and gives the caller the authoritative error.
//
// The client retry loop is sequential per logical request, so a given ID
// is never concurrently in flight; the table therefore only needs to make
// completed-then-retried requests idempotent, not to lock in-flight ones.
type dedupTable struct {
	mu    sync.Mutex
	resp  map[uint64][]byte
	order []uint64 // insertion order; parallel to stamps
	stamp []time.Time
	dead  int // front entries trimmed off order/stamp since the last compaction
	cap   int
	ttl   time.Duration    // 0 = no age-based expiry
	now   func() time.Time // injectable clock for tests
}

func newDedupTable(cap int) *dedupTable {
	return &dedupTable{
		resp: make(map[uint64][]byte),
		cap:  cap,
		ttl:  DefaultDedupTTL,
		now:  time.Now,
	}
}

// setTTL changes the age-based expiry window; 0 disables it (FIFO cap
// only, the pre-TTL behaviour).
func (d *dedupTable) setTTL(ttl time.Duration) {
	d.mu.Lock()
	d.ttl = ttl
	d.mu.Unlock()
}

// expireLocked drops entries older than ttl. Insertion order is also
// age order (stamps only come from d.now at put time), so expiry pops
// from the front exactly like a FIFO eviction. Callers hold d.mu.
func (d *dedupTable) expireLocked() {
	if d.ttl <= 0 {
		return
	}
	cutoff := d.now().Add(-d.ttl)
	for len(d.order) > 0 && d.stamp[0].Before(cutoff) {
		d.popFrontLocked()
	}
	d.compactLocked()
}

// popFrontLocked evicts the oldest entry. Re-slicing leaves the evicted
// head alive in the backing arrays; compactLocked reclaims it.
func (d *dedupTable) popFrontLocked() {
	delete(d.resp, d.order[0])
	d.order = d.order[1:]
	d.stamp = d.stamp[1:]
	d.dead++
}

// compactLocked copies order/stamp into right-sized backing arrays once
// the trimmed-off head exceeds half the table's capacity, releasing the
// dead prefix (and the response bytes its map entries pinned) that
// front re-slicing would otherwise retain indefinitely on a provider
// that has gone quiet.
func (d *dedupTable) compactLocked() {
	if d.dead <= d.cap/2 {
		return
	}
	d.order = append(make([]uint64, 0, len(d.order)), d.order...)
	d.stamp = append(make([]time.Time, 0, len(d.stamp)), d.stamp...)
	d.dead = 0
}

// get returns the recorded response for id, if any. id 0 (no dedup) never
// hits.
func (d *dedupTable) get(id uint64) ([]byte, bool) {
	if id == 0 {
		return nil, false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.expireLocked()
	meta, ok := d.resp[id]
	return meta, ok
}

// put records the response of a successfully executed request.
func (d *dedupTable) put(id uint64, meta []byte) {
	if id == 0 {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.expireLocked()
	if _, dup := d.resp[id]; dup {
		return
	}
	d.resp[id] = meta
	d.order = append(d.order, id)
	d.stamp = append(d.stamp, d.now())
	for len(d.order) > d.cap {
		d.popFrontLocked()
	}
	d.compactLocked()
}

// len reports the number of live (unexpired) responses (for tests).
func (d *dedupTable) len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.expireLocked()
	return len(d.resp)
}
