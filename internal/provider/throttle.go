package provider

import "repro/internal/frontdoor"

// SetThrottle arms the provider's front-door admission control: every
// segment read is charged against its tenant's token buckets (ops on
// admission, bytes after the response is sized) and refused with a typed
// retry-after error once a bucket runs dry. Zero limits disarm the front
// door. Safe to call while serving; in-flight reads finish under the
// throttler they were admitted by.
//
// Re-arming an already-armed provider resizes the live throttler in place,
// so tenants keep their accumulated fill and outstanding byte debt across
// a limit change: swapping in a fresh throttler would forgive every debt
// (letting a shrink reward exactly the tenants being reined in) and grant
// each returning tenant a fresh burst allowance.
//
// Throttling composes with read coalescing in a fixed order — admit first,
// coalesce second — so a refused tenant cannot piggyback on another
// tenant's identical in-flight read.
func (p *Provider) SetThrottle(l frontdoor.Limits) {
	if p.throttle.Load().SetLimits(l) {
		return // resized in place; readers keep the same pointer
	}
	p.throttle.Store(frontdoor.NewThrottler(l))
}
