package provider

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/frontdoor"
	"repro/internal/graph"
	"repro/internal/kvstore"
	"repro/internal/metrics"
	"repro/internal/proto"
	"repro/internal/rpc"
)

// gateKV wraps a KV and blocks every Get until the gate channel closes, so a
// test can pile up concurrent readers behind one storage access.
type gateKV struct {
	kvstore.KV
	gate <-chan struct{}
}

func (g *gateKV) Get(key string) ([]byte, bool, error) {
	<-g.gate
	return g.KV.Get(key)
}

func TestProviderReadCoalescing(t *testing.T) {
	gate := make(chan struct{})
	kv := &gateKV{KV: kvstore.NewMemKV(4), gate: gate}
	p := New(0, kv)
	reg := metrics.NewRegistry()
	p.SetMetricsRegistry(reg)

	g := chainGraph(1, 2, 3)
	req, segs := storeReq(7, 1, 0.5, g)
	if err := p.StoreModel(req, segs); err != nil {
		t.Fatal(err)
	}

	// K identical reads from distinct tenants pile up behind the gated KV:
	// the tenant is excluded from the flight key, so they all join one
	// flight and the store is read exactly once.
	const k = 16
	var (
		wg      sync.WaitGroup
		started sync.WaitGroup
		mu      sync.Mutex
		errs    []error
	)
	for i := 0; i < k; i++ {
		wg.Add(1)
		started.Add(1)
		go func(i int) {
			defer wg.Done()
			rq := &proto.ReadSegmentsReq{Owner: 7, Vertices: []graph.VertexID{0, 1, 2}, Tenant: string(rune('a' + i%4))}
			started.Done()
			resp, err := p.handleReadSegments(context.Background(), rpc.Message{Meta: rq.Encode()})
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs = append(errs, err)
				return
			}
			if got := resp.BulkLen(); got == 0 {
				errs = append(errs, errors.New("empty coalesced response"))
			}
		}(i)
	}
	started.Wait()
	// Give the stragglers time to reach Do before opening the gate; a
	// latecomer that misses the flight only costs an extra exec, which the
	// assertion below bounds rather than pins to exactly one.
	time.Sleep(20 * time.Millisecond)
	close(gate)
	wg.Wait()
	if len(errs) > 0 {
		t.Fatal(errs[0])
	}
	exec := reg.Counter("provider.read_exec").Load()
	coal := reg.Counter("provider.read_coalesced").Load()
	if exec != 1 {
		t.Errorf("read_exec = %d, want 1 (one flight for %d identical reads)", exec, k)
	}
	if exec+coal != k {
		t.Errorf("exec+coalesced = %d, want %d", exec+coal, k)
	}
	if got := reg.Counter("provider.read_request").Load(); got != k {
		t.Errorf("read_request = %d, want %d", got, k)
	}
}

func TestProviderThrottleIsolation(t *testing.T) {
	p := New(0, kvstore.NewMemKV(4))
	reg := metrics.NewRegistry()
	p.SetMetricsRegistry(reg)
	g := chainGraph(1, 2)
	req, segs := storeReq(3, 1, 0.5, g)
	if err := p.StoreModel(req, segs); err != nil {
		t.Fatal(err)
	}
	// 2 ops/s over a 1s window: capacity 2 ops, initial fill 1 op.
	p.SetThrottle(frontdoor.Limits{OpsPerSec: 2, Window: time.Second})

	read := func(tenant string) error {
		rq := &proto.ReadSegmentsReq{Owner: 3, Vertices: []graph.VertexID{0}, Tenant: tenant}
		_, err := p.handleReadSegments(context.Background(), rpc.Message{Meta: rq.Encode()})
		return err
	}

	if err := read("noisy"); err != nil {
		t.Fatalf("first read throttled: %v", err)
	}
	var throttledErr error
	for i := 0; i < 8; i++ {
		if err := read("noisy"); err != nil {
			throttledErr = err
			break
		}
	}
	if throttledErr == nil {
		t.Fatal("noisy tenant never throttled at 2 ops/s")
	}
	if !errors.Is(throttledErr, frontdoor.ErrThrottled) {
		t.Fatalf("throttled error not typed: %v", throttledErr)
	}
	if d, ok := frontdoor.RetryAfterFromError(throttledErr); !ok || d <= 0 {
		t.Fatalf("no retry-after in %v", throttledErr)
	}
	// The quiet tenant's bucket is untouched by the noisy one.
	if err := read("quiet"); err != nil {
		t.Fatalf("quiet tenant collaterally throttled: %v", err)
	}
	if got := reg.Counter("provider.throttled").Load(); got == 0 {
		t.Error("provider.throttled counter never incremented")
	}

	// Disarming re-admits everyone.
	p.SetThrottle(frontdoor.Limits{})
	for i := 0; i < 32; i++ {
		if err := read("noisy"); err != nil {
			t.Fatalf("read throttled after disarm: %v", err)
		}
	}
}

// TestThrottleBeforeCoalesce pins the ordering contract: a tenant refused at
// the front door must not receive the bytes of another tenant's identical
// in-flight read.
func TestThrottleBeforeCoalesce(t *testing.T) {
	gate := make(chan struct{})
	kv := &gateKV{KV: kvstore.NewMemKV(4), gate: gate}
	p := New(0, kv)
	p.SetMetricsRegistry(metrics.NewRegistry())
	g := chainGraph(1, 2)
	req, segs := storeReq(3, 1, 0.5, g)
	if err := p.StoreModel(req, segs); err != nil {
		t.Fatal(err)
	}
	p.SetThrottle(frontdoor.Limits{OpsPerSec: 1, Window: time.Second})

	rq := func(tenant string) rpc.Message {
		q := &proto.ReadSegmentsReq{Owner: 3, Vertices: []graph.VertexID{0}, Tenant: tenant}
		return rpc.Message{Meta: q.Encode()}
	}

	// Tenant A's read is in flight, parked on the gated KV.
	done := make(chan error, 1)
	go func() {
		_, err := p.handleReadSegments(context.Background(), rq("a"))
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)

	// Tenant B exhausts its bucket: the drain reads park behind the gate
	// too, but their admission is charged up front, which is all the test
	// needs. Then B issues the identical read A has in flight — it must be
	// refused at the door, not coalesced into A's flight.
	var drain sync.WaitGroup
	for i := 0; i < 4; i++ {
		drain.Add(1)
		go func() {
			defer drain.Done()
			q := &proto.ReadSegmentsReq{Owner: 99, Vertices: []graph.VertexID{0}, Tenant: "b"}
			p.handleReadSegments(context.Background(), rpc.Message{Meta: q.Encode()})
		}()
	}
	time.Sleep(10 * time.Millisecond)
	_, err := p.handleReadSegments(context.Background(), rq("b"))
	if err == nil || !errors.Is(err, frontdoor.ErrThrottled) {
		t.Fatalf("exhausted tenant joined another tenant's flight: err=%v", err)
	}

	close(gate)
	drain.Wait()
	if err := <-done; err != nil {
		t.Fatalf("in-flight read failed: %v", err)
	}
}

// TestSetThrottlePreservesDebtAcrossLimitChange pins the re-arm contract:
// shrinking a live throttle keeps each tenant's outstanding byte debt
// (clamped to the new capacity) instead of handing out a fresh throttler
// whose empty ledger forgives exactly the tenants being reined in.
func TestSetThrottlePreservesDebtAcrossLimitChange(t *testing.T) {
	p := New(0, kvstore.NewMemKV(4))
	p.SetThrottle(frontdoor.Limits{BytesPerSec: 1000, Window: time.Second})
	th := p.throttle.Load()
	if th == nil {
		t.Fatal("throttle not armed")
	}
	now := time.Unix(0, 0)
	th.SetClock(func() time.Time { return now })
	if err := th.Admit("hog"); err != nil {
		t.Fatal(err)
	}
	th.ChargeBytes("hog", 5000) // deep debt, clamped to one window

	p.SetThrottle(frontdoor.Limits{BytesPerSec: 100, Window: time.Second})
	if got := p.throttle.Load(); got != th {
		t.Fatal("limit change replaced the throttler instead of resizing in place")
	}
	if err := th.Admit("hog"); err == nil {
		t.Fatal("shrinking the throttle forgave the tenant's byte debt")
	}

	// Zero limits disarm entirely.
	p.SetThrottle(frontdoor.Limits{})
	if p.throttle.Load() != nil {
		t.Error("zero limits left the throttle armed")
	}
}
