package provider

// Anti-entropy repair: the provider-side state and handlers that let a
// client-side Repairer converge replicas after a partial write.
//
// Three pieces of bookkeeping make divergence detectable and repairable:
//
//   - A per-owner refcount *journal*: every applied refcount delta
//     (StoreModel's initial +1s, IncRef, DecRef) is recorded with the
//     ReqID of its originating request. Because every replica leg of a
//     fan-out shares one ReqID, the union of two replicas' journals is
//     well-defined, and "the deltas replica B missed" is exactly the set
//     difference by ReqID. Journals are FIFO-capped; a journal that
//     dropped entries (or recorded a mutation without a ReqID) is marked
//     trimmed, which downgrades repair from delta merge to an absolute
//     state push from the authoritative replica.
//   - Retire *tombstones*: retire removes the catalog entry, so without a
//     marker a repairer could not tell "never stored here" from "retired
//     here" — and would resurrect retired models. Tombstones also reject
//     late stores of a retired model ID.
//   - A fixed-size *digest* per model (proto.ModelDigest): hashes of the
//     metadata, the (vertex, refcount) table and the (vertex, stored
//     payload length) table. Replicas holding identical state produce
//     identical digests, so the background sweep costs one small RPC per
//     provider, not a state transfer.
//
// RepairApply is convergent: tombstones and metadata installs are
// idempotent, delta merges skip ReqIDs the journal has seen, and absolute
// pushes overwrite. Re-applying any repair request is a no-op.

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/ownermap"
	"repro/internal/proto"
	"repro/internal/rpc"
)

const (
	// journalCap bounds the deltas retained per owner; overflowing marks
	// the journal trimmed (repair falls back to absolute pushes).
	journalCap = 4096
	// journalOwnersCap bounds the journals map; overflowing evicts
	// journals of drained owners (no catalog entry, no live refs).
	journalOwnersCap = 1 << 14
	// tombstoneCap bounds the retire tombstones; the oldest are evicted
	// FIFO. An evicted tombstone only matters if a replica diverges on
	// that model *again* long after its retire — the absolute-push
	// fallback still converges, it just can no longer reject a late
	// store of the retired ID.
	tombstoneCap = 1 << 16
)

// refJournal is one owner's refcount-delta history.
type refJournal struct {
	deltas   []proto.RefDelta
	seen     map[uint64]struct{}
	appended uint64 // deltas ever recorded, monotonic across trims
	trimmed  bool   // entries were dropped, or an unidentifiable delta applied
}

// journalLocked returns owner's journal, creating it (and evicting drained
// owners' journals when over cap) as needed. Callers hold p.mu.
func (p *Provider) journalLocked(owner ownermap.ModelID) *refJournal {
	jl := p.journals[owner]
	if jl == nil {
		if len(p.journals) >= journalOwnersCap {
			p.evictJournalsLocked()
		}
		jl = &refJournal{seen: make(map[uint64]struct{})}
		p.journals[owner] = jl
	}
	return jl
}

// evictJournalsLocked drops journals of drained owners (not cataloged, no
// live refs): their replicas are converged-by-emptiness, so losing the
// history only forgoes a merge that would have replayed nothing.
func (p *Provider) evictJournalsLocked() {
	for id := range p.journals {
		if p.models[id] == nil && len(p.refs[id]) == 0 {
			delete(p.journals, id)
			if p.catDropJournalLocked(id) != nil {
				// Best-effort: a stale persisted journal resurrects at
				// recovery as a drained owner's history, which repair
				// treats as converged-by-emptiness.
				p.catEvictErr()
			}
			p.reg.Counter("provider.journal_evict").Inc()
		}
	}
}

// seenLocked reports whether owner's journal already holds reqID — i.e.
// the repairer replayed this request's delta from another replica before
// the request (or its retry) arrived here. Callers hold p.mu.
func (p *Provider) seenLocked(owner ownermap.ModelID, reqID uint64) bool {
	if reqID == 0 {
		return false
	}
	jl := p.journals[owner]
	if jl == nil {
		return false
	}
	_, ok := jl.seen[reqID]
	return ok
}

// recordDeltaLocked journals one applied refcount mutation. A mutation
// without a ReqID cannot participate in a cross-replica merge, so it
// poisons the journal (trimmed) instead of being recorded. Callers hold
// p.mu and have already applied the refcount change.
func (p *Provider) recordDeltaLocked(owner ownermap.ModelID, reqID uint64, neg bool, vertices []graph.VertexID) {
	jl := p.journalLocked(owner)
	if reqID == 0 {
		jl.trimmed = true
		p.reg.Counter("provider.journal_unmergeable").Inc()
		return
	}
	jl.append(proto.RefDelta{
		ReqID:    reqID,
		Neg:      neg,
		Vertices: append([]graph.VertexID(nil), vertices...),
	})
}

// append records d, trimming FIFO over journalCap.
func (jl *refJournal) append(d proto.RefDelta) {
	jl.deltas = append(jl.deltas, d)
	jl.seen[d.ReqID] = struct{}{}
	jl.appended++
	for len(jl.deltas) > journalCap {
		delete(jl.seen, jl.deltas[0].ReqID)
		jl.deltas = jl.deltas[1:]
		jl.trimmed = true
	}
}

// tombstoneLocked records a retire tombstone, evicting the oldest over
// cap. Callers hold p.mu.
func (p *Provider) tombstoneLocked(id ownermap.ModelID, seq uint64) {
	if _, ok := p.retired[id]; ok {
		return
	}
	p.retired[id] = seq
	p.retiredOrder = append(p.retiredOrder, id)
	for len(p.retiredOrder) > tombstoneCap {
		delete(p.retired, p.retiredOrder[0])
		if p.catDropTombLocked(p.retiredOrder[0]) != nil {
			p.catEvictErr() // best-effort: see catDropTombLocked
		}
		p.retiredOrder = p.retiredOrder[1:]
	}
}

// kvGet reads one segment payload, preferring the byte-key fast path.
func (p *Provider) kvGet(k segKey) ([]byte, bool, error) {
	if p.kvB != nil {
		var kb [segKeyLen]byte
		return p.kvB.GetB(k.appendTo(kb[:0]))
	}
	return p.kv.Get(k.String())
}

// sortedRefVertices returns vs's keys in ascending order — the canonical
// order every digest and pull uses so replicas hash identically.
func sortedRefVertices(vs map[graph.VertexID]int) []graph.VertexID {
	out := make([]graph.VertexID, 0, len(vs))
	for v := range vs {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// --- digest ------------------------------------------------------------------

// Digest summarizes everything this provider holds for id. Equal digests
// on two replicas mean byte-identical model state (up to hash collision).
func (p *Provider) Digest(id ownermap.ModelID) proto.ModelDigest {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.digestLocked(id)
}

func (p *Provider) digestLocked(id ownermap.ModelID) proto.ModelDigest {
	d := proto.ModelDigest{Model: id}
	if meta := p.models[id]; meta != nil {
		d.Present = true
		d.Seq = meta.seq
		d.MetaHash = proto.HashBytes(proto.HashSeed, p.encodeMetaLocked(id, meta))
	}
	if seq, ok := p.retired[id]; ok {
		d.Retired = true
		if !d.Present {
			d.Seq = seq
		}
	}
	if jl := p.journals[id]; jl != nil {
		d.Journal = jl.appended
		d.Trimmed = jl.trimmed
	}
	refHash, segHash := proto.HashSeed, proto.HashSeed
	for _, v := range sortedRefVertices(p.refs[id]) {
		n := uint64(p.refs[id][v])
		refHash = proto.HashWords(refHash, uint64(v), n)
		d.LiveRefs += n
		length := proto.SegMissing
		if seg, ok, err := p.kvGet(segKey{id, v}); err == nil && ok {
			// Fold the *logical* segment length, not the stored one: two
			// replicas holding different encodings (raw here, delta there)
			// of the same logical bytes must digest identically, or repair
			// and `evostore-ctl digest` report false divergence forever.
			length = proto.SegLogicalLen(seg)
		}
		segHash = proto.HashWords(segHash, uint64(v), length)
	}
	d.RefHash, d.SegHash = refHash, segHash
	return d
}

func (p *Provider) encodeMetaLocked(id ownermap.ModelID, meta *modelMeta) []byte {
	return (&proto.ModelMeta{
		Model:    id,
		Seq:      meta.seq,
		Quality:  meta.quality,
		Graph:    meta.graph,
		OwnerMap: meta.om,
	}).Encode()
}

// RepairModels lists every model ID the provider holds repairable state
// for — a catalog entry or live refcounts — in ascending order. Fully
// drained tombstones are deliberately excluded: they represent the
// converged end state.
func (p *Provider) RepairModels() []ownermap.ModelID {
	p.mu.RLock()
	set := make(map[ownermap.ModelID]struct{}, len(p.models)+len(p.refs))
	for id := range p.models {
		set[id] = struct{}{}
	}
	for id := range p.refs {
		set[id] = struct{}{}
	}
	p.mu.RUnlock()
	ids := make([]ownermap.ModelID, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// --- pull --------------------------------------------------------------------

// RepairPull snapshots one model's repair state: digest, encoded metadata,
// refcounts, delta journal, and (on request) segment payloads. The
// returned payload slices alias the KV store and must be treated as
// immutable.
func (p *Provider) RepairPull(q *proto.RepairPullReq) (*proto.RepairPullResp, [][]byte, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	resp := &proto.RepairPullResp{Digest: p.digestLocked(q.Model)}
	if meta := p.models[q.Model]; meta != nil {
		resp.Meta = p.encodeMetaLocked(q.Model, meta)
	}
	live := p.refs[q.Model]
	vertices := sortedRefVertices(live)
	for _, v := range vertices {
		resp.Counts = append(resp.Counts, proto.RefCount{Vertex: v, Count: uint64(live[v])})
	}
	if jl := p.journals[q.Model]; jl != nil {
		resp.Journal = append([]proto.RefDelta(nil), jl.deltas...)
	}
	var payloads [][]byte
	if q.WithPayloads {
		want := vertices
		if len(q.Vertices) > 0 {
			want = q.Vertices
		}
		for _, v := range want {
			seg, ok, err := p.kvGet(segKey{q.Model, v})
			if err != nil {
				return nil, nil, fmt.Errorf("provider %d: repair_pull %d/%d: %w", p.id, q.Model, v, err)
			}
			if !ok {
				continue
			}
			resp.Segments = append(resp.Segments, proto.SegmentRef{Vertex: v, Length: uint32(len(seg))})
			payloads = append(payloads, seg)
		}
	}
	return resp, payloads, nil
}

// --- apply -------------------------------------------------------------------

// RepairApply pushes repair state at this replica; see
// proto.RepairApplyReq for the step semantics. The call is convergent:
// re-applying the same request leaves the provider unchanged.
func (p *Provider) RepairApply(q *proto.RepairApplyReq, segs [][]byte) (*proto.RepairApplyResp, error) {
	if err := p.acceptsWrite(q.Model); err != nil {
		return nil, fmt.Errorf("repair_apply: %w", err)
	}
	if len(segs) != len(q.Segments) {
		return nil, fmt.Errorf("provider %d: repair_apply %d: %d payloads for %d table entries",
			p.id, q.Model, len(segs), len(q.Segments))
	}
	var installMeta *proto.ModelMeta
	if q.Meta != nil {
		m, err := proto.DecodeModelMeta(q.Meta)
		if err != nil {
			return nil, fmt.Errorf("provider %d: repair_apply %d: meta: %w", p.id, q.Model, err)
		}
		installMeta = m
	}

	var puts []segKey
	var putVals [][]byte
	var dels []segKey

	p.mu.Lock()
	// 1. Tombstone: a retire this replica missed.
	if q.Tombstone {
		p.tombstoneLocked(q.Model, q.TombstoneSeq)
		if p.models[q.Model] != nil {
			delete(p.models, q.Model)
			p.reg.Counter("provider.repair_tombstone").Inc()
		}
	}
	_, dead := p.retired[q.Model]
	// 2. Metadata: a store this replica missed. Never resurrects a
	// tombstoned model; refcounts arrive separately as deltas.
	if installMeta != nil && !dead && p.models[q.Model] == nil {
		p.models[q.Model] = &modelMeta{
			graph:    installMeta.Graph,
			om:       installMeta.OwnerMap,
			quality:  installMeta.Quality,
			seq:      installMeta.Seq,
			segments: make(map[graph.VertexID]uint32, len(q.Segments)),
		}
		p.reg.Counter("provider.repair_meta_install").Inc()
	}
	// 3. Refcounts: absolute replacement (trimmed-journal fallback) or
	// delta merge by ReqID.
	journalReplaced := false
	jl := p.journalLocked(q.Model)
	if q.ReplaceJournal {
		journalReplaced = true
		next := make(map[graph.VertexID]int, len(q.SetCounts))
		for _, c := range q.SetCounts {
			if c.Count > 0 {
				next[c.Vertex] = int(c.Count)
			}
		}
		for v := range p.refs[q.Model] {
			if next[v] == 0 {
				dels = append(dels, segKey{q.Model, v})
			}
		}
		if len(next) > 0 {
			p.refs[q.Model] = next
		} else {
			delete(p.refs, q.Model)
		}
		jl.deltas = append([]proto.RefDelta(nil), q.Deltas...)
		jl.seen = make(map[uint64]struct{}, len(q.Deltas))
		for _, d := range q.Deltas {
			if d.ReqID != 0 {
				jl.seen[d.ReqID] = struct{}{}
			}
		}
		jl.appended = q.JournalAppended
		// The push happened because history was incomplete somewhere;
		// keep this journal out of future delta merges too.
		jl.trimmed = true
		p.reg.Counter("provider.repair_absolute").Inc()
	} else if len(q.Deltas) > 0 {
		net := make(map[graph.VertexID]int)
		for i := range q.Deltas {
			d := &q.Deltas[i]
			if d.ReqID == 0 {
				continue
			}
			if _, ok := jl.seen[d.ReqID]; ok {
				continue
			}
			jl.append(proto.RefDelta{
				ReqID:    d.ReqID,
				Neg:      d.Neg,
				Vertices: append([]graph.VertexID(nil), d.Vertices...),
			})
			p.reg.Counter("provider.repair_deltas").Inc()
			for _, v := range d.Vertices {
				if d.Neg {
					net[v]--
				} else {
					net[v]++
				}
			}
		}
		meta := p.models[q.Model]
		for v, dn := range net {
			if dn == 0 {
				continue
			}
			before := p.refs[q.Model][v]
			if before+dn < 0 {
				// A dec for an inc this replica never saw and whose inc is
				// not in the batch either; clamp rather than go negative.
				dn = -before
				p.reg.Counter("provider.repair_clamped").Inc()
			}
			if p.refAddLocked(q.Model, v, dn) == 0 && before > 0 {
				dels = append(dels, segKey{q.Model, v})
				if meta != nil {
					delete(meta.segments, v)
				}
			}
		}
	}
	// 4. Payloads: install pushed segments that are live after the
	// refcount step; orphans (no live ref) are skipped.
	meta := p.models[q.Model]
	for i, s := range q.Segments {
		if p.refs[q.Model][s.Vertex] == 0 {
			p.reg.Counter("provider.repair_orphan_skip").Inc()
			continue
		}
		puts = append(puts, segKey{q.Model, s.Vertex})
		putVals = append(putVals, segs[i])
		if meta != nil {
			meta.segments[s.Vertex] = s.Length
		}
	}
	// Write-through the catalog state this apply touched. An absolute
	// journal replacement rewrote history, so its persisted window is
	// dropped wholesale first (the incremental reconciler must never keep
	// stale delta keys under a replaced index range).
	var catErr error
	if p.cat != nil {
		if journalReplaced {
			catErr = p.catDropJournalLocked(q.Model)
		}
		if catErr == nil && q.Tombstone {
			catErr = p.catPersistTombLocked(q.Model)
		}
		if catErr == nil {
			catErr = p.catPersistModelLocked(q.Model)
		}
		if catErr == nil {
			catErr = p.catPersistRefsLocked(q.Model)
		}
		if catErr == nil {
			catErr = p.catPersistJournalLocked(q.Model)
		}
	}
	p.mu.Unlock()
	if catErr != nil {
		return nil, fmt.Errorf("provider %d: repair_apply %d: catalog: %w", p.id, q.Model, catErr)
	}

	// Persist outside the lock, like the foreground write path.
	for _, k := range dels {
		if err := p.kv.Delete(k.String()); err != nil {
			return nil, fmt.Errorf("provider %d: repair_apply: deleting %s: %w", p.id, k, err)
		}
	}
	for i, k := range puts {
		if err := p.kv.Put(k.String(), putVals[i]); err != nil {
			return nil, fmt.Errorf("provider %d: repair_apply: persisting %s: %w", p.id, k, err)
		}
	}
	if err := p.catSync(); err != nil {
		return nil, err
	}

	// 5. Report the post-apply state plus any live-but-payload-less
	// vertices the repairer still needs to ship.
	p.mu.RLock()
	resp := &proto.RepairApplyResp{Digest: p.digestLocked(q.Model)}
	for _, v := range sortedRefVertices(p.refs[q.Model]) {
		if _, ok, err := p.kvGet(segKey{q.Model, v}); err == nil && !ok {
			resp.NeedPayload = append(resp.NeedPayload, v)
		}
	}
	p.mu.RUnlock()
	return resp, nil
}

// --- handlers ----------------------------------------------------------------

func (p *Provider) handleRepairList(_ context.Context, _ rpc.Message) (rpc.Message, error) {
	return rpc.Message{Meta: proto.EncodeModelList(p.RepairModels())}, nil
}

func (p *Provider) handleDigest(_ context.Context, req rpc.Message) (rpc.Message, error) {
	ids, err := proto.DecodeModelList(req.Meta)
	if err != nil {
		return rpc.Message{}, fmt.Errorf("provider %d: digest: %w", p.id, err)
	}
	ds := make([]proto.ModelDigest, len(ids))
	p.mu.RLock()
	for i, id := range ids {
		ds[i] = p.digestLocked(id)
	}
	p.mu.RUnlock()
	return rpc.Message{Meta: proto.EncodeDigests(ds)}, nil
}

func (p *Provider) handleRepairPull(_ context.Context, req rpc.Message) (rpc.Message, error) {
	q, err := proto.DecodeRepairPullReq(req.Meta)
	if err != nil {
		return rpc.Message{}, fmt.Errorf("provider %d: repair_pull: %w", p.id, err)
	}
	resp, payloads, err := p.RepairPull(q)
	if err != nil {
		return rpc.Message{}, err
	}
	return rpc.Message{Meta: resp.Encode(), BulkVec: payloads}, nil
}

func (p *Provider) handleRepairApply(_ context.Context, req rpc.Message) (rpc.Message, error) {
	q, err := proto.DecodeRepairApplyReq(req.Meta)
	if err != nil {
		return rpc.Message{}, fmt.Errorf("provider %d: repair_apply: %w", p.id, err)
	}
	segs, err := proto.SplitBulkMsg(q.Segments, req)
	if err != nil {
		return rpc.Message{}, fmt.Errorf("provider %d: repair_apply %d: %w", p.id, q.Model, err)
	}
	resp, err := p.RepairApply(q, segs)
	if err != nil {
		return rpc.Message{}, err
	}
	return rpc.Message{Meta: resp.Encode()}, nil
}
