package provider

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/kvstore"
	"repro/internal/ownermap"
	"repro/internal/proto"
	"repro/internal/rpc"
)

func chainGraph(sigs ...uint64) *graph.Compact {
	b := graph.NewBuilder(len(sigs))
	for i, s := range sigs {
		b.AddVertex(graph.Vertex{ConfigSig: s, ParamBytes: 8})
		if i > 0 {
			b.AddEdge(graph.VertexID(i-1), graph.VertexID(i))
		}
	}
	return b.Build()
}

func storeReq(id ownermap.ModelID, seq uint64, q float64, g *graph.Compact) (*proto.StoreModelReq, [][]byte) {
	om := ownermap.New(id, seq, g.NumVertices())
	req := &proto.StoreModelReq{Model: id, Seq: seq, Quality: q, Graph: g, OwnerMap: om}
	var segs [][]byte
	for v := 0; v < g.NumVertices(); v++ {
		seg := []byte(fmt.Sprintf("seg-%d-%d", id, v))
		req.Segments = append(req.Segments, proto.SegmentRef{Vertex: graph.VertexID(v), Length: uint32(len(seg))})
		segs = append(segs, seg)
	}
	return req, segs
}

func TestStoreGetRead(t *testing.T) {
	p := New(0, kvstore.NewMemKV(4))
	g := chainGraph(1, 2, 3)
	req, segs := storeReq(7, 1, 0.5, g)
	if err := p.StoreModel(req, segs); err != nil {
		t.Fatal(err)
	}
	meta, err := p.GetMeta(7)
	if err != nil || meta.Quality != 0.5 || !meta.Graph.Equal(g) {
		t.Fatalf("GetMeta: %+v %v", meta, err)
	}
	table, parts, err := p.ReadSegments(7, []graph.VertexID{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(table) != 2 || len(parts) != 2 {
		t.Fatalf("read table/parts = %d/%d entries", len(table), len(parts))
	}
	if string(parts[0]) != "seg-7-0" || string(parts[1]) != "seg-7-2" {
		t.Errorf("read parts = %q", parts)
	}
}

func TestStoreValidation(t *testing.T) {
	p := New(0, kvstore.NewMemKV(4))
	g := chainGraph(1, 2)

	// Owner map size mismatch.
	bad := &proto.StoreModelReq{Model: 1, Graph: g, OwnerMap: ownermap.New(1, 1, 5)}
	if err := p.StoreModel(bad, nil); err == nil {
		t.Error("owner-map size mismatch accepted")
	}
	// Segment for a vertex the model does not own.
	anc := ownermap.New(9, 1, 2)
	om, _ := ownermap.Derive(anc, 2, 2, 2, []graph.VertexID{0})
	req := &proto.StoreModelReq{
		Model: 2, Graph: g, OwnerMap: om,
		Segments: []proto.SegmentRef{{Vertex: 0, Length: 1}},
	}
	if err := p.StoreModel(req, [][]byte{{0xff}}); err == nil {
		t.Error("segment for inherited vertex accepted")
	}
	// Out-of-range segment vertex.
	req2, segs2 := storeReq(3, 3, 0.1, g)
	req2.Segments[0].Vertex = 99
	if err := p.StoreModel(req2, segs2); err == nil {
		t.Error("out-of-range segment vertex accepted")
	}
	// Duplicate ID.
	req3, segs3 := storeReq(4, 4, 0.1, g)
	if err := p.StoreModel(req3, segs3); err != nil {
		t.Fatal(err)
	}
	req4, segs4 := storeReq(4, 5, 0.2, g)
	if err := p.StoreModel(req4, segs4); err == nil {
		t.Error("duplicate model accepted")
	}
}

func TestReadMissingSegment(t *testing.T) {
	p := New(0, kvstore.NewMemKV(4))
	if _, _, err := p.ReadSegments(1, []graph.VertexID{0}); err == nil {
		t.Error("missing segment read succeeded")
	}
}

func TestRefCountLifecycle(t *testing.T) {
	p := New(0, kvstore.NewMemKV(4))
	g := chainGraph(1, 2)
	req, segs := storeReq(1, 1, 0.5, g)
	if err := p.StoreModel(req, segs); err != nil {
		t.Fatal(err)
	}
	if p.RefCount(1, 0) != 1 {
		t.Fatalf("initial refcount = %d", p.RefCount(1, 0))
	}
	// A derived model pins vertex 0.
	if err := p.IncRef(1, []graph.VertexID{0}); err != nil {
		t.Fatal(err)
	}
	if p.RefCount(1, 0) != 2 {
		t.Errorf("after inc = %d", p.RefCount(1, 0))
	}
	// IncRef on a segment that was never stored must fail atomically.
	if err := p.IncRef(1, []graph.VertexID{0, 9}); err == nil {
		t.Error("inc_ref on missing segment succeeded")
	}
	if p.RefCount(1, 0) != 2 {
		t.Error("failed IncRef mutated counts")
	}

	// Creator retires: decrement its own references; vertex 0 survives.
	om, err := p.Retire(1)
	if err != nil || om.Len() != 2 {
		t.Fatalf("Retire: %v", err)
	}
	freed, err := p.DecRef(1, []graph.VertexID{0, 1})
	if err != nil || freed != 1 { // vertex 1 freed, vertex 0 pinned
		t.Fatalf("DecRef: freed=%d err=%v", freed, err)
	}
	if _, _, err := p.ReadSegments(1, []graph.VertexID{0}); err != nil {
		t.Error("pinned segment unreadable after owner retired")
	}
	if _, _, err := p.ReadSegments(1, []graph.VertexID{1}); err == nil {
		t.Error("freed segment still readable")
	}
	// Descendant unpins: now vertex 0 goes too.
	freed, err = p.DecRef(1, []graph.VertexID{0})
	if err != nil || freed != 1 {
		t.Fatalf("final DecRef: freed=%d err=%v", freed, err)
	}
	st := p.Stats()
	if st.Segments != 0 || st.SegmentBytes != 0 {
		t.Errorf("leak: %+v", st)
	}
}

func TestDecRefMissingFails(t *testing.T) {
	p := New(0, kvstore.NewMemKV(4))
	if _, err := p.DecRef(1, []graph.VertexID{0}); err == nil {
		t.Error("dec_ref on missing segment succeeded")
	}
}

func TestRetireUnknown(t *testing.T) {
	p := New(0, kvstore.NewMemKV(4))
	if _, err := p.Retire(42); err == nil {
		t.Error("retire of unknown model succeeded")
	}
}

func TestLCPQueryLocalScan(t *testing.T) {
	p := New(0, kvstore.NewMemKV(4))
	// Catalog: three chains of differing overlap with the query.
	for i, g := range []*graph.Compact{
		chainGraph(1, 2, 3),       // LCP 3 with query
		chainGraph(1, 2, 9),       // LCP 2
		chainGraph(1, 2, 3, 4, 5), // LCP 4 — the winner
	} {
		req, segs := storeReq(ownermap.ModelID(i+1), uint64(i+1), float64(i)/10, g)
		if err := p.StoreModel(req, segs); err != nil {
			t.Fatal(err)
		}
	}
	query := chainGraph(1, 2, 3, 4, 7)
	res := p.LCPQuery(&proto.LCPQueryReq{Graph: query})
	if !res.Found || res.Model != 3 || len(res.Prefix) != 4 {
		t.Errorf("res = %+v", res)
	}

	// Excluding the winner falls back to the next best.
	res = p.LCPQuery(&proto.LCPQueryReq{Graph: query, Exclude: []ownermap.ModelID{3}})
	if !res.Found || res.Model != 1 || len(res.Prefix) != 3 {
		t.Errorf("excluded res = %+v", res)
	}

	// No match at all.
	res = p.LCPQuery(&proto.LCPQueryReq{Graph: chainGraph(99)})
	if res.Found {
		t.Errorf("unexpected match: %+v", res)
	}
}

func TestLCPQueryQualityTieBreak(t *testing.T) {
	p := New(0, kvstore.NewMemKV(4))
	g := chainGraph(1, 2, 3)
	for i, q := range []float64{0.3, 0.9, 0.6} {
		req, segs := storeReq(ownermap.ModelID(i+1), uint64(i+1), q, g)
		if err := p.StoreModel(req, segs); err != nil {
			t.Fatal(err)
		}
	}
	res := p.LCPQuery(&proto.LCPQueryReq{Graph: g})
	if res.Model != 2 || res.Quality != 0.9 {
		t.Errorf("tie-break picked %+v", res)
	}
}

func TestListModelsAndStats(t *testing.T) {
	p := New(0, kvstore.NewMemKV(4))
	for _, id := range []ownermap.ModelID{5, 2, 8} {
		req, segs := storeReq(id, uint64(id), 0.5, chainGraph(1, 2))
		if err := p.StoreModel(req, segs); err != nil {
			t.Fatal(err)
		}
	}
	ids := p.ListModels()
	if len(ids) != 3 || ids[0] != 2 || ids[2] != 8 {
		t.Errorf("ListModels = %v", ids)
	}
	st := p.Stats()
	if st.Models != 3 || st.Segments != 6 || st.LiveRefs != 6 {
		t.Errorf("Stats = %+v", st)
	}
	if st.SegmentBytes == 0 {
		t.Error("SegmentBytes = 0")
	}
}

func TestConcurrentStoreAndQuery(t *testing.T) {
	p := New(0, kvstore.NewMemKV(16))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				id := ownermap.ModelID(w*100 + i + 1)
				g := chainGraph(1, 2, uint64(w+3), uint64(i+100))
				req, segs := storeReq(id, uint64(id), 0.5, g)
				if err := p.StoreModel(req, segs); err != nil {
					t.Errorf("store: %v", err)
					return
				}
				res := p.LCPQuery(&proto.LCPQueryReq{Graph: g})
				if !res.Found {
					t.Error("query found nothing after store")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := len(p.ListModels()); got != 160 {
		t.Errorf("models = %d", got)
	}
}

func BenchmarkLocalLCPQueryCatalog1000(b *testing.B) {
	p := New(0, kvstore.NewMemKV(4))
	for i := 0; i < 1000; i++ {
		sigs := make([]uint64, 20)
		for j := range sigs {
			sigs[j] = uint64(1 + (i*31+j*17)%5)
		}
		req, segs := storeReq(ownermap.ModelID(i+1), uint64(i+1), 0.5, chainGraph(sigs...))
		if err := p.StoreModel(req, segs); err != nil {
			b.Fatal(err)
		}
	}
	query := p.LCPQuery // silence linters about unused; real query below
	_ = query
	g := chainGraph(1, 2, 3, 4, 5, 1, 2, 3, 4, 5, 1, 2, 3, 4, 5, 1, 2, 3, 4, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.LCPQuery(&proto.LCPQueryReq{Graph: g})
	}
}

func TestDecRefAtomicOnPartialBatch(t *testing.T) {
	p := New(0, kvstore.NewMemKV(4))
	g := chainGraph(1, 2)
	req, segs := storeReq(1, 1, 0.5, g)
	if err := p.StoreModel(req, segs); err != nil {
		t.Fatal(err)
	}
	// Batch mixing valid and missing vertices must fail without touching
	// the valid counters.
	if _, err := p.DecRef(1, []graph.VertexID{0, 9}); err == nil {
		t.Fatal("partial dec_ref succeeded")
	}
	if p.RefCount(1, 0) != 1 {
		t.Errorf("valid counter mutated by failed batch: %d", p.RefCount(1, 0))
	}
}

func TestReadModes(t *testing.T) {
	p := New(0, kvstore.NewMemKV(4))
	g := chainGraph(1, 2, 3)
	req, segs := storeReq(7, 1, 0.5, g)
	if err := p.StoreModel(req, segs); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	vs := []graph.VertexID{0, 1, 2}
	var flat []byte
	for _, s := range segs {
		flat = append(flat, s...)
	}

	// ReadFull: table + vectored bulk covering every segment.
	q := &proto.ReadSegmentsReq{Owner: 7, Vertices: vs}
	resp, err := p.handleReadSegments(ctx, rpc.Message{Meta: q.Encode()})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp.BulkFlat(), flat) {
		t.Error("ReadFull bulk mismatch")
	}
	if len(resp.BulkVec) != len(segs) {
		t.Errorf("ReadFull returned %d bulk slices, want one per segment", len(resp.BulkVec))
	}

	// ReadTable: same table, zero bulk bytes.
	q.Mode = proto.ReadTable
	probe, err := p.handleReadSegments(ctx, rpc.Message{Meta: q.Encode()})
	if err != nil {
		t.Fatal(err)
	}
	if probe.BulkLen() != 0 {
		t.Errorf("ReadTable carried %d bulk bytes", probe.BulkLen())
	}
	if !bytes.Equal(probe.Meta, resp.Meta) {
		t.Error("ReadTable table differs from ReadFull table")
	}

	// ReadRange: every sub-range of the consolidated payload matches the
	// flat concatenation, including ranges straddling segment boundaries.
	total := uint64(len(flat))
	for _, r := range [][2]uint64{{0, total}, {0, 1}, {total - 1, 1}, {2, 7}, {5, total - 5}} {
		q2 := &proto.ReadSegmentsReq{Owner: 7, Vertices: vs, Mode: proto.ReadRange, RangeOff: r[0], RangeLen: r[1]}
		resp, err := p.handleReadSegments(ctx, rpc.Message{Meta: q2.Encode()})
		if err != nil {
			t.Fatalf("range [%d,+%d): %v", r[0], r[1], err)
		}
		if !bytes.Equal(resp.BulkFlat(), flat[r[0]:r[0]+r[1]]) {
			t.Errorf("range [%d,+%d) mismatch", r[0], r[1])
		}
	}

	// Out-of-bounds range and unknown mode are rejected.
	bad := &proto.ReadSegmentsReq{Owner: 7, Vertices: vs, Mode: proto.ReadRange, RangeOff: total, RangeLen: 1}
	if _, err := p.handleReadSegments(ctx, rpc.Message{Meta: bad.Encode()}); err == nil {
		t.Error("out-of-bounds range accepted")
	}
	unk := &proto.ReadSegmentsReq{Owner: 7, Vertices: vs, Mode: 99}
	if _, err := p.handleReadSegments(ctx, rpc.Message{Meta: unk.Encode()}); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestSliceRange(t *testing.T) {
	table := []proto.SegmentRef{{Vertex: 0, Length: 4}, {Vertex: 1, Length: 0}, {Vertex: 2, Length: 3}}
	segs := [][]byte{{1, 2, 3, 4}, nil, {5, 6, 7}}
	for off := uint64(0); off <= 7; off++ {
		for l := uint64(0); off+l <= 7; l++ {
			views, err := sliceRange(table, segs, off, l)
			if err != nil {
				t.Fatalf("[%d,+%d): %v", off, l, err)
			}
			var got []byte
			for _, v := range views {
				got = append(got, v...)
			}
			want := []byte{1, 2, 3, 4, 5, 6, 7}[off : off+l]
			if !bytes.Equal(got, want) {
				t.Fatalf("[%d,+%d) = %v, want %v", off, l, got, want)
			}
		}
	}
	if _, err := sliceRange(table, segs, 7, 1); err == nil {
		t.Error("overrun accepted")
	}
	if _, err := sliceRange(table, segs, ^uint64(0), 2); err == nil {
		t.Error("offset overflow accepted")
	}
}
