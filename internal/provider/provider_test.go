package provider

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/kvstore"
	"repro/internal/ownermap"
	"repro/internal/proto"
)

func chainGraph(sigs ...uint64) *graph.Compact {
	b := graph.NewBuilder(len(sigs))
	for i, s := range sigs {
		b.AddVertex(graph.Vertex{ConfigSig: s, ParamBytes: 8})
		if i > 0 {
			b.AddEdge(graph.VertexID(i-1), graph.VertexID(i))
		}
	}
	return b.Build()
}

func storeReq(id ownermap.ModelID, seq uint64, q float64, g *graph.Compact) (*proto.StoreModelReq, [][]byte) {
	om := ownermap.New(id, seq, g.NumVertices())
	req := &proto.StoreModelReq{Model: id, Seq: seq, Quality: q, Graph: g, OwnerMap: om}
	var segs [][]byte
	for v := 0; v < g.NumVertices(); v++ {
		seg := []byte(fmt.Sprintf("seg-%d-%d", id, v))
		req.Segments = append(req.Segments, proto.SegmentRef{Vertex: graph.VertexID(v), Length: uint32(len(seg))})
		segs = append(segs, seg)
	}
	return req, segs
}

func TestStoreGetRead(t *testing.T) {
	p := New(0, kvstore.NewMemKV(4))
	g := chainGraph(1, 2, 3)
	req, segs := storeReq(7, 1, 0.5, g)
	if err := p.StoreModel(req, segs); err != nil {
		t.Fatal(err)
	}
	meta, err := p.GetMeta(7)
	if err != nil || meta.Quality != 0.5 || !meta.Graph.Equal(g) {
		t.Fatalf("GetMeta: %+v %v", meta, err)
	}
	table, bulk, err := p.ReadSegments(7, []graph.VertexID{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := proto.SplitBulk(table, bulk)
	if err != nil {
		t.Fatal(err)
	}
	if string(parts[0]) != "seg-7-0" || string(parts[1]) != "seg-7-2" {
		t.Errorf("read parts = %q", parts)
	}
}

func TestStoreValidation(t *testing.T) {
	p := New(0, kvstore.NewMemKV(4))
	g := chainGraph(1, 2)

	// Owner map size mismatch.
	bad := &proto.StoreModelReq{Model: 1, Graph: g, OwnerMap: ownermap.New(1, 1, 5)}
	if err := p.StoreModel(bad, nil); err == nil {
		t.Error("owner-map size mismatch accepted")
	}
	// Segment for a vertex the model does not own.
	anc := ownermap.New(9, 1, 2)
	om, _ := ownermap.Derive(anc, 2, 2, 2, []graph.VertexID{0})
	req := &proto.StoreModelReq{
		Model: 2, Graph: g, OwnerMap: om,
		Segments: []proto.SegmentRef{{Vertex: 0, Length: 1}},
	}
	if err := p.StoreModel(req, [][]byte{{0xff}}); err == nil {
		t.Error("segment for inherited vertex accepted")
	}
	// Out-of-range segment vertex.
	req2, segs2 := storeReq(3, 3, 0.1, g)
	req2.Segments[0].Vertex = 99
	if err := p.StoreModel(req2, segs2); err == nil {
		t.Error("out-of-range segment vertex accepted")
	}
	// Duplicate ID.
	req3, segs3 := storeReq(4, 4, 0.1, g)
	if err := p.StoreModel(req3, segs3); err != nil {
		t.Fatal(err)
	}
	req4, segs4 := storeReq(4, 5, 0.2, g)
	if err := p.StoreModel(req4, segs4); err == nil {
		t.Error("duplicate model accepted")
	}
}

func TestReadMissingSegment(t *testing.T) {
	p := New(0, kvstore.NewMemKV(4))
	if _, _, err := p.ReadSegments(1, []graph.VertexID{0}); err == nil {
		t.Error("missing segment read succeeded")
	}
}

func TestRefCountLifecycle(t *testing.T) {
	p := New(0, kvstore.NewMemKV(4))
	g := chainGraph(1, 2)
	req, segs := storeReq(1, 1, 0.5, g)
	if err := p.StoreModel(req, segs); err != nil {
		t.Fatal(err)
	}
	if p.RefCount(1, 0) != 1 {
		t.Fatalf("initial refcount = %d", p.RefCount(1, 0))
	}
	// A derived model pins vertex 0.
	if err := p.IncRef(1, []graph.VertexID{0}); err != nil {
		t.Fatal(err)
	}
	if p.RefCount(1, 0) != 2 {
		t.Errorf("after inc = %d", p.RefCount(1, 0))
	}
	// IncRef on a segment that was never stored must fail atomically.
	if err := p.IncRef(1, []graph.VertexID{0, 9}); err == nil {
		t.Error("inc_ref on missing segment succeeded")
	}
	if p.RefCount(1, 0) != 2 {
		t.Error("failed IncRef mutated counts")
	}

	// Creator retires: decrement its own references; vertex 0 survives.
	om, err := p.Retire(1)
	if err != nil || om.Len() != 2 {
		t.Fatalf("Retire: %v", err)
	}
	freed, err := p.DecRef(1, []graph.VertexID{0, 1})
	if err != nil || freed != 1 { // vertex 1 freed, vertex 0 pinned
		t.Fatalf("DecRef: freed=%d err=%v", freed, err)
	}
	if _, _, err := p.ReadSegments(1, []graph.VertexID{0}); err != nil {
		t.Error("pinned segment unreadable after owner retired")
	}
	if _, _, err := p.ReadSegments(1, []graph.VertexID{1}); err == nil {
		t.Error("freed segment still readable")
	}
	// Descendant unpins: now vertex 0 goes too.
	freed, err = p.DecRef(1, []graph.VertexID{0})
	if err != nil || freed != 1 {
		t.Fatalf("final DecRef: freed=%d err=%v", freed, err)
	}
	st := p.Stats()
	if st.Segments != 0 || st.SegmentBytes != 0 {
		t.Errorf("leak: %+v", st)
	}
}

func TestDecRefMissingFails(t *testing.T) {
	p := New(0, kvstore.NewMemKV(4))
	if _, err := p.DecRef(1, []graph.VertexID{0}); err == nil {
		t.Error("dec_ref on missing segment succeeded")
	}
}

func TestRetireUnknown(t *testing.T) {
	p := New(0, kvstore.NewMemKV(4))
	if _, err := p.Retire(42); err == nil {
		t.Error("retire of unknown model succeeded")
	}
}

func TestLCPQueryLocalScan(t *testing.T) {
	p := New(0, kvstore.NewMemKV(4))
	// Catalog: three chains of differing overlap with the query.
	for i, g := range []*graph.Compact{
		chainGraph(1, 2, 3),       // LCP 3 with query
		chainGraph(1, 2, 9),       // LCP 2
		chainGraph(1, 2, 3, 4, 5), // LCP 4 — the winner
	} {
		req, segs := storeReq(ownermap.ModelID(i+1), uint64(i+1), float64(i)/10, g)
		if err := p.StoreModel(req, segs); err != nil {
			t.Fatal(err)
		}
	}
	query := chainGraph(1, 2, 3, 4, 7)
	res := p.LCPQuery(&proto.LCPQueryReq{Graph: query})
	if !res.Found || res.Model != 3 || len(res.Prefix) != 4 {
		t.Errorf("res = %+v", res)
	}

	// Excluding the winner falls back to the next best.
	res = p.LCPQuery(&proto.LCPQueryReq{Graph: query, Exclude: []ownermap.ModelID{3}})
	if !res.Found || res.Model != 1 || len(res.Prefix) != 3 {
		t.Errorf("excluded res = %+v", res)
	}

	// No match at all.
	res = p.LCPQuery(&proto.LCPQueryReq{Graph: chainGraph(99)})
	if res.Found {
		t.Errorf("unexpected match: %+v", res)
	}
}

func TestLCPQueryQualityTieBreak(t *testing.T) {
	p := New(0, kvstore.NewMemKV(4))
	g := chainGraph(1, 2, 3)
	for i, q := range []float64{0.3, 0.9, 0.6} {
		req, segs := storeReq(ownermap.ModelID(i+1), uint64(i+1), q, g)
		if err := p.StoreModel(req, segs); err != nil {
			t.Fatal(err)
		}
	}
	res := p.LCPQuery(&proto.LCPQueryReq{Graph: g})
	if res.Model != 2 || res.Quality != 0.9 {
		t.Errorf("tie-break picked %+v", res)
	}
}

func TestListModelsAndStats(t *testing.T) {
	p := New(0, kvstore.NewMemKV(4))
	for _, id := range []ownermap.ModelID{5, 2, 8} {
		req, segs := storeReq(id, uint64(id), 0.5, chainGraph(1, 2))
		if err := p.StoreModel(req, segs); err != nil {
			t.Fatal(err)
		}
	}
	ids := p.ListModels()
	if len(ids) != 3 || ids[0] != 2 || ids[2] != 8 {
		t.Errorf("ListModels = %v", ids)
	}
	st := p.Stats()
	if st.Models != 3 || st.Segments != 6 || st.LiveRefs != 6 {
		t.Errorf("Stats = %+v", st)
	}
	if st.SegmentBytes == 0 {
		t.Error("SegmentBytes = 0")
	}
}

func TestConcurrentStoreAndQuery(t *testing.T) {
	p := New(0, kvstore.NewMemKV(16))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				id := ownermap.ModelID(w*100 + i + 1)
				g := chainGraph(1, 2, uint64(w+3), uint64(i+100))
				req, segs := storeReq(id, uint64(id), 0.5, g)
				if err := p.StoreModel(req, segs); err != nil {
					t.Errorf("store: %v", err)
					return
				}
				res := p.LCPQuery(&proto.LCPQueryReq{Graph: g})
				if !res.Found {
					t.Error("query found nothing after store")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := len(p.ListModels()); got != 160 {
		t.Errorf("models = %d", got)
	}
}

func BenchmarkLocalLCPQueryCatalog1000(b *testing.B) {
	p := New(0, kvstore.NewMemKV(4))
	for i := 0; i < 1000; i++ {
		sigs := make([]uint64, 20)
		for j := range sigs {
			sigs[j] = uint64(1 + (i*31+j*17)%5)
		}
		req, segs := storeReq(ownermap.ModelID(i+1), uint64(i+1), 0.5, chainGraph(sigs...))
		if err := p.StoreModel(req, segs); err != nil {
			b.Fatal(err)
		}
	}
	query := p.LCPQuery // silence linters about unused; real query below
	_ = query
	g := chainGraph(1, 2, 3, 4, 5, 1, 2, 3, 4, 5, 1, 2, 3, 4, 5, 1, 2, 3, 4, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.LCPQuery(&proto.LCPQueryReq{Graph: g})
	}
}

func TestDecRefAtomicOnPartialBatch(t *testing.T) {
	p := New(0, kvstore.NewMemKV(4))
	g := chainGraph(1, 2)
	req, segs := storeReq(1, 1, 0.5, g)
	if err := p.StoreModel(req, segs); err != nil {
		t.Fatal(err)
	}
	// Batch mixing valid and missing vertices must fail without touching
	// the valid counters.
	if _, err := p.DecRef(1, []graph.VertexID{0, 9}); err == nil {
		t.Fatal("partial dec_ref succeeded")
	}
	if p.RefCount(1, 0) != 1 {
		t.Errorf("valid counter mutated by failed batch: %d", p.RefCount(1, 0))
	}
}
