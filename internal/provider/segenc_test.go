package provider

import (
	"bytes"
	"testing"

	"repro/internal/dedup"
	"repro/internal/graph"
	"repro/internal/kvstore"
	"repro/internal/ownermap"
	"repro/internal/proto"
)

// deltaEnv builds a delta envelope whose logical bytes are raw, based on
// an arbitrary (owner, vertex) reference.
func deltaEnv(raw []byte, owner ownermap.ModelID, v graph.VertexID) []byte {
	base := []byte("ancestor segment bytes")
	return (&proto.SegEnvelope{
		Flags:      proto.SegDelta,
		Depth:      1,
		RawLen:     uint32(len(raw)),
		BaseOwner:  owner,
		BaseVertex: v,
		Payload:    dedup.EncodeDelta(base, raw),
	}).Encode()
}

// The evostore-ctl digest bugfix pin: a replica holding a segment
// delta-encoded and a replica holding it raw store different bytes but
// the same logical segment — their digests must converge, or repair (and
// the ctl digest report) would flag healthy replicas divergent forever.
func TestDigestConvergesAcrossEncodings(t *testing.T) {
	a, b := New(0, kvstore.NewMemKV(4)), New(1, kvstore.NewMemKV(4))
	g := chainGraph(1, 2, 3)
	req, segs := storeReq(7, 1, 0.5, g)
	req.ReqID = 100
	if err := a.StoreModel(req, segs); err != nil {
		t.Fatal(err)
	}
	reqB, segsB := storeReq(7, 1, 0.5, g)
	reqB.ReqID = 100
	segsB[1] = deltaEnv(segs[1], 3, 9)
	reqB.Segments[1].Length = uint32(len(segsB[1]))
	if err := b.StoreModel(reqB, segsB); err != nil {
		t.Fatal(err)
	}
	if len(segsB[1]) == len(segs[1]) {
		t.Fatal("test is vacuous: stored lengths coincide")
	}
	da, db := a.Digest(7), b.Digest(7)
	if !da.Converged(db) {
		t.Fatalf("same logical bytes, different encodings, diverged:\n a %+v\n b %+v", da, db)
	}
	// Control: an actually different logical length must still diverge.
	c := New(2, kvstore.NewMemKV(4))
	reqC, segsC := storeReq(7, 1, 0.5, g)
	reqC.ReqID = 100
	grown := append(append([]byte(nil), segs[1]...), "-grown"...)
	segsC[1] = deltaEnv(grown, 3, 9)
	reqC.Segments[1].Length = uint32(len(segsC[1]))
	if err := c.StoreModel(reqC, segsC); err != nil {
		t.Fatal(err)
	}
	if da.Converged(c.Digest(7)) {
		t.Fatal("different logical bytes reported converged")
	}
}

// Repair moves stored bytes verbatim: a delta-encoded segment installed
// on a fresh replica arrives bit-identical, envelope and all — the
// provider never decodes what it ships.
func TestRepairShipsEnvelopesVerbatim(t *testing.T) {
	a, b := New(0, kvstore.NewMemKV(4)), New(1, kvstore.NewMemKV(4))
	g := chainGraph(1, 2, 3)
	req, segs := storeReq(7, 1, 0.5, g)
	req.ReqID = 100
	env := deltaEnv(segs[1], 3, 9)
	segs[1] = env
	req.Segments[1].Length = uint32(len(env))
	if err := a.StoreModel(req, segs); err != nil {
		t.Fatal(err)
	}
	pull, payloads, err := a.RepairPull(&proto.RepairPullReq{Model: 7, WithPayloads: true})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := b.RepairApply(&proto.RepairApplyReq{
		Model:    7,
		Meta:     pull.Meta,
		Deltas:   pull.Journal,
		Segments: pull.Segments,
	}, payloads)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.NeedPayload) != 0 {
		t.Fatalf("NeedPayload = %v", resp.NeedPayload)
	}
	if da, db := a.Digest(7), b.Digest(7); !da.Converged(db) {
		t.Fatalf("replicas diverged after repair:\n a %+v\n b %+v", da, db)
	}
	_, parts, err := b.ReadSegments(7, []graph.VertexID{1})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(parts[0], env) {
		t.Fatalf("repaired replica serves %d bytes, want the %d-byte envelope verbatim", len(parts[0]), len(env))
	}
}

// Freeing a delta-encoded segment reports its base in the DecRef
// response, so the caller can cascade the release; raw segments report
// nothing.
func TestDecRefReportsFreedDeltaBases(t *testing.T) {
	p := New(0, kvstore.NewMemKV(4))
	g := chainGraph(1, 2, 3)
	req, segs := storeReq(7, 1, 0.5, g)
	req.ReqID = 100
	segs[1] = deltaEnv(segs[1], 3, 9)
	req.Segments[1].Length = uint32(len(segs[1]))
	if err := p.StoreModel(req, segs); err != nil {
		t.Fatal(err)
	}
	// Raw vertex 0: freed, no bases.
	freed, bases, err := p.decRef(7, []graph.VertexID{0}, 101)
	if err != nil || freed != 1 || len(bases) != 0 {
		t.Fatalf("raw decRef: freed=%d bases=%v err=%v", freed, bases, err)
	}
	// Delta vertex 1: freed, base reported.
	freed, bases, err = p.decRef(7, []graph.VertexID{1}, 102)
	if err != nil || freed != 1 {
		t.Fatalf("delta decRef: freed=%d err=%v", freed, err)
	}
	if len(bases) != 1 || bases[0] != (proto.SegBase{Owner: 3, Vertex: 9}) {
		t.Fatalf("freed bases = %v, want [{3 9}]", bases)
	}
	// A decRef that does not free (count still positive) reports nothing.
	if err := p.incRef(7, []graph.VertexID{2}, 103); err != nil {
		t.Fatal(err)
	}
	freed, bases, err = p.decRef(7, []graph.VertexID{2}, 104)
	if err != nil || freed != 0 || len(bases) != 0 {
		t.Fatalf("non-freeing decRef: freed=%d bases=%v err=%v", freed, bases, err)
	}
}
