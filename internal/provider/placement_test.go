package provider

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/kvstore"
	"repro/internal/ownermap"
)

// TestPlacementGuard arms the replica-placement guard on one provider of a
// notional 4-provider, R=2 deployment and checks every write RPC accepts
// models whose replica set includes it and rejects the rest — the defense
// against a client configured with the wrong address list or R.
func TestPlacementGuard(t *testing.T) {
	p := New(1, kvstore.NewMemKV(4))
	p.SetPlacement(4, 2)
	g := chainGraph(1, 2, 3)

	// Provider 1 replicates models homed on providers 0 and 1.
	for _, id := range []ownermap.ModelID{4, 5} { // homes 0 and 1
		req, segs := storeReq(id, 1, 0.5, g)
		if err := p.StoreModel(req, segs); err != nil {
			t.Errorf("store of in-set model %d rejected: %v", id, err)
		}
	}
	for _, id := range []ownermap.ModelID{2, 3} { // homes 2 and 3 → sets {2,3}, {3,0}
		req, segs := storeReq(id, 1, 0.5, g)
		err := p.StoreModel(req, segs)
		if err == nil {
			t.Fatalf("store of out-of-set model %d accepted", id)
		}
		if !strings.Contains(err.Error(), "not a replica") {
			t.Errorf("model %d: unexpected rejection: %v", id, err)
		}
	}

	// The guard covers every mutation, keyed by the owner being touched.
	vs := []graph.VertexID{0}
	if err := p.IncRef(5, vs); err != nil {
		t.Errorf("IncRef on in-set owner: %v", err)
	}
	if err := p.IncRef(2, vs); err == nil {
		t.Error("IncRef on out-of-set owner accepted")
	}
	if _, err := p.DecRef(2, vs); err == nil {
		t.Error("DecRef on out-of-set owner accepted")
	}
	if _, err := p.Retire(3); err == nil {
		t.Error("Retire of out-of-set model accepted")
	}

	// The wrap-around replica of a high-home model: provider 0 of the same
	// deployment accepts model 3 (home 3, set {3, 0}).
	p0 := New(0, kvstore.NewMemKV(4))
	p0.SetPlacement(4, 2)
	req, segs := storeReq(3, 1, 0.5, g)
	if err := p0.StoreModel(req, segs); err != nil {
		t.Errorf("wrap-around replica rejected model 3: %v", err)
	}

	// Disarmed (deploySize 0, the default) providers accept everything —
	// the pre-replication behavior.
	p2 := New(0, kvstore.NewMemKV(4))
	req, segs = storeReq(2, 1, 0.5, g)
	if err := p2.StoreModel(req, segs); err != nil {
		t.Errorf("unguarded provider rejected a write: %v", err)
	}
}
