package provider

// Elastic placement: the provider-side state behind the epoch-versioned
// placement table (internal/placement). A provider holds at most one
// placement.State — the current table plus, mid-migration, the previous
// one — and three RPCs manage it: evostore.placement reads it,
// evostore.set_placement installs a newer one (the rebalancer arms the
// dual-epoch pair, then commits the single new epoch), and evostore.evict
// drops a model's state once the provider has left its replica set.

import (
	"context"
	"fmt"

	"repro/internal/ownermap"
	"repro/internal/placement"
	"repro/internal/proto"
	"repro/internal/rpc"
)

// PlacementState returns the provider's active placement view (nil when
// the guard is disarmed).
func (p *Provider) PlacementState() *placement.State { return p.place.Load() }

// SetPlacementState installs a placement view. Epochs only move forward:
// a state whose current epoch is older than the installed one is ignored
// (the call is convergent — stale rebalancer retries and reordered pushes
// are no-ops), equal epochs replace (the dual→single commit of one
// migration shares its epoch), newer epochs replace unconditionally.
func (p *Provider) SetPlacementState(st *placement.State) error {
	if st == nil || st.Cur == nil {
		return fmt.Errorf("provider %d: set_placement: no current table", p.id)
	}
	for {
		old := p.place.Load()
		if old != nil && old.Cur != nil && st.Cur.Epoch < old.Cur.Epoch {
			return nil // stale push; the installed view is newer
		}
		if p.place.CompareAndSwap(old, st) {
			p.reg.Counter("provider.placement_epoch_install").Inc()
			p.notifyPlacement(st)
			return nil
		}
	}
}

// Evict drops every trace of id — catalog entry, refcounts, journal,
// tombstone, and stored segment payloads — after a migration moved the
// model elsewhere. It refuses while any active epoch still places id here
// (that state is live, not stale), and is a no-op on a model this provider
// holds nothing of. Returns the number of segment payload entries dropped.
func (p *Provider) Evict(id ownermap.ModelID) (uint64, error) {
	st := p.place.Load()
	if st == nil {
		return 0, fmt.Errorf("provider %d: evict %d: no placement table armed", p.id, id)
	}
	if st.Contains(p.id, id) {
		return 0, fmt.Errorf("provider %d: evict %d: model is still placed here in an active epoch", p.id, id)
	}

	var dels []segKey
	p.mu.Lock()
	delete(p.models, id)
	for v := range p.refs[id] {
		dels = append(dels, segKey{id, v})
	}
	delete(p.refs, id)
	delete(p.journals, id)
	// The retiredOrder FIFO keeps a ghost entry; popping a ghost during cap
	// eviction deletes an already-absent key, which is harmless.
	delete(p.retired, id)
	catErr := p.catDropModelAllLocked(id)
	p.mu.Unlock()
	if catErr != nil {
		return 0, fmt.Errorf("provider %d: evict %d: catalog: %w", p.id, id, catErr)
	}

	for _, k := range dels {
		if err := p.kv.Delete(k.String()); err != nil {
			return 0, fmt.Errorf("provider %d: evict %d: deleting %s: %w", p.id, id, k, err)
		}
	}
	if err := p.catSync(); err != nil {
		return 0, err
	}
	if len(dels) > 0 {
		p.reg.Counter("provider.placement_evict").Inc()
	}
	return uint64(len(dels)), nil
}

// --- handlers ----------------------------------------------------------------

func (p *Provider) handlePlacement(_ context.Context, _ rpc.Message) (rpc.Message, error) {
	return rpc.Message{Meta: placement.EncodeState(p.place.Load())}, nil
}

func (p *Provider) handleSetPlacement(_ context.Context, req rpc.Message) (rpc.Message, error) {
	st, err := placement.DecodeState(req.Meta)
	if err != nil {
		return rpc.Message{}, fmt.Errorf("provider %d: set_placement: %w", p.id, err)
	}
	if err := p.SetPlacementState(st); err != nil {
		return rpc.Message{}, err
	}
	// Answer with the view now in force, so a stale pusher sees what won.
	return rpc.Message{Meta: placement.EncodeState(p.place.Load())}, nil
}

func (p *Provider) handleEvict(_ context.Context, req rpc.Message) (rpc.Message, error) {
	id, err := proto.DecodeModelID(req.Meta)
	if err != nil {
		return rpc.Message{}, fmt.Errorf("provider %d: evict: %w", p.id, err)
	}
	dropped, err := p.Evict(id)
	if err != nil {
		return rpc.Message{}, err
	}
	return rpc.Message{Meta: proto.EncodeU64(dropped)}, nil
}
