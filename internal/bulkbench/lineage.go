package bulkbench

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/model"
)

// LineageConfig describes the fine-tune chain workload behind
// `evostore-bench dedup`: one base model, then Steps sequential
// fine-tunes, each touching a rotating TouchFrac of the layers and
// changing ChangeFrac of the bytes inside each touched tensor — the
// LoRA-style sparse-update shape the delta encoder targets.
type LineageConfig struct {
	Steps      int     // fine-tune steps after the base model
	Layers     int     // dense layers per model
	Dim        int     // layer width; one segment is ~Dim*Dim*4 bytes
	TouchFrac  float64 // fraction of layers each step modifies
	ChangeFrac float64 // fraction of bytes changed in a touched tensor
	Opts       core.Options
}

// DefaultLineageConfig is the tracked 10-step lineage: 16 dense 256-wide
// layers (~256 KiB segments, ~4 MiB models), half the layers touched per
// step, 5% of the bytes moved per touched tensor.
func DefaultLineageConfig() LineageConfig {
	return LineageConfig{
		Steps:      10,
		Layers:     16,
		Dim:        256,
		TouchFrac:  0.5,
		ChangeFrac: 0.05,
		Opts:       core.Options{Providers: 4},
	}
}

// LineageResult reports one lineage run.
type LineageResult struct {
	Models        int   // models stored (base + steps)
	LogicalBytes  int64 // sum of every model's full weight payload
	StoredBytes   int64 // physical bytes on the providers after the run
	RestoredBytes int64 // logical bytes read back by restoring every model
	RestoreNs     int64 // wall time of those restores
}

// RestoreMBps returns the restore throughput in MB/s.
func (r *LineageResult) RestoreMBps() float64 {
	if r.RestoreNs == 0 {
		return 0
	}
	return float64(r.RestoredBytes) / 1e6 / (float64(r.RestoreNs) / 1e9)
}

// RunLineage drives the workload end to end through the core API — LCP
// query, prefix transfer, fingerprint diff, derived store — so a dedup
// deployment exercises the real delta path, and then restores every
// model once, verifying each restored weight set against the weights
// that were stored.
func RunLineage(ctx context.Context, cfg LineageConfig) (*LineageResult, error) {
	if cfg.Steps <= 0 || cfg.Layers <= 0 || cfg.Dim <= 0 {
		return nil, fmt.Errorf("bulkbench: lineage config needs positive steps/layers/dim")
	}
	repo, err := core.Open(cfg.Opts)
	if err != nil {
		return nil, err
	}
	defer repo.Close()

	layers := make([]model.Layer, cfg.Layers)
	for i := range layers {
		layers[i] = model.Dense{In: cfg.Dim, Out: cfg.Dim, UseBias: true}
	}
	f, err := model.Flatten(model.Sequential("lineage", cfg.Dim, layers...))
	if err != nil {
		return nil, err
	}

	res := &LineageResult{}
	ws := model.Materialize(f, 1)
	baseID, err := repo.Store(ctx, f, ws, 0.9)
	if err != nil {
		return nil, err
	}
	ids := []core.ModelID{baseID}
	wsByID := map[core.ModelID]model.WeightSet{baseID: ws.Clone()}
	res.LogicalBytes += ws.SizeBytes()

	// Which vertices carry parameters (the Input vertex does not).
	var paramVs []graph.VertexID
	for v := range ws {
		if len(ws[v]) > 0 {
			paramVs = append(paramVs, graph.VertexID(v))
		}
	}
	touch := int(cfg.TouchFrac * float64(len(paramVs)))
	if touch < 1 {
		touch = 1
	}

	for step := 1; step <= cfg.Steps; step++ {
		anc, found, err := repo.BestAncestorRecent(ctx, f)
		if err != nil {
			return nil, fmt.Errorf("bulkbench: lineage step %d: %w", step, err)
		}
		if !found {
			return nil, fmt.Errorf("bulkbench: lineage step %d: no ancestor found", step)
		}
		cur := model.Materialize(f, 1) // placeholder shapes; prefix overwrites
		if err := repo.TransferPrefix(ctx, f, cur, anc); err != nil {
			return nil, fmt.Errorf("bulkbench: lineage step %d: %w", step, err)
		}
		for i := 0; i < touch; i++ {
			v := paramVs[(step*touch+i)%len(paramVs)]
			for ti, t := range cur[v] {
				sparsePerturb(t.Data, cfg.ChangeFrac, uint64(step)<<32^uint64(v)<<8^uint64(ti))
			}
		}
		id, err := repo.StoreDerived(ctx, f, cur, 0.9, anc, nil)
		if err != nil {
			return nil, fmt.Errorf("bulkbench: lineage step %d: %w", step, err)
		}
		ids = append(ids, id)
		wsByID[id] = cur.Clone()
		res.LogicalBytes += cur.SizeBytes()
	}
	res.Models = len(ids)

	st, err := repo.Stats(ctx)
	if err != nil {
		return nil, err
	}
	res.StoredBytes = int64(st.SegmentBytes)

	// Restore every model and verify the weights came back bit-identical —
	// a wrong delta resolution must fail the benchmark, not skew it. One
	// untimed warm-up pass first: the raw and dedup runs share a process,
	// and whichever goes first would otherwise absorb the allocator and
	// page-fault warm-up, skewing the restore ratio either way.
	for _, id := range ids {
		if _, _, err := repo.Load(ctx, id); err != nil {
			return nil, fmt.Errorf("bulkbench: restoring model %d: %w", id, err)
		}
	}
	// Several timed passes from a freshly collected heap: one pass over
	// the lineage takes ~10 ms warm, short enough for a single GC pause
	// to dominate the measurement.
	runtime.GC()
	const restorePasses = 3
	start := time.Now()
	loaded := make([]model.WeightSet, len(ids))
	for pass := 0; pass < restorePasses; pass++ {
		for i, id := range ids {
			_, got, err := repo.Load(ctx, id)
			if err != nil {
				return nil, fmt.Errorf("bulkbench: restoring model %d: %w", id, err)
			}
			loaded[i] = got
			res.RestoredBytes += got.SizeBytes()
		}
	}
	res.RestoreNs = time.Since(start).Nanoseconds()
	for i, id := range ids {
		if !loaded[i].Equal(wsByID[id]) {
			return nil, fmt.Errorf("bulkbench: model %d restored with wrong weights", id)
		}
	}
	return res, nil
}

// sparsePerturb XORs one 8-byte word every 8/frac bytes — a scattered
// update leaving long unchanged runs between changes, which is what a
// small training step does to a big tensor.
func sparsePerturb(data []byte, frac float64, seed uint64) {
	if len(data) == 0 || frac <= 0 {
		return
	}
	stride := int(8 / frac)
	if stride < 8 {
		stride = 8
	}
	for off := 0; off+8 <= len(data); off += stride {
		x := seed ^ uint64(off)*0x9e3779b97f4a7c15
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		data[off] ^= byte(x) | 1
		data[off+1] ^= byte(x >> 8)
		data[off+2] ^= byte(x >> 16)
		data[off+3] ^= byte(x >> 24)
		data[off+4] ^= byte(x >> 32)
		data[off+5] ^= byte(x >> 40)
		data[off+6] ^= byte(x >> 48)
		data[off+7] ^= byte(x >> 56)
	}
}
