// Package bulkbench defines the bulk-data-path benchmark scenarios shared
// by `go test -bench` (bulkbench_test.go) and `evostore-bench bulk`, which
// runs them via testing.Benchmark and tracks the results in
// BENCH_bulk.json. The scenarios measure the two layers the zero-copy
// path optimizes: raw TCP echo calls (flat and vectored payloads, 64 KiB
// to 64 MiB) and the end-to-end client read path (Load over a TCP
// provider, optionally striped).
package bulkbench

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/client"
	"repro/internal/graph"
	"repro/internal/kvstore"
	"repro/internal/ownermap"
	"repro/internal/proto"
	"repro/internal/provider"
	"repro/internal/rpc"
)

// Scenario is one named benchmark body.
type Scenario struct {
	Name string
	Run  func(b *testing.B)
}

// Scenarios returns the tracked bulk benchmarks, in reporting order.
func Scenarios() []Scenario {
	return []Scenario{
		{"TCPCall64K", benchTCPCall(64<<10, false)},
		{"TCPCall1M", benchTCPCall(1<<20, false)},
		{"TCPCall64M", benchTCPCall(64<<20, false)},
		{"TCPCallVec64K", benchTCPCall(64<<10, true)},
		{"TCPCallVec1M", benchTCPCall(1<<20, true)},
		{"TCPCallVec64M", benchTCPCall(64<<20, true)},
		{"ReadPath1M", benchReadPath(16, 64<<10, 0)},
		{"ReadPath64M", benchReadPath(16, 4<<20, 0)},
		{"ReadPathStriped64M", benchReadPath(16, 4<<20, 8<<20)},
	}
}

// benchTCPCall measures one echo round trip of size bulk bytes over a
// single TCP connection; vectored senders slice the payload into 16
// chunks, the shape of a consolidated multi-segment write.
func benchTCPCall(size int, vectored bool) func(b *testing.B) {
	return func(b *testing.B) {
		srv := rpc.NewServer()
		srv.Register("echo", func(_ context.Context, req rpc.Message) (rpc.Message, error) {
			return rpc.Message{Meta: req.Meta, Bulk: req.Bulk}, nil
		})
		lis, addr, err := rpc.ListenAndServeTCP("127.0.0.1:0", srv)
		if err != nil {
			b.Fatal(err)
		}
		defer lis.Close()
		c, err := rpc.DialTCP(addr)
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()

		bulk := make([]byte, size)
		for i := range bulk {
			bulk[i] = byte(i * 2654435761)
		}
		msg := rpc.Message{Bulk: bulk}
		if vectored {
			const chunks = 16
			vec := make([][]byte, 0, chunks)
			step := size / chunks
			for off := 0; off < size; off += step {
				end := off + step
				if end > size {
					end = size
				}
				vec = append(vec, bulk[off:end])
			}
			msg = rpc.Message{BulkVec: vec}
		}
		ctx := context.Background()
		b.SetBytes(int64(size))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Call(ctx, "echo", msg); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchModel builds a chain-graph model of nseg self-owned segments of
// segBytes deterministic bytes each.
func benchModel(id ownermap.ModelID, nseg, segBytes int) (*proto.ModelMeta, [][]byte) {
	gb := graph.NewBuilder(nseg)
	for i := 0; i < nseg; i++ {
		gb.AddVertex(graph.Vertex{ConfigSig: uint64(i + 1), ParamBytes: int64(segBytes)})
		if i > 0 {
			gb.AddEdge(graph.VertexID(i-1), graph.VertexID(i))
		}
	}
	g := gb.Build()
	meta := &proto.ModelMeta{
		Model: id, Seq: 1, Quality: 0.5,
		Graph:    g,
		OwnerMap: ownermap.New(id, 1, nseg),
	}
	segs := make([][]byte, nseg)
	for i := range segs {
		segs[i] = make([]byte, segBytes)
		for j := range segs[i] {
			segs[i][j] = byte(i + j)
		}
	}
	return meta, segs
}

// benchReadPath measures a full client Load (metadata + consolidated
// segment read) of an nseg×segBytes model from one TCP provider, via an
// rpc.Pool of 4 connections — the deployment shape of evostore-server.
// stripeChunk > 0 enables range-striped reads with that chunk size.
func benchReadPath(nseg, segBytes, stripeChunk int) func(b *testing.B) {
	return func(b *testing.B) {
		p := provider.New(0, kvstore.NewMemKV(8))
		srv := rpc.NewServer()
		p.Register(srv)
		lis, addr, err := rpc.ListenAndServeTCP("127.0.0.1:0", srv)
		if err != nil {
			b.Fatal(err)
		}
		defer lis.Close()
		pool := rpc.NewPool(addr, 4, rpc.DialTCP)
		defer pool.Close()
		var opts []client.Option
		if stripeChunk > 0 {
			opts = append(opts, client.WithStripedReads(stripeChunk, 4))
		}
		cli := client.New([]rpc.Conn{pool}, opts...)

		ctx := context.Background()
		meta, segs := benchModel(1, nseg, segBytes)
		if err := cli.Store(ctx, meta, segs); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(nseg) * int64(segBytes))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			data, err := cli.Load(ctx, 1)
			if err != nil {
				b.Fatal(err)
			}
			if len(data.Segments) != nseg {
				b.Fatal("short load")
			}
		}
	}
}

// Sanity guards the scenario list against duplicate names (the JSON merge
// keys on them).
func init() {
	seen := map[string]bool{}
	for _, s := range Scenarios() {
		if seen[s.Name] {
			panic(fmt.Sprintf("bulkbench: duplicate scenario %q", s.Name))
		}
		seen[s.Name] = true
	}
}
