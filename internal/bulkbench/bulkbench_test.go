package bulkbench

import "testing"

// BenchmarkBulk runs every tracked bulk scenario as a sub-benchmark:
//
//	go test -bench=Bulk -benchmem ./internal/bulkbench
//
// `make check` runs it with -benchtime=1x as a smoke test; `evostore-bench
// bulk` runs the same bodies via testing.Benchmark to refresh
// BENCH_bulk.json.
func BenchmarkBulk(b *testing.B) {
	for _, s := range Scenarios() {
		b.Run(s.Name, s.Run)
	}
}
