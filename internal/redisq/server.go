// Package redisq implements the Redis-Queries baseline of the paper
// (§5.2): a centralized metadata server that catalogs model architectures
// as key-value pairs and serves longest-common-prefix queries by having
// clients iterate over the catalog, under a global reader-writer locking
// protocol.
//
// Fidelity notes:
//   - Like Redis, the server executes commands one at a time: a single
//     mutex serializes every command, which is exactly the scalability
//     bottleneck the paper measures.
//   - Architectures are stored JSON-serialized, as in the paper's setup
//     phase, so queries pay deserialization per candidate per query.
//   - Reader/writer locks are server-side objects acquired with try/retry,
//     the standard Redis locking pattern.
package redisq

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/rpc"
	"repro/internal/wire"
)

// Command names.
const (
	CmdSet     = "redis.set"
	CmdGet     = "redis.get"
	CmdMGet    = "redis.mget"
	CmdDel     = "redis.del"
	CmdKeys    = "redis.keys"
	CmdIncrBy  = "redis.incrby"
	CmdTryLock = "redis.trylock"
	CmdUnlock  = "redis.unlock"
	CmdFlush   = "redis.flushall"
	CmdDBSize  = "redis.dbsize"
)

// rwLock is a server-side reader-writer lock manipulated via try/unlock
// commands.
type rwLock struct {
	readers int
	writer  bool
}

// Server is the single-node metadata server.
type Server struct {
	mu    sync.Mutex // one lock: Redis processes commands serially
	data  map[string][]byte
	locks map[string]*rwLock
}

// NewServer returns an empty server.
func NewServer() *Server {
	return &Server{data: make(map[string][]byte), locks: make(map[string]*rwLock)}
}

// Register installs the command handlers on srv.
func (s *Server) Register(srv *rpc.Server) {
	srv.Register(CmdSet, s.cmdSet)
	srv.Register(CmdGet, s.cmdGet)
	srv.Register(CmdMGet, s.cmdMGet)
	srv.Register(CmdDel, s.cmdDel)
	srv.Register(CmdKeys, s.cmdKeys)
	srv.Register(CmdIncrBy, s.cmdIncrBy)
	srv.Register(CmdTryLock, s.cmdTryLock)
	srv.Register(CmdUnlock, s.cmdUnlock)
	srv.Register(CmdFlush, s.cmdFlush)
	srv.Register(CmdDBSize, s.cmdDBSize)
}

func (s *Server) cmdSet(_ context.Context, req rpc.Message) (rpc.Message, error) {
	r := wire.NewReader(req.Meta)
	key := r.Str()
	if err := r.Err(); err != nil {
		return rpc.Message{}, err
	}
	s.mu.Lock()
	s.data[key] = append([]byte(nil), req.Bulk...)
	s.mu.Unlock()
	return rpc.Message{}, nil
}

func (s *Server) cmdGet(_ context.Context, req rpc.Message) (rpc.Message, error) {
	r := wire.NewReader(req.Meta)
	key := r.Str()
	if err := r.Err(); err != nil {
		return rpc.Message{}, err
	}
	s.mu.Lock()
	v, ok := s.data[key]
	s.mu.Unlock()
	w := wire.NewWriter(1)
	if ok {
		w.U8(1)
	} else {
		w.U8(0)
	}
	return rpc.Message{Meta: w.Bytes(), Bulk: v}, nil
}

func (s *Server) cmdMGet(_ context.Context, req rpc.Message) (rpc.Message, error) {
	r := wire.NewReader(req.Meta)
	n := int(r.U32())
	if r.Err() != nil || n < 0 {
		return rpc.Message{}, wire.ErrTruncated
	}
	keys := make([]string, n)
	for i := range keys {
		keys[i] = r.Str()
	}
	if err := r.Err(); err != nil {
		return rpc.Message{}, err
	}
	w := wire.NewWriter(4 + 8*n)
	w.U32(uint32(n))
	var bulk []byte
	s.mu.Lock()
	for _, k := range keys {
		v, ok := s.data[k]
		if ok {
			w.U8(1)
			w.U32(uint32(len(v)))
			bulk = append(bulk, v...)
		} else {
			w.U8(0)
			w.U32(0)
		}
	}
	s.mu.Unlock()
	return rpc.Message{Meta: w.Bytes(), Bulk: bulk}, nil
}

func (s *Server) cmdDel(_ context.Context, req rpc.Message) (rpc.Message, error) {
	r := wire.NewReader(req.Meta)
	key := r.Str()
	if err := r.Err(); err != nil {
		return rpc.Message{}, err
	}
	s.mu.Lock()
	_, existed := s.data[key]
	delete(s.data, key)
	s.mu.Unlock()
	v := uint64(0)
	if existed {
		v = 1
	}
	return rpc.Message{Meta: u64meta(v)}, nil
}

func (s *Server) cmdKeys(_ context.Context, req rpc.Message) (rpc.Message, error) {
	r := wire.NewReader(req.Meta)
	prefix := r.Str()
	if err := r.Err(); err != nil {
		return rpc.Message{}, err
	}
	s.mu.Lock()
	var keys []string
	for k := range s.data {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	s.mu.Unlock()
	sort.Strings(keys)
	w := wire.NewWriter(4 + 16*len(keys))
	w.U32(uint32(len(keys)))
	for _, k := range keys {
		w.String(k)
	}
	return rpc.Message{Meta: w.Bytes()}, nil
}

func (s *Server) cmdIncrBy(_ context.Context, req rpc.Message) (rpc.Message, error) {
	r := wire.NewReader(req.Meta)
	key := r.Str()
	delta := int64(r.U64())
	if err := r.Err(); err != nil {
		return rpc.Message{}, err
	}
	s.mu.Lock()
	cur := int64(0)
	if v, ok := s.data[key]; ok {
		fmt.Sscanf(string(v), "%d", &cur)
	}
	cur += delta
	s.data[key] = []byte(fmt.Sprintf("%d", cur))
	s.mu.Unlock()
	return rpc.Message{Meta: u64meta(uint64(cur))}, nil
}

// cmdTryLock: meta = lockName | u8 mode (0=read, 1=write). Returns u8
// acquired.
func (s *Server) cmdTryLock(_ context.Context, req rpc.Message) (rpc.Message, error) {
	r := wire.NewReader(req.Meta)
	name := r.Str()
	mode := r.U8()
	if err := r.Err(); err != nil {
		return rpc.Message{}, err
	}
	s.mu.Lock()
	l := s.locks[name]
	if l == nil {
		l = &rwLock{}
		s.locks[name] = l
	}
	acquired := false
	if mode == 0 { // read
		if !l.writer {
			l.readers++
			acquired = true
		}
	} else { // write
		if !l.writer && l.readers == 0 {
			l.writer = true
			acquired = true
		}
	}
	s.mu.Unlock()
	w := wire.NewWriter(1)
	if acquired {
		w.U8(1)
	} else {
		w.U8(0)
	}
	return rpc.Message{Meta: w.Bytes()}, nil
}

func (s *Server) cmdUnlock(_ context.Context, req rpc.Message) (rpc.Message, error) {
	r := wire.NewReader(req.Meta)
	name := r.Str()
	mode := r.U8()
	if err := r.Err(); err != nil {
		return rpc.Message{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	l := s.locks[name]
	if l == nil {
		return rpc.Message{}, fmt.Errorf("redisq: unlock of unknown lock %q", name)
	}
	if mode == 0 {
		if l.readers <= 0 {
			return rpc.Message{}, fmt.Errorf("redisq: read-unlock of %q with no readers", name)
		}
		l.readers--
	} else {
		if !l.writer {
			return rpc.Message{}, fmt.Errorf("redisq: write-unlock of %q not held", name)
		}
		l.writer = false
	}
	return rpc.Message{}, nil
}

func (s *Server) cmdFlush(_ context.Context, _ rpc.Message) (rpc.Message, error) {
	s.mu.Lock()
	s.data = make(map[string][]byte)
	s.locks = make(map[string]*rwLock)
	s.mu.Unlock()
	return rpc.Message{}, nil
}

func (s *Server) cmdDBSize(_ context.Context, _ rpc.Message) (rpc.Message, error) {
	s.mu.Lock()
	n := len(s.data)
	s.mu.Unlock()
	return rpc.Message{Meta: u64meta(uint64(n))}, nil
}

func u64meta(v uint64) []byte {
	w := wire.NewWriter(8)
	w.U64(v)
	return w.Bytes()
}
