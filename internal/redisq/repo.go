package redisq

import (
	"context"
	"fmt"

	"repro/internal/graph"
	"repro/internal/hdf5"
	"repro/internal/model"
	"repro/internal/pfs"
)

// Repo is the full HDF5+PFS baseline repository driven by Redis-Queries
// metadata: whole-model HDF5 files on a parallel file system, cataloged and
// locked through the central metadata server using exactly the protocol of
// paper §5.2:
//
//	Add:    global writer lock → try arch-specific writer lock →
//	        incr refcount → drop global lock → write weights to PFS →
//	        re-acquire global lock → publish → unlock. If the arch lock is
//	        already held the architecture is registered: just incr the
//	        refcount (no weight write).
//	Retire: global writer lock → decr refcount → if zero: take arch lock,
//	        unpublish, drop global lock, delete storage, release arch lock.
//	Query:  global reader lock → iterate published architectures → best
//	        LCP → incr winner's refcount → release reader lock. After the
//	        weights transfer the caller calls Release, which decrements
//	        the refcount (retiring storage at zero).
//
// Keys: "arch/<fp>" JSON architecture, "pub/<fp>" published marker with
// the representative file name, "ref/<fp>" reference count, "q/<fp>"
// quality.
type Repo struct {
	rc *Client
	fs *pfs.FS
}

// Lock names.
const (
	metaLock = "lock/meta"
	archLock = "lock/arch/"
)

// NewRepo combines a metadata client and a simulated PFS.
func NewRepo(rc *Client, fs *pfs.FS) *Repo {
	return &Repo{rc: rc, fs: fs}
}

func fpKey(fp uint64) string { return fmt.Sprintf("%016x", fp) }

// AddModel stores a model. Models are keyed by architecture fingerprint:
// re-adding an existing architecture only bumps its refcount (the paper's
// "already registered" path).
func (r *Repo) AddModel(ctx context.Context, f *model.Flat, ws model.WeightSet, quality float64) error {
	fp := fpKey(f.Graph.Fingerprint())

	if err := r.rc.Lock(ctx, metaLock, WriteLock); err != nil {
		return err
	}
	gotArch, err := r.rc.TryLock(ctx, archLock+fp, WriteLock)
	if err != nil {
		r.rc.Unlock(ctx, metaLock, WriteLock) //nolint:errcheck // releasing on error path
		return err
	}
	if _, err := r.rc.IncrBy(ctx, "ref/"+fp, 1); err != nil {
		r.rc.Unlock(ctx, metaLock, WriteLock) //nolint:errcheck // releasing on error path
		return err
	}
	if !gotArch {
		// Architecture already registered by another writer: done after
		// the refcount bump.
		return r.rc.Unlock(ctx, metaLock, WriteLock)
	}
	if err := r.rc.Unlock(ctx, metaLock, WriteLock); err != nil {
		return err
	}

	// Weights go to the PFS as one whole-model HDF5 file (full copy, no
	// sharing: the baseline's storage-space cost).
	fileName := "models/" + fp + ".h5"
	payload := hdf5.Encode(hdf5.SaveModel(fp, f, ws))
	if err := r.fs.Write(fileName, payload); err != nil {
		r.rc.Unlock(ctx, archLock+fp, WriteLock) //nolint:errcheck // releasing on error path
		return err
	}

	// Publish under the metadata lock.
	if err := r.rc.Lock(ctx, metaLock, WriteLock); err != nil {
		return err
	}
	archJSON, err := MarshalArch(f.Graph)
	if err == nil {
		err = r.rc.Set(ctx, "arch/"+fp, archJSON)
	}
	if err == nil {
		err = r.rc.Set(ctx, "pub/"+fp, []byte(fileName))
	}
	if err == nil {
		err = r.rc.Set(ctx, "q/"+fp, []byte(fmt.Sprintf("%g", quality)))
	}
	if uerr := r.rc.Unlock(ctx, metaLock, WriteLock); err == nil {
		err = uerr
	}
	if uerr := r.rc.Unlock(ctx, archLock+fp, WriteLock); err == nil {
		err = uerr
	}
	return err
}

// AddArchitecture publishes a model's metadata without storing weights
// (the query benchmarks populate catalogs this way, as in the paper:
// "the actual DL model tensors are not stored"). The locking protocol is
// the same as AddModel's.
func (r *Repo) AddArchitecture(ctx context.Context, f *model.Flat, quality float64) error {
	fp := fpKey(f.Graph.Fingerprint())
	if err := r.rc.Lock(ctx, metaLock, WriteLock); err != nil {
		return err
	}
	gotArch, err := r.rc.TryLock(ctx, archLock+fp, WriteLock)
	if err == nil {
		_, err = r.rc.IncrBy(ctx, "ref/"+fp, 1)
	}
	if err != nil {
		r.rc.Unlock(ctx, metaLock, WriteLock) //nolint:errcheck // releasing on error path
		return err
	}
	if !gotArch {
		return r.rc.Unlock(ctx, metaLock, WriteLock)
	}
	archJSON, err := MarshalArch(f.Graph)
	if err == nil {
		err = r.rc.Set(ctx, "arch/"+fp, archJSON)
	}
	if err == nil {
		err = r.rc.Set(ctx, "pub/"+fp, []byte("metadata-only"))
	}
	if err == nil {
		err = r.rc.Set(ctx, "q/"+fp, []byte(fmt.Sprintf("%g", quality)))
	}
	if uerr := r.rc.Unlock(ctx, metaLock, WriteLock); err == nil {
		err = uerr
	}
	if uerr := r.rc.Unlock(ctx, archLock+fp, WriteLock); err == nil {
		err = uerr
	}
	return err
}

// Retire decrements a model's refcount, removing its storage when it
// reaches zero.
func (r *Repo) Retire(ctx context.Context, g *graph.Compact) error {
	fp := fpKey(g.Fingerprint())
	if err := r.rc.Lock(ctx, metaLock, WriteLock); err != nil {
		return err
	}
	n, err := r.rc.IncrBy(ctx, "ref/"+fp, -1)
	if err != nil {
		r.rc.Unlock(ctx, metaLock, WriteLock) //nolint:errcheck // releasing on error path
		return err
	}
	if n > 0 {
		return r.rc.Unlock(ctx, metaLock, WriteLock)
	}
	// Last reference: unpublish under the metadata lock, free storage
	// outside it while holding the arch lock.
	if err := r.rc.Lock(ctx, archLock+fp, WriteLock); err != nil {
		r.rc.Unlock(ctx, metaLock, WriteLock) //nolint:errcheck // releasing on error path
		return err
	}
	fileRaw, published, err := r.rc.Get(ctx, "pub/"+fp)
	if err == nil {
		_, err = r.rc.Del(ctx, "pub/"+fp)
	}
	if err == nil {
		_, err = r.rc.Del(ctx, "arch/"+fp)
	}
	if err == nil {
		_, err = r.rc.Del(ctx, "ref/"+fp)
	}
	if uerr := r.rc.Unlock(ctx, metaLock, WriteLock); err == nil {
		err = uerr
	}
	if err == nil && published && string(fileRaw) != "metadata-only" {
		err = r.fs.Delete(string(fileRaw))
	}
	if uerr := r.rc.Unlock(ctx, archLock+fp, WriteLock); err == nil {
		err = uerr
	}
	return err
}

// QueryResult is the baseline's best-ancestor answer.
type QueryResult struct {
	Arch    *graph.Compact
	Prefix  []graph.VertexID
	File    string
	ArchFP  uint64
	Quality float64
}

// QueryLCP finds the best transfer ancestor by iterating the whole catalog
// through the metadata server under a reader lock, deserializing each
// candidate from JSON and computing the LCP client-side. The winner's
// refcount is incremented before the lock is released, exactly as in §5.2.
func (r *Repo) QueryLCP(ctx context.Context, g *graph.Compact) (*QueryResult, bool, error) {
	if err := r.rc.Lock(ctx, metaLock, ReadLock); err != nil {
		return nil, false, err
	}
	defer r.rc.Unlock(ctx, metaLock, ReadLock) //nolint:errcheck // read unlock on all paths

	keys, err := r.rc.Keys(ctx, "pub/")
	if err != nil {
		return nil, false, err
	}
	scanner := graph.NewLCPScanner(g)
	var best *QueryResult
	bestSize := 0
	for _, pubKey := range keys {
		fp := pubKey[len("pub/"):]
		archRaw, ok, err := r.rc.Get(ctx, "arch/"+fp)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			continue
		}
		cand, err := UnmarshalArch(archRaw)
		if err != nil {
			return nil, false, err
		}
		size := scanner.SizeAgainst(cand)
		if size == 0 {
			continue
		}
		var q float64
		if qRaw, ok, _ := r.rc.Get(ctx, "q/"+fp); ok {
			fmt.Sscanf(string(qRaw), "%g", &q)
		}
		if size > bestSize || (size == bestSize && best != nil && q > best.Quality) {
			fileRaw, _, err := r.rc.Get(ctx, pubKey)
			if err != nil {
				return nil, false, err
			}
			var parsedFP uint64
			fmt.Sscanf(fp, "%x", &parsedFP)
			best = &QueryResult{
				Arch:    cand,
				Prefix:  append([]graph.VertexID(nil), scanner.Against(cand)...),
				File:    string(fileRaw),
				ArchFP:  parsedFP,
				Quality: q,
			}
			bestSize = size
		}
	}
	if best == nil {
		return nil, false, nil
	}
	// Pin the winner while its weights transfer.
	if _, err := r.rc.IncrBy(ctx, "ref/"+fpKey(best.ArchFP), 1); err != nil {
		return nil, false, err
	}
	return best, true, nil
}

// Release drops the pin QueryLCP took on a query winner, retiring its
// storage if the count reaches zero.
func (r *Repo) Release(ctx context.Context, res *QueryResult) error {
	return r.Retire(ctx, res.Arch)
}

// LoadWeights reads the winner's HDF5 file from the PFS and extracts the
// weights for model f (which must share the stored architecture for the
// prefix vertices it needs). The baseline always reads the whole file.
func (r *Repo) LoadWeights(ctx context.Context, res *QueryResult, f *model.Flat) (model.WeightSet, error) {
	payload, err := r.fs.Read(res.File)
	if err != nil {
		return nil, err
	}
	root, err := hdf5.Decode(payload)
	if err != nil {
		return nil, err
	}
	stored, err := hdf5.StoredArchitecture(root)
	if err != nil {
		return nil, err
	}
	// Extract per-leaf weights by name for the prefix vertices only; the
	// whole file was already read and parsed (the baseline's partial-read
	// penalty), extraction itself is cheap.
	weights, ok := root.Groups["model_weights"]
	if !ok {
		return nil, fmt.Errorf("redisq: container missing model_weights")
	}
	ws := make(model.WeightSet, len(f.Leaves))
	for _, v := range res.Prefix {
		leaf := &f.Leaves[v]
		if len(leaf.Specs) == 0 {
			continue
		}
		lg, ok := weights.Groups[stored.Vertices[v].Name]
		if !ok {
			return nil, fmt.Errorf("redisq: stored file missing layer %q", stored.Vertices[v].Name)
		}
		for _, spec := range leaf.Specs {
			ds, ok := lg.Datasets[spec.Name]
			if !ok {
				return nil, fmt.Errorf("redisq: layer %q missing dataset %q", stored.Vertices[v].Name, spec.Name)
			}
			t := ds.Tensor()
			t.Name = leaf.Name + "/" + spec.Name
			ws[v] = append(ws[v], t)
		}
	}
	return ws, nil
}

// StorageBytes reports the PFS payload (Figure 10 accounting).
func (r *Repo) StorageBytes() int64 { return r.fs.TotalBytes() }

// CatalogSize returns the number of published architectures.
func (r *Repo) CatalogSize(ctx context.Context) (int, error) {
	keys, err := r.rc.Keys(ctx, "pub/")
	return len(keys), err
}
