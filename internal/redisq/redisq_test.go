package redisq

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/pfs"
	"repro/internal/rpc"
)

func newClient(t testing.TB) *Client {
	t.Helper()
	net := rpc.NewInprocNet()
	srv := rpc.NewServer()
	NewServer().Register(srv)
	if err := net.Listen("redis", srv); err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("redis")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return NewClient(conn)
}

func TestKVCommands(t *testing.T) {
	c := newClient(t)
	ctx := context.Background()

	if _, ok, err := c.Get(ctx, "missing"); ok || err != nil {
		t.Fatalf("Get missing: ok=%v err=%v", ok, err)
	}
	if err := c.Set(ctx, "a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := c.Get(ctx, "a")
	if err != nil || !ok || string(v) != "1" {
		t.Fatalf("Get a = %q %v %v", v, ok, err)
	}
	c.Set(ctx, "arch/x", []byte("gx"))
	c.Set(ctx, "arch/y", []byte("gy"))
	keys, err := c.Keys(ctx, "arch/")
	if err != nil || len(keys) != 2 || keys[0] != "arch/x" {
		t.Fatalf("Keys = %v %v", keys, err)
	}
	existed, err := c.Del(ctx, "a")
	if err != nil || !existed {
		t.Fatalf("Del a: %v %v", existed, err)
	}
	if existed, _ := c.Del(ctx, "a"); existed {
		t.Error("Del of missing reported existed")
	}
	n, err := c.DBSize(ctx)
	if err != nil || n != 2 {
		t.Fatalf("DBSize = %d %v", n, err)
	}
	if err := c.FlushAll(ctx); err != nil {
		t.Fatal(err)
	}
	if n, _ := c.DBSize(ctx); n != 0 {
		t.Errorf("DBSize after flush = %d", n)
	}
}

func TestMGet(t *testing.T) {
	c := newClient(t)
	ctx := context.Background()
	c.Set(ctx, "k1", []byte("v1"))
	c.Set(ctx, "k3", []byte("v3"))
	got, err := c.MGet(ctx, []string{"k1", "k2", "k3"})
	if err != nil {
		t.Fatal(err)
	}
	if string(got[0]) != "v1" || got[1] != nil || string(got[2]) != "v3" {
		t.Errorf("MGet = %q", got)
	}
}

func TestIncrBy(t *testing.T) {
	c := newClient(t)
	ctx := context.Background()
	if n, _ := c.IncrBy(ctx, "ref", 1); n != 1 {
		t.Errorf("first incr = %d", n)
	}
	if n, _ := c.IncrBy(ctx, "ref", 5); n != 6 {
		t.Errorf("second incr = %d", n)
	}
	if n, _ := c.IncrBy(ctx, "ref", -6); n != 0 {
		t.Errorf("decr = %d", n)
	}
}

func TestRWLockSemantics(t *testing.T) {
	c := newClient(t)
	ctx := context.Background()

	// Multiple readers coexist.
	for i := 0; i < 3; i++ {
		if ok, _ := c.TryLock(ctx, "L", ReadLock); !ok {
			t.Fatalf("reader %d rejected", i)
		}
	}
	// Writer blocked while readers hold.
	if ok, _ := c.TryLock(ctx, "L", WriteLock); ok {
		t.Fatal("writer acquired with readers held")
	}
	for i := 0; i < 3; i++ {
		if err := c.Unlock(ctx, "L", ReadLock); err != nil {
			t.Fatal(err)
		}
	}
	// Now the writer gets in, and excludes readers and writers.
	if ok, _ := c.TryLock(ctx, "L", WriteLock); !ok {
		t.Fatal("writer rejected on free lock")
	}
	if ok, _ := c.TryLock(ctx, "L", ReadLock); ok {
		t.Fatal("reader acquired during write")
	}
	if ok, _ := c.TryLock(ctx, "L", WriteLock); ok {
		t.Fatal("second writer acquired")
	}
	if err := c.Unlock(ctx, "L", WriteLock); err != nil {
		t.Fatal(err)
	}

	// Unbalanced unlocks error.
	if err := c.Unlock(ctx, "L", WriteLock); err == nil {
		t.Error("write-unlock of free lock succeeded")
	}
	if err := c.Unlock(ctx, "L", ReadLock); err == nil {
		t.Error("read-unlock with no readers succeeded")
	}
	if err := c.Unlock(ctx, "never", ReadLock); err == nil {
		t.Error("unlock of unknown lock succeeded")
	}
}

func TestBlockingLock(t *testing.T) {
	c := newClient(t)
	c.RetryInterval = 50 * time.Microsecond
	ctx := context.Background()
	if err := c.Lock(ctx, "L", WriteLock); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- c.Lock(ctx, "L", WriteLock)
	}()
	time.Sleep(2 * time.Millisecond)
	select {
	case <-done:
		t.Fatal("second writer acquired while held")
	default:
	}
	c.Unlock(ctx, "L", WriteLock)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// Context cancellation unblocks the spin.
	cctx, cancel := context.WithTimeout(ctx, 3*time.Millisecond)
	defer cancel()
	if err := c.Lock(cctx, "L", WriteLock); err == nil {
		t.Error("Lock ignored context deadline")
	}
	c.Unlock(ctx, "L", WriteLock)
}

func TestJSONArchRoundtrip(t *testing.T) {
	b := graph.NewBuilder(4)
	for i := 0; i < 4; i++ {
		b.AddVertex(graph.Vertex{ConfigSig: uint64(i) + 10, Name: fmt.Sprintf("l%d", i), ParamBytes: int64(i * 100)})
	}
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(1, 3)
	b.AddEdge(2, 3)
	g := b.Build()

	data, err := MarshalArch(g)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalArch(data)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(back) {
		t.Error("JSON roundtrip lost architecture")
	}
	if back.Vertices[2].ParamBytes != 200 {
		t.Error("param bytes lost")
	}
	if _, err := UnmarshalArch([]byte(`{"edges": [[0, 9]]}`)); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if _, err := UnmarshalArch([]byte(`not json`)); err == nil {
		t.Error("bad JSON accepted")
	}
}

func fastFS() *pfs.FS {
	return pfs.New(pfs.Options{OSTs: 4, OSTBandwidth: 1 << 30, StripeCount: 2, MDTLatency: 10 * time.Microsecond})
}

func buildMLP(t testing.TB, last int) (*model.Flat, model.WeightSet) {
	t.Helper()
	f, err := model.Flatten(model.Sequential("m", 8,
		model.Dense{In: 8, Out: 8, Activation: "relu"},
		model.Dense{In: 8, Out: 8, Activation: "relu"},
		model.Dense{In: 8, Out: last},
	))
	if err != nil {
		t.Fatal(err)
	}
	return f, model.Materialize(f, uint64(last))
}

func TestRepoAddQueryLoad(t *testing.T) {
	c := newClient(t)
	repo := NewRepo(c, fastFS())
	ctx := context.Background()

	f1, ws1 := buildMLP(t, 4)
	if err := repo.AddModel(ctx, f1, ws1, 0.8); err != nil {
		t.Fatal(err)
	}
	if n, _ := repo.CatalogSize(ctx); n != 1 {
		t.Fatalf("catalog = %d", n)
	}

	// A related candidate finds the stored model with a 3-vertex prefix
	// (input + first two dense layers).
	f2, _ := buildMLP(t, 6)
	res, found, err := repo.QueryLCP(ctx, f2.Graph)
	if err != nil || !found {
		t.Fatalf("query: %v found=%v", err, found)
	}
	if len(res.Prefix) != 3 {
		t.Errorf("prefix = %v", res.Prefix)
	}
	got, err := repo.LoadWeights(ctx, res, f2)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Prefix {
		if !got.VertexEqual(ws1, v) {
			t.Errorf("vertex %d weights differ from stored", v)
		}
	}
	if err := repo.Release(ctx, res); err != nil {
		t.Fatal(err)
	}
	// Release dropped the pin but the original reference remains.
	if n, _ := repo.CatalogSize(ctx); n != 1 {
		t.Errorf("catalog after release = %d", n)
	}
}

func TestRepoQueryEmpty(t *testing.T) {
	c := newClient(t)
	repo := NewRepo(c, fastFS())
	f, _ := buildMLP(t, 4)
	_, found, err := repo.QueryLCP(context.Background(), f.Graph)
	if err != nil || found {
		t.Errorf("empty query: %v found=%v", err, found)
	}
}

func TestRepoDuplicateArchOnlyStoresOnce(t *testing.T) {
	c := newClient(t)
	fs := fastFS()
	repo := NewRepo(c, fs)
	ctx := context.Background()
	f, ws := buildMLP(t, 4)
	if err := repo.AddModel(ctx, f, ws, 0.5); err != nil {
		t.Fatal(err)
	}
	bytesAfterFirst := repo.StorageBytes()
	if err := repo.AddModel(ctx, f, ws, 0.6); err != nil {
		t.Fatal(err)
	}
	if repo.StorageBytes() != bytesAfterFirst {
		t.Error("duplicate architecture stored weights twice")
	}
	// Two references: one retire keeps it, the second removes it.
	if err := repo.Retire(ctx, f.Graph); err != nil {
		t.Fatal(err)
	}
	if n, _ := repo.CatalogSize(ctx); n != 1 {
		t.Errorf("catalog after first retire = %d", n)
	}
	if err := repo.Retire(ctx, f.Graph); err != nil {
		t.Fatal(err)
	}
	if n, _ := repo.CatalogSize(ctx); n != 0 {
		t.Errorf("catalog after second retire = %d", n)
	}
	if repo.StorageBytes() != 0 {
		t.Errorf("storage not freed: %d bytes", repo.StorageBytes())
	}
}

func TestRepoConcurrentAddsAndQueries(t *testing.T) {
	c := newClient(t)
	net := rpc.NewInprocNet()
	srv := rpc.NewServer()
	shared := NewServer()
	shared.Register(srv)
	net.Listen("redis", srv)
	fs := fastFS()
	_ = c

	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			conn, err := net.Dial("redis")
			if err != nil {
				errCh <- err
				return
			}
			defer conn.Close()
			cli := NewClient(conn)
			cli.RetryInterval = 20 * time.Microsecond
			repo := NewRepo(cli, fs)
			ctx := context.Background()
			for i := 0; i < 5; i++ {
				f, ws := buildMLP(t, 4+(w*5+i)%10)
				if err := repo.AddModel(ctx, f, ws, 0.5); err != nil {
					errCh <- fmt.Errorf("w%d add: %w", w, err)
					return
				}
				if _, _, err := repo.QueryLCP(ctx, f.Graph); err != nil {
					errCh <- fmt.Errorf("w%d query: %w", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

func TestAddArchitectureMetadataOnly(t *testing.T) {
	c := newClient(t)
	fs := fastFS()
	repo := NewRepo(c, fs)
	ctx := context.Background()
	f, _ := buildMLP(t, 4)
	if err := repo.AddArchitecture(ctx, f, 0.7); err != nil {
		t.Fatal(err)
	}
	if n, _ := repo.CatalogSize(ctx); n != 1 {
		t.Fatalf("catalog = %d", n)
	}
	if fs.TotalBytes() != 0 {
		t.Errorf("metadata-only add wrote %d bytes to the PFS", fs.TotalBytes())
	}
	// Queries find it and retirement removes it without touching the PFS.
	res, found, err := repo.QueryLCP(ctx, f.Graph)
	if err != nil || !found {
		t.Fatalf("query: %v found=%v", err, found)
	}
	if err := repo.Release(ctx, res); err != nil {
		t.Fatal(err)
	}
	if err := repo.Retire(ctx, f.Graph); err != nil {
		t.Fatal(err)
	}
	if n, _ := repo.CatalogSize(ctx); n != 0 {
		t.Errorf("catalog after retire = %d", n)
	}
	// Duplicate architecture adds only bump the refcount.
	if err := repo.AddArchitecture(ctx, f, 0.7); err != nil {
		t.Fatal(err)
	}
	if err := repo.AddArchitecture(ctx, f, 0.8); err != nil {
		t.Fatal(err)
	}
	if err := repo.Retire(ctx, f.Graph); err != nil {
		t.Fatal(err)
	}
	if n, _ := repo.CatalogSize(ctx); n != 1 {
		t.Errorf("catalog after first of two retires = %d", n)
	}
}
