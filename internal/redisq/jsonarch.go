package redisq

import (
	"encoding/json"
	"fmt"

	"repro/internal/graph"
)

// jsonGraph is the JSON representation used to populate the metadata
// catalog, matching the paper's setup ("architectures are serialized in
// JSON format and used to populate the metadata of ... Redis-Queries").
// Queries pay this deserialization for every candidate they inspect.
type jsonGraph struct {
	Vertices []jsonVertex `json:"vertices"`
	Edges    [][2]uint32  `json:"edges"`
}

type jsonVertex struct {
	Sig        uint64 `json:"sig"`
	Name       string `json:"name,omitempty"`
	ParamBytes int64  `json:"param_bytes"`
}

// MarshalArch serializes a compact graph to JSON.
func MarshalArch(g *graph.Compact) ([]byte, error) {
	jg := jsonGraph{Vertices: make([]jsonVertex, g.NumVertices())}
	for v := range g.Vertices {
		jg.Vertices[v] = jsonVertex{
			Sig:        g.Vertices[v].ConfigSig,
			Name:       g.Vertices[v].Name,
			ParamBytes: g.Vertices[v].ParamBytes,
		}
		for _, w := range g.Out[v] {
			jg.Edges = append(jg.Edges, [2]uint32{uint32(v), uint32(w)})
		}
	}
	return json.Marshal(jg)
}

// UnmarshalArch parses a JSON architecture back into a compact graph.
func UnmarshalArch(data []byte) (*graph.Compact, error) {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return nil, fmt.Errorf("redisq: parsing architecture JSON: %w", err)
	}
	b := graph.NewBuilder(len(jg.Vertices))
	for _, v := range jg.Vertices {
		b.AddVertex(graph.Vertex{ConfigSig: v.Sig, Name: v.Name, ParamBytes: v.ParamBytes})
	}
	for _, e := range jg.Edges {
		if int(e[0]) >= len(jg.Vertices) || int(e[1]) >= len(jg.Vertices) {
			return nil, fmt.Errorf("redisq: edge (%d,%d) out of range", e[0], e[1])
		}
		b.AddEdge(graph.VertexID(e[0]), graph.VertexID(e[1]))
	}
	return b.Build(), nil
}
