package redisq

import (
	"context"
	"fmt"
	"time"

	"repro/internal/rpc"
	"repro/internal/wire"
)

// Client wraps a connection to the metadata server with typed commands.
type Client struct {
	conn rpc.Conn
	// RetryInterval is the poll interval while spinning on a lock.
	RetryInterval time.Duration
}

// NewClient wraps conn.
func NewClient(conn rpc.Conn) *Client {
	return &Client{conn: conn, RetryInterval: 200 * time.Microsecond}
}

func keyMeta(key string) []byte {
	w := wire.NewWriter(4 + len(key))
	w.String(key)
	return w.Bytes()
}

// Set stores value under key.
func (c *Client) Set(ctx context.Context, key string, value []byte) error {
	_, err := c.conn.Call(ctx, CmdSet, rpc.Message{Meta: keyMeta(key), Bulk: value})
	return err
}

// Get fetches key; ok is false when absent.
func (c *Client) Get(ctx context.Context, key string) ([]byte, bool, error) {
	resp, err := c.conn.Call(ctx, CmdGet, rpc.Message{Meta: keyMeta(key)})
	if err != nil {
		return nil, false, err
	}
	r := wire.NewReader(resp.Meta)
	found := r.U8() == 1
	if err := r.Err(); err != nil {
		return nil, false, err
	}
	return resp.Bulk, found, nil
}

// MGet fetches many keys in one round trip; missing keys yield nil slots.
func (c *Client) MGet(ctx context.Context, keys []string) ([][]byte, error) {
	w := wire.NewWriter(4 + 16*len(keys))
	w.U32(uint32(len(keys)))
	for _, k := range keys {
		w.String(k)
	}
	resp, err := c.conn.Call(ctx, CmdMGet, rpc.Message{Meta: w.Bytes()})
	if err != nil {
		return nil, err
	}
	r := wire.NewReader(resp.Meta)
	n := int(r.U32())
	if n != len(keys) {
		return nil, fmt.Errorf("redisq: mget returned %d slots for %d keys", n, len(keys))
	}
	out := make([][]byte, n)
	off := 0
	for i := 0; i < n; i++ {
		found := r.U8() == 1
		l := int(r.U32())
		if r.Err() != nil {
			return nil, r.Err()
		}
		if found {
			if off+l > len(resp.Bulk) {
				return nil, fmt.Errorf("redisq: mget bulk overrun")
			}
			out[i] = resp.Bulk[off : off+l]
			off += l
		}
	}
	return out, nil
}

// Del removes key, reporting whether it existed.
func (c *Client) Del(ctx context.Context, key string) (bool, error) {
	resp, err := c.conn.Call(ctx, CmdDel, rpc.Message{Meta: keyMeta(key)})
	if err != nil {
		return false, err
	}
	r := wire.NewReader(resp.Meta)
	return r.U64() == 1, r.Err()
}

// Keys lists keys with the given prefix, sorted.
func (c *Client) Keys(ctx context.Context, prefix string) ([]string, error) {
	resp, err := c.conn.Call(ctx, CmdKeys, rpc.Message{Meta: keyMeta(prefix)})
	if err != nil {
		return nil, err
	}
	r := wire.NewReader(resp.Meta)
	n := int(r.U32())
	if r.Err() != nil {
		return nil, r.Err()
	}
	keys := make([]string, n)
	for i := range keys {
		keys[i] = r.Str()
	}
	return keys, r.Err()
}

// IncrBy adds delta to the integer at key, returning the new value.
func (c *Client) IncrBy(ctx context.Context, key string, delta int64) (int64, error) {
	w := wire.NewWriter(16 + len(key))
	w.String(key)
	w.U64(uint64(delta))
	resp, err := c.conn.Call(ctx, CmdIncrBy, rpc.Message{Meta: w.Bytes()})
	if err != nil {
		return 0, err
	}
	r := wire.NewReader(resp.Meta)
	return int64(r.U64()), r.Err()
}

// DBSize returns the number of stored keys.
func (c *Client) DBSize(ctx context.Context) (int, error) {
	resp, err := c.conn.Call(ctx, CmdDBSize, rpc.Message{})
	if err != nil {
		return 0, err
	}
	r := wire.NewReader(resp.Meta)
	return int(r.U64()), r.Err()
}

// FlushAll clears the server.
func (c *Client) FlushAll(ctx context.Context) error {
	_, err := c.conn.Call(ctx, CmdFlush, rpc.Message{})
	return err
}

// --- locks ------------------------------------------------------------------

// LockMode selects reader or writer acquisition.
type LockMode uint8

// Lock modes.
const (
	ReadLock  LockMode = 0
	WriteLock LockMode = 1
)

// TryLock attempts one acquisition without blocking.
func (c *Client) TryLock(ctx context.Context, name string, mode LockMode) (bool, error) {
	w := wire.NewWriter(8 + len(name))
	w.String(name)
	w.U8(uint8(mode))
	resp, err := c.conn.Call(ctx, CmdTryLock, rpc.Message{Meta: w.Bytes()})
	if err != nil {
		return false, err
	}
	r := wire.NewReader(resp.Meta)
	return r.U8() == 1, r.Err()
}

// Lock spins (with the client's retry interval) until the lock is acquired
// or ctx expires. Spinning against a remote server is the standard Redis
// lock pattern and a real cost of the baseline under contention.
func (c *Client) Lock(ctx context.Context, name string, mode LockMode) error {
	for {
		ok, err := c.TryLock(ctx, name, mode)
		if err != nil {
			return err
		}
		if ok {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(c.RetryInterval):
		}
	}
}

// Unlock releases a held lock.
func (c *Client) Unlock(ctx context.Context, name string, mode LockMode) error {
	w := wire.NewWriter(8 + len(name))
	w.String(name)
	w.U8(uint8(mode))
	_, err := c.conn.Call(ctx, CmdUnlock, rpc.Message{Meta: w.Bytes()})
	return err
}
