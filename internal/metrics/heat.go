package metrics

// Per-model heat: exponentially-weighted moving-average byte rates for
// reads and writes, the signal the heat-driven rebalancing controller
// (internal/heat) steers placement by. Counters answer "how much ever
// happened"; a Rate answers "how much is happening right now", which is
// what distinguishes a hot lineage burst from a model that was popular
// last week.

import (
	"math"
	"sort"
	"sync"
	"time"
)

// DefaultHeatHalfLife is the decay half-life of a heat gauge: after one
// half-life of silence a model's measured rate halves. Short enough to
// track a burst-download of one lineage (the dominant model-hub access
// shape), long enough that one coalesced read does not read as heat.
const DefaultHeatHalfLife = 30 * time.Second

// Rate is an EWMA rate gauge: Observe(n) events (or bytes) feed it, Per
// second reads the current exponentially-decayed rate. Not safe for
// concurrent use on its own; HeatMap wraps it with a lock.
type Rate struct {
	halfLife time.Duration
	acc      float64   // decayed accumulated quantity
	last     time.Time // time of the last decay
}

// NewRate builds a rate gauge with the given half-life (<= 0 selects
// DefaultHeatHalfLife).
func NewRate(halfLife time.Duration) *Rate {
	if halfLife <= 0 {
		halfLife = DefaultHeatHalfLife
	}
	return &Rate{halfLife: halfLife}
}

// decay ages the accumulator to now.
func (g *Rate) decay(now time.Time) {
	if !g.last.IsZero() {
		if dt := now.Sub(g.last); dt > 0 {
			g.acc *= math.Exp2(-float64(dt) / float64(g.halfLife))
		}
	}
	g.last = now
}

// Observe feeds n units (bytes, ops) into the gauge at time now.
func (g *Rate) Observe(now time.Time, n float64) {
	if n <= 0 {
		return
	}
	g.decay(now)
	g.acc += n
}

// Per returns the decayed rate in units per second as of now. The EWMA
// accumulator holds roughly one mean lifetime (halfLife/ln 2) of traffic,
// so the rate is acc divided by that span.
func (g *Rate) Per(now time.Time) float64 {
	g.decay(now)
	return g.acc / (float64(g.halfLife) / math.Ln2 / float64(time.Second))
}

// HeatSample is one model's current heat as seen by one observer.
type HeatSample struct {
	ID       uint64  // model ID (ownermap.ModelID, kept untyped to avoid the import)
	ReadBps  float64 // read payload bytes per second
	WriteBps float64 // write payload bytes per second
}

// heatFloorBps is the rate below which a model's gauges are pruned: its
// heat has decayed to noise and keeping the entry would only grow the map.
const heatFloorBps = 1.0 / 1024

// maxHeatModels bounds the per-provider heat map. When full, Observe
// prunes decayed entries; if everything is genuinely warm, new models go
// untracked until something cools — the controller only acts on the
// hottest and coldest tails, so dropping the middle is safe.
const maxHeatModels = 65536

// HeatMap tracks per-model read/write heat. Safe for concurrent use. The
// zero value is not ready; use NewHeatMap.
type HeatMap struct {
	halfLife time.Duration
	now      func() time.Time

	mu     sync.Mutex
	models map[uint64]*modelHeat
}

type modelHeat struct {
	read, write Rate
}

// NewHeatMap builds a heat map with the given gauge half-life (<= 0
// selects DefaultHeatHalfLife).
func NewHeatMap(halfLife time.Duration) *HeatMap {
	if halfLife <= 0 {
		halfLife = DefaultHeatHalfLife
	}
	return &HeatMap{halfLife: halfLife, now: time.Now, models: make(map[uint64]*modelHeat)}
}

// SetClock injects a time source (tests).
func (h *HeatMap) SetClock(now func() time.Time) {
	if h != nil && now != nil {
		h.now = now
	}
}

// ObserveRead feeds n read payload bytes of model id. nil-safe.
func (h *HeatMap) ObserveRead(id uint64, n int) { h.observe(id, n, false) }

// ObserveWrite feeds n written payload bytes of model id. nil-safe.
func (h *HeatMap) ObserveWrite(id uint64, n int) { h.observe(id, n, true) }

func (h *HeatMap) observe(id uint64, n int, write bool) {
	if h == nil || n <= 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	now := h.now()
	m := h.models[id]
	if m == nil {
		if len(h.models) >= maxHeatModels {
			h.pruneLocked(now)
			if len(h.models) >= maxHeatModels {
				return
			}
		}
		m = &modelHeat{read: Rate{halfLife: h.halfLife}, write: Rate{halfLife: h.halfLife}}
		h.models[id] = m
	}
	if write {
		m.write.Observe(now, float64(n))
	} else {
		m.read.Observe(now, float64(n))
	}
}

// pruneLocked drops models whose heat has decayed below the floor.
func (h *HeatMap) pruneLocked(now time.Time) {
	for id, m := range h.models {
		if m.read.Per(now)+m.write.Per(now) < heatFloorBps {
			delete(h.models, id)
		}
	}
}

// Snapshot returns the current per-model heat, sorted by ID, pruning
// entries that have decayed to noise. nil-safe (returns nil).
func (h *HeatMap) Snapshot() []HeatSample {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	now := h.now()
	h.pruneLocked(now)
	out := make([]HeatSample, 0, len(h.models))
	for id, m := range h.models {
		out = append(out, HeatSample{ID: id, ReadBps: m.read.Per(now), WriteBps: m.write.Per(now)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
