package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Errorf("Summary = %+v", s)
	}
	if s.StdDev < 1.41 || s.StdDev > 1.42 {
		t.Errorf("StdDev = %v", s.StdDev)
	}
	empty := Summarize(nil)
	if empty.N != 0 || empty.Mean != 0 {
		t.Errorf("empty = %+v", empty)
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	if Percentile(sorted, 0) != 10 || Percentile(sorted, 1) != 40 {
		t.Error("extremes wrong")
	}
	if got := Percentile(sorted, 0.5); got != 25 {
		t.Errorf("P50 = %v, want 25", got)
	}
	if Percentile(nil, 0.5) != 0 {
		t.Error("empty percentile nonzero")
	}
}

// TestPercentileEdgeCases pins the defined-zero-value contract: empty and
// single-element inputs, out-of-range and NaN quantiles must all return a
// defined value — never index out of range.
func TestPercentileEdgeCases(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name   string
		sorted []float64
		p      float64
		want   float64
	}{
		{"empty p=0", nil, 0, 0},
		{"empty p=0.5", nil, 0.5, 0},
		{"empty p=1", nil, 1, 0},
		{"empty p=NaN", nil, nan, 0},
		{"single p=0", []float64{42}, 0, 42},
		{"single p=0.5", []float64{42}, 0.5, 42},
		{"single p=0.99", []float64{42}, 0.99, 42},
		{"single p=1", []float64{42}, 1, 42},
		{"single p<0", []float64{42}, -1, 42},
		{"single p>1", []float64{42}, 2, 42},
		{"single p=NaN", []float64{42}, nan, 0},
		{"pair p=NaN", []float64{1, 2}, nan, 0},
		{"pair p<0 clamps low", []float64{1, 2}, -0.5, 1},
		{"pair p>1 clamps high", []float64{1, 2}, 1.5, 2},
	}
	for _, c := range cases {
		if got := Percentile(c.sorted, c.p); got != c.want {
			t.Errorf("%s: Percentile(%v, %v) = %v, want %v", c.name, c.sorted, c.p, got, c.want)
		}
	}
}

// TestSummarizeEdgeCases pins Summarize on degenerate inputs: the empty
// summary is all zeros, a single element is its own every-statistic.
func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s != (Summary{}) {
		t.Errorf("Summarize(nil) = %+v, want zero Summary", s)
	}
	if s := Summarize([]float64{}); s != (Summary{}) {
		t.Errorf("Summarize([]) = %+v, want zero Summary", s)
	}
	s := Summarize([]float64{7})
	want := Summary{N: 1, Mean: 7, StdDev: 0, Min: 7, Max: 7, P50: 7, P95: 7}
	if s != want {
		t.Errorf("Summarize([7]) = %+v, want %+v", s, want)
	}
}

func TestGBps(t *testing.T) {
	if got := GBps(2e9, 2); got != 1 {
		t.Errorf("GBps = %v", got)
	}
	if GBps(100, 0) != 0 {
		t.Error("zero-duration GBps should be 0")
	}
}

func TestHumanBytes(t *testing.T) {
	cases := map[int64]string{
		512:     "512 B",
		2 << 10: "2.00 KiB",
		3 << 20: "3.00 MiB",
		4 << 30: "4.00 GiB",
		5 << 40: "5.00 TiB",
	}
	for n, want := range cases {
		if got := HumanBytes(n); got != want {
			t.Errorf("HumanBytes(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestTableRender(t *testing.T) {
	tbl := NewTable("GPUs", "Bandwidth", "Label")
	tbl.Add(8, 123.456789, "EvoStore 25%")
	tbl.Add(256, 7.0, "HDF5+PFS")
	var sb strings.Builder
	tbl.Render(&sb)
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("rendered %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "GPUs") || !strings.Contains(lines[0], "Bandwidth") {
		t.Errorf("header wrong: %q", lines[0])
	}
	if !strings.Contains(lines[2], "123.5") {
		t.Errorf("float formatting wrong: %q", lines[2])
	}
	if !strings.Contains(lines[3], "HDF5+PFS") {
		t.Errorf("row missing: %q", lines[3])
	}
}
