package metrics

import (
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing event counter, safe for concurrent
// use. Counters are cheap enough for hot paths: Inc is one atomic add.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Registry is a set of named counters. The resilience layer counts
// retries, circuit-breaker state transitions and injected faults here so
// benchmarks and operators can see what the middleware did to a run.
// Counter pointers are stable: callers may cache the result of Counter and
// increment it lock-free afterwards.
type Registry struct {
	mu sync.RWMutex
	m  map[string]*Counter
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{m: make(map[string]*Counter)} }

// Default is the process-wide registry used when a component is not given
// an explicit one.
var Default = NewRegistry()

// Counter returns the counter registered under name, creating it at zero
// on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.m[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.m[name]; c == nil {
		c = &Counter{}
		r.m[name] = c
	}
	return c
}

// Snapshot returns the current value of every registered counter.
func (r *Registry) Snapshot() map[string]uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]uint64, len(r.m))
	for name, c := range r.m {
		out[name] = c.Load()
	}
	return out
}

// Render writes the registered counters as an aligned table, sorted by
// name, omitting zero counters so quiet subsystems don't clutter reports.
func (r *Registry) Render(w io.Writer) {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for name, v := range snap {
		if v != 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	tbl := NewTable("Counter", "Value")
	for _, name := range names {
		tbl.Add(name, snap[name])
	}
	tbl.Render(w)
}
