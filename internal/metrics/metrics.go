// Package metrics provides the small statistics and table-rendering
// helpers shared by the benchmark harnesses: summaries, percentiles,
// bandwidth conversions and aligned text tables matching the rows the
// paper's figures report.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Summary holds basic distribution statistics.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	P50    float64
	P95    float64
}

// Summarize computes a Summary of xs (empty input → zero Summary).
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	s.P50 = Percentile(sorted, 0.50)
	s.P95 = Percentile(sorted, 0.95)
	for _, x := range xs {
		s.Mean += x
	}
	s.Mean /= float64(len(xs))
	for _, x := range xs {
		d := x - s.Mean
		s.StdDev += d * d
	}
	s.StdDev = math.Sqrt(s.StdDev / float64(len(xs)))
	return s
}

// Percentile returns the p-quantile (0≤p≤1) of an ascending-sorted slice
// using nearest-rank interpolation. Defined for every input: empty slices
// and NaN quantiles return 0, out-of-range quantiles clamp to the ends —
// a percentile over a latency sample must never be the thing that panics.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 || math.IsNaN(p) {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// GBps converts (bytes, seconds) to gigabytes per second.
func GBps(bytes float64, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return bytes / seconds / 1e9
}

// HumanBytes renders a byte count with a binary-prefix unit.
func HumanBytes(n int64) string {
	switch {
	case n >= 1<<40:
		return fmt.Sprintf("%.2f TiB", float64(n)/(1<<40))
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// Table renders aligned columns with a header row.
type Table struct {
	Header []string
	Rows   [][]string
}

// NewTable creates a table with the given header.
func NewTable(header ...string) *Table { return &Table{Header: header} }

// Add appends a row; values are stringified with %v except float64, which
// uses %.4g.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, c)
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	fmt.Fprintln(w, line(t.Header))
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	fmt.Fprintln(w, line(sep))
	for _, row := range t.Rows {
		fmt.Fprintln(w, line(row))
	}
}
