package metrics

import (
	"math"
	"testing"
	"time"
)

func TestRateDecaysByHalfLife(t *testing.T) {
	t0 := time.Unix(1000, 0)
	g := NewRate(10 * time.Second)
	g.Observe(t0, 1000)
	r0 := g.Per(t0)
	if r0 <= 0 {
		t.Fatalf("rate after observe = %v, want > 0", r0)
	}
	r1 := g.Per(t0.Add(10 * time.Second))
	if got, want := r1/r0, 0.5; math.Abs(got-want) > 1e-9 {
		t.Errorf("one half-life decayed ratio = %v, want %v", got, want)
	}
	// Steady feeding converges to the true rate: 100 B/s for many
	// half-lives reads back as ~100 B/s.
	g = NewRate(10 * time.Second)
	now := t0
	for i := 0; i < 600; i++ {
		now = now.Add(time.Second)
		g.Observe(now, 100)
	}
	if got := g.Per(now); math.Abs(got-100) > 5 {
		t.Errorf("steady 100 B/s reads as %v B/s", got)
	}
}

func TestRateIgnoresNonPositive(t *testing.T) {
	t0 := time.Unix(1000, 0)
	g := NewRate(time.Second)
	g.Observe(t0, 0)
	g.Observe(t0, -5)
	if got := g.Per(t0); got != 0 {
		t.Errorf("rate after non-positive observations = %v, want 0", got)
	}
}

func TestHeatMapSnapshotSortedAndPruned(t *testing.T) {
	now := time.Unix(1000, 0)
	h := NewHeatMap(time.Second)
	h.SetClock(func() time.Time { return now })

	h.ObserveRead(7, 4096)
	h.ObserveWrite(3, 2048)
	h.ObserveRead(3, 1024)

	snap := h.Snapshot()
	if len(snap) != 2 || snap[0].ID != 3 || snap[1].ID != 7 {
		t.Fatalf("snapshot = %+v, want models [3 7]", snap)
	}
	if snap[0].ReadBps <= 0 || snap[0].WriteBps <= 0 || snap[1].ReadBps <= 0 {
		t.Errorf("expected positive heat, got %+v", snap)
	}
	if snap[1].WriteBps != 0 {
		t.Errorf("model 7 write heat = %v, want 0", snap[1].WriteBps)
	}

	// Long silence decays everything below the floor; the snapshot prunes.
	now = now.Add(time.Hour)
	if snap := h.Snapshot(); len(snap) != 0 {
		t.Errorf("snapshot after decay = %+v, want empty", snap)
	}
}

func TestHeatMapNilSafe(t *testing.T) {
	var h *HeatMap
	h.ObserveRead(1, 10)
	h.ObserveWrite(1, 10)
	if got := h.Snapshot(); got != nil {
		t.Errorf("nil heat map snapshot = %v, want nil", got)
	}
}
