package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestRegistryCounters(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a")
	c.Inc()
	c.Add(4)
	if r.Counter("a") != c {
		t.Error("Counter not stable across lookups")
	}
	r.Counter("b") // registered, never incremented
	snap := r.Snapshot()
	if snap["a"] != 5 || snap["b"] != 0 {
		t.Errorf("snapshot = %v", snap)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("shared").Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Load(); got != 8000 {
		t.Errorf("shared = %d, want 8000", got)
	}
}

func TestRegistryRenderSkipsZeros(t *testing.T) {
	r := NewRegistry()
	r.Counter("hot").Add(3)
	r.Counter("cold")
	var b strings.Builder
	r.Render(&b)
	out := b.String()
	if !strings.Contains(out, "hot") || strings.Contains(out, "cold") {
		t.Errorf("render:\n%s", out)
	}
}
