// Package dedup implements the content-level capacity layer of EvoStore:
// the codecs and storage wrapper that shrink what a provider physically
// stores below what owner maps already dedup structurally.
//
// Owner maps share *unmodified* tensors between derived models by
// reference; this package attacks the remaining copies — tensors a
// fine-tune touched only slightly, segments that repeat across models on
// one provider, and segments nobody has read in a while:
//
//   - Delta encoding (EncodeDelta/DecodeDelta): a fine-tuned segment is
//     stored as an XOR + zero-run/varint delta against the logical bytes
//     of its LCP ancestor's segment. Sparse updates (a LoRA-style touch
//     of a fraction of the values) collapse to a small fraction of the
//     raw size; writers gate on a configurable ratio and bound chain
//     depth by rebasing to raw at K hops (see internal/client).
//   - Chunk addressing (ChunkDigests): fixed-size chunks keyed by
//     FNV-1a-64 content digest — the same digest machinery the repair
//     subsystem hashes state with (internal/proto HashBytes).
//   - Content-addressed storage (Wrap): a kvstore.KV wrapper that stores
//     each distinct chunk once under cas/<digest> with chunk-granularity
//     refcounts, and a value as a recipe of digests. Deleting one key
//     only frees the chunks no surviving recipe references.
//   - Cold compression (Compress/Decompress, KV.SweepCold): values not
//     read recently are DEFLATE-compressed in place and inflated
//     transparently on the next read.
//
// Contracts:
//   - Codecs are pure functions, safe for concurrent use; DecodeDelta
//     validates framing and never reads outside its inputs.
//   - The KV wrapper is safe for concurrent use and preserves the
//     kvstore.KV contract (Put copies, Get views are immutable), but its
//     chunk refcounts are in-memory: like provider catalogs, they do not
//     survive a process restart.
//   - EncodeDelta(base, target) is always decodable by
//     DecodeDelta(base, delta), for any pair of byte strings, including
//     empty and length-mismatched ones.
package dedup
