package dedup

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/kvstore"
)

// TestRecoverRebuildsRefcounts: a fresh wrapper over a surviving inner
// store starts with empty refcounts; Recover must rebuild them from the
// recipes so shared chunks are neither leaked nor freed early.
func TestRecoverRebuildsRefcounts(t *testing.T) {
	inner := kvstore.NewMemKV(4)
	o := Options{ChunkSize: 64}
	d1 := Wrap(inner, o)
	payload := bytes.Repeat([]byte("chunky-content! "), 16) // 256 B, 4 chunks
	if err := d1.Put("a", payload); err != nil {
		t.Fatal(err)
	}
	if err := d1.Put("b", payload); err != nil { // same chunks, refs 2 each
		t.Fatal(err)
	}

	// "Restart": new wrapper, no memory of the refcounts.
	d2 := Wrap(inner, o)
	if err := d2.Recover(); err != nil {
		t.Fatal(err)
	}
	if got, want := d2.Stats().Chunks, d1.Stats().Chunks; got != want {
		t.Errorf("recovered chunk count = %d, want %d", got, want)
	}
	// Deleting one referent must keep the shared chunks alive for the other.
	if err := d2.Delete("a"); err != nil {
		t.Fatal(err)
	}
	v, ok, err := d2.Get("b")
	if err != nil || !ok || !bytes.Equal(v, payload) {
		t.Fatalf("shared value lost after recovered delete: ok=%v err=%v", ok, err)
	}
	// Deleting the last referent must free every chunk.
	if err := d2.Delete("b"); err != nil {
		t.Fatal(err)
	}
	leftover := 0
	inner.Scan(casPrefix, func(string, []byte) bool { leftover++; return true })
	if leftover != 0 {
		t.Errorf("%d chunks leaked after the last referent was deleted", leftover)
	}
}

// TestRecoverDeletesOrphans: a chunk without any referencing recipe (a
// crash between the chunk put and its recipe put) must be garbage
// collected by Recover, while referenced chunks survive.
func TestRecoverDeletesOrphans(t *testing.T) {
	inner := kvstore.NewMemKV(4)
	o := Options{ChunkSize: 64}
	d1 := Wrap(inner, o)
	payload := bytes.Repeat([]byte("live-content 123"), 8) // 128 B, 2 chunks
	if err := d1.Put("live", payload); err != nil {
		t.Fatal(err)
	}
	// Plant an orphan chunk directly in the inner store.
	orphan := chunkKey(0xdeadbeefcafef00d)
	if err := inner.Put(orphan, []byte("unreferenced")); err != nil {
		t.Fatal(err)
	}

	d2 := Wrap(inner, o)
	if err := d2.Recover(); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := inner.Get(orphan); ok {
		t.Error("orphan chunk survived Recover")
	}
	v, ok, err := d2.Get("live")
	if err != nil || !ok || !bytes.Equal(v, payload) {
		t.Fatalf("referenced value damaged by orphan collection: ok=%v err=%v", ok, err)
	}
	if got, want := d2.Stats().Chunks, d1.Stats().Chunks; got != want {
		t.Errorf("Chunks after recover = %d, want %d", got, want)
	}
}

// TestRecoverAfterLSMReopen is the end-to-end shape: chunks and recipes
// persisted in an LSM dir, process "restarts", wrapper recovers, and an
// overwrite Put correctly releases the old recipe's chunks.
func TestRecoverAfterLSMReopen(t *testing.T) {
	dir := t.TempDir()
	lsm, err := kvstore.OpenLSM(dir, kvstore.LSMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	o := Options{ChunkSize: 64}
	d1 := Wrap(lsm, o)
	old := bytes.Repeat([]byte("generation-one! "), 16)
	if err := d1.Put("k", old); err != nil {
		t.Fatal(err)
	}
	if err := lsm.Close(); err != nil {
		t.Fatal(err)
	}

	lsm2, err := kvstore.OpenLSM(dir, kvstore.LSMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer lsm2.Close()
	d2 := Wrap(lsm2, o)
	if err := d2.Recover(); err != nil {
		t.Fatal(err)
	}
	// Overwrite: without recovered refcounts this would strand the old
	// generation's chunks forever.
	fresh := bytes.Repeat([]byte("generation-TWO! "), 16)
	if err := d2.Put("k", fresh); err != nil {
		t.Fatal(err)
	}
	v, ok, err := d2.Get("k")
	if err != nil || !ok || !bytes.Equal(v, fresh) {
		t.Fatalf("overwritten value wrong after recover: ok=%v err=%v", ok, err)
	}
	chunks := 0
	lsm2.Scan(casPrefix, func(key string, _ []byte) bool {
		if strings.HasPrefix(key, casPrefix) {
			chunks++
		}
		return true
	})
	if want := d2.Stats().Chunks; chunks != want {
		t.Errorf("physical chunks = %d, refcounted chunks = %d: old generation stranded", chunks, want)
	}
}
