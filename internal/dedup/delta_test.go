package dedup

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
)

func roundTrip(t *testing.T, name string, base, target []byte) []byte {
	t.Helper()
	delta := EncodeDelta(base, target)
	got, err := DecodeDelta(base, delta)
	if err != nil {
		t.Fatalf("%s: decode: %v", name, err)
	}
	if !bytes.Equal(got, target) {
		t.Fatalf("%s: round trip lost bytes (%d got, %d want)", name, len(got), len(target))
	}
	return delta
}

func TestDeltaIdenticalTensor(t *testing.T) {
	target := bytes.Repeat([]byte{7}, 100_000)
	delta := roundTrip(t, "identical", target, target)
	// An unchanged tensor is one all-zeros run: a handful of varints.
	if len(delta) > 16 {
		t.Fatalf("identical-tensor delta is %d bytes, want a few varints", len(delta))
	}
}

func TestDeltaEmptyTarget(t *testing.T) {
	roundTrip(t, "empty target", []byte("base"), nil)
	roundTrip(t, "empty both", nil, nil)
}

func TestDeltaFullyChanged(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base := make([]byte, 4096)
	target := make([]byte, 4096)
	rng.Read(base)
	for i := range target {
		target[i] = ^base[i] // every byte differs
	}
	delta := roundTrip(t, "100% changed", base, target)
	// All-literal: roughly target-sized. The ratio gate upstream rejects
	// it; here we only require correctness and no pathological blow-up.
	if len(delta) > len(target)+64 {
		t.Fatalf("fully-changed delta is %d bytes for a %d-byte target", len(delta), len(target))
	}
}

func TestDeltaLengthMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	base := make([]byte, 1000)
	rng.Read(base)
	// Target longer than base: the tail past base's end is plain bytes.
	long := append(append([]byte(nil), base...), []byte("grown tail, beyond the base")...)
	roundTrip(t, "target longer", base, long)
	// Target shorter than base.
	roundTrip(t, "target shorter", base, base[:137])
	// No base at all: the delta degenerates to (XOR-with-zero) literals.
	roundTrip(t, "nil base", nil, base)
}

func TestDeltaChunkBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, size := range []int{DefaultChunkSize - 1, DefaultChunkSize, DefaultChunkSize + 1, 3 * DefaultChunkSize} {
		base := make([]byte, size)
		rng.Read(base)
		target := append([]byte(nil), base...)
		// Flip bytes straddling every chunk boundary plus both ends.
		for _, off := range []int{0, DefaultChunkSize - 1, DefaultChunkSize, size - 1} {
			if off < len(target) {
				target[off] ^= 0xff
			}
		}
		delta := roundTrip(t, "chunk boundary", base, target)
		if len(delta) > 128 {
			t.Fatalf("size %d: sparse 4-byte change encoded to %d bytes", size, len(delta))
		}
	}
}

func TestDeltaSparseRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		base := make([]byte, rng.Intn(10_000))
		rng.Read(base)
		target := append([]byte(nil), base...)
		for i := 0; i < rng.Intn(20); i++ {
			if len(target) > 0 {
				target[rng.Intn(len(target))] ^= byte(1 + rng.Intn(255))
			}
		}
		roundTrip(t, "sparse random", base, target)
	}
}

func TestDecodeDeltaRejectsCorruption(t *testing.T) {
	base := bytes.Repeat([]byte{1}, 256)
	target := bytes.Repeat([]byte{2}, 256)
	delta := EncodeDelta(base, target)
	if _, err := DecodeDelta(base, nil); err == nil {
		t.Fatal("empty delta decoded")
	}
	if _, err := DecodeDelta(base, delta[:len(delta)/2]); err == nil {
		t.Fatal("truncated delta decoded")
	}
	if _, err := DecodeDelta(base, append(append([]byte(nil), delta...), 0, 0)); err == nil {
		t.Fatal("delta with trailing bytes decoded")
	}
}

// TestDeltaConcurrent exercises the codec from many goroutines sharing one
// base buffer — the read path decodes sibling segments in parallel, so the
// codec must be safe on shared immutable inputs (run under -race).
func TestDeltaConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	base := make([]byte, 100_000)
	rng.Read(base)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		target := append([]byte(nil), base...)
		target[g*1000] ^= 0x55
		wg.Add(1)
		go func(target []byte) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				delta := EncodeDelta(base, target)
				got, err := DecodeDelta(base, delta)
				if err != nil || !bytes.Equal(got, target) {
					t.Errorf("concurrent round trip failed: %v", err)
					return
				}
			}
		}(target)
	}
	wg.Wait()
}

func TestCompressRoundTrip(t *testing.T) {
	compressible := bytes.Repeat([]byte("evostore "), 1000)
	z, ok := Compress(compressible)
	if !ok || len(z) >= len(compressible) {
		t.Fatalf("compressible input: ok=%v len=%d", ok, len(z))
	}
	got, err := Decompress(z, len(compressible))
	if err != nil || !bytes.Equal(got, compressible) {
		t.Fatalf("inflate: %v", err)
	}
	if _, err := Decompress(z, len(compressible)-1); err == nil {
		t.Fatal("wrong rawLen accepted")
	}
	if got, err := Decompress(z, -1); err != nil || !bytes.Equal(got, compressible) {
		t.Fatalf("rawLen -1 must skip the length check: %v", err)
	}
	// Random bytes do not shrink: the caller keeps the original.
	rng := rand.New(rand.NewSource(6))
	noise := make([]byte, 4096)
	rng.Read(noise)
	if _, ok := Compress(noise); ok {
		t.Fatal("incompressible input reported as shrunk")
	}
}

func TestChunkDigests(t *testing.T) {
	b := make([]byte, 2*DefaultChunkSize+100)
	rand.New(rand.NewSource(7)).Read(b)
	ds := ChunkDigests(b, 0)
	if len(ds) != 3 {
		t.Fatalf("got %d digests, want 3", len(ds))
	}
	// Identical chunks share a digest; a one-byte change moves it.
	same := append(append([]byte(nil), b[:DefaultChunkSize]...), b[:DefaultChunkSize]...)
	ds2 := ChunkDigests(same, 0)
	if ds2[0] != ds2[1] || ds2[0] != ds[0] {
		t.Fatal("identical chunks digest differently")
	}
	same[3] ^= 1
	if ChunkDigests(same, 0)[0] == ds[0] {
		t.Fatal("changed chunk kept its digest")
	}
	if ChunkDigests(nil, 0) != nil {
		t.Fatal("empty input produced digests")
	}
}
