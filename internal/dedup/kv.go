package dedup

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/kvstore"
)

// Stored-representation markers. Like the proto segment envelope, both
// open with 0xF5 so they cannot begin a plausible raw tensor segment;
// the fifth byte distinguishes recipe ('r') from compressed blob ('z').
var (
	recipeMagic = []byte{0xf5, 'C', 'a', 'S', 'r', 0x01}
	flateMagic  = []byte{0xf5, 'C', 'a', 'S', 'z', 0x01}
)

// casPrefix namespaces chunk entries inside the wrapped store. Logical
// keys must not start with it (provider segment keys are "seg/...").
const casPrefix = "cas/"

// Options configures a content-addressed KV wrapper.
type Options struct {
	// ChunkSize is the content-addressing granularity (default
	// DefaultChunkSize). Values shorter than one chunk are stored inline.
	ChunkSize int
	// ColdCompress enables SweepCold: values and chunks not read for the
	// sweep's idle threshold are DEFLATE-compressed in place.
	ColdCompress bool
}

// KV content-addresses the values of an underlying kvstore.KV: each
// distinct chunk is stored once under cas/<digest> with an in-memory
// refcount, a value is stored as a recipe of chunk digests, and cold
// entries can be compressed in place (SweepCold). Readers see logical
// bytes; SizeBytes reports what is physically stored — the dedup win.
type KV struct {
	kv   kvstore.KV
	kvB  kvstore.ByteKeyGetter
	o    Options
	mu   sync.Mutex     // serializes mutations (chunk refcounts, sweeps)
	refs map[uint64]int // live references per chunk digest
	// chunks counts live cas/ entries so Len can report logical keys.
	chunks int
	// access records the last read/write per physical key (unix nanos);
	// SweepCold compresses entries idle past its threshold.
	access sync.Map

	dedupHits  atomic.Uint64 // chunks answered by an existing copy
	compressed atomic.Uint64 // entries compressed by sweeps
}

// Wrap layers content addressing over kv. The wrapper owns kv's key
// space: keys beginning "cas/" are reserved for chunks.
func Wrap(kv kvstore.KV, o Options) *KV {
	if o.ChunkSize <= 0 {
		o.ChunkSize = DefaultChunkSize
	}
	kvB, _ := kv.(kvstore.ByteKeyGetter)
	return &KV{kv: kv, kvB: kvB, o: o, refs: make(map[uint64]int)}
}

// CASStats reports the wrapper's content-addressing effectiveness.
type CASStats struct {
	Chunks     int    // live distinct chunks
	DedupHits  uint64 // chunk stores answered by an existing copy
	Compressed uint64 // entries compressed by cold sweeps
}

// Stats snapshots the wrapper counters.
func (d *KV) Stats() CASStats {
	d.mu.Lock()
	chunks := d.chunks
	d.mu.Unlock()
	return CASStats{Chunks: chunks, DedupHits: d.dedupHits.Load(), Compressed: d.compressed.Load()}
}

func chunkKey(digest uint64) string {
	var b [4 + 16]byte
	copy(b[:4], casPrefix)
	const hex = "0123456789abcdef"
	for i := 0; i < 16; i++ {
		b[4+i] = hex[(digest>>uint(60-4*i))&0xf]
	}
	return string(b[:])
}

func hasMagic(b, magic []byte) bool {
	if len(b) < len(magic) {
		return false
	}
	for i, c := range magic {
		if b[i] != c {
			return false
		}
	}
	return true
}

func (d *KV) touch(key string) { d.access.Store(key, time.Now().UnixNano()) }

// Put implements kvstore.KV: values of at least one chunk are stored as
// cas recipes; shorter ones pass through inline.
func (d *KV) Put(key string, value []byte) error {
	if strings.HasPrefix(key, casPrefix) {
		return fmt.Errorf("dedup: key %q collides with the reserved chunk namespace", key)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.releaseLocked(key); err != nil {
		return err
	}
	d.touch(key)
	if len(value) < d.o.ChunkSize {
		return d.kv.Put(key, value)
	}
	recipe, err := d.storeChunksLocked(value)
	if err != nil {
		return err
	}
	if recipe == nil {
		// Digest collision fallback: store the value inline, undeduped.
		return d.kv.Put(key, value)
	}
	return d.kv.Put(key, recipe)
}

// storeChunksLocked stores value's chunks (reusing existing copies) and
// returns the recipe. A digest collision — same digest, different bytes —
// returns (nil, nil) after releasing any references already taken, and
// the caller stores the value inline.
func (d *KV) storeChunksLocked(value []byte) ([]byte, error) {
	digests := ChunkDigests(value, d.o.ChunkSize)
	recipe := make([]byte, 0, len(recipeMagic)+12+12*len(digests))
	recipe = append(recipe, recipeMagic...)
	recipe = binary.LittleEndian.AppendUint64(recipe, uint64(len(value)))
	recipe = binary.LittleEndian.AppendUint32(recipe, uint32(len(digests)))
	taken := make([]uint64, 0, len(digests))
	undo := func() {
		for _, g := range taken {
			d.unrefChunkLocked(g) //nolint:errcheck // best-effort rollback
		}
	}
	for ci, g := range digests {
		off := ci * d.o.ChunkSize
		end := off + d.o.ChunkSize
		if end > len(value) {
			end = len(value)
		}
		chunk := value[off:end]
		if d.refs[g] > 0 {
			stored, err := d.chunkBytes(g)
			if err != nil {
				undo()
				return nil, err
			}
			if !bytesEqual(stored, chunk) {
				undo()
				return nil, nil // true collision: fall back to inline
			}
			d.refs[g]++
			d.dedupHits.Add(1)
		} else {
			if err := d.kv.Put(chunkKey(g), chunk); err != nil {
				undo()
				return nil, err
			}
			d.refs[g] = 1
			d.chunks++
			d.touch(chunkKey(g))
		}
		taken = append(taken, g)
		recipe = binary.LittleEndian.AppendUint64(recipe, g)
		recipe = binary.LittleEndian.AppendUint32(recipe, uint32(len(chunk)))
	}
	return recipe, nil
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// chunkBytes reads one chunk's logical bytes (inflating a cold chunk).
func (d *KV) chunkBytes(digest uint64) ([]byte, error) {
	k := chunkKey(digest)
	v, ok, err := d.kv.Get(k)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("dedup: chunk %016x missing (refcount says live)", digest)
	}
	d.touch(k)
	return d.inflate(v)
}

// inflate returns a stored entry's logical bytes, transparently
// decompressing a cold-compressed blob.
func (d *KV) inflate(v []byte) ([]byte, error) {
	if !hasMagic(v, flateMagic) {
		return v, nil
	}
	if len(v) < len(flateMagic)+8 {
		return nil, fmt.Errorf("dedup: torn compressed entry (%d bytes)", len(v))
	}
	rawLen := binary.LittleEndian.Uint64(v[len(flateMagic):])
	return Decompress(v[len(flateMagic)+8:], int(rawLen))
}

// unrefChunkLocked drops one reference, deleting the chunk at zero.
func (d *KV) unrefChunkLocked(digest uint64) error {
	n := d.refs[digest] - 1
	if n > 0 {
		d.refs[digest] = n
		return nil
	}
	delete(d.refs, digest)
	d.chunks--
	k := chunkKey(digest)
	d.access.Delete(k)
	return d.kv.Delete(k)
}

// releaseLocked undoes the chunk references held by key's current entry,
// if it is a recipe.
func (d *KV) releaseLocked(key string) error {
	v, ok, err := d.kv.Get(key)
	if err != nil || !ok {
		return err
	}
	if !hasMagic(v, recipeMagic) {
		return nil
	}
	_, digests, _, err := parseRecipe(v)
	if err != nil {
		return err
	}
	for _, g := range digests {
		if err := d.unrefChunkLocked(g); err != nil {
			return err
		}
	}
	return nil
}

// parseRecipe decodes a recipe into (rawLen, digests, chunkLens).
func parseRecipe(v []byte) (uint64, []uint64, []uint32, error) {
	b := v[len(recipeMagic):]
	if len(b) < 12 {
		return 0, nil, nil, fmt.Errorf("dedup: torn recipe (%d bytes)", len(v))
	}
	rawLen := binary.LittleEndian.Uint64(b)
	n := int(binary.LittleEndian.Uint32(b[8:]))
	b = b[12:]
	if len(b) != 12*n {
		return 0, nil, nil, fmt.Errorf("dedup: recipe wants %d chunk entries, has %d bytes", n, len(b))
	}
	digests := make([]uint64, n)
	lens := make([]uint32, n)
	for i := 0; i < n; i++ {
		digests[i] = binary.LittleEndian.Uint64(b[12*i:])
		lens[i] = binary.LittleEndian.Uint32(b[12*i+8:])
	}
	return rawLen, digests, lens, nil
}

// Get implements kvstore.KV, reassembling recipes and inflating cold
// entries. Pass-through values are zero-copy views of the inner store;
// reassembled and inflated values are fresh buffers.
func (d *KV) Get(key string) ([]byte, bool, error) {
	v, ok, err := d.kv.Get(key)
	return d.resolve(key, v, ok, err)
}

// GetB implements kvstore.ByteKeyGetter when the inner store does.
func (d *KV) GetB(key []byte) ([]byte, bool, error) {
	if d.kvB == nil {
		return d.Get(string(key))
	}
	v, ok, err := d.kvB.GetB(key)
	if err != nil || !ok {
		return nil, ok, err
	}
	// Only materialize the key string off the fast path (recipes, cold
	// entries, access tracking are not the hot read shape).
	return d.resolve(string(key), v, ok, err)
}

func (d *KV) resolve(key string, v []byte, ok bool, err error) ([]byte, bool, error) {
	if err != nil || !ok {
		return nil, ok, err
	}
	d.touch(key)
	if hasMagic(v, recipeMagic) {
		out, err := d.reassemble(v)
		return out, err == nil, err
	}
	out, err := d.inflate(v)
	return out, err == nil, err
}

// reassemble concatenates a recipe's chunks into one fresh buffer.
func (d *KV) reassemble(recipe []byte) ([]byte, error) {
	rawLen, digests, lens, err := parseRecipe(recipe)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, rawLen)
	for i, g := range digests {
		chunk, err := d.chunkBytes(g)
		if err != nil {
			return nil, err
		}
		if len(chunk) != int(lens[i]) {
			return nil, fmt.Errorf("dedup: chunk %016x is %d bytes, recipe says %d", g, len(chunk), lens[i])
		}
		out = append(out, chunk...)
	}
	if uint64(len(out)) != rawLen {
		return nil, fmt.Errorf("dedup: reassembled %d bytes, recipe says %d", len(out), rawLen)
	}
	return out, nil
}

// Delete implements kvstore.KV, releasing the entry's chunk references.
func (d *KV) Delete(key string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.releaseLocked(key); err != nil {
		return err
	}
	d.access.Delete(key)
	return d.kv.Delete(key)
}

// Scan implements kvstore.KV over logical keys and values: chunk entries
// are hidden, recipes are reassembled, cold entries inflated.
func (d *KV) Scan(prefix string, fn func(key string, value []byte) bool) error {
	var ferr error
	err := d.kv.Scan(prefix, func(key string, value []byte) bool {
		if strings.HasPrefix(key, casPrefix) {
			return true
		}
		logical, _, err := d.resolve(key, value, true, nil)
		if err != nil {
			ferr = err
			return false
		}
		return fn(key, logical)
	})
	if ferr != nil {
		return ferr
	}
	return err
}

// Len implements kvstore.KV: logical entries, excluding chunk storage.
func (d *KV) Len() int {
	d.mu.Lock()
	chunks := d.chunks
	d.mu.Unlock()
	return d.kv.Len() - chunks
}

// SizeBytes implements kvstore.KV and reports *physical* bytes — after
// chunk sharing and cold compression. This is deliberate: it is the
// quantity operators and the dedup benchmark care about.
func (d *KV) SizeBytes() int64 { return d.kv.SizeBytes() }

// Close implements kvstore.KV.
func (d *KV) Close() error { return d.kv.Close() }

// Sync implements kvstore.Syncer when the wrapped store does (a no-op
// otherwise), so the durable provider catalog can fsync through the
// content-addressing layer.
func (d *KV) Sync() error {
	if s, ok := d.kv.(kvstore.Syncer); ok {
		return s.Sync()
	}
	return nil
}

// Recover rebuilds the wrapper's in-memory chunk refcounts by scanning
// the wrapped store's recipes. Required after reopening a persistent
// inner store (kvstore.LSMKV): the cas/ chunks and recipes survived the
// restart, but the refcounts lived in process memory — without recovery
// a Put of an existing key would fail to release its old chunks, and a
// release could delete chunks other recipes still reference. Chunks no
// recipe references (for example a crash between the chunk put and its
// recipe put) are orphans and are deleted. Call before serving traffic.
func (d *KV) Recover() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	refs := make(map[uint64]int)
	var chunkDigests []uint64
	err := d.kv.Scan("", func(key string, value []byte) bool {
		if strings.HasPrefix(key, casPrefix) {
			if g, err := strconv.ParseUint(key[len(casPrefix):], 16, 64); err == nil {
				chunkDigests = append(chunkDigests, g)
			}
			return true
		}
		if hasMagic(value, recipeMagic) {
			if _, digests, _, err := parseRecipe(value); err == nil {
				for _, g := range digests {
					refs[g]++
				}
			}
		}
		return true
	})
	if err != nil {
		return err
	}
	d.refs = refs
	d.chunks = 0
	for _, g := range chunkDigests {
		if refs[g] > 0 {
			d.chunks++
			continue
		}
		if err := d.kv.Delete(chunkKey(g)); err != nil {
			return fmt.Errorf("dedup: deleting orphan chunk %016x: %w", g, err)
		}
	}
	return nil
}

// SweepCold compresses every entry (pass-through values and chunks, not
// recipes) whose last access is at least minIdle ago. It returns the
// number of entries compressed. A no-op unless Options.ColdCompress.
func (d *KV) SweepCold(minIdle time.Duration) (int, error) {
	if !d.o.ColdCompress {
		return 0, nil
	}
	cutoff := time.Now().Add(-minIdle).UnixNano()
	// Snapshot candidate keys first; compress under the mutation lock so
	// a concurrent Put cannot be clobbered by a stale compressed copy.
	var keys []string
	if err := d.kv.Scan("", func(key string, value []byte) bool {
		if !hasMagic(value, recipeMagic) && !hasMagic(value, flateMagic) && len(value) >= 64 {
			keys = append(keys, key)
		}
		return true
	}); err != nil {
		return 0, err
	}
	n := 0
	for _, key := range keys {
		d.mu.Lock()
		if at, ok := d.access.Load(key); ok && at.(int64) > cutoff {
			d.mu.Unlock()
			continue
		}
		v, ok, err := d.kv.Get(key)
		if err != nil || !ok || hasMagic(v, recipeMagic) || hasMagic(v, flateMagic) {
			d.mu.Unlock()
			if err != nil {
				return n, err
			}
			continue
		}
		z, shrank := Compress(v)
		if !shrank {
			d.mu.Unlock()
			continue
		}
		blob := make([]byte, 0, len(flateMagic)+8+len(z))
		blob = append(blob, flateMagic...)
		blob = binary.LittleEndian.AppendUint64(blob, uint64(len(v)))
		blob = append(blob, z...)
		if err := d.kv.Put(key, blob); err != nil {
			d.mu.Unlock()
			return n, err
		}
		n++
		d.compressed.Add(1)
		d.mu.Unlock()
	}
	return n, nil
}

var (
	_ kvstore.KV            = (*KV)(nil)
	_ kvstore.ByteKeyGetter = (*KV)(nil)
)
