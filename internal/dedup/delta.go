package dedup

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/proto"
)

// DefaultChunkSize is the content-addressing granularity: segments are
// chunked at this boundary both for digests and for the CAS wrapper.
// 64 KiB keeps recipe overhead (12 bytes/chunk) below 0.02% while still
// catching sub-tensor repetition.
const DefaultChunkSize = 64 << 10

// ChunkDigests splits b into chunkSize-byte chunks (the last one may be
// short) and returns one FNV-1a-64 content digest per chunk, reusing the
// repair subsystem's hash (proto.HashBytes). chunkSize <= 0 selects
// DefaultChunkSize. An empty b yields no chunks.
func ChunkDigests(b []byte, chunkSize int) []uint64 {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	if len(b) == 0 {
		return nil
	}
	out := make([]uint64, 0, (len(b)+chunkSize-1)/chunkSize)
	for off := 0; off < len(b); off += chunkSize {
		end := off + chunkSize
		if end > len(b) {
			end = len(b)
		}
		out = append(out, proto.HashBytes(proto.HashSeed, b[off:end]))
	}
	return out
}

// Delta format: uvarint(targetLen), then alternating run pairs
// uvarint(zeroRun) uvarint(litLen) <litLen XOR bytes> until targetLen
// bytes are covered. A zero run means "copy from base"; literal bytes are
// target XOR base (plain target bytes past the end of base). The format
// is self-delimiting and length-checked on decode.

// EncodeDelta encodes target as a delta against base. It never fails and
// always round-trips through DecodeDelta(base, ...), for any inputs; it
// only *pays off* when most bytes are unchanged, which the caller gates
// with a ratio check against len(target).
func EncodeDelta(base, target []byte) []byte {
	// Worst case (every byte differs): 1 run pair + the literal bytes.
	out := make([]byte, 0, len(target)+2*binary.MaxVarintLen64+4)
	out = binary.AppendUvarint(out, uint64(len(target)))
	i := 0
	for i < len(target) {
		runStart := i
		for i < len(target) && xorAt(base, target, i) == 0 {
			i++
		}
		zeros := i - runStart
		litStart := i
		// A literal run ends at a stretch of zeros long enough that
		// switching back to run-length encoding wins (the two varints of a
		// new pair cost ~2-4 bytes; require 8 zero bytes so tiny gaps stay
		// literal).
		for i < len(target) {
			if xorAt(base, target, i) != 0 {
				i++
				continue
			}
			j := i
			for j < len(target) && j < i+8 && xorAt(base, target, j) == 0 {
				j++
			}
			if j-i >= 8 || j == len(target) {
				break
			}
			i = j
		}
		out = binary.AppendUvarint(out, uint64(zeros))
		out = binary.AppendUvarint(out, uint64(i-litStart))
		for k := litStart; k < i; k++ {
			out = append(out, xorAt(base, target, k))
		}
	}
	return out
}

// xorAt returns target[i] XOR base[i], treating base as zero-padded.
func xorAt(base, target []byte, i int) byte {
	if i < len(base) {
		return target[i] ^ base[i]
	}
	return target[i]
}

// DecodeDelta reconstructs the target bytes from base and a delta
// produced by EncodeDelta(base, target).
func DecodeDelta(base, delta []byte) ([]byte, error) {
	targetLen, n := binary.Uvarint(delta)
	if n <= 0 {
		return nil, fmt.Errorf("dedup: delta header truncated")
	}
	delta = delta[n:]
	out := make([]byte, targetLen)
	pos := 0
	for pos < int(targetLen) {
		zeros, n := binary.Uvarint(delta)
		if n <= 0 {
			return nil, fmt.Errorf("dedup: delta run truncated at byte %d", pos)
		}
		delta = delta[n:]
		lits, n := binary.Uvarint(delta)
		if n <= 0 {
			return nil, fmt.Errorf("dedup: delta literal length truncated at byte %d", pos)
		}
		delta = delta[n:]
		if uint64(pos)+zeros+lits > targetLen || uint64(len(delta)) < lits {
			return nil, fmt.Errorf("dedup: delta overruns %d-byte target at byte %d", targetLen, pos)
		}
		// Zero run: bytes equal base (zero-padded past its end). Zero runs
		// are the bulk of a sparse delta, so this must be a memcpy, not a
		// byte loop — it is the restore path's hot spot.
		if run := int(zeros); run > 0 {
			if pos < len(base) {
				copy(out[pos:pos+run], base[pos:])
			}
			pos += run
		}
		// Literal run: target = delta XOR base, word-at-a-time.
		lit := delta[:lits]
		k := 0
		for ; k+8 <= len(lit) && pos+8 <= len(base); k += 8 {
			binary.LittleEndian.PutUint64(out[pos:],
				binary.LittleEndian.Uint64(lit[k:])^binary.LittleEndian.Uint64(base[pos:]))
			pos += 8
		}
		for ; k < len(lit); k++ {
			out[pos] = lit[k]
			if pos < len(base) {
				out[pos] ^= base[pos]
			}
			pos++
		}
		delta = delta[lits:]
	}
	if len(delta) != 0 {
		return nil, fmt.Errorf("dedup: %d trailing delta bytes", len(delta))
	}
	return out, nil
}

// Compress DEFLATE-compresses b (the cold-segment encoding). It returns
// the compressed bytes and true, or (nil, false) when compression does
// not shrink the input — callers then keep the original.
func Compress(b []byte) ([]byte, bool) {
	var buf bytes.Buffer
	buf.Grow(len(b) / 2)
	zw, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil {
		return nil, false
	}
	if _, err := zw.Write(b); err != nil {
		return nil, false
	}
	if err := zw.Close(); err != nil {
		return nil, false
	}
	if buf.Len() >= len(b) {
		return nil, false
	}
	return buf.Bytes(), true
}

// Decompress inflates bytes produced by Compress. rawLen is the expected
// inflated size (from the caller's envelope or recipe); a mismatch is an
// error, and rawLen < 0 skips the check.
func Decompress(b []byte, rawLen int) ([]byte, error) {
	zr := flate.NewReader(bytes.NewReader(b))
	defer zr.Close()
	var buf bytes.Buffer
	if rawLen > 0 {
		buf.Grow(rawLen)
	}
	if _, err := io.Copy(&buf, zr); err != nil {
		return nil, fmt.Errorf("dedup: inflating %d bytes: %w", len(b), err)
	}
	if rawLen >= 0 && buf.Len() != rawLen {
		return nil, fmt.Errorf("dedup: inflated to %d bytes, want %d", buf.Len(), rawLen)
	}
	return buf.Bytes(), nil
}
