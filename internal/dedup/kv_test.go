package dedup

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/kvstore"
)

func wrapped(t *testing.T, o Options) (*KV, kvstore.KV) {
	t.Helper()
	inner := kvstore.NewMemKV(4)
	d := Wrap(inner, o)
	t.Cleanup(func() { d.Close() })
	return d, inner
}

func mustPut(t *testing.T, d *KV, key string, v []byte) {
	t.Helper()
	if err := d.Put(key, v); err != nil {
		t.Fatalf("put %q: %v", key, err)
	}
}

func mustGet(t *testing.T, d *KV, key string) []byte {
	t.Helper()
	v, ok, err := d.Get(key)
	if err != nil || !ok {
		t.Fatalf("get %q: ok=%v err=%v", key, ok, err)
	}
	return v
}

func TestKVChunkSharing(t *testing.T) {
	d, inner := wrapped(t, Options{ChunkSize: 8})
	v := []byte("abcdefghABCDEFGH01234567") // 3 chunks
	mustPut(t, d, "seg/1", v)
	mustPut(t, d, "seg/2", v)
	if got := mustGet(t, d, "seg/2"); !bytes.Equal(got, v) {
		t.Fatalf("read back %q", got)
	}
	st := d.Stats()
	if st.Chunks != 3 {
		t.Fatalf("chunks = %d, want 3 shared", st.Chunks)
	}
	if st.DedupHits != 3 {
		t.Fatalf("dedup hits = %d, want 3 (second value fully shared)", st.DedupHits)
	}
	// Logical view: 2 entries; physically: 2 recipes + 3 chunks.
	if d.Len() != 2 || inner.Len() != 5 {
		t.Fatalf("Len = %d (inner %d), want 2 (5)", d.Len(), inner.Len())
	}
	// Overlapping value shares its common prefix chunks only.
	v3 := append(append([]byte(nil), v[:16]...), []byte("xxxxxxxx")...)
	mustPut(t, d, "seg/3", v3)
	if st := d.Stats(); st.Chunks != 4 || st.DedupHits != 5 {
		t.Fatalf("after overlap: %+v, want 4 chunks / 5 hits", st)
	}
	if got := mustGet(t, d, "seg/3"); !bytes.Equal(got, v3) {
		t.Fatalf("read back %q", got)
	}
}

func TestKVDeleteKeepsSharedChunks(t *testing.T) {
	d, _ := wrapped(t, Options{ChunkSize: 8})
	v := []byte("abcdefghABCDEFGH")
	mustPut(t, d, "seg/1", v)
	mustPut(t, d, "seg/2", v)
	if err := d.Delete("seg/1"); err != nil {
		t.Fatal(err)
	}
	// The survivor still resolves: its chunks were shared, not owned.
	if got := mustGet(t, d, "seg/2"); !bytes.Equal(got, v) {
		t.Fatalf("read back %q after sibling delete", got)
	}
	if st := d.Stats(); st.Chunks != 2 {
		t.Fatalf("chunks = %d after one delete, want 2", st.Chunks)
	}
	if err := d.Delete("seg/2"); err != nil {
		t.Fatal(err)
	}
	if st := d.Stats(); st.Chunks != 0 {
		t.Fatalf("chunks = %d after both deletes, want 0", st.Chunks)
	}
	if d.Len() != 0 || d.SizeBytes() != 0 {
		t.Fatalf("store not empty: len=%d size=%d", d.Len(), d.SizeBytes())
	}
}

func TestKVOverwriteReleasesOldChunks(t *testing.T) {
	d, _ := wrapped(t, Options{ChunkSize: 8})
	mustPut(t, d, "seg/1", []byte("abcdefghABCDEFGH"))
	mustPut(t, d, "seg/1", []byte("zzzzzzzzyyyyyyyy"))
	if st := d.Stats(); st.Chunks != 2 {
		t.Fatalf("chunks = %d after overwrite, want only the new 2", st.Chunks)
	}
	if got := mustGet(t, d, "seg/1"); !bytes.Equal(got, []byte("zzzzzzzzyyyyyyyy")) {
		t.Fatalf("read back %q", got)
	}
}

func TestKVSmallValuePassThrough(t *testing.T) {
	d, inner := wrapped(t, Options{ChunkSize: 64})
	small := []byte("short")
	mustPut(t, d, "seg/1", small)
	// Stored verbatim in the inner store: no recipe, no chunks.
	raw, ok, err := inner.Get("seg/1")
	if err != nil || !ok || !bytes.Equal(raw, small) {
		t.Fatalf("inner holds %q, %v", raw, err)
	}
	if st := d.Stats(); st.Chunks != 0 {
		t.Fatalf("chunks = %d for sub-chunk value", st.Chunks)
	}
}

func TestKVRejectsReservedKeys(t *testing.T) {
	d, _ := wrapped(t, Options{})
	if err := d.Put("cas/0123", []byte("x")); err == nil {
		t.Fatal("put into the reserved chunk namespace accepted")
	}
}

func TestKVScanHidesChunks(t *testing.T) {
	d, _ := wrapped(t, Options{ChunkSize: 8})
	big := bytes.Repeat([]byte("chunked!"), 4)
	mustPut(t, d, "seg/big", big)
	mustPut(t, d, "seg/small", []byte("tiny"))
	seen := map[string][]byte{}
	if err := d.Scan("", func(k string, v []byte) bool {
		seen[k] = append([]byte(nil), v...)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 {
		t.Fatalf("scan saw %d keys %v, want the 2 logical ones", len(seen), seen)
	}
	// Scan yields logical bytes, not the recipe.
	if !bytes.Equal(seen["seg/big"], big) {
		t.Fatalf("scan resolved %d bytes, want %d", len(seen["seg/big"]), len(big))
	}
}

func TestKVColdSweepRoundTrip(t *testing.T) {
	d, inner := wrapped(t, Options{ChunkSize: 1 << 20, ColdCompress: true})
	// A compressible pass-through value (below the chunk size, above the
	// 64-byte sweep floor).
	v := bytes.Repeat([]byte("model weights "), 64)
	mustPut(t, d, "seg/1", v)
	time.Sleep(2 * time.Millisecond) // let the access stamp age past the cutoff
	n, err := d.SweepCold(time.Millisecond)
	if err != nil || n != 1 {
		t.Fatalf("sweep = %d, %v, want 1 entry compressed", n, err)
	}
	raw, _, err := inner.Get("seg/1")
	if err != nil || len(raw) >= len(v) {
		t.Fatalf("inner entry is %d bytes after sweep, want compressed < %d (%v)", len(raw), len(v), err)
	}
	// Reads transparently inflate.
	if got := mustGet(t, d, "seg/1"); !bytes.Equal(got, v) {
		t.Fatalf("read back %d bytes after sweep, want %d", len(got), len(v))
	}
	if st := d.Stats(); st.Compressed != 1 {
		t.Fatalf("compressed = %d, want 1", st.Compressed)
	}
	// A second sweep is a no-op: already compressed.
	if n, err := d.SweepCold(time.Millisecond); err != nil || n != 0 {
		t.Fatalf("re-sweep = %d, %v", n, err)
	}
}

func TestKVColdSweepCompressesChunks(t *testing.T) {
	d, _ := wrapped(t, Options{ChunkSize: 64, ColdCompress: true})
	// 4 distinct chunks of 64 compressible bytes each.
	var v []byte
	for c := byte('a'); c < 'e'; c++ {
		v = append(v, bytes.Repeat([]byte{c}, 64)...)
	}
	mustPut(t, d, "seg/1", v)
	time.Sleep(2 * time.Millisecond)
	n, err := d.SweepCold(time.Millisecond)
	if err != nil || n == 0 {
		t.Fatalf("sweep = %d, %v, want chunks compressed", n, err)
	}
	// Reassembly inflates each cold chunk.
	if got := mustGet(t, d, "seg/1"); !bytes.Equal(got, v) {
		t.Fatalf("read back %d bytes, want %d", len(got), len(v))
	}
	// Storing the same value again must still share: the chunk comparison
	// reads logical chunk bytes, not the compressed blob.
	mustPut(t, d, "seg/2", v)
	if st := d.Stats(); st.Chunks != 4 {
		t.Fatalf("chunks = %d after re-store over cold chunks, want 4", st.Chunks)
	}
	if got := mustGet(t, d, "seg/2"); !bytes.Equal(got, v) {
		t.Fatalf("read back %d bytes, want %d", len(got), len(v))
	}
}

func TestKVSweepDisabledWithoutOption(t *testing.T) {
	d, _ := wrapped(t, Options{ChunkSize: 1 << 20})
	mustPut(t, d, "seg/1", bytes.Repeat([]byte("model weights "), 64))
	if n, err := d.SweepCold(0); err != nil || n != 0 {
		t.Fatalf("sweep without ColdCompress = %d, %v, want no-op", n, err)
	}
}
