package expr

import (
	"repro/internal/nas"
)

// Fig10Row is one bar of Figure 10: repository storage space for one
// approach and retirement policy after a full NAS run.
type Fig10Row struct {
	Approach   string
	Retire     bool
	FinalBytes int64
	PeakBytes  int64
}

// RunFig10 measures storage space for EvoStore vs HDF5+PFS with and
// without retirement, over the same NAS workload (paper: 128 workers).
func RunFig10(cfg NASConfig, workers int) ([]Fig10Row, error) {
	cfg.setDefaults()
	var rows []Fig10Row
	for _, mode := range []nas.StorageMode{nas.ModeHDF5PFS, nas.ModeEvoStore} {
		for _, retire := range []bool{false, true} {
			c := cfg
			c.Retire = retire
			res, err := runCached(c.simConfig(mode, workers))
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig10Row{
				Approach:   mode.String(),
				Retire:     retire,
				FinalBytes: res.StorageBytes,
				PeakBytes:  res.PeakStorageBytes,
			})
		}
	}
	return rows, nil
}
