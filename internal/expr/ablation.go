package expr

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/archgen"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/kvstore"
	"repro/internal/model"
	"repro/internal/nas"
	"repro/internal/proto"
	"repro/internal/provider"
	"repro/internal/rpc"
	"repro/internal/tensor"
)

// The ablations quantify the design choices DESIGN.md calls out. Each
// returns a small set of rows; bench_test.go exposes them as benchmarks
// and cmd/evostore-bench prints them.

// --- Ablation 1: owner maps vs chain reconstruction ---------------------------

// AblationOwnerMapRow compares read cost at one lineage depth.
type AblationOwnerMapRow struct {
	Depth        int
	OwnerMapSec  float64
	ChainWalkSec float64
	Speedup      float64
}

// RunAblationOwnerMap builds derivation chains of increasing depth and
// measures reconstructing the newest model (a) through its owner map (one
// metadata fetch + per-owner parallel reads — EvoStore's design) versus
// (b) by walking the ancestor chain newest-to-oldest, overlaying each
// ancestor's owned tensors (the "simple solution" the paper rejects in
// §4.1, whose cost grows with chain length).
func RunAblationOwnerMap(depths []int, layerBytes int64, layers int) ([]AblationOwnerMapRow, error) {
	if len(depths) == 0 {
		depths = []int{1, 4, 16, 64}
	}
	if layerBytes <= 0 {
		layerBytes = 64 << 10
	}
	if layers <= 0 {
		layers = 50
	}
	ctx := context.Background()
	var rows []AblationOwnerMapRow
	for _, depth := range depths {
		repo, cleanup, err := newTCPRepo(4)
		if err != nil {
			return nil, err
		}
		f, err := archgen.Uniform(archgen.UniformOptions{TotalBytes: layerBytes * int64(layers), Layers: layers})
		if err != nil {
			return nil, err
		}
		ws := model.Materialize(f, 0)
		if _, err := repo.Store(ctx, f, ws, 0.5); err != nil {
			return nil, err
		}
		// Build the chain: each generation modifies one rotating layer.
		chain := []core.ModelID{}
		var newest core.ModelID
		for d := 0; d < depth; d++ {
			anc, found, err := repo.BestAncestor(ctx, f)
			if err != nil || !found {
				return nil, fmt.Errorf("expr: chain depth %d: %v", d, err)
			}
			cws := model.Materialize(f, uint64(d+1))
			if err := repo.TransferPrefix(ctx, f, cws, anc); err != nil {
				return nil, err
			}
			v := graph.VertexID(1 + d%(f.Graph.NumVertices()-1))
			cws.PerturbVertex(v, uint64(d))
			id, err := repo.StoreDerived(ctx, f, cws, 0.5+float64(d)*1e-6, anc, nil)
			if err != nil {
				return nil, err
			}
			chain = append(chain, id)
			newest = id
		}
		_ = chain

		// (a) Owner-map read: one metadata fetch, then per-owner parallel
		// bulk reads.
		meta, err := repo.GetMeta(ctx, newest)
		if err != nil {
			return nil, err
		}
		all := make([]graph.VertexID, f.Graph.NumVertices())
		for v := range all {
			all[v] = graph.VertexID(v)
		}
		t0 := time.Now()
		const reps = 5
		for i := 0; i < reps; i++ {
			if _, err := repo.GetMeta(ctx, newest); err != nil {
				return nil, err
			}
			if _, err := loadVerticesVia(ctx, repo, meta, all); err != nil {
				return nil, err
			}
		}
		ownerSec := time.Since(t0).Seconds() / reps

		// (b) Chain walk: resolve every vertex by walking owners newest →
		// oldest via one metadata+read round per distinct lineage step.
		t0 = time.Now()
		for i := 0; i < reps; i++ {
			if err := chainWalkLoad(ctx, repo, newest); err != nil {
				return nil, err
			}
		}
		chainSec := time.Since(t0).Seconds() / reps
		repo.Close()
		cleanup()

		rows = append(rows, AblationOwnerMapRow{
			Depth: depth, OwnerMapSec: ownerSec, ChainWalkSec: chainSec,
			Speedup: chainSec / ownerSec,
		})
	}
	return rows, nil
}

// ablationRTT is the emulated fabric round-trip applied to every RPC in
// the transport-sensitive ablations; loopback RTTs (~20µs) are far below
// any deployed network and would hide the effects being measured.
const ablationRTT = 150 * time.Microsecond

// newTCPRepo builds a deployment whose providers listen on real TCP
// loopback sockets with an emulated fabric RTT, so RPC round trips carry
// a realistic cost (the in-process transport would hide exactly what
// these ablations measure).
func newTCPRepo(providers int) (*core.Repository, func(), error) {
	var closers []func()
	conns := make([]rpc.Conn, providers)
	for i := 0; i < providers; i++ {
		p := provider.New(i, kvstore.NewMemKV(8))
		srv := rpc.NewServer()
		p.Register(srv)
		lis, addr, err := rpc.ListenAndServeTCP("127.0.0.1:0", srv)
		if err != nil {
			for _, c := range closers {
				c()
			}
			return nil, nil, err
		}
		pool := rpc.NewPool(addr, 8, rpc.DialTCP)
		closers = append(closers, func() { pool.Close(); lis.Close() })
		conns[i] = rpc.WithLatency(pool, ablationRTT)
	}
	// These ablations time repeated reads of the same model over the wire;
	// the client's read-through segment cache would absorb every rep after
	// the first and measure lookups instead of transport.
	repo := core.Attach(conns, client.WithSegCacheBytes(-1))
	return repo, func() {
		for _, c := range closers {
			c()
		}
	}, nil
}

// chainWalkLoad emulates lineage-walk reconstruction: per lineage step one
// sequential metadata fetch plus a read of the tensors that step owns.
func chainWalkLoad(ctx context.Context, repo *core.Repository, id core.ModelID) error {
	meta, err := repo.GetMeta(ctx, id)
	if err != nil {
		return err
	}
	// Owners ordered newest-first: each step simulates "examine one
	// incremental write in the chain".
	groups := meta.OwnerMap.Owners()
	for i := len(groups) - 1; i >= 0; i-- {
		g := groups[i]
		// Sequential metadata fetch for this ancestor (skipping retired
		// metadata is not possible in a real chain walk, so fall back to
		// the newest model's meta when the ancestor is gone).
		stepMeta := meta
		if m, err := repo.GetMeta(ctx, core.ModelID(g.Owner)); err == nil {
			stepMeta = m
		}
		// Read exactly the vertices this step contributed.
		if _, err := loadVerticesVia(ctx, repo, stepMeta, g.Vertices); err != nil {
			return err
		}
	}
	return nil
}

// --- Ablation 2: leaf-level vs coarse (cell-level) dedup granularity ----------

// AblationGranularityRow compares LCP length and shared bytes when
// matching at leaf-layer granularity versus treating each cell (submodel)
// as an opaque unit — the §4.2 argument, quantified.
type AblationGranularityRow struct {
	Pairs           int
	LeafLCPBytes    int64
	CoarseLCPBytes  int64
	LeafLCPVertices int
	BytesGain       float64
}

// RunAblationGranularity samples mutation pairs from the NAS space and
// compares prefixes computed on the flattened leaf graphs vs on collapsed
// graphs with one vertex per cell.
func RunAblationGranularity(pairs int, seed int64) (*AblationGranularityRow, error) {
	if pairs <= 0 {
		pairs = 200
	}
	space := nas.NewSpace(16, 8, 16)
	r := rand.New(rand.NewSource(seed))
	row := &AblationGranularityRow{Pairs: pairs}
	for i := 0; i < pairs; i++ {
		parent := space.Random(r)
		child := space.Mutate(r, parent)
		fp, err := space.Decode(parent)
		if err != nil {
			return nil, err
		}
		fc, err := space.Decode(child)
		if err != nil {
			return nil, err
		}
		leafPrefix := graph.LCP(fc.Graph, fp.Graph)
		row.LeafLCPBytes += graph.PrefixParamBytes(fc.Graph, leafPrefix)
		row.LeafLCPVertices += len(leafPrefix)

		// Coarse: one vertex per cell, configuration = the op choice.
		cp := cellChain(parent, fp)
		cc := cellChain(child, fc)
		coarsePrefix := graph.LCP(cc, cp)
		row.CoarseLCPBytes += graph.PrefixParamBytes(cc, coarsePrefix)
	}
	if row.CoarseLCPBytes > 0 {
		row.BytesGain = float64(row.LeafLCPBytes) / float64(row.CoarseLCPBytes)
	}
	return row, nil
}

// cellChain collapses a decoded candidate into one vertex per sequence
// position (plus input/head), crediting each cell with its parameter
// bytes.
func cellChain(seq nas.Sequence, f *model.Flat) *graph.Compact {
	b := graph.NewBuilder(len(seq) + 2)
	b.AddVertex(graph.Vertex{ConfigSig: 0xfeed})
	perCell := f.TotalParamBytes() / int64(len(seq)+1)
	for i, c := range seq {
		b.AddVertex(graph.Vertex{ConfigSig: 0x1000 + uint64(c), ParamBytes: perCell})
		b.AddEdge(graph.VertexID(i), graph.VertexID(i+1))
	}
	b.AddVertex(graph.Vertex{ConfigSig: 0xd34d, ParamBytes: perCell})
	b.AddEdge(graph.VertexID(len(seq)), graph.VertexID(len(seq)+1))
	return b.Build()
}

// --- Ablation 3: consolidated vs per-tensor reads ------------------------------

// AblationConsolidationRow compares reading a model with one bulk read per
// owner group (EvoStore's consolidation) versus one RPC per vertex.
type AblationConsolidationRow struct {
	Layers       int
	GroupedSec   float64
	PerVertexSec float64
	Speedup      float64
}

// RunAblationConsolidation measures both read paths against a real
// in-process deployment.
func RunAblationConsolidation(layers int, layerBytes int64) (*AblationConsolidationRow, error) {
	if layers <= 0 {
		layers = 100
	}
	if layerBytes <= 0 {
		layerBytes = 64 << 10
	}
	repo, cleanup, err := newTCPRepo(4)
	if err != nil {
		return nil, err
	}
	defer cleanup()
	defer repo.Close()
	ctx := context.Background()
	f, err := archgen.Uniform(archgen.UniformOptions{TotalBytes: layerBytes * int64(layers), Layers: layers})
	if err != nil {
		return nil, err
	}
	id, err := repo.Store(ctx, f, model.Materialize(f, 1), 0.5)
	if err != nil {
		return nil, err
	}
	meta, err := repo.GetMeta(ctx, id)
	if err != nil {
		return nil, err
	}
	all := make([]graph.VertexID, f.Graph.NumVertices())
	for v := range all {
		all[v] = graph.VertexID(v)
	}

	const reps = 10
	t0 := time.Now()
	for i := 0; i < reps; i++ {
		if _, err := loadVerticesVia(ctx, repo, meta, all); err != nil {
			return nil, err
		}
	}
	grouped := time.Since(t0).Seconds() / reps

	t0 = time.Now()
	for i := 0; i < reps; i++ {
		for _, v := range all {
			if _, err := loadVerticesVia(ctx, repo, meta, []graph.VertexID{v}); err != nil {
				return nil, err
			}
		}
	}
	perVertex := time.Since(t0).Seconds() / reps

	return &AblationConsolidationRow{
		Layers: layers, GroupedSec: grouped, PerVertexSec: perVertex,
		Speedup: perVertex / grouped,
	}, nil
}

// --- Ablation 4: collective vs client-side queries ------------------------------

// AblationCollectiveRow compares the provider-side broadcast/reduce LCP
// query with a client that iterates the catalog itself (fetch every
// metadata entry, compute LCP locally).
type AblationCollectiveRow struct {
	Catalog       int
	CollectiveSec float64
	IterativeSec  float64
	Speedup       float64
}

// RunAblationCollective measures both query strategies over a real
// deployment with the given catalog size.
func RunAblationCollective(catalogSize int, seed int64) (*AblationCollectiveRow, error) {
	if catalogSize <= 0 {
		catalogSize = 500
	}
	repo, err := core.Open(core.Options{Providers: 8})
	if err != nil {
		return nil, err
	}
	defer repo.Close()
	ctx := context.Background()
	catalog, err := archgen.Catalog(seed, catalogSize, archgen.SpaceOptions{Width: 8})
	if err != nil {
		return nil, err
	}
	for _, f := range catalog {
		// Metadata-dominated population: small real tensors (Width 8).
		if _, err := repo.Store(ctx, f, fakeWeights(f), 0.5); err != nil {
			return nil, err
		}
	}
	query := catalog[0]

	const reps = 20
	t0 := time.Now()
	for i := 0; i < reps; i++ {
		if _, _, err := repo.BestAncestor(ctx, query); err != nil {
			return nil, err
		}
	}
	collective := time.Since(t0).Seconds() / reps

	t0 = time.Now()
	for i := 0; i < reps; i++ {
		if err := iterativeQuery(ctx, repo, query); err != nil {
			return nil, err
		}
	}
	iterative := time.Since(t0).Seconds() / reps

	return &AblationCollectiveRow{
		Catalog: catalogSize, CollectiveSec: collective, IterativeSec: iterative,
		Speedup: iterative / collective,
	}, nil
}

// iterativeQuery is the naive strategy §4.1 rejects: pull every model's
// metadata to the client and scan locally.
func iterativeQuery(ctx context.Context, repo *core.Repository, f *model.Flat) error {
	ids, err := repo.ListModels(ctx)
	if err != nil {
		return err
	}
	scanner := graph.NewLCPScanner(f.Graph)
	best := 0
	for _, id := range ids {
		meta, err := repo.GetMeta(ctx, id)
		if err != nil {
			return err
		}
		if n := scanner.SizeAgainst(meta.Graph); n > best {
			best = n
		}
	}
	return nil
}

// --- shared helpers ---------------------------------------------------------------

// fakeWeights materializes minimal-size tensors for metadata-dominated
// experiments (1 element per spec would break spec validation, so real
// shapes are kept; archgen Width is chosen small by callers).
func fakeWeights(f *model.Flat) model.WeightSet {
	return model.Materialize(f, 0)
}

// loadVerticesVia adapts core.Repository to raw vertex reads (the
// Repository's Load always reads everything; ablations need finer control).
func loadVerticesVia(ctx context.Context, repo *core.Repository, meta *proto.ModelMeta, vs []graph.VertexID) ([][]byte, error) {
	segs, err := repo.LoadVertices(ctx, meta, vs)
	if err != nil {
		return nil, err
	}
	// Touch the payloads so the copy cost is realized as it would be by a
	// consumer decoding tensors.
	for _, v := range vs {
		if segs[v] != nil {
			if _, err := tensor.DecodeSet(segs[v]); err != nil {
				return nil, err
			}
		}
	}
	return segs, nil
}
