package expr

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/archgen"
	"repro/internal/client"
	"repro/internal/kvstore"
	"repro/internal/model"
	"repro/internal/ownermap"
	"repro/internal/pfs"
	"repro/internal/proto"
	"repro/internal/provider"
	"repro/internal/redisq"
	"repro/internal/rpc"
)

// Fig5Row is one point of Figure 5: LCP query throughput for one approach
// at one concurrency level.
type Fig5Row struct {
	Workers     int
	Approach    string // "EvoStore" or "Redis-Queries"
	QueriesPerS float64
	TotalSec    float64
}

// Fig5Config parameterizes the metadata-query strong-scaling experiment.
// Both systems execute the identical workload for real (no simulation):
// a catalog of generated architectures, a fixed total number of LCP
// queries split evenly over W concurrent workers.
//
// The paper runs 60k catalog entries and 10k queries on 512 GPUs; the
// defaults are scaled to laptop time (the strong-scaling shape — EvoStore
// flat, Redis-Queries collapsing — is visible from a few hundred entries).
// Pass the paper's numbers for a full-scale run.
type Fig5Config struct {
	CatalogSize int
	Queries     int
	Workers     []int
	Providers   int
	Seed        int64
	// SkipRedisAbove skips the Redis-Queries measurement at worker counts
	// above this bound (the paper marks Redis-Queries "does not scale
	// beyond 32" with an asterisk). 0 = never skip.
	SkipRedisAbove int
}

func (c *Fig5Config) setDefaults() {
	if c.CatalogSize <= 0 {
		c.CatalogSize = 2000
	}
	if c.Queries <= 0 {
		c.Queries = 200
	}
	if len(c.Workers) == 0 {
		c.Workers = []int{1, 8, 32, 64, 128, 256, 512}
	}
	if c.Providers <= 0 {
		c.Providers = 8
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
}

// RunFig5 populates both systems with the same architecture catalog and
// measures query throughput at each concurrency level.
func RunFig5(cfg Fig5Config) ([]Fig5Row, error) {
	cfg.setDefaults()
	catalog, err := archgen.Catalog(cfg.Seed, cfg.CatalogSize, archgen.SpaceOptions{})
	if err != nil {
		return nil, err
	}
	queries, err := archgen.Catalog(cfg.Seed+1, cfg.Queries, archgen.SpaceOptions{})
	if err != nil {
		return nil, err
	}

	// --- EvoStore: catalog spread over providers, collective queries. ---
	net := rpc.NewInprocNet()
	conns := make([]rpc.Conn, cfg.Providers)
	provs := make([]*provider.Provider, cfg.Providers)
	for i := range provs {
		provs[i] = provider.New(i, kvstore.NewMemKV(4))
		srv := rpc.NewServer()
		provs[i].Register(srv)
		addr := fmt.Sprintf("p%d", i)
		if err := net.Listen(addr, srv); err != nil {
			return nil, err
		}
		if conns[i], err = net.Dial(addr); err != nil {
			return nil, err
		}
	}
	for i, f := range catalog {
		id := ownermap.ModelID(i + 1)
		req := &proto.StoreModelReq{
			Model: id, Seq: uint64(i + 1), Quality: float64(i%100) / 100,
			Graph:    f.Graph,
			OwnerMap: ownermap.New(id, uint64(i+1), f.Graph.NumVertices()),
		}
		// Metadata-only population, as in the paper ("the actual DL model
		// tensors are not stored").
		if err := provs[int(uint64(id))%cfg.Providers].StoreModel(req, nil); err != nil {
			return nil, err
		}
	}

	// --- Redis-Queries: same catalog as JSON in the central server. ---
	redisSrv := rpc.NewServer()
	redisq.NewServer().Register(redisSrv)
	if err := net.Listen("redis", redisSrv); err != nil {
		return nil, err
	}
	seedConn, err := net.Dial("redis")
	if err != nil {
		return nil, err
	}
	seedCli := redisq.NewClient(seedConn)
	redisRepo := redisq.NewRepo(seedCli, pfs.New(pfs.Options{MDTLatency: time.Microsecond}))
	ctx := context.Background()
	for i, f := range catalog {
		// Weights are not stored: populate metadata directly with an empty
		// weight set (zero-parameter writes are instant on the PFS side).
		if err := redisRepo.AddArchitecture(ctx, f, float64(i%100)/100); err != nil {
			return nil, err
		}
	}

	var rows []Fig5Row
	for _, workers := range cfg.Workers {
		// EvoStore measurement: each worker drives its own client.
		sec, err := fig5RunEvoStore(net, cfg, workers, queries)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig5Row{
			Workers: workers, Approach: "EvoStore",
			QueriesPerS: float64(cfg.Queries) / sec, TotalSec: sec,
		})

		if cfg.SkipRedisAbove > 0 && workers > cfg.SkipRedisAbove {
			continue
		}
		sec, err = fig5RunRedis(net, cfg, workers, queries)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig5Row{
			Workers: workers, Approach: "Redis-Queries",
			QueriesPerS: float64(cfg.Queries) / sec, TotalSec: sec,
		})
	}
	return rows, nil
}

func fig5RunEvoStore(net *rpc.InprocNet, cfg Fig5Config, workers int, queries []*model.Flat) (float64, error) {
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make([]error, workers)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			conns := make([]rpc.Conn, cfg.Providers)
			for i := range conns {
				c, err := net.Dial(fmt.Sprintf("p%d", i))
				if err != nil {
					errs[w] = err
					return
				}
				conns[i] = c
			}
			cli := client.New(conns)
			for q := w; q < len(queries); q += workers {
				if _, _, err := cli.QueryLCP(ctx, queries[q].Graph, nil); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return time.Since(start).Seconds(), nil
}

func fig5RunRedis(net *rpc.InprocNet, cfg Fig5Config, workers int, queries []*model.Flat) (float64, error) {
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make([]error, workers)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			conn, err := net.Dial("redis")
			if err != nil {
				errs[w] = err
				return
			}
			repo := redisq.NewRepo(redisq.NewClient(conn), pfs.New(pfs.Options{MDTLatency: time.Microsecond}))
			for q := w; q < len(queries); q += workers {
				res, found, err := repo.QueryLCP(ctx, queries[q].Graph)
				if err != nil {
					errs[w] = err
					return
				}
				if found {
					// Drop the pin the query protocol takes on the winner.
					if err := repo.Release(ctx, res); err != nil {
						errs[w] = err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return time.Since(start).Seconds(), nil
}
