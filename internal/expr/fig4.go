// Package expr contains one harness per figure of the paper's evaluation
// (§5.4–5.6) plus the ablation benchmarks called out in DESIGN.md. Each
// harness returns typed rows; cmd/evostore-bench prints them as the tables
// behind the figures, and bench_test.go exposes them as testing.B targets.
package expr

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/archgen"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/hdf5"
	"repro/internal/model"
	"repro/internal/pfs"
	"repro/internal/simnet"
)

// Fig4Row is one bar of Figure 4: aggregate write bandwidth (normalized to
// the full model size) for one approach at one scale and modified-fraction.
type Fig4Row struct {
	GPUs      int
	Approach  string // "EvoStore" or "HDF5+PFS"
	Fraction  float64
	AggGBps   float64
	PerGPUSec float64 // mean seconds per (normalized) model write
}

// Fig4Config parameterizes the incremental-storage experiment. The
// defaults reproduce the paper's setup at virtual scale: 4 GB models of
// 100 evenly sized layers, 8→256 GPUs, fractions 25/50/75/100%.
type Fig4Config struct {
	GPUs       []int
	Fractions  []float64
	ModelBytes int64
	Layers     int

	// Virtual selects the simnet-based paper-scale run; otherwise the
	// experiment runs for real against an in-process deployment (use
	// laptop-scale GPUs/ModelBytes).
	Virtual bool

	// Virtual-mode fabric constants.
	GPUsPerNode int
	NodeNICBw   float64 // bytes/s
	ProviderBw  float64 // bytes/s (one provider per node)
	SerializeBw float64 // HDF5 worker-side serialization throughput
	PFS         pfs.Options
}

func (c *Fig4Config) setDefaults() {
	if len(c.GPUs) == 0 {
		c.GPUs = []int{8, 16, 32, 64, 128, 256}
	}
	if len(c.Fractions) == 0 {
		c.Fractions = []float64{0.25, 0.5, 0.75, 1.0}
	}
	if c.ModelBytes <= 0 {
		c.ModelBytes = 4 << 30
	}
	if c.Layers <= 0 {
		c.Layers = 100
	}
	if c.GPUsPerNode <= 0 {
		c.GPUsPerNode = 4
	}
	if c.NodeNICBw <= 0 {
		c.NodeNICBw = 12.5e9
	}
	if c.ProviderBw <= 0 {
		c.ProviderBw = 10e9
	}
	if c.SerializeBw <= 0 {
		c.SerializeBw = 8e9
	}
	if c.PFS.OSTs == 0 {
		c.PFS = pfs.Options{OSTs: 150, OSTBandwidth: 650e9 / 150, StripeCount: 4, StripeSize: 1 << 20}
	}
}

// RunFig4 runs the experiment and returns one row per (approach, scale,
// fraction) — HDF5+PFS only at fraction 1.0, as in the paper.
func RunFig4(cfg Fig4Config) ([]Fig4Row, error) {
	if !cfg.Virtual && cfg.PFS.OSTs == 0 {
		// Wall-clock mode runs at laptop scale: a Polaris-size PFS would
		// be effectively free and hide the baseline's I/O cost entirely.
		cfg.PFS = pfs.Options{OSTs: 8, OSTBandwidth: 300e6, StripeCount: 4, StripeSize: 1 << 20}
	}
	cfg.setDefaults()
	var rows []Fig4Row
	for _, gpus := range cfg.GPUs {
		for _, f := range cfg.Fractions {
			var sec float64
			var err error
			if cfg.Virtual {
				sec = fig4VirtualEvoStore(cfg, gpus, f)
			} else {
				sec, err = fig4RealEvoStore(cfg, gpus, f)
				if err != nil {
					return nil, err
				}
			}
			rows = append(rows, Fig4Row{
				GPUs: gpus, Approach: "EvoStore", Fraction: f,
				AggGBps:   float64(gpus) * float64(cfg.ModelBytes) / sec / 1e9,
				PerGPUSec: sec,
			})
		}
		var sec float64
		var err error
		if cfg.Virtual {
			sec = fig4VirtualHDF5(cfg, gpus)
		} else {
			sec, err = fig4RealHDF5(cfg, gpus)
			if err != nil {
				return nil, err
			}
		}
		rows = append(rows, Fig4Row{
			GPUs: gpus, Approach: "HDF5+PFS", Fraction: 1.0,
			AggGBps:   float64(gpus) * float64(cfg.ModelBytes) / sec / 1e9,
			PerGPUSec: sec,
		})
	}
	return rows, nil
}

// fig4VirtualEvoStore models the concurrent partial writes on simnet and
// returns the mean per-worker completion time.
func fig4VirtualEvoStore(cfg Fig4Config, gpus int, fraction float64) float64 {
	net := simnet.New()
	nodes := (gpus + cfg.GPUsPerNode - 1) / cfg.GPUsPerNode
	nics := make([]*simnet.Resource, nodes)
	provs := make([]*simnet.Resource, nodes)
	for n := 0; n < nodes; n++ {
		nics[n] = net.AddResource(fmt.Sprintf("nic%d", n), cfg.NodeNICBw)
		provs[n] = net.AddResource(fmt.Sprintf("prov%d", n), cfg.ProviderBw)
	}
	bytes := fraction * float64(cfg.ModelBytes)
	var total float64
	done := 0
	for w := 0; w < gpus; w++ {
		nic := nics[w/cfg.GPUsPerNode]
		prov := provs[w%nodes] // static hash spreads models over providers
		net.StartFlow(bytes, []*simnet.Resource{nic, prov}, func(now float64) {
			total += now
			done++
		})
	}
	net.Run()
	if done == 0 {
		return 0
	}
	return total / float64(done)
}

// fig4VirtualHDF5 models whole-model serialization plus a striped PFS
// write per worker.
func fig4VirtualHDF5(cfg Fig4Config, gpus int) float64 {
	net := simnet.New()
	fsim := pfs.NewSim(net, cfg.PFS)
	nodes := (gpus + cfg.GPUsPerNode - 1) / cfg.GPUsPerNode
	nics := make([]*simnet.Resource, nodes)
	for n := 0; n < nodes; n++ {
		nics[n] = net.AddResource(fmt.Sprintf("nic%d", n), cfg.NodeNICBw)
	}
	serialize := float64(cfg.ModelBytes) / cfg.SerializeBw
	var total float64
	done := 0
	for w := 0; w < gpus; w++ {
		nic := nics[w/cfg.GPUsPerNode]
		name := fmt.Sprintf("w%d.h5", w)
		net.At(serialize, func(now float64) {
			fsim.TransferVia(name, cfg.ModelBytes, []*simnet.Resource{nic}, func(now float64) {
				total += now
				done++
			})
		})
	}
	net.Run()
	if done == 0 {
		return 0
	}
	return total / float64(done)
}

// fig4RealEvoStore measures actual derived-model stores against an
// in-process deployment: each worker owns a base model and writes a
// derived model with the given fraction of layers modified.
func fig4RealEvoStore(cfg Fig4Config, gpus int, fraction float64) (float64, error) {
	providers := (gpus + cfg.GPUsPerNode - 1) / cfg.GPUsPerNode
	repo, err := core.Open(core.Options{Providers: providers})
	if err != nil {
		return 0, err
	}
	defer repo.Close()
	ctx := context.Background()

	type prep struct {
		flat *model.Flat
		ws   model.WeightSet
		anc  *core.Ancestor
	}
	preps := make([]prep, gpus)
	for w := 0; w < gpus; w++ {
		// SharedFraction=1-fraction relative to the base: the derived model
		// keeps (1-fraction) of the layers frozen.
		base, err := archgen.Uniform(archgen.UniformOptions{
			TotalBytes: cfg.ModelBytes, Layers: cfg.Layers,
			Variant: uint64(w), SharedFraction: 0,
		})
		if err != nil {
			return 0, err
		}
		ws := model.Materialize(base, uint64(w))
		if _, err := repo.Store(ctx, base, ws, 0.5); err != nil {
			return 0, err
		}
		anc, found, err := repo.BestAncestor(ctx, base)
		if err != nil || !found {
			return 0, fmt.Errorf("expr: fig4: base model not found (%v)", err)
		}
		ws2 := ws.Clone()
		if err := repo.TransferPrefix(ctx, base, ws2, anc); err != nil {
			return 0, err
		}
		// "Train" the last fraction of the layers; the automatic diff in
		// StoreDerived detects exactly these as modified.
		n := base.Graph.NumVertices()
		modified := int(fraction * float64(cfg.Layers))
		for v := n - modified; v < n; v++ {
			ws2.PerturbVertex(graph.VertexID(v), uint64(w)+1)
		}
		preps[w] = prep{flat: base, ws: ws2, anc: anc}
	}

	// Barrier, then concurrent derived writes (the measured phase).
	var wg sync.WaitGroup
	var mu sync.Mutex
	var totalSec float64
	var firstErr error
	startBarrier := make(chan struct{})
	for w := 0; w < gpus; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-startBarrier
			t0 := time.Now()
			_, err := repo.StoreDerived(ctx, preps[w].flat, preps[w].ws, 0.6, preps[w].anc, nil)
			sec := time.Since(t0).Seconds()
			mu.Lock()
			if err != nil && firstErr == nil {
				firstErr = err
			}
			totalSec += sec
			mu.Unlock()
		}(w)
	}
	close(startBarrier)
	wg.Wait()
	if firstErr != nil {
		return 0, firstErr
	}
	return totalSec / float64(gpus), nil
}

// fig4RealHDF5 measures whole-model HDF5 serialization + simulated-PFS
// writes under concurrency.
func fig4RealHDF5(cfg Fig4Config, gpus int) (float64, error) {
	fs := pfs.New(cfg.PFS)
	flats := make([]*model.Flat, gpus)
	weights := make([]model.WeightSet, gpus)
	for w := 0; w < gpus; w++ {
		f, err := archgen.Uniform(archgen.UniformOptions{
			TotalBytes: cfg.ModelBytes, Layers: cfg.Layers, Variant: uint64(w),
		})
		if err != nil {
			return 0, err
		}
		flats[w] = f
		weights[w] = model.Materialize(f, uint64(w))
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var totalSec float64
	var firstErr error
	startBarrier := make(chan struct{})
	for w := 0; w < gpus; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-startBarrier
			t0 := time.Now()
			payload := hdf5.Encode(hdf5.SaveModel(fmt.Sprintf("m%d", w), flats[w], weights[w]))
			err := fs.Write(fmt.Sprintf("m%d.h5", w), payload)
			sec := time.Since(t0).Seconds()
			mu.Lock()
			if err != nil && firstErr == nil {
				firstErr = err
			}
			totalSec += sec
			mu.Unlock()
		}(w)
	}
	close(startBarrier)
	wg.Wait()
	if firstErr != nil {
		return 0, firstErr
	}
	return totalSec / float64(gpus), nil
}
