package expr

import (
	"strings"
	"testing"

	"repro/internal/nas"
)

// testNAS is a scaled-down NAS config (seconds, not paper scale).
func testNAS() NASConfig {
	return NASConfig{
		Budget:     150,
		Population: 30,
		Sample:     5,
		Space:      nas.NewSpace(12, 8, 0), // default (paper-scale) width
		Seed:       3,
		Retire:     true,
		// 16-worker test runs need the baseline's relative overheads scaled
		// up to match what 128-256 workers produce through contention.
		HDF5CostScale: 30,
	}
}

func findRow4(rows []Fig4Row, gpus int, approach string, fraction float64) *Fig4Row {
	for i := range rows {
		r := &rows[i]
		if r.GPUs == gpus && r.Approach == approach && r.Fraction == fraction {
			return r
		}
	}
	return nil
}

// TestFig4VirtualShape checks the Figure 4 claims on the virtual run:
// near-linear weak scaling, ≈25% advantage on full writes, and several-fold
// advantage at 25% modified tensors.
func TestFig4VirtualShape(t *testing.T) {
	rows, err := RunFig4(Fig4Config{
		Virtual: true,
		GPUs:    []int{8, 64, 256},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, gpus := range []int{8, 64, 256} {
		evoFull := findRow4(rows, gpus, "EvoStore", 1.0)
		evoQuarter := findRow4(rows, gpus, "EvoStore", 0.25)
		h5 := findRow4(rows, gpus, "HDF5+PFS", 1.0)
		if evoFull == nil || evoQuarter == nil || h5 == nil {
			t.Fatalf("missing rows at %d GPUs", gpus)
		}
		fullRatio := evoFull.AggGBps / h5.AggGBps
		if fullRatio < 1.05 || fullRatio > 1.9 {
			t.Errorf("%d GPUs: full-write advantage = %.2fx, want ≈1.25x", gpus, fullRatio)
		}
		quarterRatio := evoQuarter.AggGBps / h5.AggGBps
		if quarterRatio < 2.5 || quarterRatio > 8 {
			t.Errorf("%d GPUs: 25%% advantage = %.2fx, want ≈4-5x", gpus, quarterRatio)
		}
	}
	// Weak scaling: EvoStore full-write bandwidth grows ≈linearly.
	b8 := findRow4(rows, 8, "EvoStore", 1.0).AggGBps
	b256 := findRow4(rows, 256, "EvoStore", 1.0).AggGBps
	if b256 < b8*20 { // 32× more GPUs should give ≥20× aggregate
		t.Errorf("weak scaling broke: 8GPU=%.1f 256GPU=%.1f GB/s", b8, b256)
	}
}

// TestFig4RealSmall runs the wall-clock variant at laptop scale and checks
// the incremental-writes-are-faster ordering.
func TestFig4RealSmall(t *testing.T) {
	rows, err := RunFig4(Fig4Config{
		GPUs:       []int{4},
		Fractions:  []float64{0.25, 1.0},
		ModelBytes: 8 << 20,
		Layers:     20,
	})
	if err != nil {
		t.Fatal(err)
	}
	evoQuarter := findRow4(rows, 4, "EvoStore", 0.25)
	evoFull := findRow4(rows, 4, "EvoStore", 1.0)
	if evoQuarter == nil || evoFull == nil {
		t.Fatal("missing rows")
	}
	if evoQuarter.PerGPUSec >= evoFull.PerGPUSec {
		t.Errorf("25%% write (%.4fs) not faster than full write (%.4fs)",
			evoQuarter.PerGPUSec, evoFull.PerGPUSec)
	}
}

// TestFig5Shape checks strong-scaling of query processing at reduced size:
// EvoStore faster than Redis-Queries at 1 worker and scaling much better.
func TestFig5Shape(t *testing.T) {
	rows, err := RunFig5(Fig5Config{
		CatalogSize: 300,
		Queries:     60,
		Workers:     []int{1, 8, 32},
		Providers:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	get := func(workers int, approach string) *Fig5Row {
		for i := range rows {
			if rows[i].Workers == workers && rows[i].Approach == approach {
				return &rows[i]
			}
		}
		t.Fatalf("missing row %d/%s", workers, approach)
		return nil
	}
	evo1 := get(1, "EvoStore")
	redis1 := get(1, "Redis-Queries")
	if evo1.QueriesPerS <= redis1.QueriesPerS {
		t.Errorf("1 worker: EvoStore %.1f q/s vs Redis %.1f q/s", evo1.QueriesPerS, redis1.QueriesPerS)
	}
	evo32 := get(32, "EvoStore")
	redis32 := get(32, "Redis-Queries")
	// EvoStore keeps (and typically grows) its throughput under
	// concurrency; Redis-Queries must not scale (single serialized
	// server). On a shared-CPU test host both eventually hit the core
	// count, so the assertions are about ordering, not exact ratios.
	if evo32.QueriesPerS < evo1.QueriesPerS*0.3 {
		t.Errorf("EvoStore throughput collapsed under concurrency: 1w=%.1f 32w=%.1f q/s",
			evo1.QueriesPerS, evo32.QueriesPerS)
	}
	if redis32.QueriesPerS > redis1.QueriesPerS*2 {
		t.Errorf("Redis-Queries scaled unexpectedly: 1w=%.1f 32w=%.1f q/s",
			redis1.QueriesPerS, redis32.QueriesPerS)
	}
	if gap := evo32.QueriesPerS / redis32.QueriesPerS; gap < 10 {
		t.Errorf("advantage at 32 workers only %.1fx", gap)
	}
}

func TestFig6Shape(t *testing.T) {
	points, summaries, err := RunFig6(testNAS(), 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2*150 {
		t.Fatalf("points = %d", len(points))
	}
	var evo, plain *Fig6Summary
	for i := range summaries {
		switch summaries[i].Approach {
		case "EvoStore":
			evo = &summaries[i]
		case "DH-NoTransfer":
			plain = &summaries[i]
		}
	}
	if evo == nil || plain == nil {
		t.Fatal("missing summaries")
	}
	if evo.MeanAcc <= plain.MeanAcc {
		t.Errorf("mean accuracy: evo=%.3f plain=%.3f", evo.MeanAcc, plain.MeanAcc)
	}
	if evo.BestAcc <= plain.BestAcc {
		t.Errorf("best accuracy: evo=%.3f plain=%.3f", evo.BestAcc, plain.BestAcc)
	}
	if evo.Makespan >= plain.Makespan {
		t.Errorf("makespan: evo=%.1f plain=%.1f", evo.Makespan, plain.Makespan)
	}
	// Transfer reaches 0.80 earlier (relative to its own makespan).
	if evo.FirstAbove8 < 0 {
		t.Fatal("EvoStore never reached 0.80")
	}
	if plain.FirstAbove8 > 0 &&
		evo.FirstAbove8/evo.Makespan >= plain.FirstAbove8/plain.Makespan {
		t.Errorf("first>0.8: evo %.2f/%.2f vs plain %.2f/%.2f",
			evo.FirstAbove8, evo.Makespan, plain.FirstAbove8, plain.Makespan)
	}
}

func TestFig7Shape(t *testing.T) {
	// Anchor the targets to the baseline's achieved quality so the test is
	// robust to surrogate recalibration: the low target sits just under the
	// baseline's best (both reach it, EvoStore first), the high target just
	// above it (only EvoStore reaches it) — exactly the Figure 7 shape.
	_, summaries, err := RunFig6(testNAS(), 16)
	if err != nil {
		t.Fatal(err)
	}
	var plainBest float64
	for _, s := range summaries {
		if s.Approach == "DH-NoTransfer" {
			plainBest = s.BestAcc
		}
	}
	low := plainBest - 0.015
	high := plainBest + 0.01
	rows, err := RunFig7(testNAS(), []float64{low, high}, []int{16})
	if err != nil {
		t.Fatal(err)
	}
	get := func(approach string, target float64) *Fig7Row {
		for i := range rows {
			if rows[i].Approach == approach && rows[i].Target == target {
				return &rows[i]
			}
		}
		t.Fatalf("missing %s@%v", approach, target)
		return nil
	}
	evo := get("EvoStore", low)
	plain := get("DH-NoTransfer", low)
	if !evo.Reached {
		t.Fatalf("EvoStore missed %.3f", low)
	}
	if plain.Reached && evo.Seconds >= plain.Seconds {
		t.Errorf("time to %.3f: evo=%.1f plain=%.1f", low, evo.Seconds, plain.Seconds)
	}
	// Above the baseline's ceiling only EvoStore keeps finding candidates.
	evoHi := get("EvoStore", high)
	plainHi := get("DH-NoTransfer", high)
	if plainHi.Reached {
		t.Errorf("baseline exceeded its measured best by reaching %.3f", high)
	}
	if !evoHi.Reached {
		t.Errorf("EvoStore missed %.3f", high)
	}
}

func TestFig8Shape(t *testing.T) {
	rows, err := RunFig8(testNAS(), []int{16})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*Fig8Row{}
	for i := range rows {
		byName[rows[i].Approach] = &rows[i]
	}
	evo, plain, h5 := byName["EvoStore"], byName["DH-NoTransfer"], byName["HDF5+PFS"]
	if evo == nil || plain == nil || h5 == nil {
		t.Fatal("missing rows")
	}
	if !(evo.Makespan < h5.Makespan && evo.Makespan < plain.Makespan) {
		t.Errorf("ordering: evo=%.1f plain=%.1f h5=%.1f", evo.Makespan, plain.Makespan, h5.Makespan)
	}
	if evo.RepoOverhead > 0.05 {
		t.Errorf("EvoStore repo overhead = %.3f, want <5%% at this scale", evo.RepoOverhead)
	}
	if h5.RepoOverhead <= evo.RepoOverhead {
		t.Errorf("overheads: h5=%.3f evo=%.3f", h5.RepoOverhead, evo.RepoOverhead)
	}
}

func TestFig9ShapeAndRender(t *testing.T) {
	var sb strings.Builder
	rows, err := RunFig9(testNAS(), 16, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]*Fig9Row{}
	for i := range rows {
		byName[rows[i].Approach] = &rows[i]
	}
	// HDF5 tasks take visibly longer than EvoStore tasks.
	if byName["HDF5+PFS"].MeanTaskSec <= byName["EvoStore"].MeanTaskSec {
		t.Errorf("task means: h5=%.2f evo=%.2f", byName["HDF5+PFS"].MeanTaskSec, byName["EvoStore"].MeanTaskSec)
	}
	// DH-NoTransfer is the waviest.
	if byName["DH-NoTransfer"].WaveScore <= byName["EvoStore"].WaveScore {
		t.Errorf("wave scores: plain=%.2f evo=%.2f", byName["DH-NoTransfer"].WaveScore, byName["EvoStore"].WaveScore)
	}
	if !strings.Contains(sb.String(), "EvoStore") || !strings.Contains(sb.String(), "w000") {
		t.Error("render missing content")
	}
}

func TestFig10Shape(t *testing.T) {
	rows, err := RunFig10(testNAS(), 16)
	if err != nil {
		t.Fatal(err)
	}
	get := func(approach string, retire bool) *Fig10Row {
		for i := range rows {
			if rows[i].Approach == approach && rows[i].Retire == retire {
				return &rows[i]
			}
		}
		t.Fatalf("missing %s retire=%v", approach, retire)
		return nil
	}
	evoNo, evoYes := get("EvoStore", false), get("EvoStore", true)
	h5No, h5Yes := get("HDF5+PFS", false), get("HDF5+PFS", true)
	if evoNo.FinalBytes >= h5No.FinalBytes {
		t.Errorf("no-retire: evo=%d h5=%d", evoNo.FinalBytes, h5No.FinalBytes)
	}
	if evoYes.FinalBytes >= evoNo.FinalBytes {
		t.Errorf("retire did not reduce EvoStore: %d vs %d", evoYes.FinalBytes, evoNo.FinalBytes)
	}
	if evoYes.FinalBytes >= h5Yes.FinalBytes {
		t.Errorf("with-retire: evo=%d h5=%d", evoYes.FinalBytes, h5Yes.FinalBytes)
	}
	if evoNo.PeakBytes < evoNo.FinalBytes {
		t.Error("peak below final")
	}
}

func TestAblationOwnerMap(t *testing.T) {
	rows, err := RunAblationOwnerMap([]int{1, 8}, 4<<10, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	deep := rows[1]
	if deep.Speedup <= 1 {
		t.Errorf("owner map not faster than chain walk at depth 8: %.2fx", deep.Speedup)
	}
}

func TestAblationGranularity(t *testing.T) {
	row, err := RunAblationGranularity(50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if row.LeafLCPBytes < row.CoarseLCPBytes {
		t.Errorf("leaf-level dedup (%d) below coarse (%d)", row.LeafLCPBytes, row.CoarseLCPBytes)
	}
	if row.BytesGain < 1 {
		t.Errorf("BytesGain = %.3f", row.BytesGain)
	}
}

func TestAblationConsolidation(t *testing.T) {
	row, err := RunAblationConsolidation(50, 8<<10)
	if err != nil {
		t.Fatal(err)
	}
	if row.Speedup <= 1 {
		t.Errorf("consolidated reads not faster: %.2fx", row.Speedup)
	}
}

func TestAblationCollective(t *testing.T) {
	row, err := RunAblationCollective(200, 5)
	if err != nil {
		t.Fatal(err)
	}
	if row.Speedup <= 1 {
		t.Errorf("collective query not faster: %.2fx", row.Speedup)
	}
}

// TestZeroCostProxyShape checks the §6 projection: shrinking the training
// effort raises I/O's share of the workflow, more sharply for HDF5+PFS
// than for EvoStore.
func TestZeroCostProxyShape(t *testing.T) {
	rows, err := RunZeroCost(testNAS(), 16, []float64{1.0, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	get := func(approach string, frac float64) *ZeroCostRow {
		for i := range rows {
			if rows[i].Approach == approach && rows[i].EpochFraction == frac {
				return &rows[i]
			}
		}
		t.Fatalf("missing %s@%v", approach, frac)
		return nil
	}
	for _, approach := range []string{"EvoStore", "HDF5+PFS"} {
		full := get(approach, 1.0)
		proxy := get(approach, 0.1)
		if proxy.IOFraction <= full.IOFraction {
			t.Errorf("%s: I/O share did not grow: full=%.4f proxy=%.4f",
				approach, full.IOFraction, proxy.IOFraction)
		}
		if proxy.Makespan >= full.Makespan {
			t.Errorf("%s: proxy regime not faster: %.1f vs %.1f",
				approach, proxy.Makespan, full.Makespan)
		}
	}
	// EvoStore stays cheap even in the proxy regime; the baseline does not.
	if get("EvoStore", 0.1).IOFraction >= get("HDF5+PFS", 0.1).IOFraction {
		t.Errorf("proxy-regime I/O share: evostore=%.4f hdf5=%.4f",
			get("EvoStore", 0.1).IOFraction, get("HDF5+PFS", 0.1).IOFraction)
	}
}

func TestSortFig6(t *testing.T) {
	points := []Fig6Point{{Time: 3}, {Time: 1}, {Time: 2}}
	SortFig6(points)
	if points[0].Time != 1 || points[2].Time != 3 {
		t.Errorf("SortFig6 = %v", points)
	}
}
