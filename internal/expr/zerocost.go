package expr

import (
	"repro/internal/nas"
)

// ZeroCostRow quantifies the paper's §6 projection for zero-cost proxies:
// "With reduced training costs, the percentage of the workflow dominated
// by I/O increases". One row per (approach, epoch fraction).
type ZeroCostRow struct {
	Approach      string
	EpochFraction float64
	Makespan      float64
	IOFraction    float64 // repository I/O share of busy time
	BestAcc       float64
}

// RunZeroCost compares full-epoch superficial training against a zero-cost
// proxy regime for EvoStore and HDF5+PFS.
func RunZeroCost(cfg NASConfig, workers int, fractions []float64) ([]ZeroCostRow, error) {
	cfg.setDefaults()
	if len(fractions) == 0 {
		fractions = []float64{1.0, 0.25, 0.1}
	}
	var rows []ZeroCostRow
	for _, mode := range []nas.StorageMode{nas.ModeEvoStore, nas.ModeHDF5PFS} {
		for _, frac := range fractions {
			sim := cfg.simConfig(mode, workers)
			sim.EpochFraction = frac
			res, err := nas.RunSim(sim)
			if err != nil {
				return nil, err
			}
			ioFrac := 0.0
			if busy := res.IOSeconds + res.TrainSeconds; busy > 0 {
				ioFrac = res.IOSeconds / busy
			}
			rows = append(rows, ZeroCostRow{
				Approach:      mode.String(),
				EpochFraction: frac,
				Makespan:      res.Makespan,
				IOFraction:    ioFrac,
				BestAcc:       res.BestQuality(),
			})
		}
	}
	return rows, nil
}
