package expr

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/nas"
)

// NASConfig parameterizes the end-to-end NAS experiments (Figures 6-9).
// Defaults match the paper: 1000 candidates, population 100, scales 128
// and 256 workers.
type NASConfig struct {
	Budget     int
	Population int
	Sample     int
	Space      *nas.Space
	Seed       int64
	Retire     bool
	// HDF5CostScale multiplies the HDF5+PFS baseline's metadata costs and
	// divides its bandwidths. Scaled-down test runs (few workers, small
	// budgets) use it to preserve the overhead-to-training ratio that
	// paper-scale runs (128-256 workers) produce naturally; full-scale
	// harnesses leave it at 1.
	HDF5CostScale float64
}

func (c *NASConfig) setDefaults() {
	if c.Budget <= 0 {
		c.Budget = 1000
	}
	if c.Population <= 0 {
		c.Population = 100
	}
	if c.Sample <= 0 {
		c.Sample = 10
	}
	if c.Space == nil {
		c.Space = nas.NewSpace(0, 0, 0)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.HDF5CostScale <= 0 {
		c.HDF5CostScale = 1
	}
}

func (c NASConfig) simConfig(mode nas.StorageMode, workers int) nas.SimConfig {
	c.setDefaults()
	cfg := nas.SimConfig{
		Workers:       workers,
		Space:         c.Space,
		Population:    c.Population,
		Sample:        c.Sample,
		Budget:        c.Budget,
		Mode:          mode,
		Retire:        c.Retire,
		SurrogateSeed: c.Seed,
		SearchSeed:    c.Seed + 1,
	}
	if mode == nas.ModeHDF5PFS && c.HDF5CostScale > 1 {
		cfg.RedisOpCost = 3e-3 * c.HDF5CostScale
		cfg.RedisScanPerModel = 400e-6 * c.HDF5CostScale
		cfg.ClientBandwidth = 1.2e9 / c.HDF5CostScale
	}
	return cfg
}

// nasRunCache memoizes simulation runs shared between figure harnesses
// within one process (figures 6-10 reuse the same configurations).
var nasRunCache = map[string]*nas.SimResult{}

func runCached(cfg nas.SimConfig) (*nas.SimResult, error) {
	key := fmt.Sprintf("%v|%d|%d|%d|%d|%v|%d|%d|%d-%d-%d|%g-%g-%g",
		cfg.Mode, cfg.Workers, cfg.Budget, cfg.Population, cfg.Sample,
		cfg.Retire, cfg.SurrogateSeed, cfg.SearchSeed,
		cfg.Space.Positions, cfg.Space.NumOps, cfg.Space.Width,
		cfg.RedisOpCost, cfg.RedisScanPerModel, cfg.ClientBandwidth)
	if res, ok := nasRunCache[key]; ok {
		return res, nil
	}
	res, err := nas.RunSim(cfg)
	if err != nil {
		return nil, err
	}
	nasRunCache[key] = res
	return res, nil
}

// --- Figure 6: accuracy over search time --------------------------------------

// Fig6Point is one evaluated candidate: finish time and accuracy, for one
// approach — the scatter points of Figure 6.
type Fig6Point struct {
	Approach string
	Time     float64
	Accuracy float64
}

// Fig6Summary condenses a run for table output.
type Fig6Summary struct {
	Approach    string
	Makespan    float64
	MeanAcc     float64
	BestAcc     float64
	FirstAbove8 float64 // first time a candidate reached 0.80 (-1 if never)
}

// RunFig6 runs EvoStore vs DH-NoTransfer at the given scale (paper: 256).
func RunFig6(cfg NASConfig, workers int) ([]Fig6Point, []Fig6Summary, error) {
	cfg.setDefaults()
	var points []Fig6Point
	var summaries []Fig6Summary
	for _, mode := range []nas.StorageMode{nas.ModeNoTransfer, nas.ModeEvoStore} {
		res, err := runCached(cfg.simConfig(mode, workers))
		if err != nil {
			return nil, nil, err
		}
		var sum float64
		for _, c := range res.History {
			points = append(points, Fig6Point{Approach: mode.String(), Time: c.Finish, Accuracy: c.Quality})
			sum += c.Quality
		}
		first, ok := res.FirstAbove(0.80)
		if !ok {
			first = -1
		}
		summaries = append(summaries, Fig6Summary{
			Approach:    mode.String(),
			Makespan:    res.Makespan,
			MeanAcc:     sum / float64(len(res.History)),
			BestAcc:     res.BestQuality(),
			FirstAbove8: first,
		})
	}
	return points, summaries, nil
}

// --- Figure 7: time to target accuracy ------------------------------------------

// Fig7Row is one bar of Figure 7.
type Fig7Row struct {
	Approach string
	Workers  int
	Target   float64
	Seconds  float64
	Reached  bool // the paper marks unreached targets with an asterisk
}

// RunFig7 sweeps target accuracies at 128 and 256 workers.
func RunFig7(cfg NASConfig, targets []float64, scales []int) ([]Fig7Row, error) {
	cfg.setDefaults()
	if len(targets) == 0 {
		// The paper sweeps 0.91–0.95 on the ATTN accuracy scale; the
		// surrogate's scale sits slightly lower (see EXPERIMENTS.md), so
		// the default sweep covers the equivalent band: DH-NoTransfer
		// reaches the low targets, stalls mid-band, and EvoStore keeps
		// finding candidates above the top targets.
		targets = []float64{0.80, 0.82, 0.84, 0.86, 0.88, 0.90}
	}
	if len(scales) == 0 {
		scales = []int{128, 256}
	}
	var rows []Fig7Row
	for _, mode := range []nas.StorageMode{nas.ModeNoTransfer, nas.ModeEvoStore} {
		for _, workers := range scales {
			res, err := runCached(cfg.simConfig(mode, workers))
			if err != nil {
				return nil, err
			}
			for _, target := range targets {
				t, ok := res.FirstAbove(target)
				rows = append(rows, Fig7Row{
					Approach: mode.String(), Workers: workers,
					Target: target, Seconds: t, Reached: ok,
				})
			}
		}
	}
	return rows, nil
}

// --- Figure 8: end-to-end runtime -------------------------------------------------

// Fig8Row is one bar of Figure 8.
type Fig8Row struct {
	Approach     string
	Workers      int
	Makespan     float64
	RepoOverhead float64 // fraction of busy time spent on repository I/O
}

// RunFig8 compares all three approaches at the given scales.
func RunFig8(cfg NASConfig, scales []int) ([]Fig8Row, error) {
	cfg.setDefaults()
	if len(scales) == 0 {
		scales = []int{128, 256}
	}
	var rows []Fig8Row
	for _, mode := range []nas.StorageMode{nas.ModeNoTransfer, nas.ModeEvoStore, nas.ModeHDF5PFS} {
		for _, workers := range scales {
			res, err := runCached(cfg.simConfig(mode, workers))
			if err != nil {
				return nil, err
			}
			overhead := 0.0
			if busy := res.IOSeconds + res.TrainSeconds; busy > 0 {
				overhead = res.IOSeconds / busy
			}
			rows = append(rows, Fig8Row{
				Approach: mode.String(), Workers: workers,
				Makespan: res.Makespan, RepoOverhead: overhead,
			})
		}
	}
	return rows, nil
}

// --- Figure 9: task timelines -------------------------------------------------------

// Fig9Row summarizes one approach's task pattern at 128 workers.
type Fig9Row struct {
	Approach    string
	Tasks       int
	MeanTaskSec float64
	StdTaskSec  float64
	WaveScore   float64
	MakespanSec float64
}

// RunFig9 produces the per-approach task statistics and, when w is
// non-nil, renders each timeline as ASCII art (the stand-in for the
// scatter plot). Use RunFig9SVG for graphical output.
func RunFig9(cfg NASConfig, workers int, w io.Writer) ([]Fig9Row, error) {
	cfg.setDefaults()
	var rows []Fig9Row
	for _, mode := range []nas.StorageMode{nas.ModeNoTransfer, nas.ModeEvoStore, nas.ModeHDF5PFS} {
		res, err := runCached(cfg.simConfig(mode, workers))
		if err != nil {
			return nil, err
		}
		mean, std := res.Trace.DurationStats()
		rows = append(rows, Fig9Row{
			Approach:    mode.String(),
			Tasks:       res.Trace.Len(),
			MeanTaskSec: mean,
			StdTaskSec:  std,
			WaveScore:   res.Trace.WaveScore(),
			MakespanSec: res.Makespan,
		})
		if w != nil {
			fmt.Fprintf(w, "\n--- %s (%d workers) ---\n", mode, workers)
			renderWorkers := workers
			if renderWorkers > 32 {
				renderWorkers = 32 // keep the plot readable
			}
			res.Trace.RenderASCII(w, renderWorkers, 100)
		}
	}
	return rows, nil
}

// RunFig9SVG renders one approach's timeline as SVG (bars colored by
// candidate accuracy), the graphical counterpart of the paper's Figure 9.
func RunFig9SVG(cfg NASConfig, mode nas.StorageMode, workers int, w io.Writer) error {
	cfg.setDefaults()
	res, err := runCached(cfg.simConfig(mode, workers))
	if err != nil {
		return err
	}
	title := fmt.Sprintf("%s — %d workers, %d candidates", mode, workers, cfg.Budget)
	return res.Trace.RenderSVG(w, workers, title)
}

// StrategyRow compares search strategies (§2: guided evolution vs uniform
// random sampling) on identical budgets over the EvoStore repository.
type StrategyRow struct {
	Strategy string
	BestAcc  float64
	MeanAcc  float64
	Makespan float64
}

// RunStrategies measures aged evolution against random search.
func RunStrategies(cfg NASConfig, workers int) ([]StrategyRow, error) {
	cfg.setDefaults()
	var rows []StrategyRow
	for _, random := range []bool{false, true} {
		sim := cfg.simConfig(nas.ModeEvoStore, workers)
		sim.RandomSearch = random
		res, err := nas.RunSim(sim)
		if err != nil {
			return nil, err
		}
		name := "aged-evolution"
		if random {
			name = "random-search"
		}
		var sum float64
		for _, c := range res.History {
			sum += c.Quality
		}
		rows = append(rows, StrategyRow{
			Strategy: name,
			BestAcc:  res.BestQuality(),
			MeanAcc:  sum / float64(len(res.History)),
			Makespan: res.Makespan,
		})
	}
	return rows, nil
}

// SortFig6 orders points by time for plotting.
func SortFig6(points []Fig6Point) {
	sort.Slice(points, func(i, j int) bool { return points[i].Time < points[j].Time })
}
