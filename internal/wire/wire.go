// Package wire provides tiny helpers for encoding and decoding the small
// control payloads (rpc.Message.Meta) exchanged between EvoStore clients
// and providers. All integers are little-endian.
//
// Paper counterpart: the metadata halves of the Mercury RPC payloads
// (paper §4.2) — the fixed-layout structs that ride alongside the bulk
// tensor transfers.
//
// Contracts: Writer and Reader are single-use, not safe for concurrent
// use, and allocation-light by design. Every decode failure surfaces as
// ErrTruncated; a Reader sticks at its first error so callers may check
// Err once at the end. Formats evolve by appending optional trailers
// (see proto): decoders tolerate a completely absent trailer but must
// reject a torn one, so corruption is never silently read as defaults.
package wire

import (
	"encoding/binary"
	"errors"
	"math"
)

// ErrTruncated is returned when a reader runs out of bytes.
var ErrTruncated = errors.New("wire: truncated payload")

// Writer accumulates an encoded payload.
type Writer struct{ buf []byte }

// NewWriter returns a writer with the given capacity hint.
func NewWriter(capHint int) *Writer { return &Writer{buf: make([]byte, 0, capHint)} }

// Bytes returns the encoded payload.
func (w *Writer) Bytes() []byte { return w.buf }

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// U32 appends a uint32.
func (w *Writer) U32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }

// U64 appends a uint64.
func (w *Writer) U64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

// F64 appends a float64.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bytes32 appends a length-prefixed byte slice (u32 length).
func (w *Writer) Bytes32(b []byte) {
	w.U32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.U32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// Reader consumes an encoded payload.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps b.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.err = ErrTruncated
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U32 reads a uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// F64 reads a float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bytes32 reads a length-prefixed byte slice. The result aliases the
// underlying buffer.
func (r *Reader) Bytes32() []byte {
	n := r.U32()
	if r.err != nil {
		return nil
	}
	if uint64(n) > uint64(r.Remaining()) {
		r.err = ErrTruncated
		return nil
	}
	return r.take(int(n))
}

// Str reads a length-prefixed string. (Not named String to keep the method
// distinct from fmt.Stringer.)
func (r *Reader) Str() string { return string(r.Bytes32()) }
