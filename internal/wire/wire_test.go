package wire

import (
	"testing"
	"testing/quick"
)

func TestRoundtrip(t *testing.T) {
	w := NewWriter(64)
	w.U8(7)
	w.U32(1 << 30)
	w.U64(1 << 60)
	w.F64(3.14159)
	w.Bytes32([]byte{1, 2, 3})
	w.String("hello")

	r := NewReader(w.Bytes())
	if r.U8() != 7 || r.U32() != 1<<30 || r.U64() != 1<<60 {
		t.Error("integer roundtrip failed")
	}
	if r.F64() != 3.14159 {
		t.Error("float roundtrip failed")
	}
	if b := r.Bytes32(); len(b) != 3 || b[2] != 3 {
		t.Error("bytes roundtrip failed")
	}
	if r.Str() != "hello" {
		t.Error("string roundtrip failed")
	}
	if r.Err() != nil || r.Remaining() != 0 {
		t.Errorf("err=%v remaining=%d", r.Err(), r.Remaining())
	}
}

func TestTruncation(t *testing.T) {
	w := NewWriter(16)
	w.U64(42)
	w.String("abcdef")
	enc := w.Bytes()
	for cut := 0; cut < len(enc); cut++ {
		r := NewReader(enc[:cut])
		r.U64()
		r.Str()
		if r.Err() == nil {
			t.Fatalf("no error at cut %d", cut)
		}
	}
	// Reads after an error return zero values and keep the error.
	r := NewReader(nil)
	if r.U32() != 0 || r.U64() != 0 || r.Bytes32() != nil {
		t.Error("post-error reads returned data")
	}
	if r.Err() == nil {
		t.Error("error lost")
	}
}

func TestBogusLengthRejected(t *testing.T) {
	w := NewWriter(8)
	w.U32(0xffffffff) // claims 4 GiB payload
	r := NewReader(w.Bytes())
	if r.Bytes32() != nil || r.Err() == nil {
		t.Error("bogus length accepted")
	}
}

func TestQuickRoundtrip(t *testing.T) {
	f := func(a uint8, b uint32, c uint64, f64 float64, blob []byte, s string) bool {
		w := NewWriter(32)
		w.U8(a)
		w.U32(b)
		w.U64(c)
		w.F64(f64)
		w.Bytes32(blob)
		w.String(s)
		r := NewReader(w.Bytes())
		if r.U8() != a || r.U32() != b || r.U64() != c {
			return false
		}
		got := r.F64()
		if got != f64 && !(got != got && f64 != f64) { // NaN-safe compare
			return false
		}
		rb := r.Bytes32()
		if string(rb) != string(blob) {
			return false
		}
		return r.Str() == s && r.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
