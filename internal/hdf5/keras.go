package hdf5

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/tensor"
)

// SaveModel lays a flattened model out the way Keras writes HDF5 weight
// files: a "model_weights" group containing one group per leaf layer with
// one dataset per parameter tensor, plus the encoded architecture graph as
// a dataset so the file is self-contained. Every call serializes the whole
// model — the baseline has no incremental mode.
func SaveModel(name string, f *model.Flat, ws model.WeightSet) *Group {
	root := NewGroup("/")
	root.Attrs["model_name"] = name
	root.Attrs["backend"] = "evostore-repro"

	arch := NewGroup("architecture")
	arch.CreateDataset("graph", &tensor.Tensor{
		Name: "graph", DType: tensor.Uint8,
		Shape: []int{len(f.Graph.Encode())},
		Data:  f.Graph.Encode(),
	})
	root.Groups[arch.Name] = arch

	weights := root.CreateGroup("model_weights")
	for v := range f.Leaves {
		leaf := &f.Leaves[v]
		lg := weights.CreateGroup(leaf.Name)
		lg.Attrs["kind"] = leaf.Layer.Kind()
		for i, spec := range leaf.Specs {
			lg.CreateDataset(spec.Name, ws[v][i])
		}
	}
	return root
}

// LoadModel reverses SaveModel: it extracts the weight set for the given
// flattened model from a container. The container's architecture must
// match f's.
func LoadModel(root *Group, f *model.Flat) (model.WeightSet, error) {
	archDS, err := root.Lookup("architecture", "graph")
	if err != nil {
		return nil, err
	}
	g, _, err := graph.Decode(archDS.Data)
	if err != nil {
		return nil, fmt.Errorf("hdf5: decoding stored architecture: %w", err)
	}
	if !g.Equal(f.Graph) {
		return nil, fmt.Errorf("hdf5: stored architecture does not match the requested model")
	}

	weights, ok := root.Groups["model_weights"]
	if !ok {
		return nil, fmt.Errorf("hdf5: container has no model_weights group")
	}
	ws := make(model.WeightSet, len(f.Leaves))
	for v := range f.Leaves {
		leaf := &f.Leaves[v]
		if len(leaf.Specs) == 0 {
			continue
		}
		lg, ok := weights.Groups[leaf.Name]
		if !ok {
			return nil, fmt.Errorf("hdf5: layer group %q missing", leaf.Name)
		}
		ts := make([]*tensor.Tensor, len(leaf.Specs))
		for i, spec := range leaf.Specs {
			ds, ok := lg.Datasets[spec.Name]
			if !ok {
				return nil, fmt.Errorf("hdf5: dataset %q missing in layer %q", spec.Name, leaf.Name)
			}
			t := ds.Tensor()
			t.Name = leaf.Name + "/" + spec.Name
			if t.DType != spec.DType || t.NumElements() != tensor.NumElements(spec.Shape) {
				return nil, fmt.Errorf("hdf5: dataset %q/%q does not match spec %v", leaf.Name, spec.Name, spec)
			}
			ts[i] = t
		}
		ws[v] = ts
	}
	return ws, nil
}

// StoredArchitecture extracts just the architecture graph from a container
// without touching weights (used by the Redis-Queries baseline to populate
// its metadata catalog).
func StoredArchitecture(root *Group) (*graph.Compact, error) {
	archDS, err := root.Lookup("architecture", "graph")
	if err != nil {
		return nil, err
	}
	g, _, err := graph.Decode(archDS.Data)
	return g, err
}
