// Package hdf5 implements a hierarchical binary container in the spirit of
// HDF5: named groups nesting arbitrarily, datasets carrying typed
// n-dimensional arrays, and string attributes on both. It provides the
// HDF5+PFS baseline of the paper's evaluation (§5.2): Keras-style
// whole-model serialization where every save writes the complete weight
// set as one self-contained file.
//
// The format is intentionally file-oriented and monolithic — the properties
// that make the baseline slow under partial access are the point:
//
//   - a writer serializes the whole tree into one buffer before any I/O
//     (mirroring Keras's copy into NumPy arrays first, then HDF5 I/O);
//   - readers must parse the container before extracting any dataset;
//   - there is no notion of sharing between files.
//
// Layout (little-endian):
//
//	superblock: 8-byte magic "\x89EVH5\r\n\x1a" | u32 version | u64 root offset
//	group:      u8 tag 'G' | u16 nameLen | name | u32 nattrs | attrs |
//	            u32 nchildren | children (groups or datasets)
//	attr:       u16 keyLen | key | u32 valLen | val
//	dataset:    u8 tag 'D' | u16 nameLen | name | u32 nattrs | attrs |
//	            u8 dtype | u8 rank | rank×u32 dims | u64 payload len | payload |
//	            u32 crc32(payload)
package hdf5

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"

	"repro/internal/tensor"
)

var magic = []byte{0x89, 'E', 'V', 'H', '5', '\r', '\n', 0x1a}

const version = 1

// Group is a node of the hierarchy, holding attributes, child groups and
// datasets.
type Group struct {
	Name     string
	Attrs    map[string]string
	Groups   map[string]*Group
	Datasets map[string]*Dataset
}

// Dataset is a typed n-dimensional array with attributes.
type Dataset struct {
	Name  string
	Attrs map[string]string
	DType tensor.DType
	Shape []int
	Data  []byte
}

// NewGroup creates an empty group.
func NewGroup(name string) *Group {
	return &Group{
		Name:     name,
		Attrs:    make(map[string]string),
		Groups:   make(map[string]*Group),
		Datasets: make(map[string]*Dataset),
	}
}

// CreateGroup adds (or returns the existing) child group.
func (g *Group) CreateGroup(name string) *Group {
	if child, ok := g.Groups[name]; ok {
		return child
	}
	child := NewGroup(name)
	g.Groups[name] = child
	return child
}

// CreateDataset adds a dataset from a tensor, copying its payload (the
// serialization copy the baseline pays).
func (g *Group) CreateDataset(name string, t *tensor.Tensor) *Dataset {
	d := &Dataset{
		Name:  name,
		Attrs: make(map[string]string),
		DType: t.DType,
		Shape: append([]int(nil), t.Shape...),
		Data:  append([]byte(nil), t.Data...),
	}
	g.Datasets[name] = d
	return d
}

// Tensor converts the dataset back into a tensor (copying).
func (d *Dataset) Tensor() *tensor.Tensor {
	return &tensor.Tensor{
		Name:  d.Name,
		DType: d.DType,
		Shape: append([]int(nil), d.Shape...),
		Data:  append([]byte(nil), d.Data...),
	}
}

// Lookup resolves a path like "layers/dense_1/kernel" to a dataset.
func (g *Group) Lookup(path ...string) (*Dataset, error) {
	cur := g
	for i, p := range path {
		if i == len(path)-1 {
			if d, ok := cur.Datasets[p]; ok {
				return d, nil
			}
			return nil, fmt.Errorf("hdf5: dataset %q not found", p)
		}
		next, ok := cur.Groups[p]
		if !ok {
			return nil, fmt.Errorf("hdf5: group %q not found", p)
		}
		cur = next
	}
	return nil, fmt.Errorf("hdf5: empty path")
}

// --- encoding ----------------------------------------------------------------

func appendAttrs(dst []byte, attrs map[string]string) []byte {
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(keys)))
	for _, k := range keys {
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(k)))
		dst = append(dst, k...)
		v := attrs[k]
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(v)))
		dst = append(dst, v...)
	}
	return dst
}

func (d *Dataset) append(dst []byte) []byte {
	dst = append(dst, 'D')
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(d.Name)))
	dst = append(dst, d.Name...)
	dst = appendAttrs(dst, d.Attrs)
	dst = append(dst, byte(d.DType), byte(len(d.Shape)))
	for _, dim := range d.Shape {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(dim))
	}
	dst = binary.LittleEndian.AppendUint64(dst, uint64(len(d.Data)))
	dst = append(dst, d.Data...)
	dst = binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(d.Data))
	return dst
}

func (g *Group) append(dst []byte) []byte {
	dst = append(dst, 'G')
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(g.Name)))
	dst = append(dst, g.Name...)
	dst = appendAttrs(dst, g.Attrs)

	names := make([]string, 0, len(g.Groups)+len(g.Datasets))
	for n := range g.Groups {
		names = append(names, "g:"+n)
	}
	for n := range g.Datasets {
		names = append(names, "d:"+n)
	}
	sort.Strings(names)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(names)))
	for _, n := range names {
		if n[0] == 'g' {
			dst = g.Groups[n[2:]].append(dst)
		} else {
			dst = g.Datasets[n[2:]].append(dst)
		}
	}
	return dst
}

// Encode serializes the whole tree into one buffer (superblock + root
// group). This is the monolithic step the paper attributes serialization
// overhead to.
func Encode(root *Group) []byte {
	buf := make([]byte, 0, 1024)
	buf = append(buf, magic...)
	buf = binary.LittleEndian.AppendUint32(buf, version)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(buf)+8))
	return root.append(buf)
}

// --- decoding -----------------------------------------------------------------

type decoder struct {
	buf []byte
	off int
}

func (d *decoder) need(n int) error {
	if d.off+n > len(d.buf) {
		return io.ErrUnexpectedEOF
	}
	return nil
}

func (d *decoder) u8() (byte, error) {
	if err := d.need(1); err != nil {
		return 0, err
	}
	b := d.buf[d.off]
	d.off++
	return b, nil
}

func (d *decoder) u16() (int, error) {
	if err := d.need(2); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint16(d.buf[d.off:])
	d.off += 2
	return int(v), nil
}

func (d *decoder) u32() (int, error) {
	if err := d.need(4); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return int(v), nil
}

func (d *decoder) u64() (uint64, error) {
	if err := d.need(8); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v, nil
}

func (d *decoder) str(n int) (string, error) {
	if err := d.need(n); err != nil {
		return "", err
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s, nil
}

func (d *decoder) attrs() (map[string]string, error) {
	n, err := d.u32()
	if err != nil {
		return nil, err
	}
	attrs := make(map[string]string, n)
	for i := 0; i < n; i++ {
		kl, err := d.u16()
		if err != nil {
			return nil, err
		}
		k, err := d.str(kl)
		if err != nil {
			return nil, err
		}
		vl, err := d.u32()
		if err != nil {
			return nil, err
		}
		v, err := d.str(vl)
		if err != nil {
			return nil, err
		}
		attrs[k] = v
	}
	return attrs, nil
}

func (d *decoder) dataset() (*Dataset, error) {
	nl, err := d.u16()
	if err != nil {
		return nil, err
	}
	name, err := d.str(nl)
	if err != nil {
		return nil, err
	}
	attrs, err := d.attrs()
	if err != nil {
		return nil, err
	}
	dt, err := d.u8()
	if err != nil {
		return nil, err
	}
	if tensor.DType(dt) > tensor.Uint8 {
		return nil, fmt.Errorf("hdf5: dataset %q: bad dtype %d", name, dt)
	}
	rank, err := d.u8()
	if err != nil {
		return nil, err
	}
	shape := make([]int, rank)
	for i := range shape {
		if shape[i], err = d.u32(); err != nil {
			return nil, err
		}
	}
	plen, err := d.u64()
	if err != nil {
		return nil, err
	}
	if err := d.need(int(plen) + 4); err != nil {
		return nil, err
	}
	payload := append([]byte(nil), d.buf[d.off:d.off+int(plen)]...)
	d.off += int(plen)
	crc, err := d.u32()
	if err != nil {
		return nil, err
	}
	if crc32.ChecksumIEEE(payload) != uint32(crc) {
		return nil, fmt.Errorf("hdf5: dataset %q payload corrupt", name)
	}
	return &Dataset{Name: name, Attrs: attrs, DType: tensor.DType(dt), Shape: shape, Data: payload}, nil
}

func (d *decoder) group() (*Group, error) {
	nl, err := d.u16()
	if err != nil {
		return nil, err
	}
	name, err := d.str(nl)
	if err != nil {
		return nil, err
	}
	attrs, err := d.attrs()
	if err != nil {
		return nil, err
	}
	g := NewGroup(name)
	g.Attrs = attrs
	n, err := d.u32()
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		tag, err := d.u8()
		if err != nil {
			return nil, err
		}
		switch tag {
		case 'G':
			child, err := d.group()
			if err != nil {
				return nil, err
			}
			g.Groups[child.Name] = child
		case 'D':
			ds, err := d.dataset()
			if err != nil {
				return nil, err
			}
			g.Datasets[ds.Name] = ds
		default:
			return nil, fmt.Errorf("hdf5: unknown node tag %q", tag)
		}
	}
	return g, nil
}

// Decode parses a container produced by Encode.
func Decode(buf []byte) (*Group, error) {
	d := &decoder{buf: buf}
	if err := d.need(len(magic)); err != nil {
		return nil, err
	}
	for i, b := range magic {
		if buf[i] != b {
			return nil, fmt.Errorf("hdf5: bad magic at byte %d", i)
		}
	}
	d.off = len(magic)
	v, err := d.u32()
	if err != nil {
		return nil, err
	}
	if v != version {
		return nil, fmt.Errorf("hdf5: unsupported version %d", v)
	}
	if _, err := d.u64(); err != nil { // root offset (informational)
		return nil, err
	}
	tag, err := d.u8()
	if err != nil {
		return nil, err
	}
	if tag != 'G' {
		return nil, fmt.Errorf("hdf5: root is not a group")
	}
	return d.group()
}

// WriteFile encodes root and writes it to path in one shot.
func WriteFile(path string, root *Group) error {
	return os.WriteFile(path, Encode(root), 0o644)
}

// ReadFile reads and decodes a container file.
func ReadFile(path string) (*Group, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(buf)
}
