package hdf5

import (
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/tensor"
)

func sampleTree() *Group {
	root := NewGroup("/")
	root.Attrs["creator"] = "test"
	g1 := root.CreateGroup("layers")
	g1.Attrs["count"] = "2"
	d1 := tensor.New("kernel", tensor.Float32, 4, 4)
	d1.FillSeeded(1)
	g1.CreateDataset("kernel", d1)
	deep := g1.CreateGroup("block").CreateGroup("inner")
	d2 := tensor.New("bias", tensor.Float64, 7)
	d2.FillSeeded(2)
	deep.CreateDataset("bias", d2)
	return root
}

func treesEqual(t *testing.T, a, b *Group) {
	t.Helper()
	if a.Name != b.Name || len(a.Attrs) != len(b.Attrs) ||
		len(a.Groups) != len(b.Groups) || len(a.Datasets) != len(b.Datasets) {
		t.Fatalf("group %q structure mismatch", a.Name)
	}
	for k, v := range a.Attrs {
		if b.Attrs[k] != v {
			t.Errorf("group %q attr %q mismatch", a.Name, k)
		}
	}
	for n, ad := range a.Datasets {
		bd, ok := b.Datasets[n]
		if !ok {
			t.Fatalf("dataset %q missing", n)
		}
		if !ad.Tensor().Equal(bd.Tensor()) {
			// Names inside Tensor() come from dataset names so they match.
			t.Errorf("dataset %q contents mismatch", n)
		}
	}
	for n, ag := range a.Groups {
		bg, ok := b.Groups[n]
		if !ok {
			t.Fatalf("group %q missing", n)
		}
		treesEqual(t, ag, bg)
	}
}

func TestEncodeDecodeTree(t *testing.T) {
	root := sampleTree()
	back, err := Decode(Encode(root))
	if err != nil {
		t.Fatal(err)
	}
	treesEqual(t, root, back)
}

func TestFileRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.h5")
	if err := WriteFile(path, sampleTree()); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	treesEqual(t, sampleTree(), back)
}

func TestLookup(t *testing.T) {
	root := sampleTree()
	if _, err := root.Lookup("layers", "kernel"); err != nil {
		t.Errorf("Lookup kernel: %v", err)
	}
	if _, err := root.Lookup("layers", "block", "inner", "bias"); err != nil {
		t.Errorf("Lookup nested: %v", err)
	}
	if _, err := root.Lookup("layers", "nope"); err == nil {
		t.Error("Lookup found missing dataset")
	}
	if _, err := root.Lookup("ghost", "kernel"); err == nil {
		t.Error("Lookup found missing group")
	}
	if _, err := root.Lookup(); err == nil {
		t.Error("Lookup accepted empty path")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	enc := Encode(sampleTree())
	// Bad magic.
	bad := append([]byte(nil), enc...)
	bad[0] ^= 0xff
	if _, err := Decode(bad); err == nil {
		t.Error("bad magic accepted")
	}
	// Flip a payload byte: crc must catch it. Find a payload region by
	// flipping bytes until decode fails with corruption (not truncation).
	for i := len(enc) - 10; i < len(enc)-4; i++ {
		bad := append([]byte(nil), enc...)
		bad[i] ^= 0x01
		if _, err := Decode(bad); err == nil {
			t.Fatalf("flip at %d undetected", i)
		}
	}
	// Truncations.
	for cut := 0; cut < len(enc); cut += 11 {
		if _, err := Decode(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestCreateGroupIdempotent(t *testing.T) {
	root := NewGroup("/")
	a := root.CreateGroup("x")
	b := root.CreateGroup("x")
	if a != b {
		t.Error("CreateGroup created duplicate")
	}
}

func TestDatasetCopiesPayload(t *testing.T) {
	root := NewGroup("/")
	src := tensor.New("w", tensor.Float32, 4)
	src.FillSeeded(3)
	ds := root.CreateDataset("w", src)
	src.Data[0] ^= 0xff
	if ds.Data[0] == src.Data[0] {
		t.Error("dataset aliases the source tensor")
	}
}

func TestSaveLoadModel(t *testing.T) {
	m := model.Sequential("mlp", 8,
		model.Dense{In: 8, Out: 16, Activation: "relu", UseBias: true},
		model.BatchNorm{Dim: 16},
		model.Dense{In: 16, Out: 4, UseBias: true},
	)
	f, err := model.Flatten(m)
	if err != nil {
		t.Fatal(err)
	}
	ws := model.Materialize(f, 11)
	root := SaveModel("mlp", f, ws)

	// Through bytes, as the PFS path would.
	back, err := Decode(Encode(root))
	if err != nil {
		t.Fatal(err)
	}
	got, err := LoadModel(back, f)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(ws) {
		t.Error("weights mismatch after HDF5 roundtrip")
	}

	arch, err := StoredArchitecture(back)
	if err != nil {
		t.Fatal(err)
	}
	if !arch.Equal(f.Graph) {
		t.Error("architecture mismatch after roundtrip")
	}
}

func TestLoadModelArchMismatch(t *testing.T) {
	f1, _ := model.Flatten(model.Sequential("a", 8, model.Dense{In: 8, Out: 4}))
	f2, _ := model.Flatten(model.Sequential("b", 8, model.Dense{In: 8, Out: 6}))
	root := SaveModel("a", f1, model.Materialize(f1, 1))
	if _, err := LoadModel(root, f2); err == nil {
		t.Error("LoadModel accepted mismatched architecture")
	}
}

// Property: encode/decode roundtrips trees with arbitrary attribute
// contents and dataset sizes.
func TestQuickTreeRoundtrip(t *testing.T) {
	f := func(attr string, n1, n2 uint8, seed uint64) bool {
		root := NewGroup("/")
		root.Attrs["a"] = attr
		g := root.CreateGroup("g")
		t1 := tensor.New("x", tensor.Float32, int(n1%64))
		t1.FillSeeded(seed)
		g.CreateDataset("x", t1)
		t2 := tensor.New("y", tensor.Uint8, int(n2))
		t2.FillSeeded(seed + 1)
		root.CreateDataset("y", t2)
		back, err := Decode(Encode(root))
		if err != nil {
			return false
		}
		d1, err1 := back.Lookup("g", "x")
		d2, err2 := back.Lookup("y")
		return err1 == nil && err2 == nil &&
			d1.Tensor().Equal(t1) && d2.Tensor().Equal(t2) &&
			back.Attrs["a"] == attr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncodeModel(b *testing.B) {
	layers := make([]model.Layer, 20)
	for i := range layers {
		layers[i] = model.Dense{In: 256, Out: 256, UseBias: true}
	}
	f, err := model.Flatten(model.Sequential("bench", 256, layers...))
	if err != nil {
		b.Fatal(err)
	}
	ws := model.Materialize(f, 1)
	b.SetBytes(ws.SizeBytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Encode(SaveModel("bench", f, ws))
	}
}

func BenchmarkDecodeModel(b *testing.B) {
	layers := make([]model.Layer, 20)
	for i := range layers {
		layers[i] = model.Dense{In: 256, Out: 256, UseBias: true}
	}
	f, err := model.Flatten(model.Sequential("bench", 256, layers...))
	if err != nil {
		b.Fatal(err)
	}
	enc := Encode(SaveModel("bench", f, model.Materialize(f, 1)))
	b.SetBytes(int64(len(enc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}
