package pfs

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/simnet"
)

// fastOpts keeps wall-clock tests quick while preserving contention shape.
func fastOpts() Options {
	return Options{
		OSTs:         4,
		OSTBandwidth: 64 << 20, // 64 MiB/s per OST
		StripeCount:  2,
		StripeSize:   64 << 10,
		MDTLatency:   50 * time.Microsecond,
		TimeScale:    1,
	}
}

func TestWriteReadRoundtrip(t *testing.T) {
	fs := New(fastOpts())
	data := bytes.Repeat([]byte{0xab}, 200_000)
	if err := fs.Write("dir/model.h5", data); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Read("dir/model.h5")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("roundtrip mismatch")
	}
	if size, ok := fs.Stat("dir/model.h5"); !ok || size != len(data) {
		t.Errorf("Stat = %d,%v", size, ok)
	}
}

func TestReadMissingFile(t *testing.T) {
	fs := New(fastOpts())
	if _, err := fs.Read("ghost"); err == nil {
		t.Error("Read of missing file succeeded")
	}
	if err := fs.Delete("ghost"); err == nil {
		t.Error("Delete of missing file succeeded")
	}
}

func TestDeleteAndAccounting(t *testing.T) {
	fs := New(fastOpts())
	fs.Write("a", make([]byte, 1000))
	fs.Write("b", make([]byte, 500))
	if fs.TotalBytes() != 1500 || fs.FileCount() != 2 {
		t.Errorf("TotalBytes=%d FileCount=%d", fs.TotalBytes(), fs.FileCount())
	}
	if err := fs.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if fs.TotalBytes() != 500 || fs.FileCount() != 1 {
		t.Errorf("after delete: TotalBytes=%d FileCount=%d", fs.TotalBytes(), fs.FileCount())
	}
}

func TestWriteCopiesData(t *testing.T) {
	fs := New(fastOpts())
	buf := []byte("mutable")
	fs.Write("f", buf)
	buf[0] = 'X'
	got, _ := fs.Read("f")
	if got[0] != 'm' {
		t.Error("Write did not copy the payload")
	}
}

func TestContentionSlowsWriters(t *testing.T) {
	// One writer vs. eight concurrent writers of the same total size:
	// per-writer latency must grow markedly under contention.
	opts := fastOpts()
	opts.OSTs = 2
	opts.StripeCount = 2
	size := 1 << 20 // 1 MiB per write → ~8ms solo on 2×64MiB/s stripes

	solo := New(opts)
	start := time.Now()
	solo.Write("w", make([]byte, size))
	soloTime := time.Since(start)

	crowd := New(opts)
	var wg sync.WaitGroup
	start = time.Now()
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			crowd.Write(fmt.Sprintf("w%d", i), make([]byte, size))
		}(i)
	}
	wg.Wait()
	crowdTime := time.Since(start)

	if crowdTime < soloTime*3 {
		t.Errorf("contention too weak: solo=%v crowd=%v", soloTime, crowdTime)
	}
}

func TestStripingUsesMultipleOSTs(t *testing.T) {
	fs := New(Options{OSTs: 8, StripeCount: 4})
	set := fs.stripeSet("some/file")
	seen := map[int]bool{}
	for _, o := range set {
		if o < 0 || o >= 8 {
			t.Fatalf("stripe index %d out of range", o)
		}
		seen[o] = true
	}
	if len(seen) != 4 {
		t.Errorf("stripe set has %d distinct OSTs, want 4", len(seen))
	}
	// Deterministic per name.
	again := fs.stripeSet("some/file")
	for i := range set {
		if set[i] != again[i] {
			t.Error("stripe set not deterministic")
		}
	}
}

func TestStripeCountClamped(t *testing.T) {
	fs := New(Options{OSTs: 2, StripeCount: 16})
	if fs.opts.StripeCount != 2 {
		t.Errorf("StripeCount = %d, want clamped to 2", fs.opts.StripeCount)
	}
}

func TestSimTransferBandwidth(t *testing.T) {
	// Virtual mode: one 100 MiB file over 4 stripes of 100 MiB/s OSTs
	// finishes in ~0.25s + MDT latency.
	net := simnet.New()
	sim := NewSim(net, Options{
		OSTs: 8, OSTBandwidth: 100 << 20, StripeCount: 4,
		StripeSize: 1 << 20, MDTLatency: time.Millisecond,
	})
	var doneAt float64
	sim.Transfer("file", 100<<20, func(now float64) { doneAt = now })
	net.Run()
	want := 0.25 + 0.001
	if doneAt < want*0.99 || doneAt > want*1.05 {
		t.Errorf("doneAt = %v, want ≈%v", doneAt, want)
	}
}

func TestSimConcurrentTransfersContend(t *testing.T) {
	// 16 writers over 4 OSTs with stripe count 4: every flow shares every
	// OST, so each transfer takes 16× the solo time... relative check:
	soloNet := simnet.New()
	soloSim := NewSim(soloNet, Options{OSTs: 4, OSTBandwidth: 1 << 30, StripeCount: 4, MDTLatency: time.Microsecond})
	var solo float64
	soloSim.Transfer("f", 1<<30, func(now float64) { solo = now })
	soloNet.Run()

	crowdNet := simnet.New()
	crowdSim := NewSim(crowdNet, Options{OSTs: 4, OSTBandwidth: 1 << 30, StripeCount: 4, MDTLatency: time.Microsecond})
	finishes := make([]float64, 0, 16)
	for i := 0; i < 16; i++ {
		crowdSim.Transfer(fmt.Sprintf("f%d", i), 1<<30, func(now float64) { finishes = append(finishes, now) })
	}
	crowdNet.Run()
	var last float64
	for _, f := range finishes {
		if f > last {
			last = f
		}
	}
	if last < solo*12 {
		t.Errorf("virtual contention too weak: solo=%v crowd=%v", solo, last)
	}
}

func TestSimZeroSize(t *testing.T) {
	net := simnet.New()
	sim := NewSim(net, Options{MDTLatency: time.Millisecond})
	fired := false
	sim.Transfer("empty", 0, func(now float64) { fired = true })
	net.Run()
	if !fired {
		t.Error("zero-size transfer never completed")
	}
}
