// Package pfs simulates a Lustre-style parallel file system: files striped
// over object storage targets (OSTs) with finite per-OST bandwidth, and
// metadata targets (MDTs) that serialize namespace operations. It is the
// storage backend of the HDF5+PFS baseline (paper §5.2).
//
// Two operating modes cover the two ways the repository exercises it:
//
//   - Wall-clock mode (FS): a real in-memory file store whose Read/Write
//     block the calling goroutine according to simulated OST queueing and
//     MDT latency. Concurrent writers genuinely contend, so laptop-scale
//     experiments observe Lustre-shaped slowdowns in real time.
//   - Virtual mode (Sim): the same striping and contention expressed as
//     simnet flows for the paper-scale figure harnesses.
package pfs

import (
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"repro/internal/simnet"
)

// Options sizes the simulated file system.
type Options struct {
	// OSTs is the number of object storage targets. Default 8.
	OSTs int
	// OSTBandwidth is each OST's bandwidth in bytes/second. Default 256 MiB/s.
	OSTBandwidth float64
	// StripeCount is the number of OSTs a file is striped over. Default 4.
	StripeCount int
	// StripeSize is the stripe unit in bytes. Default 1 MiB.
	StripeSize int
	// MDTLatency is the latency of one metadata operation. Default 500µs.
	MDTLatency time.Duration
	// TimeScale divides all simulated durations (e.g. 100 → run 100×
	// faster than "real" Lustre time) so experiments finish quickly while
	// preserving relative costs. Default 1.
	TimeScale float64
}

func (o *Options) setDefaults() {
	if o.OSTs <= 0 {
		o.OSTs = 8
	}
	if o.OSTBandwidth <= 0 {
		o.OSTBandwidth = 256 << 20
	}
	if o.StripeCount <= 0 {
		o.StripeCount = 4
	}
	if o.StripeCount > o.OSTs {
		o.StripeCount = o.OSTs
	}
	if o.StripeSize <= 0 {
		o.StripeSize = 1 << 20
	}
	if o.MDTLatency <= 0 {
		o.MDTLatency = 500 * time.Microsecond
	}
	if o.TimeScale <= 0 {
		o.TimeScale = 1
	}
}

// ost models one storage target's queue: requests reserve consecutive
// service windows (FIFO), so concurrent writers to the same OST see their
// effective bandwidth divided.
type ost struct {
	mu       sync.Mutex
	nextFree time.Time
}

// reserve books a service window of length d and returns when it ends.
func (o *ost) reserve(d time.Duration) time.Time {
	now := time.Now()
	o.mu.Lock()
	start := o.nextFree
	if start.Before(now) {
		start = now
	}
	end := start.Add(d)
	o.nextFree = end
	o.mu.Unlock()
	return end
}

// FS is a wall-clock simulated parallel file system holding file contents
// in memory.
type FS struct {
	opts Options
	osts []*ost
	mdt  *ost

	mu    sync.RWMutex
	files map[string][]byte
}

// New creates a file system.
func New(opts Options) *FS {
	opts.setDefaults()
	fs := &FS{opts: opts, files: make(map[string][]byte), mdt: &ost{}}
	for i := 0; i < opts.OSTs; i++ {
		fs.osts = append(fs.osts, &ost{})
	}
	return fs
}

// stripeSet returns the OST indices a file is striped over.
func (fs *FS) stripeSet(name string) []int {
	h := fnv.New32a()
	h.Write([]byte(name))
	start := int(h.Sum32()) % len(fs.osts)
	if start < 0 {
		start += len(fs.osts)
	}
	set := make([]int, fs.opts.StripeCount)
	for i := range set {
		set[i] = (start + i) % len(fs.osts)
	}
	return set
}

// transferDelay books service windows for all stripe chunks and returns
// the time until the last chunk completes.
func (fs *FS) transferDelay(name string, size int) time.Duration {
	set := fs.stripeSet(name)
	perOST := make([]int64, len(set))
	// Distribute stripe units round-robin.
	full := size / fs.opts.StripeSize
	for i := 0; i < full; i++ {
		perOST[i%len(set)] += int64(fs.opts.StripeSize)
	}
	perOST[full%len(set)] += int64(size % fs.opts.StripeSize)

	var latest time.Time
	for i, bytes := range perOST {
		if bytes == 0 {
			continue
		}
		d := time.Duration(float64(bytes) / fs.opts.OSTBandwidth / fs.opts.TimeScale * float64(time.Second))
		if end := fs.osts[set[i]].reserve(d); end.After(latest) {
			latest = end
		}
	}
	if latest.IsZero() {
		return 0
	}
	return time.Until(latest)
}

// mdtDelay books one metadata operation.
func (fs *FS) mdtDelay() time.Duration {
	d := time.Duration(float64(fs.opts.MDTLatency) / fs.opts.TimeScale)
	return time.Until(fs.mdt.reserve(d))
}

func sleepUntil(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// Write stores data under name, blocking for the simulated metadata and
// striped transfer time.
func (fs *FS) Write(name string, data []byte) error {
	sleepUntil(fs.mdtDelay()) // create/open
	sleepUntil(fs.transferDelay(name, len(data)))
	cp := append([]byte(nil), data...)
	fs.mu.Lock()
	fs.files[name] = cp
	fs.mu.Unlock()
	return nil
}

// Read returns the contents of name, blocking for the simulated metadata
// and transfer time.
func (fs *FS) Read(name string) ([]byte, error) {
	fs.mu.RLock()
	data, ok := fs.files[name]
	fs.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("pfs: file %q not found", name)
	}
	sleepUntil(fs.mdtDelay()) // open/stat
	sleepUntil(fs.transferDelay(name, len(data)))
	return data, nil
}

// Delete removes a file (one metadata operation; data blocks are freed
// asynchronously in Lustre, so no transfer cost).
func (fs *FS) Delete(name string) error {
	sleepUntil(fs.mdtDelay())
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[name]; !ok {
		return fmt.Errorf("pfs: file %q not found", name)
	}
	delete(fs.files, name)
	return nil
}

// Stat reports whether a file exists and its size (one metadata op).
func (fs *FS) Stat(name string) (int, bool) {
	sleepUntil(fs.mdtDelay())
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	data, ok := fs.files[name]
	return len(data), ok
}

// TotalBytes returns the payload stored across all files (storage-space
// accounting for Figure 10).
func (fs *FS) TotalBytes() int64 {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var n int64
	for _, d := range fs.files {
		n += int64(len(d))
	}
	return n
}

// FileCount returns the number of stored files.
func (fs *FS) FileCount() int {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return len(fs.files)
}

// --- virtual mode -------------------------------------------------------------

// Sim expresses the same striped file system as simnet resources for the
// paper-scale harnesses.
type Sim struct {
	opts Options
	net  *simnet.Net
	osts []*simnet.Resource
}

// NewSim registers OST resources on net.
func NewSim(net *simnet.Net, opts Options) *Sim {
	opts.setDefaults()
	s := &Sim{opts: opts, net: net}
	for i := 0; i < opts.OSTs; i++ {
		s.osts = append(s.osts, net.AddResource(fmt.Sprintf("ost%d", i), opts.OSTBandwidth))
	}
	return s
}

// Transfer starts the striped flows of one file write or read of the given
// size and invokes onDone when the last stripe lands. The MDT cost is
// modeled as a serial latency before the transfer begins.
func (s *Sim) Transfer(name string, size int64, onDone func(now float64)) {
	s.TransferVia(name, size, nil, onDone)
}

// TransferVia is Transfer with additional resources (e.g. the writer's
// node NIC) that every stripe flow traverses.
func (s *Sim) TransferVia(name string, size int64, extra []*simnet.Resource, onDone func(now float64)) {
	h := fnv.New32a()
	h.Write([]byte(name))
	start := int(h.Sum32()) % len(s.osts)
	if start < 0 {
		start += len(s.osts)
	}
	set := make([]*simnet.Resource, s.opts.StripeCount)
	for i := range set {
		set[i] = s.osts[(start+i)%len(s.osts)]
	}
	perOST := make([]int64, len(set))
	full := int(size) / s.opts.StripeSize
	for i := 0; i < full; i++ {
		perOST[i%len(set)] += int64(s.opts.StripeSize)
	}
	perOST[full%len(set)] += size % int64(s.opts.StripeSize)

	mdt := s.opts.MDTLatency.Seconds()
	s.net.At(mdt, func(now float64) {
		pending := 0
		for _, b := range perOST {
			if b > 0 {
				pending++
			}
		}
		if pending == 0 {
			if onDone != nil {
				onDone(now)
			}
			return
		}
		for i, b := range perOST {
			if b == 0 {
				continue
			}
			path := append([]*simnet.Resource{set[i]}, extra...)
			s.net.StartFlow(float64(b), path, func(now float64) {
				pending--
				if pending == 0 && onDone != nil {
					onDone(now)
				}
			})
		}
	})
}
