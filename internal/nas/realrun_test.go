package nas

import (
	"context"
	"testing"

	"repro/internal/core"
)

func TestRunRealEndToEnd(t *testing.T) {
	repo, err := core.Open(core.Options{Providers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()

	cfg := RealConfig{
		Workers:       8,
		Space:         NewSpace(10, 8, 8),
		Population:    20,
		Sample:        4,
		Budget:        100,
		Retire:        true,
		SurrogateSeed: 5,
		SearchSeed:    6,
	}
	res, err := RunReal(context.Background(), repo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != 100 {
		t.Fatalf("history = %d", len(res.History))
	}
	if res.Best.Quality <= 0 {
		t.Error("no best candidate")
	}
	// Population-cap retirement must hold: at most Population live models.
	st, err := repo.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Models > uint64(cfg.Population) {
		t.Errorf("live models = %d, cap %d", st.Models, cfg.Population)
	}
	if st.Models == 0 || st.SegmentBytes == 0 {
		t.Errorf("repository empty after run: %+v", st)
	}
	// Transfer must actually have happened: some candidates carry lineage
	// experience above the from-scratch baseline.
	withExp := 0
	for _, c := range res.History {
		if c.Experience > 1.01 {
			withExp++
		}
	}
	if withExp < len(res.History)/4 {
		t.Errorf("only %d/%d candidates inherited experience", withExp, len(res.History))
	}
	// All stored models must load cleanly (no GC corruption).
	ids, err := repo.ListModels(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids[:min(5, len(ids))] {
		if _, _, err := repo.Load(context.Background(), id); err != nil {
			t.Errorf("load %d: %v", id, err)
		}
	}
}

func TestRunRealNoRetireKeepsEverything(t *testing.T) {
	repo, err := core.Open(core.Options{Providers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	cfg := RealConfig{
		Workers: 4, Space: NewSpace(8, 8, 8),
		Population: 10, Sample: 3, Budget: 30,
		Retire: false, SurrogateSeed: 1, SearchSeed: 2,
	}
	if _, err := RunReal(context.Background(), repo, cfg); err != nil {
		t.Fatal(err)
	}
	st, err := repo.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Models != 30 {
		t.Errorf("models = %d, want all 30 retained", st.Models)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
