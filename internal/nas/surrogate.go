package nas

import (
	"math"
	"math/rand"
)

// Surrogate replaces GPU training with a deterministic, calibrated model
// of the two quantities the evaluation depends on (see DESIGN.md,
// substitution table):
//
//   - Accuracy after superficial (one-epoch) training, as a function of
//     architecture fitness and lineage experience. Transfer learning
//     raises experience — the inherited frozen prefix carries the training
//     of the whole ancestor chain — which reproduces the paper's Figure 6
//     and 7 shapes: with transfer, high-accuracy candidates appear almost
//     immediately and top out higher; without it, accuracy only rises as
//     evolution improves raw fitness.
//   - Training time for one epoch, proportional to the parameters actually
//     trained (frozen prefix excluded from the backward pass), with
//     realistic run-to-run variance.
//
// All coefficients are exposed so ablations can move them.
type Surrogate struct {
	space *Space

	// pref[i][c] is the fitness contribution of choosing op c at cell i.
	pref [][]float64
	// adj[a][b] is the interaction bonus for adjacent ops (a then b).
	adj      [][]float64
	maxScore float64

	// Accuracy model:
	//   acc = Base + Gain·fitness^FitExp + ExpGain·(1-exp(-(E-1)/ExpTau)) + noise.
	// The convex fitness exponent keeps lucky random candidates clearly
	// below the transfer-boosted band (paper Figure 6: DH-NoTransfer needs
	// a third of the search to produce >0.80 candidates).
	Base     float64
	Gain     float64
	FitExp   float64
	ExpGain  float64
	ExpTau   float64
	NoiseStd float64
	MaxAcc   float64

	// Training-time model: t = FixedTime + ByteTime·trainedBytes, scaled
	// by a lognormal-ish factor with coefficient of variation TimeCV.
	FixedTime float64 // seconds
	ByteTime  float64 // seconds per trained parameter byte
	TimeCV    float64
}

// NewSurrogate derives a fitness landscape from seed for the given space.
func NewSurrogate(space *Space, seed int64) *Surrogate {
	space.setDefaults()
	r := rand.New(rand.NewSource(seed))
	// Accuracy coefficients are calibrated to the paper's Figure 6/7 bands:
	// random candidates (fitness ≈ 0.56, experience 1) land around 0.70 and
	// stay below 0.80 even for lucky draws; evolved from-scratch candidates
	// (fitness → ~0.93) top out near 0.94; transfer's experience bonus
	// pushes lineage-rich candidates toward MaxAcc.
	s := &Surrogate{
		space: space,
		Base:  0.609, Gain: 0.39, FitExp: 2.5,
		ExpGain: 0.08, ExpTau: 1.0,
		NoiseStd: 0.006, MaxAcc: 0.978,
		// Calibrated so a default-space candidate (~70 MB of parameters)
		// trains one epoch in ~28 virtual seconds, matching the paper's
		// per-task durations in Figure 9.
		FixedTime: 2.0, ByteTime: 3.7e-7, TimeCV: 0.10,
	}
	s.pref = make([][]float64, space.Positions)
	for i := range s.pref {
		s.pref[i] = make([]float64, space.NumOps)
		for c := range s.pref[i] {
			s.pref[i][c] = r.Float64()
		}
	}
	// Adjacency interactions are kept small relative to per-position
	// preferences: the landscape stays mostly separable, so regularized
	// evolution can approach the optimum within a 1000-candidate budget
	// (as the paper's searches do on the ATTN space).
	s.adj = make([][]float64, space.NumOps)
	for a := range s.adj {
		s.adj[a] = make([]float64, space.NumOps)
		for b := range s.adj[a] {
			s.adj[a][b] = r.Float64() * 0.1
		}
	}
	// Normalizer: per-position maxima plus maximal adjacent bonus.
	for i := range s.pref {
		best := 0.0
		for _, v := range s.pref[i] {
			if v > best {
				best = v
			}
		}
		s.maxScore += best
	}
	bestAdj := 0.0
	for a := range s.adj {
		for b := range s.adj[a] {
			if s.adj[a][b] > bestAdj {
				bestAdj = s.adj[a][b]
			}
		}
	}
	s.maxScore += bestAdj * float64(space.Positions-1)
	return s
}

// Fitness scores a sequence in [0,1]. The landscape is smooth under
// single-position mutation (one pref term and two adjacency terms move),
// which is what lets regularized evolution climb it.
func (s *Surrogate) Fitness(seq Sequence) float64 {
	var score float64
	for i, c := range seq {
		score += s.pref[i][c]
		if i > 0 {
			score += s.adj[seq[i-1]][c]
		}
	}
	return score / s.maxScore
}

// ChildExperience propagates lineage experience through a transfer: the
// child starts from the fraction of the ancestor's experience covered by
// the transferred (frozen) prefix, then gains one epoch of its own.
// Without transfer, experience is exactly 1 epoch.
func ChildExperience(ancestorExperience, lcpFraction float64) float64 {
	return ChildExperienceEpochs(ancestorExperience, lcpFraction, 1)
}

// ChildExperienceEpochs generalizes ChildExperience to superficial training
// of a fractional epoch — the zero-cost-proxy regime the paper sketches in
// §6, where candidates train for "a few iterations instead of a full
// epoch".
func ChildExperienceEpochs(ancestorExperience, lcpFraction, epochs float64) float64 {
	return epochs + lcpFraction*ancestorExperience
}

// Accuracy evaluates the one-epoch training accuracy of a candidate with
// the given lineage experience (1 = trained from scratch).
func (s *Surrogate) Accuracy(seq Sequence, experience float64, r *rand.Rand) float64 {
	f := math.Pow(s.Fitness(seq), s.FitExp)
	exp := 0.0
	if experience > 1 {
		exp = 1 - math.Exp(-(experience-1)/s.ExpTau)
	}
	acc := s.Base + s.Gain*f + s.ExpGain*exp + r.NormFloat64()*s.NoiseStd
	if acc > s.MaxAcc {
		acc = s.MaxAcc
	}
	if acc < 0 {
		acc = 0
	}
	return acc
}

// TrainTime returns the duration of one training epoch given the total
// parameter payload and the frozen (excluded-from-backward) payload.
// Frozen parameters still cost forward passes, modeled at 1/3 the cost of
// trained ones.
func (s *Surrogate) TrainTime(totalBytes, frozenBytes int64, r *rand.Rand) float64 {
	trained := float64(totalBytes - frozenBytes)
	if trained < 0 {
		trained = 0
	}
	base := s.FixedTime + s.ByteTime*(trained+float64(frozenBytes)/3)
	// Multiplicative jitter, clamped to ±3 CV to keep the tail sane.
	jitter := r.NormFloat64() * s.TimeCV
	if jitter > 3*s.TimeCV {
		jitter = 3 * s.TimeCV
	}
	if jitter < -3*s.TimeCV {
		jitter = -3 * s.TimeCV
	}
	return base * (1 + jitter)
}
