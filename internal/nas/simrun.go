package nas

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/ownermap"
	"repro/internal/pfs"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// StorageMode selects the repository behind a simulated NAS run.
type StorageMode int

// The three approaches of the paper's end-to-end evaluation (§5.2).
const (
	// ModeNoTransfer is the DH-NoTransfer baseline: every candidate trains
	// from scratch; the repository is not used.
	ModeNoTransfer StorageMode = iota
	// ModeEvoStore is transfer learning over the EvoStore repository.
	ModeEvoStore
	// ModeHDF5PFS is transfer learning over whole-file HDF5 on the
	// parallel file system with Redis-Queries metadata.
	ModeHDF5PFS
)

// String names the mode as the paper does.
func (m StorageMode) String() string {
	switch m {
	case ModeNoTransfer:
		return "DH-NoTransfer"
	case ModeEvoStore:
		return "EvoStore"
	case ModeHDF5PFS:
		return "HDF5+PFS"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// SimConfig parameterizes a virtual-time NAS run at paper scale.
type SimConfig struct {
	Workers    int
	Space      *Space
	Population int
	Sample     int
	Budget     int
	Mode       StorageMode
	// Retire removes aged-out candidates from the repository (Figure 10's
	// "With Retire" scenario). Metadata removal is immediate; tensors
	// follow reference counts.
	Retire bool

	SurrogateSeed int64
	SearchSeed    int64

	// EvoStore fabric: per-worker NIC and per-provider ingest bandwidth
	// (bytes per virtual second), count of providers, LCP query latency.
	Providers         int
	NICBandwidth      float64
	ProviderBandwidth float64
	QueryLatency      float64

	// HDF5+PFS fabric.
	PFS pfs.Options
	// RedisScanPerModel is the metadata server time consumed per candidate
	// inspected by one LCP query (JSON decode + LCP under the reader
	// lock). The server is single-threaded, so this is the contended
	// quantity.
	RedisScanPerModel float64
	// RedisOpCost is the server time of one small command including lock
	// acquisition latency under contention (lock/unlock/set/incr).
	RedisOpCost float64
	// ClientBandwidth caps a single worker's PFS streaming throughput
	// (Lustre clients are limited well below the OST aggregate).
	ClientBandwidth float64
	// HDF5SerializeBw is the worker-side HDF5 (de)serialization throughput
	// (the Keras copy-to-NumPy-then-encode path is far below memory
	// bandwidth); paid on every whole-model read and write.
	HDF5SerializeBw float64

	// TrainFixed/TrainPerByte/TrainCV override the surrogate's training-
	// time model when positive (useful for scaled-down test runs).
	TrainFixed   float64
	TrainPerByte float64
	TrainCV      float64

	// EpochFraction scales the superficial-training effort per candidate
	// (1 = one full epoch, the paper's default; ~0.1 emulates the §6
	// zero-cost-proxy regime where training shrinks and I/O's share of the
	// workflow grows). It scales both training time and the experience a
	// candidate accrues.
	EpochFraction float64

	// RandomSearch replaces aged evolution with uniform sampling (the §2
	// baseline strategy), isolating the search-strategy comparison.
	RandomSearch bool
}

func (c *SimConfig) setDefaults() {
	if c.Workers <= 0 {
		c.Workers = 128
	}
	if c.Space == nil {
		c.Space = NewSpace(0, 0, 0)
	}
	if c.Population <= 0 {
		c.Population = 100
	}
	if c.Sample <= 0 {
		c.Sample = 10
	}
	if c.Budget <= 0 {
		c.Budget = 1000
	}
	if c.Providers <= 0 {
		c.Providers = (c.Workers + 3) / 4 // one provider per 4-GPU node
	}
	if c.NICBandwidth <= 0 {
		c.NICBandwidth = 12.5e9 // one Slingshot-10 port
	}
	if c.ProviderBandwidth <= 0 {
		c.ProviderBandwidth = 8e9
	}
	if c.QueryLatency <= 0 {
		c.QueryLatency = 2e-3
	}
	if c.PFS.OSTs == 0 {
		c.PFS = pfs.Options{OSTs: 150, OSTBandwidth: 650e9 / 150, StripeCount: 4, StripeSize: 1 << 20}
	}
	if c.RedisScanPerModel <= 0 {
		c.RedisScanPerModel = 400e-6
	}
	if c.RedisOpCost <= 0 {
		c.RedisOpCost = 3e-3
	}
	if c.ClientBandwidth <= 0 {
		c.ClientBandwidth = 1.2e9
	}
	if c.HDF5SerializeBw <= 0 {
		c.HDF5SerializeBw = 60e6
	}
	if c.EpochFraction <= 0 {
		c.EpochFraction = 1
	}
}

// TimedCandidate is a completed evaluation stamped with its virtual finish
// time (the Figure 6 scatter points).
type TimedCandidate struct {
	Candidate
	Finish float64
}

// SimResult aggregates one run's outputs.
type SimResult struct {
	Mode     StorageMode
	Workers  int
	Trace    *trace.Log
	Makespan float64
	History  []TimedCandidate
	// StorageBytes is the repository payload when the run ends;
	// PeakStorageBytes its maximum over the run (Figure 10).
	StorageBytes     int64
	PeakStorageBytes int64
	// IOSeconds and TrainSeconds split each approach's busy time; the
	// paper reports EvoStore's repository interactions at <2%.
	IOSeconds    float64
	TrainSeconds float64
}

// FirstAbove returns the earliest finish time of a candidate with quality
// ≥ threshold (Figure 7), or ok=false if none reached it.
func (res *SimResult) FirstAbove(threshold float64) (float64, bool) {
	best := 0.0
	found := false
	for _, c := range res.History {
		if c.Quality >= threshold {
			if !found || c.Finish < best {
				best = c.Finish
				found = true
			}
		}
	}
	return best, found
}

// BestQuality returns the maximum candidate quality observed.
func (res *SimResult) BestQuality() float64 {
	best := 0.0
	for _, c := range res.History {
		if c.Quality > best {
			best = c.Quality
		}
	}
	return best
}

// --- EvoStore-side storage accounting ------------------------------------------

// segKey mirrors the provider's segment identity for the simulation's
// reference-counting accountant.
type simSegKey struct {
	owner  ownermap.ModelID
	vertex graph.VertexID
}

// accountant replays the provider GC arithmetic (store = +1 ref on every
// referenced segment, retire = -1, free at zero) against vertex parameter
// sizes, without materializing tensors.
type accountant struct {
	refs  map[simSegKey]int
	size  map[simSegKey]int64
	total int64
	peak  int64
}

func newAccountant() *accountant {
	return &accountant{refs: make(map[simSegKey]int), size: make(map[simSegKey]int64)}
}

func (a *accountant) store(id ownermap.ModelID, g *graph.Compact, om *ownermap.Map) {
	for v := 0; v < om.Len(); v++ {
		e := om.Entries[v]
		k := simSegKey{e.Owner, graph.VertexID(v)}
		if e.Owner == id {
			a.size[k] = g.Vertices[v].ParamBytes
			a.total += g.Vertices[v].ParamBytes
		}
		a.refs[k]++
	}
	if a.total > a.peak {
		a.peak = a.total
	}
}

func (a *accountant) retire(om *ownermap.Map) {
	for v := 0; v < om.Len(); v++ {
		e := om.Entries[v]
		k := simSegKey{e.Owner, graph.VertexID(v)}
		a.refs[k]--
		if a.refs[k] <= 0 {
			a.total -= a.size[k]
			delete(a.refs, k)
			delete(a.size, k)
		}
	}
}

// storedModel is one live repository entry in the simulation.
type storedModel struct {
	id         ownermap.ModelID
	flat       *model.Flat
	om         *ownermap.Map
	quality    float64
	experience float64
	seq        uint64
	fileBytes  int64 // HDF5 mode: size of the whole-model file
}

// RunSim executes one NAS run on a virtual clock and returns its results.
func RunSim(cfg SimConfig) (*SimResult, error) {
	cfg.setDefaults()
	sur := NewSurrogate(cfg.Space, cfg.SurrogateSeed)
	if cfg.TrainFixed > 0 {
		sur.FixedTime = cfg.TrainFixed
	}
	if cfg.TrainPerByte > 0 {
		sur.ByteTime = cfg.TrainPerByte
	}
	if cfg.TrainCV > 0 {
		sur.TimeCV = cfg.TrainCV
	}
	var evo Controller
	if cfg.RandomSearch {
		evo = NewRandomSearch(cfg.Space, cfg.SearchSeed, cfg.Population, cfg.Budget)
	} else {
		evo = NewEvolution(cfg.Space, cfg.SearchSeed, cfg.Population, cfg.Sample, cfg.Budget)
	}
	noiseRng := rand.New(rand.NewSource(cfg.SearchSeed ^ 0x5eed))

	net := simnet.New()
	res := &SimResult{Mode: cfg.Mode, Workers: cfg.Workers, Trace: &trace.Log{}}

	// Fabric resources.
	var nics []*simnet.Resource
	var providers []*simnet.Resource
	var redisCPU *simnet.Resource
	var fsim *pfs.Sim
	switch cfg.Mode {
	case ModeEvoStore:
		for w := 0; w < cfg.Workers; w++ {
			nics = append(nics, net.AddResource(fmt.Sprintf("nic%d", w), cfg.NICBandwidth))
		}
		for p := 0; p < cfg.Providers; p++ {
			providers = append(providers, net.AddResource(fmt.Sprintf("prov%d", p), cfg.ProviderBandwidth))
		}
	case ModeHDF5PFS:
		fsim = pfs.NewSim(net, cfg.PFS)
		redisCPU = net.AddResource("redis-cpu", 1) // 1 CPU-second per second
		for w := 0; w < cfg.Workers; w++ {
			nics = append(nics, net.AddResource(fmt.Sprintf("lclient%d", w), cfg.ClientBandwidth))
		}
	}

	// Live repository state (shared by the single-threaded event loop).
	catalog := make(map[ownermap.ModelID]*storedModel)
	acct := newAccountant()
	var hdf5Bytes, hdf5Peak int64
	var seqCounter uint64

	flatCache := make(map[string]*model.Flat)
	decode := func(seq Sequence) (*model.Flat, error) {
		if f, ok := flatCache[seq.Key()]; ok {
			return f, nil
		}
		f, err := cfg.Space.Decode(seq)
		if err != nil {
			return nil, err
		}
		flatCache[seq.Key()] = f
		return f, nil
	}

	// bestAncestor runs the real LCP algorithm over the live catalog.
	bestAncestor := func(f *model.Flat) (*storedModel, []graph.VertexID) {
		scanner := graph.NewLCPScanner(f.Graph)
		var best *storedModel
		var bestPrefix []graph.VertexID
		for _, m := range catalog {
			size := scanner.SizeAgainst(m.flat.Graph)
			if size == 0 {
				continue
			}
			better := best == nil || size > len(bestPrefix) ||
				(size == len(bestPrefix) && (m.quality > best.quality ||
					(m.quality == best.quality && m.id < best.id)))
			if better {
				best = m
				bestPrefix = append([]graph.VertexID(nil), scanner.Against(m.flat.Graph)...)
			}
		}
		return best, bestPrefix
	}

	var decodeErr error
	var nextModelID uint64

	// assign issues work to a free worker; the chain of closures walks the
	// candidate through query → read → train → write → report.
	var assign func(worker int)
	assign = func(worker int) {
		cand, ok := evo.Next()
		if !ok {
			return
		}
		f, err := decode(cand.Seq)
		if err != nil {
			decodeErr = err
			return
		}
		totalBytes := f.TotalParamBytes()
		start := net.Now()
		var ioTime float64

		var anc *storedModel
		var prefix []graph.VertexID
		var frozenBytes int64

		finish := func(now float64) {
			exp := cfg.EpochFraction
			if anc != nil && totalBytes > 0 {
				exp = ChildExperienceEpochs(anc.experience,
					float64(frozenBytes)/float64(totalBytes), cfg.EpochFraction)
			}
			acc := sur.Accuracy(cand.Seq, exp, noiseRng)
			cand.Quality = acc
			cand.Experience = exp

			storeDone := func(now float64) {
				// Publish into the simulated repository state.
				if cfg.Mode != ModeNoTransfer {
					nextModelID++
					id := ownermap.ModelID(nextModelID)
					seqCounter++
					var om *ownermap.Map
					if anc != nil {
						om, _ = ownermap.Derive(anc.om, id, seqCounter, f.Graph.NumVertices(), prefix)
					} else {
						om = ownermap.New(id, seqCounter, f.Graph.NumVertices())
					}
					sm := &storedModel{
						id: id, flat: f, om: om,
						quality: acc, experience: exp, seq: seqCounter,
					}
					switch cfg.Mode {
					case ModeEvoStore:
						acct.store(id, f.Graph, om)
					case ModeHDF5PFS:
						sm.fileBytes = totalBytes
						hdf5Bytes += totalBytes
						if hdf5Bytes > hdf5Peak {
							hdf5Peak = hdf5Bytes
						}
					}
					catalog[id] = sm
					cand.ID = uint64(id)
				}
				res.Trace.Add(trace.Event{Worker: worker, Start: start, End: now, Kind: "task", Value: acc})
				res.History = append(res.History, TimedCandidate{Candidate: cand, Finish: now})
				res.IOSeconds += ioTime
				for _, old := range evo.Report(cand) {
					if cfg.Retire && cfg.Mode != ModeNoTransfer {
						if sm, live := catalog[ownermap.ModelID(old.ID)]; live {
							switch cfg.Mode {
							case ModeEvoStore:
								acct.retire(sm.om)
							case ModeHDF5PFS:
								hdf5Bytes -= sm.fileBytes
							}
							delete(catalog, ownermap.ModelID(old.ID))
						}
					}
				}
				assign(worker)
			}

			// Write back the modified tensors / whole file.
			switch cfg.Mode {
			case ModeEvoStore:
				writeBytes := totalBytes - frozenBytes
				prov := providers[int(cand.ID)%len(providers)]
				wStart := net.Now()
				net.StartFlow(float64(writeBytes), []*simnet.Resource{nics[worker], prov}, func(now float64) {
					ioTime += now - wStart
					storeDone(now)
				})
			case ModeHDF5PFS:
				wStart := net.Now()
				// Whole-model serialization on the worker, then the publish
				// protocol's metadata ops, then the file write to the PFS.
				net.At(float64(totalBytes)/cfg.HDF5SerializeBw, func(now float64) {
					net.StartFlow(6*cfg.RedisOpCost, []*simnet.Resource{redisCPU}, func(now float64) {
						fsim.TransferVia(fmt.Sprintf("m%d-%d", worker, cand.ID), totalBytes,
							[]*simnet.Resource{nics[worker]}, func(now float64) {
								ioTime += now - wStart
								storeDone(now)
							})
					})
				})
			default:
				storeDone(now)
			}
		}

		train := func(now float64) {
			d := sur.TrainTime(totalBytes, frozenBytes, noiseRng) * cfg.EpochFraction
			res.TrainSeconds += d
			net.At(d, finish)
		}

		// Query + read phase.
		switch cfg.Mode {
		case ModeEvoStore:
			qStart := net.Now()
			net.At(cfg.QueryLatency, func(now float64) {
				anc, prefix = bestAncestor(f)
				if anc == nil {
					ioTime += now - qStart
					train(now)
					return
				}
				frozenBytes = graph.PrefixParamBytes(f.Graph, prefix)
				// Parallel reads, one flow per owner group hosting prefix
				// tensors, from the owner's home provider.
				groups := anc.om.Owners()
				inPrefix := make(map[graph.VertexID]bool, len(prefix))
				for _, v := range prefix {
					inPrefix[v] = true
				}
				pending := 0
				var fire []func()
				for _, g := range groups {
					var bytes int64
					for _, v := range g.Vertices {
						if inPrefix[v] {
							bytes += f.Graph.Vertices[v].ParamBytes
						}
					}
					if bytes == 0 {
						continue
					}
					pending++
					prov := providers[int(uint64(g.Owner))%len(providers)]
					b := float64(bytes)
					fire = append(fire, func() {
						net.StartFlow(b, []*simnet.Resource{nics[worker], prov}, func(now float64) {
							pending--
							if pending == 0 {
								ioTime += now - qStart
								train(now)
							}
						})
					})
				}
				if pending == 0 {
					ioTime += now - qStart
					train(now)
					return
				}
				for _, fn := range fire {
					fn()
				}
			})
		case ModeHDF5PFS:
			qStart := net.Now()
			// The LCP query consumes server CPU proportional to the
			// catalog size, serialized with everyone else's commands.
			scanCost := cfg.RedisOpCost*4 + float64(len(catalog))*cfg.RedisScanPerModel
			net.StartFlow(scanCost, []*simnet.Resource{redisCPU}, func(now float64) {
				anc, prefix = bestAncestor(f)
				if anc == nil {
					ioTime += now - qStart
					train(now)
					return
				}
				frozenBytes = graph.PrefixParamBytes(f.Graph, prefix)
				// Whole-file read regardless of prefix size, then the
				// worker-side parse/deserialize of the container.
				readBytes := anc.flat.TotalParamBytes()
				fsim.TransferVia(fmt.Sprintf("read-%d", anc.id), readBytes,
					[]*simnet.Resource{nics[worker]}, func(now float64) {
						net.At(float64(readBytes)/cfg.HDF5SerializeBw, func(now float64) {
							ioTime += now - qStart
							train(now)
						})
					})
			})
		default: // NoTransfer: straight to training
			train(net.Now())
		}
	}

	for w := 0; w < cfg.Workers; w++ {
		assign(w)
	}
	res.Makespan = net.Run()
	if decodeErr != nil {
		return nil, decodeErr
	}
	switch cfg.Mode {
	case ModeEvoStore:
		res.StorageBytes = acct.total
		res.PeakStorageBytes = acct.peak
	case ModeHDF5PFS:
		res.StorageBytes = hdf5Bytes
		res.PeakStorageBytes = hdf5Peak
	}
	return res, nil
}
