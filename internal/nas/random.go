package nas

import (
	"math/rand"
	"sync"
)

// Controller abstracts the search strategy driving a NAS run, so runners
// work with both aged evolution and the plain random sampling the paper
// describes first in §2 ("a common approach is to simply sample the search
// space randomly").
type Controller interface {
	// Next draws the next candidate to evaluate; ok=false when the budget
	// is exhausted.
	Next() (Candidate, bool)
	// Report returns a completed evaluation and yields candidates that
	// aged out of the active population (to retire from the repository).
	Report(Candidate) []Candidate
	// Done reports whether every budgeted candidate completed.
	Done() bool
	// Completed returns the number of completed evaluations.
	Completed() int
	// History returns all completed candidates in completion order.
	History() []Candidate
	// Best returns the top-quality candidate so far.
	Best() (Candidate, bool)
}

var (
	_ Controller = (*Evolution)(nil)
	_ Controller = (*RandomSearch)(nil)
)

// RandomSearch samples candidates uniformly from the space. It keeps the
// same FIFO active population as Evolution so repository retirement
// behaves identically — the only difference is how candidates are chosen,
// which isolates the search-strategy comparison.
type RandomSearch struct {
	mu sync.Mutex

	space      *Space
	r          *rand.Rand
	Population int
	Budget     int

	issued    int
	completed int
	nextID    uint64
	pop       []Candidate
	history   []Candidate
}

// NewRandomSearch creates a random-sampling controller.
func NewRandomSearch(space *Space, seed int64, population, budget int) *RandomSearch {
	space.setDefaults()
	if population <= 0 {
		population = 100
	}
	if budget <= 0 {
		budget = 1000
	}
	return &RandomSearch{
		space:      space,
		r:          rand.New(rand.NewSource(seed)),
		Population: population,
		Budget:     budget,
	}
}

// Next implements Controller.
func (s *RandomSearch) Next() (Candidate, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.issued >= s.Budget {
		return Candidate{}, false
	}
	s.issued++
	s.nextID++
	return Candidate{ID: s.nextID, Seq: s.space.Random(s.r)}, true
}

// Report implements Controller.
func (s *RandomSearch) Report(c Candidate) []Candidate {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.completed++
	s.pop = append(s.pop, c)
	s.history = append(s.history, c)
	var retired []Candidate
	for len(s.pop) > s.Population {
		retired = append(retired, s.pop[0])
		s.pop = s.pop[1:]
	}
	return retired
}

// Done implements Controller.
func (s *RandomSearch) Done() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.completed >= s.Budget
}

// Completed implements Controller.
func (s *RandomSearch) Completed() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.completed
}

// History implements Controller.
func (s *RandomSearch) History() []Candidate {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Candidate(nil), s.history...)
}

// Best implements Controller.
func (s *RandomSearch) Best() (Candidate, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.history) == 0 {
		return Candidate{}, false
	}
	best := s.history[0]
	for _, c := range s.history[1:] {
		if c.Quality > best.Quality {
			best = c
		}
	}
	return best, true
}
