// Package nas implements the network-architecture-search substrate of the
// paper's evaluation: a cell-based search space with candidate sequences,
// the aged (regularized) evolution search strategy [Real et al. 2019], a
// deterministic training surrogate, and runners that execute the search
// against an EvoStore repository (real mode) or on a virtual clock at
// paper scale (simulation mode).
package nas

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/model"
)

// Sequence is a candidate: one operation choice per cell position.
type Sequence []uint8

// Clone copies the sequence.
func (s Sequence) Clone() Sequence { return append(Sequence(nil), s...) }

// Key returns a map key for the sequence.
func (s Sequence) Key() string { return string(s) }

// String renders the sequence compactly.
func (s Sequence) String() string {
	out := make([]byte, len(s))
	for i, c := range s {
		out[i] = "0123456789abcdef"[c&0xf]
	}
	return string(out)
}

// Space defines the search space: Positions cells, each choosing one of
// NumOps operations. The default configuration (24 positions × 8 ops ≈
// 4.7e21 candidates) brackets the paper's ATTN space of 3.1e17; the
// default width decodes to ≈70 MB of parameters per candidate, sized so a
// full NAS population occupies tens of GB as in the paper's Figure 10.
type Space struct {
	// Positions is the number of cells. Default 24.
	Positions int
	// NumOps is the number of operation choices per cell. Default 8.
	NumOps int
	// Width is the feature dimension of the decoded models. Default 768.
	Width int
}

func (s *Space) setDefaults() {
	if s.Positions <= 0 {
		s.Positions = 24
	}
	if s.NumOps <= 0 || s.NumOps > 8 {
		s.NumOps = 8
	}
	if s.Width <= 0 {
		s.Width = 768
	}
}

// NewSpace returns a space with defaults applied.
func NewSpace(positions, numOps, width int) *Space {
	s := &Space{Positions: positions, NumOps: numOps, Width: width}
	s.setDefaults()
	return s
}

// Size returns the number of candidate sequences in the space.
func (s *Space) Size() float64 {
	return math.Pow(float64(s.NumOps), float64(s.Positions))
}

// Random samples a uniform candidate.
func (s *Space) Random(r *rand.Rand) Sequence {
	seq := make(Sequence, s.Positions)
	for i := range seq {
		seq[i] = uint8(r.Intn(s.NumOps))
	}
	return seq
}

// Mutate returns a copy of seq with one position changed to a different
// choice — the aged-evolution mutation operator.
func (s *Space) Mutate(r *rand.Rand, seq Sequence) Sequence {
	out := seq.Clone()
	pos := r.Intn(len(out))
	for {
		c := uint8(r.Intn(s.NumOps))
		if c != out[pos] {
			out[pos] = c
			break
		}
	}
	return out
}

// Decode deterministically builds the model a sequence describes. Ops 0-5
// are stacked layer blocks; op 6 adds a residual skip (fork-join); op 7 is
// a nested submodel (two stacked leaves), exercising recursive flattening.
// Identical sequence prefixes decode to identical architecture prefixes,
// which is what makes mutation chains LCP-friendly.
//
// Every op carries ≈ Width² parameter bytes (as cell-based spaces like the
// CANDLE ATTN space do), so candidate model sizes — and hence from-scratch
// training times — are nearly uniform; training-time variation then comes
// from the frozen-prefix fraction, which is what shapes the paper's
// Figure 9 task patterns.
func (s *Space) Decode(seq Sequence) (*model.Flat, error) {
	s.setDefaults()
	if len(seq) != s.Positions {
		return nil, fmt.Errorf("nas: sequence has %d positions, space wants %d", len(seq), s.Positions)
	}
	w := s.Width
	m := model.New("cand")
	cur := m.Input("input", w)
	for i, c := range seq {
		if int(c) >= s.NumOps {
			return nil, fmt.Errorf("nas: choice %d at position %d out of range", c, i)
		}
		name := fmt.Sprintf("cell%d", i)
		switch c {
		case 0:
			cur = m.Apply(model.Dense{In: w, Out: w, Activation: "relu"}, name, cur)
		case 1:
			cur = m.Apply(model.Dense{In: w, Out: w, Activation: "tanh", UseBias: true}, name, cur)
		case 2:
			cur = m.Apply(model.Dense{In: w, Out: w, Activation: "gelu"}, name, cur)
		case 3:
			cur = m.Apply(model.Dense{In: w, Out: w, Activation: "sigmoid"}, name, cur)
			cur = m.Apply(model.LayerNorm{Dim: w}, name+"_ln", cur)
		case 4:
			// Half-width attention ≈ w² parameters, size-balanced with the
			// dense ops.
			cur = m.Apply(model.MultiHeadAttention{Dim: w / 2, Heads: 2}, name, cur)
		case 5:
			cur = m.Apply(model.Dense{In: w, Out: w, Activation: "relu"}, name, cur)
			cur = m.Apply(model.Dropout{Rate100: 20}, name+"_drop", cur)
		case 6:
			branch := m.Apply(model.Dense{In: w, Out: w, Activation: "relu", UseBias: true}, name+"_br", cur)
			cur = m.Apply(model.Add{}, name+"_add", cur, branch)
		default: // 7: nested submodel of two leaves
			sub := model.New(name + "_sub")
			sin := sub.Input("in", w)
			h := sub.Apply(model.Dense{In: w, Out: w, Activation: "relu"}, "fc1", sin)
			h = sub.Apply(model.LayerNorm{Dim: w}, "ln", h)
			sub.SetOutputs(h)
			cur = m.Apply(model.Submodel{M: sub}, name, cur)
		}
	}
	head := m.Apply(model.Dense{In: w, Out: 2, Activation: "softmax"}, "head", cur)
	m.SetOutputs(head)
	return model.Flatten(m)
}
