package nas

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func TestSpaceDefaultsAndSize(t *testing.T) {
	s := NewSpace(0, 0, 0)
	if s.Positions != 24 || s.NumOps != 8 || s.Width != 768 {
		t.Fatalf("defaults = %+v", s)
	}
	// 8^24 ≈ 4.7e21, bracketing the paper's 3.1e17 ATTN space.
	if s.Size() < 1e17 {
		t.Errorf("Size = %g, want ≥1e17", s.Size())
	}
}

func TestRandomAndMutate(t *testing.T) {
	s := NewSpace(10, 8, 8)
	r := rand.New(rand.NewSource(1))
	seq := s.Random(r)
	if len(seq) != 10 {
		t.Fatalf("len = %d", len(seq))
	}
	mut := s.Mutate(r, seq)
	diff := 0
	for i := range seq {
		if seq[i] != mut[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Errorf("mutation changed %d positions, want 1", diff)
	}
	// Mutate must not alias the input.
	if &seq[0] == &mut[0] {
		t.Error("Mutate aliases input")
	}
}

func TestDecodeDeterministicAndValid(t *testing.T) {
	s := NewSpace(12, 8, 8)
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 20; i++ {
		seq := s.Random(r)
		f1, err := s.Decode(seq)
		if err != nil {
			t.Fatal(err)
		}
		if err := f1.Graph.Validate(); err != nil {
			t.Fatalf("decoded graph invalid: %v", err)
		}
		f2, err := s.Decode(seq)
		if err != nil {
			t.Fatal(err)
		}
		if !f1.Graph.Equal(f2.Graph) {
			t.Fatal("Decode not deterministic")
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	s := NewSpace(4, 8, 8)
	if _, err := s.Decode(Sequence{1, 2}); err == nil {
		t.Error("short sequence accepted")
	}
	if _, err := s.Decode(Sequence{1, 2, 3, 9}); err == nil {
		t.Error("out-of-range choice accepted")
	}
}

// TestMutationPreservesPrefix is the property NAS transfer learning rests
// on: mutating position k leaves the architecture prefix before cell k
// identical, so parent and child share a long LCP.
func TestMutationPreservesPrefix(t *testing.T) {
	s := NewSpace(16, 8, 8)
	r := rand.New(rand.NewSource(3))
	longPrefixes := 0
	for i := 0; i < 20; i++ {
		parent := s.Random(r)
		child := s.Mutate(r, parent)
		fp, err := s.Decode(parent)
		if err != nil {
			t.Fatal(err)
		}
		fc, err := s.Decode(child)
		if err != nil {
			t.Fatal(err)
		}
		lcp := graph.LCPSize(fc.Graph, fp.Graph)
		if lcp >= fc.Graph.NumVertices()/2 {
			longPrefixes++
		}
		if lcp == 0 {
			t.Error("mutation destroyed the shared input prefix")
		}
	}
	if longPrefixes < 8 {
		t.Errorf("only %d/20 mutations kept ≥50%% prefix", longPrefixes)
	}
}

func TestFitnessProperties(t *testing.T) {
	s := NewSpace(16, 8, 8)
	sur := NewSurrogate(s, 7)
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		f := sur.Fitness(s.Random(r))
		if f < 0 || f > 1 {
			t.Fatalf("fitness %v out of [0,1]", f)
		}
	}
	// Deterministic.
	seq := s.Random(r)
	if sur.Fitness(seq) != sur.Fitness(seq) {
		t.Error("fitness not deterministic")
	}
	// Smooth under mutation: single-position changes move fitness by a
	// bounded amount (1 pref + 2 adj terms over the normalizer).
	for i := 0; i < 50; i++ {
		a := s.Random(r)
		b := s.Mutate(r, a)
		delta := sur.Fitness(a) - sur.Fitness(b)
		if delta < 0 {
			delta = -delta
		}
		if delta > 0.2 {
			t.Errorf("mutation moved fitness by %v", delta)
		}
	}
}

func TestAccuracyModelShape(t *testing.T) {
	s := NewSpace(16, 8, 8)
	sur := NewSurrogate(s, 7)
	r := rand.New(rand.NewSource(5))
	seq := s.Random(r)

	// Experience raises accuracy.
	quiet := rand.New(rand.NewSource(6))
	sur2 := *sur
	sur2.NoiseStd = 0
	accFresh := sur2.Accuracy(seq, 1, quiet)
	accExp := sur2.Accuracy(seq, 4, quiet)
	if accExp <= accFresh {
		t.Errorf("experience did not help: fresh=%v exp=%v", accFresh, accExp)
	}
	if accExp-accFresh > sur.ExpGain+1e-9 {
		t.Errorf("experience bonus %v exceeds ExpGain", accExp-accFresh)
	}
	// Cap respected.
	for i := 0; i < 200; i++ {
		if a := sur.Accuracy(s.Random(r), 100, r); a > sur.MaxAcc {
			t.Fatalf("accuracy %v above cap", a)
		}
	}
}

func TestChildExperience(t *testing.T) {
	if got := ChildExperience(0, 0.5); got != 1 {
		t.Errorf("no ancestor experience: %v", got)
	}
	if got := ChildExperience(3, 0.5); got != 2.5 {
		t.Errorf("ChildExperience(3, .5) = %v", got)
	}
	// Fixed point for full inheritance chains: E → 1/(1-p).
	e := 1.0
	for i := 0; i < 50; i++ {
		e = ChildExperience(e, 0.5)
	}
	if e < 1.99 || e > 2.01 {
		t.Errorf("chain fixed point = %v, want ≈2", e)
	}
}

func TestTrainTimeFrozenSpeedup(t *testing.T) {
	s := NewSpace(16, 8, 8)
	sur := NewSurrogate(s, 7)
	sur.TimeCV = 0
	r := rand.New(rand.NewSource(8))
	full := sur.TrainTime(1<<30, 0, r)
	half := sur.TrainTime(1<<30, 1<<29, r)
	if half >= full {
		t.Errorf("freezing did not speed up: full=%v half=%v", full, half)
	}
	// Frozen layers still cost a forward pass: half-frozen is more than
	// half the variable cost.
	varFull := full - sur.FixedTime
	varHalf := half - sur.FixedTime
	if varHalf < varFull/2 {
		t.Errorf("frozen forward cost missing: %v < %v/2", varHalf, varFull)
	}
}

func TestEvolutionWarmupAndTournament(t *testing.T) {
	s := NewSpace(8, 8, 8)
	evo := NewEvolution(s, 1, 10, 3, 50)
	// Warm-up candidates are random; report them with known qualities.
	for i := 0; i < 10; i++ {
		c, ok := evo.Next()
		if !ok {
			t.Fatal("budget exhausted during warmup")
		}
		c.Quality = float64(i) / 10
		if retired := evo.Report(c); len(retired) != 0 {
			t.Errorf("retirement during warmup: %v", retired)
		}
	}
	// Post-warmup candidates must be mutations (distance 1) of members.
	pop := evo.PopulationSnapshot()
	c, ok := evo.Next()
	if !ok {
		t.Fatal("no candidate after warmup")
	}
	minDist := 99
	for _, m := range pop {
		d := 0
		for i := range m.Seq {
			if m.Seq[i] != c.Seq[i] {
				d++
			}
		}
		if d < minDist {
			minDist = d
		}
	}
	if minDist != 1 {
		t.Errorf("candidate is distance %d from nearest member, want 1", minDist)
	}
}

func TestEvolutionRetirementFIFO(t *testing.T) {
	s := NewSpace(8, 8, 8)
	evo := NewEvolution(s, 1, 5, 2, 100)
	var ids []uint64
	for i := 0; i < 8; i++ {
		c, _ := evo.Next()
		c.Quality = 0.5
		ids = append(ids, c.ID)
		retired := evo.Report(c)
		if i < 5 {
			if len(retired) != 0 {
				t.Fatalf("retired %v before population filled", retired)
			}
		} else {
			if len(retired) != 1 || retired[0].ID != ids[i-5] {
				t.Fatalf("step %d: retired %+v, want oldest %d", i, retired, ids[i-5])
			}
		}
	}
}

func TestEvolutionBudget(t *testing.T) {
	s := NewSpace(8, 8, 8)
	evo := NewEvolution(s, 1, 5, 2, 7)
	n := 0
	for {
		c, ok := evo.Next()
		if !ok {
			break
		}
		n++
		c.Quality = 0.1
		evo.Report(c)
	}
	if n != 7 || !evo.Done() || evo.Completed() != 7 {
		t.Errorf("n=%d done=%v completed=%d", n, evo.Done(), evo.Completed())
	}
	if len(evo.History()) != 7 {
		t.Errorf("history = %d", len(evo.History()))
	}
}

func TestEvolutionClimbsFitness(t *testing.T) {
	s := NewSpace(16, 8, 8)
	sur := NewSurrogate(s, 7)
	evo := NewEvolution(s, 2, 50, 8, 600)
	r := rand.New(rand.NewSource(9))
	var firstQuarter, lastQuarter float64
	i := 0
	for {
		c, ok := evo.Next()
		if !ok {
			break
		}
		c.Quality = sur.Accuracy(c.Seq, 1, r)
		evo.Report(c)
		if i < 150 {
			firstQuarter += c.Quality
		}
		if i >= 450 {
			lastQuarter += c.Quality
		}
		i++
	}
	firstQuarter /= 150
	lastQuarter /= 150
	if lastQuarter <= firstQuarter+0.02 {
		t.Errorf("evolution failed to climb: early=%v late=%v", firstQuarter, lastQuarter)
	}
}

func TestRandomSearchController(t *testing.T) {
	s := NewSpace(8, 8, 8)
	rs := NewRandomSearch(s, 1, 5, 20)
	n := 0
	var ids []uint64
	for {
		c, ok := rs.Next()
		if !ok {
			break
		}
		n++
		c.Quality = float64(n) / 20
		ids = append(ids, c.ID)
		retired := rs.Report(c)
		if n > 5 {
			if len(retired) != 1 || retired[0].ID != ids[n-6] {
				t.Fatalf("step %d: retired %+v", n, retired)
			}
		} else if len(retired) != 0 {
			t.Fatalf("early retirement: %+v", retired)
		}
	}
	if n != 20 || !rs.Done() || rs.Completed() != 20 {
		t.Errorf("n=%d done=%v", n, rs.Done())
	}
	best, ok := rs.Best()
	if !ok || best.Quality != 1.0 {
		t.Errorf("best = %+v", best)
	}
}

// TestEvolutionBeatsRandomSearch reproduces the §2 claim that guided
// search finds better candidates than uniform sampling for the same
// budget.
func TestEvolutionBeatsRandomSearch(t *testing.T) {
	base := smallSim(ModeNoTransfer, 16)
	base.Budget = 300
	evoRes, err := RunSim(base)
	if err != nil {
		t.Fatal(err)
	}
	rnd := base
	rnd.RandomSearch = true
	rndRes, err := RunSim(rnd)
	if err != nil {
		t.Fatal(err)
	}
	if evoRes.BestQuality() <= rndRes.BestQuality() {
		t.Errorf("evolution best %.4f ≤ random best %.4f",
			evoRes.BestQuality(), rndRes.BestQuality())
	}
	// Mean of the last third must also favour evolution (population
	// quality, not just a lucky max).
	tail := func(res *SimResult) float64 {
		h := res.History
		var sum float64
		n := 0
		for _, c := range h[2*len(h)/3:] {
			sum += c.Quality
			n++
		}
		return sum / float64(n)
	}
	if tail(evoRes) <= tail(rndRes) {
		t.Errorf("evolution tail mean %.4f ≤ random %.4f", tail(evoRes), tail(rndRes))
	}
}
