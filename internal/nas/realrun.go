package nas

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/trace"
)

// RealConfig parameterizes a real-mode NAS run: goroutine workers
// executing the full transfer-learning pipeline against an actual EvoStore
// repository (in-process or TCP-attached), with surrogate training.
type RealConfig struct {
	Workers    int
	Space      *Space
	Population int
	Sample     int
	Budget     int
	// Retire removes aged-out candidates from the repository.
	Retire bool
	// TrainScale multiplies surrogate train times into real sleeps; 0
	// disables sleeping (pure repository stress).
	TrainScale float64

	SurrogateSeed int64
	SearchSeed    int64
}

// RealResult aggregates a real-mode run.
type RealResult struct {
	Trace    *trace.Log
	History  []TimedCandidate
	Makespan time.Duration
	// Best is the top candidate found.
	Best Candidate
}

// RunReal executes a NAS search against repo using cfg.Workers goroutines.
// It exercises the entire public EvoStore API per candidate: BestAncestor
// (collective LCP query), TransferPrefix (parallel partial reads), the
// training surrogate with frozen-prefix speedup, StoreDerived (incremental
// write) and Retire for aged-out candidates.
func RunReal(ctx context.Context, repo *core.Repository, cfg RealConfig) (*RealResult, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Space == nil {
		cfg.Space = NewSpace(12, 8, 8)
	}
	sur := NewSurrogate(cfg.Space, cfg.SurrogateSeed)
	evo := NewEvolution(cfg.Space, cfg.SearchSeed, cfg.Population, cfg.Sample, cfg.Budget)

	result := &RealResult{Trace: &trace.Log{}}
	start := time.Now()
	var mu sync.Mutex // guards result.History and the experience table
	experience := make(map[core.ModelID]float64)

	var wg sync.WaitGroup
	errCh := make(chan error, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.SearchSeed + int64(worker)*7919))
			for {
				cand, ok := evo.Next()
				if !ok {
					return
				}
				tStart := time.Since(start).Seconds()
				f, err := cfg.Space.Decode(cand.Seq)
				if err != nil {
					errCh <- err
					return
				}

				// Query → transfer → train → store. An ancestor can be
				// retired concurrently at any point after the query (its
				// metadata vanishes immediately and its unshared tensors
				// follow); on such a race the pipeline retries against the
				// next-best ancestor.
				var id core.ModelID
				var acc, exp float64
				var exclude []core.ModelID
				const maxAttempts = 6
				for attempt := 0; ; attempt++ {
					ws := model.Materialize(f, cand.ID^uint64(cfg.SearchSeed))
					anc, found, err := repo.BestAncestorExcluding(ctx, f, exclude)
					if err != nil {
						errCh <- fmt.Errorf("worker %d: query: %w", worker, err)
						return
					}
					var frozen []graph.VertexID
					var frozenBytes int64
					exp = 1.0
					if found {
						if err := repo.TransferPrefix(ctx, f, ws, anc); err != nil {
							if attempt < maxAttempts {
								exclude = append(exclude, anc.Meta.Model)
								continue
							}
							errCh <- fmt.Errorf("worker %d: transfer: %w", worker, err)
							return
						}
						frozen = anc.Prefix
						frozenBytes = anc.PrefixBytes(f)
						mu.Lock()
						ancExp := experience[anc.Meta.Model]
						mu.Unlock()
						if total := f.TotalParamBytes(); total > 0 {
							exp = ChildExperience(ancExp, float64(frozenBytes)/float64(total))
						}
					}

					// "Train": perturb the non-frozen vertices, optionally
					// sleeping the scaled surrogate duration.
					trainT := sur.TrainTime(f.TotalParamBytes(), frozenBytes, rng)
					if cfg.TrainScale > 0 {
						time.Sleep(time.Duration(trainT * cfg.TrainScale * float64(time.Second)))
					}
					inFrozen := make(map[graph.VertexID]bool, len(frozen))
					for _, v := range frozen {
						inFrozen[v] = true
					}
					for v := 0; v < f.Graph.NumVertices(); v++ {
						if !inFrozen[graph.VertexID(v)] {
							ws.PerturbVertex(graph.VertexID(v), cand.ID)
						}
					}
					acc = sur.Accuracy(cand.Seq, exp, rng)

					if found {
						id, err = repo.StoreDerived(ctx, f, ws, acc, anc, frozen)
						if err != nil && attempt < maxAttempts {
							// Pinning the inherited tensors may have raced a
							// retirement; try the next ancestor.
							exclude = append(exclude, anc.Meta.Model)
							continue
						}
					} else {
						id, err = repo.Store(ctx, f, ws, acc)
					}
					if err != nil {
						errCh <- fmt.Errorf("worker %d: store: %w", worker, err)
						return
					}
					break
				}
				mu.Lock()
				experience[id] = exp
				mu.Unlock()

				cand.Quality = acc
				cand.Experience = exp
				storedID := uint64(id)
				cand.ID = storedID
				tEnd := time.Since(start).Seconds()
				result.Trace.Add(trace.Event{Worker: worker, Start: tStart, End: tEnd, Kind: "task", Value: acc})
				mu.Lock()
				result.History = append(result.History, TimedCandidate{Candidate: cand, Finish: tEnd})
				mu.Unlock()

				for _, old := range evo.Report(cand) {
					if cfg.Retire {
						if _, err := repo.Retire(ctx, core.ModelID(old.ID)); err != nil {
							errCh <- fmt.Errorf("worker %d: retire %d: %w", worker, old.ID, err)
							return
						}
						mu.Lock()
						delete(experience, core.ModelID(old.ID))
						mu.Unlock()
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			return nil, err
		}
	}
	result.Makespan = time.Since(start)
	if best, ok := evo.Best(); ok {
		result.Best = best
	}
	return result, nil
}
