package nas

import (
	"math/rand"
	"sync"
)

// Candidate is one evaluated (or in-flight) member of the population.
type Candidate struct {
	ID      uint64
	Seq     Sequence
	Quality float64
	// Experience is the lineage experience the evaluation reported (see
	// Surrogate); the controller carries it so descendants can inherit.
	Experience float64
}

// Evolution is the aged (regularized) evolution controller [Real et al.]:
// the population is a FIFO queue of the most recent P evaluated
// candidates; each new candidate is a mutation of the best of S randomly
// sampled members; the oldest member is dropped (and reported for
// retirement) when the population overflows.
//
// The controller is deliberately execution-agnostic: runners call Next to
// draw work and Report to return results, from any number of goroutines
// (real mode) or from a virtual-time event loop (simulation mode).
type Evolution struct {
	mu sync.Mutex

	space      *Space
	r          *rand.Rand
	Population int
	Sample     int
	// Budget is the total number of candidates to evaluate.
	Budget int

	issued    int
	completed int
	nextID    uint64
	pop       []Candidate // FIFO: oldest first
	history   []Candidate
}

// NewEvolution creates a controller. population and sample default to 100
// and 10; budget defaults to 1000 (the paper's setting).
func NewEvolution(space *Space, seed int64, population, sample, budget int) *Evolution {
	space.setDefaults()
	if population <= 0 {
		population = 100
	}
	if sample <= 0 {
		sample = 10
	}
	if sample > population {
		sample = population
	}
	if budget <= 0 {
		budget = 1000
	}
	return &Evolution{
		space:      space,
		r:          rand.New(rand.NewSource(seed)),
		Population: population,
		Sample:     sample,
		Budget:     budget,
	}
}

// Next draws the next candidate to evaluate, or ok=false when the budget
// is exhausted. During warm-up (fewer issued than the population size)
// candidates are random; afterwards they are mutations of tournament
// winners among the already-completed population.
func (e *Evolution) Next() (Candidate, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.issued >= e.Budget {
		return Candidate{}, false
	}
	e.issued++
	e.nextID++
	c := Candidate{ID: e.nextID}
	if len(e.pop) == 0 || e.issued <= e.Population {
		c.Seq = e.space.Random(e.r)
		return c, true
	}
	// Tournament: sample S members, mutate the best.
	best := -1
	for i := 0; i < e.Sample; i++ {
		idx := e.r.Intn(len(e.pop))
		if best < 0 || e.pop[idx].Quality > e.pop[best].Quality {
			best = idx
		}
	}
	c.Seq = e.space.Mutate(e.r, e.pop[best].Seq)
	return c, true
}

// Report returns an evaluated candidate to the population. It returns the
// candidates that aged out (to be retired from the repository) — zero or
// one per call.
func (e *Evolution) Report(c Candidate) []Candidate {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.completed++
	e.pop = append(e.pop, c)
	e.history = append(e.history, c)
	var retired []Candidate
	for len(e.pop) > e.Population {
		retired = append(retired, e.pop[0])
		e.pop = e.pop[1:]
	}
	return retired
}

// Done reports whether every budgeted candidate has completed.
func (e *Evolution) Done() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.completed >= e.Budget
}

// Completed returns the number of evaluated candidates so far.
func (e *Evolution) Completed() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.completed
}

// History returns all evaluated candidates in completion order.
func (e *Evolution) History() []Candidate {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]Candidate(nil), e.history...)
}

// PopulationSnapshot returns the current population, oldest first.
func (e *Evolution) PopulationSnapshot() []Candidate {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]Candidate(nil), e.pop...)
}

// Best returns the highest-quality candidate evaluated so far.
func (e *Evolution) Best() (Candidate, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.history) == 0 {
		return Candidate{}, false
	}
	best := e.history[0]
	for _, c := range e.history[1:] {
		if c.Quality > best.Quality {
			best = c
		}
	}
	return best, true
}
