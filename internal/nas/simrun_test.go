package nas

import (
	"testing"
)

// smallSim returns a config sized for unit tests (seconds of CPU, not
// paper scale) while keeping all mechanisms engaged.
func smallSim(mode StorageMode, workers int) SimConfig {
	cfg := SimConfig{
		Workers:       workers,
		Space:         NewSpace(12, 8, 16),
		Population:    30,
		Sample:        5,
		Budget:        150,
		Mode:          mode,
		Retire:        true,
		SurrogateSeed: 7,
		SearchSeed:    11,
		// Width-16 models are ~15 KB, so scale the per-byte train cost up
		// to keep the frozen-prefix speedup visible at test size.
		TrainFixed:   1.0,
		TrainPerByte: 6e-4,
	}
	if mode == ModeHDF5PFS {
		// Scale the baseline's infrastructure down with the model size so
		// its relative I/O and metadata costs match the paper-scale setup.
		cfg.PFS.OSTs = 4
		cfg.PFS.OSTBandwidth = 100e3
		cfg.PFS.StripeCount = 2
		cfg.PFS.StripeSize = 4 << 10
		cfg.ClientBandwidth = 100e3
		cfg.RedisScanPerModel = 5e-3
		cfg.RedisOpCost = 5e-3
	}
	return cfg
}

func TestSimRunCompletesBudget(t *testing.T) {
	for _, mode := range []StorageMode{ModeNoTransfer, ModeEvoStore, ModeHDF5PFS} {
		res, err := RunSim(smallSim(mode, 16))
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if len(res.History) != 150 {
			t.Errorf("%v: history = %d, want 150", mode, len(res.History))
		}
		if res.Trace.Len() != 150 {
			t.Errorf("%v: trace = %d events", mode, res.Trace.Len())
		}
		if res.Makespan <= 0 {
			t.Errorf("%v: makespan = %v", mode, res.Makespan)
		}
		// Finish times must be within the makespan and non-decreasing in
		// recorded order (event loop is chronological).
		prev := 0.0
		for _, c := range res.History {
			if c.Finish < prev-1e-9 || c.Finish > res.Makespan+1e-9 {
				t.Fatalf("%v: finish %v out of order/makespan %v", mode, c.Finish, res.Makespan)
			}
			prev = c.Finish
		}
	}
}

func TestSimDeterministic(t *testing.T) {
	a, err := RunSim(smallSim(ModeEvoStore, 8))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSim(smallSim(ModeEvoStore, 8))
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || len(a.History) != len(b.History) {
		t.Fatal("runs differ")
	}
	for i := range a.History {
		if a.History[i].Quality != b.History[i].Quality || a.History[i].Finish != b.History[i].Finish {
			t.Fatalf("candidate %d differs", i)
		}
	}
}

// TestSimTransferBeatsNoTransfer checks the Figure 6/7 shape: transfer
// reaches high accuracy sooner and tops out higher.
func TestSimTransferBeatsNoTransfer(t *testing.T) {
	evo, err := RunSim(smallSim(ModeEvoStore, 16))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := RunSim(smallSim(ModeNoTransfer, 16))
	if err != nil {
		t.Fatal(err)
	}
	if evo.BestQuality() <= plain.BestQuality() {
		t.Errorf("best: evostore=%v notransfer=%v", evo.BestQuality(), plain.BestQuality())
	}
	// Time to reach (just under) the baseline's best quality: transfer
	// must get there well before the baseline's run ends.
	threshold := plain.BestQuality() - 0.01
	te, oke := evo.FirstAbove(threshold)
	tp, okp := plain.FirstAbove(threshold)
	if !oke {
		t.Fatalf("EvoStore never reached %v", threshold)
	}
	if okp && te >= tp {
		t.Errorf("transfer not earlier to %.3f: evostore %v vs plain %v", threshold, te, tp)
	}
	// End-to-end runtime shorter with transfer (frozen layers train faster).
	if evo.Makespan >= plain.Makespan {
		t.Errorf("makespan: evostore=%v notransfer=%v", evo.Makespan, plain.Makespan)
	}
}

// TestSimEvoStoreOverheadSmall checks the paper's <2% repository-overhead
// claim holds in the simulated configuration (we allow 5% at this tiny
// scale).
func TestSimEvoStoreOverheadSmall(t *testing.T) {
	res, err := RunSim(smallSim(ModeEvoStore, 16))
	if err != nil {
		t.Fatal(err)
	}
	frac := res.IOSeconds / (res.IOSeconds + res.TrainSeconds)
	if frac > 0.05 {
		t.Errorf("repository overhead fraction = %v", frac)
	}
}

// TestSimHDF5SlowerThanEvoStore checks the Figure 8 ordering.
func TestSimHDF5SlowerThanEvoStore(t *testing.T) {
	evo, err := RunSim(smallSim(ModeEvoStore, 16))
	if err != nil {
		t.Fatal(err)
	}
	h5, err := RunSim(smallSim(ModeHDF5PFS, 16))
	if err != nil {
		t.Fatal(err)
	}
	if h5.Makespan <= evo.Makespan {
		t.Errorf("makespan: hdf5=%v evostore=%v", h5.Makespan, evo.Makespan)
	}
	if h5.IOSeconds <= evo.IOSeconds {
		t.Errorf("io: hdf5=%v evostore=%v", h5.IOSeconds, evo.IOSeconds)
	}
}

// TestSimStorageDedup checks the Figure 10 ordering: EvoStore stores
// dramatically less than full copies, and retirement shrinks both.
func TestSimStorageDedup(t *testing.T) {
	run := func(mode StorageMode, retire bool) *SimResult {
		cfg := smallSim(mode, 16)
		cfg.Retire = retire
		res, err := RunSim(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	evoNo := run(ModeEvoStore, false)
	evoYes := run(ModeEvoStore, true)
	h5No := run(ModeHDF5PFS, false)
	h5Yes := run(ModeHDF5PFS, true)

	if evoNo.StorageBytes >= h5No.StorageBytes {
		t.Errorf("no-retire: evostore=%d hdf5=%d", evoNo.StorageBytes, h5No.StorageBytes)
	}
	if evoYes.StorageBytes >= evoNo.StorageBytes {
		t.Errorf("retire did not shrink evostore: %d vs %d", evoYes.StorageBytes, evoNo.StorageBytes)
	}
	if h5Yes.StorageBytes >= h5No.StorageBytes {
		t.Errorf("retire did not shrink hdf5: %d vs %d", h5Yes.StorageBytes, h5No.StorageBytes)
	}
	if evoYes.StorageBytes >= h5Yes.StorageBytes {
		t.Errorf("with-retire: evostore=%d hdf5=%d", evoYes.StorageBytes, h5Yes.StorageBytes)
	}
}

// TestSimWaveBehaviour checks the Figure 9 shape: DH-NoTransfer's task
// starts are more synchronized (wavier) than EvoStore's.
func TestSimWaveBehaviour(t *testing.T) {
	cfgPlain := smallSim(ModeNoTransfer, 32)
	cfgPlain.Budget = 320
	plain, err := RunSim(cfgPlain)
	if err != nil {
		t.Fatal(err)
	}
	cfgEvo := smallSim(ModeEvoStore, 32)
	cfgEvo.Budget = 320
	evo, err := RunSim(cfgEvo)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Trace.WaveScore() <= evo.Trace.WaveScore() {
		t.Errorf("wave scores: plain=%v evostore=%v (want plain wavier)",
			plain.Trace.WaveScore(), evo.Trace.WaveScore())
	}
}

func TestSimMoreWorkersFinishFaster(t *testing.T) {
	small, err := RunSim(smallSim(ModeEvoStore, 8))
	if err != nil {
		t.Fatal(err)
	}
	big, err := RunSim(smallSim(ModeEvoStore, 32))
	if err != nil {
		t.Fatal(err)
	}
	if big.Makespan >= small.Makespan {
		t.Errorf("scaling failed: 8w=%v 32w=%v", small.Makespan, big.Makespan)
	}
}
