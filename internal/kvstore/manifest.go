package kvstore

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/wire"
)

// Manifest is the epoch-versioned on-disk descriptor of a provider data
// directory (kopia-style format manifest): the layout version the writing
// binary used, the feature flags it relied on, and the provider identity
// plus last-known placement needed to rejoin a cluster after a crash.
// A binary refuses to open a directory whose manifest names a format
// version or feature it does not understand, instead of silently
// corrupting state written by a newer release.
//
// File layout (MANIFEST in the data dir, little-endian, written
// atomically via temp file + fsync + rename + dir fsync):
//
//	u32 magic "EVSM" | u32 format version | u32 provider id |
//	u64 placement epoch | bytes32 encoded placement state |
//	u32 feature count | feature strings | u32 crc32 (of all prior bytes)
type Manifest struct {
	// FormatVersion is the manifest layout version; SaveManifest always
	// writes ManifestFormatVersion.
	FormatVersion uint32
	// ProviderID is the provider that owns the data dir. A restarted
	// server must refuse a dir recorded for a different provider.
	ProviderID uint32
	// PlacementEpoch is the cluster placement epoch in force when the
	// manifest was written; the restart-rejoin handshake compares it
	// against peers and adopts any newer state.
	PlacementEpoch uint64
	// Placement is the encoded placement state (internal/placement owns
	// the codec; kvstore stores it opaquely).
	Placement []byte
	// Features lists the capabilities the writer relied on; opening fails
	// on any feature outside the supported set.
	Features []string
}

const (
	// ManifestName is the manifest's filename inside a data dir.
	ManifestName = "MANIFEST"
	// ManifestFormatVersion is the newest manifest layout this binary
	// writes and understands.
	ManifestFormatVersion = 1

	manifestMagic = 0x4556534d // "EVSM"
)

// FeatureDurableCatalog marks a data dir whose provider catalog (models,
// refcounts, repair journals, tombstones) is persisted under cat/ keys
// and replayed at open.
const FeatureDurableCatalog = "catalog-v1"

// supportedFeatures gates LoadManifest: a feature outside this set was
// written by a newer binary relying on semantics this one lacks.
var supportedFeatures = map[string]bool{
	FeatureDurableCatalog: true,
}

// LoadManifest reads and validates dir's manifest. A missing manifest is
// not an error: (nil, nil) is returned so callers can treat the dir as
// freshly initialized.
func LoadManifest(dir string) (*Manifest, error) {
	raw, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	if len(raw) < 4 {
		return nil, fmt.Errorf("kvstore: manifest in %s: truncated", dir)
	}
	body, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.ChecksumIEEE(body) != wire.NewReader(tail).U32() {
		return nil, fmt.Errorf("kvstore: manifest in %s: checksum mismatch", dir)
	}
	r := wire.NewReader(body)
	if r.U32() != manifestMagic {
		return nil, fmt.Errorf("kvstore: manifest in %s: bad magic", dir)
	}
	m := &Manifest{
		FormatVersion:  r.U32(),
		ProviderID:     r.U32(),
		PlacementEpoch: r.U64(),
		Placement:      append([]byte(nil), r.Bytes32()...),
	}
	n := int(r.U32())
	for i := 0; i < n && r.Err() == nil; i++ {
		m.Features = append(m.Features, r.Str())
	}
	if r.Err() != nil {
		return nil, fmt.Errorf("kvstore: manifest in %s: %w", dir, r.Err())
	}
	if m.FormatVersion > ManifestFormatVersion {
		return nil, fmt.Errorf("kvstore: manifest in %s: format version %d newer than supported %d",
			dir, m.FormatVersion, ManifestFormatVersion)
	}
	var unknown []string
	for _, f := range m.Features {
		if !supportedFeatures[f] {
			unknown = append(unknown, f)
		}
	}
	if len(unknown) > 0 {
		return nil, fmt.Errorf("kvstore: manifest in %s requires unsupported features %s",
			dir, strings.Join(unknown, ","))
	}
	return m, nil
}

// SaveManifest atomically writes m as dir's manifest (temp file + fsync +
// rename + dir fsync, so a crash leaves either the old or the new
// manifest, never a torn one). The stored format version is always
// ManifestFormatVersion.
func SaveManifest(dir string, m *Manifest) error {
	w := wire.NewWriter(64 + len(m.Placement))
	w.U32(manifestMagic)
	w.U32(ManifestFormatVersion)
	w.U32(m.ProviderID)
	w.U64(m.PlacementEpoch)
	w.Bytes32(m.Placement)
	w.U32(uint32(len(m.Features)))
	for _, f := range m.Features {
		w.String(f)
	}
	body := w.Bytes()
	var crcb [4]byte
	cw := wire.NewWriter(4)
	cw.U32(crc32.ChecksumIEEE(body))
	copy(crcb[:], cw.Bytes())

	tmp := filepath.Join(dir, ManifestName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(body); err == nil {
		_, err = f.Write(crcb[:])
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, ManifestName)); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}
