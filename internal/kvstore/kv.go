// Package kvstore provides the provider-local key-value backends of
// EvoStore. The paper's providers use "an extensible key-value store
// abstraction ... either in-memory (C++ synchronized memory pools) or
// persistently using underlying backends such as RocksDB". This package
// supplies both classes behind one interface: MemKV, a sharded in-memory
// store, and LSMKV, a persistent log-structured merge store (WAL +
// memtable + SSTables + compaction).
package kvstore

import (
	"sort"
	"strings"
	"sync"
)

// KV is the store abstraction providers program against. Implementations
// must be safe for concurrent use. Values passed to Put are copied; values
// returned by Get must not be modified by the caller.
type KV interface {
	// Put stores value under key, replacing any existing entry.
	Put(key string, value []byte) error
	// Get returns the value for key and whether it exists.
	Get(key string) ([]byte, bool, error)
	// Delete removes key; deleting a missing key is not an error.
	Delete(key string) error
	// Scan calls fn for every key with the given prefix in ascending key
	// order until fn returns false. fn must not mutate the store.
	Scan(prefix string, fn func(key string, value []byte) bool) error
	// Len returns the number of live entries.
	Len() int
	// SizeBytes returns the total payload bytes of live entries.
	SizeBytes() int64
	// Close releases resources. The store must not be used afterwards.
	Close() error
}

// Syncer is an optional durability interface: Sync makes every write
// acknowledged so far durable (fsync) without other side effects. LSMKV
// implements it by flushing and fsyncing its WAL; purely in-memory stores
// (MemKV) do not implement it and callers treat that as a no-op.
type Syncer interface {
	Sync() error
}

// ByteKeyGetter is an optional fast-path interface for stores that can look
// a key up from a byte slice without materializing a string. Callers on hot
// read paths (provider segment reads) type-assert for it and fall back to
// KV.Get; implementations must not retain key beyond the call.
type ByteKeyGetter interface {
	GetB(key []byte) ([]byte, bool, error)
}

// memShard is one lock domain of MemKV.
type memShard struct {
	mu    sync.RWMutex
	items map[string][]byte
	bytes int64
}

// MemKV is a sharded in-memory KV: the analogue of the paper's C++
// synchronized memory pools. Shard count fixes the number of lock domains
// so concurrent workers rarely contend.
type MemKV struct {
	shards []memShard
}

// NewMemKV returns an in-memory store with the given shard count (minimum
// 1; 16 is a good default for provider workloads).
func NewMemKV(shards int) *MemKV {
	if shards < 1 {
		shards = 1
	}
	kv := &MemKV{shards: make([]memShard, shards)}
	for i := range kv.shards {
		kv.shards[i].items = make(map[string][]byte)
	}
	return kv
}

// fnv1a32 is FNV-1a over s, identical to hash/fnv's New32a but without the
// hasher allocation. Shard selection must agree between the string and byte
// key paths, so both hash functions mirror this exact recurrence.
func fnv1a32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

func fnv1a32Bytes(b []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range b {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}

func (kv *MemKV) shard(key string) *memShard {
	return &kv.shards[fnv1a32(key)%uint32(len(kv.shards))]
}

// Put implements KV.
func (kv *MemKV) Put(key string, value []byte) error {
	s := kv.shard(key)
	cp := append([]byte(nil), value...)
	s.mu.Lock()
	if old, ok := s.items[key]; ok {
		s.bytes -= int64(len(old))
	}
	s.items[key] = cp
	s.bytes += int64(len(cp))
	s.mu.Unlock()
	return nil
}

// Get implements KV.
func (kv *MemKV) Get(key string) ([]byte, bool, error) {
	s := kv.shard(key)
	s.mu.RLock()
	v, ok := s.items[key]
	s.mu.RUnlock()
	return v, ok, nil
}

// GetB implements ByteKeyGetter: the map index converts the key in place,
// so no string is allocated.
func (kv *MemKV) GetB(key []byte) ([]byte, bool, error) {
	s := &kv.shards[fnv1a32Bytes(key)%uint32(len(kv.shards))]
	s.mu.RLock()
	v, ok := s.items[string(key)]
	s.mu.RUnlock()
	return v, ok, nil
}

// Delete implements KV.
func (kv *MemKV) Delete(key string) error {
	s := kv.shard(key)
	s.mu.Lock()
	if old, ok := s.items[key]; ok {
		s.bytes -= int64(len(old))
		delete(s.items, key)
	}
	s.mu.Unlock()
	return nil
}

// Scan implements KV. It snapshots matching keys first so fn runs without
// holding shard locks.
func (kv *MemKV) Scan(prefix string, fn func(key string, value []byte) bool) error {
	type pair struct {
		k string
		v []byte
	}
	var matched []pair
	for i := range kv.shards {
		s := &kv.shards[i]
		s.mu.RLock()
		for k, v := range s.items {
			if strings.HasPrefix(k, prefix) {
				matched = append(matched, pair{k, v})
			}
		}
		s.mu.RUnlock()
	}
	sort.Slice(matched, func(i, j int) bool { return matched[i].k < matched[j].k })
	for _, p := range matched {
		if !fn(p.k, p.v) {
			break
		}
	}
	return nil
}

// Len implements KV.
func (kv *MemKV) Len() int {
	n := 0
	for i := range kv.shards {
		s := &kv.shards[i]
		s.mu.RLock()
		n += len(s.items)
		s.mu.RUnlock()
	}
	return n
}

// SizeBytes implements KV.
func (kv *MemKV) SizeBytes() int64 {
	var n int64
	for i := range kv.shards {
		s := &kv.shards[i]
		s.mu.RLock()
		n += s.bytes
		s.mu.RUnlock()
	}
	return n
}

// Close implements KV.
func (kv *MemKV) Close() error {
	for i := range kv.shards {
		s := &kv.shards[i]
		s.mu.Lock()
		s.items = map[string][]byte{}
		s.bytes = 0
		s.mu.Unlock()
	}
	return nil
}

var _ KV = (*MemKV)(nil)
