package kvstore

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// runKVContract exercises behaviour every KV implementation must satisfy.
func runKVContract(t *testing.T, kv KV) {
	t.Helper()
	// Missing key.
	if _, ok, err := kv.Get("nope"); ok || err != nil {
		t.Fatalf("Get missing = ok=%v err=%v", ok, err)
	}
	// Put/Get.
	if err := kv.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := kv.Get("a"); !ok || string(v) != "1" {
		t.Fatalf("Get(a) = %q ok=%v", v, ok)
	}
	// Overwrite.
	kv.Put("a", []byte("22"))
	if v, _, _ := kv.Get("a"); string(v) != "22" {
		t.Fatalf("overwrite failed: %q", v)
	}
	// Put must copy its input.
	buf := []byte("mutable")
	kv.Put("copy", buf)
	buf[0] = 'X'
	if v, _, _ := kv.Get("copy"); string(v) != "mutable" {
		t.Errorf("Put did not copy value: %q", v)
	}
	// Delete.
	kv.Put("b", []byte("x"))
	kv.Delete("b")
	if _, ok, _ := kv.Get("b"); ok {
		t.Error("Get found deleted key")
	}
	if err := kv.Delete("never-existed"); err != nil {
		t.Errorf("Delete of missing key errored: %v", err)
	}
	// Scan with prefix, ordered.
	for i := 0; i < 5; i++ {
		kv.Put(fmt.Sprintf("scan/%02d", i), []byte{byte(i)})
	}
	kv.Put("other/x", []byte("y"))
	var keys []string
	kv.Scan("scan/", func(k string, v []byte) bool {
		keys = append(keys, k)
		return true
	})
	if len(keys) != 5 {
		t.Fatalf("Scan returned %d keys: %v", len(keys), keys)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("Scan out of order: %v", keys)
		}
	}
	// Early termination.
	n := 0
	kv.Scan("scan/", func(string, []byte) bool { n++; return false })
	if n != 1 {
		t.Errorf("Scan ignored early stop: %d calls", n)
	}
	// Len counts live entries.
	if kv.Len() != 7 { // a, copy, scan/0..4, other/x = 8? a, copy = 2, scan×5, other×1 = 8
		// recompute: "a", "copy", 5×scan, "other/x" = 8
		t.Logf("Len = %d", kv.Len())
	}
}

func TestMemKVContract(t *testing.T) {
	kv := NewMemKV(4)
	defer kv.Close()
	runKVContract(t, kv)
	if kv.Len() != 8 {
		t.Errorf("Len = %d, want 8", kv.Len())
	}
}

func TestLSMKVContract(t *testing.T) {
	kv, err := OpenLSM(t.TempDir(), LSMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	runKVContract(t, kv)
	if kv.Len() != 8 {
		t.Errorf("Len = %d, want 8", kv.Len())
	}
}

func TestMemKVSizeBytes(t *testing.T) {
	kv := NewMemKV(2)
	kv.Put("a", make([]byte, 100))
	kv.Put("b", make([]byte, 50))
	if kv.SizeBytes() != 150 {
		t.Errorf("SizeBytes = %d", kv.SizeBytes())
	}
	kv.Put("a", make([]byte, 10)) // overwrite shrinks
	if kv.SizeBytes() != 60 {
		t.Errorf("SizeBytes after overwrite = %d", kv.SizeBytes())
	}
	kv.Delete("b")
	if kv.SizeBytes() != 10 {
		t.Errorf("SizeBytes after delete = %d", kv.SizeBytes())
	}
}

func TestMemKVConcurrent(t *testing.T) {
	kv := NewMemKV(8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("w%d/k%d", w, i)
				kv.Put(key, []byte{byte(i)})
				if v, ok, _ := kv.Get(key); !ok || v[0] != byte(i) {
					t.Errorf("lost write %s", key)
					return
				}
				if i%3 == 0 {
					kv.Delete(key)
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestLSMFlushAndReopen(t *testing.T) {
	dir := t.TempDir()
	kv, err := OpenLSM(dir, LSMOptions{FlushBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		kv.Put(fmt.Sprintf("k%03d", i), make([]byte, 64))
	}
	kv.Delete("k050")
	if kv.TableCount() == 0 {
		t.Error("expected at least one flush")
	}
	if err := kv.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: everything must survive, including the tombstone.
	kv2, err := OpenLSM(dir, LSMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer kv2.Close()
	if kv2.Len() != 99 {
		t.Errorf("reopened Len = %d, want 99", kv2.Len())
	}
	if _, ok, _ := kv2.Get("k050"); ok {
		t.Error("deleted key resurrected after reopen")
	}
	if v, ok, _ := kv2.Get("k042"); !ok || len(v) != 64 {
		t.Errorf("k042 lost after reopen: ok=%v len=%d", ok, len(v))
	}
}

func TestLSMWALOnlyRecovery(t *testing.T) {
	dir := t.TempDir()
	kv, err := OpenLSM(dir, LSMOptions{FlushBytes: 1 << 30}) // never flush
	if err != nil {
		t.Fatal(err)
	}
	kv.Put("only-in-wal", []byte("payload"))
	kv.Delete("ghost")
	// Simulate a crash: close syncs the WAL but we never flushed a table.
	if err := kv.Close(); err != nil {
		t.Fatal(err)
	}
	kv2, err := OpenLSM(dir, LSMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer kv2.Close()
	if v, ok, _ := kv2.Get("only-in-wal"); !ok || string(v) != "payload" {
		t.Errorf("WAL replay lost data: ok=%v v=%q", ok, v)
	}
}

func TestLSMCompaction(t *testing.T) {
	dir := t.TempDir()
	kv, err := OpenLSM(dir, LSMOptions{FlushBytes: 512, CompactAfter: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	// Write the same keys repeatedly to create heavy shadowing.
	for round := 0; round < 10; round++ {
		for i := 0; i < 20; i++ {
			kv.Put(fmt.Sprintf("k%02d", i), []byte(fmt.Sprintf("round%d", round)))
		}
	}
	kv.Flush()
	kv.Compact()
	if kv.TableCount() != 1 {
		t.Errorf("TableCount after compact = %d, want 1", kv.TableCount())
	}
	for i := 0; i < 20; i++ {
		v, ok, _ := kv.Get(fmt.Sprintf("k%02d", i))
		if !ok || string(v) != "round9" {
			t.Errorf("k%02d = %q ok=%v, want round9", i, v, ok)
		}
	}
	if kv.Len() != 20 {
		t.Errorf("Len = %d, want 20", kv.Len())
	}
}

func TestLSMTombstoneDroppedByCompaction(t *testing.T) {
	dir := t.TempDir()
	kv, err := OpenLSM(dir, LSMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	kv.Put("dead", []byte("x"))
	kv.Flush()
	kv.Delete("dead")
	kv.Flush()
	kv.Compact()
	if _, ok, _ := kv.Get("dead"); ok {
		t.Error("tombstoned key visible after compaction")
	}
	if kv.TableCount() != 1 {
		t.Errorf("TableCount = %d", kv.TableCount())
	}
}

func TestLSMLargeValues(t *testing.T) {
	kv, err := OpenLSM(t.TempDir(), LSMOptions{FlushBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	big := make([]byte, 3<<20) // exceeds FlushBytes in one put
	for i := range big {
		big[i] = byte(i * 31)
	}
	kv.Put("big", big)
	v, ok, err := kv.Get("big")
	if err != nil || !ok || len(v) != len(big) {
		t.Fatalf("big value lost: ok=%v err=%v len=%d", ok, err, len(v))
	}
	for i := 0; i < len(big); i += 4096 {
		if v[i] != big[i] {
			t.Fatalf("big value corrupt at %d", i)
		}
	}
}

func TestLSMConcurrentReadsDuringWrites(t *testing.T) {
	kv, err := OpenLSM(t.TempDir(), LSMOptions{FlushBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	for i := 0; i < 50; i++ {
		kv.Put(fmt.Sprintf("stable%02d", i), []byte("v"))
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				kv.Put(fmt.Sprintf("w%d/%d", w, i), make([]byte, 256))
				if _, ok, err := kv.Get(fmt.Sprintf("stable%02d", i%50)); !ok || err != nil {
					t.Errorf("stable key lost: ok=%v err=%v", ok, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// Property: a model sequence of random ops applied to MemKV and LSMKV
// yields identical visible state.
func TestQuickMemLSMEquivalence(t *testing.T) {
	type op struct {
		Del bool
		Key uint8
		Val uint8
	}
	f := func(ops []op) bool {
		mem := NewMemKV(4)
		lsm, err := OpenLSM(t.TempDir(), LSMOptions{FlushBytes: 256})
		if err != nil {
			return false
		}
		defer lsm.Close()
		defer mem.Close()
		for _, o := range ops {
			key := fmt.Sprintf("k%d", o.Key%16)
			if o.Del {
				mem.Delete(key)
				lsm.Delete(key)
			} else {
				val := []byte{o.Val}
				mem.Put(key, val)
				lsm.Put(key, val)
			}
		}
		if mem.Len() != lsm.Len() {
			return false
		}
		equal := true
		mem.Scan("", func(k string, v []byte) bool {
			lv, ok, _ := lsm.Get(k)
			if !ok || string(lv) != string(v) {
				equal = false
				return false
			}
			return true
		})
		return equal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBloomFilterNegatives(t *testing.T) {
	entries := make([]ssEntry, 0, 100)
	for i := 0; i < 100; i++ {
		entries = append(entries, ssEntry{key: fmt.Sprintf("key%03d", i), value: []byte("v")})
	}
	tbl, err := writeSSTable(t.TempDir()+"/t.sst", entries)
	if err != nil {
		t.Fatal(err)
	}
	defer tbl.close()
	falsePositives := 0
	for i := 0; i < 1000; i++ {
		if bloomMayContain(tbl.bloom, tbl.nbits, fmt.Sprintf("absent%04d", i)) {
			falsePositives++
		}
	}
	if falsePositives > 50 { // 7 hashes, 10 bits/key → ~1% expected
		t.Errorf("bloom false positive rate too high: %d/1000", falsePositives)
	}
	for i := 0; i < 100; i++ {
		if !bloomMayContain(tbl.bloom, tbl.nbits, fmt.Sprintf("key%03d", i)) {
			t.Fatalf("bloom false negative for key%03d", i)
		}
	}
}

func TestSSTableReopen(t *testing.T) {
	dir := t.TempDir()
	entries := []ssEntry{
		{key: "a", value: []byte("1")},
		{key: "b", tombstone: true},
		{key: "c", value: []byte("3")},
	}
	tbl, err := writeSSTable(dir+"/x.sst", entries)
	if err != nil {
		t.Fatal(err)
	}
	tbl.close()
	re, err := openSSTable(dir + "/x.sst")
	if err != nil {
		t.Fatal(err)
	}
	defer re.close()
	if re.count != 3 || re.minKey != "a" || re.maxKey != "c" {
		t.Errorf("reopened meta: count=%d min=%q max=%q", re.count, re.minKey, re.maxKey)
	}
	v, found, tomb, err := re.get("b")
	if err != nil || !found || !tomb || len(v) != 0 {
		t.Errorf("tombstone roundtrip: found=%v tomb=%v err=%v", found, tomb, err)
	}
	if _, found, _, _ := re.get("zz"); found {
		t.Error("found key beyond maxKey")
	}
}

func BenchmarkMemKVPut(b *testing.B) {
	kv := NewMemKV(16)
	val := make([]byte, 1024)
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kv.Put(fmt.Sprintf("k%d", i%4096), val)
	}
}

func BenchmarkLSMPut(b *testing.B) {
	kv, err := OpenLSM(b.TempDir(), LSMOptions{FlushBytes: 16 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer kv.Close()
	val := make([]byte, 1024)
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kv.Put(fmt.Sprintf("k%d", i%4096), val)
	}
}

func BenchmarkLSMGetFromTables(b *testing.B) {
	kv, err := OpenLSM(b.TempDir(), LSMOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer kv.Close()
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 4096; i++ {
		kv.Put(fmt.Sprintf("k%04d", i), make([]byte, 512))
	}
	kv.Flush()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := fmt.Sprintf("k%04d", r.Intn(4096))
		if _, ok, err := kv.Get(key); !ok || err != nil {
			b.Fatalf("miss %s: %v", key, err)
		}
	}
}
