package kvstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// wal is the write-ahead log that makes memtable contents durable between
// SSTable flushes.
//
// Record layout: u8 op (1=put, 2=delete) | u32 keyLen | u32 valLen |
// key | value | u32 crc. Torn tails (partial final record or bad crc at
// the end) are tolerated during replay, matching standard LSM recovery.
type wal struct {
	f   *os.File
	w   *bufio.Writer
	len int64
}

const (
	walOpPut    = 1
	walOpDelete = 2
)

func createWAL(path string) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &wal{f: f, w: bufio.NewWriterSize(f, 256<<10), len: st.Size()}, nil
}

func (l *wal) append(op byte, key string, value []byte) error {
	var hdr [9]byte
	hdr[0] = op
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(key)))
	binary.LittleEndian.PutUint32(hdr[5:], uint32(len(value)))
	crc := crc32.ChecksumIEEE(hdr[:])
	crc = crc32.Update(crc, crc32.IEEETable, []byte(key))
	crc = crc32.Update(crc, crc32.IEEETable, value)
	if _, err := l.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := l.w.WriteString(key); err != nil {
		return err
	}
	if _, err := l.w.Write(value); err != nil {
		return err
	}
	var crcb [4]byte
	binary.LittleEndian.PutUint32(crcb[:], crc)
	if _, err := l.w.Write(crcb[:]); err != nil {
		return err
	}
	l.len += int64(9 + len(key) + len(value) + 4)
	return nil
}

func (l *wal) sync() error {
	if err := l.w.Flush(); err != nil {
		return err
	}
	return l.f.Sync()
}

func (l *wal) close() error {
	if err := l.w.Flush(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// replayWAL streams records from path. A clean EOF or a torn tail ends
// replay without error; corruption before the tail is reported.
func replayWAL(path string, fn func(op byte, key string, value []byte)) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	for {
		var hdr [9]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return nil // clean end or torn header: stop replay
		}
		op := hdr[0]
		if op != walOpPut && op != walOpDelete {
			return fmt.Errorf("kvstore: wal %s: bad op byte %d", path, op)
		}
		kl := int(binary.LittleEndian.Uint32(hdr[1:]))
		vl := int(binary.LittleEndian.Uint32(hdr[5:]))
		body := make([]byte, kl+vl+4)
		if _, err := io.ReadFull(r, body); err != nil {
			return nil // torn tail
		}
		crc := crc32.ChecksumIEEE(hdr[:])
		crc = crc32.Update(crc, crc32.IEEETable, body[:kl+vl])
		if crc != binary.LittleEndian.Uint32(body[kl+vl:]) {
			return nil // torn tail (or trailing corruption): stop replay
		}
		fn(op, string(body[:kl]), body[kl:kl+vl])
	}
}
