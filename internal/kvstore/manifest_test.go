package kvstore

import (
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/wire"
)

// resealManifest writes body plus a freshly computed checksum tail, so a
// test can tamper with manifest fields while keeping the CRC valid.
func resealManifest(path string, body []byte) error {
	cw := wire.NewWriter(4)
	cw.U32(crc32.ChecksumIEEE(body))
	return os.WriteFile(path, append(append([]byte(nil), body...), cw.Bytes()...), 0o644)
}

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	in := &Manifest{
		ProviderID:     3,
		PlacementEpoch: 42,
		Placement:      []byte{1, 2, 3, 4},
		Features:       []string{FeatureDurableCatalog},
	}
	if err := SaveManifest(dir, in); err != nil {
		t.Fatal(err)
	}
	out, err := LoadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if out == nil {
		t.Fatal("LoadManifest returned nil for a saved manifest")
	}
	if out.FormatVersion != ManifestFormatVersion {
		t.Errorf("FormatVersion = %d, want %d", out.FormatVersion, ManifestFormatVersion)
	}
	if out.ProviderID != 3 || out.PlacementEpoch != 42 {
		t.Errorf("identity = (%d, %d), want (3, 42)", out.ProviderID, out.PlacementEpoch)
	}
	if string(out.Placement) != string(in.Placement) {
		t.Errorf("Placement = %v, want %v", out.Placement, in.Placement)
	}
	if len(out.Features) != 1 || out.Features[0] != FeatureDurableCatalog {
		t.Errorf("Features = %v", out.Features)
	}
}

func TestManifestAbsent(t *testing.T) {
	m, err := LoadManifest(t.TempDir())
	if err != nil || m != nil {
		t.Errorf("LoadManifest(empty dir) = %v, %v; want nil, nil", m, err)
	}
}

func TestManifestCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	if err := SaveManifest(dir, &Manifest{ProviderID: 1}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, ManifestName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadManifest(dir); err == nil {
		t.Error("corrupted manifest loaded without error")
	}

	// A truncated manifest (torn write without the atomic rename) must
	// also refuse, not decode garbage.
	if err := os.WriteFile(path, raw[:3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadManifest(dir); err == nil {
		t.Error("truncated manifest loaded without error")
	}
}

func TestManifestUnknownFeatureRefused(t *testing.T) {
	dir := t.TempDir()
	err := SaveManifest(dir, &Manifest{
		ProviderID: 0,
		Features:   []string{FeatureDurableCatalog, "sharded-catalog-v9"},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = LoadManifest(dir)
	if err == nil || !strings.Contains(err.Error(), "sharded-catalog-v9") {
		t.Errorf("unknown feature: err = %v, want mention of sharded-catalog-v9", err)
	}
}

func TestManifestNewerFormatRefused(t *testing.T) {
	dir := t.TempDir()
	if err := SaveManifest(dir, &Manifest{ProviderID: 0}); err != nil {
		t.Fatal(err)
	}
	// Bump the stored format version past what this binary understands and
	// re-seal the checksum, simulating a file written by a newer release.
	path := filepath.Join(dir, ManifestName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[4] = ManifestFormatVersion + 1 // little-endian u32 right after the magic
	body := raw[:len(raw)-4]
	if err := os.WriteFile(path, body, 0o644); err != nil {
		t.Fatal(err)
	}
	// Recompute the CRC the same way SaveManifest does.
	m2, errLoad := LoadManifest(dir)
	if errLoad == nil {
		t.Fatalf("manifest with bad checksum loaded: %+v", m2)
	}
	// Now with a valid checksum over the bumped version.
	if err := resealManifest(path, body); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadManifest(dir); err == nil {
		t.Error("newer-format manifest loaded without error")
	}
}

// TestManifestAtomicSave: a save over an existing manifest leaves no temp
// file behind and the result reads back valid.
func TestManifestAtomicSave(t *testing.T) {
	dir := t.TempDir()
	for epoch := uint64(0); epoch < 3; epoch++ {
		if err := SaveManifest(dir, &Manifest{ProviderID: 7, PlacementEpoch: epoch}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, ManifestName+".tmp")); !os.IsNotExist(err) {
		t.Errorf("temp manifest left behind: %v", err)
	}
	m, err := LoadManifest(dir)
	if err != nil || m == nil || m.PlacementEpoch != 2 {
		t.Errorf("final manifest = %+v, %v; want epoch 2", m, err)
	}
}
