package kvstore

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// LSMKV is a persistent log-structured merge store: the analogue of the
// paper's RocksDB provider backend. Writes go to a WAL and an in-memory
// memtable; when the memtable exceeds FlushBytes it is written as an
// immutable SSTable. When more than CompactAfter tables accumulate they
// are merged into one (full compaction), dropping shadowed entries and
// tombstones.
type LSMKV struct {
	dir  string
	opts LSMOptions

	mu     sync.RWMutex
	mem    map[string]memEntry
	memLen int64
	log    *wal
	tables []*sstable // newest last
	nextID int
}

// memEntry is one memtable slot: either a value or a tombstone. Keeping an
// explicit flag (rather than a nil sentinel) lets zero-length values — such
// as the empty tensor segments of parameter-free leaf layers — round-trip
// correctly.
type memEntry struct {
	val  []byte
	tomb bool
}

// LSMOptions tunes LSMKV behaviour.
type LSMOptions struct {
	// FlushBytes is the memtable payload size that triggers an SSTable
	// flush. Default 4 MiB.
	FlushBytes int64
	// CompactAfter is the SSTable count that triggers a full compaction.
	// Default 6.
	CompactAfter int
	// SyncEveryPut forces an fsync per Put; default false (sync on flush
	// and close), matching typical RocksDB deployment.
	SyncEveryPut bool
}

func (o *LSMOptions) setDefaults() {
	if o.FlushBytes <= 0 {
		o.FlushBytes = 4 << 20
	}
	if o.CompactAfter <= 0 {
		o.CompactAfter = 6
	}
}

// OpenLSM opens (or creates) a store rooted at dir, replaying any WAL left
// by a previous process.
func OpenLSM(dir string, opts LSMOptions) (*LSMKV, error) {
	opts.setDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	kv := &LSMKV{dir: dir, opts: opts, mem: make(map[string]memEntry)}

	names, err := filepath.Glob(filepath.Join(dir, "*.sst"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names) // IDs are zero-padded so lexical = numeric order
	for _, name := range names {
		t, err := openSSTable(name)
		if err != nil {
			return nil, fmt.Errorf("kvstore: opening %s: %w", name, err)
		}
		kv.tables = append(kv.tables, t)
		var id int
		fmt.Sscanf(filepath.Base(name), "%06d.sst", &id)
		if id >= kv.nextID {
			kv.nextID = id + 1
		}
	}

	walPath := filepath.Join(dir, "wal.log")
	err = replayWAL(walPath, func(op byte, key string, value []byte) {
		switch op {
		case walOpPut:
			kv.memApply(key, value, false)
		case walOpDelete:
			kv.memApply(key, nil, true)
		}
	})
	if err != nil {
		return nil, err
	}
	kv.log, err = createWAL(walPath)
	if err != nil {
		return nil, err
	}
	return kv, nil
}

// memApply installs an entry into the memtable, tracking payload size.
// Caller holds mu (or is single-threaded during open).
func (kv *LSMKV) memApply(key string, value []byte, tomb bool) {
	if old, ok := kv.mem[key]; ok {
		kv.memLen -= int64(len(old.val))
	}
	if tomb {
		kv.mem[key] = memEntry{tomb: true}
		return
	}
	cp := append([]byte(nil), value...)
	kv.mem[key] = memEntry{val: cp}
	kv.memLen += int64(len(cp))
}

// Put implements KV.
func (kv *LSMKV) Put(key string, value []byte) error {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	if err := kv.log.append(walOpPut, key, value); err != nil {
		return err
	}
	if kv.opts.SyncEveryPut {
		if err := kv.log.sync(); err != nil {
			return err
		}
	}
	kv.memApply(key, value, false)
	if kv.memLen >= kv.opts.FlushBytes {
		return kv.flushLocked()
	}
	return nil
}

// Delete implements KV.
func (kv *LSMKV) Delete(key string) error {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	if err := kv.log.append(walOpDelete, key, nil); err != nil {
		return err
	}
	kv.memApply(key, nil, true)
	return nil
}

// Get implements KV: memtable first, then SSTables newest-first.
func (kv *LSMKV) Get(key string) ([]byte, bool, error) {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	if e, ok := kv.mem[key]; ok {
		if e.tomb {
			return nil, false, nil
		}
		return e.val, true, nil
	}
	for i := len(kv.tables) - 1; i >= 0; i-- {
		v, found, tomb, err := kv.tables[i].get(key)
		if err != nil {
			return nil, false, err
		}
		if found {
			if tomb {
				return nil, false, nil
			}
			return v, true, nil
		}
	}
	return nil, false, nil
}

// Scan implements KV: a merge over memtable and all tables with
// newest-wins shadowing.
func (kv *LSMKV) Scan(prefix string, fn func(key string, value []byte) bool) error {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	merged := make(map[string]memEntry)
	// Oldest table first; newer entries overwrite.
	for _, t := range kv.tables {
		err := t.iterate(func(e ssEntry) bool {
			if strings.HasPrefix(e.key, prefix) {
				merged[e.key] = memEntry{val: e.value, tomb: e.tombstone}
			}
			return true
		})
		if err != nil {
			return err
		}
	}
	for k, e := range kv.mem {
		if strings.HasPrefix(k, prefix) {
			merged[k] = e
		}
	}
	keys := make([]string, 0, len(merged))
	for k, e := range merged {
		if !e.tomb {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		if !fn(k, merged[k].val) {
			break
		}
	}
	return nil
}

// Len implements KV. It merges live keys, so it is O(total entries).
func (kv *LSMKV) Len() int {
	n := 0
	kv.Scan("", func(string, []byte) bool { n++; return true })
	return n
}

// SizeBytes implements KV (live payload bytes).
func (kv *LSMKV) SizeBytes() int64 {
	var n int64
	kv.Scan("", func(_ string, v []byte) bool { n += int64(len(v)); return true })
	return n
}

// Flush forces the memtable to disk as an SSTable.
func (kv *LSMKV) Flush() error {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	return kv.flushLocked()
}

func (kv *LSMKV) flushLocked() error {
	if len(kv.mem) == 0 {
		return nil
	}
	entries := make([]ssEntry, 0, len(kv.mem))
	for k, e := range kv.mem {
		entries = append(entries, ssEntry{key: k, value: e.val, tombstone: e.tomb})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })

	path := filepath.Join(kv.dir, fmt.Sprintf("%06d.sst", kv.nextID))
	kv.nextID++
	t, err := writeSSTable(path, entries)
	if err != nil {
		return err
	}
	kv.tables = append(kv.tables, t)
	kv.mem = make(map[string]memEntry)
	kv.memLen = 0

	// Truncate the WAL: its contents are now durable in the SSTable.
	if err := kv.log.close(); err != nil {
		return err
	}
	walPath := filepath.Join(kv.dir, "wal.log")
	if err := os.Remove(walPath); err != nil && !os.IsNotExist(err) {
		return err
	}
	kv.log, err = createWAL(walPath)
	if err != nil {
		return err
	}
	if len(kv.tables) > kv.opts.CompactAfter {
		return kv.compactLocked()
	}
	return nil
}

// Compact merges all SSTables into one, dropping shadowed versions and
// tombstones.
func (kv *LSMKV) Compact() error {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	return kv.compactLocked()
}

func (kv *LSMKV) compactLocked() error {
	if len(kv.tables) <= 1 {
		return nil
	}
	merged := make(map[string][]byte)
	tomb := make(map[string]bool)
	for _, t := range kv.tables { // oldest first, newer wins
		err := t.iterate(func(e ssEntry) bool {
			if e.tombstone {
				delete(merged, e.key)
				tomb[e.key] = true
			} else {
				merged[e.key] = append([]byte(nil), e.value...)
				delete(tomb, e.key)
			}
			return true
		})
		if err != nil {
			return err
		}
	}
	entries := make([]ssEntry, 0, len(merged))
	for k, v := range merged {
		entries = append(entries, ssEntry{key: k, value: v})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })

	path := filepath.Join(kv.dir, fmt.Sprintf("%06d.sst", kv.nextID))
	kv.nextID++
	nt, err := writeSSTable(path, entries)
	if err != nil {
		return err
	}
	old := kv.tables
	kv.tables = []*sstable{nt}
	for _, t := range old {
		t.close()
		os.Remove(t.path)
	}
	return nil
}

// Close flushes and releases all resources. Closing twice is a no-op.
func (kv *LSMKV) Close() error {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	if kv.log == nil {
		return nil
	}
	if err := kv.log.sync(); err != nil {
		return err
	}
	if err := kv.log.close(); err != nil {
		return err
	}
	kv.log = nil
	var first error
	for _, t := range kv.tables {
		if err := t.close(); err != nil && first == nil {
			first = err
		}
	}
	kv.tables = nil
	return first
}

// TableCount reports the number of SSTables (for tests and stats).
func (kv *LSMKV) TableCount() int {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	return len(kv.tables)
}

var _ KV = (*LSMKV)(nil)
