package kvstore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ErrStoreFailed marks an LSMKV that hit an unrecoverable error at a
// durability boundary (the WAL could not be rotated after a flush, or a
// crash-injection hook fired). Accepting further writes would risk
// acknowledging data into a dead file descriptor, so every subsequent
// operation fails with this error; the on-disk state is intact and a
// reopen recovers it.
var ErrStoreFailed = errors.New("kvstore: store failed; reopen the directory to recover")

// Crash-injection hooks for the recovery test matrix. When non-nil, the
// hook runs at its durability boundary; a non-nil return simulates the
// process dying right there: the operation aborts, the store is marked
// failed (as a crashed process would be unusable), and the test reopens
// the directory to assert convergence. Always nil in production.
var (
	// crashAfterTableSync fires in flushLocked after the new SSTable and
	// its directory entry are durable but before the WAL is removed.
	crashAfterTableSync func() error
	// crashAfterWALRemove fires in flushLocked after wal.log has been
	// removed (and the removal fsynced) but before a fresh WAL exists.
	crashAfterWALRemove func() error
	// crashMidCompaction fires in compactLocked after the merged table
	// and its commit marker are durable but before the superseded tables
	// are removed.
	crashMidCompaction func() error
)

// syncDir fsyncs a directory so that entry creations/removals inside it
// are durable. Rename/remove durability requires this on POSIX; without
// it a crash can lose a just-flushed SSTable or resurrect a removed WAL.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}

// LSMKV is a persistent log-structured merge store: the analogue of the
// paper's RocksDB provider backend. Writes go to a WAL and an in-memory
// memtable; when the memtable exceeds FlushBytes it is written as an
// immutable SSTable. When more than CompactAfter tables accumulate they
// are merged into one (full compaction), dropping shadowed entries and
// tombstones.
type LSMKV struct {
	dir  string
	opts LSMOptions

	mu     sync.RWMutex
	mem    map[string]memEntry
	memLen int64
	log    *wal
	tables []*sstable // newest last
	nextID int
	closed bool
	failed error // non-nil after an unrecoverable durability error
}

// memEntry is one memtable slot: either a value or a tombstone. Keeping an
// explicit flag (rather than a nil sentinel) lets zero-length values — such
// as the empty tensor segments of parameter-free leaf layers — round-trip
// correctly.
type memEntry struct {
	val  []byte
	tomb bool
}

// LSMOptions tunes LSMKV behaviour.
type LSMOptions struct {
	// FlushBytes is the memtable payload size that triggers an SSTable
	// flush. Default 4 MiB.
	FlushBytes int64
	// CompactAfter is the SSTable count that triggers a full compaction.
	// Default 6.
	CompactAfter int
	// SyncEveryPut forces an fsync per Put; default false (sync on flush
	// and close), matching typical RocksDB deployment.
	SyncEveryPut bool
}

func (o *LSMOptions) setDefaults() {
	if o.FlushBytes <= 0 {
		o.FlushBytes = 4 << 20
	}
	if o.CompactAfter <= 0 {
		o.CompactAfter = 6
	}
}

// OpenLSM opens (or creates) a store rooted at dir, replaying any WAL left
// by a previous process.
func OpenLSM(dir string, opts LSMOptions) (*LSMKV, error) {
	opts.setDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	kv := &LSMKV{dir: dir, opts: opts, mem: make(map[string]memEntry)}

	// Crash-mid-compaction recovery: a `<id>.sst.compact` marker means the
	// table with that id supersedes every older table (compaction dropped
	// their tombstones, so replaying the old tables would resurrect deleted
	// keys). Finish the interrupted removal, then drop the marker.
	cutoff := -1
	markers, err := filepath.Glob(filepath.Join(dir, "*.sst.compact"))
	if err != nil {
		return nil, err
	}
	for _, m := range markers {
		var id int
		if _, err := fmt.Sscanf(filepath.Base(m), "%06d.sst.compact", &id); err != nil {
			continue
		}
		if _, err := os.Stat(strings.TrimSuffix(m, ".compact")); err == nil && id > cutoff {
			cutoff = id
		}
		// Marker without its table cannot occur (the marker is written
		// after the table is durable); treat it as stale either way.
	}

	names, err := filepath.Glob(filepath.Join(dir, "*.sst"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names) // IDs are zero-padded so lexical = numeric order
	for _, name := range names {
		var id int
		fmt.Sscanf(filepath.Base(name), "%06d.sst", &id)
		if id < cutoff {
			if err := os.Remove(name); err != nil {
				return nil, fmt.Errorf("kvstore: removing superseded %s: %w", name, err)
			}
			continue
		}
		t, err := openSSTable(name)
		if err != nil {
			return nil, fmt.Errorf("kvstore: opening %s: %w", name, err)
		}
		kv.tables = append(kv.tables, t)
		if id >= kv.nextID {
			kv.nextID = id + 1
		}
	}
	for _, m := range markers {
		if err := os.Remove(m); err != nil {
			return nil, err
		}
	}
	if cutoff >= 0 || len(markers) > 0 {
		if err := syncDir(dir); err != nil {
			return nil, err
		}
	}

	walPath := filepath.Join(dir, "wal.log")
	err = replayWAL(walPath, func(op byte, key string, value []byte) {
		switch op {
		case walOpPut:
			kv.memApply(key, value, false)
		case walOpDelete:
			kv.memApply(key, nil, true)
		}
	})
	if err != nil {
		return nil, err
	}
	kv.log, err = createWAL(walPath)
	if err != nil {
		return nil, err
	}
	return kv, nil
}

// memEntryCost is the accounted per-entry overhead beyond the value
// payload (map slot, tombstone flag, WAL header). Charging it — and the
// key bytes — for every entry means delete-heavy workloads (mass Retire)
// grow memLen too and reach the flush threshold, instead of accumulating
// tombstones unboundedly.
const memEntryCost = 32

// memApply installs an entry into the memtable, tracking its accounted
// size (key + overhead + value; tombstones carry no value). Caller holds
// mu (or is single-threaded during open).
func (kv *LSMKV) memApply(key string, value []byte, tomb bool) {
	if old, ok := kv.mem[key]; ok {
		kv.memLen -= int64(len(key)) + memEntryCost + int64(len(old.val))
	}
	if tomb {
		kv.mem[key] = memEntry{tomb: true}
		kv.memLen += int64(len(key)) + memEntryCost
		return
	}
	cp := append([]byte(nil), value...)
	kv.mem[key] = memEntry{val: cp}
	kv.memLen += int64(len(key)) + memEntryCost + int64(len(cp))
}

// usableLocked gates mutations on store health. Caller holds mu.
func (kv *LSMKV) usableLocked() error {
	if kv.failed != nil {
		return fmt.Errorf("%w (cause: %v)", ErrStoreFailed, kv.failed)
	}
	if kv.closed || kv.log == nil {
		return fmt.Errorf("%w (store closed)", ErrStoreFailed)
	}
	return nil
}

// failLocked marks the store permanently failed. Caller holds mu.
func (kv *LSMKV) failLocked(cause error) error {
	kv.failed = cause
	return fmt.Errorf("%w: %v", ErrStoreFailed, cause)
}

// Put implements KV.
func (kv *LSMKV) Put(key string, value []byte) error {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	if err := kv.usableLocked(); err != nil {
		return err
	}
	if err := kv.log.append(walOpPut, key, value); err != nil {
		return err
	}
	if kv.opts.SyncEveryPut {
		if err := kv.log.sync(); err != nil {
			return err
		}
	}
	kv.memApply(key, value, false)
	if kv.memLen >= kv.opts.FlushBytes {
		return kv.flushLocked()
	}
	return nil
}

// Delete implements KV.
func (kv *LSMKV) Delete(key string) error {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	if err := kv.usableLocked(); err != nil {
		return err
	}
	if err := kv.log.append(walOpDelete, key, nil); err != nil {
		return err
	}
	kv.memApply(key, nil, true)
	if kv.memLen >= kv.opts.FlushBytes {
		return kv.flushLocked()
	}
	return nil
}

// Sync makes every acknowledged write durable (WAL flush + fsync) without
// forcing a memtable flush. The durable provider catalog calls this after
// catalog mutations so acknowledged state survives kill −9; because the
// WAL is sequential, the sync also hardens all earlier unsynced appends
// (segment payloads included).
func (kv *LSMKV) Sync() error {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	if err := kv.usableLocked(); err != nil {
		return err
	}
	return kv.log.sync()
}

// Get implements KV: memtable first, then SSTables newest-first.
func (kv *LSMKV) Get(key string) ([]byte, bool, error) {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	if e, ok := kv.mem[key]; ok {
		if e.tomb {
			return nil, false, nil
		}
		return e.val, true, nil
	}
	for i := len(kv.tables) - 1; i >= 0; i-- {
		v, found, tomb, err := kv.tables[i].get(key)
		if err != nil {
			return nil, false, err
		}
		if found {
			if tomb {
				return nil, false, nil
			}
			return v, true, nil
		}
	}
	return nil, false, nil
}

// Scan implements KV: a merge over memtable and all tables with
// newest-wins shadowing.
func (kv *LSMKV) Scan(prefix string, fn func(key string, value []byte) bool) error {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	merged := make(map[string]memEntry)
	// Oldest table first; newer entries overwrite.
	for _, t := range kv.tables {
		err := t.iterate(func(e ssEntry) bool {
			if strings.HasPrefix(e.key, prefix) {
				merged[e.key] = memEntry{val: e.value, tomb: e.tombstone}
			}
			return true
		})
		if err != nil {
			return err
		}
	}
	for k, e := range kv.mem {
		if strings.HasPrefix(k, prefix) {
			merged[k] = e
		}
	}
	keys := make([]string, 0, len(merged))
	for k, e := range merged {
		if !e.tomb {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		if !fn(k, merged[k].val) {
			break
		}
	}
	return nil
}

// Len implements KV. It merges live keys, so it is O(total entries).
func (kv *LSMKV) Len() int {
	n := 0
	kv.Scan("", func(string, []byte) bool { n++; return true })
	return n
}

// SizeBytes implements KV (live payload bytes).
func (kv *LSMKV) SizeBytes() int64 {
	var n int64
	kv.Scan("", func(_ string, v []byte) bool { n += int64(len(v)); return true })
	return n
}

// Flush forces the memtable to disk as an SSTable.
func (kv *LSMKV) Flush() error {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	return kv.flushLocked()
}

func (kv *LSMKV) flushLocked() error {
	if err := kv.usableLocked(); err != nil {
		return err
	}
	if len(kv.mem) == 0 {
		return nil
	}
	entries := make([]ssEntry, 0, len(kv.mem))
	for k, e := range kv.mem {
		entries = append(entries, ssEntry{key: k, value: e.val, tombstone: e.tomb})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })

	path := filepath.Join(kv.dir, fmt.Sprintf("%06d.sst", kv.nextID))
	kv.nextID++
	t, err := writeSSTable(path, entries)
	if err != nil {
		// Memtable and WAL are untouched: nothing is lost, the flush can
		// simply be retried. Clear any partial table file.
		os.Remove(path)
		return err
	}
	// The table's directory entry must be durable before the WAL (which
	// still covers its contents) goes away.
	if err := syncDir(kv.dir); err != nil {
		t.close()
		os.Remove(path)
		return err
	}
	if hook := crashAfterTableSync; hook != nil {
		if err := hook(); err != nil {
			return kv.failLocked(err)
		}
	}
	kv.tables = append(kv.tables, t)
	kv.mem = make(map[string]memEntry)
	kv.memLen = 0

	// Rotate the WAL: its contents are now durable in the SSTable. From
	// here on a failure leaves no usable log handle, so instead of letting
	// later Puts write into a dead descriptor the store is marked failed
	// (writes error with ErrStoreFailed; on-disk state stays recoverable).
	log := kv.log
	kv.log = nil
	if err := log.close(); err != nil {
		return kv.failLocked(fmt.Errorf("closing wal: %w", err))
	}
	walPath := filepath.Join(kv.dir, "wal.log")
	if err := os.Remove(walPath); err != nil && !os.IsNotExist(err) {
		return kv.failLocked(fmt.Errorf("removing wal: %w", err))
	}
	if err := syncDir(kv.dir); err != nil {
		return kv.failLocked(fmt.Errorf("syncing dir after wal removal: %w", err))
	}
	if hook := crashAfterWALRemove; hook != nil {
		if err := hook(); err != nil {
			return kv.failLocked(err)
		}
	}
	nl, err := createWAL(walPath)
	if err != nil {
		return kv.failLocked(fmt.Errorf("recreating wal: %w", err))
	}
	kv.log = nl
	if len(kv.tables) > kv.opts.CompactAfter {
		return kv.compactLocked()
	}
	return nil
}

// Compact merges all SSTables into one, dropping shadowed versions and
// tombstones.
func (kv *LSMKV) Compact() error {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	return kv.compactLocked()
}

func (kv *LSMKV) compactLocked() error {
	if len(kv.tables) <= 1 {
		return nil
	}
	merged := make(map[string][]byte)
	tomb := make(map[string]bool)
	for _, t := range kv.tables { // oldest first, newer wins
		err := t.iterate(func(e ssEntry) bool {
			if e.tombstone {
				delete(merged, e.key)
				tomb[e.key] = true
			} else {
				merged[e.key] = append([]byte(nil), e.value...)
				delete(tomb, e.key)
			}
			return true
		})
		if err != nil {
			return err
		}
	}
	entries := make([]ssEntry, 0, len(merged))
	for k, v := range merged {
		entries = append(entries, ssEntry{key: k, value: v})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })

	path := filepath.Join(kv.dir, fmt.Sprintf("%06d.sst", kv.nextID))
	kv.nextID++
	nt, err := writeSSTable(path, entries)
	if err != nil {
		os.Remove(path)
		return err
	}
	if err := syncDir(kv.dir); err != nil {
		nt.close()
		os.Remove(path)
		return err
	}
	// Commit marker: compaction dropped tombstones, so a crash after some
	// old tables are gone but others remain would resurrect deleted keys
	// on replay. The durable `<id>.sst.compact` marker tells OpenLSM that
	// this table supersedes every older one; it is removed only after all
	// superseded tables are.
	marker := path + ".compact"
	if err := writeFileSync(marker); err != nil {
		nt.close()
		os.Remove(path)
		return err
	}
	if err := syncDir(kv.dir); err != nil {
		return kv.failLocked(err)
	}
	if hook := crashMidCompaction; hook != nil {
		if err := hook(); err != nil {
			return kv.failLocked(err)
		}
	}
	old := kv.tables
	kv.tables = []*sstable{nt}
	for _, t := range old {
		t.close()
		os.Remove(t.path)
	}
	os.Remove(marker)
	if err := syncDir(kv.dir); err != nil {
		return kv.failLocked(err)
	}
	return nil
}

// writeFileSync durably creates an empty file (the compaction marker).
func writeFileSync(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Close flushes and releases all resources. Closing twice is a no-op, and
// closing a failed store still releases its table handles.
func (kv *LSMKV) Close() error {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	if kv.closed {
		return nil
	}
	kv.closed = true
	var first error
	if kv.log != nil {
		if err := kv.log.sync(); err != nil {
			first = err
		}
		if err := kv.log.close(); err != nil && first == nil {
			first = err
		}
		kv.log = nil
	}
	for _, t := range kv.tables {
		if err := t.close(); err != nil && first == nil {
			first = err
		}
	}
	kv.tables = nil
	return first
}

// TableCount reports the number of SSTables (for tests and stats).
func (kv *LSMKV) TableCount() int {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	return len(kv.tables)
}

var _ KV = (*LSMKV)(nil)
