package kvstore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// These tests inject storage-level failures and verify the LSM backend
// degrades safely: corruption is detected (never silently served) and
// torn WAL tails are truncated without losing earlier records.

func TestSSTableCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	kv, err := OpenLSM(dir, LSMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		kv.Put(fmt.Sprintf("k%03d", i), []byte(fmt.Sprintf("value-%03d", i)))
	}
	if err := kv.Flush(); err != nil {
		t.Fatal(err)
	}
	kv.Close()

	// Flip one byte inside a value payload region of the table file.
	names, _ := filepath.Glob(filepath.Join(dir, "*.sst"))
	if len(names) != 1 {
		t.Fatalf("tables = %v", names)
	}
	raw, err := os.ReadFile(names[0])
	if err != nil {
		t.Fatal(err)
	}
	// Entry region starts at offset 8; find the byte sequence "value-000"
	// and corrupt its middle.
	idx := -1
	for i := 0; i+9 < len(raw); i++ {
		if string(raw[i:i+6]) == "value-" {
			idx = i + 3
			break
		}
	}
	if idx < 0 {
		t.Fatal("payload not found in table file")
	}
	raw[idx] ^= 0xff
	if err := os.WriteFile(names[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	kv2, err := OpenLSM(dir, LSMOptions{})
	if err != nil {
		// Detection at open time (the recovery scan) is acceptable.
		return
	}
	defer kv2.Close()
	// Otherwise the corrupted entry must fail loudly at read time.
	sawError := false
	for i := 0; i < 50; i++ {
		v, ok, err := kv2.Get(fmt.Sprintf("k%03d", i))
		if err != nil {
			sawError = true
			continue
		}
		if ok && string(v) != fmt.Sprintf("value-%03d", i) {
			t.Fatalf("corrupted value served silently: k%03d = %q", i, v)
		}
	}
	if !sawError {
		t.Error("corruption neither detected at open nor at read")
	}
}

func TestWALTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	kv, err := OpenLSM(dir, LSMOptions{FlushBytes: 1 << 30}) // WAL-only
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		kv.Put(fmt.Sprintf("k%02d", i), []byte(fmt.Sprintf("v%02d", i)))
	}
	if err := kv.Close(); err != nil { // close syncs the WAL
		t.Fatal(err)
	}

	// Tear the tail: chop the last few bytes (mid-record crash).
	walPath := filepath.Join(dir, "wal.log")
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	kv2, err := OpenLSM(dir, LSMOptions{})
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	defer kv2.Close()
	// Everything except (at most) the final record must survive.
	for i := 0; i < 19; i++ {
		v, ok, err := kv2.Get(fmt.Sprintf("k%02d", i))
		if err != nil || !ok || string(v) != fmt.Sprintf("v%02d", i) {
			t.Errorf("k%02d lost after torn tail: %q ok=%v err=%v", i, v, ok, err)
		}
	}
	if _, ok, _ := kv2.Get("k19"); ok {
		t.Log("final record survived the tear (tear landed in the crc only) — fine")
	}
}

func TestWALTrailingGarbageIgnored(t *testing.T) {
	dir := t.TempDir()
	kv, err := OpenLSM(dir, LSMOptions{FlushBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	kv.Put("good", []byte("payload"))
	kv.Close()

	f, err := os.OpenFile(filepath.Join(dir, "wal.log"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x01, 0xff, 0xff, 0xff, 0x7f}) // bogus partial header
	f.Close()

	kv2, err := OpenLSM(dir, LSMOptions{})
	if err != nil {
		t.Fatalf("reopen with trailing garbage: %v", err)
	}
	defer kv2.Close()
	if v, ok, _ := kv2.Get("good"); !ok || string(v) != "payload" {
		t.Errorf("good record lost: %q ok=%v", v, ok)
	}
}

func TestLSMManyReopens(t *testing.T) {
	// Repeated crash-free reopen cycles must neither lose nor duplicate.
	dir := t.TempDir()
	for cycle := 0; cycle < 5; cycle++ {
		kv, err := OpenLSM(dir, LSMOptions{FlushBytes: 2 << 10})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			key := fmt.Sprintf("c%d-k%02d", cycle, i)
			if err := kv.Put(key, []byte(key)); err != nil {
				t.Fatal(err)
			}
		}
		// All prior cycles' keys must still read back.
		for pc := 0; pc <= cycle; pc++ {
			for i := 0; i < 20; i++ {
				key := fmt.Sprintf("c%d-k%02d", pc, i)
				v, ok, err := kv.Get(key)
				if err != nil || !ok || string(v) != key {
					t.Fatalf("cycle %d: %s = %q ok=%v err=%v", cycle, key, v, ok, err)
				}
			}
		}
		if err := kv.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// --- crash-injection matrix ----------------------------------------------
//
// Each case arms one crash hook at a durability boundary, drives the store
// into it, asserts the store fails sticky (every later op returns
// ErrStoreFailed), then reopens the directory and asserts the surviving
// state is exactly what the durability contract promises.

// crashErr is what the armed hooks return; the sticky failure must wrap
// ErrStoreFailed regardless.
var crashErr = errors.New("injected crash")

func assertSticky(t *testing.T, kv *LSMKV) {
	t.Helper()
	if err := kv.Put("post-crash", []byte("x")); !errors.Is(err, ErrStoreFailed) {
		t.Errorf("Put after crash = %v, want ErrStoreFailed", err)
	}
	if err := kv.Delete("post-crash"); !errors.Is(err, ErrStoreFailed) {
		t.Errorf("Delete after crash = %v, want ErrStoreFailed", err)
	}
	if err := kv.Sync(); !errors.Is(err, ErrStoreFailed) {
		t.Errorf("Sync after crash = %v, want ErrStoreFailed", err)
	}
	if err := kv.Flush(); !errors.Is(err, ErrStoreFailed) {
		t.Errorf("Flush after crash = %v, want ErrStoreFailed", err)
	}
}

func TestCrashAfterTableSyncRecovers(t *testing.T) {
	dir := t.TempDir()
	kv, err := OpenLSM(dir, LSMOptions{FlushBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := kv.Put(fmt.Sprintf("k%02d", i), []byte(fmt.Sprintf("v%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	crashAfterTableSync = func() error { return crashErr }
	defer func() { crashAfterTableSync = nil }()
	if err := kv.Flush(); !errors.Is(err, ErrStoreFailed) {
		t.Fatalf("Flush with crash hook = %v, want ErrStoreFailed", err)
	}
	assertSticky(t, kv)
	kv.Close()
	crashAfterTableSync = nil

	// The table was durable before the "crash" and the WAL still exists;
	// replaying both must yield every record exactly once.
	kv2, err := OpenLSM(dir, LSMOptions{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer kv2.Close()
	for i := 0; i < 10; i++ {
		v, ok, err := kv2.Get(fmt.Sprintf("k%02d", i))
		if err != nil || !ok || string(v) != fmt.Sprintf("v%02d", i) {
			t.Errorf("k%02d after crash-reopen: %q ok=%v err=%v", i, v, ok, err)
		}
	}
}

func TestCrashAfterWALRemoveRecovers(t *testing.T) {
	dir := t.TempDir()
	kv, err := OpenLSM(dir, LSMOptions{FlushBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := kv.Put(fmt.Sprintf("k%02d", i), []byte(fmt.Sprintf("v%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	crashAfterWALRemove = func() error { return crashErr }
	defer func() { crashAfterWALRemove = nil }()
	if err := kv.Flush(); !errors.Is(err, ErrStoreFailed) {
		t.Fatalf("Flush with crash hook = %v, want ErrStoreFailed", err)
	}
	assertSticky(t, kv)
	kv.Close()
	crashAfterWALRemove = nil

	// No WAL on disk, but the SSTable made it: nothing may be lost.
	kv2, err := OpenLSM(dir, LSMOptions{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer kv2.Close()
	for i := 0; i < 10; i++ {
		v, ok, err := kv2.Get(fmt.Sprintf("k%02d", i))
		if err != nil || !ok || string(v) != fmt.Sprintf("v%02d", i) {
			t.Errorf("k%02d after crash-reopen: %q ok=%v err=%v", i, v, ok, err)
		}
	}
}

func TestCrashMidCompactionNoResurrection(t *testing.T) {
	dir := t.TempDir()
	kv, err := OpenLSM(dir, LSMOptions{FlushBytes: 1 << 30, CompactAfter: 100})
	if err != nil {
		t.Fatal(err)
	}
	// Table 1: k1 live. Table 2: k1's tombstone + k2. The compaction merges
	// them into a table holding only k2 (tombstones dropped).
	if err := kv.Put("k1", []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	if err := kv.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := kv.Delete("k1"); err != nil {
		t.Fatal(err)
	}
	if err := kv.Put("k2", []byte("kept")); err != nil {
		t.Fatal(err)
	}
	if err := kv.Flush(); err != nil {
		t.Fatal(err)
	}
	crashMidCompaction = func() error { return crashErr }
	defer func() { crashMidCompaction = nil }()
	// The merged table and its commit marker are durable; the crash lands
	// before the superseded tables (including k1's only tombstone) are
	// removed.
	if err := kv.Compact(); !errors.Is(err, ErrStoreFailed) {
		t.Fatalf("Compact with crash hook = %v, want ErrStoreFailed", err)
	}
	assertSticky(t, kv)
	kv.Close()
	crashMidCompaction = nil

	// Without the marker, reopen would load the pre-compaction tables next
	// to the merged one — and since the merged table dropped the tombstone,
	// k1 would come back from the dead.
	kv2, err := OpenLSM(dir, LSMOptions{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer kv2.Close()
	if v, ok, _ := kv2.Get("k1"); ok {
		t.Errorf("deleted key resurrected after crash mid-compaction: k1 = %q", v)
	}
	if v, ok, err := kv2.Get("k2"); err != nil || !ok || string(v) != "kept" {
		t.Errorf("k2 after crash-reopen: %q ok=%v err=%v", v, ok, err)
	}
	if markers, _ := filepath.Glob(filepath.Join(dir, "*.sst.compact")); len(markers) != 0 {
		t.Errorf("compaction markers survived recovery: %v", markers)
	}
}

// TestDeleteHeavyFlush pins the memLen accounting fix: tombstones carry
// key + overhead cost, so a delete-only workload must still cross
// FlushBytes and flush (before the fix, Delete never checked the
// threshold and tombstones accounted zero bytes, growing the memtable and
// WAL without bound).
func TestDeleteHeavyFlush(t *testing.T) {
	dir := t.TempDir()
	kv, err := OpenLSM(dir, LSMOptions{FlushBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	for i := 0; i < 200; i++ {
		if err := kv.Delete(fmt.Sprintf("some/reasonably/long/deleted/key/%06d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := kv.TableCount(); got == 0 {
		t.Errorf("TableCount = 0 after 200 deletes with a 4 KiB threshold: delete path never flushes")
	}
}

func TestLSMDoubleCloseIsNoop(t *testing.T) {
	kv, err := OpenLSM(t.TempDir(), LSMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	kv.Put("a", []byte("1"))
	if err := kv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := kv.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}
