package kvstore

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// These tests inject storage-level failures and verify the LSM backend
// degrades safely: corruption is detected (never silently served) and
// torn WAL tails are truncated without losing earlier records.

func TestSSTableCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	kv, err := OpenLSM(dir, LSMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		kv.Put(fmt.Sprintf("k%03d", i), []byte(fmt.Sprintf("value-%03d", i)))
	}
	if err := kv.Flush(); err != nil {
		t.Fatal(err)
	}
	kv.Close()

	// Flip one byte inside a value payload region of the table file.
	names, _ := filepath.Glob(filepath.Join(dir, "*.sst"))
	if len(names) != 1 {
		t.Fatalf("tables = %v", names)
	}
	raw, err := os.ReadFile(names[0])
	if err != nil {
		t.Fatal(err)
	}
	// Entry region starts at offset 8; find the byte sequence "value-000"
	// and corrupt its middle.
	idx := -1
	for i := 0; i+9 < len(raw); i++ {
		if string(raw[i:i+6]) == "value-" {
			idx = i + 3
			break
		}
	}
	if idx < 0 {
		t.Fatal("payload not found in table file")
	}
	raw[idx] ^= 0xff
	if err := os.WriteFile(names[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	kv2, err := OpenLSM(dir, LSMOptions{})
	if err != nil {
		// Detection at open time (the recovery scan) is acceptable.
		return
	}
	defer kv2.Close()
	// Otherwise the corrupted entry must fail loudly at read time.
	sawError := false
	for i := 0; i < 50; i++ {
		v, ok, err := kv2.Get(fmt.Sprintf("k%03d", i))
		if err != nil {
			sawError = true
			continue
		}
		if ok && string(v) != fmt.Sprintf("value-%03d", i) {
			t.Fatalf("corrupted value served silently: k%03d = %q", i, v)
		}
	}
	if !sawError {
		t.Error("corruption neither detected at open nor at read")
	}
}

func TestWALTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	kv, err := OpenLSM(dir, LSMOptions{FlushBytes: 1 << 30}) // WAL-only
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		kv.Put(fmt.Sprintf("k%02d", i), []byte(fmt.Sprintf("v%02d", i)))
	}
	if err := kv.Close(); err != nil { // close syncs the WAL
		t.Fatal(err)
	}

	// Tear the tail: chop the last few bytes (mid-record crash).
	walPath := filepath.Join(dir, "wal.log")
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	kv2, err := OpenLSM(dir, LSMOptions{})
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	defer kv2.Close()
	// Everything except (at most) the final record must survive.
	for i := 0; i < 19; i++ {
		v, ok, err := kv2.Get(fmt.Sprintf("k%02d", i))
		if err != nil || !ok || string(v) != fmt.Sprintf("v%02d", i) {
			t.Errorf("k%02d lost after torn tail: %q ok=%v err=%v", i, v, ok, err)
		}
	}
	if _, ok, _ := kv2.Get("k19"); ok {
		t.Log("final record survived the tear (tear landed in the crc only) — fine")
	}
}

func TestWALTrailingGarbageIgnored(t *testing.T) {
	dir := t.TempDir()
	kv, err := OpenLSM(dir, LSMOptions{FlushBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	kv.Put("good", []byte("payload"))
	kv.Close()

	f, err := os.OpenFile(filepath.Join(dir, "wal.log"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x01, 0xff, 0xff, 0xff, 0x7f}) // bogus partial header
	f.Close()

	kv2, err := OpenLSM(dir, LSMOptions{})
	if err != nil {
		t.Fatalf("reopen with trailing garbage: %v", err)
	}
	defer kv2.Close()
	if v, ok, _ := kv2.Get("good"); !ok || string(v) != "payload" {
		t.Errorf("good record lost: %q ok=%v", v, ok)
	}
}

func TestLSMManyReopens(t *testing.T) {
	// Repeated crash-free reopen cycles must neither lose nor duplicate.
	dir := t.TempDir()
	for cycle := 0; cycle < 5; cycle++ {
		kv, err := OpenLSM(dir, LSMOptions{FlushBytes: 2 << 10})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			key := fmt.Sprintf("c%d-k%02d", cycle, i)
			if err := kv.Put(key, []byte(key)); err != nil {
				t.Fatal(err)
			}
		}
		// All prior cycles' keys must still read back.
		for pc := 0; pc <= cycle; pc++ {
			for i := 0; i < 20; i++ {
				key := fmt.Sprintf("c%d-k%02d", pc, i)
				v, ok, err := kv.Get(key)
				if err != nil || !ok || string(v) != key {
					t.Fatalf("cycle %d: %s = %q ok=%v err=%v", cycle, key, v, ok, err)
				}
			}
		}
		if err := kv.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLSMDoubleCloseIsNoop(t *testing.T) {
	kv, err := OpenLSM(t.TempDir(), LSMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	kv.Put("a", []byte("1"))
	if err := kv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := kv.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}
